#!/usr/bin/env bash
# Produce the next BENCH_<n>.json trajectory point: run the canonical
# benchmark suite (full mode by default, including the rmat scale-22
# and DIMACS road stress graphs) and write the report next to the
# previous ones at the repo root, then diff against the latest
# committed point so a regression is visible at creation time (the
# diff is informational here; CI's bench-gate is what enforces it).
#
# Usage:
#	scripts/bench.sh                 # full suite -> BENCH_<n+1>.json
#	BENCH_MODE=short scripts/bench.sh  # CI-shaped quick run
#	BENCH_RUN='^build/' scripts/bench.sh  # subset (still writes a file)
#	BENCH_ROUNDS=1 scripts/bench.sh  # single-sample (default: min of 3)
set -Eeuo pipefail

STAGE="startup"
stage() { STAGE="$*"; echo "== $STAGE"; }
trap 'code=$?; echo "bench.sh: FAILED during stage \"$STAGE\" (exit $code)" >&2' ERR

cd "$(dirname "$0")/.."
MODE="${BENCH_MODE:-full}"
RUN="${BENCH_RUN:-}"
ROUNDS="${BENCH_ROUNDS:-3}"

stage "pick the next trajectory number"
# The ls fails (under pipefail) when no point exists yet: that is the
# n=0 case, not an error.
LAST=$( { ls BENCH_*.json 2>/dev/null || true; } | sed -n 's/^BENCH_\([0-9]*\)\.json$/\1/p' | sort -n | tail -1)
NEXT=$(( ${LAST:-0} + 1 ))
OUT="BENCH_${NEXT}.json"
echo "previous point: ${LAST:-none}; writing $OUT (mode=$MODE)"

stage "build benchrun"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
go build -o "$DIR/benchrun" ./cmd/benchrun

stage "run the $MODE suite"
ARGS=(-mode "$MODE" -rounds "$ROUNDS" -out "$OUT")
if [ -n "$RUN" ]; then ARGS+=(-run "$RUN"); fi
"$DIR/benchrun" "${ARGS[@]}"

if [ -n "$LAST" ]; then
    stage "diff against BENCH_${LAST}.json (informational)"
    "$DIR/benchrun" -diff "BENCH_${LAST}.json" "$OUT" || \
        echo "bench.sh: NOTE: regressions against BENCH_${LAST}.json — see above"
fi

stage "done"
echo "wrote $OUT"
