#!/usr/bin/env bash
# Serving-layer smoke test: build the binaries, start spanhopd on a
# small graph, curl /healthz and a query, then run loadgen with
# bit-exact verification against a locally rebuilt oracle. CI runs
# this; it also works standalone from the repo root.
set -euo pipefail

ADDR="127.0.0.1:${SMOKE_PORT:-8095}"
DIR="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "== build binaries"
go build -o "$DIR/bin/" ./cmd/...

echo "== generate a small weighted grid"
"$DIR/bin/gengraph" -family grid -rows 15 -cols 15 -weights uniform -maxw 20 -out "$DIR/grid.txt"

echo "== start spanhopd"
"$DIR/bin/spanhopd" -addr "$ADDR" -batch-window 2ms -load "grid=$DIR/grid.txt" -eps 0.3 -seed 2 \
    >"$DIR/spanhopd.log" 2>&1 &
DAEMON_PID=$!

echo "== wait for /healthz"
for i in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "spanhopd died:"; cat "$DIR/spanhopd.log"; exit 1
    fi
    sleep 0.2
done
curl -fsS "http://$ADDR/healthz"; echo

echo "== wait for the preloaded graph build"
for i in $(seq 1 150); do
    STATE=$(curl -fsS "http://$ADDR/graphs/grid" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$STATE" = "ready" ] && break
    if [ "$STATE" = "failed" ]; then
        echo "build failed:"; curl -fsS "http://$ADDR/graphs/grid"; exit 1
    fi
    sleep 0.2
done
[ "$STATE" = "ready" ] || { echo "graph never became ready"; exit 1; }

echo "== single query via curl"
OUT=$(curl -fsS -X POST "http://$ADDR/graphs/grid/query" -d '{"s":0,"t":224}')
echo "$OUT"
echo "$OUT" | grep -q '"dist":' || { echo "query response missing dist"; exit 1; }

echo "== loadgen with bit-exact verification"
"$DIR/bin/loadgen" -addr "http://$ADDR" -gen "er:n=512,d=6,w=uniform,maxw=30" \
    -mix hotspot -concurrency 8 -requests 400 -verify

echo "== /stats"
curl -fsS "http://$ADDR/stats"; echo

echo "== graceful shutdown"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
grep -q "bye" "$DIR/spanhopd.log" || { echo "no clean shutdown:"; cat "$DIR/spanhopd.log"; exit 1; }
echo "smoke OK"
