#!/usr/bin/env bash
# Serving-layer smoke test: build the binaries (race-instrumented, so
# the whole end-to-end flow runs under the detector), start spanhopd
# on a small graph, curl /healthz and a query, then run loadgen with
# bit-exact verification against a locally rebuilt oracle. Kill the
# daemon and restart it with the same -snapshot-dir to prove the warm
# start: the graph is ready without a rebuild (no build-stage
# telemetry) and answers are unchanged. Then mutate the live graph
# (insert/delete edges), assert the generation bumps and queries see
# the change, restart once more, and verify the mutation journal
# replays from the snapshot. CI runs this; it also works standalone
# from the repo root.
# -E so the ERR trap fires inside functions too; pipefail so a
# failing benchmark/loadgen stage is not masked by the pipe it feeds.
set -Eeuo pipefail

ADDR="127.0.0.1:${SMOKE_PORT:-8095}"
DIR="$(mktemp -d)"
SNAPDIR="$DIR/snapshots"
DAEMON_PID=""
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

# Stage tracking: every phase announces itself through stage(), and
# the ERR trap names the phase that failed so a red CI run is
# attributable from the last log line alone.
STAGE="startup"
stage() { STAGE="$*"; echo "== $STAGE"; }
trap 'code=$?; echo "smoke.sh: FAILED during stage \"$STAGE\" (exit $code)" >&2' ERR

stage "build binaries (-race)"
go build -race -o "$DIR/bin/" ./cmd/...

stage "generate a small weighted grid (binary format)"
"$DIR/bin/gengraph" -family grid -rows 15 -cols 15 -weights uniform -maxw 20 \
    -format binary -out "$DIR/grid.bin"

start_daemon() {
    "$DIR/bin/spanhopd" -addr "$ADDR" -batch-window 2ms -load "grid=$DIR/grid.bin" \
        -eps 0.3 -seed 2 -snapshot-dir "$SNAPDIR" \
        -profile-dir "$DIR/profiles" -profile-interval 5s \
        -slo-target 250ms -audit-sample 1 -audit-cpu-frac 0.5 >"$1" 2>&1 &
    DAEMON_PID=$!
}

wait_healthz() {
    for i in $(seq 1 50); do
        if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
        if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            echo "spanhopd died:"; cat "$1"; exit 1
        fi
        sleep 0.2
    done
    echo "spanhopd never became healthy"; exit 1
}

stage "start spanhopd (snapshot persistence on)"
start_daemon "$DIR/spanhopd.log"

stage "wait for /healthz"
wait_healthz "$DIR/spanhopd.log"
curl -fsS "http://$ADDR/healthz"; echo

stage "wait for the preloaded graph build"
for i in $(seq 1 150); do
    STATE=$(curl -fsS "http://$ADDR/graphs/grid" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$STATE" = "ready" ] && break
    if [ "$STATE" = "failed" ]; then
        echo "build failed:"; curl -fsS "http://$ADDR/graphs/grid"; exit 1
    fi
    sleep 0.2
done
[ "$STATE" = "ready" ] || { echo "graph never became ready"; exit 1; }

stage "single query via curl"
OUT=$(curl -fsS -X POST "http://$ADDR/graphs/grid/query" -d '{"s":0,"t":224}')
echo "$OUT"
grep -q '"dist":' <<<"$OUT" || { echo "query response missing dist"; exit 1; }
COLD_DIST=$(echo "$OUT" | sed -n 's/.*"dist":\([0-9]*\).*/\1/p')

stage "loadgen with bit-exact verification"
"$DIR/bin/loadgen" -addr "http://$ADDR" -gen "er:n=512,d=6,w=uniform,maxw=30" \
    -mix hotspot -concurrency 8 -requests 400 -verify

stage "loadgen mutation traffic: mutate, verify overlay + rebuilt answers"
"$DIR/bin/loadgen" -addr "http://$ADDR" -gen "er:n=512,d=6,w=uniform,maxw=30" \
    -mix uniform -concurrency 8 -requests 200 \
    -mutate 5 -mutate-batch 3 -mutate-mix churn -verify

stage "/stats"
STATS=$(curl -fsS "http://$ADDR/stats")
echo "$STATS"
grep -q '"build_stages"' <<<"$STATS" || { echo "stats missing build_stages telemetry"; exit 1; }

stage "observability: traced query burst, /debug/traces, pprof"
# Every 2nd loadgen query requests a server-side trace; loadgen must
# print the slowest request's span breakdown from the response header.
"$DIR/bin/loadgen" -addr "http://$ADDR" -graph grid -mix uniform \
    -concurrency 4 -requests 100 -trace-sample 2 | tee "$DIR/trace.out"
grep -q "trace: spans cover" "$DIR/trace.out" \
    || { echo "loadgen printed no span breakdown"; exit 1; }
# The ring must hold the burst's traces with the expected span names.
TRACES=$(curl -fsS "http://$ADDR/debug/traces")
grep -q '"count":[1-9]' <<<"$TRACES" || { echo "trace ring empty after traced burst"; exit 1; }
for span in decode queue-wait exec; do
    grep -q "\"name\":\"$span\"" <<<"$TRACES" \
        || { echo "trace ring missing span \"$span\""; exit 1; }
done
grep -q '"batch_size"' <<<"$TRACES" || { echo "traces missing batch_size annotation"; exit 1; }
# One explicitly traced request must echo the breakdown in-band.
# (Buffer curl output before grep -q: -q closes the pipe on the first
# match, and pipefail would turn curl's resulting EPIPE into a fail.)
TRACED=$(curl -fsSi -X POST -H 'X-Spanhop-Trace: 1' "http://$ADDR/graphs/grid/query" \
    -d '{"s":1,"t":223}')
grep -qi '^X-Spanhop-Trace:' <<<"$TRACED" \
    || { echo "traced query echoed no X-Spanhop-Trace header"; exit 1; }
# pprof and the runtime/build-info metrics are live.
HEAP=$(curl -fsS "http://$ADDR/debug/pprof/heap?debug=1")
grep -q "heap profile" <<<"$HEAP" \
    || { echo "pprof heap endpoint unavailable; got:"; echo "$HEAP" | head -5; exit 1; }
METRICS=$(curl -fsS "http://$ADDR/metrics")
grep -q 'spanhop_build_info{' <<<"$METRICS" || { echo "metrics missing build_info"; exit 1; }
grep -q 'spanhop_go_goroutines' <<<"$METRICS" || { echo "metrics missing runtime gauges"; exit 1; }
grep -q 'spanhop_events_total{event="build_ready"}' <<<"$METRICS" \
    || { echo "metrics missing lifecycle event counters"; exit 1; }

stage "workload analytics: /debug/workload + loadgen cross-check"
# loadgen asserts the server's analytics deltas (op mix, sketch total,
# exact heavy-hitter counts) match the load it just generated.
"$DIR/bin/loadgen" -addr "http://$ADDR" -graph grid -mix repeat \
    -concurrency 4 -requests 200 -report-workload | tee "$DIR/workload.out"
grep -q "workload: server analytics match the generated load" "$DIR/workload.out" \
    || { echo "loadgen workload cross-check did not pass"; exit 1; }
WL=$(curl -fsS "http://$ADDR/debug/workload?graph=grid&k=8")
grep -q '"top_pairs":\[{' <<<"$WL" || { echo "workload missing heavy hitters"; exit 1; }
grep -q '"op":"query"' <<<"$WL" || { echo "workload missing query op row"; exit 1; }
grep -q '"slo":{' <<<"$WL" || { echo "workload missing SLO state (-slo-target set)"; exit 1; }

stage "per-graph cost attribution in /metrics and /stats"
METRICS=$(curl -fsS "http://$ADDR/metrics")
grep -q 'spanhop_graph_cpu_seconds_total{graph="grid",op="query"}' <<<"$METRICS" \
    || { echo "metrics missing per-graph query CPU attribution"; exit 1; }
grep -q 'spanhop_graph_allocs_total{graph="grid"' <<<"$METRICS" \
    || { echo "metrics missing per-graph alloc attribution"; exit 1; }
grep -q 'spanhop_slo_burn_rate{graph="grid",window="1m"}' <<<"$METRICS" \
    || { echo "metrics missing SLO burn-rate gauge"; exit 1; }
curl -fsS "http://$ADDR/stats" | grep -q '"costs":\[{' \
    || { echo "stats missing per-graph cost rows"; exit 1; }

stage "chrome trace export from the trace ring"
CHROME=$(curl -fsS "http://$ADDR/debug/traces?format=chrome")
grep -q '"traceEvents":\[' <<<"$CHROME" || { echo "chrome export missing traceEvents"; exit 1; }
grep -q '"ph":"X"' <<<"$CHROME" || { echo "chrome export has no complete events"; exit 1; }
# The graph filter must narrow the ring to real traces for that graph.
curl -fsS "http://$ADDR/debug/traces?graph=grid" | grep -q '"count":[1-9]' \
    || { echo "trace ?graph=grid filter returned nothing"; exit 1; }

stage "continuous profiling: ring capture on disk and over HTTP"
# The collector captures immediately on startup (cpu runs 2.5s), so by
# now the ring holds at least one cpu and one heap profile.
for i in $(seq 1 100); do
    ls "$DIR"/profiles/cpu-*.pprof >/dev/null 2>&1 \
        && ls "$DIR"/profiles/heap-*.pprof >/dev/null 2>&1 && break
    sleep 0.2
done
ls "$DIR"/profiles/cpu-*.pprof >/dev/null 2>&1 || { echo "no cpu profile captured"; exit 1; }
ls "$DIR"/profiles/heap-*.pprof >/dev/null 2>&1 || { echo "no heap profile captured"; exit 1; }
PROFLIST=$(curl -fsS "http://$ADDR/debug/profiles/")
grep -q '"profiles":\["' <<<"$PROFLIST" || { echo "profile ring listing empty"; exit 1; }
PROFNAME=$(sed -n 's/.*"profiles":\["\([^"]*\)".*/\1/p' <<<"$PROFLIST")
curl -fsS "http://$ADDR/debug/profiles/$PROFNAME" -o "$DIR/one.pprof"
[ -s "$DIR/one.pprof" ] || { echo "served profile $PROFNAME is empty"; exit 1; }
# Traversal is stopped before the handler (the mux redirects dotdot
# segments); names outside the collector's scheme must 404.
CODE=$(curl -s --path-as-is -o /dev/null -w "%{http_code}" "http://$ADDR/debug/profiles/../grid.bin")
[ "$CODE" = "404" ] || [ "$CODE" = "301" ] \
    || { echo "profile handler served a traversal path ($CODE)"; exit 1; }
CODE=$(curl -s -o /dev/null -w "%{http_code}" "http://$ADDR/debug/profiles/forged.pprof")
[ "$CODE" = "404" ] || { echo "profile handler served a foreign name ($CODE)"; exit 1; }

stage "structured-logging gate (no ad-hoc prints in internal/)"
"$(dirname "$0")/check-logging.sh"

stage "wait for the background snapshot write"
for i in $(seq 1 100); do
    [ -f "$SNAPDIR/grid.snap" ] && break
    sleep 0.2
done
[ -f "$SNAPDIR/grid.snap" ] || { echo "grid snapshot never written"; exit 1; }

stage "forced snapshot write via the admin API"
curl -fsS -X POST "http://$ADDR/graphs/grid/snapshot" | grep -q '"size_bytes"' \
    || { echo "forced snapshot failed"; exit 1; }

stage "DELETE a building graph (abort the in-flight build)"
curl -fsS -X POST "http://$ADDR/graphs" \
    -d '{"name":"doomed","gen":"er:n=16384,d=8,w=uniform,maxw=64","seed":9}' >/dev/null
curl -fsS -X DELETE "http://$ADDR/graphs/doomed" | grep -q '"deleted":true' \
    || { echo "DELETE of building graph failed"; exit 1; }
CODE=$(curl -s -o /dev/null -w "%{http_code}" "http://$ADDR/graphs/doomed")
[ "$CODE" = "404" ] || { echo "deleted building graph still visible ($CODE)"; exit 1; }

stage "DELETE the ready graph (snapshot file must go with it)"
curl -fsS -X DELETE "http://$ADDR/graphs/loadgen" | grep -q '"deleted":true' \
    || { echo "DELETE response missing deleted flag"; exit 1; }
CODE=$(curl -s -o /dev/null -w "%{http_code}" "http://$ADDR/graphs/loadgen")
[ "$CODE" = "404" ] || { echo "deleted graph still visible ($CODE)"; exit 1; }
CODE=$(curl -s -o /dev/null -w "%{http_code}" -X POST "http://$ADDR/graphs/loadgen/query" -d '{"s":0,"t":1}')
[ "$CODE" = "404" ] || { echo "query on deleted graph returned $CODE, want 404"; exit 1; }
[ ! -f "$SNAPDIR/loadgen.snap" ] || { echo "deleted graph's snapshot survived"; exit 1; }
# The grid graph must be unaffected by its neighbors' eviction.
curl -fsS -X POST "http://$ADDR/graphs/grid/query" -d '{"s":0,"t":224}' | grep -q '"dist":' \
    || { echo "grid graph broken after deletes"; exit 1; }

stage "graceful shutdown"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
grep -q "bye" "$DIR/spanhopd.log" || { echo "no clean shutdown:"; cat "$DIR/spanhopd.log"; exit 1; }

stage "restart: warm-start from the snapshot dir, no rebuild"
start_daemon "$DIR/spanhopd2.log"
wait_healthz "$DIR/spanhopd2.log"
INFO=$(curl -fsS "http://$ADDR/graphs/grid")
echo "$INFO"
grep -q '"state":"ready"' <<<"$INFO" || { echo "warm-started graph not ready"; exit 1; }
grep -q '"warm_started":true' <<<"$INFO" || { echo "graph not marked warm_started"; exit 1; }
grep -q '"build_stages"' <<<"$INFO" && { echo "warm start recorded build stages — a rebuild happened"; exit 1; }
grep -q "warm-started 1 graph" "$DIR/spanhopd2.log" || { echo "no warm-start log line"; exit 1; }
grep -q "skipping -load grid" "$DIR/spanhopd2.log" || { echo "preload not skipped after warm start"; exit 1; }

stage "warm-started answers match the first life"
WARM=$(curl -fsS -X POST "http://$ADDR/graphs/grid/query" -d '{"s":0,"t":224}')
WARM_DIST=$(echo "$WARM" | sed -n 's/.*"dist":\([0-9]*\).*/\1/p')
[ "$WARM_DIST" = "$COLD_DIST" ] || { echo "warm answer $WARM_DIST != cold answer $COLD_DIST"; exit 1; }

stage "mutate the live graph: insert a shortcut, delete an edge"
MUT=$(curl -fsS -X POST "http://$ADDR/graphs/grid/edges" \
    -d '{"updates":[{"op":"insert","u":0,"v":224,"w":1},{"op":"delete","u":0,"v":1}]}')
echo "$MUT"
grep -q '"generation":2' <<<"$MUT" || { echo "generation did not bump to 2"; exit 1; }

stage "queries see the mutation immediately"
OUT=$(curl -fsS -X POST "http://$ADDR/graphs/grid/query" -d '{"s":0,"t":224}')
MUT_DIST=$(echo "$OUT" | sed -n 's/.*"dist":\([0-9]*\).*/\1/p')
[ "$MUT_DIST" = "1" ] || { echo "mutated query answered $MUT_DIST, want the inserted shortcut (1)"; exit 1; }

stage "overlay gauges in /stats and /metrics"
curl -fsS "http://$ADDR/stats" | grep -q '"pending_updates":2' \
    || { echo "stats missing pending_updates"; exit 1; }
METRICS=$(curl -fsS "http://$ADDR/metrics")
grep -q 'spanhop_generation{graph="grid"} 2' <<<"$METRICS" \
    || { echo "metrics missing generation gauge"; exit 1; }
grep -q 'spanhop_requests_total{graph="grid"}' <<<"$METRICS" \
    || { echo "metrics missing request counter"; exit 1; }

stage "answer-quality auditing: traced burst over the mutated graph"
# Every query is sampled (-audit-sample 1) and the graph carries live
# mutations, so the auditor re-checks clean/improving/degrading
# answers alike. loadgen waits for the audit queue to drain and
# asserts zero envelope violations for the traffic it generated.
"$DIR/bin/loadgen" -addr "http://$ADDR" -graph grid -mix uniform \
    -concurrency 4 -requests 100 -trace-sample 2 -report-quality | tee "$DIR/quality.out"
grep -q "quality: .* answers shadow re-checked, 0 violations" "$DIR/quality.out" \
    || { echo "loadgen quality cross-check did not pass"; exit 1; }
QUALITY=$(curl -fsS "http://$ADDR/debug/quality?graph=grid")
grep -q '"audited":[1-9]' <<<"$QUALITY" || { echo "auditor checked no samples"; exit 1; }
grep -q '"violations":0' <<<"$QUALITY" || { echo "auditor reported violations"; exit 1; }
grep -q '"evidence":\[\]' <<<"$QUALITY" \
    || { echo "evidence ring not empty (or missing) on a correct build"; exit 1; }
grep -q '"regime":"degrading"' <<<"$QUALITY" \
    || { echo "no degrading-regime audits despite live deletions"; exit 1; }
# The stretch histogram reaches /metrics, and a hostile filter 404s.
METRICS=$(curl -fsS "http://$ADDR/metrics")
grep -q 'spanhop_stretch_ratio_bucket{graph="grid"' <<<"$METRICS" \
    || { echo "metrics missing stretch-ratio histogram"; exit 1; }
grep -q 'spanhop_quality_violations_total{graph="grid"} 0' <<<"$METRICS" \
    || { echo "metrics missing zero violation counter"; exit 1; }
CODE=$(curl -s -o /dev/null -w "%{http_code}" "http://$ADDR/debug/quality?graph=nosuch")
[ "$CODE" = "404" ] || { echo "hostile quality filter returned $CODE, want 404"; exit 1; }

stage "persist the journal, restart, and verify the replay"
curl -fsS -X POST "http://$ADDR/graphs/grid/snapshot" >/dev/null
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
start_daemon "$DIR/spanhopd3.log"
wait_healthz "$DIR/spanhopd3.log"
INFO=$(curl -fsS "http://$ADDR/graphs/grid")
grep -q '"warm_started":true' <<<"$INFO" || { echo "third life not warm-started"; exit 1; }
grep -q '"generation":2' <<<"$INFO" || { echo "journal generation lost across restart"; exit 1; }
grep -q '"pending_updates":2' <<<"$INFO" || { echo "journal entries lost across restart"; exit 1; }
OUT=$(curl -fsS -X POST "http://$ADDR/graphs/grid/query" -d '{"s":0,"t":224}')
REPLAY_DIST=$(echo "$OUT" | sed -n 's/.*"dist":\([0-9]*\).*/\1/p')
[ "$REPLAY_DIST" = "1" ] || { echo "replayed journal answered $REPLAY_DIST, want 1"; exit 1; }

stage "final shutdown"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
grep -q "bye" "$DIR/spanhopd3.log" || { echo "no clean third shutdown:"; cat "$DIR/spanhopd3.log"; exit 1; }
echo "smoke OK"
