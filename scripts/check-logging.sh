#!/usr/bin/env bash
# Structured-logging gate: non-test code under internal/ must log
# through log/slog (via internal/obs) — ad-hoc stdout/stderr prints
# bypass -log-format/-log-level and are invisible to log shippers, so
# CI rejects them. Tests and cmd/ tools (whose stdout IS the product)
# are exempt.
set -euo pipefail
cd "$(dirname "$0")/.."

bad=$(grep -rnE '\b(log\.(Print|Printf|Println|Fatal|Fatalf|Fatalln|Panic|Panicf|Panicln)|fmt\.(Print|Printf|Println))\(' \
    internal/ --include='*.go' | grep -v '_test\.go' || true)
if [ -n "$bad" ]; then
    echo "check-logging.sh: ad-hoc logging in internal/ — use log/slog via internal/obs instead:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "check-logging.sh: OK (no ad-hoc prints in internal/)"
