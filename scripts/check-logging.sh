#!/usr/bin/env bash
# Structured-logging gate: non-test code under internal/ must log
# through log/slog (via internal/obs) — ad-hoc stdout/stderr prints
# bypass -log-format/-log-level and are invisible to log shippers, so
# CI rejects them. Tests are exempt.
#
# cmd/ tools print reports to stdout deliberately, so fmt.Printf/
# fmt.Fprintf stay legal there — but the global `log` package (which
# bypasses the daemon's -log-format/-log-level entirely) and bare
# fmt.Println (an implicit-stdout print with no declared destination,
# the classic leftover debug line) are stray in any binary: write to
# an explicit io.Writer or go through log/slog.
set -euo pipefail
cd "$(dirname "$0")/.."

bad=$(grep -rnE '\b(log\.(Print|Printf|Println|Fatal|Fatalf|Fatalln|Panic|Panicf|Panicln)|fmt\.(Print|Printf|Println))\(' \
    internal/ --include='*.go' | grep -v '_test\.go' || true)
if [ -n "$bad" ]; then
    echo "check-logging.sh: ad-hoc logging in internal/ — use log/slog via internal/obs instead:" >&2
    echo "$bad" >&2
    exit 1
fi

badcmd=$(grep -rnE '\b(log\.(Print|Printf|Println|Fatal|Fatalf|Fatalln|Panic|Panicf|Panicln)|fmt\.Println)\(' \
    cmd/ --include='*.go' | grep -v '_test\.go' || true)
if [ -n "$badcmd" ]; then
    echo "check-logging.sh: stray logging in cmd/ — use log/slog (daemons) or an explicit fmt.Fprint* writer (reports):" >&2
    echo "$badcmd" >&2
    exit 1
fi
echo "check-logging.sh: OK (no ad-hoc prints in internal/, no stray log/fmt.Println in cmd/)"
