package spanhop

import (
	"runtime"
	"testing"
)

func withProcs(t *testing.T, p int, body func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	body()
}

// TestQueryBatchMatchesSerial: the fanned batch must return exactly
// what issuing each query alone returns, and concurrent queries must
// not corrupt the oracle's lazy caches (run under -race in CI).
func TestQueryBatchMatchesSerial(t *testing.T) {
	withProcs(t, 4, func() {
		g := WithUniformWeights(GridGraph(25, 25), 200, 11)
		o := NewDistanceOracle(g, 0.25, 12)
		n := g.NumVertices()
		var pairs [][2]V
		for i := V(0); i < 40; i++ {
			pairs = append(pairs, [2]V{i * 7 % n, n - 1 - (i*13)%n})
		}
		batch, err := o.QueryBatch(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pairs {
			st, err := o.QueryStats(p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			if st.Dist != batch[i].Dist {
				t.Fatalf("pair %d (%d,%d): batch %d vs serial %d",
					i, p[0], p[1], batch[i].Dist, st.Dist)
			}
		}
	})
}

// TestQueryBatchDecomposed exercises the Appendix B routing path (huge
// weight ratio forces the weight-class decomposition) under fan-out.
func TestQueryBatchDecomposed(t *testing.T) {
	withProcs(t, 4, func() {
		g := WithMultiScaleWeights(RandomGraph(150, 600, 13), 4, 25, 14)
		o := NewDistanceOracle(g, 0.3, 15)
		if !o.Decomposed() {
			t.Skip("weight ratio did not trigger decomposition")
		}
		pairs := [][2]V{{0, 149}, {3, 77}, {10, 10}, {149, 0}}
		batch, err := o.QueryBatch(pairs)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pairs {
			st, _ := o.QueryStats(p[0], p[1])
			if st.Dist != batch[i].Dist {
				t.Fatalf("pair %d: batch %d vs serial %d", i, batch[i].Dist, st.Dist)
			}
		}
	})
}

func TestQueryBatchRejectsOutOfRange(t *testing.T) {
	g := GridGraph(5, 5)
	o := NewDistanceOracle(g, 0.25, 1)
	if _, err := o.QueryBatch([][2]V{{0, 3}, {0, 99}}); err == nil {
		t.Fatal("out-of-range pair not rejected")
	}
}

// TestFacadeParallelVariantsAgree pins the facade-level contract: the
// parallel entry points return the same distances / edge sets /
// clusterings as their sequential oracles.
func TestFacadeParallelVariantsAgree(t *testing.T) {
	withProcs(t, 4, func() {
		g := WithUniformWeights(RandomGraph(2000, 8000, 21), 30, 22)

		ds := ParallelShortestPaths(g, 0, nil)
		dj := ShortestPaths(g, 0)
		for v := range ds.Dist {
			if ds.Dist[v] != dj.Dist[v] {
				t.Fatalf("Δ-stepping dist[%d] = %d, want %d", v, ds.Dist[v], dj.Dist[v])
			}
		}

		cp := ESTClusterParallel(g, 0.2, 23, nil)
		cs := ESTCluster(g, 0.2, 23)
		for v := range cs.Center {
			if cp.Center[v] != cs.Center[v] {
				t.Fatalf("parallel clustering diverged at %d", v)
			}
		}

		sp := UnweightedSpannerParallel(g, 3, 24, nil)
		ss := UnweightedSpanner(g, 3, 24)
		if len(sp.EdgeIDs) != len(ss.EdgeIDs) {
			t.Fatalf("spanner sizes diverged: %d vs %d", len(sp.EdgeIDs), len(ss.EdgeIDs))
		}
		for i := range ss.EdgeIDs {
			if sp.EdgeIDs[i] != ss.EdgeIDs[i] {
				t.Fatalf("spanner edge %d diverged", i)
			}
		}

		hp := ParallelHopLimitedDistances(g, nil, 0, 8)
		hs := HopLimitedDistances(g, nil, 0, 8)
		for v := range hs {
			if hp[v] != hs[v] {
				t.Fatalf("hop-limited dist diverged at %d", v)
			}
		}
	})
}
