package ufind

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBasic(t *testing.T) {
	u := New(5)
	if u.Sets() != 5 {
		t.Fatalf("initial sets = %d", u.Sets())
	}
	if !u.Union(0, 1) {
		t.Fatal("union of distinct sets returned false")
	}
	if u.Union(1, 0) {
		t.Fatal("union of same set returned true")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Fatal("Same broken")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Sets() != 2 {
		t.Fatalf("sets = %d, want 2", u.Sets())
	}
	if !u.Same(1, 2) {
		t.Fatal("transitive union broken")
	}
	if u.Len() != 5 {
		t.Fatalf("Len = %d", u.Len())
	}
}

func TestDenseLabels(t *testing.T) {
	u := New(6)
	u.Union(0, 2)
	u.Union(3, 4)
	labels, count := u.DenseLabels()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] {
		t.Fatal("merged elements got different labels")
	}
	if labels[0] == labels[1] || labels[1] == labels[5] || labels[0] == labels[5] {
		t.Fatal("distinct sets share labels")
	}
	for _, l := range labels {
		if l < 0 || l >= count {
			t.Fatalf("label %d out of range", l)
		}
	}
	// First-appearance ordering: element 0's set gets label 0.
	if labels[0] != 0 || labels[1] != 1 {
		t.Fatalf("labels not in first-appearance order: %v", labels)
	}
}

// Property: union-find agrees with a naive reference under random
// operation sequences.
func TestAgainstNaiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := int32(r.Intn(50) + 1)
		u := New(n)
		naive := make([]int32, n) // naive[i] = set id
		for i := range naive {
			naive[i] = int32(i)
		}
		for op := 0; op < 100; op++ {
			a, b := r.Int31n(n), r.Int31n(n)
			if r.Bernoulli(0.5) {
				u.Union(a, b)
				sa, sb := naive[a], naive[b]
				if sa != sb {
					for i := range naive {
						if naive[i] == sb {
							naive[i] = sa
						}
					}
				}
			} else {
				if u.Same(a, b) != (naive[a] == naive[b]) {
					return false
				}
			}
		}
		// Set counts must agree.
		distinct := map[int32]bool{}
		for _, s := range naive {
			distinct[s] = true
		}
		return int32(len(distinct)) == u.Sets()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
