// Package ufind provides a union-find (disjoint set union) structure
// with path halving and union by rank. The weighted spanner
// construction uses it to maintain the hierarchical contraction state
// H_i of Algorithm 3, and the Appendix B weight-class decomposition
// uses it to build prefix-component trees.
package ufind

// UF is a disjoint-set forest over elements 0..n-1.
type UF struct {
	parent []int32
	rank   []int8
	sets   int32
}

// New returns a union-find with n singleton sets.
func New(n int32) *UF {
	u := &UF{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UF) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether they were
// previously distinct.
func (u *UF) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (u *UF) Same(a, b int32) bool { return u.Find(a) == u.Find(b) }

// Sets returns the current number of disjoint sets.
func (u *UF) Sets() int32 { return u.sets }

// Len returns the number of elements.
func (u *UF) Len() int32 { return int32(len(u.parent)) }

// DenseLabels returns a per-element label array relabeling set
// representatives to dense ids [0, Sets()) in order of first
// appearance, together with the label count.
func (u *UF) DenseLabels() ([]int32, int32) {
	labels := make([]int32, len(u.parent))
	next := int32(0)
	seen := make(map[int32]int32, u.sets)
	for i := range u.parent {
		r := u.Find(int32(i))
		l, ok := seen[r]
		if !ok {
			l = next
			seen[r] = l
			next++
		}
		labels[i] = l
	}
	return labels, next
}
