// Package workload defines the named synthetic workloads every
// experiment runs on, so that bench targets, cmd/figures, and
// EXPERIMENTS.md all refer to the same inputs.
//
// The paper proves worst-case / with-high-probability bounds, so the
// reproduction sweeps structurally different families: low-diameter
// uniform graphs (ER), skewed-degree graphs (RMAT, preferential
// attachment), and high-diameter constant-degree graphs (grids) where
// hopsets matter most; weighted variants use uniform weights (single
// scale) and exponential weights (multi-scale, exercising the
// bucketing and Appendix B machinery).
package workload

import (
	"fmt"

	"repro/internal/graph"
)

// Spec names a workload and builds it on demand.
type Spec struct {
	Name string
	Gen  func() *graph.Graph
}

// ER returns a connected Erdős–Rényi workload with average degree
// 2m/n = 2·density.
func ER(n int32, density int, seed uint64) Spec {
	return Spec{
		Name: fmt.Sprintf("er-n%d-d%d", n, density),
		Gen: func() *graph.Graph {
			return graph.RandomConnectedGNM(n, int64(n)*int64(density), seed)
		},
	}
}

// RMATSpec returns a skewed-degree RMAT workload with 2^scale
// vertices.
func RMATSpec(scale int, degree int, seed uint64) Spec {
	return Spec{
		Name: fmt.Sprintf("rmat-s%d-d%d", scale, degree),
		Gen: func() *graph.Graph {
			n := int64(1) << scale
			return graph.RMAT(scale, n*int64(degree), 0.57, 0.19, 0.19, seed)
		},
	}
}

// Grid returns a side×side grid workload (high diameter).
func Grid(side int32) Spec {
	return Spec{
		Name: fmt.Sprintf("grid-%dx%d", side, side),
		Gen:  func() *graph.Graph { return graph.Grid2D(side, side) },
	}
}

// Hyper returns the d-dimensional hypercube workload.
func Hyper(d int) Spec {
	return Spec{
		Name: fmt.Sprintf("hypercube-%d", d),
		Gen:  func() *graph.Graph { return graph.Hypercube(d) },
	}
}

// WithUniformWeights wraps a spec with uniform integer weights in
// [1, maxW].
func WithUniformWeights(s Spec, maxW graph.W, seed uint64) Spec {
	return Spec{
		Name: fmt.Sprintf("%s-wU%d", s.Name, maxW),
		Gen:  func() *graph.Graph { return graph.UniformWeights(s.Gen(), maxW, seed) },
	}
}

// WithExponentialWeights wraps a spec with multi-scale weights
// spanning base^scales.
func WithExponentialWeights(s Spec, base, scales float64, seed uint64) Spec {
	return Spec{
		Name: fmt.Sprintf("%s-wExp%.0f^%.0f", s.Name, base, scales),
		Gen:  func() *graph.Graph { return graph.ExponentialWeights(s.Gen(), base, scales, seed) },
	}
}

// SpannerFamilies returns the Figure 1 input sweep at the given size
// scale (1 = benchmark default).
func SpannerFamilies(seed uint64) []Spec {
	return []Spec{
		ER(4096, 8, seed),
		RMATSpec(12, 8, seed+1),
		Grid(64),
	}
}

// HopsetFamilies returns the Figure 2 input sweep.
func HopsetFamilies(seed uint64) []Spec {
	return []Spec{
		ER(4096, 4, seed),
		Grid(64),
		Hyper(12),
	}
}
