// Package workload defines the named synthetic workloads every
// experiment runs on, so that bench targets, cmd/figures, and
// EXPERIMENTS.md all refer to the same inputs.
//
// The paper proves worst-case / with-high-probability bounds, so the
// reproduction sweeps structurally different families: low-diameter
// uniform graphs (ER), skewed-degree graphs (RMAT, preferential
// attachment), and high-diameter constant-degree graphs (grids) where
// hopsets matter most; weighted variants use uniform weights (single
// scale) and exponential weights (multi-scale, exercising the
// bucketing and Appendix B machinery).
package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Spec names a workload and builds it on demand.
type Spec struct {
	Name string
	Gen  func() *graph.Graph
}

// ER returns a connected Erdős–Rényi workload with average degree
// 2m/n = 2·density.
func ER(n int32, density int, seed uint64) Spec {
	return Spec{
		Name: fmt.Sprintf("er-n%d-d%d", n, density),
		Gen: func() *graph.Graph {
			return graph.RandomConnectedGNM(n, int64(n)*int64(density), seed)
		},
	}
}

// RMATSpec returns a skewed-degree RMAT workload with 2^scale
// vertices.
func RMATSpec(scale int, degree int, seed uint64) Spec {
	return Spec{
		Name: fmt.Sprintf("rmat-s%d-d%d", scale, degree),
		Gen: func() *graph.Graph {
			n := int64(1) << scale
			return graph.RMAT(scale, n*int64(degree), 0.57, 0.19, 0.19, seed)
		},
	}
}

// Grid returns a side×side grid workload (high diameter).
func Grid(side int32) Spec {
	return Spec{
		Name: fmt.Sprintf("grid-%dx%d", side, side),
		Gen:  func() *graph.Graph { return graph.Grid2D(side, side) },
	}
}

// Hyper returns the d-dimensional hypercube workload.
func Hyper(d int) Spec {
	return Spec{
		Name: fmt.Sprintf("hypercube-%d", d),
		Gen:  func() *graph.Graph { return graph.Hypercube(d) },
	}
}

// WithUniformWeights wraps a spec with uniform integer weights in
// [1, maxW].
func WithUniformWeights(s Spec, maxW graph.W, seed uint64) Spec {
	return Spec{
		Name: fmt.Sprintf("%s-wU%d", s.Name, maxW),
		Gen:  func() *graph.Graph { return graph.UniformWeights(s.Gen(), maxW, seed) },
	}
}

// WithExponentialWeights wraps a spec with multi-scale weights
// spanning base^scales.
func WithExponentialWeights(s Spec, base, scales float64, seed uint64) Spec {
	return Spec{
		Name: fmt.Sprintf("%s-wExp%.0f^%.0f", s.Name, base, scales),
		Gen:  func() *graph.Graph { return graph.ExponentialWeights(s.Gen(), base, scales, seed) },
	}
}

// PA returns a preferential-attachment workload (heavy-tailed degrees
// without RMAT's disconnected fringe).
func PA(n int32, deg int, seed uint64) Spec {
	return Spec{
		Name: fmt.Sprintf("pa-n%d-d%d", n, deg),
		Gen:  func() *graph.Graph { return graph.PreferentialAttachment(n, deg, seed) },
	}
}

// ParseSpec parses a compact generator spec string into a Spec, so
// that the serving layer (POST /graphs) and cmd tools can name graphs
// without a file. The format is
//
//	family[:key=val,key=val,...]
//
// with families er (n, d), rmat (scale, d), grid (side), hyper (dim),
// path (n), cycle (n), pa (n, deg); optional weight keys w=uniform
// (maxw) or w=exp (base, scales); and an optional seed=N override of
// the seed argument. Examples:
//
//	er:n=4096,d=8
//	grid:side=64,w=uniform,maxw=50
//	rmat:scale=12,d=8,w=exp,base=10,scales=6,seed=7
//
// Generation is deterministic in (spec, seed), which is what lets
// cmd/loadgen rebuild a server-side graph locally and verify answers
// bit-for-bit.
func ParseSpec(s string, seed uint64) (Spec, error) {
	fam, rest, _ := strings.Cut(strings.TrimSpace(s), ":")
	kv := map[string]string{}
	if rest != "" {
		for _, f := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(f, "=")
			if !ok || k == "" || v == "" {
				return Spec{}, fmt.Errorf("workload: bad spec field %q in %q", f, s)
			}
			kv[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	intKey := func(key string, def int64) (int64, error) {
		v, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("workload: bad %s=%q in spec %q", key, v, s)
		}
		return n, nil
	}
	floatKey := func(key string, def float64) (float64, error) {
		v, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("workload: bad %s=%q in spec %q", key, v, s)
		}
		return f, nil
	}

	if sd, err := intKey("seed", int64(seed)); err != nil {
		return Spec{}, err
	} else if sd < 0 {
		return Spec{}, fmt.Errorf("workload: negative seed in spec %q", s)
	} else {
		seed = uint64(sd)
	}

	var spec Spec
	var err error
	fail := func(e error) (Spec, error) { return Spec{}, e }
	// A spec can arrive over the network (POST /graphs), so every
	// family bounds both its vertex count and its total edge demand —
	// otherwise "d=2000000000" is a remote out-of-memory request that
	// no recover() can catch.
	const maxEdges = 1 << 28
	switch fam {
	case "er":
		var n, d int64
		if n, err = intKey("n", 1024); err != nil {
			return fail(err)
		}
		if d, err = intKey("d", 8); err != nil {
			return fail(err)
		}
		// Divide instead of multiplying: n*d overflows int64 for
		// attacker-sized d, sailing past the bound.
		if n < 1 || n > 1<<26 || d < 1 || d > maxEdges/n {
			return fail(fmt.Errorf("workload: er spec %q out of range", s))
		}
		spec = ER(int32(n), int(d), seed)
	case "rmat":
		var sc, d int64
		if sc, err = intKey("scale", 10); err != nil {
			return fail(err)
		}
		if d, err = intKey("d", 8); err != nil {
			return fail(err)
		}
		if sc < 1 || sc > 26 || d < 1 || d > maxEdges/(int64(1)<<sc) {
			return fail(fmt.Errorf("workload: rmat spec %q out of range", s))
		}
		spec = RMATSpec(int(sc), int(d), seed)
	case "grid":
		var side int64
		if side, err = intKey("side", 32); err != nil {
			return fail(err)
		}
		if side < 1 || side > 8192 {
			return fail(fmt.Errorf("workload: grid spec %q out of range", s))
		}
		spec = Grid(int32(side))
	case "hyper":
		var dim int64
		if dim, err = intKey("dim", 8); err != nil {
			return fail(err)
		}
		if dim < 1 || dim > 26 {
			return fail(fmt.Errorf("workload: hyper spec %q out of range", s))
		}
		spec = Hyper(int(dim))
	case "path", "cycle":
		var n int64
		if n, err = intKey("n", 1024); err != nil {
			return fail(err)
		}
		if n < 1 || n > 1<<26 {
			return fail(fmt.Errorf("workload: %s spec %q out of range", fam, s))
		}
		if fam == "path" {
			spec = Spec{Name: fmt.Sprintf("path-n%d", n), Gen: func() *graph.Graph { return graph.Path(int32(n)) }}
		} else {
			spec = Spec{Name: fmt.Sprintf("cycle-n%d", n), Gen: func() *graph.Graph { return graph.Cycle(int32(n)) }}
		}
	case "pa":
		var n, d int64
		if n, err = intKey("n", 1024); err != nil {
			return fail(err)
		}
		if d, err = intKey("deg", 3); err != nil {
			return fail(err)
		}
		if n < 2 || n > 1<<26 || d < 1 || d > maxEdges/n {
			return fail(fmt.Errorf("workload: pa spec %q out of range", s))
		}
		spec = PA(int32(n), int(d), seed)
	default:
		return fail(fmt.Errorf("workload: unknown family %q in spec %q", fam, s))
	}

	switch w := kv["w"]; w {
	case "":
	case "uniform":
		delete(kv, "w")
		maxw, err := intKey("maxw", 100)
		if err != nil {
			return fail(err)
		}
		if maxw < 1 {
			return fail(fmt.Errorf("workload: maxw in spec %q must be positive", s))
		}
		spec = WithUniformWeights(spec, maxw, seed+1)
	case "exp":
		delete(kv, "w")
		base, err := floatKey("base", 10)
		if err != nil {
			return fail(err)
		}
		scales, err := floatKey("scales", 6)
		if err != nil {
			return fail(err)
		}
		if base <= 1 || scales < 1 {
			return fail(fmt.Errorf("workload: exp weights in spec %q out of range", s))
		}
		spec = WithExponentialWeights(spec, base, scales, seed+1)
	default:
		return fail(fmt.Errorf("workload: unknown weight kind %q in spec %q", w, s))
	}
	if len(kv) != 0 {
		for k := range kv {
			return fail(fmt.Errorf("workload: unknown key %q in spec %q", k, s))
		}
	}
	return spec, nil
}

// ---------------------------------------------------------------------------
// Query mixes: deterministic s-t pair streams for the serving layer.

// Mix is a deterministic stream of s-t query pairs over [0, n). Not
// safe for concurrent use — give every load-generator worker its own
// Mix (vary the seed).
type Mix struct {
	Name string
	next func() [2]graph.V
}

// Next returns the next query pair.
func (m Mix) Next() [2]graph.V { return m.next() }

// pair draws s uniformly and t uniformly distinct from s (when n > 1).
func pair(r *rng.RNG, n graph.V) [2]graph.V {
	s := r.Int31n(n)
	t := r.Int31n(n)
	for n > 1 && t == s {
		t = r.Int31n(n)
	}
	return [2]graph.V{s, t}
}

// UniformMix queries uniformly random distinct pairs — the cache-cold
// worst case.
func UniformMix(n graph.V, seed uint64) Mix {
	if n < 1 {
		panic("workload: UniformMix needs n >= 1")
	}
	r := rng.New(seed)
	return Mix{Name: "uniform", next: func() [2]graph.V { return pair(r, n) }}
}

// HotspotMix sends pHot of the traffic to a small hot vertex set (the
// skewed popularity shape of real serving traffic; exercises the
// result cache).
func HotspotMix(n graph.V, hot graph.V, pHot float64, seed uint64) Mix {
	if n < 1 {
		panic("workload: HotspotMix needs n >= 1")
	}
	if hot < 1 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	r := rng.New(seed)
	return Mix{Name: "hotspot", next: func() [2]graph.V {
		if r.Bernoulli(pHot) {
			return pair(r, hot)
		}
		return pair(r, n)
	}}
}

// RepeatMix draws from a fixed pool of pre-sampled pairs — maximal
// cache-hit traffic.
func RepeatMix(n graph.V, pool int, seed uint64) Mix {
	if n < 1 {
		panic("workload: RepeatMix needs n >= 1")
	}
	if pool < 1 {
		pool = 1
	}
	r := rng.New(seed)
	pairs := make([][2]graph.V, pool)
	for i := range pairs {
		pairs[i] = pair(r, n)
	}
	return Mix{Name: "repeat", next: func() [2]graph.V { return pairs[r.Intn(pool)] }}
}

// ParseMix resolves a mix name ("uniform", "hotspot", "repeat") with
// serving-benchmark default parameters.
func ParseMix(name string, n graph.V, seed uint64) (Mix, error) {
	switch name {
	case "uniform":
		return UniformMix(n, seed), nil
	case "hotspot":
		hot := n / 64
		if hot < 2 {
			hot = 2
		}
		return HotspotMix(n, hot, 0.8, seed), nil
	case "repeat":
		return RepeatMix(n, 64, seed), nil
	default:
		return Mix{}, fmt.Errorf("workload: unknown query mix %q", name)
	}
}

// ---------------------------------------------------------------------------
// Mutation mixes: deterministic edge-mutation streams for the dynamic
// overlay (cmd/loadgen -mutate, the smoke test, and benchmarks).

// Mutator emits a deterministic stream of VALID mutations against an
// evolving graph: it tracks the pair state locally (seeded from the
// base graph), so applying its updates in order through
// DynamicOracle.ApplyUpdates (or POST /graphs/{id}/edges) never hits
// a validation error, and a second Mutator with the same (graph, mix,
// seed) reproduces the exact sequence — which is what lets a client
// replay the server's mutations locally and verify answers
// bit-for-bit. Not safe for concurrent use.
type Mutator struct {
	name     string
	r        *rng.RNG
	n        graph.V
	weighted bool
	maxW     graph.W

	// pInsert/pDelete split the op draw; the remainder is reweight.
	pInsert, pDelete float64

	state map[[2]graph.V]graph.W // present pairs → weight
	pairs [][2]graph.V           // present pairs, for O(1) delete sampling
	idx   map[[2]graph.V]int     // pair → position in pairs
}

// NewMutator builds a mutation stream over g. Mixes:
//
//   - "churn":    1/3 insert, 1/3 delete, 1/3 reweight (insert/delete
//     only on unweighted graphs) — steady-state read/write traffic.
//   - "grow":     insertions only; the overlay's fast (improving) path.
//   - "decay":    deletions only; the exact (degrading) path.
//   - "reweight": weight changes only (weighted graphs).
//
// Weights for inserts/reweights are uniform in [1, maxW] (maxW ≤ 1
// means unit weights; forced for unweighted graphs).
func NewMutator(g *graph.Graph, mix string, maxW graph.W, seed uint64) (*Mutator, error) {
	m := &Mutator{
		name:     mix,
		r:        rng.New(seed),
		n:        g.NumVertices(),
		weighted: g.Weighted(),
		maxW:     maxW,
		state:    make(map[[2]graph.V]graph.W, g.NumEdges()),
		idx:      make(map[[2]graph.V]int, g.NumEdges()),
	}
	if m.n < 2 {
		return nil, fmt.Errorf("workload: mutator needs n >= 2, got %d", m.n)
	}
	if !m.weighted {
		m.maxW = 1
	} else if m.maxW < 1 {
		m.maxW = 1
	}
	switch mix {
	case "churn":
		if m.weighted {
			m.pInsert, m.pDelete = 1.0/3, 1.0/3
		} else {
			m.pInsert, m.pDelete = 0.5, 0.5
		}
	case "grow":
		m.pInsert = 1
	case "decay":
		m.pDelete = 1
	case "reweight":
		if !m.weighted {
			return nil, fmt.Errorf("workload: reweight mix needs a weighted graph")
		}
	default:
		return nil, fmt.Errorf("workload: unknown mutation mix %q", mix)
	}
	for _, e := range g.Edges() {
		k := pairOf(e.U, e.V)
		if _, dup := m.state[k]; dup {
			continue // parallel edge: pair-level semantics keep one
		}
		m.state[k] = e.W
		m.idx[k] = len(m.pairs)
		m.pairs = append(m.pairs, k)
	}
	return m, nil
}

// Name returns the mix name.
func (m *Mutator) Name() string { return m.name }

func pairOf(u, v graph.V) [2]graph.V {
	if u > v {
		u, v = v, u
	}
	return [2]graph.V{u, v}
}

// Next returns the next mutation, already applied to the local state.
// ok is false when the mix can make no further move (e.g. "decay" on
// an empty graph, "grow" on a clique).
func (m *Mutator) Next() (up dynamic.Update, ok bool) {
	full := int64(len(m.pairs)) >= int64(m.n)*int64(m.n-1)/2
	for attempt := 0; attempt < 64; attempt++ {
		p := m.r.Float64()
		switch {
		case p < m.pInsert && !full:
			// Rejection-sample an absent pair.
			for tries := 0; tries < 64; tries++ {
				u, v := m.r.Int31n(m.n), m.r.Int31n(m.n)
				if u == v {
					continue
				}
				k := pairOf(u, v)
				if _, present := m.state[k]; present {
					continue
				}
				w := graph.W(1)
				if m.maxW > 1 {
					w = graph.W(m.r.Intn(int(m.maxW)) + 1)
				}
				m.state[k] = w
				m.idx[k] = len(m.pairs)
				m.pairs = append(m.pairs, k)
				return dynamic.Update{Op: dynamic.OpInsert, U: k[0], V: k[1], W: w}, true
			}
		case p < m.pInsert+m.pDelete && len(m.pairs) > 0:
			i := m.r.Intn(len(m.pairs))
			k := m.pairs[i]
			last := len(m.pairs) - 1
			m.pairs[i] = m.pairs[last]
			m.idx[m.pairs[i]] = i
			m.pairs = m.pairs[:last]
			delete(m.state, k)
			delete(m.idx, k)
			return dynamic.Update{Op: dynamic.OpDelete, U: k[0], V: k[1]}, true
		case p >= m.pInsert+m.pDelete && m.weighted && len(m.pairs) > 0:
			k := m.pairs[m.r.Intn(len(m.pairs))]
			w := graph.W(m.r.Intn(int(m.maxW)) + 1)
			if w == m.state[k] {
				w = w%m.maxW + 1 // force a visible change
			}
			if w == m.state[k] {
				continue // maxW == 1: no distinct weight exists
			}
			m.state[k] = w
			return dynamic.Update{Op: dynamic.OpReweight, U: k[0], V: k[1], W: w}, true
		}
	}
	return dynamic.Update{}, false
}

// Batch returns up to size mutations (fewer if the mix runs dry).
func (m *Mutator) Batch(size int) []dynamic.Update {
	out := make([]dynamic.Update, 0, size)
	for len(out) < size {
		up, ok := m.Next()
		if !ok {
			break
		}
		out = append(out, up)
	}
	return out
}

// SpannerFamilies returns the Figure 1 input sweep at the given size
// scale (1 = benchmark default).
func SpannerFamilies(seed uint64) []Spec {
	return []Spec{
		ER(4096, 8, seed),
		RMATSpec(12, 8, seed+1),
		Grid(64),
	}
}

// HopsetFamilies returns the Figure 2 input sweep.
func HopsetFamilies(seed uint64) []Spec {
	return []Spec{
		ER(4096, 4, seed),
		Grid(64),
		Hyper(12),
	}
}
