package workload

import (
	"strings"
	"testing"
)

func TestSpecsGenerate(t *testing.T) {
	specs := []Spec{
		ER(100, 4, 1),
		RMATSpec(7, 4, 2),
		Grid(9),
		Hyper(6),
		WithUniformWeights(Grid(8), 16, 3),
		WithExponentialWeights(ER(80, 3, 4), 4, 6, 5),
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" {
			t.Fatal("spec with empty name")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		g := s.Gen()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", s.Name, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s: empty graph", s.Name)
		}
	}
}

func TestWeightedWrappersProduceWeights(t *testing.T) {
	s := WithUniformWeights(ER(50, 3, 1), 9, 2)
	if !s.Gen().Weighted() {
		t.Fatal("uniform wrapper lost weights")
	}
	if !strings.Contains(s.Name, "wU9") {
		t.Fatalf("name %q missing weight tag", s.Name)
	}
	e := WithExponentialWeights(ER(50, 3, 1), 4, 5, 3)
	if !e.Gen().Weighted() {
		t.Fatal("exponential wrapper lost weights")
	}
}

func TestFamilies(t *testing.T) {
	for _, s := range SpannerFamilies(1) {
		g := s.Gen()
		if g.NumVertices() < 1000 {
			t.Fatalf("%s suspiciously small: %d", s.Name, g.NumVertices())
		}
	}
	for _, s := range HopsetFamilies(1) {
		g := s.Gen()
		if g.NumVertices() < 1000 {
			t.Fatalf("%s suspiciously small: %d", s.Name, g.NumVertices())
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := ER(200, 5, 7).Gen()
	b := ER(200, 5, 7).Gen()
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same spec generated different graphs")
	}
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatal("same spec generated different edges")
		}
	}
}
