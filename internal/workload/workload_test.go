package workload

import (
	"strings"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// TestMutatorValidAndDeterministic: every emitted mutation applies
// cleanly in order, and the stream is reproducible from (graph, mix,
// seed) — the replay contract loadgen -verify relies on.
func TestMutatorValidAndDeterministic(t *testing.T) {
	for _, mix := range []string{"churn", "grow", "decay", "reweight"} {
		g := graph.UniformWeights(graph.RandomConnectedGNM(50, 120, 1), 20, 2)
		m1, err := NewMutator(g, mix, 20, 7)
		if err != nil {
			t.Fatalf("%s: %v", mix, err)
		}
		m2, _ := NewMutator(g, mix, 20, 7)
		ups := m1.Batch(40)
		if len(ups) != 40 {
			t.Fatalf("%s: got %d mutations", mix, len(ups))
		}
		for i, up := range m2.Batch(40) {
			if up != ups[i] {
				t.Fatalf("%s: stream not deterministic at %d", mix, i)
			}
		}
		// Validity: the overlay accepts the whole stream (Apply never
		// consults the base querier, only the graph).
		d := dynamic.New(nil, g, 0)
		if _, err := d.Apply(ups); err != nil {
			t.Fatalf("%s: apply: %v", mix, err)
		}
		for _, up := range ups {
			switch mix {
			case "grow":
				if up.Op != dynamic.OpInsert {
					t.Fatalf("grow emitted %v", up.Op)
				}
			case "decay":
				if up.Op != dynamic.OpDelete {
					t.Fatalf("decay emitted %v", up.Op)
				}
			case "reweight":
				if up.Op != dynamic.OpReweight {
					t.Fatalf("reweight emitted %v", up.Op)
				}
			}
		}
	}
}

// TestMutatorEdgeCases: decay runs dry on an emptied graph; reweight
// refuses unweighted graphs; unweighted churn stays unit-weight.
func TestMutatorEdgeCases(t *testing.T) {
	small := graph.Path(3) // 2 edges, unweighted
	if _, err := NewMutator(small, "reweight", 0, 1); err == nil {
		t.Fatal("reweight mix accepted an unweighted graph")
	}
	m, err := NewMutator(small, "decay", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Batch(10); len(got) != 2 {
		t.Fatalf("decay emitted %d mutations on a 2-edge graph", len(got))
	}
	if _, ok := m.Next(); ok {
		t.Fatal("decay kept emitting after the graph emptied")
	}
	mc, err := NewMutator(graph.Grid2D(4, 4), "churn", 99, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range mc.Batch(30) {
		if up.Op == dynamic.OpReweight {
			t.Fatal("unweighted churn emitted a reweight")
		}
		if up.Op == dynamic.OpInsert && up.W != 1 {
			t.Fatalf("unweighted insert weight %d", up.W)
		}
	}
}

func TestSpecsGenerate(t *testing.T) {
	specs := []Spec{
		ER(100, 4, 1),
		RMATSpec(7, 4, 2),
		Grid(9),
		Hyper(6),
		WithUniformWeights(Grid(8), 16, 3),
		WithExponentialWeights(ER(80, 3, 4), 4, 6, 5),
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" {
			t.Fatal("spec with empty name")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		g := s.Gen()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", s.Name, err)
		}
		if g.NumVertices() == 0 {
			t.Fatalf("%s: empty graph", s.Name)
		}
	}
}

func TestWeightedWrappersProduceWeights(t *testing.T) {
	s := WithUniformWeights(ER(50, 3, 1), 9, 2)
	if !s.Gen().Weighted() {
		t.Fatal("uniform wrapper lost weights")
	}
	if !strings.Contains(s.Name, "wU9") {
		t.Fatalf("name %q missing weight tag", s.Name)
	}
	e := WithExponentialWeights(ER(50, 3, 1), 4, 5, 3)
	if !e.Gen().Weighted() {
		t.Fatal("exponential wrapper lost weights")
	}
}

func TestFamilies(t *testing.T) {
	for _, s := range SpannerFamilies(1) {
		g := s.Gen()
		if g.NumVertices() < 1000 {
			t.Fatalf("%s suspiciously small: %d", s.Name, g.NumVertices())
		}
	}
	for _, s := range HopsetFamilies(1) {
		g := s.Gen()
		if g.NumVertices() < 1000 {
			t.Fatalf("%s suspiciously small: %d", s.Name, g.NumVertices())
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec     string
		n        int32
		weighted bool
	}{
		{"er:n=100,d=4", 100, false},
		{"er", 1024, false},
		{"grid:side=9", 81, false},
		{"grid:side=8,w=uniform,maxw=16", 64, true},
		{"hyper:dim=6", 64, false},
		{"path:n=50", 50, false},
		{"cycle:n=50", 50, false},
		{"pa:n=60,deg=3", 60, false},
		{"rmat:scale=7,d=4,w=exp,base=4,scales=5", 128, true},
	}
	for _, c := range cases {
		s, err := ParseSpec(c.spec, 1)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.spec, err)
		}
		g := s.Gen()
		if err := g.Validate(); err != nil {
			t.Fatalf("%q: invalid graph: %v", c.spec, err)
		}
		if g.NumVertices() != c.n {
			t.Fatalf("%q: n = %d, want %d", c.spec, g.NumVertices(), c.n)
		}
		if g.Weighted() != c.weighted {
			t.Fatalf("%q: weighted = %v, want %v", c.spec, g.Weighted(), c.weighted)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"", "unknown", "er:n=", "er:n=abc", "er:n=0", "er:bogus=3",
		"grid:side=9,w=gauss", "er:n=100,d=4,", "rmat:scale=40",
		// Edge-demand bounds: specs can arrive over the network, so an
		// astronomic degree must be a 400, not an OOM — including
		// degrees big enough to overflow an n*d product.
		"er:n=1024,d=2000000000", "rmat:scale=26,d=100000", "pa:n=1000000,deg=100000",
		"er:n=1024,d=9007199254740993", "pa:n=1024,deg=9223372036854775807",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s, 1); err == nil {
			t.Fatalf("ParseSpec(%q): want error", s)
		}
	}
}

func TestParseSpecSeedOverrideDeterministic(t *testing.T) {
	a, err := ParseSpec("er:n=120,d=4,seed=9", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("er:n=120,d=4", 9)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := a.Gen(), b.Gen()
	if ga.NumEdges() != gb.NumEdges() {
		t.Fatal("seed override diverged from seed argument")
	}
	for i := range ga.Edges() {
		if ga.Edges()[i] != gb.Edges()[i] {
			t.Fatal("seed override generated different edges")
		}
	}
}

func TestQueryMixes(t *testing.T) {
	const n = 256
	for _, name := range []string{"uniform", "hotspot", "repeat"} {
		m, err := ParseMix(name, n, 5)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name != name {
			t.Fatalf("mix name %q, want %q", m.Name, name)
		}
		for i := 0; i < 500; i++ {
			p := m.Next()
			if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
				t.Fatalf("%s: pair %v out of range", name, p)
			}
			if p[0] == p[1] {
				t.Fatalf("%s: degenerate pair %v with n > 1", name, p)
			}
		}
	}
	if _, err := ParseMix("bogus", n, 1); err == nil {
		t.Fatal("ParseMix(bogus): want error")
	}
}

func TestQueryMixDeterministic(t *testing.T) {
	a := UniformMix(100, 3)
	b := UniformMix(100, 3)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different pair streams")
		}
	}
}

func TestHotspotMixConcentrates(t *testing.T) {
	m := HotspotMix(1000, 10, 0.8, 7)
	hot := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		p := m.Next()
		if p[0] < 10 && p[1] < 10 {
			hot++
		}
	}
	if hot < draws/2 {
		t.Fatalf("hotspot mix sent only %d/%d to the hot set", hot, draws)
	}
}

func TestRepeatMixReuses(t *testing.T) {
	m := RepeatMix(10000, 8, 11)
	seen := map[[2]int32]bool{}
	for i := 0; i < 200; i++ {
		seen[m.Next()] = true
	}
	if len(seen) > 8 {
		t.Fatalf("repeat mix produced %d distinct pairs from a pool of 8", len(seen))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := ER(200, 5, 7).Gen()
	b := ER(200, 5, 7).Gen()
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same spec generated different graphs")
	}
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatal("same spec generated different edges")
		}
	}
}
