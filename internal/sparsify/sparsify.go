// Package sparsify implements the spectral sparsification algorithm
// of Koutis (SPAA 2014), which Section 2.2 of the paper names as a
// direct application of its spanner routine: "Such routines are also
// directly applicable to the graph sparsification algorithm by
// Koutis".
//
// Koutis' algorithm is a simple iteration. In each round, compute a
// t-bundle spanner of the current graph — the union of t spanners,
// each built on the graph with the previous spanners' edges removed —
// and move its edges to the output. Every remaining edge is kept for
// the next round with probability 1/2 at doubled weight (preserving
// the Laplacian in expectation) or discarded. After O(log n) rounds
// the remainder is empty and the output is a spectral sparsifier with
// O(t·n^{1+1/k}·log n) edges; larger bundles give better spectral
// approximation.
//
// This package exists to demonstrate the application: the spanner
// subroutine is exactly internal/spanner's EST construction, so each
// round is O(m) work and O(k log* n ·t) depth.
package sparsify

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/spanner"
)

// Options configures Spectral.
type Options struct {
	// K is the spanner stretch parameter (spanner size ~n^{1+1/k}).
	K int
	// BundleSize is t, the number of disjoint spanners per round.
	BundleSize int
	// MaxRounds bounds the sampling rounds (the remainder halves per
	// round in expectation, so ~log2(m) rounds suffice).
	MaxRounds int
	// Seed drives spanner randomness and edge sampling.
	Seed uint64
	// Cost accumulates work/depth (may be nil).
	Cost *par.Cost
}

// Result is a sparsifier: a reweighted edge list over g's vertices.
type Result struct {
	// Edges is the sparsifier (weights are rescaled; they no longer
	// match g's).
	Edges []graph.Edge
	// Rounds is the number of sampling rounds performed.
	Rounds int
	// BundleEdges counts edges contributed by spanner bundles.
	BundleEdges int
}

// Graph materializes the sparsifier.
func (r *Result) Graph(n graph.V) *graph.Graph {
	return graph.FromEdges(n, r.Edges, true)
}

// Spectral runs Koutis' sparsification on g.
func Spectral(g *graph.Graph, opt Options) *Result {
	if opt.K < 1 {
		panic(fmt.Sprintf("sparsify: K = %d", opt.K))
	}
	if opt.BundleSize < 1 {
		opt.BundleSize = 1
	}
	if opt.MaxRounds < 1 {
		opt.MaxRounds = 1
	}
	r := rng.New(opt.Seed)
	res := &Result{}

	// Working edge list with evolving weights.
	cur := make([]graph.Edge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		w := e.W
		if !g.Weighted() {
			w = 1
		}
		cur = append(cur, graph.Edge{U: e.U, V: e.V, W: w})
	}

	for round := 0; round < opt.MaxRounds && len(cur) > 0; round++ {
		res.Rounds++
		work := graph.FromEdges(g.NumVertices(), cur, true)

		// t-bundle: t spanners on successively peeled graphs. The
		// spanners of a bundle are edge-disjoint by construction.
		inBundle := make([]bool, len(cur))
		peel := work
		peelIDs := make([]int32, len(cur)) // peel edge id -> cur index
		for i := range peelIDs {
			peelIDs[i] = int32(i)
		}
		for b := 0; b < opt.BundleSize && peel.NumEdges() > 0; b++ {
			sp := spanner.Weighted(peel, opt.K, r.Uint64(), opt.Cost)
			if sp.Size() == 0 {
				break
			}
			spSet := make(map[int32]bool, sp.Size())
			for _, e := range sp.EdgeIDs {
				spSet[e] = true
				inBundle[peelIDs[e]] = true
			}
			// Peel the spanner off for the next bundle layer.
			var restEdges []graph.Edge
			var restIDs []int32
			for e := int32(0); int64(e) < peel.NumEdges(); e++ {
				if spSet[e] {
					continue
				}
				restEdges = append(restEdges, peel.Edges()[e])
				restIDs = append(restIDs, peelIDs[e])
			}
			peel = graph.FromEdges(g.NumVertices(), restEdges, true)
			peelIDs = restIDs
		}

		// Bundle edges graduate to the output; the rest are sampled.
		var next []graph.Edge
		for i, e := range cur {
			if inBundle[i] {
				res.Edges = append(res.Edges, e)
				res.BundleEdges++
				continue
			}
			if r.Bernoulli(0.5) {
				next = append(next, graph.Edge{U: e.U, V: e.V, W: 2 * e.W})
			}
		}
		opt.Cost.Round(int64(len(cur)))
		cur = next
	}
	// Whatever survives the final round joins the output.
	res.Edges = append(res.Edges, cur...)
	return res
}

// QuadraticForm evaluates x^T L x = Σ_e w(e)·(x_u − x_v)² for the
// Laplacian of the given edge list — the quantity a spectral
// sparsifier preserves.
func QuadraticForm(edges []graph.Edge, x []float64) float64 {
	var s float64
	for _, e := range edges {
		d := x[e.U] - x[e.V]
		s += float64(e.W) * d * d
	}
	return s
}
