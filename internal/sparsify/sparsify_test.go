package sparsify

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

func TestSpectralBasics(t *testing.T) {
	g := graph.RandomConnectedGNM(500, 10000, 1)
	cost := par.NewCost()
	res := Spectral(g, Options{K: 2, BundleSize: 3, MaxRounds: 10, Seed: 2, Cost: cost})
	if len(res.Edges) == 0 {
		t.Fatal("empty sparsifier")
	}
	if int64(len(res.Edges)) >= g.NumEdges() {
		t.Fatalf("sparsifier has %d edges, input %d: no sparsification", len(res.Edges), g.NumEdges())
	}
	if cost.Work() == 0 {
		t.Fatal("no cost recorded")
	}
	h := res.Graph(g.NumVertices())
	if _, count := h.Components(); count != 1 {
		t.Fatal("sparsifier disconnected a connected graph")
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d; sampling never iterated", res.Rounds)
	}
}

func TestSpectralPreservesTotalWeightInExpectation(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(300, 6000, 3), 9, 4)
	var orig float64
	for _, e := range g.Edges() {
		orig += float64(e.W)
	}
	// Average over seeds: resampling with doubling preserves the
	// total Laplacian weight in expectation.
	var sum float64
	const trials = 8
	for s := uint64(0); s < trials; s++ {
		res := Spectral(g, Options{K: 2, BundleSize: 2, MaxRounds: 12, Seed: s})
		var w float64
		for _, e := range res.Edges {
			w += float64(e.W)
		}
		sum += w
	}
	mean := sum / trials
	if mean < 0.7*orig || mean > 1.3*orig {
		t.Fatalf("mean sparsifier weight %.0f vs original %.0f: expectation not preserved", mean, orig)
	}
}

// TestSpectralQuadraticForms: the sparsifier's Laplacian quadratic
// form approximates the original on random test vectors. Single-digit
// bundle sizes give loose constants, so the envelope is generous; the
// point is the two-sided approximation, not the exact ε.
func TestSpectralQuadraticForms(t *testing.T) {
	g := graph.RandomConnectedGNM(400, 12000, 5)
	res := Spectral(g, Options{K: 2, BundleSize: 4, MaxRounds: 12, Seed: 6})
	var base []graph.Edge
	for _, e := range g.Edges() {
		base = append(base, graph.Edge{U: e.U, V: e.V, W: 1})
	}
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, g.NumVertices())
		for i := range x {
			x[i] = r.Float64()*2 - 1
		}
		qf0 := QuadraticForm(base, x)
		qf1 := QuadraticForm(res.Edges, x)
		ratio := qf1 / qf0
		if ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("trial %d: quadratic form ratio %.3f out of envelope", trial, ratio)
		}
	}
}

func TestSpectralDeterministic(t *testing.T) {
	g := graph.RandomConnectedGNM(200, 2000, 8)
	a := Spectral(g, Options{K: 3, BundleSize: 2, MaxRounds: 8, Seed: 9})
	b := Spectral(g, Options{K: 3, BundleSize: 2, MaxRounds: 8, Seed: 9})
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed, different sizes")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed, different edges")
		}
	}
}

func TestSpectralSmallAndDegenerate(t *testing.T) {
	res := Spectral(graph.FromEdges(3, nil, false), Options{K: 2, BundleSize: 1, MaxRounds: 3, Seed: 1})
	if len(res.Edges) != 0 {
		t.Fatal("edgeless graph produced edges")
	}
	tree := graph.Path(20)
	res = Spectral(tree, Options{K: 2, BundleSize: 1, MaxRounds: 5, Seed: 2})
	// A tree is its own spanner: everything should graduate intact.
	if len(res.Edges) != 19 {
		t.Fatalf("tree sparsifier has %d edges, want 19", len(res.Edges))
	}
	h := res.Graph(20)
	if _, count := h.Components(); count != 1 {
		t.Fatal("tree sparsifier disconnected")
	}
}

func TestSpectralPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 did not panic")
		}
	}()
	Spectral(graph.Path(3), Options{K: 0})
}

func TestQuadraticForm(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}}
	x := []float64{1, 0, 2}
	// 2*(1-0)^2 + 3*(0-2)^2 = 2 + 12 = 14.
	if got := QuadraticForm(edges, x); got != 14 {
		t.Fatalf("quadratic form = %v, want 14", got)
	}
}
