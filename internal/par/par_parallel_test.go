package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// These tests force GOMAXPROCS above 1 so that the goroutine fan-out
// paths of For/Do/DoN execute even on single-core hosts (goroutines
// still interleave), exercising the chunk scheduler and the
// work-stealing counter.

func withProcs(t *testing.T, p int, body func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	body()
}

func TestForParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		const n = 200000
		hits := make([]atomic.Int32, n)
		For(n, 1000, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("index %d visited %d times", i, hits[i].Load())
			}
		}
	})
}

func TestForParallelTinyGrainRebalance(t *testing.T) {
	withProcs(t, 4, func() {
		// grain 1 on a large range must trigger the chunk rebalance
		// (the 4p cap) and still cover everything exactly once.
		const n = 100000
		var sum atomic.Int64
		For(n, 1, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		want := int64(n) * (n - 1) / 2
		if sum.Load() != want {
			t.Fatalf("sum = %d, want %d", sum.Load(), want)
		}
	})
}

func TestDoParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		var a, b, c, d atomic.Int32
		Do(
			func() { a.Add(1) },
			func() { b.Add(1) },
			func() { c.Add(1) },
			func() { d.Add(1) },
		)
		if a.Load()+b.Load()+c.Load()+d.Load() != 4 {
			t.Fatal("Do dropped thunks under parallelism")
		}
	})
}

func TestDoNParallelBounded(t *testing.T) {
	withProcs(t, 4, func() {
		var inFlight, peak atomic.Int32
		DoN(64, func(i int) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			// Busy-yield so overlapping goroutines can be observed.
			for j := 0; j < 100; j++ {
				runtime.Gosched()
			}
			inFlight.Add(-1)
		})
		if peak.Load() > int32(4) {
			t.Fatalf("DoN exceeded worker bound: peak %d", peak.Load())
		}
		if peak.Load() < 1 {
			t.Fatal("DoN never ran")
		}
	})
}

func TestReductionsUnderParallelism(t *testing.T) {
	withProcs(t, 8, func() {
		xs := make([]int64, 300000)
		var want int64
		for i := range xs {
			xs[i] = int64(i % 101)
			want += xs[i]
		}
		if got := SumInt64(xs); got != want {
			t.Fatalf("parallel SumInt64 = %d, want %d", got, want)
		}
		xs[299999] = 1 << 40
		if got := MaxInt64(xs, 0); got != 1<<40 {
			t.Fatalf("parallel MaxInt64 = %d", got)
		}
	})
}

func TestCostUnderHeavyContention(t *testing.T) {
	withProcs(t, 8, func() {
		c := NewCost()
		ForIdx(100000, 100, func(i int) {
			c.AddWork(1)
		})
		if c.Work() != 100000 {
			t.Fatalf("contended work = %d, want 100000", c.Work())
		}
	})
}
