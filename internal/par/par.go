// Package par provides the "machine" on which the paper's algorithms
// are measured: a PRAM-style work/depth cost model together with a
// small goroutine substrate for actually running independent chunks in
// parallel.
//
// The paper (Miller, Peng, Vladu, Xu, SPAA 2015) analyzes every
// algorithm in the standard PRAM model: work is the total number of
// operations, depth is the longest chain of dependent operations. This
// repository reproduces those quantities directly rather than proxying
// them with wall-clock time on a particular machine: every parallel
// routine threads a *Cost through its call tree and reports
//
//   - Work:  total primitive operations performed (edge relaxations,
//     vertex settlements, bucket scans, ...), and
//   - Depth: total synchronous rounds on the critical path. Following
//     the paper's own convention (Appendix A), the O(log* n) CRCW
//     per-round overhead is treated as a model constant and a round
//     costs 1 unless the caller says otherwise.
//
// Sequential composition adds both work and depth; parallel composition
// adds work but takes the maximum depth. Cost supports both: AddWork /
// AddDepth for sequential accumulation inside a routine, and JoinMax
// for combining the costs of children that execute side by side (e.g.
// the recursive hopset calls on sibling clusters in Algorithm 4).
//
// All methods are safe for concurrent use and are no-ops on a nil
// receiver, so cost tracking can be switched off by passing nil.
//
// # Conventions for goroutine-parallel routines
//
// Routines that realize the model on actual cores (sssp.BFSParallel,
// sssp.DeltaStepping, sssp.HopLimitedParallel, the Parallel modes of
// core.Cluster and the spanner/hopset builders) account cost by the
// model, not by the machine:
//
//   - One synchronous frontier phase — a BFS level, a Δ-stepping light
//     iteration or heavy relaxation, a Bellman–Ford round, a cluster
//     bucket expansion — is one depth unit (Cost.Round), regardless of
//     how many goroutines executed it or what GOMAXPROCS was.
//   - Work counts primitive operations (edge scans, relaxations,
//     settlements) by the same rule as the sequential implementations:
//     a CAS relaxation is one work unit whether it wins or loses.
//     Deterministic-schedule routines (core.Cluster, the spanner
//     builders) therefore report work identical to their sequential
//     mode; label-correcting ones (DeltaStepping) count their
//     re-relaxations too, which is real extra work the Δ parameter
//     trades against depth.
//   - Coordination overhead — goroutine scheduling, worker-local
//     buffer merges, the CAS retry loop — is machine detail outside
//     the model and is never recorded.
//
// Consequently a routine reports the same (work, depth) whether its
// Parallel knob is on or off; only wall-clock changes. Benchmarks
// (BenchmarkWeightedSSSP and friends) measure the wall-clock side —
// the "does the PRAM model translate to cores" check.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Cost accumulates PRAM work and depth for one (sub)computation.
type Cost struct {
	work  atomic.Int64
	depth atomic.Int64
}

// NewCost returns a fresh zeroed cost accumulator.
func NewCost() *Cost { return &Cost{} }

// AddWork records n units of work. Safe on nil.
func (c *Cost) AddWork(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.work.Add(n)
}

// AddDepth records d units of critical-path depth (d synchronous
// rounds). Safe on nil.
func (c *Cost) AddDepth(d int64) {
	if c == nil || d == 0 {
		return
	}
	c.depth.Add(d)
}

// Round records one synchronous round doing n units of work: the usual
// shape of a frontier step in parallel BFS. Safe on nil.
func (c *Cost) Round(n int64) {
	if c == nil {
		return
	}
	c.work.Add(n)
	c.depth.Add(1)
}

// Work returns the accumulated work. Safe on nil (returns 0).
func (c *Cost) Work() int64 {
	if c == nil {
		return 0
	}
	return c.work.Load()
}

// Depth returns the accumulated depth. Safe on nil (returns 0).
func (c *Cost) Depth() int64 {
	if c == nil {
		return 0
	}
	return c.depth.Load()
}

// AddSequential composes child after the work recorded so far: work
// and depth both accumulate. Safe on nil receiver and nil child.
func (c *Cost) AddSequential(child *Cost) {
	if c == nil || child == nil {
		return
	}
	c.work.Add(child.work.Load())
	c.depth.Add(child.depth.Load())
}

// JoinMax composes the children as a parallel block executed after the
// work recorded so far: their works sum, and the block contributes the
// maximum child depth to the critical path. Safe on nil.
func (c *Cost) JoinMax(children ...*Cost) {
	if c == nil {
		return
	}
	var w, d int64
	for _, ch := range children {
		if ch == nil {
			continue
		}
		w += ch.work.Load()
		if cd := ch.depth.Load(); cd > d {
			d = cd
		}
	}
	c.work.Add(w)
	c.depth.Add(d)
}

// Snapshot returns the current (work, depth) pair.
func (c *Cost) Snapshot() (work, depth int64) {
	return c.Work(), c.Depth()
}

// ---------------------------------------------------------------------------
// Goroutine substrate.

// Workers returns the degree of parallelism used by For and friends.
func Workers() int { return runtime.GOMAXPROCS(0) }

// minGrain is the smallest range worth shipping to other goroutines
// when the caller lets For pick the grain; below this For runs inline
// to avoid scheduling overhead dominating cheap per-element bodies
// (the reductions below). It deliberately does NOT apply to explicit
// grains: a caller that names a chunk size is asserting that chunks
// of that size carry enough work (an adjacency scan, an edge
// relaxation batch) to be worth a goroutine — frontier expansions of
// a few hundred vertices must still fan out.
const minGrain = 512

// For executes body(lo, hi) over a partition of [0, n) using up to
// Workers() goroutines. body must be safe to call concurrently on
// disjoint ranges. grain is the target chunk size; pass 0 for an
// automatic choice (which also applies a minGrain cutoff suited to
// cheap bodies). An explicit grain > 0 is authoritative: For fans out
// whenever n exceeds it, however small n is. For blocks until all
// chunks complete.
//
// For models one parallel step: callers that want the step accounted
// should call cost.AddDepth(1) (or Round) themselves, since only the
// caller knows the per-element work performed inside body.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if grain <= 0 {
		if n <= minGrain {
			body(0, n)
			return
		}
		grain = n/(4*p) + 1
	}
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > 4*p {
		// Re-balance so that we never spawn absurd numbers of
		// goroutines for tiny grains.
		grain = (n + 4*p - 1) / (4 * p)
		chunks = (n + grain - 1) / grain
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := p
	if workers > chunks {
		workers = chunks
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				lo := int(i) * grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForIdx executes body(i) for every i in [0, n) in parallel chunks.
func ForIdx(n, grain int, body func(i int)) {
	For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs the given thunks in parallel and waits for all of them; it is
// the fork-join primitive used for "recurse on each cluster in
// parallel" (Algorithm 4 line 10).
func Do(thunks ...func()) {
	switch len(thunks) {
	case 0:
		return
	case 1:
		thunks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(thunks) - 1)
	for _, t := range thunks[1:] {
		t := t
		go func() {
			defer wg.Done()
			t()
		}()
	}
	thunks[0]()
	wg.Wait()
}

// DoN runs body(i) for i in [0, n) in parallel and waits, limiting the
// number of simultaneously running goroutines to Workers(). Unlike
// ForIdx it gives every i its own invocation even when n is small,
// which is what recursive algorithm fan-out wants.
func DoN(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		body(0)
		return
	}
	sem := make(chan struct{}, Workers())
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			body(i)
		}(i)
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Parallel reductions and scans used by the graph substrate.

// SumInt64 returns the sum of xs, computed in parallel chunks.
func SumInt64(xs []int64) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	var total atomic.Int64
	For(n, 0, func(lo, hi int) {
		var s int64
		for _, v := range xs[lo:hi] {
			s += v
		}
		total.Add(s)
	})
	return total.Load()
}

// MaxInt64 returns the maximum of xs, or def when xs is empty.
func MaxInt64(xs []int64, def int64) int64 {
	n := len(xs)
	if n == 0 {
		return def
	}
	var mu sync.Mutex
	best := xs[0]
	For(n, 0, func(lo, hi int) {
		m := xs[lo]
		for _, v := range xs[lo:hi] {
			if v > m {
				m = v
			}
		}
		mu.Lock()
		if m > best {
			best = m
		}
		mu.Unlock()
	})
	return best
}

// ExclusivePrefixSum replaces counts with its exclusive prefix sum and
// returns the total. counts[i] afterwards holds the sum of the original
// counts[0:i]. This is the standard CSR-building scan; its PRAM depth
// is O(log n), which callers account with cost.AddDepth.
func ExclusivePrefixSum(counts []int64) int64 {
	var run int64
	for i, c := range counts {
		counts[i] = run
		run += c
	}
	return run
}

// ExclusivePrefixSum32 is ExclusivePrefixSum for int32 counters, which
// the CSR builder uses for per-vertex degrees.
func ExclusivePrefixSum32(counts []int32) int64 {
	var run int64
	for i, c := range counts {
		counts[i] = int32(run)
		run += int64(c)
	}
	return run
}
