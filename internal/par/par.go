// Package par provides the "machine" on which the paper's algorithms
// are measured: a PRAM-style work/depth cost model together with a
// small goroutine substrate for actually running independent chunks in
// parallel.
//
// The paper (Miller, Peng, Vladu, Xu, SPAA 2015) analyzes every
// algorithm in the standard PRAM model: work is the total number of
// operations, depth is the longest chain of dependent operations. This
// repository reproduces those quantities directly rather than proxying
// them with wall-clock time on a particular machine: every parallel
// routine threads a *Cost through its call tree and reports
//
//   - Work:  total primitive operations performed (edge relaxations,
//     vertex settlements, bucket scans, ...), and
//   - Depth: total synchronous rounds on the critical path. Following
//     the paper's own convention (Appendix A), the O(log* n) CRCW
//     per-round overhead is treated as a model constant and a round
//     costs 1 unless the caller says otherwise.
//
// Sequential composition adds both work and depth; parallel composition
// adds work but takes the maximum depth. Cost supports both: AddWork /
// AddDepth for sequential accumulation inside a routine, and JoinMax
// for combining the costs of children that execute side by side (e.g.
// the recursive hopset calls on sibling clusters in Algorithm 4).
//
// All methods are safe for concurrent use and are no-ops on a nil
// receiver, so cost tracking can be switched off by passing nil.
//
// # Conventions for goroutine-parallel routines
//
// Routines that realize the model on actual cores (sssp.BFSParallel,
// sssp.DeltaStepping, sssp.HopLimitedParallel, the Parallel modes of
// core.Cluster and the spanner/hopset builders) account cost by the
// model, not by the machine:
//
//   - One synchronous frontier phase — a BFS level, a Δ-stepping light
//     iteration or heavy relaxation, a Bellman–Ford round, a cluster
//     bucket expansion — is one depth unit (Cost.Round), regardless of
//     how many goroutines executed it or what GOMAXPROCS was.
//   - Work counts primitive operations (edge scans, relaxations,
//     settlements) by the same rule as the sequential implementations:
//     a CAS relaxation is one work unit whether it wins or loses.
//     Deterministic-schedule routines (core.Cluster, the spanner
//     builders) therefore report work identical to their sequential
//     mode; label-correcting ones (DeltaStepping) count their
//     re-relaxations too, which is real extra work the Δ parameter
//     trades against depth.
//   - Coordination overhead — goroutine scheduling, worker-local
//     buffer merges, the CAS retry loop — is machine detail outside
//     the model and is never recorded.
//
// Consequently a routine reports the same (work, depth) whether its
// Parallel knob is on or off; only wall-clock changes. Benchmarks
// (BenchmarkWeightedSSSP and friends) measure the wall-clock side —
// the "does the PRAM model translate to cores" check.
//
// # Inherited-pool semantics
//
// For, ForIdx, Do, and DoN no longer spawn fresh goroutines per call:
// chunks are handed to a process-wide pool of long-lived workers
// (lazily grown to the largest parallelism ever requested) and the
// calling goroutine always participates in its own loop. A handoff is
// attempted only to an idle worker; when the pool is saturated — e.g.
// a nested For issued from inside a DoN body that already occupies
// every worker — the caller simply runs the remaining chunks inline.
// This caller-runs rule makes nested fork-join deadlock-free by
// construction and means a parallel region never waits on goroutine
// creation or destruction, which is what keeps repeated frontier
// phases allocation-free.
//
// The package-level entry points size their fan-out at
// runtime.GOMAXPROCS(0). Routines running under an execution context
// (internal/exec) instead call the *Workers variants (ForWorkers,
// DoNWorkers, DoWorkers), which honor the context's worker cap: an
// exec.Ctx with Workers = 4 fans every For under it across at most 4
// chunks-in-flight, GOMAXPROCS notwithstanding, and a cap of 1 runs
// the body inline with no pool traffic at all. Cost accounting is
// unaffected by the cap — the model's (work, depth) never depends on
// how many physical workers realized a round.
package par

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Cost accumulates PRAM work and depth for one (sub)computation.
type Cost struct {
	work  atomic.Int64
	depth atomic.Int64
}

// NewCost returns a fresh zeroed cost accumulator.
func NewCost() *Cost { return &Cost{} }

// AddWork records n units of work. Safe on nil.
func (c *Cost) AddWork(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.work.Add(n)
}

// AddDepth records d units of critical-path depth (d synchronous
// rounds). Safe on nil.
func (c *Cost) AddDepth(d int64) {
	if c == nil || d == 0 {
		return
	}
	c.depth.Add(d)
}

// Round records one synchronous round doing n units of work: the usual
// shape of a frontier step in parallel BFS. Safe on nil.
func (c *Cost) Round(n int64) {
	if c == nil {
		return
	}
	c.work.Add(n)
	c.depth.Add(1)
}

// Work returns the accumulated work. Safe on nil (returns 0).
func (c *Cost) Work() int64 {
	if c == nil {
		return 0
	}
	return c.work.Load()
}

// Depth returns the accumulated depth. Safe on nil (returns 0).
func (c *Cost) Depth() int64 {
	if c == nil {
		return 0
	}
	return c.depth.Load()
}

// AddSequential composes child after the work recorded so far: work
// and depth both accumulate. Safe on nil receiver and nil child.
func (c *Cost) AddSequential(child *Cost) {
	if c == nil || child == nil {
		return
	}
	c.work.Add(child.work.Load())
	c.depth.Add(child.depth.Load())
}

// JoinMax composes the children as a parallel block executed after the
// work recorded so far: their works sum, and the block contributes the
// maximum child depth to the critical path. Safe on nil.
func (c *Cost) JoinMax(children ...*Cost) {
	if c == nil {
		return
	}
	var w, d int64
	for _, ch := range children {
		if ch == nil {
			continue
		}
		w += ch.work.Load()
		if cd := ch.depth.Load(); cd > d {
			d = cd
		}
	}
	c.work.Add(w)
	c.depth.Add(d)
}

// Snapshot returns the current (work, depth) pair.
func (c *Cost) Snapshot() (work, depth int64) {
	return c.Work(), c.Depth()
}

// ---------------------------------------------------------------------------
// Goroutine substrate: the shared worker pool.

// Workers returns the degree of parallelism used by For and friends
// when no explicit worker cap is given.
func Workers() int { return runtime.GOMAXPROCS(0) }

// The pool: long-lived workers blocked on an unbuffered task channel.
// Handoffs use a non-blocking send, so a task is only ever given to a
// worker that is actually parked in receive; otherwise the caller runs
// the work itself. The pool grows lazily to the largest parallelism
// requested so far and never shrinks — parked workers cost one idle
// goroutine each and keep every later parallel region spawn-free.
var (
	poolTasks = make(chan func())
	poolMu    sync.Mutex
	poolSize  int
)

// ensureWorkers grows the pool to at least want workers.
func ensureWorkers(want int) {
	if want <= int(atomic.LoadInt64(&poolSizeAtomic)) {
		return
	}
	poolMu.Lock()
	for poolSize < want {
		go func() {
			for t := range poolTasks {
				t()
			}
		}()
		poolSize++
	}
	atomic.StoreInt64(&poolSizeAtomic, int64(poolSize))
	poolMu.Unlock()
}

var poolSizeAtomic int64

// PoolSize reports how many pooled workers currently exist (tests and
// goroutine-leak accounting).
func PoolSize() int { return int(atomic.LoadInt64(&poolSizeAtomic)) }

// Limiter is a shared helper-goroutine budget: one execution context
// (internal/exec) holds a Limiter with workers−1 tokens, and every
// For/DoN issued through that context — however deeply nested —
// acquires its helpers from the same budget. The per-call worker cap
// alone would let nested fan-out multiply (an outer DoN capped at N
// whose bodies each run a For capped at N can occupy up to N² pool
// workers); the shared budget bounds the whole region at N goroutines:
// the root caller plus at most workers−1 helpers in flight.
type Limiter struct {
	tokens chan struct{}
}

// NewLimiter returns a budget of n helper tokens (nil when n <= 0,
// which fanOut treats as unlimited — the process-wide pool size is
// then the only bound).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		return nil
	}
	l := &Limiter{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		l.tokens <- struct{}{}
	}
	return l
}

func (l *Limiter) tryAcquire() bool {
	if l == nil {
		return true
	}
	select {
	case <-l.tokens:
		return true
	default:
		return false
	}
}

func (l *Limiter) release() {
	if l != nil {
		l.tokens <- struct{}{}
	}
}

// fanOut hands up to helpers copies of run to idle pool workers and
// runs run on the calling goroutine too, returning when every copy
// has finished. Each helper costs one token from l (nil = unlimited);
// tokens are held until the whole region completes, so nested regions
// under the same Limiter degrade to caller-runs once the budget is
// spent. run must be safe for concurrent invocation and must return
// when the shared work supply is exhausted.
//
// lctx, when non-nil, carries runtime/pprof profiler labels that each
// POOL helper adopts for the duration of its task and clears before
// parking again. Pool workers are long-lived process-wide goroutines,
// so without this hand-off CPU profile samples of pooled work would
// carry no labels at all; the caller-runs share needs no treatment —
// the submitting goroutine already wears whatever labels its request
// or build wrapped it in (and clearing them here would strip the
// caller mid-request).
func fanOut(lctx context.Context, l *Limiter, helpers int, run func()) {
	if helpers > 0 {
		ensureWorkers(helpers)
	}
	helperRun := run
	if lctx != nil {
		helperRun = func() {
			pprof.SetGoroutineLabels(lctx)
			defer pprof.SetGoroutineLabels(context.Background())
			run()
		}
	}
	var wg sync.WaitGroup
	granted := 0
handoff:
	for i := 0; i < helpers; i++ {
		if !l.tryAcquire() {
			break
		}
		wg.Add(1)
		task := func() {
			defer wg.Done()
			helperRun()
		}
		select {
		case poolTasks <- task:
			granted++
		default:
			// No worker is parked right now (pool saturated by outer
			// parallelism). Caller-runs: skip the remaining handoffs.
			wg.Done()
			l.release()
			break handoff
		}
	}
	run()
	wg.Wait()
	for ; granted > 0; granted-- {
		l.release()
	}
}

// minGrain is the smallest range worth shipping to other goroutines
// when the caller lets For pick the grain; below this For runs inline
// to avoid scheduling overhead dominating cheap per-element bodies
// (the reductions below). It deliberately does NOT apply to explicit
// grains: a caller that names a chunk size is asserting that chunks
// of that size carry enough work (an adjacency scan, an edge
// relaxation batch) to be worth a goroutine — frontier expansions of
// a few hundred vertices must still fan out.
const minGrain = 512

// For executes body(lo, hi) over a partition of [0, n) using up to
// Workers() chunks in flight on the shared worker pool. body must be
// safe to call concurrently on disjoint ranges. grain is the target
// chunk size; pass 0 for an automatic choice (which also applies a
// minGrain cutoff suited to cheap bodies). An explicit grain > 0 is
// authoritative: For fans out whenever n exceeds it, however small n
// is. For blocks until all chunks complete.
//
// For models one parallel step: callers that want the step accounted
// should call cost.AddDepth(1) (or Round) themselves, since only the
// caller knows the per-element work performed inside body.
func For(n, grain int, body func(lo, hi int)) {
	ForWorkers(0, n, grain, body)
}

// ForWorkers is For with an explicit worker cap: at most p chunks run
// simultaneously (p <= 0 means Workers()).
func ForWorkers(p, n, grain int, body func(lo, hi int)) {
	ForLimited(nil, p, n, grain, body)
}

// ForLimited is ForWorkers drawing its helpers from a shared Limiter
// budget. This is the entry point the execution context
// (internal/exec) uses to impose its configured parallelism on every
// loop beneath it: the per-call cap p bounds one loop's fan-out, the
// Limiter bounds the aggregate across every loop nested under the
// same context.
func ForLimited(l *Limiter, p, n, grain int, body func(lo, hi int)) {
	ForLabeled(nil, l, p, n, grain, body)
}

// ForLabeled is ForLimited with a pprof label context: helpers pulled
// from the shared pool wear lctx's profiler labels while running this
// loop's chunks (see fanOut), so CPU profile samples of pooled work
// attribute to the graph/operation that submitted it. A nil lctx is
// exactly ForLimited.
func ForLabeled(lctx context.Context, l *Limiter, p, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p <= 0 {
		p = Workers()
	}
	if grain <= 0 {
		if n <= minGrain {
			body(0, n)
			return
		}
		grain = n/(4*p) + 1
	}
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > 4*p {
		// Re-balance so that tiny grains never turn into absurd
		// numbers of chunk handoffs.
		grain = (n + 4*p - 1) / (4 * p)
		chunks = (n + grain - 1) / grain
	}
	var next atomic.Int64
	run := func() {
		for {
			i := next.Add(1) - 1
			lo := int(i) * grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	helpers := p
	if helpers > chunks {
		helpers = chunks
	}
	fanOut(lctx, l, helpers-1, run)
}

// ForIdx executes body(i) for every i in [0, n) in parallel chunks.
func ForIdx(n, grain int, body func(i int)) {
	For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs the given thunks in parallel and waits for all of them; it is
// the fork-join primitive used for "recurse on each cluster in
// parallel" (Algorithm 4 line 10).
func Do(thunks ...func()) {
	DoWorkers(0, thunks...)
}

// DoWorkers is Do with an explicit worker cap (p <= 0 means Workers()).
func DoWorkers(p int, thunks ...func()) {
	switch len(thunks) {
	case 0:
		return
	case 1:
		thunks[0]()
		return
	}
	DoNWorkers(p, len(thunks), func(i int) { thunks[i]() })
}

// DoN runs body(i) for i in [0, n) in parallel and waits, limiting the
// number of simultaneously running invocations to Workers(). Unlike
// ForIdx it gives every i its own invocation even when n is small,
// which is what recursive algorithm fan-out wants.
func DoN(n int, body func(i int)) {
	DoNWorkers(0, n, body)
}

// DoNWorkers is DoN with an explicit worker cap (p <= 0 means
// Workers()). Bodies may themselves issue nested For/DoN calls: when
// the pool is saturated the nested call runs inline on the same
// goroutine, so recursive fan-out (the hopset recursion) can never
// deadlock on pool capacity.
func DoNWorkers(p, n int, body func(i int)) {
	DoNLimited(nil, p, n, body)
}

// DoNLimited is DoNWorkers drawing its helpers from a shared Limiter
// budget (see ForLimited).
func DoNLimited(l *Limiter, p, n int, body func(i int)) {
	DoNLabeled(nil, l, p, n, body)
}

// DoNLabeled is DoNLimited with a pprof label context for pooled
// helpers (see ForLabeled).
func DoNLabeled(lctx context.Context, l *Limiter, p, n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		body(0)
		return
	}
	if p <= 0 {
		p = Workers()
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			body(i)
		}
	}
	helpers := p
	if helpers > n {
		helpers = n
	}
	fanOut(lctx, l, helpers-1, run)
}

// ---------------------------------------------------------------------------
// Parallel reductions and scans used by the graph substrate.

// SumInt64 returns the sum of xs, computed in parallel chunks.
func SumInt64(xs []int64) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	var total atomic.Int64
	For(n, 0, func(lo, hi int) {
		var s int64
		for _, v := range xs[lo:hi] {
			s += v
		}
		total.Add(s)
	})
	return total.Load()
}

// MaxInt64 returns the maximum of xs, or def when xs is empty.
func MaxInt64(xs []int64, def int64) int64 {
	n := len(xs)
	if n == 0 {
		return def
	}
	var mu sync.Mutex
	best := xs[0]
	For(n, 0, func(lo, hi int) {
		m := xs[lo]
		for _, v := range xs[lo:hi] {
			if v > m {
				m = v
			}
		}
		mu.Lock()
		if m > best {
			best = m
		}
		mu.Unlock()
	})
	return best
}

// ExclusivePrefixSum replaces counts with its exclusive prefix sum and
// returns the total. counts[i] afterwards holds the sum of the original
// counts[0:i]. This is the standard CSR-building scan; its PRAM depth
// is O(log n), which callers account with cost.AddDepth.
func ExclusivePrefixSum(counts []int64) int64 {
	var run int64
	for i, c := range counts {
		counts[i] = run
		run += c
	}
	return run
}

// ExclusivePrefixSum32 is ExclusivePrefixSum for int32 counters, which
// the CSR builder uses for per-vertex degrees.
func ExclusivePrefixSum32(counts []int32) int64 {
	var run int64
	for i, c := range counts {
		counts[i] = int32(run)
		run += int64(c)
	}
	return run
}
