package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestCostSequential(t *testing.T) {
	c := NewCost()
	c.AddWork(10)
	c.AddDepth(3)
	c.Round(5)
	if w := c.Work(); w != 15 {
		t.Fatalf("work = %d, want 15", w)
	}
	if d := c.Depth(); d != 4 {
		t.Fatalf("depth = %d, want 4", d)
	}
}

func TestCostNilSafe(t *testing.T) {
	var c *Cost
	c.AddWork(1)
	c.AddDepth(1)
	c.Round(1)
	c.AddSequential(NewCost())
	c.JoinMax(NewCost())
	if c.Work() != 0 || c.Depth() != 0 {
		t.Fatal("nil cost should report zeros")
	}
}

func TestCostJoinMax(t *testing.T) {
	a := NewCost()
	a.AddWork(100)
	a.AddDepth(7)
	b := NewCost()
	b.AddWork(50)
	b.AddDepth(12)
	parent := NewCost()
	parent.AddDepth(1)
	parent.JoinMax(a, b, nil)
	if w := parent.Work(); w != 150 {
		t.Fatalf("joined work = %d, want 150", w)
	}
	if d := parent.Depth(); d != 13 {
		t.Fatalf("joined depth = %d, want 1+max(7,12)=13", d)
	}
}

func TestCostAddSequential(t *testing.T) {
	a := NewCost()
	a.AddWork(5)
	a.AddDepth(2)
	parent := NewCost()
	parent.AddWork(1)
	parent.AddDepth(1)
	parent.AddSequential(a)
	parent.AddSequential(nil)
	if parent.Work() != 6 || parent.Depth() != 3 {
		t.Fatalf("sequential compose = (%d,%d), want (6,3)",
			parent.Work(), parent.Depth())
	}
}

func TestCostConcurrent(t *testing.T) {
	c := NewCost()
	Do(
		func() {
			for i := 0; i < 1000; i++ {
				c.AddWork(1)
			}
		},
		func() {
			for i := 0; i < 1000; i++ {
				c.AddWork(2)
			}
		},
		func() {
			for i := 0; i < 1000; i++ {
				c.AddDepth(1)
			}
		},
	)
	if c.Work() != 3000 {
		t.Fatalf("concurrent work = %d, want 3000", c.Work())
	}
	if c.Depth() != 1000 {
		t.Fatalf("concurrent depth = %d, want 1000", c.Depth())
	}
}

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 512, 513, 10000} {
		hits := make([]atomic.Int32, n)
		For(n, 100, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestForIdx(t *testing.T) {
	const n = 5000
	var sum atomic.Int64
	ForIdx(n, 0, func(i int) { sum.Add(int64(i)) })
	want := int64(n) * (n - 1) / 2
	if sum.Load() != want {
		t.Fatalf("ForIdx sum = %d, want %d", sum.Load(), want)
	}
}

func TestForAutoGrain(t *testing.T) {
	const n = 100000
	var count atomic.Int64
	For(n, 0, func(lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != n {
		t.Fatalf("auto-grain coverage = %d, want %d", count.Load(), n)
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Bool
	Do(
		func() { a.Store(true) },
		func() { b.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do did not run all thunks")
	}
	// Degenerate arities.
	Do()
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("Do with one thunk did not run it")
	}
}

func TestDoN(t *testing.T) {
	for _, n := range []int{0, 1, 3, 64, 300} {
		hits := make([]atomic.Int32, n)
		DoN(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("DoN(%d) index %d hit %d times", n, i, hits[i].Load())
			}
		}
	}
}

func TestSumInt64(t *testing.T) {
	xs := make([]int64, 10000)
	var want int64
	for i := range xs {
		xs[i] = int64(i % 17)
		want += xs[i]
	}
	if got := SumInt64(xs); got != want {
		t.Fatalf("SumInt64 = %d, want %d", got, want)
	}
	if got := SumInt64(nil); got != 0 {
		t.Fatalf("SumInt64(nil) = %d", got)
	}
}

func TestMaxInt64(t *testing.T) {
	xs := make([]int64, 9001)
	for i := range xs {
		xs[i] = int64(i * 3 % 7919)
	}
	var want int64
	for _, v := range xs {
		if v > want {
			want = v
		}
	}
	if got := MaxInt64(xs, -1); got != want {
		t.Fatalf("MaxInt64 = %d, want %d", got, want)
	}
	if got := MaxInt64(nil, -1); got != -1 {
		t.Fatalf("MaxInt64(nil) = %d, want default -1", got)
	}
}

func TestExclusivePrefixSum(t *testing.T) {
	xs := []int64{3, 1, 4, 1, 5}
	total := ExclusivePrefixSum(xs)
	want := []int64{0, 3, 4, 8, 9}
	if total != 14 {
		t.Fatalf("total = %d, want 14", total)
	}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, xs[i], want[i])
		}
	}
}

func TestExclusivePrefixSum32(t *testing.T) {
	xs := []int32{2, 0, 7}
	total := ExclusivePrefixSum32(xs)
	if total != 9 {
		t.Fatalf("total = %d, want 9", total)
	}
	want := []int32{0, 2, 2}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("prefix32[%d] = %d, want %d", i, xs[i], want[i])
		}
	}
}

// Property: prefix sum of arbitrary non-negative counts reconstructs
// the running totals (scan correctness invariant).
func TestPrefixSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]int64, len(raw))
		orig := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
			orig[i] = int64(v)
		}
		total := ExclusivePrefixSum(xs)
		var run int64
		for i := range xs {
			if xs[i] != run {
				return false
			}
			run += orig[i]
		}
		return total == run
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: For visits each index exactly once regardless of grain.
func TestForProperty(t *testing.T) {
	f := func(nRaw uint16, grainRaw uint8) bool {
		n := int(nRaw) % 3000
		grain := int(grainRaw)
		hits := make([]atomic.Int32, n)
		For(n, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForOverhead(b *testing.B) {
	xs := make([]int64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(len(xs), 0, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				xs[j]++
			}
		})
	}
}
