package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// checkPartition validates the structural invariants of a clustering:
// it partitions the subset, parent chains reach the center with
// consistent distances, and Clusters/Centers/ClusterOf agree.
func checkPartition(t *testing.T, g *graph.Graph, res *Result, subset []graph.V) {
	t.Helper()
	inSubset := make(map[graph.V]bool, len(subset))
	for _, v := range subset {
		inSubset[v] = true
	}
	for v := graph.V(0); v < g.NumVertices(); v++ {
		if !inSubset[v] {
			if res.Center[v] != graph.NoVertex || res.ClusterOf[v] != -1 {
				t.Fatalf("vertex %d outside subset was clustered", v)
			}
			continue
		}
		c := res.Center[v]
		if c == graph.NoVertex {
			t.Fatalf("subset vertex %d not clustered", v)
		}
		if res.Center[c] != c {
			t.Fatalf("center %d of %d is not its own center", c, v)
		}
		if res.ClusterOf[v] != res.ClusterOf[c] {
			t.Fatalf("ClusterOf mismatch for %d vs its center", v)
		}
		// Parent chain must reach the center within |subset| hops and
		// distances must telescope along real edges.
		u := v
		steps := 0
		for res.Parent[u] != graph.NoVertex {
			p := res.Parent[u]
			if res.Center[p] != c {
				t.Fatalf("parent %d of %d in a different cluster", p, u)
			}
			// Edge p-u must exist; DistToCenter must decrease by some
			// incident edge weight.
			w := graph.W(-1)
			adj := g.Neighbors(u)
			wts := g.AdjWeights(u)
			for i, x := range adj {
				if x == p {
					ew := graph.W(1)
					if wts != nil {
						ew = wts[i]
					}
					if w == -1 || ew < w {
						w = ew
					}
				}
			}
			if w == -1 {
				t.Fatalf("parent %d of %d not adjacent", p, u)
			}
			if res.DistToCenter[u] != res.DistToCenter[p]+w {
				t.Fatalf("tree distance not telescoping at %d: %d vs %d + %d",
					u, res.DistToCenter[u], res.DistToCenter[p], w)
			}
			u = p
			steps++
			if steps > len(subset) {
				t.Fatal("parent cycle")
			}
		}
		if u != c {
			t.Fatalf("parent chain of %d ends at %d, not center %d", v, u, c)
		}
		if res.DistToCenter[c] != 0 {
			t.Fatalf("center %d has DistToCenter %d", c, res.DistToCenter[c])
		}
	}
	// Cluster grouping must be a partition of the subset.
	total := 0
	for i, cl := range res.Clusters {
		if len(cl) == 0 {
			t.Fatalf("empty cluster %d", i)
		}
		if cl[0] != res.Centers[i] {
			t.Fatalf("cluster %d does not list its center first", i)
		}
		for _, v := range cl {
			if res.ClusterOf[v] != int32(i) {
				t.Fatalf("vertex %d grouped in wrong cluster", v)
			}
		}
		total += len(cl)
	}
	if total != len(subset) {
		t.Fatalf("clusters cover %d vertices, want %d", total, len(subset))
	}
}

func allVertices(g *graph.Graph) []graph.V {
	vs := make([]graph.V, g.NumVertices())
	for i := range vs {
		vs[i] = graph.V(i)
	}
	return vs
}

func TestClusterInvariantsUnweighted(t *testing.T) {
	g := graph.RandomConnectedGNM(400, 1600, 3)
	res := Cluster(g, 0.3, 42, Options{})
	checkPartition(t, g, res, allVertices(g))
}

func TestClusterInvariantsWeighted(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(300, 900, 5), 12, 6)
	res := Cluster(g, 0.1, 43, Options{})
	checkPartition(t, g, res, allVertices(g))
}

func TestClusterDisconnected(t *testing.T) {
	// Disconnected graphs must still be fully partitioned (each
	// component gets its own clusters).
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}}, false)
	res := Cluster(g, 0.5, 7, Options{})
	checkPartition(t, g, res, allVertices(g))
	// Vertices in different components can never share a cluster.
	if res.Center[0] == res.Center[2] || res.Center[4] == res.Center[0] {
		t.Fatal("cluster spans components")
	}
}

func TestClusterSingleVertex(t *testing.T) {
	g := graph.FromEdges(1, nil, false)
	res := Cluster(g, 1.0, 1, Options{})
	if res.NumClusters() != 1 || res.Center[0] != 0 {
		t.Fatal("single vertex should be its own cluster")
	}
}

func TestClusterEmptySubset(t *testing.T) {
	g := graph.Path(5)
	mark := make([]int32, 5)
	res := Cluster(g, 1.0, 1, Options{Vertices: []graph.V{}, Mark: mark, Token: 9})
	if res.NumClusters() != 0 {
		t.Fatal("empty subset should produce no clusters")
	}
}

func TestClusterSubset(t *testing.T) {
	// Cluster only the left half of a path; right half untouched.
	g := graph.Path(20)
	mark := make([]int32, 20)
	var subset []graph.V
	for v := graph.V(0); v < 10; v++ {
		mark[v] = 1
		subset = append(subset, v)
	}
	res := Cluster(g, 0.4, 11, Options{Vertices: subset, Mark: mark, Token: 1})
	checkPartition(t, g, res, subset)
}

func TestClusterMatchesReference(t *testing.T) {
	cases := []*graph.Graph{
		graph.Path(40),
		graph.Cycle(50),
		graph.Grid2D(8, 9),
		graph.RandomConnectedGNM(150, 500, 2),
		graph.UniformWeights(graph.RandomConnectedGNM(120, 400, 9), 7, 10),
		graph.UniformWeights(graph.Grid2D(7, 11), 20, 12),
	}
	for gi, g := range cases {
		for _, beta := range []float64{0.05, 0.2, 0.7} {
			seed := uint64(gi)*100 + uint64(beta*1000)
			a := Cluster(g, beta, seed, Options{})
			b := ClusterReference(g, beta, seed, Options{})
			for v := graph.V(0); v < g.NumVertices(); v++ {
				if a.Center[v] != b.Center[v] {
					t.Fatalf("graph %d beta %v: center mismatch at %d: %d vs %d",
						gi, beta, v, a.Center[v], b.Center[v])
				}
				if a.DistToCenter[v] != b.DistToCenter[v] {
					t.Fatalf("graph %d beta %v: dist mismatch at %d: %d vs %d",
						gi, beta, v, a.DistToCenter[v], b.DistToCenter[v])
				}
			}
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	g := graph.RandomConnectedGNM(100, 300, 1)
	a := Cluster(g, 0.3, 5, Options{})
	b := Cluster(g, 0.3, 5, Options{})
	for v := range a.Center {
		if a.Center[v] != b.Center[v] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	c := Cluster(g, 0.3, 6, Options{})
	diff := false
	for v := range a.Center {
		if a.Center[v] != c.Center[v] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical clusterings (suspicious)")
	}
}

// TestClusterOptimality checks the defining property directly on small
// graphs: v's center minimizes dist(u,v) − δ_u over all u (up to the
// deterministic tie-breaking, which only matters on measure-zero ties;
// we assert the winner's key is minimal).
func TestClusterOptimality(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(40, 100, 8), 5, 20)
	res := Cluster(g, 0.2, 21, Options{})
	// All-pairs distances by Dijkstra-per-vertex (tiny graph).
	distFrom := func(s graph.V) []graph.Dist {
		d := make([]graph.Dist, g.NumVertices())
		for i := range d {
			d[i] = graph.InfDist
		}
		d[s] = 0
		settled := make([]bool, g.NumVertices())
		for {
			u := graph.NoVertex
			for v := graph.V(0); v < g.NumVertices(); v++ {
				if !settled[v] && d[v] != graph.InfDist && (u == graph.NoVertex || d[v] < d[u]) {
					u = v
				}
			}
			if u == graph.NoVertex {
				return d
			}
			settled[u] = true
			adj := g.Neighbors(u)
			wts := g.AdjWeights(u)
			for i, x := range adj {
				if d[u]+wts[i] < d[x] {
					d[x] = d[u] + wts[i]
				}
			}
		}
	}
	dist := make([][]graph.Dist, g.NumVertices())
	for v := graph.V(0); v < g.NumVertices(); v++ {
		dist[v] = distFrom(v)
	}
	const eps = 1e-9
	for v := graph.V(0); v < g.NumVertices(); v++ {
		c := res.Center[v]
		keyC := float64(dist[c][v]) - res.Shifts[c]
		for u := graph.V(0); u < g.NumVertices(); u++ {
			keyU := float64(dist[u][v]) - res.Shifts[u]
			if keyU < keyC-eps {
				t.Fatalf("vertex %d joined %d (key %.6f) but %d has key %.6f",
					v, c, keyC, u, keyU)
			}
		}
	}
}

// TestLemma21DiameterBound: cluster radii are at most k·β^{-1}·ln n
// with probability ≥ 1 − n^{1-k}; check the k=2 bound holds across
// trials (failure probability ~1/n per trial).
func TestLemma21DiameterBound(t *testing.T) {
	g := graph.RandomConnectedGNM(1000, 4000, 17)
	n := float64(g.NumVertices())
	beta := 0.25
	bound := graph.Dist(2*math.Log(n)/beta) + 1
	violations := 0
	const trials = 20
	for s := uint64(0); s < trials; s++ {
		res := Cluster(g, beta, s, Options{})
		if res.MaxRadius() > bound {
			violations++
		}
	}
	// Expected violations ≈ trials/n = 0.02; allow up to 2.
	if violations > 2 {
		t.Fatalf("Lemma 2.1 radius bound violated in %d of %d trials", violations, trials)
	}
}

// TestCorollary23CutProbability: each edge is cut with probability at
// most β·w(e). Aggregate over all edges and trials.
func TestCorollary23CutProbability(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(500, 2000, 19), 3, 23)
	beta := 0.05
	const trials = 30
	totalCut := 0
	for s := uint64(0); s < trials; s++ {
		res := Cluster(g, beta, 1000+s, Options{})
		totalCut += len(CutEdges(g, res))
	}
	gotRate := float64(totalCut) / float64(trials)
	// Upper bound sum over edges of β·w(e) = β·totalWeight.
	bound := beta * float64(g.TotalWeight())
	// Allow 15% slack for sampling noise on the high side.
	if gotRate > bound*1.15 {
		t.Fatalf("mean cut edges %.1f exceeds Corollary 2.3 bound %.1f", gotRate, bound)
	}
	if totalCut == 0 {
		t.Fatal("no edges ever cut: clustering degenerate")
	}
}

// TestLemma22BallIntersection: P[ball of radius r meets ≥ j clusters]
// ≤ (1 − exp(−2rβ))^{j−1}. Check empirically for j = 2, 3 on a grid.
func TestLemma22BallIntersection(t *testing.T) {
	g := graph.Grid2D(30, 30)
	beta := 0.15
	radius := graph.Dist(2)
	gamma := 1 - math.Exp(-2*float64(radius)*beta)
	const trials = 15
	counts := map[int]int{} // j -> number of (trial, vertex) pairs with ≥ j clusters
	samples := 0
	r := rng.New(99)
	for s := uint64(0); s < trials; s++ {
		res := Cluster(g, beta, 500+s, Options{})
		for i := 0; i < 60; i++ {
			v := r.Int31n(g.NumVertices())
			k := BallClusterCount(g, res, v, radius)
			samples++
			for j := 2; j <= k; j++ {
				counts[j]++
			}
		}
	}
	for _, j := range []int{2, 3} {
		got := float64(counts[j]) / float64(samples)
		bound := math.Pow(gamma, float64(j-1))
		if got > bound*1.3+0.02 {
			t.Fatalf("P[ball meets >= %d clusters] = %.3f exceeds Lemma 2.2 bound %.3f",
				j, got, bound)
		}
	}
}

func TestForestEdges(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(200, 700, 31), 9, 32)
	res := Cluster(g, 0.2, 33, Options{})
	forest := ForestEdges(g, res)
	// One tree edge per non-center vertex.
	want := int(g.NumVertices()) - res.NumClusters()
	if len(forest) != want {
		t.Fatalf("forest has %d edges, want %d", len(forest), want)
	}
	// Forest edges must be intra-cluster.
	for _, e := range forest {
		ed := g.Edges()[e]
		if res.Center[ed.U] != res.Center[ed.V] {
			t.Fatalf("forest edge %d crosses clusters", e)
		}
	}
	// The forest must certify the radii: BFS in the forest subgraph
	// from each center reaches its whole cluster.
	fg := g.SubgraphFromEdgeIDs(forest)
	for ci, cl := range res.Clusters {
		center := res.Centers[ci]
		reach := map[graph.V]bool{center: true}
		stack := []graph.V{center}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range fg.Neighbors(v) {
				if !reach[u] && res.Center[u] == center {
					reach[u] = true
					stack = append(stack, u)
				}
			}
		}
		for _, v := range cl {
			if !reach[v] {
				t.Fatalf("cluster %d vertex %d not reached by its tree", ci, v)
			}
		}
	}
}

func TestCutEdgesComplement(t *testing.T) {
	g := graph.RandomConnectedGNM(150, 600, 37)
	res := Cluster(g, 0.3, 38, Options{})
	cut := CutEdges(g, res)
	cutSet := map[int32]bool{}
	for _, e := range cut {
		cutSet[e] = true
	}
	for i := range g.Edges() {
		e := g.Edges()[i]
		same := res.Center[e.U] == res.Center[e.V]
		if same == cutSet[int32(i)] {
			t.Fatalf("edge %d cut classification wrong", i)
		}
	}
}

// TestBetaControlsGranularity: larger β must give more, smaller
// clusters (in expectation); check monotonicity on averages.
func TestBetaControlsGranularity(t *testing.T) {
	g := graph.Grid2D(40, 40)
	avgClusters := func(beta float64) float64 {
		total := 0
		for s := uint64(0); s < 5; s++ {
			total += Cluster(g, beta, 700+s, Options{}).NumClusters()
		}
		return float64(total) / 5
	}
	small := avgClusters(0.02)
	large := avgClusters(0.5)
	if small >= large {
		t.Fatalf("beta=0.02 gave %.1f clusters, beta=0.5 gave %.1f; want increasing", small, large)
	}
}

func TestClusterCostAccounting(t *testing.T) {
	g := graph.RandomConnectedGNM(300, 1200, 41)
	cost := par.NewCost()
	Cluster(g, 0.3, 42, Options{Cost: cost})
	if cost.Work() < int64(g.NumVertices()) {
		t.Fatalf("work %d implausibly low", cost.Work())
	}
	if cost.Depth() == 0 {
		t.Fatal("no depth recorded")
	}
	// On a high-diameter graph the number of rounds is governed by
	// δ_max + cluster radius = O(β^{-1} log n): smaller beta must mean
	// more rounds (Lemma 2.1's depth term).
	path := graph.Path(2000)
	cHi := par.NewCost()
	Cluster(path, 0.5, 42, Options{Cost: cHi})
	cLo := par.NewCost()
	Cluster(path, 0.02, 42, Options{Cost: cLo})
	if cLo.Depth() <= cHi.Depth() {
		t.Fatalf("smaller beta should mean more rounds on a path: %d vs %d",
			cLo.Depth(), cHi.Depth())
	}
}

func TestClusterPanicsOnBadBeta(t *testing.T) {
	g := graph.Path(3)
	for _, beta := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("beta %v did not panic", beta)
				}
			}()
			Cluster(g, beta, 1, Options{})
		}()
	}
}

// Property: Cluster == ClusterReference on arbitrary random weighted
// graphs and subsets.
func TestClusterReferenceProperty(t *testing.T) {
	f := func(seedRaw uint32, betaRaw uint8, weighted bool) bool {
		seed := uint64(seedRaw)
		r := rng.New(seed ^ 0xabcdef)
		n := int32(r.Intn(50) + 2)
		m := int64(n) - 1 + int64(r.Intn(60))
		if max := int64(n) * int64(n-1) / 2; m > max {
			m = max
		}
		g := graph.RandomConnectedGNM(n, m, seed)
		if weighted {
			g = graph.UniformWeights(g, 6, seed^5)
		}
		beta := 0.02 + float64(betaRaw)/256.0
		// Random subset of about half the vertices.
		mark := make([]int32, n)
		var subset []graph.V
		for v := graph.V(0); v < n; v++ {
			if r.Bernoulli(0.5) {
				mark[v] = 1
				subset = append(subset, v)
			}
		}
		opt := Options{Vertices: subset, Mark: mark, Token: 1}
		a := Cluster(g, beta, seed, opt)
		b := ClusterReference(g, beta, seed, opt)
		for v := graph.V(0); v < n; v++ {
			if a.Center[v] != b.Center[v] || a.DistToCenter[v] != b.DistToCenter[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClusterUnweighted(b *testing.B) {
	g := graph.RandomConnectedGNM(20000, 80000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(g, 0.2, uint64(i), Options{})
	}
}

func BenchmarkClusterWeighted(b *testing.B) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(20000, 80000, 1), 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(g, 0.1, uint64(i), Options{})
	}
}
