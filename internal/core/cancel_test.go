package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
)

// TestClusterExecBitIdentical: the clustering on an execution context
// (sequential and parallel, arena-backed, run repeatedly to force
// buffer reuse) must equal the legacy sequential race exactly.
func TestClusterExecBitIdentical(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(4000, 16000, 3), 8, 4)
	const beta, seed = 0.2, 99
	want := Cluster(g, beta, seed, Options{})
	for round := 0; round < 2; round++ {
		for _, ec := range []*exec.Ctx{exec.Sequential(), exec.Parallel(4)} {
			got := Cluster(g, beta, seed, Options{Exec: ec})
			if len(got.Centers) != len(want.Centers) {
				t.Fatalf("centers: %d vs %d", len(got.Centers), len(want.Centers))
			}
			for v := range want.Center {
				if got.Center[v] != want.Center[v] || got.Parent[v] != want.Parent[v] ||
					got.DistToCenter[v] != want.DistToCenter[v] {
					t.Fatalf("round %d vertex %d: (%d,%d,%d) vs (%d,%d,%d)",
						round, v, got.Center[v], got.Parent[v], got.DistToCenter[v],
						want.Center[v], want.Parent[v], want.DistToCenter[v])
				}
			}
		}
	}
}

// TestClusterCancel aborts an EST clustering mid-race: it must return
// promptly and leave the goroutine count at its baseline.
func TestClusterCancel(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(80_000, 320_000, 11), 16, 12)
	// Warm the pool for a stable baseline.
	Cluster(g, 0.05, 1, Options{Exec: exec.Parallel(0)})
	base := runtime.NumGoroutine()

	// Pre-canceled: no vertex beyond the early buckets settles.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := exec.New(exec.Options{Context: ctx})
	res := Cluster(g, 0.05, 1, Options{Exec: ec})
	if ec.Err() == nil {
		t.Fatal("expected canceled context")
	}
	if n := len(res.Centers); n != 0 {
		t.Fatalf("canceled race still grouped %d clusters", n)
	}

	// Mid-run cancel with the parallel expansion active.
	ctx2, cancel2 := context.WithCancel(context.Background())
	ec2 := exec.New(exec.Options{Context: ctx2})
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	done := make(chan struct{})
	go func() {
		Cluster(g, 0.05, 1, Options{Exec: ec2})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled clustering did not return")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base+4 {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base+4 {
		t.Fatalf("goroutines did not settle: base %d, now %d", base, got)
	}
}
