// Package core implements Exponential Start Time (EST) clustering, the
// key routine of Miller, Peng, Vladu, Xu (SPAA 2015), Section 2.1 and
// Appendix A, originally from Miller–Peng–Xu (SPAA 2013).
//
// Every vertex u draws an independent shift δ_u ~ Exp(β); vertex v
// joins the cluster of the vertex u minimizing dist(u, v) − δ_u. The
// routine is equivalent to a shortest-path search from a virtual
// super-source where u "starts its race" at time s_u = δ_max − δ_u.
//
// # Implementation
//
// Edge weights are positive integers, so every arrival time from
// cluster u has the same fractional part frac(s_u). We therefore
// settle vertices with a Dial bucket queue keyed by the integer part
// of the arrival time, breaking ties inside a bucket by the fractional
// part (and then by center id, for determinism). Because weights are
// ≥ 1, two settlements in the same bucket can never relax each other,
// so this order equals exact nondecreasing real-key order: the
// clustering computed here is exactly the one defined by the real
// shifts, and the paper's Appendix A "integer parts with tie breaking"
// implementation is realized with no approximation.
//
// Depth is the number of processed buckets — O(β^{-1} log n) with high
// probability by Lemma 2.1, because both δ_max and the cluster radii
// are O(β^{-1} log n). Work is linear in vertices plus edges touched.
//
// The routine accepts a vertex-subset restriction so that recursive
// callers (the hopset construction) can cluster inside a cluster
// without materializing induced subgraphs.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// Options configures a clustering call.
type Options struct {
	// Cost accumulates PRAM work/depth; may be nil.
	Cost *par.Cost
	// Vertices restricts clustering to this subset; nil means all of
	// g. When set, Mark/Token must identify exactly the same subset
	// (Mark[v] == Token iff v ∈ Vertices); the traversal consults
	// Mark, the setup loops over Vertices.
	Vertices []graph.V
	Mark     []int32
	Token    int32
	// UnitWeights makes the race treat every edge as weight 1
	// regardless of the graph's weights. Algorithm 3 of the paper
	// clusters quotient graphs "with uniform edge weights"; this flag
	// implements that without copying the graph.
	UnitWeights bool
	// Exec is the execution context: a parallel context expands every
	// bucket with pooled goroutines, its arenas back the race's O(n)
	// scratch, and its cancellation is polled per bucket — a canceled
	// Cluster returns an invalid partial result, so callers must check
	// Exec.Err() before using it. Nil keeps legacy behavior.
	Exec *exec.Ctx
	// Parallel expands every bucket of the race with concurrent
	// goroutines (the CRCW frontier step of Appendix A realized on
	// cores). The output — centers, parents, distances, groupings — is
	// bit-identical to the sequential race: settlements write disjoint
	// vertices, and generated claims are merged back in deterministic
	// winner order before the next bucket resolves.
	//
	// Deprecated: set Exec to a parallel execution context instead;
	// Parallel remains as a thin alias for Exec = exec.Default().
	Parallel bool
}

// parallel reports whether bucket expansion should fan out. An
// explicit execution context is decisive (a sequential Exec forces
// the reference path); the deprecated bool only matters for legacy
// nil-Exec callers.
func (o *Options) parallel() bool {
	if o.Exec != nil {
		return o.Exec.IsParallel()
	}
	return o.Parallel
}

// admits loads the mark atomically for the same reason sssp.Options
// does: sibling hopset subtrees re-mark their own descendants while
// this subtree's race reads boundary neighbors' marks. The values
// racing past are other subtrees' tokens, never ours, so the decision
// is deterministic; the atomic load just makes the overlap defined.
func (o *Options) admits(v graph.V) bool {
	return o.Mark == nil || atomic.LoadInt32(&o.Mark[v]) == o.Token
}

func (o *Options) weight(wts []graph.W, i int) graph.W {
	if o.UnitWeights || wts == nil {
		return 1
	}
	return wts[i]
}

// Result describes an EST clustering. The per-vertex arrays have
// length NumVertices of the clustered graph; entries for vertices
// outside the clustered subset hold NoVertex / -1 / InfDist.
type Result struct {
	// Center[v] is the center of v's cluster.
	Center []graph.V
	// Parent[v] is v's parent in its cluster's spanning tree;
	// NoVertex for cluster centers (and non-subset vertices).
	Parent []graph.V
	// DistToCenter[v] is the tree (= shortest within the race)
	// distance from v's center to v.
	DistToCenter []graph.Dist
	// ClusterOf[v] is the dense index of v's cluster, -1 outside.
	ClusterOf []int32
	// Centers[i] is the center vertex of cluster i.
	Centers []graph.V
	// Clusters[i] lists the vertices of cluster i (center first).
	Clusters [][]graph.V
	// Shifts holds the exponential shifts δ_u for the clustered
	// subset (indexed by vertex id); used by diagnostics and tests.
	Shifts []float64
}

// NumClusters returns the number of clusters.
func (r *Result) NumClusters() int { return len(r.Centers) }

// MaxRadius returns the largest DistToCenter over all clustered
// vertices — the radius certified by the spanning trees; cluster
// (tree) diameter is at most twice this.
func (r *Result) MaxRadius() graph.Dist {
	var m graph.Dist
	for _, d := range r.DistToCenter {
		if d != graph.InfDist && d > m {
			m = d
		}
	}
	return m
}

// claim is a tentative settlement offer: vertex v can join center's
// cluster through parent with the given integer arrival bucket; frac
// is the center's fractional start time, the within-bucket tie-break.
type claim struct {
	v, center, parent graph.V
	frac              float64
}

// wake is a deferred self-claim: center u enters the race at integer
// time t with fractional part frac.
type wake struct {
	u    graph.V
	t    graph.Dist
	frac float64
}

// timedClaim buffers a claim with its target bucket during parallel
// expansion, before the sequential merge into the bucket array.
type timedClaim struct {
	c claim
	t graph.Dist
}

// Cluster runs EST clustering on g (or the subset in opt) with
// parameter beta, using randomness derived from seed. It panics on
// beta <= 0; every other input is handled.
func Cluster(g *graph.Graph, beta float64, seed uint64, opt Options) *Result {
	if beta <= 0 {
		panic(fmt.Sprintf("core: Cluster with beta = %v", beta))
	}
	n := g.NumVertices()
	subset := opt.Vertices
	if subset == nil {
		subset = make([]graph.V, n)
		for i := range subset {
			subset[i] = graph.V(i)
		}
	}
	res := newResult(n)
	if len(subset) == 0 {
		return res
	}

	// Draw shifts and find δ_max. A single stream keeps the draw
	// deterministic regardless of parallelism.
	r := rng.New(seed)
	deltaMax := 0.0
	for _, v := range subset {
		d := r.Exp(beta)
		res.Shifts[v] = d
		if d > deltaMax {
			deltaMax = d
		}
	}
	opt.Cost.Round(int64(len(subset)))

	// Start times s_u = δ_max − δ_u, split into integer bucket and
	// fractional tie-break. Sort wake events by (t, frac, id) so they
	// can be injected as the bucket cursor advances.
	wakes := make([]wake, len(subset))
	for i, v := range subset {
		s := deltaMax - res.Shifts[v]
		t := math.Floor(s)
		wakes[i] = wake{u: v, t: graph.Dist(t), frac: s - t}
	}
	sort.Slice(wakes, func(i, j int) bool {
		if wakes[i].t != wakes[j].t {
			return wakes[i].t < wakes[j].t
		}
		if wakes[i].frac != wakes[j].frac {
			return wakes[i].frac < wakes[j].frac
		}
		return wakes[i].u < wakes[j].u
	})
	// Sorting is a parallel primitive with O(log n) depth in the
	// model; account it as such.
	opt.Cost.AddWork(int64(len(subset)))
	opt.Cost.AddDepth(int64(math.Ceil(math.Log2(float64(len(subset) + 1)))))

	// settledAt[v] is the integer arrival bucket at settlement; used
	// to compute DistToCenter (the shared fractional parts cancel).
	// Dense arrays rather than maps so the parallel expansion can
	// write settlements for distinct vertices without synchronization.
	settledAt := opt.Exec.DistsZero(int(n))
	defer opt.Exec.PutDists(settledAt)
	startAt := opt.Exec.DistsZero(int(n))
	defer opt.Exec.PutDists(startAt)

	var buckets [][]claim
	pending := 0
	const maxBuckets = 1 << 30
	push := func(c claim, t graph.Dist) {
		if t >= maxBuckets {
			// The bucket race is only meant for graphs whose weights
			// are small (unit, or pre-rounded by the Section 5 /
			// Appendix B reductions); refusing loudly beats an OOM.
			panic(fmt.Sprintf("core: arrival %d too large for the bucket race; round weights first", t))
		}
		for int64(len(buckets)) <= int64(t) {
			buckets = append(buckets, nil)
		}
		buckets[t] = append(buckets[t], c)
		pending++
	}

	nextWake := 0
	settledCount := 0
	var winners []claim // reused per bucket
	// Parallel-expansion buffers, reused across buckets (and holding
	// on to their inner claim capacity).
	var perWinner [][]timedClaim
	var counts []int64
	for t := graph.Dist(0); settledCount < len(subset); t++ {
		// Every level of the virtual-source search is one synchronous
		// round, whether or not anything settles at it: this is the
		// O(β^{-1} log n) term of Lemma 2.1.
		opt.Cost.AddDepth(1)
		if opt.Exec.Checkpoint() {
			return res // canceled: partial, invalid (skip finishResult)
		}
		// Inject wake events due at t.
		for nextWake < len(wakes) && wakes[nextWake].t == t {
			w := wakes[nextWake]
			nextWake++
			if res.Center[w.u] != graph.NoVertex {
				continue // already captured by an earlier cluster
			}
			push(claim{v: w.u, center: w.u, parent: graph.NoVertex, frac: w.frac}, t)
		}
		if int64(t) >= int64(len(buckets)) {
			if pending == 0 && nextWake >= len(wakes) {
				break
			}
			continue
		}
		b := buckets[t]
		if len(b) == 0 {
			continue
		}
		buckets[t] = nil
		pending -= len(b)
		// Resolve the winning claim per vertex in this bucket:
		// smallest fractional part, then smallest center id.
		winners = winners[:0]
		sort.Slice(b, func(i, j int) bool {
			if b[i].v != b[j].v {
				return b[i].v < b[j].v
			}
			if b[i].frac != b[j].frac {
				return b[i].frac < b[j].frac
			}
			return b[i].center < b[j].center
		})
		for i := range b {
			if i > 0 && b[i].v == b[i-1].v {
				continue
			}
			if res.Center[b[i].v] != graph.NoVertex {
				continue // settled in an earlier bucket
			}
			winners = append(winners, b[i])
		}
		// Settle the winners first (disjoint vertices, cheap writes),
		// then expand their adjacency. Settling up front means the
		// expansion never emits a claim for a vertex settled in this
		// same bucket — such claims were filtered at resolution anyway,
		// so the clustering is unchanged, and it is what lets the
		// expansion run concurrently: during the scan nothing writes.
		// (Suppressing those dead claims does shave the work recorded
		// for later buckets' `len(b)` terms relative to the historical
		// interleaved loop — the model cost of useless claims that were
		// never part of the paper's accounting.)
		for _, c := range winners {
			res.Center[c.v] = c.center
			res.Parent[c.v] = c.parent
			settledAt[c.v] = t
			if c.parent == graph.NoVertex {
				startAt[c.center] = t
			}
			settledCount++
		}
		var touched int64
		// Buckets below the chunk grain would run inline anyway; the
		// direct push loop skips their per-winner buffer allocations.
		if opt.parallel() && len(winners) > 16 {
			// One concurrent frontier round (the Appendix A CRCW step on
			// real cores): winners expand side by side, buffering claims
			// per winner; buffers merge back in winner order, so bucket
			// contents — and therefore the whole race — stay
			// bit-identical to the sequential path.
			if cap(perWinner) < len(winners) {
				perWinner = make([][]timedClaim, len(winners))
				counts = make([]int64, len(winners))
			}
			pw := perWinner[:len(winners)]
			cnt := counts[:len(winners)]
			for i := range pw {
				pw[i] = pw[i][:0]
				cnt[i] = 0
			}
			opt.Exec.For(len(winners), 16, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c := winners[i]
					adj := g.Neighbors(c.v)
					wts := g.AdjWeights(c.v)
					for j, u := range adj {
						cnt[i]++
						if !opt.admits(u) || res.Center[u] != graph.NoVertex {
							continue
						}
						pw[i] = append(pw[i], timedClaim{
							c: claim{v: u, center: c.center, parent: c.v, frac: c.frac},
							t: t + opt.weight(wts, j),
						})
					}
				}
			})
			for i := range pw {
				touched += cnt[i]
				for _, tc := range pw[i] {
					push(tc.c, tc.t)
				}
			}
		} else {
			for _, c := range winners {
				adj := g.Neighbors(c.v)
				wts := g.AdjWeights(c.v)
				for i, u := range adj {
					touched++
					if !opt.admits(u) || res.Center[u] != graph.NoVertex {
						continue
					}
					push(claim{v: u, center: c.center, parent: c.v, frac: c.frac}, t+opt.weight(wts, i))
				}
			}
		}
		opt.Cost.AddWork(touched + int64(len(b)))
	}

	finishResult(res, subset, settledAt, startAt)
	opt.Cost.Round(int64(len(subset)))
	return res
}

func newResult(n int32) *Result {
	res := &Result{
		Center:       make([]graph.V, n),
		Parent:       make([]graph.V, n),
		DistToCenter: make([]graph.Dist, n),
		ClusterOf:    make([]int32, n),
		Shifts:       make([]float64, n),
	}
	for i := int32(0); i < n; i++ {
		res.Center[i] = graph.NoVertex
		res.Parent[i] = graph.NoVertex
		res.DistToCenter[i] = graph.InfDist
		res.ClusterOf[i] = -1
	}
	return res
}

// finishResult computes DistToCenter and the dense cluster grouping.
// settledAt/startAt are dense per-vertex arrays; only entries for the
// clustered subset (and its centers) are meaningful.
func finishResult(res *Result, subset []graph.V, settledAt, startAt []graph.Dist) {
	for _, v := range subset {
		c := res.Center[v]
		res.DistToCenter[v] = settledAt[v] - startAt[c]
	}
	order := make([]graph.V, len(subset))
	copy(order, subset)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, v := range order {
		if res.Center[v] == v && res.ClusterOf[v] == -1 {
			res.ClusterOf[v] = int32(len(res.Centers))
			res.Centers = append(res.Centers, v)
			res.Clusters = append(res.Clusters, []graph.V{v})
		}
	}
	for _, v := range order {
		if res.Center[v] != v {
			ci := res.ClusterOf[res.Center[v]]
			res.ClusterOf[v] = ci
			res.Clusters[ci] = append(res.Clusters[ci], v)
		}
	}
}

// ClusterReference computes the identical clustering with a plain
// priority search over real arrival keys (integer part, fraction) and
// the same tie-breaking. It exists to validate Cluster in tests; the
// two must agree exactly when given the same seed.
func ClusterReference(g *graph.Graph, beta float64, seed uint64, opt Options) *Result {
	if beta <= 0 {
		panic(fmt.Sprintf("core: ClusterReference with beta = %v", beta))
	}
	n := g.NumVertices()
	subset := opt.Vertices
	if subset == nil {
		subset = make([]graph.V, n)
		for i := range subset {
			subset[i] = graph.V(i)
		}
	}
	res := newResult(n)
	if len(subset) == 0 {
		return res
	}
	r := rng.New(seed)
	deltaMax := 0.0
	for _, v := range subset {
		d := r.Exp(beta)
		res.Shifts[v] = d
		if d > deltaMax {
			deltaMax = d
		}
	}

	type entry struct {
		intPart graph.Dist
		frac    float64
		v       graph.V
		center  graph.V
		parent  graph.V
	}
	less := func(a, b entry) bool {
		if a.intPart != b.intPart {
			return a.intPart < b.intPart
		}
		if a.frac != b.frac {
			return a.frac < b.frac
		}
		if a.center != b.center {
			return a.center < b.center
		}
		return a.v < b.v
	}
	// Simple slice-backed priority queue (reference code favors
	// obviousness over speed).
	var pq []entry
	popMin := func() entry {
		best := 0
		for i := 1; i < len(pq); i++ {
			if less(pq[i], pq[best]) {
				best = i
			}
		}
		e := pq[best]
		pq[best] = pq[len(pq)-1]
		pq = pq[:len(pq)-1]
		return e
	}
	startAt := make([]graph.Dist, n)
	for _, v := range subset {
		s := deltaMax - res.Shifts[v]
		t := math.Floor(s)
		startAt[v] = graph.Dist(t)
		pq = append(pq, entry{intPart: graph.Dist(t), frac: s - t, v: v, center: v, parent: graph.NoVertex})
	}
	settledAt := make([]graph.Dist, n)
	settled := 0
	for settled < len(subset) && len(pq) > 0 {
		e := popMin()
		if res.Center[e.v] != graph.NoVertex {
			continue
		}
		res.Center[e.v] = e.center
		res.Parent[e.v] = e.parent
		settledAt[e.v] = e.intPart
		settled++
		adj := g.Neighbors(e.v)
		wts := g.AdjWeights(e.v)
		for i, u := range adj {
			if !opt.admits(u) || res.Center[u] != graph.NoVertex {
				continue
			}
			pq = append(pq, entry{intPart: e.intPart + opt.weight(wts, i), frac: e.frac, v: u, center: e.center, parent: e.v})
		}
	}
	// finishResult only consults startAt for actual centers, so the
	// full start-time array matches Cluster's bookkeeping.
	finishResult(res, subset, settledAt, startAt)
	return res
}

// CutEdges returns the canonical edge ids of g whose endpoints lie in
// different clusters (both endpoints clustered) — the quantity bounded
// by Corollary 2.3.
func CutEdges(g *graph.Graph, res *Result) []int32 {
	var cut []int32
	edges := g.Edges()
	for i := range edges {
		cu, cv := res.Center[edges[i].U], res.Center[edges[i].V]
		if cu != graph.NoVertex && cv != graph.NoVertex && cu != cv {
			cut = append(cut, int32(i))
		}
	}
	return cut
}

// ForestEdges returns, for every clustered non-center vertex, a
// concrete (parent, vertex) tree edge id of g, choosing a minimum
// weight parallel edge when several connect the pair. These are the
// "forest produced by the decomposition" edges that both the spanner
// and the hopset constructions retain.
func ForestEdges(g *graph.Graph, res *Result) []int32 {
	var out []int32
	for v := graph.V(0); v < g.NumVertices(); v++ {
		p := res.Parent[v]
		if p == graph.NoVertex {
			continue
		}
		adj := g.Neighbors(v)
		wts := g.AdjWeights(v)
		ids := g.AdjEdgeIDs(v)
		best := graph.NoEdge
		var bestW graph.W
		for i, u := range adj {
			if u != p {
				continue
			}
			w := graph.W(1)
			if wts != nil {
				w = wts[i]
			}
			if best == graph.NoEdge || w < bestW {
				best, bestW = ids[i], w
			}
		}
		if best == graph.NoEdge {
			panic("core: parent pointer without a connecting edge")
		}
		out = append(out, best)
	}
	return out
}

// BallClusterCount returns the number of distinct clusters intersecting
// the ball B(v, radius) in g — the quantity of Lemma 2.2 / Corollary
// 3.1. It runs a bounded search from v over the full graph.
func BallClusterCount(g *graph.Graph, res *Result, v graph.V, radius graph.Dist) int {
	seen := map[graph.V]struct{}{}
	type qe struct {
		v graph.V
		d graph.Dist
	}
	q := []qe{{v, 0}}
	dist := map[graph.V]graph.Dist{v: 0}
	for len(q) > 0 {
		best := 0
		for i := 1; i < len(q); i++ {
			if q[i].d < q[best].d {
				best = i
			}
		}
		cur := q[best]
		q[best] = q[len(q)-1]
		q = q[:len(q)-1]
		if d, ok := dist[cur.v]; ok && cur.d > d {
			continue
		}
		if c := res.Center[cur.v]; c != graph.NoVertex {
			seen[c] = struct{}{}
		}
		adj := g.Neighbors(cur.v)
		wts := g.AdjWeights(cur.v)
		for i, u := range adj {
			w := graph.W(1)
			if wts != nil {
				w = wts[i]
			}
			nd := cur.d + w
			if nd > radius {
				continue
			}
			if d, ok := dist[u]; !ok || nd < d {
				dist[u] = nd
				q = append(q, qe{u, nd})
			}
		}
	}
	return len(seen)
}
