package core

import (
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

// withProcs forces GOMAXPROCS above 1 so par.For spawns goroutines and
// the concurrent bucket expansion actually runs concurrently, giving
// `go test -race` real interleavings even on single-core hosts.
func withProcs(t *testing.T, p int, body func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	body()
}

func sameClustering(t *testing.T, label string, a, b *Result) {
	t.Helper()
	for v := range a.Center {
		if a.Center[v] != b.Center[v] {
			t.Fatalf("%s: center mismatch at %d: %d vs %d", label, v, a.Center[v], b.Center[v])
		}
		if a.DistToCenter[v] != b.DistToCenter[v] {
			t.Fatalf("%s: dist mismatch at %d: %d vs %d", label, v, a.DistToCenter[v], b.DistToCenter[v])
		}
		if a.ClusterOf[v] != b.ClusterOf[v] {
			t.Fatalf("%s: grouping mismatch at %d", label, v)
		}
	}
}

// TestClusterParallelMatchesSequential: the Parallel knob must produce
// a bit-identical Result — including parents — since claims merge in
// deterministic winner order.
func TestClusterParallelMatchesSequential(t *testing.T) {
	withProcs(t, 4, func() {
		cases := []*graph.Graph{
			graph.Grid2D(25, 25),
			graph.RandomConnectedGNM(1500, 6000, 2),
			graph.UniformWeights(graph.RandomConnectedGNM(1200, 4000, 9), 7, 10),
			graph.UniformWeights(graph.Grid2D(20, 30), 20, 12),
		}
		for gi, g := range cases {
			for _, beta := range []float64{0.05, 0.3} {
				seed := uint64(gi)*10 + uint64(beta*100)
				seq := Cluster(g, beta, seed, Options{})
				par := Cluster(g, beta, seed, Options{Parallel: true})
				sameClustering(t, "vs sequential", par, seq)
				for v := range seq.Parent {
					if seq.Parent[v] != par.Parent[v] {
						t.Fatalf("graph %d: parent mismatch at %d", gi, v)
					}
				}
			}
		}
	})
}

// TestClusterParallelMatchesReference: the parallel race against the
// obvious priority-queue oracle, across seeds.
func TestClusterParallelMatchesReference(t *testing.T) {
	withProcs(t, 4, func() {
		for seed := uint64(0); seed < 6; seed++ {
			g := graph.UniformWeights(graph.RandomConnectedGNM(800, 3200, seed), 9, seed^21)
			a := Cluster(g, 0.15, seed, Options{Parallel: true})
			b := ClusterReference(g, 0.15, seed, Options{})
			sameClustering(t, "vs reference", a, b)
			checkPartition(t, g, a, allVertices(g))
		}
	})
}

// TestClusterParallelSubset: restriction plumbing survives the
// concurrent expansion.
func TestClusterParallelSubset(t *testing.T) {
	withProcs(t, 4, func() {
		g := graph.UniformWeights(graph.Grid2D(18, 18), 5, 3)
		n := g.NumVertices()
		mark := make([]int32, n)
		var subset []graph.V
		for v := graph.V(0); v < n; v++ {
			if v%3 != 0 {
				mark[v] = 1
				subset = append(subset, v)
			}
		}
		opt := Options{Vertices: subset, Mark: mark, Token: 1}
		popt := opt
		popt.Parallel = true
		a := Cluster(g, 0.2, 7, popt)
		b := ClusterReference(g, 0.2, 7, opt)
		sameClustering(t, "subset", a, b)
		checkPartition(t, g, a, subset)
	})
}

// Property: parallel Cluster == ClusterReference on arbitrary random
// weighted graphs and subsets (the concurrent mirror of
// TestClusterReferenceProperty).
func TestClusterParallelReferenceProperty(t *testing.T) {
	withProcs(t, 4, func() {
		f := func(seedRaw uint32, betaRaw uint8, weighted bool) bool {
			seed := uint64(seedRaw)
			r := rng.New(seed ^ 0xfedcba)
			n := int32(r.Intn(60) + 2)
			m := int64(n) - 1 + int64(r.Intn(80))
			if max := int64(n) * int64(n-1) / 2; m > max {
				m = max
			}
			g := graph.RandomConnectedGNM(n, m, seed)
			if weighted {
				g = graph.UniformWeights(g, 6, seed^5)
			}
			beta := 0.02 + float64(betaRaw)/256.0
			a := Cluster(g, beta, seed, Options{Parallel: true})
			b := ClusterReference(g, beta, seed, Options{})
			for v := graph.V(0); v < n; v++ {
				if a.Center[v] != b.Center[v] || a.DistToCenter[v] != b.DistToCenter[v] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatal(err)
		}
	})
}

func BenchmarkClusterParallel(b *testing.B) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(20000, 80000, 1), 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cluster(g, 0.1, uint64(i), Options{Parallel: true})
	}
}
