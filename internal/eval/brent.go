package eval

// Brent's scheduling principle: a computation with work W and depth D
// runs on p processors in time T_p with W/p ≤ T_p ≤ W/p + D. The
// paper's Section 2 discussion ("it is more important to reduce work
// in order to obtain speed-ups") is exactly about this trade: an
// algorithm parallelizes fully while D ≤ W/p, so low-work algorithms
// win at realistic processor counts. The experiment tables use
// BrentTime to translate measured (work, depth) pairs into predicted
// running times at several p.

// BrentTime returns the Brent upper bound W/p + D.
func BrentTime(work, depth int64, p int) float64 {
	if p < 1 {
		p = 1
	}
	return float64(work)/float64(p) + float64(depth)
}

// Speedup returns T_1 / T_p under the Brent bound, with T_1 = W (one
// processor executes the work sequentially): the predicted parallel
// speedup at p processors. A fully sequential algorithm (D = W) gets
// speedup ≤ 1 at every p.
func Speedup(work, depth int64, p int) float64 {
	tp := BrentTime(work, depth, p)
	if tp == 0 {
		return 1
	}
	return float64(work) / tp
}

// SaturationProcessors returns the processor count beyond which added
// processors stop helping (p* = W/D): the paper's "fully parallelize
// as long as the depth is less than n^{1−δ}" condition solved for p.
func SaturationProcessors(work, depth int64) float64 {
	if depth <= 0 {
		return float64(work)
	}
	return float64(work) / float64(depth)
}
