package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/spanner"
)

func TestSpannerStretchExactOnFullGraph(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(60, 200, 1), 7, 2)
	all := make([]int32, g.NumEdges())
	for i := range all {
		all[i] = int32(i)
	}
	st := SpannerStretch(g, all, 1000, 3)
	if st.Samples == 0 {
		t.Fatal("no samples")
	}
	// The full graph has stretch exactly 1... unless an edge is not
	// its endpoints' shortest path, in which case ratio < 1. Max must
	// be ≤ 1.
	if st.Max > 1+1e-9 {
		t.Fatalf("full graph max stretch %v", st.Max)
	}
}

func TestSpannerStretchDetectsRealStretch(t *testing.T) {
	// Cycle: removing one edge gives stretch n-1 for that edge.
	g := graph.Cycle(10)
	ids := make([]int32, 0, 9)
	for e := int32(1); e < 10; e++ {
		ids = append(ids, e)
	}
	st := SpannerStretch(g, ids, 1000, 4)
	if st.Max < 9-1e-9 {
		t.Fatalf("max stretch %v, want 9", st.Max)
	}
}

func TestSpannerStretchOnRealSpanner(t *testing.T) {
	g := graph.RandomConnectedGNM(400, 2000, 5)
	res := spanner.Unweighted(g, 3, 6, nil)
	st := SpannerStretch(g, res.EdgeIDs, 300, 7)
	if math.IsInf(st.Max, 1) {
		t.Fatal("spanner disconnected an edge")
	}
	if st.Mean < 1 || st.Max < st.Mean {
		t.Fatalf("inconsistent stats: mean %v max %v", st.Mean, st.Max)
	}
}

func TestHopsForApprox(t *testing.T) {
	g := graph.Path(50)
	// Without shortcuts: need exactly the hop distance.
	if h := HopsForApprox(g, nil, 0, 49, 0.0); h != 49 {
		t.Fatalf("path hops = %d, want 49", h)
	}
	// One big shortcut: 1 hop.
	extra := []graph.Edge{{U: 0, V: 49, W: 49}}
	if h := HopsForApprox(g, extra, 0, 49, 0.0); h != 1 {
		t.Fatalf("shortcut hops = %d, want 1", h)
	}
	// Approximate shortcut within eps.
	extra = []graph.Edge{{U: 0, V: 49, W: 54}}
	if h := HopsForApprox(g, extra, 0, 49, 0.2); h != 1 {
		t.Fatalf("approx shortcut hops = %d, want 1", h)
	}
	if h := HopsForApprox(g, extra, 0, 49, 0.05); h <= 1 {
		t.Fatalf("tight eps should reject the 54-weight shortcut, got %d", h)
	}
}

func TestHopsForApproxDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}}, false)
	if h := HopsForApprox(g, nil, 0, 3, 0.1); h != -1 {
		t.Fatalf("disconnected hops = %d, want -1", h)
	}
}

func TestHopsetHops(t *testing.T) {
	g := graph.Path(40)
	pairs := [][2]graph.V{{0, 39}, {5, 35}, {0, 10}}
	st := HopsetHops(g, nil, pairs, 0)
	if st.Samples != 3 {
		t.Fatalf("samples = %d", st.Samples)
	}
	if st.Max != 39 || st.P50 != 30 {
		t.Fatalf("max %v p50 %v, want 39 / 30", st.Max, st.P50)
	}
}

func TestMeanQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Fatalf("mean %v", m)
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 %v", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("quantile of empty should be 0")
	}
}

func TestRandomPairs(t *testing.T) {
	g := graph.Path(10)
	pairs := RandomPairs(g, 50, 1)
	if len(pairs) != 50 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		if p[0] == p[1] || p[0] < 0 || p[1] >= 10 {
			t.Fatalf("bad pair %v", p)
		}
	}
	if RandomPairs(graph.FromEdges(1, nil, false), 5, 1) != nil {
		t.Fatal("single-vertex graph should yield no pairs")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "algo", "size", "stretch")
	tb.Add("ours", "123", "3.5")
	tb.Addf("baswana-sen", 456, 7.25)
	out := tb.RenderString()
	for _, want := range []string{"== Demo ==", "algo", "ours", "baswana-sen", "456", "7.250"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"}, {3.5, "3.500"}, {123.456, "123.5"}, {0.001, "0.001"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
