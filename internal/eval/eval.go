// Package eval provides the measurement toolkit the benchmark harness
// uses to regenerate the paper's tables: spanner stretch measurement,
// hopset hop-count measurement, summary statistics, and plain-text
// table rendering.
package eval

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sssp"
)

// StretchStats summarizes measured multiplicative stretch.
type StretchStats struct {
	Max, Mean float64
	Samples   int
}

// SpannerStretch measures distH(u,v)/w(u,v) for up to `samples`
// randomly chosen edges of g (checking edge endpoints suffices to
// bound spanner stretch). Queries sharing a source share one Dijkstra.
func SpannerStretch(g *graph.Graph, spannerIDs []int32, samples int, seed uint64) StretchStats {
	m := g.NumEdges()
	if m == 0 || samples <= 0 {
		return StretchStats{}
	}
	h := g.SubgraphFromEdgeIDs(spannerIDs)
	r := rng.New(seed)
	bySource := map[graph.V][]int32{}
	if int64(samples) >= m {
		for e := int32(0); int64(e) < m; e++ {
			bySource[g.Edges()[e].U] = append(bySource[g.Edges()[e].U], e)
		}
	} else {
		for i := 0; i < samples; i++ {
			e := int32(r.Int63n(m))
			bySource[g.Edges()[e].U] = append(bySource[g.Edges()[e].U], e)
		}
	}
	var st StretchStats
	sum := 0.0
	for s, es := range bySource {
		res := sssp.Dijkstra(h, []graph.V{s}, sssp.Options{})
		for _, e := range es {
			ed := g.Edges()[e]
			d := res.Dist[ed.V]
			if d == graph.InfDist {
				// A spanner never disconnects edge endpoints; report
				// an infinite stretch loudly rather than hiding it.
				return StretchStats{Max: math.Inf(1), Mean: math.Inf(1), Samples: st.Samples + 1}
			}
			ratio := float64(d) / float64(g.EdgeWeight(e))
			sum += ratio
			if ratio > st.Max {
				st.Max = ratio
			}
			st.Samples++
		}
	}
	if st.Samples > 0 {
		st.Mean = sum / float64(st.Samples)
	}
	return st
}

// HopsForApprox returns the smallest h such that the h-hop distance in
// g ∪ extra is within (1+eps) of the exact s-t distance, or -1 when s
// and t are disconnected. Doubling plus binary search over
// hop-limited Bellman–Ford rounds.
func HopsForApprox(g *graph.Graph, extra []graph.Edge, s, t graph.V, eps float64) int {
	exact := sssp.Dijkstra(g, []graph.V{s}, sssp.Options{}).Dist[t]
	if exact == graph.InfDist {
		return -1
	}
	bound := graph.Dist(math.Ceil(float64(exact) * (1 + eps)))
	n := int(g.NumVertices())
	ok := func(h int) bool {
		return sssp.HopLimited(g, extra, []graph.V{s}, h, nil)[t] <= bound
	}
	h := 1
	for h < n && !ok(h) {
		h *= 2
	}
	if h >= n {
		if !ok(n) {
			return n
		}
		h = n
	}
	lo, hi := h/2+1, h
	if h == 1 {
		return 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// HopStats summarizes hop counts over sampled vertex pairs.
type HopStats struct {
	Max, Mean, P50 float64
	Samples        int
}

// HopsetHops measures HopsForApprox over the given pairs, skipping
// disconnected ones.
func HopsetHops(g *graph.Graph, extra []graph.Edge, pairs [][2]graph.V, eps float64) HopStats {
	var hops []float64
	for _, p := range pairs {
		h := HopsForApprox(g, extra, p[0], p[1], eps)
		if h < 0 {
			continue
		}
		hops = append(hops, float64(h))
	}
	return summarize(hops)
}

func summarize(xs []float64) HopStats {
	if len(xs) == 0 {
		return HopStats{}
	}
	sort.Float64s(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return HopStats{
		Max:     xs[len(xs)-1],
		Mean:    sum / float64(len(xs)),
		P50:     Quantile(xs, 0.5),
		Samples: len(xs),
	}
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-th quantile (nearest-rank on sorted input).
// xs must be sorted ascending.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	idx := int(math.Ceil(q*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return xs[idx]
}

// RandomPairs samples `count` (s, t) pairs with s != t, uniformly.
func RandomPairs(g *graph.Graph, count int, seed uint64) [][2]graph.V {
	n := g.NumVertices()
	if n < 2 {
		return nil
	}
	r := rng.New(seed)
	out := make([][2]graph.V, 0, count)
	for len(out) < count {
		s := r.Int31n(n)
		t := r.Int31n(n)
		if s != t {
			out = append(out, [2]graph.V{s, t})
		}
	}
	return out
}

// Table is a minimal fixed-width text table used by cmd/figures to
// print the paper-style comparison tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are dropped,
// missing cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted cells: each argument is rendered
// with %v.
func (t *Table) Addf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, FormatFloat(v))
		default:
			row = append(row, fmt.Sprintf("%v", c))
		}
	}
	t.Add(row...)
}

// FormatFloat renders floats compactly (integers without decimals,
// large values with thousands grouping suppressed).
func FormatFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Sprintf("%v", v)
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderString returns the rendered table as a string.
func (t *Table) RenderString() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
