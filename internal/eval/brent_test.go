package eval

import "testing"

func TestBrentTime(t *testing.T) {
	// W=1000, D=10: sequential 1010, at p=100: 10+10=20.
	if got := BrentTime(1000, 10, 1); got != 1010 {
		t.Fatalf("T_1 = %v, want 1010", got)
	}
	if got := BrentTime(1000, 10, 100); got != 20 {
		t.Fatalf("T_100 = %v, want 20", got)
	}
	// p < 1 clamps to 1.
	if got := BrentTime(1000, 10, 0); got != 1010 {
		t.Fatalf("T_0 = %v, want 1010", got)
	}
}

func TestSpeedupMonotone(t *testing.T) {
	prev := 0.0
	for _, p := range []int{1, 2, 4, 16, 256, 1 << 20} {
		s := Speedup(1_000_000, 100, p)
		if s < prev {
			t.Fatalf("speedup decreased at p=%d: %v < %v", p, s, prev)
		}
		prev = s
	}
	// Speedup saturates at ~W/D.
	if prev > 1_000_000/100+2 {
		t.Fatalf("speedup %v exceeds W/D saturation", prev)
	}
	if Speedup(1000, 0, 10) <= 0 {
		t.Fatal("degenerate speedup")
	}
	// A fully sequential algorithm never speeds up.
	if s := Speedup(5000, 5000, 1024); s > 1 {
		t.Fatalf("sequential speedup %v > 1", s)
	}
}

func TestSaturationProcessors(t *testing.T) {
	if got := SaturationProcessors(1_000_000, 100); got != 10000 {
		t.Fatalf("p* = %v, want 10000", got)
	}
	if got := SaturationProcessors(42, 0); got != 42 {
		t.Fatalf("p* with zero depth = %v", got)
	}
}
