// Package rng provides a small, fast, deterministic random number
// generator used by every randomized routine in this repository.
//
// All algorithms in the paper are randomized (exponential start time
// shifts, Baswana–Sen coin flips, workload generators). To make every
// experiment reproducible the repository never touches global random
// state: each routine receives an explicit seed and derives an
// independent stream from it with Split, so parallel workers can draw
// without locks and without correlated streams.
//
// The generator is splitmix64 (Steele, Lea, Flood 2014), which passes
// BigCrush, needs only a single uint64 of state, and has a cheap
// "split" operation (re-seed through the output function) that yields
// statistically independent streams.
package rng

import (
	"math"
	"math/bits"
)

// golden is the 64-bit golden ratio constant used by splitmix64.
const golden = 0x9e3779b97f4a7c15

// RNG is a splitmix64 pseudo random number generator. The zero value
// is a valid generator seeded with 0, but New should be preferred so
// that distinct seeds map to well-separated states.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators built from
// different seeds produce independent-looking streams even when the
// seeds differ in a single bit, because splitmix64's output function
// is applied before the first draw.
func New(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Burn one output so that small seeds (0, 1, 2, ...) diverge
	// immediately instead of after the first increment.
	r.state = mix(r.state + golden)
	return r
}

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix(r.state)
}

// Split returns a new generator whose stream is independent of the
// remainder of r's stream. It consumes one draw from r.
func (r *RNG) Split() *RNG {
	return &RNG{state: mix(r.Uint64())}
}

// SplitN returns n independent generators derived from r, one per
// parallel worker. It consumes n draws from r.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Int63 returns a uniformly random non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniformly random int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n with n <= 0")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Int63n returns a uniformly random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly random uint64 in [0, n).
// It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's method with a rejection step: unbiased for all n.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly random float64 in [0, 1) with 53 bits of
// precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniformly random float64 in the open interval
// (0, 1). It never returns 0, which makes it safe to pass to math.Log.
func (r *RNG) Float64Open() float64 {
	for {
		f := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if f > 0 && f < 1 {
			return f
		}
	}
}

// Exp returns a draw from the exponential distribution with rate beta,
// i.e. with mean 1/beta. This is the distribution of the start-time
// shifts delta_u in exponential start time clustering (paper §2.1).
// It panics if beta <= 0.
func (r *RNG) Exp(beta float64) float64 {
	if beta <= 0 {
		panic("rng: Exp with beta <= 0")
	}
	return -math.Log(r.Float64Open()) / beta
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n) as int32
// values, matching the repository's vertex id type.
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap
// function, exactly like math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
