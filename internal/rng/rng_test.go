package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The parent stream after Split must differ from the child stream.
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			t.Fatalf("split streams collided at draw %d", i)
		}
	}
}

func TestSplitN(t *testing.T) {
	r := New(9)
	streams := r.SplitN(8)
	if len(streams) != 8 {
		t.Fatalf("SplitN(8) returned %d streams", len(streams))
	}
	seen := map[uint64]int{}
	for i, s := range streams {
		v := s.Uint64()
		if j, ok := seen[v]; ok {
			t.Fatalf("streams %d and %d produced identical first draw", i, j)
		}
		seen[v] = i
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n < 100; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(6)
	for i := 0; i < 100000; i++ {
		f := r.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open() = %v out of (0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

// TestExpMean validates that Exp(beta) has mean 1/beta, the property
// the paper's Lemma 2.1 diameter bound depends on.
func TestExpMean(t *testing.T) {
	for _, beta := range []float64{0.1, 0.5, 1, 2, 10} {
		r := New(uint64(beta*1000) + 17)
		const draws = 200000
		sum := 0.0
		for i := 0; i < draws; i++ {
			sum += r.Exp(beta)
		}
		mean := sum / draws
		want := 1 / beta
		if math.Abs(mean-want) > 0.03*want {
			t.Errorf("Exp(%v) mean = %v, want ~%v", beta, mean, want)
		}
	}
}

// TestExpTail validates the exponential tail P[X > t] = exp(-beta t),
// which is exactly the quantity in Lemma 2.1's union bound.
func TestExpTail(t *testing.T) {
	r := New(23)
	const beta, cut, draws = 1.0, 2.0, 200000
	over := 0
	for i := 0; i < draws; i++ {
		if r.Exp(beta) > cut {
			over++
		}
	}
	got := float64(over) / draws
	want := math.Exp(-beta * cut)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("tail P[X>%v] = %v, want ~%v", cut, got, want)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestBernoulli(t *testing.T) {
	r := New(31)
	const p, draws = 0.3, 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(14)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d: %v", v, xs)
		}
		seen[v] = true
	}
}

// Property: Uint64n(n) is always < n, for arbitrary n.
func TestUint64nProperty(t *testing.T) {
	r := New(99)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn/Int63n/Int31n stay in range for arbitrary positive bounds.
func TestIntBoundsProperty(t *testing.T) {
	r := New(101)
	f := func(a uint16, b uint32, c uint64) bool {
		n1 := int(a)%1000 + 1
		n2 := int32(b%100000) + 1
		n3 := int64(c%1000000) + 1
		v1 := r.Intn(n1)
		v2 := r.Int31n(n2)
		v3 := r.Int63n(n3)
		return v1 >= 0 && v1 < n1 && v2 >= 0 && v2 < n2 && v3 >= 0 && v3 < n3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: small bounds on Uint64n still produce every residue,
// i.e. the rejection step does not starve any value.
func TestUint64nCoversAllResidues(t *testing.T) {
	r := New(77)
	const n = 7
	seen := make([]bool, n)
	for i := 0; i < 10000; i++ {
		seen[r.Uint64n(n)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Uint64n(%d) never produced %d", n, v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(0.5)
	}
	_ = sink
}
