// Package experiments implements every reproduction experiment in
// DESIGN.md's per-experiment index, one function per table/figure of
// the paper. cmd/figures renders the returned rows as paper-style
// tables, and the root bench_test.go re-exposes each experiment as a
// benchmark target reporting the same numbers via b.ReportMetric.
//
// Every experiment takes a seed (full determinism) and a Scale that
// controls instance sizes so the whole suite can run in CI (Small) or
// reproduce the shapes properly (Full).
package experiments

import (
	"repro/internal/eval"
	"repro/internal/graph"
)

// Scale selects instance sizes.
type Scale int

const (
	// Small finishes the whole suite in tens of seconds.
	Small Scale = iota
	// Full is the EXPERIMENTS.md configuration.
	Full
)

// pick returns a or b depending on scale.
func (s Scale) pick(small, full int) int {
	if s == Small {
		return small
	}
	return full
}

// SpannerRow is one Figure 1 table row.
type SpannerRow struct {
	Workload   string
	Algo       string
	K          int
	N          int64
	M          int64
	Size       int64
	Work       int64
	Depth      int64
	StretchMax float64
	StretchAvg float64
	Promise    string // the paper's promised stretch, e.g. "O(k)" or "2k-1"
}

// HopsetRow is one Figure 2 table row.
type HopsetRow struct {
	Workload  string
	Algo      string
	N         int64
	M         int64
	Size      int64
	BuildWork int64
	BuildDep  int64
	HopsMean  float64
	HopsMax   float64
	HopsP50   float64
	Pairs     int
}

// ScalingRow is one row of a parameter-scaling experiment.
type ScalingRow struct {
	Label   string
	N       int64
	M       int64
	K       int
	Size    int64
	Bound   float64 // the theorem's envelope for this row
	Ratio   float64 // Size / Bound — flat means the theorem's shape holds
	Work    int64
	Depth   int64
	Extra   float64 // experiment-specific auxiliary value
	Extraux string  // its label
}

// StatRow is one row of a lemma-validation experiment.
type StatRow struct {
	Label    string
	Observed float64
	Bound    float64
	OK       bool
	Detail   string
}

// PipelineRow is one row of the Theorem 1.2 / Corollary 4.5/5.4
// end-to-end comparison.
type PipelineRow struct {
	Workload    string
	Method      string
	N           int64
	M           int64
	PrepWork    int64
	PrepDepth   int64
	QueryLevels float64 // mean per query
	Distortion  float64 // mean returned/exact
	WorstDist   float64
	Queries     int
	Fallbacks   int
}

// connectedPairs samples query pairs that are connected and at least
// minDist apart (signal-carrying pairs).
func connectedPairs(g *graph.Graph, count int, minDist graph.Dist, seed uint64) [][2]graph.V {
	cand := eval.RandomPairs(g, count*8+32, seed)
	var out [][2]graph.V
	distCache := map[graph.V][]graph.Dist{}
	for _, p := range cand {
		if len(out) >= count {
			break
		}
		d, ok := distCache[p[0]]
		if !ok {
			d = exactDistances(g, p[0])
			distCache[p[0]] = d
		}
		if d[p[1]] == graph.InfDist || d[p[1]] < minDist {
			continue
		}
		out = append(out, p)
	}
	return out
}
