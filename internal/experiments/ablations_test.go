package experiments

import (
	"strings"
	"testing"
)

func TestAblationShifts(t *testing.T) {
	rows := AblationShifts(Small, 21)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	est, rnd := rows[0], rows[1]
	if est.Label != "est shifts (paper)" || rnd.Label != "random centers" {
		t.Fatalf("unexpected labels %q, %q", est.Label, rnd.Label)
	}
	if est.Size <= 0 || rnd.Size <= 0 {
		t.Fatal("degenerate sizes")
	}
	// The EST shifts control boundary counts: random centers of equal
	// granularity must not beat them on size (they typically lose by
	// a wide margin on dense graphs).
	if rnd.Size < est.Size {
		t.Logf("note: random centers smaller on this seed (%d vs %d)", rnd.Size, est.Size)
	}
	if est.Extra <= 0 {
		t.Fatal("no stretch measured")
	}
}

func TestAblationDelta(t *testing.T) {
	rows := AblationDelta(Small, 22)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Size <= 0 || r.Extra <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}

func TestAblationEscalation(t *testing.T) {
	rows := AblationEscalation(Small, 23)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Depth <= 0 {
			t.Fatalf("no query levels measured: %+v", r)
		}
		if r.Extra < 1 || r.Extra > 2 {
			t.Fatalf("distortion %v out of range for %s", r.Extra, r.Label)
		}
	}
}

func TestBrentProjection(t *testing.T) {
	tbl := BrentProjection(Small, 24)
	out := tbl.RenderString()
	for _, want := range []string{"est-spanner k=3", "est-hopset", "parallel BFS", "dijkstra (seq)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Brent table missing %q:\n%s", want, out)
		}
	}
	// The sequential baseline's speedup column must be ~1 and the
	// parallel algorithms' > 1; spot check via the saturation p*.
	lines := strings.Split(out, "\n")
	var dij string
	for _, l := range lines {
		if strings.HasPrefix(l, "dijkstra") {
			dij = l
		}
	}
	if dij == "" {
		t.Fatal("missing dijkstra row")
	}
	fields := strings.Fields(dij)
	if fields[len(fields)-1] != "1" { // p* = W/D = 1 for depth == work
		t.Fatalf("dijkstra saturation p* = %s, want 1", fields[len(fields)-1])
	}
}
