package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spanner"
	"repro/internal/workload"
)

// Lemma21Diameter measures cluster radii against the Lemma 2.1 bound
// k·β^{-1}·ln n (k = 2, failure probability ~1/n per trial) across β.
func Lemma21Diameter(scale Scale, seed uint64) []StatRow {
	g := workload.ER(int32(scale.pick(1024, 4096)), 4, seed).Gen()
	n := float64(g.NumVertices())
	trials := scale.pick(8, 20)
	var rows []StatRow
	for _, beta := range []float64{0.1, 0.3, 0.6} {
		bound := 2 * math.Log(n) / beta
		worst := 0.0
		viol := 0
		for tr := 0; tr < trials; tr++ {
			res := core.Cluster(g, beta, seed+uint64(tr)+uint64(beta*1000), core.Options{})
			r := float64(res.MaxRadius())
			if r > worst {
				worst = r
			}
			if r > bound {
				viol++
			}
		}
		rows = append(rows, StatRow{
			Label:    fmt.Sprintf("beta=%.1f max radius", beta),
			Observed: worst,
			Bound:    bound,
			OK:       viol <= (trials+9)/10, // ≤10% of trials may exceed the whp bound
			Detail:   fmt.Sprintf("%d/%d trials above bound", viol, trials),
		})
	}
	return rows
}

// Lemma22Ball measures P[ball of radius r meets ≥ j clusters] against
// the (1−e^{−2rβ})^{j−1} bound.
func Lemma22Ball(scale Scale, seed uint64) []StatRow {
	g := workload.Grid(int32(scale.pick(24, 40))).Gen()
	beta := 0.15
	radius := graph.Dist(2)
	gamma := 1 - math.Exp(-2*float64(radius)*beta)
	trials := scale.pick(6, 15)
	samplesPer := scale.pick(40, 80)
	r := rng.New(seed + 5)
	counts := map[int]int{}
	total := 0
	for tr := 0; tr < trials; tr++ {
		res := core.Cluster(g, beta, seed+uint64(tr), core.Options{})
		for i := 0; i < samplesPer; i++ {
			v := r.Int31n(g.NumVertices())
			k := core.BallClusterCount(g, res, v, radius)
			total++
			for j := 2; j <= k; j++ {
				counts[j]++
			}
		}
	}
	var rows []StatRow
	for _, j := range []int{2, 3, 4} {
		got := float64(counts[j]) / float64(total)
		bound := math.Pow(gamma, float64(j-1))
		rows = append(rows, StatRow{
			Label:    fmt.Sprintf("P[ball(r=%d) meets >=%d clusters]", radius, j),
			Observed: got,
			Bound:    bound,
			OK:       got <= bound*1.3+0.02,
			Detail:   fmt.Sprintf("%d of %d samples", counts[j], total),
		})
	}
	return rows
}

// Corollary23Cut measures the expected cut-edge mass against the
// β·w(e) bound.
func Corollary23Cut(scale Scale, seed uint64) []StatRow {
	g := graph.UniformWeights(workload.ER(int32(scale.pick(512, 2048)), 4, seed).Gen(), 3, seed+1)
	trials := scale.pick(10, 30)
	var rows []StatRow
	for _, beta := range []float64{0.02, 0.05, 0.1} {
		totalCut := 0
		for tr := 0; tr < trials; tr++ {
			res := core.Cluster(g, beta, seed+uint64(tr)+uint64(beta*1e4), core.Options{})
			totalCut += len(core.CutEdges(g, res))
		}
		mean := float64(totalCut) / float64(trials)
		bound := beta * float64(g.TotalWeight())
		rows = append(rows, StatRow{
			Label:    fmt.Sprintf("beta=%.2f mean cut edges", beta),
			Observed: mean,
			Bound:    bound,
			OK:       mean <= bound*1.15,
			Detail:   fmt.Sprintf("m=%d", g.NumEdges()),
		})
	}
	return rows
}

// Corollary31Adjacency measures the mean number of clusters adjacent
// to a vertex (ball of radius 1) against n^{1/k} for the spanner's
// β = ln(n)/(2k).
func Corollary31Adjacency(scale Scale, seed uint64) []StatRow {
	g := workload.ER(int32(scale.pick(1024, 4096)), 5, seed).Gen()
	n := float64(g.NumVertices())
	var rows []StatRow
	for _, k := range []int{2, 3, 5} {
		res := spanner.Unweighted(g, k, seed+uint64(k), nil)
		total := 0.0
		for v := graph.V(0); v < g.NumVertices(); v++ {
			seen := map[int32]bool{res.Clustering.ClusterOf[v]: true}
			for _, u := range g.Neighbors(v) {
				seen[res.Clustering.ClusterOf[u]] = true
			}
			total += float64(len(seen))
		}
		avg := total / n
		bound := math.Pow(n, 1/float64(k))
		rows = append(rows, StatRow{
			Label:    fmt.Sprintf("k=%d mean ball(1) clusters", k),
			Observed: avg,
			Bound:    bound,
			OK:       avg <= 2.5*bound,
			Detail:   "bound is E-envelope n^{1/k}",
		})
	}
	return rows
}

// Lemma52Rounding validates the Klein–Subramanian rounding bounds on
// random paths: w̃(p) ≤ ⌈ck/ζ⌉ and ŵ·w̃(p) ≤ (1+ζ)·w(p).
func Lemma52Rounding(scale Scale, seed uint64) []StatRow {
	r := rng.New(seed)
	trials := scale.pick(200, 1000)
	zeta := 0.25
	okCount, okLen := 0, 0
	worstDistort := 1.0
	for tr := 0; tr < trials; tr++ {
		k := r.Intn(50) + 1
		// A synthetic path of k edges with weights in [1, 100].
		weights := make([]graph.W, k)
		var total graph.W
		for i := range weights {
			weights[i] = 1 + r.Int63n(100)
			total += weights[i]
		}
		d := float64(total) / (1 + 3*r.Float64()) // estimate d ≤ w(p) ≤ cd
		c := float64(total) / d
		wHat := zeta * d / float64(k)
		var rounded graph.Dist
		for _, w := range weights {
			rounded += graph.Dist(math.Ceil(float64(w) / wHat))
		}
		if float64(rounded) <= math.Ceil(c*float64(k)/zeta)+float64(k) {
			okLen++
		}
		distort := wHat * float64(rounded) / float64(total)
		if distort > worstDistort {
			worstDistort = distort
		}
		if distort <= 1+zeta+1e-9 {
			okCount++
		}
	}
	return []StatRow{
		{
			Label:    "rounded length within ceil(ck/zeta)+k",
			Observed: float64(okLen),
			Bound:    float64(trials),
			OK:       okLen == trials,
			Detail:   fmt.Sprintf("%d/%d paths", okLen, trials),
		},
		{
			Label:    "worst multiplicative distortion",
			Observed: worstDistort,
			Bound:    1 + zeta,
			OK:       okCount == trials,
			Detail:   fmt.Sprintf("%d/%d paths within (1+zeta)", okCount, trials),
		},
	}
}

// RenderStatRows formats lemma-validation rows.
func RenderStatRows(title string, rows []StatRow) *eval.Table {
	t := eval.NewTable(title, "quantity", "observed", "bound", "ok", "detail")
	for _, r := range rows {
		ok := "yes"
		if !r.OK {
			ok = "NO"
		}
		t.Add(r.Label, eval.FormatFloat(r.Observed), eval.FormatFloat(r.Bound), ok, r.Detail)
	}
	return t
}
