package experiments

import (
	"strings"
	"testing"
)

// The experiment suite is exercised end-to-end at Small scale: every
// experiment must produce rows, render, and (for lemma validations)
// satisfy its own bound checks.

func TestFigure1Unweighted(t *testing.T) {
	rows := Figure1Unweighted(Small, 1)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	perAlgo := map[string]int{}
	for _, r := range rows {
		perAlgo[r.Algo]++
		if r.Size <= 0 || r.Work <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.StretchMax <= 0 {
			t.Fatalf("no stretch measured: %+v", r)
		}
	}
	if len(perAlgo) < 2 {
		t.Fatalf("expected multiple contenders, got %v", perAlgo)
	}
	out := RenderSpannerRows("F1-U", rows).RenderString()
	if !strings.Contains(out, "est-spanner (ours)") {
		t.Fatal("render missing our algorithm")
	}
}

func TestFigure1UnweightedShape(t *testing.T) {
	// The headline Figure 1 claim: at equal k, our spanner is smaller
	// than Baswana–Sen's (whose size carries the extra k factor)
	// while both have O(k)-flavored stretch. Check on aggregate.
	rows := Figure1Unweighted(Small, 2)
	var oursTotal, bsTotal int64
	for _, r := range rows {
		switch r.Algo {
		case "est-spanner (ours)":
			oursTotal += r.Size
		case "baswana-sen [BS07]":
			bsTotal += r.Size
		}
	}
	if oursTotal >= bsTotal {
		t.Fatalf("ours %d not smaller than Baswana-Sen %d in aggregate", oursTotal, bsTotal)
	}
}

func TestFigure1Weighted(t *testing.T) {
	rows := Figure1Weighted(Small, 3)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.StretchMax <= 0 || r.Size <= 0 {
			t.Fatalf("degenerate weighted row %+v", r)
		}
	}
}

func TestFigure2(t *testing.T) {
	rows := Figure2(Small, 4)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Our hopset must reduce mean hops vs the no-hopset row on every
	// workload.
	base := map[string]float64{}
	ours := map[string]float64{}
	for _, r := range rows {
		switch r.Algo {
		case "no hopset":
			base[r.Workload] = r.HopsMean
		case "est-hopset (ours)":
			ours[r.Workload] = r.HopsMean
		}
	}
	for w, b := range base {
		o, ok := ours[w]
		if !ok {
			t.Fatalf("missing ours row for %s", w)
		}
		if b > 8 && o >= b {
			t.Fatalf("%s: hopset did not reduce hops (%v vs %v)", w, o, b)
		}
	}
	RenderHopsetRows("F2", rows)
}

func TestTheorem11Scaling(t *testing.T) {
	rows := Theorem11Scaling(Small, 5)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// size/bound ratios must stay within a constant envelope.
	for _, r := range rows {
		if r.Ratio <= 0 || r.Ratio > 8 {
			t.Fatalf("size/bound ratio %v out of constant envelope: %+v", r.Ratio, r)
		}
	}
	RenderScalingRows("T1.1", rows)
}

func TestTheorem33Contraction(t *testing.T) {
	rows := Theorem33Contraction(Small, 6)
	for _, r := range rows {
		if r.Ratio <= 0 || r.Ratio > 8 {
			t.Fatalf("weighted size ratio %v out of envelope", r.Ratio)
		}
	}
}

func TestTheorem44Scaling(t *testing.T) {
	rows := Theorem44Scaling(Small, 7)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio > 1.01 {
			t.Fatalf("hopset size above Lemma 4.3 bound: %+v", r)
		}
	}
	// Larger gamma2 → deeper construction (more rounds).
	if rows[0].Depth >= rows[2].Depth {
		t.Fatalf("depth not increasing in gamma2: %d vs %d", rows[0].Depth, rows[2].Depth)
	}
}

func TestLemmaValidations(t *testing.T) {
	suites := map[string][]StatRow{
		"L2.1": Lemma21Diameter(Small, 8),
		"L2.2": Lemma22Ball(Small, 9),
		"C2.3": Corollary23Cut(Small, 10),
		"C3.1": Corollary31Adjacency(Small, 11),
		"L5.2": Lemma52Rounding(Small, 12),
		"B":    AppendixBDecomposition(Small, 13),
	}
	for name, rows := range suites {
		if len(rows) == 0 {
			t.Fatalf("%s: no rows", name)
		}
		for _, r := range rows {
			if !r.OK {
				t.Errorf("%s: bound violated: %s observed %v bound %v (%s)",
					name, r.Label, r.Observed, r.Bound, r.Detail)
			}
		}
		RenderStatRows(name, rows)
	}
}

func TestTheorem12Pipeline(t *testing.T) {
	rows := Theorem12Pipeline(Small, 14)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Group by workload: ours must have fewer query levels than plain
	// weighted BFS and bounded distortion.
	byWorkload := map[string]map[string]PipelineRow{}
	for _, r := range rows {
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[string]PipelineRow{}
		}
		byWorkload[r.Workload][r.Method] = r
	}
	for w, methods := range byWorkload {
		ours, ok1 := methods["est-hopset query (ours)"]
		plain, ok2 := methods["weighted parallel BFS"]
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing methods %v", w, methods)
		}
		if ours.QueryLevels >= plain.QueryLevels {
			t.Errorf("%s: hopset query levels %v not below plain %v",
				w, ours.QueryLevels, plain.QueryLevels)
		}
		if ours.Distortion > 1.5 || ours.WorstDist > 2.5 {
			t.Errorf("%s: distortion too large: %+v", w, ours)
		}
	}
	RenderPipelineRows("T1.2", rows)
}

func TestCorollary45Unweighted(t *testing.T) {
	rows := Corollary45Unweighted(Small, 15)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].QueryLevels >= rows[1].QueryLevels {
		t.Fatalf("hopset hops %v not below BFS hops %v",
			rows[0].QueryLevels, rows[1].QueryLevels)
	}
}

func TestAppendixCLimited(t *testing.T) {
	rows := AppendixCLimited(Small, 16)
	if len(rows) < 2 {
		t.Fatal("no rows")
	}
	base := rows[0].Extra
	for _, r := range rows[1:] {
		if r.Extra >= base {
			t.Errorf("limited hopset (%s) did not reduce hops: %v vs %v",
				r.Label, r.Extra, base)
		}
	}
}
