package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sssp"
	"repro/internal/workload"
)

// This file holds the ablation experiments for the design choices
// DESIGN.md calls out:
//
//   - AblationShifts: what do the exponential start time shifts buy
//     over plain "random centers + BFS Voronoi" clustering in the
//     spanner construction?
//   - AblationDelta: how does the hopset's δ (the ρ-vs-β separation
//     exponent) trade size against hop count?
//   - AblationEscalation: the query engine's hop-budget escalation
//     factor (our adaptive addition to the paper's query stage).
//   - BrentProjection: translate measured (work, depth) into the
//     predicted running times the paper's Section 2 discussion is
//     about.

// AblationShifts compares the EST clustering against a same-granularity
// random-centers BFS clustering inside the unweighted spanner: same
// pipeline, only the decomposition differs. The exponential shifts are
// what bound the per-edge cut probability (Cor 2.3) and the
// ball-intersection count (Lemma 2.2) — without them, boundary edges
// (and hence spanner size) blow up and stretch control degrades.
func AblationShifts(scale Scale, seed uint64) []ScalingRow {
	g := workload.ER(int32(scale.pick(1024, 4096)), 8, seed).Gen()
	k := 3
	var rows []ScalingRow

	// EST variant (the paper's construction).
	{
		clus := core.Cluster(g, betaForN(g.NumVertices(), k), seed+1, core.Options{UnitWeights: true})
		size, stretch := spannerFromClustering(g, clus, seed+2)
		rows = append(rows, ScalingRow{
			Label: "est shifts (paper)", N: int64(g.NumVertices()), M: g.NumEdges(), K: k,
			Size: int64(size), Extra: stretch, Extraux: "stretch max",
		})
	}
	// Random-centers variant with the same number of centers.
	{
		ref := core.Cluster(g, betaForN(g.NumVertices(), k), seed+1, core.Options{UnitWeights: true})
		clus := randomCenterClustering(g, ref.NumClusters(), seed+3)
		size, stretch := spannerFromClustering(g, clus, seed+4)
		rows = append(rows, ScalingRow{
			Label: "random centers", N: int64(g.NumVertices()), M: g.NumEdges(), K: k,
			Size: int64(size), Extra: stretch, Extraux: "stretch max",
		})
	}
	return rows
}

func betaForN(n graph.V, k int) float64 {
	if n < 3 {
		n = 3
	}
	return math.Log(float64(n)) / (2 * float64(k))
}

// randomCenterClustering samples c centers uniformly and assigns every
// vertex to its nearest center by multi-source BFS (unreached vertices
// become their own centers).
func randomCenterClustering(g *graph.Graph, c int, seed uint64) *core.Result {
	r := rng.New(seed)
	n := g.NumVertices()
	perm := r.Perm(int(n))
	centers := make([]graph.V, 0, c)
	for i := 0; i < c && i < int(n); i++ {
		centers = append(centers, perm[i])
	}
	res := sssp.BFS(g, centers, sssp.Options{})
	out := &core.Result{
		Center:       make([]graph.V, n),
		Parent:       make([]graph.V, n),
		DistToCenter: make([]graph.Dist, n),
		ClusterOf:    make([]int32, n),
	}
	// Root lookup: walk parents to the BFS source.
	rootOf := make([]graph.V, n)
	for i := range rootOf {
		rootOf[i] = graph.NoVertex
	}
	for _, cv := range centers {
		rootOf[cv] = cv
	}
	var resolve func(v graph.V) graph.V
	resolve = func(v graph.V) graph.V {
		if rootOf[v] != graph.NoVertex {
			return rootOf[v]
		}
		p := res.Parent[v]
		if p == graph.NoVertex {
			rootOf[v] = v // unreached: own center
			return v
		}
		rootOf[v] = resolve(p)
		return rootOf[v]
	}
	for v := graph.V(0); v < n; v++ {
		out.Center[v] = resolve(v)
		out.Parent[v] = res.Parent[v]
		if res.Dist[v] == graph.InfDist {
			out.Parent[v] = graph.NoVertex
			out.DistToCenter[v] = 0
		} else {
			out.DistToCenter[v] = res.Dist[v]
		}
	}
	// Dense grouping.
	idx := map[graph.V]int32{}
	for v := graph.V(0); v < n; v++ {
		cv := out.Center[v]
		ci, ok := idx[cv]
		if !ok {
			ci = int32(len(out.Centers))
			idx[cv] = ci
			out.Centers = append(out.Centers, cv)
			out.Clusters = append(out.Clusters, []graph.V{cv})
		}
		out.ClusterOf[v] = ci
		if v != cv {
			out.Clusters[ci] = append(out.Clusters[ci], v)
		}
	}
	return out
}

// spannerFromClustering applies Algorithm 2's second step (forest +
// one edge per boundary/cluster pair) to an arbitrary clustering and
// measures the result.
func spannerFromClustering(g *graph.Graph, clus *core.Result, seed uint64) (int, float64) {
	ids := core.ForestEdges(g, clus)
	best := map[int32]int32{}
	for v := graph.V(0); v < g.NumVertices(); v++ {
		cv := clus.ClusterOf[v]
		clear(best)
		adj := g.Neighbors(v)
		eids := g.AdjEdgeIDs(v)
		for i, u := range adj {
			cu := clus.ClusterOf[u]
			if cu == cv {
				continue
			}
			if prev, ok := best[cu]; !ok || eids[i] < prev {
				best[cu] = eids[i]
			}
		}
		for _, e := range best {
			ids = append(ids, e)
		}
	}
	// Dedup.
	seen := map[int32]bool{}
	var ded []int32
	for _, e := range ids {
		if !seen[e] {
			seen[e] = true
			ded = append(ded, e)
		}
	}
	st := eval.SpannerStretch(g, ded, 200, seed)
	return len(ded), st.Max
}

// AblationDelta sweeps the hopset's δ parameter: larger δ means faster
// cluster-size decay relative to β growth — fewer recursion levels and
// fewer clique edges, but coarser shortcut structure.
func AblationDelta(scale Scale, seed uint64) []ScalingRow {
	g := workload.Grid(int32(scale.pick(24, 40))).Gen()
	pairs := connectedPairs(g, scale.pick(4, 8), 20, seed+1)
	var rows []ScalingRow
	for _, delta := range []float64{1.2, 1.5, 2.0, 3.0} {
		p := hopset.DefaultParams(seed + uint64(delta*10))
		p.Delta = delta
		cost := par.NewCost()
		res := hopset.Build(g, p, cost)
		hops := eval.HopsetHops(g, res.Edges, pairs, 0.5)
		rows = append(rows, ScalingRow{
			Label: fmt.Sprintf("delta=%.1f", delta),
			N:     int64(g.NumVertices()), M: g.NumEdges(),
			Size:  int64(res.Size()),
			Work:  cost.Work(),
			Depth: cost.Depth(),
			Extra: hops.Mean, Extraux: "hops mean",
		})
	}
	return rows
}

// AblationEscalation sweeps the query hop-budget escalation factor on
// a long weighted path — an instance whose shortcut paths need far
// more than the initial 16-hop budget, so the escalation policy
// actually engages (on low-hop instances all factors coincide).
func AblationEscalation(scale Scale, seed uint64) []ScalingRow {
	g := graph.UniformWeights(graph.Path(int32(scale.pick(1500, 4000))), 100, seed)
	pairs := connectedPairs(g, scale.pick(3, 6), graph.Dist(scale.pick(30000, 90000)), seed+1)
	type variant struct {
		label   string
		esc     float64
		initial float64
	}
	variants := []variant{
		{"start=16, esc=2", 2, 16},
		{"start=16, esc=8 (default)", 8, 16},
		{"start=16, esc=32", 32, 16},
		{"start=lemma-bound (no adaptivity)", 8, 1e12},
	}
	var rows []ScalingRow
	for _, v := range variants {
		wp := hopset.DefaultWeightedParams(seed + 7)
		wp.Gamma2 = 0.5
		wp.Escalation = v.esc
		wp.InitialHopBudget = v.initial
		s := hopset.BuildScaled(g, wp, nil)
		var levels, work, distort []float64
		for _, p := range pairs {
			exact := s.ExactDistance(p[0], p[1])
			q := s.Query(p[0], p[1], nil)
			levels = append(levels, float64(q.Levels))
			work = append(work, float64(q.Work))
			distort = append(distort, float64(q.Dist)/float64(exact))
		}
		rows = append(rows, ScalingRow{
			Label: v.label,
			N:     int64(g.NumVertices()), M: g.NumEdges(),
			Size:  int64(s.Size()),
			Work:  int64(eval.Mean(work)),
			Depth: int64(eval.Mean(levels)),
			Extra: eval.Mean(distort), Extraux: "distortion",
		})
	}
	return rows
}

// BrentProjection translates measured (work, depth) of the headline
// algorithms into predicted times and speedups at several processor
// counts (Brent's bound), reproducing the paper's point that O(m)-work
// algorithms dominate at realistic machine sizes.
func BrentProjection(scale Scale, seed uint64) *eval.Table {
	g := workload.ER(int32(scale.pick(2048, 8192)), 8, seed).Gen()
	type meas struct {
		name        string
		work, depth int64
	}
	var ms []meas
	{
		cost := par.NewCost()
		_ = mustSpanner(g, 3, seed+1, cost)
		ms = append(ms, meas{"est-spanner k=3", cost.Work(), cost.Depth()})
	}
	{
		cost := par.NewCost()
		hopset.Build(g, hopset.DefaultParams(seed+2), cost)
		ms = append(ms, meas{"est-hopset", cost.Work(), cost.Depth()})
	}
	{
		cost := par.NewCost()
		sssp.BFS(g, []graph.V{0}, sssp.Options{Cost: cost})
		ms = append(ms, meas{"parallel BFS", cost.Work(), cost.Depth()})
	}
	{
		cost := par.NewCost()
		sssp.Dijkstra(g, []graph.V{0}, sssp.Options{Cost: cost})
		ms = append(ms, meas{"dijkstra (seq)", cost.Work(), cost.Depth()})
	}
	t := eval.NewTable("Brent projection: predicted time (work/p + depth) and speedup",
		"algorithm", "work", "depth", "T(p=16)", "T(p=256)", "T(p=4096)", "speedup@256", "p*")
	for _, m := range ms {
		t.Add(m.name,
			fmt.Sprint(m.work), fmt.Sprint(m.depth),
			eval.FormatFloat(eval.BrentTime(m.work, m.depth, 16)),
			eval.FormatFloat(eval.BrentTime(m.work, m.depth, 256)),
			eval.FormatFloat(eval.BrentTime(m.work, m.depth, 4096)),
			eval.FormatFloat(eval.Speedup(m.work, m.depth, 256)),
			eval.FormatFloat(eval.SaturationProcessors(m.work, m.depth)))
	}
	return t
}

func mustSpanner(g *graph.Graph, k int, seed uint64, cost *par.Cost) int {
	res := spannerContenders()[0].run(g, k, seed, cost)
	return res.Size()
}
