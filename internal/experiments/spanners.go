package experiments

import (
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/spanner"
	"repro/internal/sssp"
	"repro/internal/workload"
)

func exactDistances(g *graph.Graph, s graph.V) []graph.Dist {
	return sssp.Dijkstra(g, []graph.V{s}, sssp.Options{}).Dist
}

// spannerAlgo abstracts one Figure 1 contender.
type spannerAlgo struct {
	name    string
	promise string
	run     func(g *graph.Graph, k int, seed uint64, cost *par.Cost) *spanner.Result
	// smallOnly limits the algorithm to modest inputs (the greedy
	// baseline's work is O(m·n)-flavored, exactly as Figure 1 lists).
	smallOnly bool
}

func spannerContenders() []spannerAlgo {
	return []spannerAlgo{
		{
			name:    "est-spanner (ours)",
			promise: "O(k)",
			run: func(g *graph.Graph, k int, seed uint64, cost *par.Cost) *spanner.Result {
				if g.Weighted() {
					return spanner.Weighted(g, k, seed, cost)
				}
				return spanner.Unweighted(g, k, seed, cost)
			},
		},
		{
			name:    "baswana-sen [BS07]",
			promise: "2k-1",
			run:     spanner.BaswanaSen,
		},
		{
			name:    "greedy [ADD+93]",
			promise: "2k-1",
			run: func(g *graph.Graph, k int, seed uint64, cost *par.Cost) *spanner.Result {
				return spanner.Greedy(g, k, cost)
			},
			smallOnly: true,
		},
	}
}

func runSpannerRows(specs []workload.Spec, ks []int, seed uint64, stretchSamples int) []SpannerRow {
	var rows []SpannerRow
	for _, spec := range specs {
		g := spec.Gen()
		small := g.NumEdges() <= 6000
		for _, k := range ks {
			for ai, algo := range spannerContenders() {
				if algo.smallOnly && !small {
					continue
				}
				cost := par.NewCost()
				res := algo.run(g, k, seed+uint64(ai)*101+uint64(k), cost)
				st := eval.SpannerStretch(g, res.EdgeIDs, stretchSamples, seed+7)
				rows = append(rows, SpannerRow{
					Workload:   spec.Name,
					Algo:       algo.name,
					K:          k,
					N:          int64(g.NumVertices()),
					M:          g.NumEdges(),
					Size:       int64(res.Size()),
					Work:       cost.Work(),
					Depth:      cost.Depth(),
					StretchMax: st.Max,
					StretchAvg: st.Mean,
					Promise:    algo.promise,
				})
			}
		}
	}
	return rows
}

// Figure1Unweighted reproduces the unweighted table of Figure 1:
// size/work/depth/stretch of the contenders across unweighted
// workloads and k.
func Figure1Unweighted(scale Scale, seed uint64) []SpannerRow {
	nER := int32(scale.pick(1024, 8192))
	specs := []workload.Spec{
		workload.ER(nER, 8, seed),
		workload.RMATSpec(scale.pick(9, 13), 8, seed+1),
		workload.Grid(int32(scale.pick(24, 90))),
	}
	ks := []int{2, 4, 8}
	return runSpannerRows(specs, ks, seed, scale.pick(150, 400))
}

// Figure1Weighted reproduces the weighted table of Figure 1 across
// weight ranges U (the depth term O(k log* n log U)).
func Figure1Weighted(scale Scale, seed uint64) []SpannerRow {
	base := workload.ER(int32(scale.pick(1024, 8192)), 8, seed)
	var specs []workload.Spec
	for _, U := range []graph.W{1 << 4, 1 << 8, 1 << 12} {
		specs = append(specs, workload.WithUniformWeights(base, U, seed+uint64(U)))
	}
	specs = append(specs, workload.WithExponentialWeights(base, 2, 12, seed+99))
	ks := []int{2, 4}
	return runSpannerRows(specs, ks, seed, scale.pick(150, 400))
}

// RenderSpannerRows formats Figure 1 rows as a paper-style table.
func RenderSpannerRows(title string, rows []SpannerRow) *eval.Table {
	t := eval.NewTable(title,
		"workload", "k", "algorithm", "promise", "size", "work", "depth", "stretch max", "stretch avg")
	for _, r := range rows {
		t.Add(r.Workload, fmt.Sprint(r.K), r.Algo, r.Promise,
			fmt.Sprint(r.Size), fmt.Sprint(r.Work), fmt.Sprint(r.Depth),
			eval.FormatFloat(r.StretchMax), eval.FormatFloat(r.StretchAvg))
	}
	return t
}

// Theorem11Scaling validates the Theorem 1.1 size law O(n^{1+1/k}) (an
// O(log k) factor higher for weighted graphs): the Size/Bound ratio
// column should stay flat as n grows.
func Theorem11Scaling(scale Scale, seed uint64) []ScalingRow {
	var rows []ScalingRow
	ns := []int32{1 << 10, 1 << 11, 1 << 12}
	if scale == Full {
		ns = append(ns, 1<<13, 1<<14)
	}
	for _, weighted := range []bool{false, true} {
		for _, k := range []int{2, 3} {
			for _, n := range ns {
				g := workload.ER(n, 8, seed+uint64(n)).Gen()
				label := "unweighted"
				if weighted {
					g = graph.ExponentialWeights(g, 2, 10, seed+3)
					label = "weighted"
				}
				cost := par.NewCost()
				var size int
				if weighted {
					size = spanner.Weighted(g, k, seed+5, cost).Size()
				} else {
					size = spanner.Unweighted(g, k, seed+5, cost).Size()
				}
				bound := math.Pow(float64(n), 1+1/float64(k))
				if weighted {
					bound *= math.Max(1, math.Log2(float64(k)))
				}
				rows = append(rows, ScalingRow{
					Label: fmt.Sprintf("%s k=%d", label, k),
					N:     int64(n),
					M:     g.NumEdges(),
					K:     k,
					Size:  int64(size),
					Bound: bound,
					Ratio: float64(size) / bound,
					Work:  cost.Work(),
					Depth: cost.Depth(),
				})
			}
		}
	}
	return rows
}

// Theorem33Contraction measures the weighted spanner's per-k size
// growth (the log k column of Theorem 3.3) at fixed n.
func Theorem33Contraction(scale Scale, seed uint64) []ScalingRow {
	n := int32(scale.pick(2048, 8192))
	g := graph.ExponentialWeights(workload.ER(n, 8, seed).Gen(), 2, 14, seed+1)
	var rows []ScalingRow
	for _, k := range []int{2, 3, 4, 6, 8} {
		cost := par.NewCost()
		res := spanner.Weighted(g, k, seed+uint64(k), cost)
		bound := math.Pow(float64(n), 1+1/float64(k)) * math.Max(1, math.Log2(float64(k)))
		rows = append(rows, ScalingRow{
			Label:   fmt.Sprintf("weighted k=%d", k),
			N:       int64(n),
			M:       g.NumEdges(),
			K:       k,
			Size:    int64(res.Size()),
			Bound:   bound,
			Ratio:   float64(res.Size()) / bound,
			Work:    cost.Work(),
			Depth:   cost.Depth(),
			Extra:   float64(res.Levels),
			Extraux: "groups",
		})
	}
	return rows
}

// RenderScalingRows formats scaling rows.
func RenderScalingRows(title string, rows []ScalingRow) *eval.Table {
	extraux := "extra"
	for _, r := range rows {
		if r.Extraux != "" {
			extraux = r.Extraux
		}
	}
	t := eval.NewTable(title,
		"config", "n", "m", "size", "bound", "size/bound", "work", "depth", extraux)
	for _, r := range rows {
		t.Add(r.Label, fmt.Sprint(r.N), fmt.Sprint(r.M), fmt.Sprint(r.Size),
			eval.FormatFloat(r.Bound), eval.FormatFloat(r.Ratio),
			fmt.Sprint(r.Work), fmt.Sprint(r.Depth), eval.FormatFloat(r.Extra))
	}
	return t
}
