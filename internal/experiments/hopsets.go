package experiments

import (
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/workload"
)

// hopsetAlgo abstracts one Figure 2 contender.
type hopsetAlgo struct {
	name string
	run  func(g *graph.Graph, seed uint64, cost *par.Cost) *hopset.Result
}

func hopsetContenders() []hopsetAlgo {
	return []hopsetAlgo{
		{
			name: "est-hopset (ours)",
			run: func(g *graph.Graph, seed uint64, cost *par.Cost) *hopset.Result {
				return hopset.Build(g, hopset.DefaultParams(seed), cost)
			},
		},
		{
			name: "ks97 sqrt(n) [KS97]",
			run:  hopset.KS97,
		},
		{
			name: "cohen-style [Coh00]",
			run: func(g *graph.Graph, seed uint64, cost *par.Cost) *hopset.Result {
				return hopset.CohenStyle(g, 2, seed, cost)
			},
		},
	}
}

// Figure2 reproduces the hopset comparison of Figure 2: size,
// construction work/depth, and measured hop counts of
// (1+ε)-approximate paths across workloads.
func Figure2(scale Scale, seed uint64) []HopsetRow {
	specs := []workload.Spec{
		workload.ER(int32(scale.pick(1024, 4096)), 4, seed),
		workload.Grid(int32(scale.pick(24, 56))),
		workload.Hyper(scale.pick(10, 12)),
	}
	pairsPerGraph := scale.pick(4, 10)
	var rows []HopsetRow
	for _, spec := range specs {
		g := spec.Gen()
		pairs := connectedPairs(g, pairsPerGraph, 4, seed+3)
		for ai, algo := range hopsetContenders() {
			cost := par.NewCost()
			res := algo.run(g, seed+uint64(ai)*977, cost)
			hops := eval.HopsetHops(g, res.Edges, pairs, 0.5)
			rows = append(rows, HopsetRow{
				Workload:  spec.Name,
				Algo:      algo.name,
				N:         int64(g.NumVertices()),
				M:         g.NumEdges(),
				Size:      int64(res.Size()),
				BuildWork: cost.Work(),
				BuildDep:  cost.Depth(),
				HopsMean:  hops.Mean,
				HopsMax:   hops.Max,
				HopsP50:   hops.P50,
				Pairs:     hops.Samples,
			})
		}
		// Baseline row: the graph itself (no hopset) — hop counts are
		// the raw shortest-path hop lengths.
		raw := eval.HopsetHops(g, nil, pairs, 0.5)
		rows = append(rows, HopsetRow{
			Workload: spec.Name,
			Algo:     "no hopset",
			N:        int64(g.NumVertices()),
			M:        g.NumEdges(),
			HopsMean: raw.Mean,
			HopsMax:  raw.Max,
			HopsP50:  raw.P50,
			Pairs:    raw.Samples,
		})
	}
	return rows
}

// RenderHopsetRows formats Figure 2 rows.
func RenderHopsetRows(title string, rows []HopsetRow) *eval.Table {
	t := eval.NewTable(title,
		"workload", "algorithm", "size", "build work", "build depth",
		"hops mean", "hops p50", "hops max", "pairs")
	for _, r := range rows {
		t.Add(r.Workload, r.Algo, fmt.Sprint(r.Size),
			fmt.Sprint(r.BuildWork), fmt.Sprint(r.BuildDep),
			eval.FormatFloat(r.HopsMean), eval.FormatFloat(r.HopsP50),
			eval.FormatFloat(r.HopsMax), fmt.Sprint(r.Pairs))
	}
	return t
}

// Theorem44Scaling validates the unweighted hopset's Theorem 4.4
// claims across γ2: size stays O(n) while the measured hop count
// tracks the h = n^{1+1/δ+γ1(1−1/δ)−γ2} trend (larger γ2 → coarser top
// clusters → fewer hops), and construction depth grows like n^{γ2}.
func Theorem44Scaling(scale Scale, seed uint64) []ScalingRow {
	side := int32(scale.pick(28, 48))
	g := workload.Grid(side).Gen()
	n := int(g.NumVertices())
	pairs := connectedPairs(g, scale.pick(4, 8), graph.Dist(side), seed+1)
	var rows []ScalingRow
	for _, gamma2 := range []float64{0.3, 0.5, 0.7} {
		p := hopset.DefaultParams(seed + uint64(gamma2*100))
		p.Gamma2 = gamma2
		cost := par.NewCost()
		res := hopset.Build(g, p, cost)
		hops := eval.HopsetHops(g, res.Edges, pairs, 0.5)
		sizeBound := float64(n) + float64(n)/float64(p.NFinal(n))*p.Rho(n)*p.Rho(n)
		rows = append(rows, ScalingRow{
			Label:   fmt.Sprintf("gamma2=%.1f", gamma2),
			N:       int64(n),
			M:       g.NumEdges(),
			Size:    int64(res.Size()),
			Bound:   sizeBound,
			Ratio:   float64(res.Size()) / sizeBound,
			Work:    cost.Work(),
			Depth:   cost.Depth(),
			Extra:   hops.Mean,
			Extraux: "hops mean",
		})
	}
	return rows
}

// AppendixCLimited compares hop counts before/after the Appendix C
// iterated limited hopset at two α values.
func AppendixCLimited(scale Scale, seed uint64) []ScalingRow {
	side := int32(scale.pick(16, 26))
	g := graph.UniformWeights(workload.Grid(side).Gen(), 8, seed)
	pairs := connectedPairs(g, scale.pick(3, 6), graph.Dist(side), seed+1)
	raw := eval.HopsetHops(g, nil, pairs, 0.5)
	rows := []ScalingRow{{
		Label:   "no hopset",
		N:       int64(g.NumVertices()),
		M:       g.NumEdges(),
		Extra:   raw.Mean,
		Extraux: "hops mean",
	}}
	for _, alpha := range []float64{0.4, 0.8} {
		cost := par.NewCost()
		res := hopset.Limited(g, alpha, 0.4, seed+uint64(alpha*10), cost)
		hops := eval.HopsetHops(g, res.Edges, pairs, 0.5)
		target := math.Pow(float64(g.NumVertices()), alpha)
		rows = append(rows, ScalingRow{
			Label:   fmt.Sprintf("limited alpha=%.1f", alpha),
			N:       int64(g.NumVertices()),
			M:       g.NumEdges(),
			Size:    int64(res.Size()),
			Bound:   target,
			Ratio:   hops.Mean / target,
			Work:    cost.Work(),
			Depth:   cost.Depth(),
			Extra:   hops.Mean,
			Extraux: "hops mean",
		})
	}
	return rows
}
