package experiments

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/sssp"
	"repro/internal/workload"
	"repro/internal/wscale"
)

// Theorem12Pipeline runs the end-to-end comparison behind Theorem 1.2
// / Corollaries 4.5 and 5.4: (1+ε)-approximate s-t distances through
// the multi-scale hopset versus exact searches, reporting query depth
// (levels) and realized distortion. The headline shape: hopset query
// levels ≪ plain weighted-BFS levels (= distance) on high-weighted-
// diameter graphs, at a few percent distortion.
func Theorem12Pipeline(scale Scale, seed uint64) []PipelineRow {
	side := int32(scale.pick(28, 45))
	specs := []workload.Spec{
		workload.WithUniformWeights(workload.Grid(side), 1000, seed),
		workload.WithUniformWeights(workload.ER(int32(scale.pick(768, 2048)), 3, seed+1), 5000, seed+2),
	}
	queries := scale.pick(5, 12)
	var rows []PipelineRow
	for _, spec := range specs {
		g := spec.Gen()
		pairs := connectedPairs(g, queries, 16, seed+3)

		// Method 1: the paper's pipeline.
		wp := hopset.DefaultWeightedParams(seed + 4)
		wp.Gamma2 = 0.7
		prep := par.NewCost()
		s := hopset.BuildScaled(g, wp, prep)
		row := PipelineRow{
			Workload: spec.Name, Method: "est-hopset query (ours)",
			N: int64(g.NumVertices()), M: g.NumEdges(),
			PrepWork: prep.Work(), PrepDepth: prep.Depth(),
		}
		var levels, dist []float64
		worst := 1.0
		for _, p := range pairs {
			exact := s.ExactDistance(p[0], p[1])
			q := s.Query(p[0], p[1], nil)
			if q.Fallback {
				row.Fallbacks++
			}
			levels = append(levels, float64(q.Levels))
			ratio := float64(q.Dist) / float64(exact)
			dist = append(dist, ratio)
			if ratio > worst {
				worst = ratio
			}
		}
		row.QueryLevels = eval.Mean(levels)
		row.Distortion = eval.Mean(dist)
		row.WorstDist = worst
		row.Queries = len(pairs)
		rows = append(rows, row)

		// Method 2: plain weighted parallel BFS — depth equals the
		// distance range swept (what the rounding exists to shrink).
		var plainLevels []float64
		for _, p := range pairs {
			c := par.NewCost()
			res := sssp.Dial(g, []graph.V{p[0]}, sssp.Options{Cost: c, MaxDist: 0})
			_ = res
			plainLevels = append(plainLevels, float64(c.Depth()))
		}
		rows = append(rows, PipelineRow{
			Workload: spec.Name, Method: "weighted parallel BFS",
			N: int64(g.NumVertices()), M: g.NumEdges(),
			QueryLevels: eval.Mean(plainLevels), Distortion: 1, WorstDist: 1,
			Queries: len(pairs),
		})

		// Method 3: sequential Dijkstra — depth is its work.
		var seqDepth []float64
		for _, p := range pairs {
			c := par.NewCost()
			sssp.Dijkstra(g, []graph.V{p[0]}, sssp.Options{Cost: c})
			seqDepth = append(seqDepth, float64(c.Depth()))
		}
		rows = append(rows, PipelineRow{
			Workload: spec.Name, Method: "dijkstra (sequential)",
			N: int64(g.NumVertices()), M: g.NumEdges(),
			QueryLevels: eval.Mean(seqDepth), Distortion: 1, WorstDist: 1,
			Queries: len(pairs),
		})
	}
	return rows
}

// Corollary45Unweighted is the unweighted end-to-end comparison: on a
// long unweighted graph, hop-limited queries through the hopset need
// far fewer Bellman–Ford rounds than the graph's hop diameter.
func Corollary45Unweighted(scale Scale, seed uint64) []PipelineRow {
	side := int32(scale.pick(32, 64))
	g := workload.Grid(side).Gen()
	pairs := connectedPairs(g, scale.pick(4, 8), graph.Dist(side), seed+1)
	p := hopset.DefaultParams(seed)
	p.Gamma2 = 0.6
	prep := par.NewCost()
	res := hopset.Build(g, p, prep)
	hops := eval.HopsetHops(g, res.Edges, pairs, 0.5)
	raw := eval.HopsetHops(g, nil, pairs, 0.5)
	return []PipelineRow{
		{
			Workload: fmt.Sprintf("grid-%dx%d", side, side), Method: "est-hopset (ours)",
			N: int64(g.NumVertices()), M: g.NumEdges(),
			PrepWork: prep.Work(), PrepDepth: prep.Depth(),
			QueryLevels: hops.Mean, Distortion: 1.5, WorstDist: 1.5,
			Queries: hops.Samples,
		},
		{
			Workload: fmt.Sprintf("grid-%dx%d", side, side), Method: "plain BFS hops",
			N: int64(g.NumVertices()), M: g.NumEdges(),
			QueryLevels: raw.Mean, Distortion: 1, WorstDist: 1,
			Queries: raw.Samples,
		},
	}
}

// AppendixBDecomposition exercises the weight-class decomposition on a
// many-scale instance and reports the Lemma 5.1 quantities.
func AppendixBDecomposition(scale Scale, seed uint64) []StatRow {
	g := graph.ExponentialWeights(
		workload.ER(int32(scale.pick(256, 1024)), 4, seed).Gen(), 10, 15, seed+1)
	eps := 0.5
	cost := par.NewCost()
	d := wscale.Build(g, eps, cost)
	n := float64(g.NumVertices())
	ratioBound := (n / eps) * (n / eps) * (n / eps)
	rows := []StatRow{
		{
			Label:    "max instance weight ratio",
			Observed: d.MaxInstanceRatio(),
			Bound:    ratioBound,
			OK:       d.MaxInstanceRatio() <= ratioBound,
			Detail:   fmt.Sprintf("input ratio %.3g, %d categories", g.WeightRatio(), len(d.Cats)),
		},
		{
			Label:    "total instance edges",
			Observed: float64(d.TotalInstanceEdges()),
			Bound:    float64(3 * g.NumEdges()),
			OK:       d.TotalInstanceEdges() <= 3*g.NumEdges(),
			Detail:   fmt.Sprintf("m=%d", g.NumEdges()),
		},
	}
	// Query soundness sample.
	r := connectedPairsRNGSample(g, scale.pick(20, 60), seed+2)
	okCnt, total := 0, 0
	worstLow := 1.0
	for _, p := range r {
		truth := exactDistances(g, p[0])[p[1]]
		got := d.Query(p[0], p[1], nil)
		total++
		ratio := float64(got) / float64(truth)
		if ratio <= 1+1e-9 && ratio >= 1-eps-1e-9 {
			okCnt++
		}
		if ratio < worstLow {
			worstLow = ratio
		}
	}
	rows = append(rows, StatRow{
		Label:    "queries within [(1-eps)d, d]",
		Observed: float64(okCnt),
		Bound:    float64(total),
		OK:       okCnt == total,
		Detail:   fmt.Sprintf("worst low ratio %.3f", worstLow),
	})
	return rows
}

// connectedPairsRNGSample is connectedPairs without the min-distance
// filter (Appendix B wants arbitrary pairs).
func connectedPairsRNGSample(g *graph.Graph, count int, seed uint64) [][2]graph.V {
	return connectedPairs(g, count, 1, seed)
}

// RenderPipelineRows formats pipeline rows.
func RenderPipelineRows(title string, rows []PipelineRow) *eval.Table {
	t := eval.NewTable(title,
		"workload", "method", "prep work", "prep depth",
		"query levels", "distortion avg", "distortion max", "queries", "fallbacks")
	for _, r := range rows {
		t.Add(r.Workload, r.Method, fmt.Sprint(r.PrepWork), fmt.Sprint(r.PrepDepth),
			eval.FormatFloat(r.QueryLevels), eval.FormatFloat(r.Distortion),
			eval.FormatFloat(r.WorstDist), fmt.Sprint(r.Queries), fmt.Sprint(r.Fallbacks))
	}
	return t
}
