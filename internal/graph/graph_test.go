package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/par"
	"repro/internal/rng"
)

func mustValidate(t *testing.T, g *Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
}

func TestFromEdgesBasic(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 5}, {1, 2, 3}, {2, 3, 7}, {0, 3, 2}}, true)
	mustValidate(t, g)
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	if g.MinWeight() != 2 || g.MaxWeight() != 7 {
		t.Fatalf("weight range [%d,%d], want [2,7]", g.MinWeight(), g.MaxWeight())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 2 || g.Degree(2) != 2 || g.Degree(3) != 2 {
		t.Fatal("cycle degrees wrong")
	}
	// Adjacency of 0 must be {1, 3} with weights {5, 2}.
	adj := g.Neighbors(0)
	wts := g.AdjWeights(0)
	got := map[V]W{}
	for i, u := range adj {
		got[u] = wts[i]
	}
	if got[1] != 5 || got[3] != 2 || len(got) != 2 {
		t.Fatalf("adjacency of 0: %v", got)
	}
}

func TestFromEdgesUnweighted(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 99}, {1, 2, 0}}, false)
	mustValidate(t, g)
	if g.Weighted() {
		t.Fatal("should be unweighted")
	}
	for i := range g.Edges() {
		if g.EdgeWeight(int32(i)) != 1 {
			t.Fatalf("unweighted edge %d has weight %d", i, g.EdgeWeight(int32(i)))
		}
	}
	if g.AdjWeights(0) != nil {
		t.Fatal("unweighted graph should have nil AdjWeights")
	}
	if g.WeightRatio() != 1 {
		t.Fatalf("weight ratio %v, want 1", g.WeightRatio())
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g := FromEdges(5, nil, true)
	mustValidate(t, g)
	if g.NumEdges() != 0 {
		t.Fatal("expected no edges")
	}
	if g.MinWeight() != 1 || g.MaxWeight() != 1 {
		t.Fatal("empty graph weight range should be [1,1]")
	}
	g0 := FromEdges(0, nil, false)
	mustValidate(t, g0)
}

func TestFromEdgesPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"self-loop", func() { FromEdges(2, []Edge{{1, 1, 1}}, false) }},
		{"out-of-range", func() { FromEdges(2, []Edge{{0, 2, 1}}, false) }},
		{"negative-vertex", func() { FromEdges(2, []Edge{{-1, 0, 1}}, false) }},
		{"zero-weight", func() { FromEdges(2, []Edge{{0, 1, 0}}, true) }},
		{"negative-n", func() { FromEdges(-1, nil, false) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

func TestSimplify(t *testing.T) {
	in := []Edge{
		{1, 0, 5}, {0, 1, 3}, {0, 1, 9}, // parallels; keep weight 3
		{2, 2, 1}, // self loop; dropped
		{3, 2, 4},
	}
	out := Simplify(in)
	if len(out) != 2 {
		t.Fatalf("Simplify kept %d edges, want 2: %v", len(out), out)
	}
	if out[0] != (Edge{0, 1, 3}) {
		t.Fatalf("first edge %v, want {0 1 3}", out[0])
	}
	if out[1] != (Edge{2, 3, 4}) {
		t.Fatalf("second edge %v, want {2 3 4}", out[1])
	}
}

func TestEdgeIDsConsistent(t *testing.T) {
	g := RandomConnectedGNM(200, 800, 7)
	mustValidate(t, g)
	// Walking the CSR and looking up eids must reproduce endpoints.
	for v := V(0); v < g.NumVertices(); v++ {
		ids := g.AdjEdgeIDs(v)
		for i, u := range g.Neighbors(v) {
			e := g.Edges()[ids[i]]
			if !((e.U == v && e.V == u) || (e.U == u && e.V == v)) {
				t.Fatalf("edge id mismatch at %d->%d", v, u)
			}
		}
	}
}

func TestSubgraphFromEdgeIDs(t *testing.T) {
	g := RandomConnectedGNM(50, 120, 3)
	ids := []int32{0, 5, 10, 11}
	h := g.SubgraphFromEdgeIDs(ids)
	mustValidate(t, h)
	if h.NumVertices() != g.NumVertices() {
		t.Fatal("subgraph must keep vertex set")
	}
	if h.NumEdges() != int64(len(ids)) {
		t.Fatalf("subgraph edges %d, want %d", h.NumEdges(), len(ids))
	}
	for i, id := range ids {
		want := g.Edges()[id]
		got := h.Edges()[i]
		if got.U != want.U || got.V != want.V {
			t.Fatalf("edge %d: got %v want %v", i, got, want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	//  0-1-2-3 path plus chord 0-2
	g := FromEdges(4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {0, 2, 4}}, true)
	sub, origOf := g.InducedSubgraph([]V{0, 2, 3})
	mustValidate(t, sub)
	if sub.NumVertices() != 3 {
		t.Fatalf("induced n = %d", sub.NumVertices())
	}
	// Edges inside {0,2,3}: (2,3,3) and (0,2,4).
	if sub.NumEdges() != 2 {
		t.Fatalf("induced m = %d, want 2", sub.NumEdges())
	}
	if origOf[0] != 0 || origOf[1] != 2 || origOf[2] != 3 {
		t.Fatalf("origOf = %v", origOf)
	}
	var totalW W
	for _, e := range sub.Edges() {
		totalW += e.W
	}
	if totalW != 7 {
		t.Fatalf("induced total weight %d, want 7", totalW)
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	g := Path(4)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate vertex did not panic")
		}
	}()
	g.InducedSubgraph([]V{0, 0})
}

func TestContractBasic(t *testing.T) {
	// Square 0-1-2-3-0 with a diagonal 1-3. Contract {0,1} and {2,3}.
	g := FromEdges(4, []Edge{
		{0, 1, 1}, {1, 2, 5}, {2, 3, 1}, {3, 0, 2}, {1, 3, 4},
	}, true)
	label := []V{0, 0, 1, 1}
	q := g.Contract(label, 2)
	mustValidate(t, q)
	if q.NumVertices() != 2 {
		t.Fatalf("quotient n = %d", q.NumVertices())
	}
	// Cross edges: (1,2,5), (3,0,2), (1,3,4) -> parallel; min weight 2.
	if q.NumEdges() != 1 {
		t.Fatalf("quotient m = %d, want 1", q.NumEdges())
	}
	e := q.Edges()[0]
	if e.W != 2 {
		t.Fatalf("quotient kept weight %d, want min 2", e.W)
	}
	// Back-mapping points at the (3,0,2) edge, id 3 in g.
	if q.OrigEdgeID(0) != 3 {
		t.Fatalf("orig edge id %d, want 3", q.OrigEdgeID(0))
	}
}

func TestContractChainsBackMapping(t *testing.T) {
	// Path 0-1-2-3 with distinct weights; contract twice and check the
	// surviving edge id chains to the original graph.
	g := FromEdges(4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}}, true)
	q1 := g.Contract([]V{0, 0, 1, 2}, 3) // merge {0,1}
	mustValidate(t, q1)
	if q1.NumEdges() != 2 {
		t.Fatalf("q1 m = %d, want 2", q1.NumEdges())
	}
	q2 := q1.Contract([]V{0, 0, 1}, 2) // merge {01, 2}
	mustValidate(t, q2)
	if q2.NumEdges() != 1 {
		t.Fatalf("q2 m = %d, want 1", q2.NumEdges())
	}
	// The surviving edge is (2,3) with weight 3, edge id 2 in g.
	if q2.Edges()[0].W != 3 {
		t.Fatalf("q2 weight %d, want 3", q2.Edges()[0].W)
	}
	if q2.OrigEdgeID(0) != 2 {
		t.Fatalf("chained orig id %d, want 2", q2.OrigEdgeID(0))
	}
}

func TestContractAllOneLabel(t *testing.T) {
	g := Complete(5)
	q := g.Contract([]V{0, 0, 0, 0, 0}, 1)
	mustValidate(t, q)
	if q.NumVertices() != 1 || q.NumEdges() != 0 {
		t.Fatalf("contract to point: n=%d m=%d", q.NumVertices(), q.NumEdges())
	}
}

func TestComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := FromEdges(7, []Edge{
		{0, 1, 1}, {1, 2, 1}, {2, 0, 1},
		{3, 4, 1}, {4, 5, 1}, {5, 3, 1},
	}, false)
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("triangle 1 split")
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Fatal("triangle 2 split")
	}
	if comp[0] == comp[3] || comp[0] == comp[6] || comp[3] == comp[6] {
		t.Fatal("components merged")
	}
}

func TestComponentsParallelMatchesSequential(t *testing.T) {
	graphs := []*Graph{
		FromEdges(1, nil, false),
		Path(50),
		Cycle(33),
		Star(40),
		RandomGNM(300, 200, 5), // sparse: many components
		RandomConnectedGNM(200, 400, 6),
		Grid2D(10, 17),
	}
	for gi, g := range graphs {
		seqComp, seqCount := g.Components()
		cost := par.NewCost()
		parComp, parCount := g.ComponentsParallel(cost)
		if seqCount != parCount {
			t.Fatalf("graph %d: counts %d vs %d", gi, seqCount, parCount)
		}
		// Same partition up to relabeling.
		fwd := map[V]V{}
		for v := range seqComp {
			if got, ok := fwd[seqComp[v]]; ok {
				if got != parComp[v] {
					t.Fatalf("graph %d: partition mismatch at vertex %d", gi, v)
				}
			} else {
				fwd[seqComp[v]] = parComp[v]
			}
		}
		if g.NumVertices() > 1 && cost.Work() == 0 {
			t.Fatalf("graph %d: no work recorded", gi)
		}
	}
}

// TestComponentsParallelDepth checks the O(log n) round contract on a
// long path, the worst case for label propagation (which would need
// n rounds) but fine for hook-and-compress.
func TestComponentsParallelDepth(t *testing.T) {
	g := Path(1 << 14)
	cost := par.NewCost()
	_, count := g.ComponentsParallel(cost)
	if count != 1 {
		t.Fatalf("path components = %d", count)
	}
	// Hook-and-compress should settle a 16k path in well under 64
	// depth units (2 per round, ~log n rounds plus slack).
	if d := cost.Depth(); d > 64 {
		t.Fatalf("depth %d on 16k path; want O(log n)", d)
	}
}

// Property: Contract with the identity labeling only simplifies
// parallel edges, never loses connectivity.
func TestContractIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := int32(r.Intn(40) + 2)
		m := int64(r.Intn(80))
		max := int64(n) * int64(n-1) / 2
		if m > max {
			m = max
		}
		g := RandomGNM(n, m, seed)
		id := make([]V, n)
		for i := range id {
			id[i] = V(i)
		}
		q := g.Contract(id, n)
		if q.Validate() != nil {
			return false
		}
		c1, k1 := g.Components()
		c2, k2 := q.Components()
		if k1 != k2 {
			return false
		}
		// Same partition up to relabeling.
		fwd := map[V]V{}
		for v := range c1 {
			if got, ok := fwd[c1[v]]; ok {
				if got != c2[v] {
					return false
				}
			} else {
				fwd[c1[v]] = c2[v]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: contracting components to points yields an edgeless graph.
func TestContractComponentsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := int32(rng.New(seed).Intn(60) + 1)
		m := int64(n)
		if max := int64(n) * int64(n-1) / 2; m > max {
			m = max
		}
		g := RandomGNM(n, m, seed^0x9e37)
		comp, count := g.Components()
		q := g.Contract(comp, count)
		return q.NumEdges() == 0 && q.NumVertices() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
