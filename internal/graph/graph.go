// Package graph provides the graph substrate shared by every algorithm
// in this repository: a compact CSR (compressed sparse row)
// representation of undirected graphs with positive integer weights,
// together with builders, contraction (quotient graphs), connected
// components, synthetic generators, and (de)serialization.
//
// Conventions (used repository-wide):
//
//   - Vertices are V = int32 ids in [0, NumVertices()).
//   - Weights are W = int64 and strictly positive; an unweighted graph
//     stores no weight array and reports weight 1 for every edge, which
//     matches the paper's normalization min w(e) = 1.
//   - Every undirected edge has a canonical edge id in [0, NumEdges())
//     referring to the Edges() list; the CSR arrays carry the edge id
//     alongside each direction so subgraphs (spanners, hopsets) can be
//     described as subsets of edge ids.
//   - Dist is the distance type; InfDist is the "unreached" sentinel
//     and is safely addable to any real edge weight without overflow.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/par"
)

// V is the vertex id type.
type V = int32

// W is the edge weight type. Weights are strictly positive integers.
type W = int64

// Dist is the path-distance type.
type Dist = int64

// InfDist is the "unreachable" distance sentinel. It is chosen so that
// InfDist + maxWeight cannot overflow int64.
const InfDist Dist = math.MaxInt64 / 4

// NoVertex marks the absence of a vertex (e.g. the parent of a root).
const NoVertex V = -1

// NoEdge marks the absence of an edge id.
const NoEdge int32 = -1

// Edge is one undirected edge in a graph's canonical edge list.
type Edge struct {
	U, V V
	W    W
}

// Graph is an immutable undirected graph in CSR form.
type Graph struct {
	n    int32
	offs []int64 // len n+1; offs[v]..offs[v+1] index the CSR arrays
	dst  []V     // len 2m; neighbor
	wts  []W     // len 2m or nil for unweighted
	eids []int32 // len 2m; canonical edge id of this direction

	edges []Edge // canonical undirected edge list, len m

	weighted   bool
	minW, maxW W

	// origEID maps this graph's edge ids to the edge ids of the graph
	// it was contracted from. Nil unless produced by Contract.
	origEID []int32

	// fpVal/fpOK cache Fingerprint: the graph is immutable, and the
	// digest walks the whole edge list, so compute it at most once.
	// fpVal is published before fpOK; a racing second computation
	// stores the same digest, so the pair needs no mutex.
	fpVal atomic.Uint64
	fpOK  atomic.Bool
}

// NumVertices returns n.
func (g *Graph) NumVertices() int32 { return g.n }

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int64 { return int64(len(g.edges)) }

// Weighted reports whether the graph carries explicit weights.
func (g *Graph) Weighted() bool { return g.weighted }

// MinWeight returns the smallest edge weight (1 for unweighted or
// empty graphs).
func (g *Graph) MinWeight() W {
	if !g.weighted || len(g.edges) == 0 {
		return 1
	}
	return g.minW
}

// MaxWeight returns the largest edge weight (1 for unweighted or empty
// graphs).
func (g *Graph) MaxWeight() W {
	if !g.weighted || len(g.edges) == 0 {
		return 1
	}
	return g.maxW
}

// WeightRatio returns U = MaxWeight/MinWeight, the quantity the
// paper's weighted spanner depth bound O(k log* n log U) depends on.
func (g *Graph) WeightRatio() float64 {
	return float64(g.MaxWeight()) / float64(g.MinWeight())
}

// Degree returns the number of incident edge endpoints at v.
func (g *Graph) Degree(v V) int32 {
	return int32(g.offs[v+1] - g.offs[v])
}

// Neighbors returns the CSR neighbor slice of v. The caller must not
// modify it.
func (g *Graph) Neighbors(v V) []V {
	return g.dst[g.offs[v]:g.offs[v+1]]
}

// AdjWeights returns the weight slice aligned with Neighbors(v), or
// nil for unweighted graphs.
func (g *Graph) AdjWeights(v V) []W {
	if !g.weighted {
		return nil
	}
	return g.wts[g.offs[v]:g.offs[v+1]]
}

// AdjEdgeIDs returns the canonical edge ids aligned with Neighbors(v).
func (g *Graph) AdjEdgeIDs(v V) []int32 {
	return g.eids[g.offs[v]:g.offs[v+1]]
}

// Edges returns the canonical undirected edge list. The caller must
// not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeWeight returns the weight of canonical edge id e.
func (g *Graph) EdgeWeight(e int32) W {
	if !g.weighted {
		return 1
	}
	return g.edges[e].W
}

// OrigEdgeID maps edge id e of a contracted graph back to the edge id
// in the graph it was contracted from. For graphs not produced by
// Contract it returns e unchanged.
func (g *Graph) OrigEdgeID(e int32) int32 {
	if g.origEID == nil {
		return e
	}
	return g.origEID[e]
}

// HasOrigEdgeIDs reports whether the graph carries a contraction
// back-mapping.
func (g *Graph) HasOrigEdgeIDs() bool { return g.origEID != nil }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() W {
	var s W
	for i := range g.edges {
		if g.weighted {
			s += g.edges[i].W
		} else {
			s++
		}
	}
	return s
}

// FromEdges builds an undirected graph over n vertices from the given
// edge list. Self-loops are rejected; parallel edges are kept as-is
// (use Simplify first if the input may contain them). For unweighted
// graphs pass weighted=false and any W values are ignored (treated as
// 1). Panics on malformed input: this is a programming error, not a
// runtime condition.
func FromEdges(n int32, edges []Edge, weighted bool) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	m := len(edges)
	g := &Graph{
		n:        n,
		weighted: weighted,
		edges:    make([]Edge, m),
		minW:     math.MaxInt64,
		maxW:     0,
	}
	copy(g.edges, edges)
	if !weighted {
		for i := range g.edges {
			g.edges[i].W = 1
		}
	}
	for i := range g.edges {
		e := &g.edges[i]
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			panic(fmt.Sprintf("graph: edge %d endpoint out of range: (%d,%d) with n=%d", i, e.U, e.V, n))
		}
		if e.U == e.V {
			panic(fmt.Sprintf("graph: self-loop at vertex %d (edge %d)", e.U, i))
		}
		if weighted && e.W <= 0 {
			panic(fmt.Sprintf("graph: non-positive weight %d on edge %d", e.W, i))
		}
		if e.W < g.minW {
			g.minW = e.W
		}
		if e.W > g.maxW {
			g.maxW = e.W
		}
	}
	if m == 0 {
		g.minW, g.maxW = 1, 1
	}

	// Degree count, prefix sum, fill: the standard parallel CSR build.
	deg := make([]int32, n+1)
	for i := range g.edges {
		deg[g.edges[i].U]++
		deg[g.edges[i].V]++
	}
	offs := make([]int64, n+1)
	var run int64
	for v := int32(0); v < n; v++ {
		offs[v] = run
		run += int64(deg[v])
	}
	offs[n] = run
	g.offs = offs
	g.dst = make([]V, run)
	g.eids = make([]int32, run)
	if weighted {
		g.wts = make([]W, run)
	}
	cursor := make([]int64, n)
	copy(cursor, offs[:n])
	for i := range g.edges {
		e := &g.edges[i]
		cu := cursor[e.U]
		g.dst[cu] = e.V
		g.eids[cu] = int32(i)
		cv := cursor[e.V]
		g.dst[cv] = e.U
		g.eids[cv] = int32(i)
		if weighted {
			g.wts[cu] = e.W
			g.wts[cv] = e.W
		}
		cursor[e.U]++
		cursor[e.V]++
	}
	return g
}

// FromEdgesOrig is FromEdges plus an explicit contraction
// back-mapping: the returned graph reports orig[e] from OrigEdgeID(e).
// Snapshot decoding uses it to restore quotient graphs produced by
// Contract with their back-references intact. orig may be nil (no
// mapping) or must have one entry per edge.
func FromEdgesOrig(n int32, edges []Edge, weighted bool, orig []int32) *Graph {
	if orig != nil && len(orig) != len(edges) {
		panic(fmt.Sprintf("graph: orig mapping length %d, want %d", len(orig), len(edges)))
	}
	g := FromEdges(n, edges, weighted)
	if orig != nil {
		// Preserve empty-but-present mappings (a quotient graph with no
		// surviving edges still reports HasOrigEdgeIDs).
		g.origEID = make([]int32, len(orig))
		copy(g.origEID, orig)
	}
	return g
}

// Simplify removes self-loops and merges parallel edges keeping the
// minimum weight, which is the quotient-graph convention the paper
// uses ("merging parallel edges by keeping the shortest edge"). The
// returned list is sorted by (min endpoint, max endpoint).
func Simplify(edges []Edge) []Edge {
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		if out[i].V != out[j].V {
			return out[i].V < out[j].V
		}
		return out[i].W < out[j].W
	})
	w := 0
	for i := range out {
		if w > 0 && out[i].U == out[w-1].U && out[i].V == out[w-1].V {
			continue // duplicate; the kept one has the smaller weight
		}
		out[w] = out[i]
		w++
	}
	return out[:w]
}

// Validate checks internal CSR consistency; tests use it to guard the
// builders and transformations. It returns nil for a well-formed graph.
func (g *Graph) Validate() error {
	n := g.n
	if int64(len(g.offs)) != int64(n)+1 {
		return fmt.Errorf("offs length %d, want %d", len(g.offs), n+1)
	}
	if g.offs[0] != 0 {
		return fmt.Errorf("offs[0] = %d", g.offs[0])
	}
	want := int64(2 * len(g.edges))
	if g.offs[n] != want {
		return fmt.Errorf("offs[n] = %d, want 2m = %d", g.offs[n], want)
	}
	if int64(len(g.dst)) != want || int64(len(g.eids)) != want {
		return fmt.Errorf("CSR array lengths %d/%d, want %d", len(g.dst), len(g.eids), want)
	}
	if g.weighted && int64(len(g.wts)) != want {
		return fmt.Errorf("weight array length %d, want %d", len(g.wts), want)
	}
	dirCount := make([]int32, len(g.edges))
	for v := V(0); v < n; v++ {
		if g.offs[v] > g.offs[v+1] {
			return fmt.Errorf("offs not monotone at %d", v)
		}
		adj := g.Neighbors(v)
		ids := g.AdjEdgeIDs(v)
		wts := g.AdjWeights(v)
		for i, u := range adj {
			if u < 0 || u >= n {
				return fmt.Errorf("neighbor %d of %d out of range", u, v)
			}
			if u == v {
				return fmt.Errorf("self-loop in CSR at %d", v)
			}
			e := ids[i]
			if e < 0 || int(e) >= len(g.edges) {
				return fmt.Errorf("edge id %d out of range at vertex %d", e, v)
			}
			ed := g.edges[e]
			if !((ed.U == v && ed.V == u) || (ed.U == u && ed.V == v)) {
				return fmt.Errorf("edge id %d at vertex %d does not match edge list (%d,%d)", e, v, ed.U, ed.V)
			}
			if g.weighted && wts[i] != ed.W {
				return fmt.Errorf("CSR weight %d != edge list weight %d for edge %d", wts[i], ed.W, e)
			}
			dirCount[e]++
		}
	}
	for e, c := range dirCount {
		if c != 2 {
			return fmt.Errorf("edge %d appears in %d directions, want 2", e, c)
		}
	}
	for i := range g.edges {
		if g.weighted && g.edges[i].W <= 0 {
			return fmt.Errorf("edge %d has non-positive weight", i)
		}
	}
	return nil
}

// SubgraphFromEdgeIDs builds a graph on the same vertex set containing
// exactly the given canonical edge ids of g. Spanner evaluation uses
// it to turn an edge-id set into a traversable graph.
func (g *Graph) SubgraphFromEdgeIDs(eids []int32) *Graph {
	sub := make([]Edge, len(eids))
	for i, e := range eids {
		sub[i] = g.edges[e]
	}
	return FromEdges(g.n, sub, g.weighted)
}

// InducedSubgraph builds the subgraph induced on the given vertices.
// It returns the subgraph (with local ids 0..len(vs)-1 in the order of
// vs) and origOf mapping local ids back to g's ids. Vertices must be
// distinct.
func (g *Graph) InducedSubgraph(vs []V) (*Graph, []V) {
	local := make(map[V]V, len(vs))
	origOf := make([]V, len(vs))
	for i, v := range vs {
		if _, dup := local[v]; dup {
			panic(fmt.Sprintf("graph: duplicate vertex %d in InducedSubgraph", v))
		}
		local[v] = V(i)
		origOf[i] = v
	}
	var sub []Edge
	for i := range g.edges {
		e := g.edges[i]
		lu, ok1 := local[e.U]
		lv, ok2 := local[e.V]
		if ok1 && ok2 {
			sub = append(sub, Edge{U: lu, V: lv, W: e.W})
		}
	}
	return FromEdges(V(len(vs)), sub, g.weighted), origOf
}

// Contract builds the quotient graph G/label: vertices with the same
// label merge into one vertex; self-loops vanish; parallel edges merge
// keeping the minimum weight (and that minimum edge's id). label must
// map every vertex of g into [0, k). The result carries OrigEdgeID
// back-references into g, already composed with g's own back-mapping
// so that chains of contractions resolve to the outermost ancestor.
//
// The result is always "weighted" in type even if g is unweighted so
// that contraction chains preserve weights uniformly; for an
// unweighted g all weights are 1.
func (g *Graph) Contract(label []V, k int32) *Graph {
	type cand struct {
		a, b V
		w    W
		eid  int32
	}
	cands := make([]cand, 0, len(g.edges))
	for i := range g.edges {
		e := g.edges[i]
		a, b := label[e.U], label[e.V]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if a < 0 || b >= k {
			panic(fmt.Sprintf("graph: label out of range in Contract: %d/%d with k=%d", a, b, k))
		}
		cands = append(cands, cand{a: a, b: b, w: e.W, eid: int32(i)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].a != cands[j].a {
			return cands[i].a < cands[j].a
		}
		if cands[i].b != cands[j].b {
			return cands[i].b < cands[j].b
		}
		if cands[i].w != cands[j].w {
			return cands[i].w < cands[j].w
		}
		return cands[i].eid < cands[j].eid
	})
	edges := make([]Edge, 0, len(cands))
	orig := make([]int32, 0, len(cands))
	for i := range cands {
		c := cands[i]
		if len(edges) > 0 {
			last := edges[len(edges)-1]
			if last.U == c.a && last.V == c.b {
				continue
			}
		}
		edges = append(edges, Edge{U: c.a, V: c.b, W: c.w})
		orig = append(orig, g.OrigEdgeID(c.eid))
	}
	q := FromEdges(k, edges, true)
	q.origEID = orig
	return q
}

// ---------------------------------------------------------------------------
// Connected components.

// Components labels each vertex with a component id in [0, count) via
// sequential BFS. This is the exact reference implementation used to
// validate ComponentsParallel.
func (g *Graph) Components() (comp []V, count int32) {
	comp = make([]V, g.n)
	for i := range comp {
		comp[i] = NoVertex
	}
	var queue []V
	for s := V(0); s < g.n; s++ {
		if comp[s] != NoVertex {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if comp[u] == NoVertex {
					comp[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return comp, count
}

// ComponentsParallel labels components with a deterministic
// Shiloach–Vishkin style hook-and-compress algorithm: O(log n) rounds
// of hooking tree roots to smaller-labeled neighbors followed by
// pointer jumping. It substitutes for Gazit's randomized parallel
// connectivity used by the paper's Appendix B (same depth contract).
// Work and rounds are recorded in cost (which may be nil).
func (g *Graph) ComponentsParallel(cost *par.Cost) (comp []V, count int32) {
	n := int(g.n)
	p := make([]V, n)
	for i := range p {
		p[i] = V(i)
	}
	if n == 0 {
		return p, 0
	}
	for {
		changed := false
		// Hook phase: every edge tries to hang the larger root under
		// the smaller. Processing edges once per round keeps the
		// round structure of the PRAM algorithm.
		for i := range g.edges {
			u, v := g.edges[i].U, g.edges[i].V
			pu, pv := p[u], p[v]
			if pu == pv {
				continue
			}
			// Hook only roots (p[x] == x) to keep forests shallow.
			if pv < pu && p[pu] == pu {
				p[pu] = pv
				changed = true
			} else if pu < pv && p[pv] == pv {
				p[pv] = pu
				changed = true
			}
		}
		// Shortcut phase: halve every path.
		for i := range p {
			for p[i] != p[p[i]] {
				p[i] = p[p[i]]
			}
		}
		cost.Round(int64(len(g.edges) + n))
		cost.AddDepth(1) // the pointer-jumping sub-round
		if !changed {
			break
		}
	}
	// Relabel roots densely.
	comp = make([]V, n)
	for i := range comp {
		comp[i] = NoVertex
	}
	for i := range p {
		r := p[i]
		if comp[r] == NoVertex {
			comp[r] = count
			count++
		}
	}
	for i := range p {
		comp[i] = comp[p[i]]
	}
	cost.Round(int64(n))
	return comp, count
}
