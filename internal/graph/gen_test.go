package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandomGNM(t *testing.T) {
	g := RandomGNM(100, 300, 1)
	mustValidate(t, g)
	if g.NumVertices() != 100 || g.NumEdges() != 300 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	// No parallel edges by construction.
	seen := map[[2]V]bool{}
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]V{u, v}] {
			t.Fatalf("parallel edge (%d,%d)", u, v)
		}
		seen[[2]V{u, v}] = true
	}
}

func TestRandomGNMDeterministic(t *testing.T) {
	a := RandomGNM(64, 128, 42)
	b := RandomGNM(64, 128, 42)
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := RandomGNM(64, 128, 43)
	diff := false
	for i := range ea {
		if ea[i] != c.Edges()[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomGNMFull(t *testing.T) {
	// m equal to the maximum yields K_n.
	g := RandomGNM(10, 45, 9)
	mustValidate(t, g)
	if g.NumEdges() != 45 {
		t.Fatalf("m = %d, want 45", g.NumEdges())
	}
}

func TestRandomGNMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized m did not panic")
		}
	}()
	RandomGNM(4, 7, 1)
}

func TestRandomConnectedGNM(t *testing.T) {
	g := RandomConnectedGNM(500, 1200, 11)
	mustValidate(t, g)
	if g.NumEdges() != 1200 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	_, count := g.Components()
	if count != 1 {
		t.Fatalf("components = %d, want 1", count)
	}
}

func TestRandomConnectedGNMTreeOnly(t *testing.T) {
	g := RandomConnectedGNM(50, 49, 3)
	mustValidate(t, g)
	_, count := g.Components()
	if count != 1 {
		t.Fatal("spanning tree not connected")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 4000, 0.57, 0.19, 0.19, 5)
	mustValidate(t, g)
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() < 3000 {
		t.Fatalf("RMAT produced only %d edges", g.NumEdges())
	}
	// Degree skew: the max degree should comfortably exceed the mean.
	var maxDeg int32
	for v := V(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if float64(maxDeg) < 3*mean {
		t.Fatalf("RMAT max degree %d not skewed vs mean %.1f", maxDeg, mean)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(5, 7)
	mustValidate(t, g)
	if g.NumVertices() != 35 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Edges: 5*6 horizontal + 4*7 vertical = 58.
	if g.NumEdges() != 58 {
		t.Fatalf("m = %d, want 58", g.NumEdges())
	}
	_, count := g.Components()
	if count != 1 {
		t.Fatal("grid not connected")
	}
	// Corner degree 2, interior degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
	if g.Degree(1*7+1) != 4 {
		t.Fatalf("interior degree %d", g.Degree(1*7+1))
	}
}

func TestTorus2D(t *testing.T) {
	g := Torus2D(4, 5)
	mustValidate(t, g)
	if g.NumVertices() != 20 || g.NumEdges() != 40 {
		t.Fatalf("n=%d m=%d, want 20, 40", g.NumVertices(), g.NumEdges())
	}
	for v := V(0); v < g.NumVertices(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d", v, g.Degree(v))
		}
	}
}

func TestPathCycleStarComplete(t *testing.T) {
	p := Path(10)
	mustValidate(t, p)
	if p.NumEdges() != 9 {
		t.Fatalf("path m = %d", p.NumEdges())
	}
	c := Cycle(10)
	mustValidate(t, c)
	if c.NumEdges() != 10 {
		t.Fatalf("cycle m = %d", c.NumEdges())
	}
	s := Star(10)
	mustValidate(t, s)
	if s.Degree(0) != 9 {
		t.Fatalf("star center degree %d", s.Degree(0))
	}
	k := Complete(6)
	mustValidate(t, k)
	if k.NumEdges() != 15 {
		t.Fatalf("K6 m = %d", k.NumEdges())
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(5)
	mustValidate(t, g)
	if g.NumVertices() != 32 || g.NumEdges() != 80 {
		t.Fatalf("Q5: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for v := V(0); v < g.NumVertices(); v++ {
		if g.Degree(v) != 5 {
			t.Fatalf("hypercube degree %d at %d", g.Degree(v), v)
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(300, 3, 13)
	mustValidate(t, g)
	_, count := g.Components()
	if count != 1 {
		t.Fatal("PA graph not connected")
	}
	// m = C(4,2) + (n - 4)*3.
	want := int64(6 + (300-4)*3)
	if g.NumEdges() != want {
		t.Fatalf("m = %d, want %d", g.NumEdges(), want)
	}
}

func TestUniformWeights(t *testing.T) {
	g := UniformWeights(Grid2D(8, 8), 100, 21)
	mustValidate(t, g)
	if !g.Weighted() {
		t.Fatal("should be weighted")
	}
	for _, e := range g.Edges() {
		if e.W < 1 || e.W > 100 {
			t.Fatalf("weight %d out of [1,100]", e.W)
		}
	}
	if g.MaxWeight() < 50 {
		t.Fatalf("suspiciously low max weight %d", g.MaxWeight())
	}
}

func TestExponentialWeights(t *testing.T) {
	g := ExponentialWeights(RandomConnectedGNM(400, 1200, 2), 10, 6, 22)
	mustValidate(t, g)
	// Weights should span several orders of magnitude.
	ratio := g.WeightRatio()
	if ratio < 1e3 {
		t.Fatalf("weight ratio %v too small for a multi-scale instance", ratio)
	}
	if g.MaxWeight() > W(math.Pow(10, 6))+1 {
		t.Fatalf("max weight %d exceeds base^scales", g.MaxWeight())
	}
}

// Property: every generator output passes Validate.
func TestGeneratorsValidateProperty(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		gs := []*Graph{
			RandomGNM(50, 100, seed),
			RandomConnectedGNM(50, 100, seed),
			RMAT(6, 100, 0.57, 0.19, 0.19, seed),
			PreferentialAttachment(40, 2, seed),
			UniformWeights(Path(30), 16, seed),
			ExponentialWeights(Cycle(30), 4, 4, seed),
		}
		for _, g := range gs {
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
