package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
)

// This file implements two interchange formats for the cmd/ tools:
//
//   - a human-readable text edge-list ("%d %d %d\n" per edge with a
//     one-line header), and
//   - a compact little-endian binary format for large graphs.
//
// Both round-trip exactly (including weightedness), which the tests
// verify property-style.

const (
	textMagic   = "spanhop-graph/v1"
	binaryMagic = uint32(0x53504831) // "SPH1"
)

// WriteText writes g as a text edge list:
//
//	spanhop-graph/v1 <n> <m> <weighted:0|1>
//	u v w        (one line per edge)
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	weighted := 0
	if g.weighted {
		weighted = 1
	}
	if _, err := fmt.Fprintf(bw, "%s %d %d %d\n", textMagic, g.n, len(g.edges), weighted); err != nil {
		return err
	}
	for i := range g.edges {
		e := g.edges[i]
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the WriteText format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 4 || header[0] != textMagic {
		return nil, fmt.Errorf("graph: bad header %q", sc.Text())
	}
	n64, err := strconv.ParseInt(header[1], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("graph: bad n: %v", err)
	}
	m, err := strconv.ParseInt(header[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("graph: bad m: %v", err)
	}
	weighted := header[3] == "1"
	edges := make([]Edge, 0, m)
	for int64(len(edges)) < m {
		if !sc.Scan() {
			return nil, fmt.Errorf("graph: truncated input: %d of %d edges", len(edges), m)
		}
		line := strings.Fields(sc.Text())
		if len(line) != 3 {
			return nil, fmt.Errorf("graph: bad edge line %q", sc.Text())
		}
		u, err1 := strconv.ParseInt(line[0], 10, 32)
		v, err2 := strconv.ParseInt(line[1], 10, 32)
		wt, err3 := strconv.ParseInt(line[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: bad edge line %q", sc.Text())
		}
		edges = append(edges, Edge{U: V(u), V: V(v), W: wt})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := validateEdgeList(V(n64), edges, weighted); err != nil {
		return nil, err
	}
	return FromEdges(V(n64), edges, weighted), nil
}

// maxFileVertices bounds the vertex count a parsed file may declare:
// beyond it the CSR arrays alone exceed laptop memory, so a larger
// header is treated as corrupt rather than honored with a giant
// allocation.
const maxFileVertices = 1 << 26

// validateEdgeList turns the malformed-input panics of FromEdges into
// parser errors: a file is data, not a programming mistake.
func validateEdgeList(n V, edges []Edge, weighted bool) error {
	if n < 0 {
		return fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > maxFileVertices {
		return fmt.Errorf("graph: vertex count %d exceeds the file-format limit %d", n, maxFileVertices)
	}
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("graph: edge %d endpoint out of range (%d,%d), n=%d", i, e.U, e.V, n)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop at %d", i, e.U)
		}
		if weighted && e.W <= 0 {
			return fmt.Errorf("graph: edge %d has non-positive weight %d", i, e.W)
		}
	}
	return nil
}

// WriteBinary writes g in the compact binary format:
// magic, n, m, weighted flag, then m (u, v) int32 pairs, then (if
// weighted) m int64 weights. All little-endian.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []any{
		binaryMagic,
		int32(g.n),
		int64(len(g.edges)),
	}
	var flag uint32
	if g.weighted {
		flag = 1
	}
	hdr = append(hdr, flag)
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for i := range g.edges {
		if err := binary.Write(bw, binary.LittleEndian, [2]int32{g.edges[i].U, g.edges[i].V}); err != nil {
			return err
		}
	}
	if g.weighted {
		for i := range g.edges {
			if err := binary.Write(bw, binary.LittleEndian, g.edges[i].W); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadAuto sniffs the format (binary magic, text header, or DIMACS
// line types) and dispatches to ReadBinary, ReadText, or ReadDIMACS,
// so every tool accepts any interchange format from one flag.
func ReadAuto(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil && len(head) < 4 {
		// Too short for either magic; let the text parser report the
		// canonical error for empty/garbage input.
		return ReadText(br)
	}
	if binary.LittleEndian.Uint32(head) == binaryMagic {
		return ReadBinary(br)
	}
	// DIMACS .gr files open with a comment ("c ...") or the problem
	// line ("p sp ..."); the text format's first byte is the 's' of
	// its magic and the binary magic was ruled out above.
	if len(head) >= 2 && (head[0] == 'c' || head[0] == 'p') && (head[1] == ' ' || head[1] == '\n' || head[1] == '\r' || head[1] == '\t') {
		return ReadDIMACS(br)
	}
	return ReadText(br)
}

// Fingerprint returns a stable 64-bit digest of the graph's logical
// content: vertex count, weightedness, and the canonical edge list
// (endpoints and weights) in order. Two graphs with equal fingerprints
// are CSR-identical for every deterministic algorithm in this
// repository, which is what snapshot loading validates before binding
// a restored oracle to a caller-supplied graph. The digest is cached
// on first use (the graph is immutable).
func (g *Graph) Fingerprint() uint64 {
	if g.fpOK.Load() {
		return g.fpVal.Load()
	}
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(v int32) {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		_, _ = h.Write(buf[:4])
	}
	put64 := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		_, _ = h.Write(buf[:])
	}
	put32(g.n)
	put64(int64(len(g.edges)))
	if g.weighted {
		put32(1)
	} else {
		put32(0)
	}
	for i := range g.edges {
		e := &g.edges[i]
		put32(e.U)
		put32(e.V)
		put64(e.W)
	}
	fp := h.Sum64()
	g.fpVal.Store(fp)
	g.fpOK.Store(true)
	return fp
}

// ReadBinary parses the WriteBinary format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic uint32
	var n int32
	var m int64
	var flag uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad binary magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &flag); err != nil {
		return nil, err
	}
	if m < 0 || n < 0 {
		return nil, fmt.Errorf("graph: negative sizes in header (n=%d, m=%d)", n, m)
	}
	if flag > 1 {
		// Only 0 and 1 are defined; anything else is a corrupt or
		// foreign file, not an unweighted graph to guess at.
		return nil, fmt.Errorf("graph: bad weighted flag %d in header", flag)
	}
	// Grow the edge list incrementally so a forged header cannot
	// force a giant allocation before the (truncated) stream errors.
	cap0 := m
	if cap0 > 1<<16 {
		cap0 = 1 << 16
	}
	edges := make([]Edge, 0, cap0)
	for i := int64(0); i < m; i++ {
		var pair [2]int32
		if err := binary.Read(br, binary.LittleEndian, &pair); err != nil {
			return nil, fmt.Errorf("graph: truncated edges: %v", err)
		}
		edges = append(edges, Edge{U: pair[0], V: pair[1], W: 1})
	}
	if flag == 1 {
		for i := range edges {
			if err := binary.Read(br, binary.LittleEndian, &edges[i].W); err != nil {
				return nil, fmt.Errorf("graph: truncated weights: %v", err)
			}
		}
	}
	if err := validateEdgeList(n, edges, flag == 1); err != nil {
		return nil, err
	}
	return FromEdges(n, edges, flag == 1), nil
}
