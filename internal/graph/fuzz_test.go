package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText hardens the text parser: arbitrary input must never
// panic, and any successfully parsed graph must be valid and must
// round-trip.
func FuzzReadText(f *testing.F) {
	// Seed corpus: valid files, truncations, and junk.
	var good bytes.Buffer
	_ = WriteText(&good, UniformWeights(Grid2D(3, 3), 5, 1))
	f.Add(good.String())
	f.Add("spanhop-graph/v1 3 2 1\n0 1 5\n1 2 7\n")
	f.Add("spanhop-graph/v1 3 2 1\n0 1 5\n")
	f.Add("spanhop-graph/v1 0 0 0\n")
	f.Add("spanhop-graph/v1 -1 0 0\n")
	f.Add("spanhop-graph/v1 2 1 0\n0 0 1\n")  // self loop
	f.Add("spanhop-graph/v1 2 1 1\n0 1 -5\n") // negative weight
	f.Add("spanhop-graph/v1 2 99999999 0\n")  // absurd m
	f.Add("wrong 1 2 3\n")
	f.Add("")
	f.Add("spanhop-graph/v1 2 1 1\n0 1 99999999999999999999\n") // overflow

	f.Fuzz(func(t *testing.T, input string) {
		defer func() {
			// FromEdges panics on malformed edges are programming
			// errors for direct callers, but the parser must reject
			// malformed files with an error, never a panic. Recover
			// and fail loudly if one escapes.
			if r := recover(); r != nil {
				t.Fatalf("ReadText panicked on %q: %v", input, r)
			}
		}()
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzReadBinary does the same for the binary format.
func FuzzReadBinary(f *testing.F) {
	var good bytes.Buffer
	_ = WriteBinary(&good, UniformWeights(Grid2D(3, 3), 5, 1))
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x48, 0x50, 0x53}) // magic only
	f.Add(good.Bytes()[:len(good.Bytes())-3])

	f.Fuzz(func(t *testing.T, input []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadBinary panicked: %v", r)
			}
		}()
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
	})
}
