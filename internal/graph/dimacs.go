package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the 9th DIMACS Implementation Challenge
// shortest-path formats, the lingua franca of road-network
// benchmarks (USA-road-d.*.gr and friends):
//
//	.gr  —  "c ..." comments, one "p sp <n> <m>" problem line,
//	        then m arc lines "a <u> <v> <w>" with 1-indexed
//	        endpoints.
//	.co  —  "c ..." comments, one "p aux sp co <n>" problem line,
//	        then n vertex lines "v <id> <x> <y>".
//
// DIMACS graphs are directed multigraphs; this repository's Graph is
// a simple undirected graph. ReadDIMACS therefore canonicalizes: the
// two arcs of a symmetric pair (u→v, v→u) collapse into one
// undirected edge, and duplicate arcs between the same endpoints keep
// the minimum weight (the shortest-path-relevant one). Self-loop arcs
// are rejected — road files do not contain them, so one is evidence
// of corruption rather than intent.

// ReadDIMACS parses a DIMACS .gr shortest-path file into an
// undirected Graph. Endpoint ids are converted from the format's
// 1-indexed convention to this repository's 0-indexed one. The
// returned graph is always weighted; arcs must carry a positive
// weight. The arc count in the problem line must match the number of
// arc lines exactly (before deduplication).
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var n V
	var m int64
	sawProblem := false
	arcs := int64(0)
	// Dedup map: canonical (min,max) endpoint pair → index into edges.
	seen := make(map[uint64]int)
	var edges []Edge

	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":
			// comment

		case "p":
			if sawProblem {
				return nil, fmt.Errorf("graph: dimacs line %d: second problem line", line)
			}
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("graph: dimacs line %d: bad problem line %q (want \"p sp <n> <m>\")", line, text)
			}
			n64, err1 := strconv.ParseInt(fields[2], 10, 32)
			m64, err2 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || n64 < 0 || m64 < 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad sizes in %q", line, text)
			}
			if n64 > maxFileVertices {
				return nil, fmt.Errorf("graph: dimacs vertex count %d exceeds the file-format limit %d", n64, maxFileVertices)
			}
			n, m = V(n64), m64
			sawProblem = true

		case "a":
			if !sawProblem {
				return nil, fmt.Errorf("graph: dimacs line %d: arc before problem line", line)
			}
			if arcs++; arcs > m {
				return nil, fmt.Errorf("graph: dimacs line %d: more than the declared %d arcs", line, m)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad arc line %q (want \"a <u> <v> <w>\")", line, text)
			}
			u64, err1 := strconv.ParseInt(fields[1], 10, 32)
			v64, err2 := strconv.ParseInt(fields[2], 10, 32)
			w64, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: dimacs line %d: bad arc line %q", line, text)
			}
			// 1-indexed endpoints.
			if u64 < 1 || u64 > int64(n) || v64 < 1 || v64 > int64(n) {
				return nil, fmt.Errorf("graph: dimacs line %d: arc endpoint out of range (%d,%d), n=%d", line, u64, v64, n)
			}
			if u64 == v64 {
				return nil, fmt.Errorf("graph: dimacs line %d: self-loop arc at %d", line, u64)
			}
			if w64 <= 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: non-positive arc weight %d", line, w64)
			}
			u, v := V(u64-1), V(v64-1)
			if u > v {
				u, v = v, u
			}
			key := uint64(u)<<32 | uint64(uint32(v))
			if i, dup := seen[key]; dup {
				// Reverse arc of a symmetric pair, or a true duplicate:
				// keep the shortest-path-relevant weight.
				if w64 < edges[i].W {
					edges[i].W = w64
				}
				continue
			}
			seen[key] = len(edges)
			edges = append(edges, Edge{U: u, V: v, W: w64})

		default:
			return nil, fmt.Errorf("graph: dimacs line %d: unknown line type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawProblem {
		return nil, fmt.Errorf("graph: dimacs input has no problem line")
	}
	if arcs != m {
		return nil, fmt.Errorf("graph: dimacs truncated input: %d of %d arcs", arcs, m)
	}
	if err := validateEdgeList(n, edges, true); err != nil {
		return nil, err
	}
	return FromEdges(n, edges, true), nil
}

// WriteDIMACS writes g as a DIMACS .gr file: each undirected edge
// becomes the symmetric arc pair (u→v, v→u), matching how the road
// challenge distributes its (bidirectional) networks. Unweighted
// graphs are written with unit arc weights.
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "c spanhop export\np sp %d %d\n", g.n, 2*int64(len(g.edges))); err != nil {
		return err
	}
	for i := range g.edges {
		e := g.edges[i]
		if _, err := fmt.Fprintf(bw, "a %d %d %d\na %d %d %d\n", e.U+1, e.V+1, e.W, e.V+1, e.U+1, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Coord is one vertex position from a DIMACS .co file. DIMACS road
// files store longitude/latitude in micro-degrees.
type Coord struct {
	X, Y int64
}

// ReadDIMACSCoords parses a DIMACS .co coordinate file and returns
// one Coord per vertex, 0-indexed. Every vertex declared in the
// problem line must receive exactly one coordinate line.
func ReadDIMACSCoords(r io.Reader) ([]Coord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var coords []Coord
	var filled []bool
	sawProblem := false
	lines := 0
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":

		case "p":
			if sawProblem {
				return nil, fmt.Errorf("graph: dimacs co line %d: second problem line", line)
			}
			if len(fields) != 5 || fields[1] != "aux" || fields[2] != "sp" || fields[3] != "co" {
				return nil, fmt.Errorf("graph: dimacs co line %d: bad problem line %q (want \"p aux sp co <n>\")", line, text)
			}
			n64, err := strconv.ParseInt(fields[4], 10, 32)
			if err != nil || n64 < 0 {
				return nil, fmt.Errorf("graph: dimacs co line %d: bad vertex count in %q", line, text)
			}
			if n64 > maxFileVertices {
				return nil, fmt.Errorf("graph: dimacs co vertex count %d exceeds the file-format limit %d", n64, maxFileVertices)
			}
			coords = make([]Coord, n64)
			filled = make([]bool, n64)
			sawProblem = true

		case "v":
			if !sawProblem {
				return nil, fmt.Errorf("graph: dimacs co line %d: vertex before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: dimacs co line %d: bad vertex line %q (want \"v <id> <x> <y>\")", line, text)
			}
			id64, err1 := strconv.ParseInt(fields[1], 10, 32)
			x, err2 := strconv.ParseInt(fields[2], 10, 64)
			y, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: dimacs co line %d: bad vertex line %q", line, text)
			}
			if id64 < 1 || id64 > int64(len(coords)) {
				return nil, fmt.Errorf("graph: dimacs co line %d: vertex id %d out of range, n=%d", line, id64, len(coords))
			}
			if filled[id64-1] {
				return nil, fmt.Errorf("graph: dimacs co line %d: duplicate coordinate for vertex %d", line, id64)
			}
			filled[id64-1] = true
			coords[id64-1] = Coord{X: x, Y: y}
			lines++

		default:
			return nil, fmt.Errorf("graph: dimacs co line %d: unknown line type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawProblem {
		return nil, fmt.Errorf("graph: dimacs co input has no problem line")
	}
	if lines != len(coords) {
		return nil, fmt.Errorf("graph: dimacs co truncated input: %d of %d vertices", lines, len(coords))
	}
	return coords, nil
}
