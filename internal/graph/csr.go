package graph

// CSR export/import for the flat oracle arena (internal/flat): a built
// graph's internal arrays can be handed out for zero-copy
// serialization and adopted back without re-running the FromEdges CSR
// construction. This is what turns a snapshot load into "point slices
// at mapped memory" instead of "rebuild every adjacency structure".

// CSRView is a zero-copy view of a graph's internal arrays plus the
// scalar metadata needed to reconstruct it. The slices alias the
// graph's own storage — callers must treat them as read-only.
type CSRView struct {
	N        int32
	Weighted bool
	// MinW/MaxW are the cached weight extrema (1/1 for unweighted or
	// edgeless graphs, matching FromEdges).
	MinW, MaxW W
	// Edges is the canonical undirected edge list (len m). For
	// unweighted graphs the W fields are the materialized 1s.
	Edges []Edge
	// Offs/Dst/Eids are the CSR arrays (len n+1 / 2m / 2m); Wts is nil
	// for unweighted graphs.
	Offs []int64
	Dst  []V
	Wts  []W
	Eids []int32
	// OrigEID is the contraction back-map (len m), nil when absent.
	OrigEID []int32
}

// CSRView exports g's internal arrays without copying.
func (g *Graph) CSRView() CSRView {
	return CSRView{
		N:        g.n,
		Weighted: g.weighted,
		MinW:     g.minW,
		MaxW:     g.maxW,
		Edges:    g.edges,
		Offs:     g.offs,
		Dst:      g.dst,
		Wts:      g.wts,
		Eids:     g.eids,
		OrigEID:  g.origEID,
	}
}

// FromCSRView adopts the view's slices as a graph without copying or
// validating them. The caller owns correctness: the view must describe
// a graph FromEdges would have produced (internal/flat validates every
// array against the CSR invariants before calling this). The adopted
// slices may alias read-only memory (an mmap'd snapshot arena); the
// graph never mutates them after construction.
func FromCSRView(v CSRView) *Graph {
	return &Graph{
		n:        v.N,
		weighted: v.Weighted,
		minW:     v.MinW,
		maxW:     v.MaxW,
		edges:    v.Edges,
		offs:     v.Offs,
		dst:      v.Dst,
		wts:      v.Wts,
		eids:     v.Eids,
		origEID:  v.OrigEID,
	}
}
