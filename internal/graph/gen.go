package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// This file contains the synthetic workload generators. The paper
// proves worst-case / with-high-probability bounds that hold for every
// input, so the reproduction sweeps structurally different families:
//
//   - RandomGNM: Erdős–Rényi G(n,m); low diameter, uniform degrees.
//   - RMAT: skewed power-law-ish degrees (social-network stand-in).
//   - Grid2D / Torus2D: high diameter, constant degree (road stand-in).
//   - Hypercube: logarithmic diameter, log-degree.
//   - Path / Cycle / Star / Complete: extreme cases for tests.
//   - PreferentialAttachment: heavy-tailed degrees, guaranteed connected.
//
// All generators are deterministic given their seed. Weighted variants
// are produced by attaching weights with UniformWeights or
// ExponentialWeights (multi-scale, exercises the Appendix B machinery).

// RandomGNM returns an Erdős–Rényi style multigraph-free G(n, m): m
// distinct uniformly random edges (no self-loops, no parallels). For
// m close to the maximum possible this degrades gracefully by
// rejection sampling. Panics if m exceeds n*(n-1)/2.
func RandomGNM(n int32, m int64, seed uint64) *Graph {
	maxM := int64(n) * int64(n-1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: RandomGNM m=%d exceeds max %d for n=%d", m, maxM, n))
	}
	r := rng.New(seed)
	seen := make(map[uint64]struct{}, m)
	edges := make([]Edge, 0, m)
	for int64(len(edges)) < m {
		u := r.Int31n(n)
		v := r.Int31n(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{U: u, V: v, W: 1})
	}
	return FromEdges(n, edges, false)
}

// RandomConnectedGNM returns a connected G(n, m)-style graph: a random
// spanning tree (uniform attachment) plus m-(n-1) extra random edges.
// It panics if m < n-1. Most experiments use this so that every s-t
// query has a finite answer.
func RandomConnectedGNM(n int32, m int64, seed uint64) *Graph {
	if int64(n)-1 > m {
		panic(fmt.Sprintf("graph: RandomConnectedGNM needs m >= n-1 (n=%d, m=%d)", n, m))
	}
	maxM := int64(n) * int64(n-1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: RandomConnectedGNM m=%d exceeds max %d", m, maxM))
	}
	r := rng.New(seed)
	seen := make(map[uint64]struct{}, m)
	edges := make([]Edge, 0, m)
	add := func(u, v V) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{U: u, V: v, W: 1})
		return true
	}
	// Random recursive tree: vertex i attaches to a uniform earlier
	// vertex. Randomize ids with a permutation so vertex 0 is not
	// special.
	perm := r.Perm(int(n))
	for i := int32(1); i < n; i++ {
		j := r.Int31n(i)
		add(perm[i], perm[j])
	}
	for int64(len(edges)) < m {
		add(r.Int31n(n), r.Int31n(n))
	}
	return FromEdges(n, edges, false)
}

// RMAT returns a recursive-matrix random graph with 2^scale vertices
// and (approximately) m distinct edges, with partition probabilities
// (a, b, c, d=1-a-b-c). The classic parameters a=0.57, b=c=0.19 give a
// skewed, power-law-like degree distribution. Self-loops and parallel
// edges are rejected, so extremely dense requests may fall slightly
// short; the actual edge count is len(Edges()).
func RMAT(scale int, m int64, a, b, c float64, seed uint64) *Graph {
	if scale < 1 || scale > 30 {
		panic("graph: RMAT scale out of range [1,30]")
	}
	if a <= 0 || b < 0 || c < 0 || a+b+c >= 1 {
		panic("graph: RMAT probabilities invalid")
	}
	n := int32(1) << scale
	r := rng.New(seed)
	seen := make(map[uint64]struct{}, m)
	edges := make([]Edge, 0, m)
	attempts := int64(0)
	maxAttempts := m * 64
	for int64(len(edges)) < m && attempts < maxAttempts {
		attempts++
		var u, v int32
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: no bits set
			case p < a+b:
				v |= 1 << bit
			case p < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			u, v = 0, 0
			continue
		}
		uu, vv := u, v
		if uu > vv {
			uu, vv = vv, uu
		}
		key := uint64(uu)<<32 | uint64(uint32(vv))
		if _, dup := seen[key]; dup {
			u, v = 0, 0
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, Edge{U: uu, V: vv, W: 1})
		u, v = 0, 0
	}
	return FromEdges(n, edges, false)
}

// Grid2D returns the rows x cols grid graph (4-neighborhood). Vertex
// (r, c) has id r*cols + c. Diameter is rows+cols-2: the high-diameter
// regime where hopsets matter most.
func Grid2D(rows, cols int32) *Graph {
	n := rows * cols
	edges := make([]Edge, 0, int64(2*rows)*int64(cols))
	id := func(r, c int32) V { return r*cols + c }
	for r := int32(0); r < rows; r++ {
		for c := int32(0); c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c), W: 1})
			}
		}
	}
	return FromEdges(n, edges, false)
}

// Torus2D returns the rows x cols grid with wraparound edges.
// rows and cols must be at least 3 so no wrap edge is a parallel or
// self edge.
func Torus2D(rows, cols int32) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus2D needs rows, cols >= 3")
	}
	n := rows * cols
	edges := make([]Edge, 0, 2*int64(n))
	id := func(r, c int32) V { return (r%rows)*cols + (c % cols) }
	for r := int32(0); r < rows; r++ {
		for c := int32(0); c < cols; c++ {
			edges = append(edges, Edge{U: id(r, c), V: id(r, c+1), W: 1})
			edges = append(edges, Edge{U: id(r, c), V: id(r+1, c), W: 1})
		}
	}
	return FromEdges(n, edges, false)
}

// Path returns the path graph on n vertices: the maximum-diameter
// extreme case.
func Path(n int32) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := int32(0); i+1 < n; i++ {
		edges = append(edges, Edge{U: i, V: i + 1, W: 1})
	}
	return FromEdges(n, edges, false)
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int32) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	edges := make([]Edge, 0, n)
	for i := int32(0); i < n; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % n, W: 1})
	}
	return FromEdges(n, edges, false)
}

// Star returns the star graph: vertex 0 adjacent to all others.
func Star(n int32) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := int32(1); i < n; i++ {
		edges = append(edges, Edge{U: 0, V: i, W: 1})
	}
	return FromEdges(n, edges, false)
}

// Complete returns K_n. Quadratic size: test-scale only.
func Complete(n int32) *Graph {
	edges := make([]Edge, 0, int64(n)*int64(n-1)/2)
	for i := int32(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j, W: 1})
		}
	}
	return FromEdges(n, edges, false)
}

// Hypercube returns the d-dimensional hypercube (n = 2^d vertices,
// diameter d).
func Hypercube(d int) *Graph {
	if d < 1 || d > 24 {
		panic("graph: Hypercube dimension out of range [1,24]")
	}
	n := int32(1) << d
	edges := make([]Edge, 0, int64(n)*int64(d)/2)
	for v := int32(0); v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if v < u {
				edges = append(edges, Edge{U: v, V: u, W: 1})
			}
		}
	}
	return FromEdges(n, edges, false)
}

// PreferentialAttachment returns a Barabási–Albert style graph: each
// new vertex attaches deg edges to existing vertices chosen
// proportionally to degree. Connected by construction; heavy-tailed
// degree distribution.
func PreferentialAttachment(n int32, deg int, seed uint64) *Graph {
	if deg < 1 {
		panic("graph: PreferentialAttachment needs deg >= 1")
	}
	if int64(n) < int64(deg)+1 {
		panic("graph: PreferentialAttachment needs n > deg")
	}
	r := rng.New(seed)
	// targets holds one entry per edge endpoint, so sampling a uniform
	// element of it is degree-proportional sampling.
	targets := make([]V, 0, 2*int64(n)*int64(deg))
	edges := make([]Edge, 0, int64(n)*int64(deg))
	// Seed clique on deg+1 vertices.
	for i := int32(0); i <= int32(deg); i++ {
		for j := i + 1; j <= int32(deg); j++ {
			edges = append(edges, Edge{U: i, V: j, W: 1})
			targets = append(targets, i, j)
		}
	}
	for v := int32(deg) + 1; v < n; v++ {
		chosen := make(map[V]struct{}, deg)
		for len(chosen) < deg {
			u := targets[r.Intn(len(targets))]
			if u == v {
				continue
			}
			chosen[u] = struct{}{}
		}
		for u := range chosen {
			edges = append(edges, Edge{U: v, V: u, W: 1})
			targets = append(targets, v, u)
		}
	}
	return FromEdges(n, edges, false)
}

// UniformWeights returns a weighted copy of g with i.i.d. uniform
// integer weights in [1, maxW].
func UniformWeights(g *Graph, maxW W, seed uint64) *Graph {
	if maxW < 1 {
		panic("graph: UniformWeights needs maxW >= 1")
	}
	r := rng.New(seed)
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	for i := range edges {
		edges[i].W = 1 + r.Int63n(maxW)
	}
	return FromEdges(g.n, edges, true)
}

// ExponentialWeights returns a weighted copy of g whose weights span
// many scales: w = round(base^(U*scales)) for uniform U in [0,1). This
// produces the large weight-ratio instances that exercise the
// bucketing machinery (weighted spanner groups, Appendix B
// decomposition).
func ExponentialWeights(g *Graph, base float64, scales float64, seed uint64) *Graph {
	if base <= 1 || scales <= 0 {
		panic("graph: ExponentialWeights needs base > 1 and scales > 0")
	}
	r := rng.New(seed)
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	for i := range edges {
		u := r.Float64()
		w := W(math.Pow(base, u*scales))
		if w < 1 {
			w = 1
		}
		edges[i].W = w
	}
	return FromEdges(g.n, edges, true)
}
