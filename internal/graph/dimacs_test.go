package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadDIMACSBasic(t *testing.T) {
	in := `c USA-road-d style fixture
c
p sp 4 6
a 1 2 7
a 2 1 7
a 2 3 5
a 3 2 5
a 1 4 9
a 4 1 9
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("n = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d after symmetric-pair dedup, want 3", g.NumEdges())
	}
	if !g.Weighted() {
		t.Fatal("DIMACS graphs must parse as weighted")
	}
	want := map[[2]V]W{{0, 1}: 7, {1, 2}: 5, {0, 3}: 9}
	for _, e := range g.Edges() {
		w, ok := want[[2]V{e.U, e.V}]
		if !ok || w != e.W {
			t.Fatalf("unexpected edge %+v", e)
		}
	}
}

func TestReadDIMACSDuplicateArcsKeepMinWeight(t *testing.T) {
	in := "p sp 3 4\na 1 2 9\na 2 1 4\na 1 2 6\na 2 3 1\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 (duplicates collapsed)", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.U == 0 && e.V == 1 && e.W != 4 {
			t.Fatalf("duplicate arc kept weight %d, want the minimum 4", e.W)
		}
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "no problem line"},
		{"comment only", "c hello\n", "no problem line"},
		{"bad problem kind", "p max 3 2\na 1 2 1\na 2 3 1\n", "bad problem line"},
		{"problem line too short", "p sp 3\n", "bad problem line"},
		{"problem line junk sizes", "p sp x y\n", "bad sizes"},
		{"negative n", "p sp -3 1\na 1 2 1\n", "bad sizes"},
		{"n over format limit", "p sp 999999999 0\n", "exceeds the file-format limit"},
		{"second problem line", "p sp 2 1\np sp 2 1\na 1 2 1\n", "second problem line"},
		{"arc before problem", "a 1 2 3\np sp 2 1\n", "arc before problem line"},
		{"arc line too short", "p sp 2 1\na 1 2\n", "bad arc line"},
		{"arc line junk", "p sp 2 1\na one two three\n", "bad arc line"},
		{"endpoint zero", "p sp 2 1\na 0 2 5\n", "out of range"},
		{"endpoint over n", "p sp 2 1\na 1 3 5\n", "out of range"},
		{"endpoint negative", "p sp 2 1\na -1 2 5\n", "out of range"},
		{"self loop", "p sp 2 1\na 1 1 5\n", "self-loop"},
		{"zero weight", "p sp 2 1\na 1 2 0\n", "non-positive arc weight"},
		{"negative weight", "p sp 2 1\na 1 2 -7\n", "non-positive arc weight"},
		{"weight overflow", "p sp 2 1\na 1 2 99999999999999999999\n", "bad arc line"},
		{"too few arcs", "p sp 3 5\na 1 2 1\n", "truncated"},
		{"too many arcs", "p sp 3 1\na 1 2 1\na 2 3 1\n", "more than the declared"},
		{"unknown line type", "p sp 2 1\nq 1 2 3\n", "unknown line type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDIMACS(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ReadDIMACS(%q) succeeded, want error containing %q", tc.in, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ReadDIMACS(%q) error %q, want it to contain %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

func TestWriteDIMACSRoundTrip(t *testing.T) {
	orig := UniformWeights(Grid2D(7, 5), 30, 11)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != orig.Fingerprint() {
		t.Fatalf("round trip changed the graph: n=%d→%d m=%d→%d",
			orig.NumVertices(), back.NumVertices(), orig.NumEdges(), back.NumEdges())
	}
}

func TestReadAutoDetectsDIMACS(t *testing.T) {
	orig := UniformWeights(Grid2D(4, 4), 9, 3)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, orig); err != nil {
		t.Fatal(err)
	}
	g, err := ReadAuto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint() != orig.Fingerprint() {
		t.Fatal("ReadAuto(DIMACS) returned a different graph")
	}
	// A problem-line-first file (no leading comment) must also route.
	noComment := strings.TrimPrefix(buf.String(), "c spanhop export\n")
	g2, err := ReadAuto(strings.NewReader(noComment))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != orig.Fingerprint() {
		t.Fatal("ReadAuto(problem-line-first DIMACS) returned a different graph")
	}
}

func TestReadDIMACSCoords(t *testing.T) {
	in := `c coords
p aux sp co 3
v 1 -73992335 40730054
v 3 -74000000 40700000
v 2 -73980000 40760000
`
	coords, err := ReadDIMACSCoords(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(coords) != 3 {
		t.Fatalf("len = %d, want 3", len(coords))
	}
	if coords[0] != (Coord{X: -73992335, Y: 40730054}) {
		t.Fatalf("vertex 1 coord %+v wrong", coords[0])
	}
	if coords[2] != (Coord{X: -74000000, Y: 40700000}) {
		t.Fatalf("vertex 3 coord %+v wrong", coords[2])
	}

	errCases := []struct{ name, in, wantErr string }{
		{"no problem", "v 1 0 0\n", "vertex before problem line"},
		{"bad problem", "p aux sp xx 2\n", "bad problem line"},
		{"duplicate vertex", "p aux sp co 2\nv 1 0 0\nv 1 1 1\n", "duplicate coordinate"},
		{"id out of range", "p aux sp co 2\nv 3 0 0\n", "out of range"},
		{"truncated", "p aux sp co 2\nv 1 0 0\n", "truncated"},
	}
	for _, tc := range errCases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDIMACSCoords(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want %q", err, tc.wantErr)
			}
		})
	}
}

// FuzzReadDIMACS hardens the DIMACS parser the same way
// FuzzReadText hardens the native one: arbitrary input must never
// panic, and any successfully parsed graph must be valid and must
// round-trip through WriteDIMACS.
func FuzzReadDIMACS(f *testing.F) {
	var good bytes.Buffer
	_ = WriteDIMACS(&good, UniformWeights(Grid2D(3, 3), 5, 1))
	f.Add(good.String())
	f.Add("p sp 3 2\na 1 2 5\na 2 3 7\n")
	f.Add("c comment\np sp 2 2\na 1 2 4\na 2 1 4\n")
	f.Add("p sp 3 2\na 1 2 5\n")            // truncated
	f.Add("p sp 2 1\na 1 1 5\n")            // self loop
	f.Add("p sp 2 1\na 0 2 5\n")            // out of range
	f.Add("p sp 2 1\na 1 2 0\n")            // zero weight
	f.Add("p sp 2 99999999\n")              // absurd m
	f.Add("p sp 2 1\na 1 2 99999999999999999999\n") // overflow
	f.Add("p max 2 1\na 1 2 1\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadDIMACS panicked on %q: %v", input, r)
			}
		}()
		g, err := ReadDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		back, err := ReadDIMACS(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Fingerprint() != g.Fingerprint() {
			t.Fatal("round trip changed the graph")
		}
	})
}
