package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

// binaryWrite is the little-endian write shorthand used to hand-craft
// malformed binary files.
func binaryWrite(w io.Writer, v any) error { return binary.Write(w, binary.LittleEndian, v) }

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.Weighted() != b.Weighted() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		FromEdges(0, nil, false),
		FromEdges(3, nil, true),
		UniformWeights(Grid2D(4, 4), 50, 1),
		RandomConnectedGNM(80, 200, 2),
	} {
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("ReadText: %v", err)
		}
		if !graphsEqual(g, back) {
			t.Fatal("text round trip changed the graph")
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		FromEdges(0, nil, false),
		FromEdges(3, nil, true),
		UniformWeights(Grid2D(4, 4), 50, 1),
		RandomConnectedGNM(80, 200, 2),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		if !graphsEqual(g, back) {
			t.Fatal("binary round trip changed the graph")
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong-magic 1 0 0\n",
		"spanhop-graph/v1 2 1 0\n",        // truncated edge list
		"spanhop-graph/v1 2 1 0\n0 1\n",   // short edge line
		"spanhop-graph/v1 2 1 0\nx y z\n", // non-numeric
		"spanhop-graph/v1 x 1 0\n0 1 1\n", // bad n
		"spanhop-graph/v1 2 x 0\n0 1 1\n", // bad m
		"spanhop-graph/v1 2 1\n0 1 1\n",   // short header
	}
	for i, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	var buf bytes.Buffer
	g := Path(10)
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-4])); err == nil {
		t.Error("truncated binary accepted")
	}
}

// Property: arbitrary random weighted graphs survive both round trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, weighted bool) bool {
		g := RandomGNM(30, 60, seed)
		if weighted {
			g = UniformWeights(g, 1000, seed)
		}
		var tb, bb bytes.Buffer
		if WriteText(&tb, g) != nil || WriteBinary(&bb, g) != nil {
			return false
		}
		t1, err1 := ReadText(&tb)
		t2, err2 := ReadBinary(&bb)
		return err1 == nil && err2 == nil && graphsEqual(g, t1) && graphsEqual(g, t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// ReadAuto must sniff both interchange formats and reject junk.
func TestReadAuto(t *testing.T) {
	g := UniformWeights(Grid2D(4, 5), 12, 3)
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, g); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadAuto(&tb)
	if err != nil {
		t.Fatalf("ReadAuto(text): %v", err)
	}
	fromBin, err := ReadAuto(&bb)
	if err != nil {
		t.Fatalf("ReadAuto(binary): %v", err)
	}
	if !graphsEqual(g, fromText) || !graphsEqual(g, fromBin) {
		t.Fatal("ReadAuto changed the graph")
	}
	if _, err := ReadAuto(bytes.NewReader(nil)); err == nil {
		t.Error("ReadAuto accepted empty input")
	}
	if _, err := ReadAuto(bytes.NewReader([]byte("junk\n1 2 3\n"))); err == nil {
		t.Error("ReadAuto accepted junk")
	}
}

// TestRoundTripEdgeCases is the table-driven sweep of the codec's
// corner geometry: empty graphs (weighted and not), a single isolated
// vertex, an isolated MAX-index vertex (n larger than any endpoint —
// the header, not the edge list, must carry n), duplicate parallel
// edges, and a two-vertex weighted edge — through text, binary, and
// the ReadAuto sniffer.
func TestRoundTripEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"empty-unweighted", FromEdges(0, nil, false)},
		{"empty-weighted", FromEdges(0, nil, true)},
		{"single-isolated-vertex", FromEdges(1, nil, false)},
		{"isolated-max-index-vertex", FromEdges(5, []Edge{{U: 0, V: 1, W: 3}}, true)},
		{"isolated-max-index-unweighted", FromEdges(7, []Edge{{U: 2, V: 3}}, false)},
		{"parallel-edges", FromEdges(3, []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 0, W: 5}}, true)},
		{"two-vertex", FromEdges(2, []Edge{{U: 0, V: 1, W: 1 << 40}}, true)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tb, bb bytes.Buffer
			if err := WriteText(&tb, tc.g); err != nil {
				t.Fatalf("WriteText: %v", err)
			}
			if err := WriteBinary(&bb, tc.g); err != nil {
				t.Fatalf("WriteBinary: %v", err)
			}
			for _, rt := range []struct {
				kind string
				g    *Graph
				err  error
			}{
				read("text", func() (*Graph, error) { return ReadText(bytes.NewReader(tb.Bytes())) }),
				read("binary", func() (*Graph, error) { return ReadBinary(bytes.NewReader(bb.Bytes())) }),
				read("auto-text", func() (*Graph, error) { return ReadAuto(bytes.NewReader(tb.Bytes())) }),
				read("auto-binary", func() (*Graph, error) { return ReadAuto(bytes.NewReader(bb.Bytes())) }),
			} {
				if rt.err != nil {
					t.Fatalf("%s: %v", rt.kind, rt.err)
				}
				if !graphsEqual(tc.g, rt.g) {
					t.Fatalf("%s round trip changed the graph", rt.kind)
				}
				if err := rt.g.Validate(); err != nil {
					t.Fatalf("%s: decoded graph invalid: %v", rt.kind, err)
				}
				if rt.g.Fingerprint() != tc.g.Fingerprint() {
					t.Fatalf("%s: fingerprint changed", rt.kind)
				}
			}
		})
	}
}

func read(kind string, f func() (*Graph, error)) (out struct {
	kind string
	g    *Graph
	err  error
}) {
	out.kind = kind
	out.g, out.err = f()
	return out
}

// TestSelfLoopFilesRejected: a graph can never hold a self-loop
// (FromEdges panics on programmer error), so files carrying one must
// fail as data errors in every reader — cleanly, never a panic.
func TestSelfLoopFilesRejected(t *testing.T) {
	text := "spanhop-graph/v1 3 1 0\n2 2 1\n"
	if _, err := ReadText(strings.NewReader(text)); err == nil {
		t.Error("ReadText accepted a self-loop")
	}
	if _, err := ReadAuto(strings.NewReader(text)); err == nil {
		t.Error("ReadAuto accepted a text self-loop")
	}
	// Binary: magic, n=3, m=1, flag=0, edge (2,2).
	var bb bytes.Buffer
	for _, v := range []any{binaryMagic, int32(3), int64(1), uint32(0), [2]int32{2, 2}} {
		if err := binaryWrite(&bb, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadBinary(bytes.NewReader(bb.Bytes())); err == nil {
		t.Error("ReadBinary accepted a self-loop")
	}
	if _, err := ReadAuto(bytes.NewReader(bb.Bytes())); err == nil {
		t.Error("ReadAuto accepted a binary self-loop")
	}
}

// TestBinaryBadWeightFlag: the weighted flag is 0 or 1; anything else
// is corruption, not a graph.
func TestBinaryBadWeightFlag(t *testing.T) {
	var bb bytes.Buffer
	for _, v := range []any{binaryMagic, int32(2), int64(0), uint32(7)} {
		if err := binaryWrite(&bb, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadBinary(bytes.NewReader(bb.Bytes())); err == nil {
		t.Error("ReadBinary accepted weighted flag 7")
	}
}

// Fingerprint must be stable across (de)serialization and sensitive to
// any logical change: weights, endpoints, weightedness, vertex count.
func TestFingerprint(t *testing.T) {
	g := UniformWeights(Grid2D(5, 5), 20, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != g.Fingerprint() {
		t.Fatal("fingerprint changed across a binary round trip")
	}
	if UniformWeights(Grid2D(5, 5), 20, 8).Fingerprint() == g.Fingerprint() {
		t.Fatal("different weights, same fingerprint")
	}
	if Grid2D(5, 5).Fingerprint() == g.Fingerprint() {
		t.Fatal("unweighted vs weighted, same fingerprint")
	}
	if Grid2D(5, 6).Fingerprint() == Grid2D(5, 5).Fingerprint() {
		t.Fatal("different shape, same fingerprint")
	}
	if Grid2D(5, 5).Fingerprint() != Grid2D(5, 5).Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
}

// FromEdgesOrig must preserve the mapping, including empty-but-present.
func TestFromEdgesOrig(t *testing.T) {
	edges := []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}}
	g := FromEdgesOrig(3, edges, true, []int32{7, 9})
	if !g.HasOrigEdgeIDs() || g.OrigEdgeID(0) != 7 || g.OrigEdgeID(1) != 9 {
		t.Fatalf("mapping lost: %v %v", g.OrigEdgeID(0), g.OrigEdgeID(1))
	}
	if e := FromEdgesOrig(2, nil, false, []int32{}); !e.HasOrigEdgeIDs() {
		t.Fatal("empty-but-present mapping collapsed to absent")
	}
	if p := FromEdgesOrig(3, edges, true, nil); p.HasOrigEdgeIDs() {
		t.Fatal("nil mapping reported as present")
	}
}
