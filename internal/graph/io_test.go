package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.Weighted() != b.Weighted() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		FromEdges(0, nil, false),
		FromEdges(3, nil, true),
		UniformWeights(Grid2D(4, 4), 50, 1),
		RandomConnectedGNM(80, 200, 2),
	} {
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("ReadText: %v", err)
		}
		if !graphsEqual(g, back) {
			t.Fatal("text round trip changed the graph")
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		FromEdges(0, nil, false),
		FromEdges(3, nil, true),
		UniformWeights(Grid2D(4, 4), 50, 1),
		RandomConnectedGNM(80, 200, 2),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		if !graphsEqual(g, back) {
			t.Fatal("binary round trip changed the graph")
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong-magic 1 0 0\n",
		"spanhop-graph/v1 2 1 0\n",        // truncated edge list
		"spanhop-graph/v1 2 1 0\n0 1\n",   // short edge line
		"spanhop-graph/v1 2 1 0\nx y z\n", // non-numeric
		"spanhop-graph/v1 x 1 0\n0 1 1\n", // bad n
		"spanhop-graph/v1 2 x 0\n0 1 1\n", // bad m
		"spanhop-graph/v1 2 1\n0 1 1\n",   // short header
	}
	for i, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	var buf bytes.Buffer
	g := Path(10)
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-4])); err == nil {
		t.Error("truncated binary accepted")
	}
}

// Property: arbitrary random weighted graphs survive both round trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, weighted bool) bool {
		g := RandomGNM(30, 60, seed)
		if weighted {
			g = UniformWeights(g, 1000, seed)
		}
		var tb, bb bytes.Buffer
		if WriteText(&tb, g) != nil || WriteBinary(&bb, g) != nil {
			return false
		}
		t1, err1 := ReadText(&tb)
		t2, err2 := ReadBinary(&bb)
		return err1 == nil && err2 == nil && graphsEqual(g, t1) && graphsEqual(g, t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
