package graph

import (
	"strings"
	"testing"
)

// White-box tests for Validate's error detection: corrupt each CSR
// invariant in place and check it is caught. These guard the
// transformations (Contract, SubgraphFromEdgeIDs, parsers) that
// construct graphs without going through FromEdges' checks.

func corrupt(t *testing.T, mutate func(g *Graph), wantSubstr string) {
	t.Helper()
	g := UniformWeights(Grid2D(3, 4), 5, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	mutate(g)
	err := g.Validate()
	if err == nil {
		t.Fatalf("corruption not detected (want %q)", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not mention %q", err, wantSubstr)
	}
}

func TestValidateDetectsOffsetCorruption(t *testing.T) {
	corrupt(t, func(g *Graph) { g.offs[0] = 1 }, "offs[0]")
}

func TestValidateDetectsNonMonotoneOffsets(t *testing.T) {
	corrupt(t, func(g *Graph) { g.offs[2] = g.offs[1] - 1 }, "monotone")
}

func TestValidateDetectsBadNeighbor(t *testing.T) {
	corrupt(t, func(g *Graph) { g.dst[0] = 99 }, "out of range")
}

func TestValidateDetectsSelfLoopInCSR(t *testing.T) {
	corrupt(t, func(g *Graph) {
		// Point vertex 0's first neighbor at itself.
		g.dst[g.offs[0]] = 0
	}, "self-loop")
}

func TestValidateDetectsEdgeIDMismatch(t *testing.T) {
	corrupt(t, func(g *Graph) {
		// Swap two edge ids at vertex 0 so the id no longer matches
		// the endpoint.
		ids := g.eids[g.offs[0]:g.offs[1]]
		if len(ids) < 2 {
			t.Skip("degree too small")
		}
		ids[0], ids[1] = ids[1], ids[0]
	}, "does not match")
}

func TestValidateDetectsWeightMismatch(t *testing.T) {
	corrupt(t, func(g *Graph) { g.wts[0] = g.wts[0] + 1 }, "weight")
}

func TestValidateDetectsDirectionCount(t *testing.T) {
	corrupt(t, func(g *Graph) {
		// Re-point one direction of edge 0 at a different edge id:
		// edge 0 then appears once, the other id three times.
		for i := range g.eids {
			if g.eids[i] == 0 {
				// Find another edge with the same endpoints profile
				// is hard; instead use an id whose endpoints match
				// nothing — 1 will fail the endpoint match first, so
				// check for either message.
				g.eids[i] = g.eids[(i+1)%len(g.eids)]
				break
			}
		}
	}, "")
}

func TestValidateDetectsTruncatedArrays(t *testing.T) {
	corrupt(t, func(g *Graph) { g.dst = g.dst[:len(g.dst)-1] }, "lengths")
}

func TestValidateDetectsBadEdgeID(t *testing.T) {
	corrupt(t, func(g *Graph) { g.eids[0] = int32(len(g.edges)) + 5 }, "edge id")
}
