package spanner

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sssp"
)

// maxEdgeStretch returns the maximum over all edges (u,v) of g of
// distH(u,v)/w(u,v), which bounds the spanner stretch (it suffices to
// check edge endpoints). Exact but O(n·m); test-scale.
func maxEdgeStretch(t *testing.T, g *graph.Graph, ids []int32) float64 {
	t.Helper()
	h := g.SubgraphFromEdgeIDs(ids)
	// Group queries by source to reuse Dijkstra runs.
	bySource := map[graph.V][]int32{}
	for e := int32(0); int64(e) < g.NumEdges(); e++ {
		bySource[g.Edges()[e].U] = append(bySource[g.Edges()[e].U], e)
	}
	worst := 0.0
	for s, es := range bySource {
		res := sssp.Dijkstra(h, []graph.V{s}, sssp.Options{})
		for _, e := range es {
			ed := g.Edges()[e]
			if res.Dist[ed.V] == graph.InfDist {
				t.Fatalf("spanner disconnects edge (%d,%d)", ed.U, ed.V)
			}
			st := float64(res.Dist[ed.V]) / float64(g.EdgeWeight(e))
			if st > worst {
				worst = st
			}
		}
	}
	return worst
}

func isSubsetOfEdges(g *graph.Graph, ids []int32) bool {
	seen := map[int32]bool{}
	for _, e := range ids {
		if e < 0 || int64(e) >= g.NumEdges() || seen[e] {
			return false
		}
		seen[e] = true
	}
	return true
}

func TestUnweightedBasics(t *testing.T) {
	g := graph.RandomConnectedGNM(500, 3000, 1)
	res := Unweighted(g, 3, 2, nil)
	if !isSubsetOfEdges(g, res.EdgeIDs) {
		t.Fatal("spanner edge ids invalid or duplicated")
	}
	if res.Size() == 0 {
		t.Fatal("empty spanner for connected graph")
	}
	if res.Clustering == nil {
		t.Fatal("unweighted spanner should expose its clustering")
	}
	// Spanner must span: same connected components.
	h := res.Graph(g)
	_, ch := h.Components()
	_, cg := g.Components()
	if ch != cg {
		t.Fatalf("spanner has %d components, graph has %d", ch, cg)
	}
}

func TestUnweightedStretch(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		g := graph.RandomConnectedGNM(300, 1500, uint64(k))
		res := Unweighted(g, k, uint64(100+k), nil)
		st := maxEdgeStretch(t, g, res.EdgeIDs)
		// Lemma 3.2 promises O(k); radii are ≤ ~4k whp with β =
		// ln(n)/(2k), so edge stretch ≤ ~8k+1. Use 10k+2 to absorb
		// randomness without losing the linear-in-k shape.
		if st > float64(10*k+2) {
			t.Fatalf("k=%d: stretch %.1f exceeds O(k) envelope %d", k, st, 10*k+2)
		}
	}
}

func TestUnweightedSizeScaling(t *testing.T) {
	// Theorem 1.1 size O(n^{1+1/k}): with k=2 on a dense-ish graph the
	// spanner must be well below m and within a constant of n^{1.5}.
	n := int32(2000)
	g := graph.RandomConnectedGNM(n, 40000, 7)
	res := Unweighted(g, 2, 8, nil)
	bound := 6 * math.Pow(float64(n), 1.5)
	if float64(res.Size()) > bound {
		t.Fatalf("size %d exceeds 6·n^1.5 = %.0f", res.Size(), bound)
	}
	if int64(res.Size()) >= g.NumEdges() {
		t.Fatal("spanner did not sparsify at all")
	}
	// Larger k must (on average) give smaller spanners.
	res8 := Unweighted(g, 8, 8, nil)
	if res8.Size() >= res.Size() {
		t.Fatalf("k=8 spanner (%d) not smaller than k=2 (%d)", res8.Size(), res.Size())
	}
}

func TestUnweightedPathKeepsEverything(t *testing.T) {
	// A tree is its own unique spanner: every edge is a forest or
	// boundary edge, and connectivity must be preserved.
	g := graph.Path(100)
	res := Unweighted(g, 3, 5, nil)
	if int64(res.Size()) != g.NumEdges() {
		t.Fatalf("path spanner has %d of %d edges", res.Size(), g.NumEdges())
	}
}

func TestUnweightedDisconnected(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}}, false)
	res := Unweighted(g, 2, 3, nil)
	h := res.Graph(g)
	_, c := h.Components()
	if c != 4 {
		t.Fatalf("components = %d, want 4", c)
	}
}

func TestUnweightedEmptyAndTiny(t *testing.T) {
	if got := Unweighted(graph.FromEdges(0, nil, false), 2, 1, nil).Size(); got != 0 {
		t.Fatalf("empty graph spanner size %d", got)
	}
	if got := Unweighted(graph.FromEdges(5, nil, false), 2, 1, nil).Size(); got != 0 {
		t.Fatalf("edgeless graph spanner size %d", got)
	}
	one := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}}, false)
	if got := Unweighted(one, 2, 1, nil).Size(); got != 1 {
		t.Fatalf("single-edge graph spanner size %d, want 1", got)
	}
}

func TestUnweightedPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	Unweighted(graph.Path(3), 0, 1, nil)
}

func TestWeightedBasics(t *testing.T) {
	g := graph.ExponentialWeights(graph.RandomConnectedGNM(400, 2400, 9), 2, 12, 10)
	cost := par.NewCost()
	res := Weighted(g, 3, 11, cost)
	if !isSubsetOfEdges(g, res.EdgeIDs) {
		t.Fatal("weighted spanner ids invalid")
	}
	h := res.Graph(g)
	_, ch := h.Components()
	_, cg := g.Components()
	if ch != cg {
		t.Fatal("weighted spanner lost connectivity")
	}
	if cost.Work() == 0 || cost.Depth() == 0 {
		t.Fatal("no cost recorded")
	}
}

func TestWeightedStretch(t *testing.T) {
	for _, k := range []int{2, 4} {
		g := graph.ExponentialWeights(graph.RandomConnectedGNM(250, 1200, uint64(k+40)), 2, 10, uint64(k+50))
		res := Weighted(g, k, uint64(60+k), nil)
		st := maxEdgeStretch(t, g, res.EdgeIDs)
		// Theorem 3.3: O(k) with a somewhat larger constant than the
		// unweighted case (quotient translation costs a factor ~2,
		// plus the bucket width factor 2).
		if st > float64(24*k+4) {
			t.Fatalf("k=%d: weighted stretch %.1f exceeds O(k) envelope %d", k, st, 24*k+4)
		}
	}
}

func TestWeightedOnUniformWeightsSparsifies(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(1500, 30000, 13), 4, 14)
	res := Weighted(g, 2, 15, nil)
	if int64(res.Size()) >= g.NumEdges() {
		t.Fatal("weighted spanner kept every edge on a dense graph")
	}
}

func TestWeightedUnweightedFallback(t *testing.T) {
	g := graph.RandomConnectedGNM(100, 400, 17)
	res := Weighted(g, 3, 18, nil)
	if res.Clustering == nil {
		t.Fatal("unweighted fallback should expose clustering")
	}
}

func TestWellSeparatedEmptyGroup(t *testing.T) {
	g := graph.UniformWeights(graph.Path(10), 8, 19)
	if got := WellSeparated(g, nil, 3, 1, nil); got != nil {
		t.Fatalf("empty group produced %d edges", len(got))
	}
}

func TestNumGroups(t *testing.T) {
	if numGroups(1) != 1 {
		t.Fatalf("numGroups(1) = %d", numGroups(1))
	}
	if numGroups(2) != 2 {
		t.Fatalf("numGroups(2) = %d", numGroups(2))
	}
	if g8 := numGroups(8); g8 != 6 {
		t.Fatalf("numGroups(8) = %d, want 2·lg 8 = 6", g8)
	}
	// O(log k): doubling k adds a constant.
	if numGroups(64)-numGroups(32) > 3 {
		t.Fatal("numGroups not logarithmic")
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		w, minW graph.W
		want    int
	}{
		{1, 1, 0}, {2, 1, 1}, {3, 1, 1}, {4, 1, 2}, {7, 1, 2}, {8, 1, 3},
		{10, 5, 1}, {5, 5, 0},
	}
	for _, c := range cases {
		if got := bucketIndex(c.w, c.minW); got != c.want {
			t.Errorf("bucketIndex(%d,%d) = %d, want %d", c.w, c.minW, got, c.want)
		}
	}
}

func TestBaswanaSenStretch(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		g := graph.UniformWeights(graph.RandomConnectedGNM(200, 1000, uint64(k+70)), 9, uint64(k+80))
		res := BaswanaSen(g, k, uint64(k+90), nil)
		st := maxEdgeStretch(t, g, res.EdgeIDs)
		if st > float64(2*k-1)+1e-9 {
			t.Fatalf("k=%d: Baswana–Sen stretch %.2f exceeds 2k-1 = %d", k, st, 2*k-1)
		}
	}
}

func TestBaswanaSenK1KeepsAllEdges(t *testing.T) {
	// k=1 means stretch 1: the spanner must preserve exact distances
	// between edge endpoints, which forces (essentially) every
	// non-dominated edge. On a graph with unique weights, that is
	// every edge that is the unique shortest path between its ends.
	g := graph.UniformWeights(graph.RandomConnectedGNM(60, 200, 21), 1000, 22)
	res := BaswanaSen(g, 1, 23, nil)
	st := maxEdgeStretch(t, g, res.EdgeIDs)
	if st > 1+1e-9 {
		t.Fatalf("k=1 stretch %.3f", st)
	}
}

func TestBaswanaSenSize(t *testing.T) {
	n := int32(2000)
	g := graph.UniformWeights(graph.RandomConnectedGNM(n, 40000, 25), 50, 26)
	res := BaswanaSen(g, 2, 27, nil)
	// Expected size O(k n^{1+1/k}) = O(2 n^{1.5}).
	bound := 8 * math.Pow(float64(n), 1.5)
	if float64(res.Size()) > bound {
		t.Fatalf("Baswana–Sen size %d exceeds %.0f", res.Size(), bound)
	}
	if int64(res.Size()) >= g.NumEdges() {
		t.Fatal("Baswana–Sen did not sparsify")
	}
}

func TestGreedyStretchAndOptimality(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(80, 400, 29), 7, 30)
	for _, k := range []int{2, 3} {
		res := Greedy(g, k, nil)
		st := maxEdgeStretch(t, g, res.EdgeIDs)
		if st > float64(2*k-1)+1e-9 {
			t.Fatalf("greedy k=%d stretch %.2f", k, st)
		}
		// Greedy should be at least as small as Baswana–Sen here.
		bs := BaswanaSen(g, k, 31, nil)
		if res.Size() > bs.Size() {
			t.Logf("note: greedy %d vs BS %d (greedy usually smaller)", res.Size(), bs.Size())
		}
	}
}

func TestGreedyOnTreeKeepsAll(t *testing.T) {
	g := graph.UniformWeights(graph.Path(50), 9, 33)
	res := Greedy(g, 2, nil)
	if int64(res.Size()) != g.NumEdges() {
		t.Fatalf("greedy dropped tree edges: %d of %d", res.Size(), g.NumEdges())
	}
}

// Property: all three constructions yield connected spanners with
// valid edge subsets on arbitrary connected weighted graphs.
func TestSpannersPreserveConnectivityProperty(t *testing.T) {
	f := func(seedRaw uint32, kRaw uint8) bool {
		seed := uint64(seedRaw)
		r := rng.New(seed ^ 0x5555)
		k := int(kRaw)%5 + 1
		n := int32(r.Intn(80) + 5)
		m := int64(n) - 1 + int64(r.Intn(150))
		if max := int64(n) * int64(n-1) / 2; m > max {
			m = max
		}
		g := graph.UniformWeights(graph.RandomConnectedGNM(n, m, seed), 16, seed^9)
		for _, ids := range [][]int32{
			Unweighted(g, k, seed^1, nil).EdgeIDs,
			Weighted(g, k, seed^2, nil).EdgeIDs,
			BaswanaSen(g, k, seed^3, nil).EdgeIDs,
		} {
			if !isSubsetOfEdges(g, ids) {
				return false
			}
			h := g.SubgraphFromEdgeIDs(ids)
			if _, c := h.Components(); c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCorollary31BallIntersection: with β = ln(n)/(2k), the expected
// number of clusters meeting B(v,1) is at most ~n^{1/k} — the quantity
// that bounds the boundary-edge count.
func TestCorollary31BallIntersection(t *testing.T) {
	g := graph.RandomConnectedGNM(600, 3000, 35)
	k := 3
	res := Unweighted(g, k, 36, nil)
	// Average adjacent-cluster count per vertex ≈ ball(1) clusters.
	total := 0.0
	for v := graph.V(0); v < g.NumVertices(); v++ {
		seen := map[int32]bool{}
		for _, u := range g.Neighbors(v) {
			seen[res.Clustering.ClusterOf[u]] = true
		}
		seen[res.Clustering.ClusterOf[v]] = true
		total += float64(len(seen))
	}
	avg := total / float64(g.NumVertices())
	bound := math.Pow(float64(g.NumVertices()), 1/float64(k))
	// Allow slack 2.5x for the +1 own-cluster and sampling noise.
	if avg > 2.5*bound {
		t.Fatalf("avg ball clusters %.2f exceeds envelope of n^{1/k} = %.2f", avg, bound)
	}
}

func BenchmarkUnweightedSpanner(b *testing.B) {
	g := graph.RandomConnectedGNM(20000, 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unweighted(g, 3, uint64(i), nil)
	}
}

func BenchmarkWeightedSpanner(b *testing.B) {
	g := graph.ExponentialWeights(graph.RandomConnectedGNM(20000, 100000, 1), 2, 16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Weighted(g, 3, uint64(i), nil)
	}
}

func BenchmarkBaswanaSen(b *testing.B) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(20000, 100000, 1), 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BaswanaSen(g, 3, uint64(i), nil)
	}
}
