package spanner

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// BaswanaSen builds a (2k−1)-spanner with the randomized clustering
// algorithm of Baswana and Sen [BS07], the main comparison row of
// Figure 1: expected size O(k·n^{1+1/k}), work O(k·m). It works on
// weighted graphs; for unweighted graphs all weights count as 1.
//
// The algorithm runs k−1 clustering phases. In each phase clusters are
// sampled with probability n^{-1/k}; a vertex not adjacent to any
// sampled cluster keeps its lightest edge to every adjacent cluster
// and retires its remaining edges, while a vertex adjacent to a
// sampled cluster joins the lightest such neighbor, keeps that edge
// plus every strictly lighter per-cluster edge, and discards the edges
// those choices dominate. A final phase keeps the lightest edge from
// every vertex to every surviving adjacent cluster.
//
// Cost accounting: each phase is O(m) work and O(1) rounds in the
// model (the per-vertex grouping is a constant number of parallel
// primitives), matching the O(k·m) work / O(k·log* n) depth row.
func BaswanaSen(g *graph.Graph, k int, seed uint64, cost *par.Cost) *Result {
	if k < 1 {
		panic(fmt.Sprintf("spanner: BaswanaSen k = %d", k))
	}
	n := g.NumVertices()
	m := g.NumEdges()
	r := rng.New(seed)
	if n == 0 || m == 0 {
		return &Result{Levels: k}
	}
	p := math.Pow(float64(n), -1.0/float64(k))

	// clusterOf[v] is the id of v's cluster (ids are center vertex
	// ids) or NoVertex once v has retired.
	clusterOf := make([]graph.V, n)
	for i := range clusterOf {
		clusterOf[i] = graph.V(i)
	}
	removed := make([]bool, m)
	var out []int32

	keep := func(e int32) {
		out = append(out, e)
	}
	// lightest edge (by weight then id) from v to each adjacent
	// cluster, among alive edges.
	lightestPerCluster := func(v graph.V) map[graph.V]int32 {
		best := map[graph.V]int32{}
		adj := g.Neighbors(v)
		ids := g.AdjEdgeIDs(v)
		for i, u := range adj {
			e := ids[i]
			if removed[e] {
				continue
			}
			cu := clusterOf[u]
			if cu == graph.NoVertex || cu == clusterOf[v] {
				continue
			}
			if prev, ok := best[cu]; !ok || better(g, e, prev) {
				best[cu] = e
			}
		}
		return best
	}
	removeEdgesTo := func(v graph.V, target graph.V) {
		adj := g.Neighbors(v)
		ids := g.AdjEdgeIDs(v)
		for i, u := range adj {
			if clusterOf[u] == target {
				removed[ids[i]] = true
			}
		}
	}
	removeAllEdges := func(v graph.V) {
		for _, e := range g.AdjEdgeIDs(v) {
			removed[e] = true
		}
	}

	for phase := 1; phase <= k-1; phase++ {
		// Sample the surviving clusters.
		sampled := map[graph.V]bool{}
		for v := graph.V(0); v < n; v++ {
			if clusterOf[v] == v { // v is a live center
				sampled[v] = r.Bernoulli(p)
			}
		}
		next := make([]graph.V, n)
		copy(next, clusterOf)
		for v := graph.V(0); v < n; v++ {
			cv := clusterOf[v]
			if cv == graph.NoVertex {
				continue // retired in an earlier phase
			}
			if sampled[cv] {
				continue // v's cluster survives; v stays put
			}
			best := lightestPerCluster(v)
			// Find the lightest edge to a *sampled* adjacent cluster.
			var bestSampled graph.V = graph.NoVertex
			bestEdge := graph.NoEdge
			for c, e := range best {
				if !sampled[c] {
					continue
				}
				if bestEdge == graph.NoEdge || better(g, e, bestEdge) {
					bestSampled, bestEdge = c, e
				}
			}
			if bestSampled == graph.NoVertex {
				// Not adjacent to any sampled cluster: keep one edge
				// per adjacent cluster and retire.
				for _, e := range best {
					keep(e)
				}
				removeAllEdges(v)
				next[v] = graph.NoVertex
				continue
			}
			// Join the sampled cluster through its lightest edge.
			keep(bestEdge)
			next[v] = bestSampled
			removeEdgesTo(v, bestSampled)
			// Keep (and discard the rest of) every strictly lighter
			// adjacent cluster.
			for c, e := range best {
				if c == bestSampled {
					continue
				}
				if better(g, e, bestEdge) {
					keep(e)
					removeEdgesTo(v, c)
				}
			}
		}
		clusterOf = next
		cost.Round(int64(m) + int64(n))
	}

	// Final phase: lightest alive edge from each vertex to each
	// adjacent surviving cluster.
	for v := graph.V(0); v < n; v++ {
		if clusterOf[v] == graph.NoVertex {
			continue
		}
		for _, e := range lightestPerCluster(v) {
			keep(e)
		}
	}
	cost.Round(int64(m) + int64(n))
	return &Result{EdgeIDs: dedupeIDs(out), Levels: k}
}

// Greedy builds the greedy (2k−1)-spanner of Althöfer et al. [ADD+93]:
// process edges in increasing weight and keep an edge exactly when the
// spanner built so far does not already provide a path of length ≤
// (2k−1)·w(e) between its endpoints. Smallest known sizes, but
// O(m·n^{1+1/k} )-ish work — the Figure 1 row that trades work for
// size. Test/benchmark scale only.
func Greedy(g *graph.Graph, k int, cost *par.Cost) *Result {
	if k < 1 {
		panic(fmt.Sprintf("spanner: Greedy k = %d", k))
	}
	n := g.NumVertices()
	order := make([]int32, g.NumEdges())
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return better(g, order[i], order[j]) })

	// Growing adjacency of the spanner.
	type arc struct {
		to graph.V
		w  graph.W
	}
	adj := make([][]arc, n)
	var out []int32
	stretch := graph.W(2*k - 1)

	// Bounded Dijkstra inside the current spanner.
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	var touchedList []graph.V
	reachWithin := func(s, t graph.V, bound graph.Dist) bool {
		type qe struct {
			v graph.V
			d graph.Dist
		}
		q := []qe{{s, 0}}
		dist[s] = 0
		touchedList = append(touchedList[:0], s)
		found := false
		var ops int64
		for len(q) > 0 {
			best := 0
			for i := 1; i < len(q); i++ {
				if q[i].d < q[best].d {
					best = i
				}
			}
			cur := q[best]
			q[best] = q[len(q)-1]
			q = q[:len(q)-1]
			if cur.d > dist[cur.v] {
				continue
			}
			if cur.v == t {
				found = true
				break
			}
			for _, a := range adj[cur.v] {
				ops++
				nd := cur.d + a.w
				if nd <= bound && nd < dist[a.to] {
					if dist[a.to] == graph.InfDist {
						touchedList = append(touchedList, a.to)
					}
					dist[a.to] = nd
					q = append(q, qe{a.to, nd})
				}
			}
		}
		cost.AddWork(ops)
		cost.AddDepth(ops)
		for _, v := range touchedList {
			dist[v] = graph.InfDist
		}
		return found
	}

	for _, e := range order {
		ed := g.Edges()[e]
		w := g.EdgeWeight(e)
		if !reachWithin(ed.U, ed.V, stretch*w) {
			out = append(out, e)
			adj[ed.U] = append(adj[ed.U], arc{ed.V, w})
			adj[ed.V] = append(adj[ed.V], arc{ed.U, w})
		}
	}
	return &Result{EdgeIDs: dedupeIDs(out), Levels: 1}
}
