// Package spanner implements the paper's spanner constructions
// (Section 3) and the baselines it compares against in Figure 1.
//
//   - Unweighted (Algorithm 2 / Lemma 3.2): one exponential start time
//     clustering with β = ln(n)/(2k); keep the cluster forest and one
//     edge from each boundary vertex to each adjacent cluster. Stretch
//     O(k), expected size O(n^{1+1/k}), work O(m), depth O(k log* n).
//
//   - WellSeparated (Algorithm 3): for graphs whose edge-weight buckets
//     are separated by factors ≥ k^c, iterate buckets in increasing
//     weight, cluster the unit-weight quotient graph G[A_i]/H_{i-1},
//     and contract the new forests into H_i.
//
//   - Weighted (Theorem 3.3): bucket edges by powers of two, deal the
//     buckets into O(log k) well-separated groups, and run
//     WellSeparated on every group (in parallel in the model).
//
// Baselines (separate files): Baswana–Sen's (2k−1)-spanner [BS07] and
// the greedy (2k−1)-spanner [ADD+93].
package spanner

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/ufind"
)

// Options configure a spanner construction.
type Options struct {
	// Cost accumulates PRAM work/depth; may be nil.
	Cost *par.Cost
	// Exec is the execution context: a parallel context runs the
	// clustering races, boundary sweeps, and weighted groups on the
	// pooled workers under its cap; its cancellation is polled at
	// bucket boundaries (a canceled build's result is invalid — check
	// Exec.Err()). Nil keeps legacy behavior.
	Exec *exec.Ctx
	// Parallel runs the construction's hot loops on goroutines: the
	// EST clustering race expands buckets concurrently and the
	// boundary-edge selection sweeps vertices in parallel chunks. The
	// resulting edge set is identical to the sequential construction
	// (the clustering is bit-identical and per-vertex boundary choices
	// are independent; the id list is canonicalized by sorting).
	//
	// Deprecated: set Exec to a parallel execution context instead;
	// Parallel remains as a thin alias for Exec = exec.Default().
	Parallel bool
}

// parallel reports whether the multicore paths should run. An
// explicit execution context is decisive (a sequential Exec forces
// the reference path); the deprecated bool only matters for legacy
// nil-Exec callers.
func (o Options) parallel() bool {
	if o.Exec != nil {
		return o.Exec.IsParallel()
	}
	return o.Parallel
}

// Result is a spanner: a subset of the input graph's canonical edge
// ids, plus diagnostics.
type Result struct {
	// EdgeIDs are the spanner edges as canonical edge ids of the
	// input graph, sorted ascending.
	EdgeIDs []int32
	// Clustering is the single EST clustering used by the unweighted
	// construction; nil for weighted constructions (which use many).
	Clustering *core.Result
	// Levels is the number of clustering rounds performed (1 for
	// unweighted; buckets × groups for weighted).
	Levels int
}

// Size returns the number of spanner edges.
func (r *Result) Size() int { return len(r.EdgeIDs) }

// Graph materializes the spanner as a standalone graph over the same
// vertex set as g.
func (r *Result) Graph(g *graph.Graph) *graph.Graph {
	return g.SubgraphFromEdgeIDs(r.EdgeIDs)
}

// betaFor returns the clustering parameter β = ln(n)/(2k) from Lemma
// 3.2, guarded for tiny n.
func betaFor(n int32, k int) float64 {
	if n < 3 {
		n = 3
	}
	return math.Log(float64(n)) / (2 * float64(k))
}

// Unweighted builds an O(k)-stretch spanner of expected size
// O(n^{1+1/k}) for an unweighted graph (Algorithm 2). Edge weights, if
// any, are ignored (every edge counts as 1), matching the paper's
// unweighted setting. k must be ≥ 1.
func Unweighted(g *graph.Graph, k int, seed uint64, cost *par.Cost) *Result {
	return UnweightedOpts(g, k, seed, Options{Cost: cost})
}

// UnweightedOpts is Unweighted with the full option set (notably
// Options.Parallel for multicore execution).
func UnweightedOpts(g *graph.Graph, k int, seed uint64, opt Options) *Result {
	if k < 1 {
		panic(fmt.Sprintf("spanner: k = %d", k))
	}
	ids, clus := unweightedStep(g, k, seed, opt)
	sortIDs(ids)
	return &Result{EdgeIDs: ids, Clustering: clus, Levels: 1}
}

// unweightedStep performs the decomposition-plus-boundary-edges step
// shared by Unweighted and WellSeparated: cluster g with unit weights,
// keep the forest, and add one edge per (boundary vertex, adjacent
// cluster) pair. Returns edge ids of g (unsorted, duplicate-free).
func unweightedStep(g *graph.Graph, k int, seed uint64, opt Options) ([]int32, *core.Result) {
	cost := opt.Cost
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return nil, core.Cluster(g, 1, seed, core.Options{Cost: cost})
	}
	beta := betaFor(n, k)
	clus := core.Cluster(g, beta, seed, core.Options{
		Cost: cost, UnitWeights: true, Exec: opt.Exec, Parallel: opt.Parallel,
	})
	if opt.Exec.Canceled() {
		return nil, clus // partial, invalid; owner must check Err()
	}
	ids := core.ForestEdges(g, clus)

	// Boundary edges: per vertex, the lightest edge to each adjacent
	// foreign cluster (Algorithm 2 line 2). One parallel round over
	// vertices in the model; with opt.Parallel the sweep runs on
	// goroutine chunks (per-vertex choices are independent, and
	// dedupeIDs sorts, so the output does not depend on merge order).
	var boundaryWork atomic.Int64
	var mu sync.Mutex
	collect := func(lo, hi int) {
		var local []int32
		var work int64
		best := map[int32]int32{} // adjacent cluster -> edge id, reused
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			adj := g.Neighbors(v)
			eids := g.AdjEdgeIDs(v)
			cv := clus.ClusterOf[v]
			clear(best)
			for i, u := range adj {
				work++
				cu := clus.ClusterOf[u]
				if cu == cv {
					continue
				}
				e := eids[i]
				if prev, ok := best[cu]; !ok || better(g, e, prev) {
					best[cu] = e
				}
			}
			for _, e := range best {
				local = append(local, e)
			}
		}
		boundaryWork.Add(work)
		mu.Lock()
		ids = append(ids, local...)
		mu.Unlock()
	}
	if opt.parallel() {
		opt.Exec.For(int(n), 1024, collect)
	} else {
		collect(0, int(n))
	}
	cost.AddWork(boundaryWork.Load())
	cost.AddDepth(1)
	return dedupeIDs(ids), clus
}

// better orders candidate boundary edges by (weight, id) so selection
// is deterministic.
func better(g *graph.Graph, a, b int32) bool {
	wa, wb := g.EdgeWeight(a), g.EdgeWeight(b)
	if wa != wb {
		return wa < wb
	}
	return a < b
}

func dedupeIDs(ids []int32) []int32 {
	sortIDs(ids)
	w := 0
	for i, e := range ids {
		if i > 0 && e == ids[w-1] {
			continue
		}
		ids[w] = e
		w++
	}
	return ids[:w]
}

func sortIDs(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// bucketIndex returns the power-of-two weight bucket of w relative to
// the graph minimum: E_i = {e : w(e)/minW ∈ [2^i, 2^{i+1})}.
func bucketIndex(w, minW graph.W) int {
	i := 0
	for x := w / minW; x > 1; x >>= 1 {
		i++
	}
	return i
}

// numGroups returns the O(log k) group count of Theorem 3.3's
// bucketing (c = 2, so weights in consecutive buckets of a group
// differ by at least ~k²).
func numGroups(k int) int {
	if k <= 1 {
		return 1
	}
	g := int(math.Ceil(2 * math.Log2(float64(k))))
	if g < 1 {
		g = 1
	}
	return g
}

// WellSeparated runs Algorithm 3 on the sub-multigraph of g given by
// groupEdges (canonical edge ids), whose weight buckets must be well
// separated (consecutive non-empty buckets differ by ≥ k^c; the caller
// guarantees this by construction). It returns spanner edge ids of g.
func WellSeparated(g *graph.Graph, groupEdges []int32, k int, seed uint64, cost *par.Cost) []int32 {
	return wellSeparated(g, groupEdges, k, seed, Options{Cost: cost})
}

func wellSeparated(g *graph.Graph, groupEdges []int32, k int, seed uint64, opt Options) []int32 {
	cost := opt.Cost
	if len(groupEdges) == 0 {
		return nil
	}
	minW := g.MinWeight()
	// Bucket the group's edges by weight scale, ascending.
	byBucket := map[int][]int32{}
	for _, e := range groupEdges {
		b := bucketIndex(g.EdgeWeight(e), minW)
		byBucket[b] = append(byBucket[b], e)
	}
	bucketKeys := make([]int, 0, len(byBucket))
	for b := range byBucket {
		bucketKeys = append(bucketKeys, b)
	}
	sort.Ints(bucketKeys)

	uf := ufind.New(g.NumVertices())
	r := rng.New(seed)
	var out []int32
	for _, b := range bucketKeys {
		if opt.Exec.Checkpoint() {
			return nil // canceled: the group's edges are discarded
		}
		bucketIDs := byBucket[b]
		// Quotient the bucket edges by the contraction state H_{i-1}
		// (Algorithm 3 line 4): Γ_i = G[A_i]/H_{i-1}.
		labels, numLabels := uf.DenseLabels()
		bucketEdges := make([]graph.Edge, len(bucketIDs))
		for i, e := range bucketIDs {
			bucketEdges[i] = g.Edges()[e]
		}
		bucketG := graph.FromEdges(g.NumVertices(), bucketEdges, true)
		gamma := bucketG.Contract(labels, numLabels)
		cost.AddWork(int64(len(bucketIDs)) + int64(g.NumVertices()))
		cost.AddDepth(1)
		if gamma.NumEdges() == 0 {
			continue
		}
		// Cluster Γ_i with uniform weights and collect forest +
		// boundary edges, mapped back to g's edge ids.
		gammaIDs, clus := unweightedStep(gamma, k, r.Uint64(), opt)
		for _, ge := range gammaIDs {
			// gamma -> bucketG -> g.
			out = append(out, bucketIDs[gamma.OrigEdgeID(ge)])
		}
		// Contract the new forest into H_i (Algorithm 3 line 7): union
		// the original endpoints of every Γ-forest edge, merging the
		// H-components the tree connects.
		forest := core.ForestEdges(gamma, clus)
		for _, ge := range forest {
			orig := g.Edges()[bucketIDs[gamma.OrigEdgeID(ge)]]
			uf.Union(orig.U, orig.V)
		}
	}
	return dedupeIDs(out)
}

// Weighted builds an O(k)-stretch spanner of expected size
// O(n^{1+1/k} log k) for a weighted graph (Theorem 3.3): it deals the
// power-of-two weight buckets into numGroups(k) well-separated groups
// and runs WellSeparated on each. The groups are independent — in the
// PRAM model they run side by side, which the cost accounting reflects
// with JoinMax.
func Weighted(g *graph.Graph, k int, seed uint64, cost *par.Cost) *Result {
	return WeightedOpts(g, k, seed, Options{Cost: cost})
}

// WeightedOpts is Weighted with the full option set. With
// Options.Parallel the O(log k) well-separated groups — independent by
// construction, side by side in the model — also run on their own
// goroutines, each with parallel clustering inside.
func WeightedOpts(g *graph.Graph, k int, seed uint64, opt Options) *Result {
	if k < 1 {
		panic(fmt.Sprintf("spanner: k = %d", k))
	}
	if !g.Weighted() {
		return UnweightedOpts(g, k, seed, opt)
	}
	groups := numGroups(k)
	minW := g.MinWeight()
	groupEdges := make([][]int32, groups)
	for e := int32(0); int64(e) < g.NumEdges(); e++ {
		b := bucketIndex(g.EdgeWeight(e), minW)
		groupEdges[b%groups] = append(groupEdges[b%groups], e)
	}
	r := rng.New(seed)
	costs := make([]*par.Cost, groups)
	seeds := make([]uint64, groups)
	for j := 0; j < groups; j++ {
		costs[j] = par.NewCost()
		seeds[j] = r.Uint64()
	}
	perGroup := make([][]int32, groups)
	runGroup := func(j int) {
		gOpt := opt
		gOpt.Cost = costs[j]
		perGroup[j] = wellSeparated(g, groupEdges[j], k, seeds[j], gOpt)
	}
	if opt.parallel() {
		opt.Exec.DoN(groups, runGroup)
	} else {
		for j := 0; j < groups; j++ {
			runGroup(j)
		}
	}
	var all []int32
	for j := 0; j < groups; j++ {
		all = append(all, perGroup[j]...)
	}
	opt.Cost.JoinMax(costs...)
	return &Result{EdgeIDs: dedupeIDs(all), Levels: groups}
}
