package spanner

import (
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
)

func withProcs(t *testing.T, p int, body func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	body()
}

func sameEdgeIDs(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.EdgeIDs) != len(b.EdgeIDs) {
		t.Fatalf("%s: size %d vs %d", label, len(a.EdgeIDs), len(b.EdgeIDs))
	}
	for i := range a.EdgeIDs {
		if a.EdgeIDs[i] != b.EdgeIDs[i] {
			t.Fatalf("%s: edge id %d vs %d at %d", label, a.EdgeIDs[i], b.EdgeIDs[i], i)
		}
	}
}

// TestUnweightedParallelIdentical: Options.Parallel must reproduce the
// sequential construction's exact edge set (the clustering is
// bit-identical and the boundary selection is per-vertex).
func TestUnweightedParallelIdentical(t *testing.T) {
	withProcs(t, 4, func() {
		for seed := uint64(0); seed < 5; seed++ {
			g := graph.RandomConnectedGNM(1200, 6000, seed)
			seq := UnweightedOpts(g, 3, seed, Options{})
			par := UnweightedOpts(g, 3, seed, Options{Parallel: true})
			sameEdgeIDs(t, "unweighted", par, seq)
		}
	})
}

// TestWeightedParallelIdentical: the grouped weighted construction
// with parallel groups and clustering matches the sequential edge set.
func TestWeightedParallelIdentical(t *testing.T) {
	withProcs(t, 4, func() {
		for seed := uint64(0); seed < 4; seed++ {
			g := graph.ExponentialWeights(graph.RandomConnectedGNM(600, 2400, seed), 2, 20, seed^9)
			seq := WeightedOpts(g, 4, seed, Options{})
			par := WeightedOpts(g, 4, seed, Options{Parallel: true})
			sameEdgeIDs(t, "weighted", par, seq)
		}
	})
}

// TestParallelCostAccounted: the parallel path must report the same
// model work as the sequential one (the model is schedule-free).
func TestParallelCostAccounted(t *testing.T) {
	withProcs(t, 4, func() {
		g := graph.RandomConnectedGNM(800, 3200, 3)
		cSeq := par.NewCost()
		UnweightedOpts(g, 3, 7, Options{Cost: cSeq})
		cPar := par.NewCost()
		UnweightedOpts(g, 3, 7, Options{Cost: cPar, Parallel: true})
		if cSeq.Work() != cPar.Work() {
			t.Fatalf("work diverged: %d vs %d", cSeq.Work(), cPar.Work())
		}
		if cSeq.Depth() != cPar.Depth() {
			t.Fatalf("depth diverged: %d vs %d", cSeq.Depth(), cPar.Depth())
		}
	})
}
