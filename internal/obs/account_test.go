package obs

// Accountant tests: section deltas land in the right (graph, op)
// cell, failures and work units are counted, eviction forgets, and
// the nil accountant is inert (the library-user configuration).

import (
	"errors"
	"testing"
	"time"
)

// burn spins long enough to accumulate measurable thread CPU.
func burn(d time.Duration) {
	deadline := time.Now().Add(d)
	x := 1
	for time.Now().Before(deadline) {
		x = x*31 + 7
	}
	_ = x
}

func TestAccountantMeasure(t *testing.T) {
	a := NewAccountant()
	err := a.Measure("g1", OpBuild, func() error { burn(20 * time.Millisecond); return nil })
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	if err := a.Measure("g1", OpRebuild, func() error { return wantErr }); err != wantErr {
		t.Fatalf("Measure must return f's error, got %v", err)
	}

	rows := a.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("snapshot rows = %d, want 2", len(rows))
	}
	// Sorted by (graph, op): build before rebuild.
	if rows[0].Op != OpBuild || rows[1].Op != OpRebuild {
		t.Fatalf("snapshot order = %s, %s", rows[0].Op, rows[1].Op)
	}
	b := rows[0]
	if b.Graph != "g1" || b.Count != 1 || b.Errors != 0 || b.Samples != 1 {
		t.Fatalf("build row = %+v", b)
	}
	if b.WallSeconds < 0.015 {
		t.Fatalf("build wall %gs, want >= the 20ms burned", b.WallSeconds)
	}
	if HaveThreadCPU && b.CPUSeconds <= 0 {
		t.Fatalf("build cpu %gs, want > 0 on a platform with thread CPU clocks", b.CPUSeconds)
	}
	if r := rows[1]; r.Errors != 1 || r.Count != 1 {
		t.Fatalf("failed rebuild row = %+v", r)
	}
}

func TestAccountantEndUnitsAndForget(t *testing.T) {
	a := NewAccountant()
	s := a.Begin()
	a.End(s, "g2", OpQuery, 17, false)
	a.Measure("keep", OpQuery, func() error { return nil })

	if rows := a.GraphSnapshot("g2"); len(rows) != 1 || rows[0].Count != 17 {
		t.Fatalf("g2 rows = %+v", rows)
	}
	a.Forget("g2")
	if rows := a.GraphSnapshot("g2"); len(rows) != 0 {
		t.Fatalf("g2 rows after Forget = %+v", rows)
	}
	if rows := a.Snapshot(); len(rows) != 1 || rows[0].Graph != "keep" {
		t.Fatalf("Forget evicted the wrong graph: %+v", rows)
	}
}

func TestAccountantNil(t *testing.T) {
	var a *Accountant
	s := a.Begin()
	if s.open {
		t.Fatal("nil Begin returned an open sample")
	}
	a.End(s, "g", OpQuery, 1, true) // must not panic
	if err := a.Measure("g", OpQuery, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	a.Forget("g")
	if a.Snapshot() != nil || a.GraphSnapshot("g") != nil {
		t.Fatal("nil accountant snapshots must be nil")
	}
}
