package obs

// Continuous-profiler tests: the ring captures both kinds, prunes to
// the Keep bound, and the name validator admits exactly the files the
// collector writes (the HTTP handler's only defense).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestValidProfileName(t *testing.T) {
	good := []string{
		"cpu-20260808T120000.000000000.pprof",
		"heap-20260808T120000.123456789.pprof",
	}
	for _, n := range good {
		if !ValidProfileName(n) {
			t.Errorf("ValidProfileName(%q) = false, want true", n)
		}
	}
	bad := []string{
		"", "cpu-.pprof.bak", "goroutine-20260808T120000.pprof",
		"cpu-../../etc/passwd", "cpu-20260808T120000.pprof/..",
		"/etc/passwd", "cpu-20260808T120000.pprofX",
		"cpu-20260808T120000.pprof\n", "heap-;rm -rf.pprof",
	}
	for _, n := range bad {
		if ValidProfileName(n) {
			t.Errorf("ValidProfileName(%q) = true, want false", n)
		}
	}
}

func TestProfilerDisabledAndNil(t *testing.T) {
	p, err := NewProfiler(ProfilerOptions{})
	if err != nil || p != nil {
		t.Fatalf("empty Dir = (%v, %v), want (nil, nil)", p, err)
	}
	p.Start() // nil-safe
	p.Stop()
	if p.Dir() != "" || p.Captures() != 0 {
		t.Fatal("nil profiler accessors must be zero")
	}
}

func TestProfilerRing(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerOptions{
		Dir:         dir,
		Interval:    40 * time.Millisecond,
		CPUDuration: 10 * time.Millisecond,
		Keep:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	p.Start() // idempotent
	deadline := time.Now().Add(10 * time.Second)
	for p.Captures() < 4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if p.Captures() < 4 {
		t.Fatalf("only %d captures in 10s", p.Captures())
	}

	names, err := ListProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cpu, heap int
	for _, n := range names {
		if !ValidProfileName(n) {
			t.Fatalf("ring wrote an unservable name %q", n)
		}
		switch {
		case strings.HasPrefix(n, "cpu-"):
			cpu++
		case strings.HasPrefix(n, "heap-"):
			heap++
		}
		st, err := os.Stat(filepath.Join(dir, n))
		if err != nil || st.Size() == 0 {
			t.Fatalf("profile %s unreadable or empty (%v)", n, err)
		}
	}
	// Heap capture is unconditional, so after >= 4 rounds the prune
	// bound must be tight; CPU rounds can be skipped (another profiler
	// running) but never exceed the bound.
	if heap != 2 {
		t.Fatalf("heap ring holds %d files, want Keep=2", heap)
	}
	if cpu > 2 {
		t.Fatalf("cpu ring holds %d files, want <= Keep=2", cpu)
	}
	// No temp files left behind.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	// ListProfiles is ascending (capture order by construction).
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("ListProfiles out of order: %q before %q", names[i-1], names[i])
		}
	}
}
