package obs

// Continuous profiling: a background collector that periodically
// captures CPU and heap profiles into a bounded on-disk ring, so the
// operator always has the last N intervals of evidence when a latency
// regression is noticed after the fact. Files are plain pprof
// protos — `go tool pprof <file>` works directly, and the server
// serves the ring at /debug/profiles/.
//
// The CPU capture uses the process-wide profiler, so it coexists with
// an operator-requested /debug/pprof/profile by yielding: if the
// profiler is already running, the interval's CPU capture is skipped
// (counted, logged at debug) and heap capture proceeds.

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ProfilerOptions configure a Profiler.
type ProfilerOptions struct {
	// Dir is where profile files land; it is created if missing.
	Dir string
	// Interval is the capture period (default DefaultProfileInterval).
	Interval time.Duration
	// CPUDuration is how long each interval's CPU profile runs
	// (default: Interval/2 capped at 10s).
	CPUDuration time.Duration
	// Keep bounds the on-disk ring per profile kind (default
	// DefaultProfileKeep); older files are deleted.
	Keep int
	// Log receives capture failures; nil discards.
	Log *slog.Logger
}

// Defaults for ProfilerOptions.
const (
	DefaultProfileInterval = time.Minute
	DefaultProfileKeep     = 16
)

// Profiler is the background collector. Build with NewProfiler, call
// Start, and Stop on shutdown. Nil-safe: a nil *Profiler ignores
// Start/Stop.
type Profiler struct {
	dir    string
	ival   time.Duration
	cpuDur time.Duration
	keep   int
	log    *slog.Logger

	captures atomic.Int64
	skipped  atomic.Int64

	started  atomic.Bool
	stopOnce sync.Once
	quit     chan struct{}
	done     chan struct{}
}

// NewProfiler builds a collector (no goroutine yet). Empty Dir
// returns nil: profiling disabled.
func NewProfiler(opt ProfilerOptions) (*Profiler, error) {
	if opt.Dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	p := &Profiler{
		dir:    opt.Dir,
		ival:   opt.Interval,
		cpuDur: opt.CPUDuration,
		keep:   opt.Keep,
		log:    opt.Log,
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if p.ival <= 0 {
		p.ival = DefaultProfileInterval
	}
	if p.cpuDur <= 0 {
		p.cpuDur = p.ival / 2
		if p.cpuDur > 10*time.Second {
			p.cpuDur = 10 * time.Second
		}
	}
	if p.cpuDur > p.ival {
		p.cpuDur = p.ival
	}
	if p.keep <= 0 {
		p.keep = DefaultProfileKeep
	}
	if p.log == nil {
		p.log = slog.New(discardHandler{})
	}
	return p, nil
}

// Dir returns the profile directory ("" on nil).
func (p *Profiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.dir
}

// Captures returns how many capture rounds completed (tests, smoke).
func (p *Profiler) Captures() int64 {
	if p == nil {
		return 0
	}
	return p.captures.Load()
}

// Start launches the capture loop. Idempotent; no-op on nil.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	if p.started.CompareAndSwap(false, true) {
		go p.loop()
	}
}

// Stop halts the loop, interrupting an in-flight CPU capture, and
// waits it out. Safe to call more than once; no-op on nil or when
// Start never ran.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.quit) })
	if p.started.Load() {
		<-p.done
	}
}

func (p *Profiler) loop() {
	defer close(p.done)
	tick := time.NewTicker(p.ival)
	defer tick.Stop()
	// First capture immediately: a daemon that crashes within the
	// first interval should still leave evidence behind.
	p.captureOnce()
	for {
		select {
		case <-p.quit:
			return
		case <-tick.C:
			p.captureOnce()
		}
	}
}

// stamp names files so lexicographic order is capture order.
func (p *Profiler) stamp() string {
	return time.Now().UTC().Format("20060102T150405.000000000")
}

func (p *Profiler) captureOnce() {
	ts := p.stamp()
	if err := p.captureCPU(ts); err != nil {
		p.skipped.Add(1)
		p.log.Debug("obs: cpu profile capture skipped", "err", err)
	}
	if err := p.captureHeap(ts); err != nil {
		p.log.Warn("obs: heap profile capture failed", "err", err)
	}
	p.captures.Add(1)
	p.prune("cpu-")
	p.prune("heap-")
}

func (p *Profiler) captureCPU(ts string) error {
	final := filepath.Join(p.dir, "cpu-"+ts+".pprof")
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile (operator /debug/pprof/profile) is
		// running; yield this interval.
		f.Close()
		os.Remove(tmp)
		return err
	}
	select {
	case <-time.After(p.cpuDur):
	case <-p.quit:
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, final)
}

func (p *Profiler) captureHeap(ts string) error {
	final := filepath.Join(p.dir, "heap-"+ts+".pprof")
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, final)
}

// prune enforces the per-kind ring bound.
func (p *Profiler) prune(prefix string) {
	names, err := ListProfiles(p.dir)
	if err != nil {
		return
	}
	var kind []string
	for _, n := range names {
		if strings.HasPrefix(n, prefix) {
			kind = append(kind, n)
		}
	}
	// ListProfiles sorts ascending and the stamp is lexicographic, so
	// the oldest files lead.
	for len(kind) > p.keep {
		os.Remove(filepath.Join(p.dir, kind[0]))
		kind = kind[1:]
	}
}

// profileName matches exactly the files the collector writes —
// the /debug/profiles/ handler refuses anything else, so the ring
// directory can never be used to read arbitrary paths.
var profileName = regexp.MustCompile(`^(cpu|heap)-[0-9T.]+\.pprof$`)

// ValidProfileName reports whether name is a servable ring file name.
func ValidProfileName(name string) bool { return profileName.MatchString(name) }

// ListProfiles returns the ring's file names, oldest first.
func ListProfiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && ValidProfileName(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
