package obs

import "sync"

// Ring is a bounded, mutex-guarded buffer of the most recent finished
// traces — the storage behind GET /debug/traces. Old entries are
// overwritten in place; memory is bounded by capacity regardless of
// query volume.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceData
	next int // index of the slot the next Add writes
	n    int // number of live entries (≤ len(buf))
}

// NewRing allocates a ring holding up to capacity traces.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]TraceData, capacity)}
}

// Add files a finished trace, evicting the oldest when full. No-op on
// a nil ring.
func (r *Ring) Add(td TraceData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = td
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Annotate attaches key/value attributes to an already-filed trace,
// located by ID (newest match wins). It exists for outcomes that
// arrive after the trace is finished and published — an answer audit
// completes asynchronously, seconds after the response it re-checked
// shipped. Snapshot hands out the Attrs map by reference, so the map
// is replaced copy-on-write rather than mutated: readers holding an
// old snapshot keep a consistent view. Reports whether the trace was
// still buffered; a false return means the ring already evicted it
// (the outcome is not lost — it also lands in the audit counters).
// No-op on a nil ring or with an empty id.
func (r *Ring) Annotate(id string, kvs ...any) bool {
	if r == nil || id == "" || len(kvs) == 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 1; i <= r.n; i++ {
		slot := (r.next - i + len(r.buf)) % len(r.buf)
		if r.buf[slot].ID != id {
			continue
		}
		attrs := make(map[string]any, len(r.buf[slot].Attrs)+len(kvs)/2)
		for k, v := range r.buf[slot].Attrs {
			attrs[k] = v
		}
		for j := 0; j+1 < len(kvs); j += 2 {
			if k, ok := kvs[j].(string); ok {
				attrs[k] = kvs[j+1]
			}
		}
		r.buf[slot].Attrs = attrs
		return true
	}
	return false
}

// Snapshot returns the buffered traces newest-first.
func (r *Ring) Snapshot() []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceData, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len reports the number of buffered traces.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
