package obs

import "sync"

// Ring is a bounded, mutex-guarded buffer of the most recent finished
// traces — the storage behind GET /debug/traces. Old entries are
// overwritten in place; memory is bounded by capacity regardless of
// query volume.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceData
	next int // index of the slot the next Add writes
	n    int // number of live entries (≤ len(buf))
}

// NewRing allocates a ring holding up to capacity traces.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]TraceData, capacity)}
}

// Add files a finished trace, evicting the oldest when full. No-op on
// a nil ring.
func (r *Ring) Add(td TraceData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = td
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered traces newest-first.
func (r *Ring) Snapshot() []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceData, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len reports the number of buffered traces.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
