//go:build linux

package obs

import "syscall"

// threadCPU returns the calling OS thread's consumed CPU time
// (user + system) in nanoseconds. Only attributable to the caller's
// work while the goroutine is locked to its thread (Accountant.Begin
// does that).
func threadCPU() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_THREAD, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}

// HaveThreadCPU reports whether per-thread CPU clocks are available on
// this platform; when false the accountant's cpu_seconds degrade to
// wall time.
const HaveThreadCPU = true
