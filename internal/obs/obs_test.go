package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestIDsUnique(t *testing.T) {
	const workers, per = 8, 200
	seen := make(map[string]bool, workers*per)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, NextRequestID())
			}
			mu.Lock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate request id %q", id)
				}
				seen[id] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("got %d unique ids, want %d", len(seen), workers*per)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("RequestID on bare context = %q, want empty", got)
	}
	ctx = WithRequestID(ctx, "abc-1")
	if got := RequestID(ctx); got != "abc-1" {
		t.Fatalf("RequestID = %q, want abc-1", got)
	}
}

func TestTraceSpansAndAttrs(t *testing.T) {
	tr := NewTrace("t1")
	end := tr.StartSpan("decode")
	time.Sleep(time.Millisecond)
	end()
	tr.Annotate("cache", "miss")
	tr.Annotate("batch_size", 3)
	start := time.Now()
	time.Sleep(time.Millisecond)
	tr.SpanSince("exec", start)
	td := tr.Finish()
	if td.ID != "t1" {
		t.Fatalf("id = %q", td.ID)
	}
	if len(td.Spans) != 2 || td.Spans[0].Name != "decode" || td.Spans[1].Name != "exec" {
		t.Fatalf("spans = %+v", td.Spans)
	}
	if td.Spans[1].StartUS < td.Spans[0].StartUS {
		t.Fatal("spans not ordered by start offset")
	}
	var sum float64
	for _, s := range td.Spans {
		if s.DurUS <= 0 {
			t.Fatalf("span %s has non-positive duration", s.Name)
		}
		sum += s.DurUS
	}
	if sum > td.TotalUS {
		t.Fatalf("span sum %.1fus exceeds total %.1fus", sum, td.TotalUS)
	}
	if td.Attrs["cache"] != "miss" || td.Attrs["batch_size"] != 3 {
		t.Fatalf("attrs = %+v", td.Attrs)
	}
	if !tr.HasSpan("exec") || tr.HasSpan("nope") {
		t.Fatal("HasSpan misreports")
	}
	if s := td.SpanSummary(); !strings.Contains(s, "decode=") || !strings.Contains(s, "exec=") {
		t.Fatalf("SpanSummary = %q", s)
	}
}

func TestNilTraceIsFree(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.SpanSince("y", time.Now())
	tr.SpanDur("z", time.Now(), time.Millisecond)
	tr.SpanEnd("w", time.Millisecond)
	tr.Annotate("k", 1)
	if tr.HasSpan("x") || tr.ID() != "" {
		t.Fatal("nil trace reports state")
	}
	if td := tr.Finish(); len(td.Spans) != 0 {
		t.Fatal("nil trace produced spans")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare context = %v", got)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("rt")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context round trip")
	}
}

func TestRingEvictionAndOrder(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(TraceData{ID: string(rune('a' + i))})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	snap := r.Snapshot()
	want := []string{"e", "d", "c"} // newest first, a and b evicted
	for i, td := range snap {
		if td.ID != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, td.ID, want[i])
		}
	}
	var nilRing *Ring
	nilRing.Add(TraceData{})
	if nilRing.Len() != 0 || nilRing.Snapshot() != nil {
		t.Fatal("nil ring reports state")
	}
}

func TestEventsCounting(t *testing.T) {
	e := NewEvents()
	e.Count("build_ready")
	e.Count("build_ready")
	e.Count("snapshot_written")
	if e.Get("build_ready") != 2 || e.Get("snapshot_written") != 1 || e.Get("absent") != 0 {
		t.Fatal("counts wrong")
	}
	snap := e.Snapshot()
	if len(snap) != 2 || snap[0].Name != "build_ready" || snap[1].Name != "snapshot_written" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	var nilE *Events
	nilE.Count("x")
	if nilE.Get("x") != 0 || nilE.Snapshot() != nil {
		t.Fatal("nil events reports state")
	}
}

func TestSamplerEveryN(t *testing.T) {
	o := New(Options{SampleEvery: 4})
	hits := 0
	for i := 0; i < 40; i++ {
		if o.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("sampled %d of 40 with 1-in-4, want 10", hits)
	}
	off := New(Options{})
	for i := 0; i < 10; i++ {
		if off.Sample() {
			t.Fatal("sampling off but Sample returned true")
		}
	}
}

func TestSlowQueryThresholdAndLimit(t *testing.T) {
	o := New(Options{SlowQuery: 10 * time.Millisecond, SlowQueryPerMinute: 3})
	if o.SlowQuery(5 * time.Millisecond) {
		t.Fatal("below threshold logged as slow")
	}
	allowed := 0
	for i := 0; i < 10; i++ {
		if o.SlowQuery(20 * time.Millisecond) {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("rate limit let %d through, want 3", allowed)
	}
	off := New(Options{})
	if off.SlowQuery(time.Hour) {
		t.Fatal("slow-query log disabled but fired")
	}
}

func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	o.Event("x")
	o.EventError("y", context.Canceled)
	o.Publish(TraceData{})
	if o.Sample() || o.SlowQuery(time.Hour) {
		t.Fatal("nil observer is live")
	}
	if o.Log() == nil {
		t.Fatal("nil observer returned nil logger")
	}
	o.Log().Info("must not panic")
	if o.Events() != nil || o.Traces() != nil {
		t.Fatal("nil observer returned sinks")
	}
}

func TestObserverEventLogsAndCounts(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	o := New(Options{Logger: log})
	o.Event("build_ready", "graph", "g1", "build_ms", 42)
	if o.Events().Get("build_ready") != 1 {
		t.Fatal("event not counted")
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if rec["msg"] != "build_ready" || rec["graph"] != "g1" {
		t.Fatalf("log record = %v", rec)
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown")
	if strings.Contains(buf.String(), "hidden") || !strings.Contains(buf.String(), "shown") {
		t.Fatalf("level filtering broken: %q", buf.String())
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
	if log, err := NewLogger(&buf, "", ""); err != nil || log == nil {
		t.Fatal("defaults rejected")
	}
}

func TestReadRuntime(t *testing.T) {
	rs := ReadRuntime()
	if rs.Goroutines < 1 {
		t.Fatalf("goroutines = %d", rs.Goroutines)
	}
	if rs.HeapAlloc == 0 || rs.HeapSys == 0 {
		t.Fatal("heap stats empty")
	}
	if rs.SchedLatP99 < rs.SchedLatP50 {
		t.Fatalf("quantiles inverted: p50=%v p99=%v", rs.SchedLatP50, rs.SchedLatP99)
	}
}

func TestBuildInfo(t *testing.T) {
	bi := Build()
	if bi.GoVersion == "" || bi.Revision == "" {
		t.Fatalf("build info incomplete: %+v", bi)
	}
}
