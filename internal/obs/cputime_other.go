//go:build !linux

package obs

// threadCPU falls back to the wall clock on platforms without a
// per-thread CPU clock in the stdlib syscall surface: the accountant's
// cpu_seconds then over-report blocked time but remain monotone and
// comparable across graphs.
func threadCPU() int64 { return nowNanos() }

// HaveThreadCPU reports whether per-thread CPU clocks are available on
// this platform.
const HaveThreadCPU = false
