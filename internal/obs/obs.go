// Package obs is the observability layer for the serving stack:
// structured logging (stdlib log/slog only — no new dependencies),
// request-scoped traces carried through context.Context, lifecycle
// event counters that feed /metrics, a bounded ring of recent traces
// behind GET /debug/traces, and a rate-limited slow-query log.
//
// Everything here is designed to cost nothing when nobody is looking:
// the *Trace carried in a context is nil for untraced requests and
// every method on it is nil-safe, so the hot path pays one pointer
// check per annotation instead of a branch per subsystem. The
// Observer itself is likewise nil-safe so library users of
// internal/server need no wiring at all.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ridPrefix makes request IDs unique across daemon restarts so traces
// from two lives of the same process never collide in downstream log
// storage. The counter alone is unique within a life.
var (
	ridPrefix  = func() string { var b [4]byte; _, _ = rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	ridCounter atomic.Uint64
)

// NextRequestID mints a process-unique request ID. IDs are short
// (hex prefix + decimal counter) because they ride on every response
// header and every log record.
func NextRequestID() string {
	return fmt.Sprintf("%s-%d", ridPrefix, ridCounter.Add(1))
}

type ridKey struct{}

// WithRequestID stamps the request ID into the context at the HTTP
// edge; every layer below reads it back with RequestID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID returns the request ID minted at the edge, or "" when the
// context never passed through the edge middleware (library callers,
// tests).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// Options configures an Observer. The zero value is a quiet default:
// logs are discarded, the trace ring holds DefaultRingSize entries,
// server-side sampling is off, and the slow-query log is off.
type Options struct {
	// Logger receives event and slow-query records; nil discards.
	Logger *slog.Logger
	// TraceRing is the capacity of the recent-trace ring; 0 means
	// DefaultRingSize, negative disables the ring.
	TraceRing int
	// SampleEvery enables server-side trace sampling: every Nth
	// query is traced even when the client did not ask. 0 disables.
	SampleEvery int
	// SlowQuery is the latency threshold above which a query is
	// logged as slow; 0 disables the slow-query log.
	SlowQuery time.Duration
	// SlowQueryPerMinute rate-limits the slow-query log; 0 means
	// DefaultSlowPerMinute.
	SlowQueryPerMinute int
}

// DefaultRingSize is the recent-trace ring capacity when Options
// leaves it unset.
const DefaultRingSize = 256

// DefaultSlowPerMinute bounds slow-query log volume when Options
// leaves the rate unset.
const DefaultSlowPerMinute = 60

// Observer bundles the observability sinks one server instance shares
// across its registry, executors, and HTTP handlers. A nil *Observer
// is valid and inert.
type Observer struct {
	log     *slog.Logger
	events  *Events
	traces  *Ring
	acct    *Accountant
	sampler *sampler
	slow    time.Duration
	slowLim *limiter
}

// New builds an Observer from Options (see the Options field docs for
// zero-value behavior).
func New(opt Options) *Observer {
	o := &Observer{
		log:    opt.Logger,
		events: NewEvents(),
		acct:   NewAccountant(),
		slow:   opt.SlowQuery,
	}
	if o.log == nil {
		o.log = slog.New(discardHandler{})
	}
	ring := opt.TraceRing
	if ring == 0 {
		ring = DefaultRingSize
	}
	if ring > 0 {
		o.traces = NewRing(ring)
	}
	if opt.SampleEvery > 0 {
		o.sampler = &sampler{n: uint64(opt.SampleEvery)}
	}
	if o.slow > 0 {
		perMin := opt.SlowQueryPerMinute
		if perMin <= 0 {
			perMin = DefaultSlowPerMinute
		}
		o.slowLim = newLimiter(perMin)
	}
	return o
}

// Log returns the structured logger; never nil, even on a nil
// Observer (it degrades to a discard logger).
func (o *Observer) Log() *slog.Logger {
	if o == nil || o.log == nil {
		return slog.New(discardHandler{})
	}
	return o.log
}

// Events returns the lifecycle event counters, or nil on a nil
// Observer (Events methods are themselves nil-safe).
func (o *Observer) Events() *Events {
	if o == nil {
		return nil
	}
	return o.events
}

// Traces returns the recent-trace ring, or nil when disabled (Ring
// methods are nil-safe).
func (o *Observer) Traces() *Ring {
	if o == nil {
		return nil
	}
	return o.traces
}

// Account returns the per-graph resource accountant, or nil on a nil
// Observer (Accountant methods are themselves nil-safe).
func (o *Observer) Account() *Accountant {
	if o == nil {
		return nil
	}
	return o.acct
}

// Sample reports whether server-side sampling elects the current
// query for tracing. False when sampling is off.
func (o *Observer) Sample() bool {
	if o == nil || o.sampler == nil {
		return false
	}
	return o.sampler.hit()
}

// SlowQuery reports whether a query of the given latency should be
// logged as slow: above the configured threshold and within the
// per-minute rate limit. The rate limit only spends a token when the
// threshold is crossed, so fast queries never touch the limiter.
func (o *Observer) SlowQuery(d time.Duration) bool {
	if o == nil || o.slow <= 0 || d < o.slow {
		return false
	}
	return o.slowLim.allow()
}

// Event counts a lifecycle event into /metrics and logs it at Info
// with the given attributes.
func (o *Observer) Event(name string, args ...any) {
	if o == nil {
		return
	}
	o.events.Count(name)
	o.log.Info(name, args...)
}

// EventError counts a failure event and logs it at Error with the
// underlying cause attached.
func (o *Observer) EventError(name string, err error, args ...any) {
	if o == nil {
		return
	}
	o.events.Count(name)
	o.log.Error(name, append(args, slog.Any("err", err))...)
}

// Publish finishes nothing — the caller owns Finish — but files a
// completed trace into the recent-trace ring.
func (o *Observer) Publish(td TraceData) {
	if o == nil {
		return
	}
	o.traces.Add(td)
}

// sampler elects every nth call. A plain atomic counter: cheap enough
// to sit on the query hot path.
type sampler struct {
	n uint64
	c atomic.Uint64
}

func (s *sampler) hit() bool { return s.c.Add(1)%s.n == 0 }

// limiter is a token bucket refilled at perMinute tokens/minute with
// burst capacity equal to one minute's allowance.
type limiter struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	rate   float64 // tokens per second
	last   time.Time
}

func newLimiter(perMinute int) *limiter {
	m := float64(perMinute)
	return &limiter{tokens: m, max: m, rate: m / 60, last: time.Now()}
}

func (l *limiter) allow() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.max {
		l.tokens = l.max
	}
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// NewLogger builds a slog.Logger writing to w in the given format
// ("text" or "json") at the given level ("debug", "info", "warn",
// "error"). These are the -log-format / -log-level flag values.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

// discardHandler drops every record without formatting it. slog's
// built-in handlers still pay for attribute resolution even below
// their level, so the quiet default uses this instead.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
