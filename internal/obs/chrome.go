package obs

// Chrome trace-event export: /debug/traces?format=chrome renders the
// recent-trace ring as the JSON object format chrome://tracing,
// Perfetto, and speedscope all load, turning the span breakdowns into
// a browsable timeline. Each request trace becomes one synthetic
// thread (tid), named after its request id, holding one complete "X"
// event per span plus an enclosing "total" event carrying the trace's
// attributes; timestamps are absolute microseconds since the Unix
// epoch, so traces from one daemon line up on a shared axis.

import "encoding/json"

// chromeEvent is one trace-event entry. Only the fields the complete
// ("X") and metadata ("M") phases need.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	TS   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// displayTimeUnit hints viewers at microsecond granularity.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// ChromeTrace renders the traces (as returned by Ring.Snapshot,
// newest first — order does not matter to viewers) as a Chrome
// trace-event JSON document.
func ChromeTrace(traces []TraceData) ([]byte, error) {
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for i, td := range traces {
		tid := i + 1
		base := float64(td.Start.UnixNano()) / 1e3
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"name": td.ID},
		})
		args := make(map[string]any, len(td.Attrs)+1)
		for k, v := range td.Attrs {
			args[k] = v
		}
		args["id"] = td.ID
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "total",
			Ph:   "X",
			Pid:  1,
			Tid:  tid,
			TS:   base,
			Dur:  td.TotalUS,
			Args: args,
		})
		for _, sp := range td.Spans {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Pid:  1,
				Tid:  tid,
				TS:   base + sp.StartUS,
				Dur:  sp.DurUS,
			})
		}
	}
	return json.Marshal(doc)
}
