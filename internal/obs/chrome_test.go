package obs

// Chrome trace-event export tests: the document must round-trip as
// JSON with one synthetic thread per trace (metadata name event +
// complete events), absolute-microsecond timestamps, and the trace
// attributes on the enclosing "total" event.

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestChromeTraceExport(t *testing.T) {
	start := time.Unix(1700000000, 500000) // .5ms into the second
	traces := []TraceData{
		{
			ID:      "req-1",
			Start:   start,
			TotalUS: 1500,
			Spans: []Span{
				{Name: "decode", StartUS: 0, DurUS: 100},
				{Name: "exec", StartUS: 100, DurUS: 1400},
			},
			Attrs: map[string]any{"graph": "g1", "cache": "miss"},
		},
		{ID: "req-2", Start: start.Add(time.Millisecond), TotalUS: 42},
	}
	raw, err := ChromeTrace(traces)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// trace 1: thread_name + total + 2 spans; trace 2: thread_name + total.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("events = %d, want 6", len(doc.TraceEvents))
	}

	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "req-1" {
		t.Fatalf("first event = %+v, want thread_name metadata for req-1", meta)
	}
	total := doc.TraceEvents[1]
	if total.Ph != "X" || total.Name != "total" || total.Dur != 1500 {
		t.Fatalf("total event = %+v", total)
	}
	if total.Args["graph"] != "g1" || total.Args["id"] != "req-1" {
		t.Fatalf("total args = %v, want trace attrs + id", total.Args)
	}
	wantTS := float64(start.UnixNano()) / 1e3
	if math.Abs(total.TS-wantTS) > 1 {
		t.Fatalf("total ts = %f, want absolute µs %f", total.TS, wantTS)
	}
	exec := doc.TraceEvents[3]
	if exec.Name != "exec" || math.Abs(exec.TS-(wantTS+100)) > 1 || exec.Dur != 1400 {
		t.Fatalf("exec span = %+v", exec)
	}
	// The two traces must land on distinct synthetic threads.
	if doc.TraceEvents[4].Tid == total.Tid {
		t.Fatal("traces share a tid")
	}

	// Empty input still renders a loadable document.
	raw, err = ChromeTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"traceEvents":[],"displayTimeUnit":"ms"}` {
		t.Fatalf("empty export = %s", raw)
	}
}
