package obs

// Answer-quality auditing: is the oracle telling the truth?
//
// Every dashboard PR 7/9 added watches latency, cost, and traffic —
// none of them would notice the one failure mode that actually
// matters for a distance oracle: silently wrong answers. The Auditor
// closes that gap by shadow-sampling served queries and re-checking
// them against an exact recomputation (bidirectional Dijkstra over
// the patched adjacency, pinned to the generation the answer was
// served at). The observed stretch ratio served/exact is accumulated
// into per-(graph, regime) log-spaced histograms; a ratio outside the
// regime's proven envelope is a correctness alarm — the theorem says
// it cannot happen, so if it does, the build is broken and the
// evidence is preserved.
//
// Design constraints, in order:
//
//   - Auditing must never starve serving. Samples flow through a
//     bounded drop-oldest queue into a small fixed worker pool, and
//     each graph carries a hard CPU budget: cumulative audit thread-CPU
//     may not exceed CPUFrac of the wall time since the graph
//     registered. Over budget → the sample is counted and discarded.
//   - The package cannot import the oracle. Rechecking is injected as
//     a RecheckFunc per graph; a recheck against a generation that a
//     rebuild has since compacted away returns ErrAuditStale and is a
//     counted skip, never a violation.
//   - Everything is nil-safe: a nil *Auditor accepts and drops all
//     calls, so library users and tests pay nothing.

import (
	"errors"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrAuditStale is returned by a RecheckFunc when the pinned
// generation has been compacted away by a rebuild between sampling
// and auditing. The sample is uncheckable — counted as a stale skip,
// never as a violation.
var ErrAuditStale = errors.New("obs: audited generation compacted away")

// RecheckFunc recomputes the exact distance for (s, t) on the graph
// as of generation gen. unreachable reports a disconnected pair (the
// dist value is then meaningless). Implementations are called from
// auditor worker goroutines and must be safe for concurrent use.
type RecheckFunc func(gen uint64, s, t int32) (dist int64, unreachable bool, err error)

// Envelope is the multiplicative answer guarantee for one graph:
// every correctly served distance lies in [Lo·d, Hi·d] of the exact
// distance d. The degrading overlay regime is held to exactness
// (ratio ≡ 1) regardless of the envelope, because its serving path
// *is* the exact search.
type Envelope struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// AuditSample is one served answer queued for shadow re-checking.
type AuditSample struct {
	Graph       string
	S, T        int32
	Answer      int64
	Unreachable bool // the served answer was "disconnected"
	Regime      string
	Gen         uint64
	TraceID     string // non-empty when the request was traced
}

// AuditEvidence preserves one audited query with full context — the
// evidence ring holds the offending queries behind each violation so
// an operator can reproduce the wrong answer after the alarm fires.
type AuditEvidence struct {
	Time              time.Time `json:"time"`
	S                 int32     `json:"s"`
	T                 int32     `json:"t"`
	Gen               uint64    `json:"gen"`
	Regime            string    `json:"regime"`
	Served            int64     `json:"served"`
	Exact             int64     `json:"exact"`
	ServedUnreachable bool      `json:"served_unreachable,omitempty"`
	ExactUnreachable  bool      `json:"exact_unreachable,omitempty"`
	Ratio             float64   `json:"ratio"` // 0 when not meaningfully finite
	TraceID           string    `json:"trace_id,omitempty"`
	Reason            string    `json:"reason,omitempty"`
}

// Violation reasons recorded in evidence and logs.
const (
	ReasonBelowEnvelope      = "below-envelope"
	ReasonAboveEnvelope      = "above-envelope"
	ReasonExactMismatch      = "exact-mismatch"       // degrading regime answered ≠ exact
	ReasonUnreachableMismatch = "unreachable-mismatch" // connectivity disagreement
)

// stretchBounds are the stretch-ratio histogram bucket upper bounds:
// powers of two, geometrically refined toward 1.0 where correct
// answers concentrate (±3% resolution near 1, coarsening to octaves
// at the tails). Symmetric in log space so under- and over-estimates
// are resolved equally.
var stretchBounds = func() []float64 {
	exps := []float64{-1, -0.5, -0.25, -0.125, -0.0625, -0.03125,
		0, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1, 2}
	b := make([]float64, len(exps))
	for i, e := range exps {
		b[i] = math.Pow(2, e)
	}
	return b
}()

// StretchBuckets returns a copy of the histogram bucket upper bounds
// shared by /debug/quality and the /metrics exposition.
func StretchBuckets() []float64 {
	out := make([]float64, len(stretchBounds))
	copy(out, stretchBounds)
	return out
}

func bucketOf(ratio float64) int {
	for i, b := range stretchBounds {
		if ratio <= b {
			return i
		}
	}
	return len(stretchBounds) // overflow bucket
}

// AuditorOptions configure NewAuditor. Zero values pick defaults.
type AuditorOptions struct {
	// SampleEvery audits every Nth served query (deterministic).
	// 0 picks the default; negative disables rate sampling (traced
	// requests are still always audited).
	SampleEvery int
	// CPUFrac caps cumulative per-graph audit CPU at this fraction of
	// wall time since the graph registered. 0 picks the default;
	// negative disables the cap.
	CPUFrac float64
	// Queue bounds the pending-sample channel (drop-oldest beyond).
	Queue int
	// Workers is the recheck goroutine count.
	Workers int
	// Evidence bounds the per-graph violation evidence ring.
	Evidence int

	Log    *slog.Logger
	Events *Events
	Acct   *Accountant // audit CPU metered under op=audit
	Traces *Ring       // audit outcomes annotated onto finished traces
}

// Defaults for AuditorOptions zero values.
const (
	DefaultAuditSample   = 64
	DefaultAuditCPUFrac  = 0.05
	defaultAuditQueue    = 256
	defaultAuditWorkers  = 2
	defaultAuditEvidence = 16
)

// auditRegime accumulates per-(graph, regime) stretch observations.
type auditRegime struct {
	count      int64
	violations int64
	sum        float64
	max        float64
	min        float64
	buckets    []int64 // len(stretchBounds)+1; last is overflow
}

// auditGraph is one registered graph's audit state. Audits are
// low-rate background work, so a single mutex per graph is plenty.
type auditGraph struct {
	mu      sync.Mutex
	env     Envelope
	recheck RecheckFunc
	start   time.Time // budget wall-clock base

	sampled     int64 // accepted into the queue
	audited     int64 // rechecks completed and classified
	dropped     int64 // evicted by drop-oldest (or queue full)
	budgetSkips int64 // discarded: over CPU budget
	staleSkips  int64 // discarded: generation compacted away
	errs        int64 // recheck failed for any other reason
	violations  int64
	cpuNS       int64 // cumulative audit thread-CPU

	regimes  map[string]*auditRegime
	evidence []AuditEvidence // bounded ring of violations
	evNext   int
	evN      int
	worst    *AuditEvidence // largest |log ratio| over ALL audits
	worstDev float64
}

func (g *auditGraph) regime(name string) *auditRegime {
	r := g.regimes[name]
	if r == nil {
		r = &auditRegime{buckets: make([]int64, len(stretchBounds)+1)}
		g.regimes[name] = r
	}
	return r
}

// Auditor continuously re-checks a sample of served answers against
// exact recomputation. Safe for concurrent use; nil is valid and
// inert.
type Auditor struct {
	sampleEvery int
	cpuFrac     float64
	evidenceCap int
	log         *slog.Logger
	events      *Events
	acct        *Accountant
	traces      *Ring

	sampleC atomic.Uint64

	mu     sync.RWMutex
	graphs map[string]*auditGraph

	queue  chan AuditSample
	quit   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// NewAuditor starts an auditor with opts.Workers background recheck
// workers. Close releases them.
func NewAuditor(opts AuditorOptions) *Auditor {
	if opts.SampleEvery == 0 {
		opts.SampleEvery = DefaultAuditSample
	}
	if opts.CPUFrac == 0 {
		opts.CPUFrac = DefaultAuditCPUFrac
	}
	if opts.Queue <= 0 {
		opts.Queue = defaultAuditQueue
	}
	if opts.Workers <= 0 {
		opts.Workers = defaultAuditWorkers
	}
	if opts.Evidence <= 0 {
		opts.Evidence = defaultAuditEvidence
	}
	a := &Auditor{
		sampleEvery: opts.SampleEvery,
		cpuFrac:     opts.CPUFrac,
		evidenceCap: opts.Evidence,
		log:         opts.Log,
		events:      opts.Events,
		acct:        opts.Acct,
		traces:      opts.Traces,
		graphs:      make(map[string]*auditGraph),
		queue:       make(chan AuditSample, opts.Queue),
		quit:        make(chan struct{}),
	}
	a.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go a.worker()
	}
	return a
}

// SampleEvery reports the every-Nth sampling stride (≤ 0 when rate
// sampling is disabled).
func (a *Auditor) SampleEvery() int {
	if a == nil {
		return 0
	}
	return a.sampleEvery
}

// CPUFrac reports the per-graph audit CPU budget fraction (≤ 0 when
// uncapped).
func (a *Auditor) CPUFrac() float64 {
	if a == nil {
		return 0
	}
	return a.cpuFrac
}

// Register installs (or refreshes, preserving counters) a graph's
// exact-recheck hook and answer envelope. Samples for unregistered
// graphs are rejected at Offer.
func (a *Auditor) Register(graph string, env Envelope, recheck RecheckFunc) {
	if a == nil || recheck == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if g := a.graphs[graph]; g != nil {
		g.mu.Lock()
		g.env = env
		g.recheck = recheck
		g.mu.Unlock()
		return
	}
	a.graphs[graph] = &auditGraph{
		env:     env,
		recheck: recheck,
		start:   time.Now(),
		regimes: make(map[string]*auditRegime),
	}
}

// Forget drops a graph's audit state (graph deleted). Queued samples
// for it become no-ops.
func (a *Auditor) Forget(graph string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	delete(a.graphs, graph)
	a.mu.Unlock()
}

// Close stops the workers. Queued samples are abandoned.
func (a *Auditor) Close() {
	if a == nil || a.closed.Swap(true) {
		return
	}
	close(a.quit)
	a.wg.Wait()
}

func (a *Auditor) graph(id string) *auditGraph {
	a.mu.RLock()
	g := a.graphs[id]
	a.mu.RUnlock()
	return g
}

// SampleHit reports whether the next served query falls on the
// deterministic every-Nth sampling grid. Traced requests bypass this
// and are always offered.
func (a *Auditor) SampleHit() bool {
	if a == nil || a.sampleEvery <= 0 {
		return false
	}
	return a.sampleC.Add(1)%uint64(a.sampleEvery) == 0
}

// Offer enqueues a sample for background auditing, evicting the
// oldest queued sample when full (serving latency is never blocked on
// audit capacity). Reports whether the sample was accepted.
func (a *Auditor) Offer(s AuditSample) bool {
	if a == nil || a.closed.Load() {
		return false
	}
	g := a.graph(s.Graph)
	if g == nil {
		return false
	}
	accept := func() {
		g.mu.Lock()
		g.sampled++
		g.mu.Unlock()
	}
	select {
	case a.queue <- s:
		accept()
		return true
	default:
	}
	// Full: pop the oldest (drop attributed to its graph), retry once.
	select {
	case old := <-a.queue:
		if og := a.graph(old.Graph); og != nil {
			og.mu.Lock()
			og.dropped++
			og.mu.Unlock()
		}
	default:
	}
	select {
	case a.queue <- s:
		accept()
		return true
	default:
		g.mu.Lock()
		g.dropped++
		g.mu.Unlock()
		return false
	}
}

func (a *Auditor) worker() {
	defer a.wg.Done()
	for {
		select {
		case <-a.quit:
			return
		case s := <-a.queue:
			a.audit(s)
		}
	}
}

// audit re-checks one sample: budget gate, exact recompute (metered
// as op=audit), envelope classification, histogram/evidence/alarm.
func (a *Auditor) audit(s AuditSample) {
	g := a.graph(s.Graph)
	if g == nil {
		return // graph deleted between sampling and auditing
	}

	g.mu.Lock()
	if a.cpuFrac > 0 {
		elapsed := time.Since(g.start).Nanoseconds()
		if elapsed > 0 && float64(g.cpuNS) > a.cpuFrac*float64(elapsed) {
			g.budgetSkips++
			g.mu.Unlock()
			return
		}
	}
	recheck := g.recheck
	env := g.env
	g.mu.Unlock()

	// The recheck runs thread-locked so its CPU is attributable both
	// to the Accountant cell (op=audit) and to this graph's budget.
	runtime.LockOSThread()
	cs := a.acct.Begin()
	cpu0 := threadCPU()
	exact, exUnreach, err := recheck(s.Gen, s.S, s.T)
	cpu := threadCPU() - cpu0
	a.acct.End(cs, s.Graph, OpAudit, 1, err != nil && !errors.Is(err, ErrAuditStale))
	runtime.UnlockOSThread()

	g.mu.Lock()
	defer g.mu.Unlock()
	if cpu > 0 {
		g.cpuNS += cpu
	}
	if err != nil {
		if errors.Is(err, ErrAuditStale) {
			g.staleSkips++
		} else {
			g.errs++
			if a.log != nil {
				a.log.Warn("audit recheck failed",
					"graph", s.Graph, "s", s.S, "t", s.T,
					"gen", s.Gen, "err", err)
			}
		}
		return
	}
	g.audited++

	// Classify. ratio is only meaningful when both sides agree the
	// pair is reachable (finite); connectivity disagreements are
	// violations with no ratio.
	var ratio float64
	finite := false
	reason := ""
	switch {
	case s.Unreachable && exUnreach:
		ratio, finite = 1, true
	case s.Unreachable != exUnreach:
		reason = ReasonUnreachableMismatch
	case exact == 0:
		if s.Answer == 0 {
			ratio, finite = 1, true
		} else {
			reason = ReasonExactMismatch
		}
	default:
		ratio = float64(s.Answer) / float64(exact)
		finite = true
	}
	if reason == "" && finite && !(s.Unreachable && exUnreach) {
		const slack = 1e-9 // float envelope comparison headroom
		switch {
		case s.Regime == "degrading":
			// The degrading serving path IS the exact search:
			// anything but integer equality is a broken build.
			if s.Answer != exact {
				reason = ReasonExactMismatch
			}
		case ratio < env.Lo-slack:
			reason = ReasonBelowEnvelope
		case ratio > env.Hi+slack:
			reason = ReasonAboveEnvelope
		}
	}

	if finite {
		r := g.regime(s.Regime)
		r.count++
		r.sum += ratio
		if r.count == 1 || ratio > r.max {
			r.max = ratio
		}
		if r.count == 1 || ratio < r.min {
			r.min = ratio
		}
		r.buckets[bucketOf(ratio)]++
		if reason != "" {
			r.violations++
		}
	}

	ev := AuditEvidence{
		Time:              time.Now(),
		S:                 s.S,
		T:                 s.T,
		Gen:               s.Gen,
		Regime:            s.Regime,
		Served:            s.Answer,
		Exact:             exact,
		ServedUnreachable: s.Unreachable,
		ExactUnreachable:  exUnreach,
		TraceID:           s.TraceID,
		Reason:            reason,
	}
	if finite {
		ev.Ratio = ratio
	}

	// Worst offender: the audit whose ratio strays farthest from 1 in
	// log space, violation or not. Ratio-0 served answers (zero for a
	// reachable pair) produce a -Inf deviation sentinel that wins; the
	// stored evidence stays finite for JSON.
	if finite {
		dev := math.Abs(math.Log2(ratio))
		if ratio == 0 {
			dev = math.Inf(1)
		}
		if g.worst == nil || dev > g.worstDev {
			evCopy := ev
			g.worst = &evCopy
			g.worstDev = dev
		}
	} else if g.worst == nil {
		evCopy := ev
		g.worst = &evCopy
		g.worstDev = math.Inf(1)
	}

	if reason == "" {
		if s.TraceID != "" {
			a.traces.Annotate(s.TraceID, "audit", "ok", "audit_ratio", ev.Ratio)
		}
		return
	}

	// Correctness alarm: the theorem says this cannot happen.
	g.violations++
	if len(g.evidence) < a.evidenceCap {
		g.evidence = append(g.evidence, ev)
		g.evN = len(g.evidence)
	} else {
		g.evidence[g.evNext] = ev
	}
	g.evNext = (g.evNext + 1) % a.evidenceCap
	a.events.Count("quality_violation")
	if a.log != nil {
		a.log.Error("answer-quality violation: served distance outside envelope",
			"graph", s.Graph, "reason", reason,
			"s", s.S, "t", s.T, "gen", s.Gen, "regime", s.Regime,
			"served", s.Answer, "exact", exact, "ratio", ev.Ratio,
			"envelope_lo", env.Lo, "envelope_hi", env.Hi,
			"trace", s.TraceID)
	}
	if s.TraceID != "" {
		a.traces.Annotate(s.TraceID, "audit", "violation",
			"audit_ratio", ev.Ratio, "audit_reason", reason)
	}
}

// AuditRegimeSnapshot is one (graph, regime) histogram row.
type AuditRegimeSnapshot struct {
	Regime     string  `json:"regime"`
	Count      int64   `json:"count"`
	Violations int64   `json:"violations"`
	MeanRatio  float64 `json:"mean_ratio"`
	MinRatio   float64 `json:"min_ratio"`
	MaxRatio   float64 `json:"max_ratio"`
	SumRatio   float64 `json:"sum_ratio"`
	// Buckets aligns with StretchBuckets(); the extra final element
	// counts ratios above the last bound.
	Buckets []int64 `json:"buckets"`
}

// AuditGraphSnapshot is one graph's full audit state.
type AuditGraphSnapshot struct {
	Graph       string                `json:"graph"`
	Envelope    Envelope              `json:"envelope"`
	Sampled     int64                 `json:"sampled"`
	Audited     int64                 `json:"audited"`
	Dropped     int64                 `json:"dropped"`
	BudgetSkips int64                 `json:"budget_skips"`
	StaleSkips  int64                 `json:"stale_skips"`
	Errors      int64                 `json:"errors"`
	Violations  int64                 `json:"violations"`
	AuditCPUNS  int64                 `json:"audit_cpu_ns"`
	Regimes     []AuditRegimeSnapshot `json:"regimes"`
	Evidence    []AuditEvidence       `json:"evidence"`
	Worst       *AuditEvidence        `json:"worst,omitempty"`
}

func (g *auditGraph) snapshot(name string) AuditGraphSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := AuditGraphSnapshot{
		Graph:       name,
		Envelope:    g.env,
		Sampled:     g.sampled,
		Audited:     g.audited,
		Dropped:     g.dropped,
		BudgetSkips: g.budgetSkips,
		StaleSkips:  g.staleSkips,
		Errors:      g.errs,
		Violations:  g.violations,
		AuditCPUNS:  g.cpuNS,
		Regimes:     make([]AuditRegimeSnapshot, 0, len(g.regimes)),
		Evidence:    make([]AuditEvidence, 0, g.evN),
	}
	for name, r := range g.regimes {
		rs := AuditRegimeSnapshot{
			Regime:     name,
			Count:      r.count,
			Violations: r.violations,
			MinRatio:   r.min,
			MaxRatio:   r.max,
			SumRatio:   r.sum,
			Buckets:    append([]int64(nil), r.buckets...),
		}
		if r.count > 0 {
			rs.MeanRatio = r.sum / float64(r.count)
		}
		snap.Regimes = append(snap.Regimes, rs)
	}
	sort.Slice(snap.Regimes, func(i, j int) bool {
		return snap.Regimes[i].Regime < snap.Regimes[j].Regime
	})
	// Evidence newest-first, like the trace ring.
	for i := 1; i <= g.evN; i++ {
		snap.Evidence = append(snap.Evidence,
			g.evidence[(g.evNext-i+len(g.evidence))%len(g.evidence)])
	}
	if g.worst != nil {
		w := *g.worst
		snap.Worst = &w
	}
	return snap
}

// Snapshot returns every registered graph's audit state, sorted by
// graph id.
func (a *Auditor) Snapshot() []AuditGraphSnapshot {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	names := make([]string, 0, len(a.graphs))
	for name := range a.graphs {
		names = append(names, name)
	}
	a.mu.RUnlock()
	sort.Strings(names)
	out := make([]AuditGraphSnapshot, 0, len(names))
	for _, name := range names {
		if g := a.graph(name); g != nil {
			out = append(out, g.snapshot(name))
		}
	}
	return out
}

// GraphSnapshot returns one graph's audit state.
func (a *Auditor) GraphSnapshot(graph string) (AuditGraphSnapshot, bool) {
	if a == nil {
		return AuditGraphSnapshot{}, false
	}
	g := a.graph(graph)
	if g == nil {
		return AuditGraphSnapshot{}, false
	}
	return g.snapshot(graph), true
}
