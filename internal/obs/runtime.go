package obs

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
)

// RuntimeStats is one sample of the Go runtime's health, taken per
// /metrics scrape: heap footprint, GC activity, goroutine count, and
// scheduler latency quantiles (how long runnable goroutines waited
// for a thread — the first thing to blow up when the build pool
// starves the query path).
type RuntimeStats struct {
	Goroutines   int64
	HeapAlloc    uint64  // bytes in live heap objects
	HeapSys      uint64  // bytes obtained from the OS for the heap
	GCCycles     uint64  // completed GC cycles
	GCPauseTotal float64 // seconds, cumulative stop-the-world
	SchedLatP50  float64 // seconds
	SchedLatP90  float64
	SchedLatP99  float64
}

// ReadRuntime samples the runtime. Scheduler latency comes from
// runtime/metrics (the only source); heap and GC pause totals come
// from ReadMemStats, which is exact and cheap at scrape frequency.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs := RuntimeStats{
		Goroutines:   int64(runtime.NumGoroutine()),
		HeapAlloc:    ms.HeapAlloc,
		HeapSys:      ms.HeapSys,
		GCCycles:     uint64(ms.NumGC),
		GCPauseTotal: float64(ms.PauseTotalNs) / 1e9,
	}
	samples := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindFloat64Histogram {
		if h := samples[0].Value.Float64Histogram(); h != nil {
			rs.SchedLatP50 = histQuantile(h, 0.50)
			rs.SchedLatP90 = histQuantile(h, 0.90)
			rs.SchedLatP99 = histQuantile(h, 0.99)
		}
	}
	return rs
}

// histQuantile estimates a quantile from a runtime/metrics histogram
// by walking cumulative bucket counts and reporting the bucket's
// upper boundary (lower for the open-ended last bucket).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Buckets[i+1] is the bucket's upper bound; the
			// final bucket is open-ended, so fall back to its
			// lower bound.
			if i+1 < len(h.Buckets) && !isInf(h.Buckets[i+1]) {
				return h.Buckets[i+1]
			}
			return h.Buckets[i]
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }

// BuildInfo identifies the running binary for the
// spanhop_build_info{go_version,revision} gauge.
type BuildInfo struct {
	GoVersion string
	Revision  string
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's Go version and VCS revision (or
// "unknown" outside a VCS-stamped build — `go test` binaries,
// plain `go build` of a dirty tree). Cached after the first call.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version(), Revision: "unknown"}
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					rev := s.Value
					if len(rev) > 12 {
						rev = rev[:12]
					}
					buildInfo.Revision = rev
				}
			}
		}
	})
	return buildInfo
}
