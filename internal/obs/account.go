package obs

// Per-graph resource accounting: who is eating the machine?
//
// The Accountant keeps cumulative (CPU-time, allocation, wall-time)
// counters per (graph, operation) pair, sampled as deltas around the
// executor's batch work, oracle builds, and overlay rebuilds. It is
// the cheap always-on complement to pprof labels: the counters answer
// "graph A has burned 40 CPU-seconds since boot" from /metrics without
// capturing a profile, while the labels attribute individual profile
// samples exactly (including pool fan-out the counters cannot see).
//
// Measurement semantics, deliberately spelled out because they are
// approximations:
//
//   - CPU time is the executing OS thread's user+system time
//     (RUSAGE_THREAD on Linux; wall time elsewhere, see cputime_*.go).
//     The goroutine is locked to its thread for the duration of the
//     section, so the delta is exactly the section's on-thread burn.
//     Work fanned out to pooled helper goroutines is NOT included —
//     that share is visible in CPU profiles via the pprof labels the
//     executor threads through internal/exec. With the default
//     sequential build cap the counters are exact for builds.
//   - Allocation deltas read the process-wide heap allocation
//     counters (runtime/metrics; Go has no per-goroutine counters).
//     Concurrent measured sections therefore bleed into each other:
//     treat per-graph allocs as an attribution of observed allocation
//     pressure, exact when one graph's work dominates an interval.
//
// All methods are nil-safe so library users pay nothing.

import (
	"runtime"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

func nowNanos() int64 { return time.Now().UnixNano() }

// Operation names the accountant and workload analytics use. Shared
// constants so /metrics, /stats, and /debug/workload agree.
const (
	OpQuery   = "query"   // coalesced micro-batch execution
	OpBatch   = "batch"   // explicit batch API execution
	OpMutate  = "mutate"  // edge-mutation batch application
	OpBuild   = "build"   // initial oracle construction
	OpRebuild = "rebuild" // overlay journal fold
	OpAudit   = "audit"   // answer-quality shadow re-check
)

// costKey identifies one counter cell.
type costKey struct{ graph, op string }

// costCell is one (graph, op) accumulator. Plain atomics: End touches
// it outside any lock.
type costCell struct {
	cpuNS   atomic.Int64
	wallNS  atomic.Int64
	allocs  atomic.Uint64
	bytes   atomic.Uint64
	count   atomic.Int64
	errors  atomic.Int64
	samples atomic.Int64
}

// Accountant accumulates per-(graph, op) resource costs. Safe for
// concurrent use; a nil *Accountant is valid and inert.
type Accountant struct {
	mu sync.RWMutex
	m  map[costKey]*costCell
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{m: make(map[costKey]*costCell)}
}

func (a *Accountant) cell(graph, op string) *costCell {
	k := costKey{graph, op}
	a.mu.RLock()
	c := a.m[k]
	a.mu.RUnlock()
	if c != nil {
		return c
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if c = a.m[k]; c == nil {
		c = &costCell{}
		a.m[k] = c
	}
	return c
}

// CostSample is an open measurement section returned by Begin. The
// zero value (from a nil Accountant) is inert.
type CostSample struct {
	open    bool
	cpu0    int64
	wall0   int64
	allocs0 uint64
	bytes0  uint64
}

// readAllocs reads the process-wide cumulative heap allocation
// counters (objects, bytes).
func readAllocs() (objs, bytes uint64) {
	s := [2]metrics.Sample{
		{Name: "/gc/heap/allocs:objects"},
		{Name: "/gc/heap/allocs:bytes"},
	}
	metrics.Read(s[:])
	if s[0].Value.Kind() == metrics.KindUint64 {
		objs = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		bytes = s[1].Value.Uint64()
	}
	return objs, bytes
}

// Begin opens a measurement section on the calling goroutine, locking
// it to its OS thread so the thread CPU clock is attributable. Every
// Begin MUST be paired with exactly one End on the same goroutine.
// No-op (and no thread lock) on a nil Accountant.
func (a *Accountant) Begin() CostSample {
	if a == nil {
		return CostSample{}
	}
	runtime.LockOSThread()
	objs, bytes := readAllocs()
	return CostSample{
		open:    true,
		cpu0:    threadCPU(),
		wall0:   nowNanos(),
		allocs0: objs,
		bytes0:  bytes,
	}
}

// End closes a section opened by Begin, attributing the deltas to
// (graph, op). n counts the work units inside the section (queries in
// a batch, 1 for a build); failed reports whether the section's work
// errored.
func (a *Accountant) End(s CostSample, graph, op string, n int, failed bool) {
	if a == nil || !s.open {
		return
	}
	cpu := threadCPU() - s.cpu0
	objs, bytes := readAllocs()
	runtime.UnlockOSThread()
	wall := nowNanos() - s.wall0
	c := a.cell(graph, op)
	if cpu > 0 {
		c.cpuNS.Add(cpu)
	}
	if wall > 0 {
		c.wallNS.Add(wall)
	}
	if d := objs - s.allocs0; objs >= s.allocs0 {
		c.allocs.Add(d)
	}
	if d := bytes - s.bytes0; bytes >= s.bytes0 {
		c.bytes.Add(d)
	}
	c.count.Add(int64(n))
	if failed {
		c.errors.Add(1)
	}
	c.samples.Add(1)
}

// Measure runs f as one accounted section (convenience for builds and
// rebuilds, which are single synchronous units of work).
func (a *Accountant) Measure(graph, op string, f func() error) error {
	s := a.Begin()
	err := f()
	a.End(s, graph, op, 1, err != nil)
	return err
}

// Forget drops every counter for a graph (registry eviction).
func (a *Accountant) Forget(graph string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	for k := range a.m {
		if k.graph == graph {
			delete(a.m, k)
		}
	}
	a.mu.Unlock()
}

// CostSnapshot is one (graph, op) row of the accountant, the JSON
// shape /stats embeds and /metrics flattens into
// spanhop_graph_cpu_seconds_total / spanhop_graph_allocs_total.
type CostSnapshot struct {
	Graph       string  `json:"graph"`
	Op          string  `json:"op"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	Allocs      uint64  `json:"allocs"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors,omitempty"`
	Samples     int64   `json:"samples"`
}

func snapCell(k costKey, c *costCell) CostSnapshot {
	return CostSnapshot{
		Graph:       k.graph,
		Op:          k.op,
		CPUSeconds:  float64(c.cpuNS.Load()) / 1e9,
		WallSeconds: float64(c.wallNS.Load()) / 1e9,
		Allocs:      c.allocs.Load(),
		AllocBytes:  c.bytes.Load(),
		Count:       c.count.Load(),
		Errors:      c.errors.Load(),
		Samples:     c.samples.Load(),
	}
}

// Snapshot returns every row, ordered by (graph, op) so exposition
// output is deterministic. Nil-safe (returns nil).
func (a *Accountant) Snapshot() []CostSnapshot {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	out := make([]CostSnapshot, 0, len(a.m))
	for k, c := range a.m {
		out = append(out, snapCell(k, c))
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Graph != out[j].Graph {
			return out[i].Graph < out[j].Graph
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// GraphSnapshot returns the rows for one graph (the /stats per-graph
// embed), ordered by op.
func (a *Accountant) GraphSnapshot(graph string) []CostSnapshot {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	var out []CostSnapshot
	for k, c := range a.m {
		if k.graph == graph {
			out = append(out, snapCell(k, c))
		}
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}
