package obs

// Workload analytics: who is asking for what, and is the SLO burning?
//
// One Workload per served graph bundles
//
//   - a space-saving heavy-hitter sketch (Metwally, Agrawal, El
//     Abbadi, 2005) over (s, t) query pairs: fixed capacity k, O(log k)
//     per observation, with the classic guarantee that any pair whose
//     true count exceeds N/k is present and every reported count
//     overestimates truth by at most the item's error bound — a bound
//     the sketch reports per entry, so a consumer can tell exact
//     counts (err == 0, the common case for concentrated workloads)
//     from clipped ones;
//   - per-operation RED counters (rate from a cumulative count, errors,
//     duration) for the query/batch/mutate surfaces; and
//   - a latency SLO objective evaluated over rolling burn-rate
//     windows (see SLO).
//
// Everything is mutex- or atomic-guarded and cheap enough for the
// query hot path: one sketch observation is a map probe plus a heap
// fix under one per-graph mutex.

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PairKey packs an (s, t) vertex pair into the sketch's key. Vertex
// ids are int32 in this repository, so the packing is lossless.
func PairKey(s, t int32) uint64 {
	return uint64(uint32(s))<<32 | uint64(uint32(t))
}

// PairFromKey unpacks a PairKey.
func PairFromKey(k uint64) (s, t int32) {
	return int32(uint32(k >> 32)), int32(uint32(k))
}

// tkItem is one monitored counter of the space-saving sketch.
type tkItem struct {
	key   uint64
	count uint64
	// err bounds the overestimate: when this slot was stolen from the
	// current minimum, the new tenant inherits min+1 with err = min.
	// True count is in [count-err, count].
	err uint64
	idx int // heap position
}

// tkHeap is a min-heap on count so eviction finds the minimum in
// O(log k).
type tkHeap []*tkItem

func (h tkHeap) Len() int            { return len(h) }
func (h tkHeap) Less(i, j int) bool  { return h[i].count < h[j].count }
func (h tkHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *tkHeap) Push(x any)         { it := x.(*tkItem); it.idx = len(*h); *h = append(*h, it) }
func (h *tkHeap) Pop() any           { old := *h; it := old[len(old)-1]; *h = old[:len(old)-1]; return it }

// TopK is a space-saving heavy-hitter sketch over uint64 keys.
type TopK struct {
	mu sync.Mutex
	k  int
	m  map[uint64]*tkItem
	h  tkHeap
	n  uint64 // total observations
}

// DefaultTopK is the sketch capacity when unset.
const DefaultTopK = 128

// NewTopK returns a sketch monitoring at most k keys (k <= 0 takes
// DefaultTopK).
func NewTopK(k int) *TopK {
	if k <= 0 {
		k = DefaultTopK
	}
	return &TopK{k: k, m: make(map[uint64]*tkItem, k)}
}

// Observe counts one occurrence of key.
func (t *TopK) Observe(key uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.n++
	if it, ok := t.m[key]; ok {
		it.count++
		heap.Fix(&t.h, it.idx)
		t.mu.Unlock()
		return
	}
	if len(t.h) < t.k {
		it := &tkItem{key: key, count: 1}
		t.m[key] = it
		heap.Push(&t.h, it)
		t.mu.Unlock()
		return
	}
	// Replace the current minimum: the newcomer inherits min+1 and the
	// possibility of having been undercounted by min.
	it := t.h[0]
	delete(t.m, it.key)
	it.err = it.count
	it.count++
	it.key = key
	t.m[key] = it
	heap.Fix(&t.h, it.idx)
	t.mu.Unlock()
}

// TopPair is one reported heavy hitter: true count is within
// [Count-Err, Count].
type TopPair struct {
	S     int32  `json:"s"`
	T     int32  `json:"t"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// Snapshot returns up to k heavy hitters ordered by count descending
// (ties by key for determinism) and the total number of observations.
func (t *TopK) Snapshot(k int) (pairs []TopPair, total uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	items := make([]tkItem, len(t.h))
	for i, it := range t.h {
		items[i] = *it
	}
	total = t.n
	t.mu.Unlock()
	sort.Slice(items, func(i, j int) bool {
		if items[i].count != items[j].count {
			return items[i].count > items[j].count
		}
		return items[i].key < items[j].key
	})
	if k <= 0 || k > len(items) {
		k = len(items)
	}
	pairs = make([]TopPair, k)
	for i := 0; i < k; i++ {
		s, tt := PairFromKey(items[i].key)
		pairs[i] = TopPair{S: s, T: tt, Count: items[i].count, Err: items[i].err}
	}
	return pairs, total
}

// ---------------------------------------------------------------------------
// SLO burn rate.

// sloWindowSeconds is the ring span: enough for the 5-minute long
// window plus the second in flight.
const sloWindowSeconds = 301

type sloBucket struct {
	sec         int64
	good, total int64
}

// SLO tracks a latency objective — "objective fraction of queries
// answer within target" — over a rolling ring of per-second buckets
// and reports burn rates over short (1m) and long (5m) windows. Burn
// rate is (observed bad fraction) / (allowed bad fraction): 1.0 means
// the error budget is being spent exactly at the sustainable rate,
// above 1 it is burning.
type SLO struct {
	target    time.Duration
	objective float64

	mu      sync.Mutex
	buckets [sloWindowSeconds]sloBucket
	good    int64 // lifetime
	total   int64
}

// NewSLO builds an SLO tracker; target <= 0 disables (returns nil,
// which all methods tolerate). objective outside (0,1) defaults to
// 0.99.
func NewSLO(target time.Duration, objective float64) *SLO {
	if target <= 0 {
		return nil
	}
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	return &SLO{target: target, objective: objective}
}

// Record classifies one query: good when it succeeded within the
// target latency.
func (s *SLO) Record(d time.Duration, failed bool) {
	if s == nil {
		return
	}
	good := !failed && d <= s.target
	sec := time.Now().Unix()
	s.mu.Lock()
	b := &s.buckets[sec%sloWindowSeconds]
	if b.sec != sec {
		b.sec, b.good, b.total = sec, 0, 0
	}
	b.total++
	s.total++
	if good {
		b.good++
		s.good++
	}
	s.mu.Unlock()
}

// SLOSnapshot is the JSON shape of one graph's SLO state.
type SLOSnapshot struct {
	TargetMS  float64 `json:"target_ms"`
	Objective float64 `json:"objective"`
	Good      int64   `json:"good"`
	Total     int64   `json:"total"`
	// Burn1m / Burn5m are the rolling-window burn rates; windows with
	// no traffic burn at 0.
	Burn1m float64 `json:"burn_1m"`
	Burn5m float64 `json:"burn_5m"`
	// Status summarizes: "ok" (long window inside budget), "warning"
	// (long window burning but the last minute has recovered),
	// "critical" (burning in both windows).
	Status string `json:"status"`
}

// window sums the buckets of the trailing w seconds. s.mu held.
func (s *SLO) window(now int64, w int64) (good, total int64) {
	for i := int64(0); i < w; i++ {
		b := &s.buckets[(now-i)%sloWindowSeconds]
		if b.sec == now-i {
			good += b.good
			total += b.total
		}
	}
	return good, total
}

// Snapshot evaluates the burn-rate windows now.
func (s *SLO) Snapshot() *SLOSnapshot {
	if s == nil {
		return nil
	}
	now := time.Now().Unix()
	s.mu.Lock()
	g1, t1 := s.window(now, 60)
	g5, t5 := s.window(now, 300)
	good, total := s.good, s.total
	s.mu.Unlock()
	burn := func(good, total int64) float64 {
		if total == 0 {
			return 0
		}
		bad := float64(total-good) / float64(total)
		return bad / (1 - s.objective)
	}
	snap := &SLOSnapshot{
		TargetMS:  float64(s.target) / float64(time.Millisecond),
		Objective: s.objective,
		Good:      good,
		Total:     total,
		Burn1m:    burn(g1, t1),
		Burn5m:    burn(g5, t5),
	}
	switch {
	case snap.Burn5m <= 1:
		snap.Status = "ok"
	case snap.Burn1m <= 1:
		snap.Status = "warning"
	default:
		snap.Status = "critical"
	}
	return snap
}

// ---------------------------------------------------------------------------
// Per-graph workload bundle.

// opCell is one operation's RED counters.
type opCell struct {
	count atomic.Int64
	errs  atomic.Int64
	durNS atomic.Int64
}

// Workload bundles the per-graph analytics: the heavy-hitter sketch,
// per-op RED counters, and the SLO tracker. A nil *Workload is valid
// and inert (library users of internal/server pay nothing).
type Workload struct {
	top   *TopK
	slo   *SLO
	start time.Time

	mu  sync.RWMutex
	ops map[string]*opCell
}

// WorkloadOptions configure NewWorkload.
type WorkloadOptions struct {
	// TopK is the heavy-hitter sketch capacity (0 = DefaultTopK).
	TopK int
	// SLOTarget is the latency objective threshold; 0 disables SLO
	// tracking. SLOObjective is the good fraction (default 0.99).
	SLOTarget    time.Duration
	SLOObjective float64
}

// NewWorkload builds one graph's analytics bundle.
func NewWorkload(opt WorkloadOptions) *Workload {
	return &Workload{
		top:   NewTopK(opt.TopK),
		slo:   NewSLO(opt.SLOTarget, opt.SLOObjective),
		start: time.Now(),
		ops:   make(map[string]*opCell, 4),
	}
}

// ObservePair counts one (s, t) query pair into the sketch. Record it
// at executor entry — before the cache and the queue — so the sketch
// sees the demanded workload, not just the computed one.
func (w *Workload) ObservePair(s, t int32) {
	if w == nil {
		return
	}
	w.top.Observe(PairKey(s, t))
}

func (w *Workload) op(name string) *opCell {
	w.mu.RLock()
	c := w.ops[name]
	w.mu.RUnlock()
	if c != nil {
		return c
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if c = w.ops[name]; c == nil {
		c = &opCell{}
		w.ops[name] = c
	}
	return c
}

// RecordOp records one completed operation for the RED counters; n is
// the number of work units (queries in a batch, mutations in a
// mutation batch).
func (w *Workload) RecordOp(name string, n int, d time.Duration, failed bool) {
	if w == nil {
		return
	}
	c := w.op(name)
	c.count.Add(int64(n))
	if failed {
		c.errs.Add(1)
	}
	if d > 0 {
		c.durNS.Add(int64(d))
	}
}

// RecordQuery feeds the SLO with one query-surface observation.
func (w *Workload) RecordQuery(d time.Duration, failed bool) {
	if w == nil {
		return
	}
	w.slo.Record(d, failed)
}

// OpSnapshot is one operation's RED row.
type OpSnapshot struct {
	Op        string  `json:"op"`
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	RatePerS  float64 `json:"rate_per_s"`
	MeanMS    float64 `json:"mean_ms"`
	TotalSecs float64 `json:"total_seconds"`
}

// WorkloadSnapshot is the /debug/workload JSON shape for one graph.
type WorkloadSnapshot struct {
	// TopPairs are the sketch's heavy hitters, count-descending;
	// TotalPairs is every observation the sketch has seen (so a
	// consumer can compute coverage).
	TopPairs   []TopPair    `json:"top_pairs"`
	TotalPairs uint64       `json:"total_pairs"`
	Ops        []OpSnapshot `json:"ops"`
	SLO        *SLOSnapshot `json:"slo,omitempty"`
}

// Snapshot captures the analytics; k bounds the reported heavy
// hitters (<= 0 reports the full sketch).
func (w *Workload) Snapshot(k int) WorkloadSnapshot {
	if w == nil {
		return WorkloadSnapshot{TopPairs: []TopPair{}, Ops: []OpSnapshot{}}
	}
	pairs, total := w.top.Snapshot(k)
	if pairs == nil {
		pairs = []TopPair{}
	}
	up := time.Since(w.start).Seconds()
	w.mu.RLock()
	ops := make([]OpSnapshot, 0, len(w.ops))
	for name, c := range w.ops {
		row := OpSnapshot{
			Op:        name,
			Count:     c.count.Load(),
			Errors:    c.errs.Load(),
			TotalSecs: float64(c.durNS.Load()) / 1e9,
		}
		if up > 0 {
			row.RatePerS = float64(row.Count) / up
		}
		if row.Count > 0 {
			row.MeanMS = float64(c.durNS.Load()) / 1e6 / float64(row.Count)
		}
		ops = append(ops, row)
	}
	w.mu.RUnlock()
	sort.Slice(ops, func(i, j int) bool { return ops[i].Op < ops[j].Op })
	return WorkloadSnapshot{TopPairs: pairs, TotalPairs: total, Ops: ops, SLO: w.slo.Snapshot()}
}

// SLOSnapshot exposes just the SLO state (the /metrics burn-rate
// gauges read it without paying for a sketch snapshot). Nil when SLO
// tracking is disabled.
func (w *Workload) SLOSnapshot() *SLOSnapshot {
	if w == nil {
		return nil
	}
	return w.slo.Snapshot()
}
