package obs

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace accumulates the span breakdown for one request (or one graph
// build). It travels through the stack inside a context.Context; the
// untraced path carries a nil *Trace and every method below treats
// the nil receiver as a no-op, which is what keeps tracing free when
// no subscriber is attached.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []Span
	attrs map[string]any
}

// Span is one named, timed phase of a trace. Phases are chosen to be
// non-overlapping (decode, cache, queue-wait, exec, ...) so their
// durations sum to the server-observed total.
type Span struct {
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"` // offset from trace start
	DurUS   float64 `json:"dur_us"`
}

// TraceData is the immutable snapshot of a finished trace — the shape
// served at /debug/traces and echoed in the X-Spanhop-Trace response
// header.
type TraceData struct {
	ID      string         `json:"id"`
	Start   time.Time      `json:"start"`
	TotalUS float64        `json:"total_us"`
	Spans   []Span         `json:"spans"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// SpanSummary renders "name=dur name=dur ..." for log records, where
// a full JSON trace would drown the line.
func (td TraceData) SpanSummary() string {
	var b strings.Builder
	for i, s := range td.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		b.WriteByte('=')
		b.WriteString(time.Duration(s.DurUS * float64(time.Microsecond)).String())
	}
	return b.String()
}

// NewTrace opens a trace identified by id (normally the request ID
// minted at the HTTP edge).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now(), attrs: make(map[string]any, 8)}
}

// ID returns the trace identifier; "" on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a named span now and returns the closure that ends
// it. Safe to call on a nil trace (the returned closure is a no-op).
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.add(name, start, time.Since(start)) }
}

// SpanSince records a span that began at start and ends now.
func (t *Trace) SpanSince(name string, start time.Time) {
	if t == nil {
		return
	}
	t.add(name, start, time.Since(start))
}

// SpanDur records a span with an explicit start and duration — used
// when one measurement (a coalesced batch dispatch) is shared across
// several traces.
func (t *Trace) SpanDur(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.add(name, start, d)
}

// SpanEnd records a span of duration d ending now — for callers that
// only learn the duration after the fact (exec stage telemetry).
func (t *Trace) SpanEnd(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.add(name, time.Now().Add(-d), d)
}

func (t *Trace) add(name string, start time.Time, d time.Duration) {
	off := start.Sub(t.start)
	if off < 0 {
		off = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Name:    name,
		StartUS: float64(off) / float64(time.Microsecond),
		DurUS:   float64(d) / float64(time.Microsecond),
	})
	t.mu.Unlock()
}

// Annotate attaches a key/value fact to the trace (cache=hit,
// batch_size=5, regime=improving, ...). Last write per key wins.
func (t *Trace) Annotate(key string, v any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs[key] = v
	t.mu.Unlock()
}

// HasSpan reports whether a span with the given name was recorded —
// the cancellation path uses it to tell a request canceled while
// still queued from one canceled mid-execution.
func (t *Trace) HasSpan(name string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Finish closes the trace and returns its immutable snapshot, spans
// ordered by start offset. The trace may still be annotated by
// stragglers afterwards; those writes land after the snapshot and are
// simply not observed.
func (t *Trace) Finish() TraceData {
	if t == nil {
		return TraceData{}
	}
	total := time.Since(t.start)
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	attrs := make(map[string]any, len(t.attrs))
	for k, v := range t.attrs {
		attrs[k] = v
	}
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	return TraceData{
		ID:      t.id,
		Start:   t.start,
		TotalUS: float64(total) / float64(time.Microsecond),
		Spans:   spans,
		Attrs:   attrs,
	}
}

type traceKey struct{}

// WithTrace attaches a trace to the context for the layers below.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — and nil is
// the common, free case: all Trace methods no-op on nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
