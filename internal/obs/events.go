package obs

import (
	"sort"
	"sync"
)

// Events counts lifecycle events (build_ready, snapshot_written,
// rebuild_swapped, ...) by name for the /metrics exposition. The set
// of names is small and stable, so a mutex-guarded map beats the
// ceremony of pre-registered counters.
type Events struct {
	mu sync.Mutex
	m  map[string]int64
}

// EventCount is one (name, count) pair of the snapshot.
type EventCount struct {
	Name  string
	Count int64
}

// NewEvents allocates an empty counter set.
func NewEvents() *Events { return &Events{m: make(map[string]int64)} }

// Count increments the named event. No-op on nil.
func (e *Events) Count(name string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.m[name]++
	e.mu.Unlock()
}

// Get returns one counter's current value (0 when never counted).
func (e *Events) Get(name string) int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.m[name]
}

// Snapshot returns all counters sorted by name, so the /metrics
// exposition is deterministic scrape to scrape.
func (e *Events) Snapshot() []EventCount {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	out := make([]EventCount, 0, len(e.m))
	for k, v := range e.m {
		out = append(out, EventCount{Name: k, Count: v})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
