package obs

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// fixedRecheck returns a RecheckFunc answering a constant exact
// distance (or error) regardless of the query.
func fixedRecheck(exact int64, unreach bool, err error) RecheckFunc {
	return func(gen uint64, s, t int32) (int64, bool, error) {
		return exact, unreach, err
	}
}

// awaitAudit polls until the graph's audit pipeline has fully drained
// n offered samples (audited, skipped, or errored).
func awaitAudit(t *testing.T, a *Auditor, graph string, n int64) AuditGraphSnapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, ok := a.GraphSnapshot(graph)
		if ok && snap.Audited+snap.BudgetSkips+snap.StaleSkips+snap.Errors >= n {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("audit pipeline did not drain %d samples: %+v", n, snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newTestAuditor(t *testing.T, opts AuditorOptions) *Auditor {
	t.Helper()
	if opts.CPUFrac == 0 {
		opts.CPUFrac = -1 // tests want deterministic audits, not budget skips
	}
	a := NewAuditor(opts)
	t.Cleanup(a.Close)
	return a
}

func TestAuditorCleanAnswer(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1})
	a.Register("g", Envelope{Lo: 0.9, Hi: 2}, fixedRecheck(100, false, nil))
	if !a.Offer(AuditSample{Graph: "g", S: 1, T: 2, Answer: 130, Regime: "clean", Gen: 0}) {
		t.Fatal("Offer rejected")
	}
	snap := awaitAudit(t, a, "g", 1)
	if snap.Audited != 1 || snap.Violations != 0 {
		t.Fatalf("audited=%d violations=%d, want 1/0", snap.Audited, snap.Violations)
	}
	if len(snap.Regimes) != 1 || snap.Regimes[0].Regime != "clean" {
		t.Fatalf("regimes = %+v, want one clean row", snap.Regimes)
	}
	r := snap.Regimes[0]
	if r.Count != 1 || math.Abs(r.MaxRatio-1.3) > 1e-12 || math.Abs(r.SumRatio-1.3) > 1e-12 {
		t.Fatalf("regime row = %+v, want count 1 ratio 1.3", r)
	}
	var total int64
	for _, b := range r.Buckets {
		total += b
	}
	if total != 1 {
		t.Fatalf("histogram holds %d observations, want 1", total)
	}
	if len(r.Buckets) != len(StretchBuckets())+1 {
		t.Fatalf("bucket count %d, want %d", len(r.Buckets), len(StretchBuckets())+1)
	}
	if snap.Worst == nil || snap.Worst.Ratio != 1.3 {
		t.Fatalf("worst = %+v, want ratio 1.3", snap.Worst)
	}
	if len(snap.Evidence) != 0 {
		t.Fatalf("clean audit left evidence: %+v", snap.Evidence)
	}
}

func TestAuditorEnvelopeViolation(t *testing.T) {
	events := NewEvents()
	ring := NewRing(8)
	ring.Add(TraceData{ID: "tr-1"})
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1, Events: events, Traces: ring})
	a.Register("g", Envelope{Lo: 0.9, Hi: 1.5}, fixedRecheck(100, false, nil))
	a.Offer(AuditSample{Graph: "g", S: 3, T: 4, Answer: 200, Regime: "clean", Gen: 7, TraceID: "tr-1"})
	snap := awaitAudit(t, a, "g", 1)
	if snap.Violations != 1 {
		t.Fatalf("violations = %d, want 1", snap.Violations)
	}
	if len(snap.Evidence) != 1 {
		t.Fatalf("evidence = %+v, want one entry", snap.Evidence)
	}
	ev := snap.Evidence[0]
	if ev.Reason != ReasonAboveEnvelope || ev.Served != 200 || ev.Exact != 100 || ev.Gen != 7 {
		t.Fatalf("evidence = %+v", ev)
	}
	if ev.TraceID != "tr-1" {
		t.Fatalf("evidence trace id = %q, want tr-1", ev.TraceID)
	}
	if got := events.Get("quality_violation"); got != 1 {
		t.Fatalf("quality_violation event count = %d, want 1", got)
	}
	// The finished trace carries the audit outcome.
	tds := ring.Snapshot()
	if len(tds) != 1 || tds[0].Attrs["audit"] != "violation" || tds[0].Attrs["audit_reason"] != ReasonAboveEnvelope {
		t.Fatalf("trace attrs = %+v, want audit=violation", tds[0].Attrs)
	}
}

func TestAuditorBelowEnvelope(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1})
	a.Register("g", Envelope{Lo: 0.9, Hi: 2}, fixedRecheck(100, false, nil))
	a.Offer(AuditSample{Graph: "g", Answer: 50, Regime: "improving"})
	snap := awaitAudit(t, a, "g", 1)
	if snap.Violations != 1 || len(snap.Evidence) != 1 || snap.Evidence[0].Reason != ReasonBelowEnvelope {
		t.Fatalf("snapshot = %+v, want one below-envelope violation", snap)
	}
}

func TestAuditorDegradingRequiresExactness(t *testing.T) {
	// 101/100 is comfortably inside the envelope, but the degrading
	// serving path is an exact search: any inequality is a violation.
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1})
	a.Register("g", Envelope{Lo: 0.5, Hi: 3}, fixedRecheck(100, false, nil))
	a.Offer(AuditSample{Graph: "g", Answer: 101, Regime: "degrading"})
	a.Offer(AuditSample{Graph: "g", Answer: 100, Regime: "degrading"})
	snap := awaitAudit(t, a, "g", 2)
	if snap.Violations != 1 {
		t.Fatalf("violations = %d, want 1 (inexact degrading answer only)", snap.Violations)
	}
	if len(snap.Evidence) != 1 || snap.Evidence[0].Reason != ReasonExactMismatch {
		t.Fatalf("evidence = %+v, want exact-mismatch", snap.Evidence)
	}
}

func TestAuditorUnreachableMismatch(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1})
	a.Register("g", Envelope{Lo: 0.9, Hi: 2}, fixedRecheck(100, false, nil))
	a.Offer(AuditSample{Graph: "g", Answer: 1 << 60, Unreachable: true, Regime: "clean"})
	snap := awaitAudit(t, a, "g", 1)
	if snap.Violations != 1 || len(snap.Evidence) != 1 {
		t.Fatalf("snapshot = %+v, want one violation", snap)
	}
	ev := snap.Evidence[0]
	if ev.Reason != ReasonUnreachableMismatch || ev.Ratio != 0 {
		t.Fatalf("evidence = %+v, want unreachable-mismatch with no ratio", ev)
	}
	// No finite ratio → no histogram observation.
	for _, r := range snap.Regimes {
		if r.Count != 0 {
			t.Fatalf("regime row %+v counted a non-finite ratio", r)
		}
	}
}

func TestAuditorBothUnreachableOK(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1})
	a.Register("g", Envelope{Lo: 0.9, Hi: 2}, fixedRecheck(0, true, nil))
	a.Offer(AuditSample{Graph: "g", Answer: 1 << 60, Unreachable: true, Regime: "clean"})
	snap := awaitAudit(t, a, "g", 1)
	if snap.Violations != 0 {
		t.Fatalf("violations = %d; agreeing on disconnection is not a violation", snap.Violations)
	}
	if snap.Regimes[0].Count != 1 || snap.Regimes[0].MaxRatio != 1 {
		t.Fatalf("regime row = %+v, want ratio-1 observation", snap.Regimes[0])
	}
}

func TestAuditorStaleSkip(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1})
	a.Register("g", Envelope{Lo: 0.9, Hi: 2}, fixedRecheck(0, false, fmt.Errorf("wrapped: %w", ErrAuditStale)))
	a.Offer(AuditSample{Graph: "g", Answer: 10, Regime: "clean"})
	snap := awaitAudit(t, a, "g", 1)
	if snap.StaleSkips != 1 || snap.Audited != 0 || snap.Violations != 0 || snap.Errors != 0 {
		t.Fatalf("snapshot = %+v, want one stale skip and nothing else", snap)
	}
}

func TestAuditorRecheckError(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1})
	a.Register("g", Envelope{Lo: 0.9, Hi: 2}, fixedRecheck(0, false, errors.New("boom")))
	a.Offer(AuditSample{Graph: "g", Answer: 10, Regime: "clean"})
	snap := awaitAudit(t, a, "g", 1)
	if snap.Errors != 1 || snap.Violations != 0 {
		t.Fatalf("snapshot = %+v, want one error, no violations", snap)
	}
}

func TestAuditorBudgetSkip(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1, CPUFrac: 0.01})
	a.Register("g", Envelope{Lo: 0.9, Hi: 2}, fixedRecheck(100, false, nil))
	// White-box: pretend past audits already burned an hour of CPU, so
	// any budget fraction of the wall time since Register is exceeded.
	g := a.graph("g")
	g.mu.Lock()
	g.cpuNS = int64(time.Hour)
	g.mu.Unlock()
	time.Sleep(time.Millisecond) // ensure elapsed wall > 0
	a.Offer(AuditSample{Graph: "g", Answer: 100, Regime: "clean"})
	snap := awaitAudit(t, a, "g", 1)
	if snap.BudgetSkips != 1 || snap.Audited != 0 {
		t.Fatalf("snapshot = %+v, want one budget skip, zero audits", snap)
	}
}

func TestAuditorEvidenceRingBounded(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1, Evidence: 2, Workers: 1})
	a.Register("g", Envelope{Lo: 0.9, Hi: 1.1}, fixedRecheck(100, false, nil))
	// Three violations with distinct served values; a single worker
	// audits them in offer order.
	for i, served := range []int64{200, 300, 400} {
		a.Offer(AuditSample{Graph: "g", S: int32(i), Answer: served, Regime: "clean"})
	}
	snap := awaitAudit(t, a, "g", 3)
	if snap.Violations != 3 {
		t.Fatalf("violations = %d, want 3", snap.Violations)
	}
	if len(snap.Evidence) != 2 {
		t.Fatalf("evidence holds %d entries, want cap 2", len(snap.Evidence))
	}
	// Newest first: the 400 then the 300; the 200 was evicted.
	if snap.Evidence[0].Served != 400 || snap.Evidence[1].Served != 300 {
		t.Fatalf("evidence order = [%d, %d], want [400, 300]",
			snap.Evidence[0].Served, snap.Evidence[1].Served)
	}
	// Worst offender survives eviction (largest |log2 ratio| = 4x).
	if snap.Worst == nil || snap.Worst.Served != 400 {
		t.Fatalf("worst = %+v, want the 4x answer", snap.Worst)
	}
}

func TestAuditorDropOldest(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1, Queue: 2, Workers: 1})
	a.Register("g", Envelope{Lo: 0.9, Hi: 2}, func(gen uint64, s, t int32) (int64, bool, error) {
		started <- struct{}{}
		<-block
		return 100, false, nil
	})
	defer close(block)
	// First sample occupies the worker; wait until its recheck started
	// so the next two deterministically sit in the queue.
	a.Offer(AuditSample{Graph: "g", S: 0, Answer: 100, Regime: "clean"})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first sample")
	}
	a.Offer(AuditSample{Graph: "g", S: 1, Answer: 100, Regime: "clean"})
	a.Offer(AuditSample{Graph: "g", S: 2, Answer: 100, Regime: "clean"})
	// Queue full: this evicts the oldest queued sample, never blocks.
	if !a.Offer(AuditSample{Graph: "g", S: 3, Answer: 100, Regime: "clean"}) {
		t.Fatal("Offer blocked or rejected instead of dropping oldest")
	}
	snap, _ := a.GraphSnapshot("g")
	if snap.Sampled != 4 || snap.Dropped != 1 {
		t.Fatalf("sampled=%d dropped=%d, want 4/1", snap.Sampled, snap.Dropped)
	}
}

func TestAuditorOfferUnregistered(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1})
	if a.Offer(AuditSample{Graph: "nope", Answer: 1}) {
		t.Fatal("Offer accepted a sample for an unregistered graph")
	}
	a.Register("g", Envelope{Lo: 0, Hi: 2}, fixedRecheck(1, false, nil))
	a.Forget("g")
	if a.Offer(AuditSample{Graph: "g", Answer: 1}) {
		t.Fatal("Offer accepted a sample for a forgotten graph")
	}
	if _, ok := a.GraphSnapshot("g"); ok {
		t.Fatal("GraphSnapshot found a forgotten graph")
	}
}

func TestAuditorRegisterRefreshPreservesCounters(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 1})
	a.Register("g", Envelope{Lo: 0.9, Hi: 2}, fixedRecheck(100, false, nil))
	a.Offer(AuditSample{Graph: "g", Answer: 100, Regime: "clean"})
	awaitAudit(t, a, "g", 1)
	// A rebuild refreshes the recheck hook and envelope in place.
	a.Register("g", Envelope{Lo: 0.8, Hi: 3}, fixedRecheck(50, false, nil))
	snap, ok := a.GraphSnapshot("g")
	if !ok || snap.Audited != 1 {
		t.Fatalf("refresh lost counters: %+v", snap)
	}
	if snap.Envelope.Hi != 3 {
		t.Fatalf("refresh kept stale envelope: %+v", snap.Envelope)
	}
}

func TestAuditorSampleHit(t *testing.T) {
	a := newTestAuditor(t, AuditorOptions{SampleEvery: 4})
	hits := 0
	for i := 0; i < 16; i++ {
		if a.SampleHit() {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("SampleHit fired %d/16 with stride 4, want 4", hits)
	}
	// Negative stride disables rate sampling entirely.
	d := newTestAuditor(t, AuditorOptions{SampleEvery: -1})
	for i := 0; i < 8; i++ {
		if d.SampleHit() {
			t.Fatal("disabled sampler reported a hit")
		}
	}
}

func TestAuditorNilSafe(t *testing.T) {
	var a *Auditor
	a.Register("g", Envelope{}, fixedRecheck(1, false, nil))
	if a.Offer(AuditSample{Graph: "g"}) {
		t.Fatal("nil auditor accepted a sample")
	}
	if a.SampleHit() || a.SampleEvery() != 0 || a.CPUFrac() != 0 {
		t.Fatal("nil auditor reported active sampling")
	}
	if got := a.Snapshot(); got != nil {
		t.Fatalf("nil auditor snapshot = %+v", got)
	}
	if _, ok := a.GraphSnapshot("g"); ok {
		t.Fatal("nil auditor returned a graph snapshot")
	}
	a.Forget("g")
	a.Close()
}

func TestStretchBucketsShape(t *testing.T) {
	b := StretchBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bucket bounds not strictly increasing at %d: %v", i, b)
		}
	}
	// 1.0 must be an exact bound so correct answers land in a
	// dedicated bucket, and the mutable copy must not alias.
	found := false
	for _, v := range b {
		if v == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no 1.0 bound in %v", b)
	}
	b[0] = 99
	if StretchBuckets()[0] == 99 {
		t.Fatal("StretchBuckets returned an aliased slice")
	}
	if bucketOf(1) != bucketOf(0.999) && bucketOf(1) == bucketOf(1.001) {
		t.Fatal("ratio 1.0 shares a bucket with over-estimates")
	}
	if got := bucketOf(1e9); got != len(b) {
		t.Fatalf("overflow ratio bucket = %d, want %d", got, len(b))
	}
}

func TestRingAnnotate(t *testing.T) {
	r := NewRing(2)
	r.Add(TraceData{ID: "a", Attrs: map[string]any{"k": 1}})
	before := r.Snapshot() // holds the original attrs map
	if !r.Annotate("a", "audit", "ok") {
		t.Fatal("Annotate missed a buffered trace")
	}
	after := r.Snapshot()
	if after[0].Attrs["audit"] != "ok" || after[0].Attrs["k"] != 1 {
		t.Fatalf("annotated attrs = %+v", after[0].Attrs)
	}
	// Copy-on-write: snapshots taken before the annotation keep their
	// consistent view.
	if _, leaked := before[0].Attrs["audit"]; leaked {
		t.Fatal("Annotate mutated a previously published attrs map")
	}
	if r.Annotate("gone", "k", "v") {
		t.Fatal("Annotate matched a trace that was never added")
	}
	r.Add(TraceData{ID: "b"})
	r.Add(TraceData{ID: "c"}) // evicts "a"
	if r.Annotate("a", "k", "v") {
		t.Fatal("Annotate matched an evicted trace")
	}
	var nilRing *Ring
	if nilRing.Annotate("a", "k", "v") {
		t.Fatal("nil ring annotated")
	}
}
