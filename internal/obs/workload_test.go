package obs

// Workload-analytics unit tests: the space-saving sketch's exactness
// and admission guarantees, the SLO burn-rate classification, and the
// per-graph Workload bundle's snapshot shape (including nil safety —
// library users of internal/server carry a nil bundle).

import (
	"testing"
	"time"
)

func TestPairKeyRoundTrip(t *testing.T) {
	cases := [][2]int32{{0, 0}, {1, 2}, {2, 1}, {-1, 7}, {1 << 30, -(1 << 30)}}
	seen := make(map[uint64][2]int32)
	for _, c := range cases {
		k := PairKey(c[0], c[1])
		if s, tt := PairFromKey(k); s != c[0] || tt != c[1] {
			t.Fatalf("PairFromKey(PairKey(%d,%d)) = (%d,%d)", c[0], c[1], s, tt)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("pairs %v and %v collide on key %d", prev, c, k)
		}
		seen[k] = c
	}
	if PairKey(1, 2) == PairKey(2, 1) {
		t.Fatal("(s,t) and (t,s) must be distinct keys")
	}
}

func TestTopKExactWithinCapacity(t *testing.T) {
	tk := NewTopK(8)
	want := map[uint64]uint64{}
	for i := 0; i < 5; i++ {
		k := PairKey(int32(i), int32(i+1))
		for j := 0; j <= i; j++ {
			tk.Observe(k)
			want[k]++
		}
	}
	pairs, total := tk.Snapshot(0)
	if total != 15 {
		t.Fatalf("total = %d, want 15", total)
	}
	if len(pairs) != 5 {
		t.Fatalf("sketch holds %d keys, want 5", len(pairs))
	}
	for i, p := range pairs {
		if p.Err != 0 {
			t.Fatalf("pair %d has err %d inside capacity", i, p.Err)
		}
		if got := want[PairKey(p.S, p.T)]; p.Count != got {
			t.Fatalf("pair (%d,%d) count %d, want %d", p.S, p.T, p.Count, got)
		}
		if i > 0 && p.Count > pairs[i-1].Count {
			t.Fatalf("snapshot not count-descending at %d", i)
		}
	}
	// k bounds the report without touching the totals.
	top2, total2 := tk.Snapshot(2)
	if len(top2) != 2 || total2 != 15 || top2[0].Count != 5 {
		t.Fatalf("Snapshot(2) = %v (total %d)", top2, total2)
	}
}

func TestTopKEvictionGuarantees(t *testing.T) {
	// Capacity 4, one genuinely heavy key amid a stream of singletons.
	tk := NewTopK(4)
	heavy := PairKey(9999, 9999)
	for i := 0; i < 50; i++ {
		tk.Observe(heavy)
		tk.Observe(PairKey(int32(i), int32(i)))
	}
	pairs, total := tk.Snapshot(0)
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	if len(pairs) != 4 {
		t.Fatalf("sketch holds %d keys, want capacity 4", len(pairs))
	}
	// The heavy hitter (true count 50 > N/k = 25) must be retained,
	// and every reported count must bound truth: true in [count-err,
	// count].
	found := false
	for _, p := range pairs {
		if PairKey(p.S, p.T) == heavy {
			found = true
			if p.Count < 50 {
				t.Fatalf("heavy count %d underestimates true 50", p.Count)
			}
			if p.Count-p.Err > 50 {
				t.Fatalf("heavy bound [count-err=%d] exceeds true 50", p.Count-p.Err)
			}
		}
	}
	if !found {
		t.Fatal("heavy hitter evicted despite count > N/k")
	}
}

func TestTopKNilAndDefaults(t *testing.T) {
	var tk *TopK
	tk.Observe(1) // must not panic
	if p, n := tk.Snapshot(5); p != nil || n != 0 {
		t.Fatalf("nil sketch snapshot = %v, %d", p, n)
	}
	if got := NewTopK(0).k; got != DefaultTopK {
		t.Fatalf("NewTopK(0) capacity = %d, want %d", got, DefaultTopK)
	}
}

func TestSLODisabledAndDefaults(t *testing.T) {
	if NewSLO(0, 0.99) != nil {
		t.Fatal("target 0 must disable")
	}
	var s *SLO
	s.Record(time.Millisecond, false) // nil-safe
	if s.Snapshot() != nil {
		t.Fatal("nil SLO snapshot must be nil")
	}
	if got := NewSLO(time.Second, 7).objective; got != 0.99 {
		t.Fatalf("objective 7 defaulted to %g, want 0.99", got)
	}
}

func TestSLOBurnRate(t *testing.T) {
	s := NewSLO(10*time.Millisecond, 0.9) // allowed bad fraction 0.1
	// 8 good, 2 bad (one slow, one failed): bad fraction 0.2, burn 2.
	for i := 0; i < 8; i++ {
		s.Record(time.Millisecond, false)
	}
	s.Record(50*time.Millisecond, false)
	s.Record(time.Millisecond, true)
	snap := s.Snapshot()
	if snap.Good != 8 || snap.Total != 10 {
		t.Fatalf("good/total = %d/%d, want 8/10", snap.Good, snap.Total)
	}
	if snap.TargetMS != 10 || snap.Objective != 0.9 {
		t.Fatalf("target/objective = %g/%g", snap.TargetMS, snap.Objective)
	}
	// All records landed within the last minute, so both windows agree.
	if snap.Burn1m < 1.99 || snap.Burn1m > 2.01 || snap.Burn5m < 1.99 || snap.Burn5m > 2.01 {
		t.Fatalf("burn = %g/%g, want 2.0", snap.Burn1m, snap.Burn5m)
	}
	if snap.Status != "critical" {
		t.Fatalf("status = %q, want critical (burning in both windows)", snap.Status)
	}
}

func TestSLOStatusOK(t *testing.T) {
	s := NewSLO(time.Second, 0.5)
	for i := 0; i < 10; i++ {
		s.Record(time.Millisecond, false)
	}
	snap := s.Snapshot()
	if snap.Burn1m != 0 || snap.Status != "ok" {
		t.Fatalf("all-good SLO = burn %g status %q", snap.Burn1m, snap.Status)
	}
}

func TestWorkloadBundle(t *testing.T) {
	w := NewWorkload(WorkloadOptions{TopK: 8, SLOTarget: time.Second, SLOObjective: 0.99})
	w.ObservePair(3, 4)
	w.ObservePair(3, 4)
	w.ObservePair(5, 6)
	w.RecordOp(OpQuery, 1, time.Millisecond, false)
	w.RecordOp(OpQuery, 1, time.Millisecond, false)
	w.RecordOp(OpBatch, 7, 2*time.Millisecond, true)
	w.RecordQuery(time.Millisecond, false)

	snap := w.Snapshot(10)
	if snap.TotalPairs != 3 || len(snap.TopPairs) != 2 {
		t.Fatalf("pairs = %d total %d", len(snap.TopPairs), snap.TotalPairs)
	}
	if p := snap.TopPairs[0]; p.S != 3 || p.T != 4 || p.Count != 2 || p.Err != 0 {
		t.Fatalf("top pair = %+v", p)
	}
	ops := map[string]OpSnapshot{}
	for _, o := range snap.Ops {
		ops[o.Op] = o
	}
	if q := ops[OpQuery]; q.Count != 2 || q.Errors != 0 || q.MeanMS <= 0 {
		t.Fatalf("query op = %+v", q)
	}
	if b := ops[OpBatch]; b.Count != 7 || b.Errors != 1 {
		t.Fatalf("batch op = %+v", b)
	}
	if snap.SLO == nil || snap.SLO.Total != 1 {
		t.Fatalf("slo = %+v", snap.SLO)
	}

	// Nil bundle: every method inert, snapshot non-nil slices (the
	// HTTP layer marshals it directly).
	var nw *Workload
	nw.ObservePair(1, 2)
	nw.RecordOp(OpQuery, 1, 0, false)
	nw.RecordQuery(0, false)
	ns := nw.Snapshot(5)
	if ns.TopPairs == nil || ns.Ops == nil || ns.SLO != nil {
		t.Fatalf("nil workload snapshot = %+v", ns)
	}
	if nw.SLOSnapshot() != nil {
		t.Fatal("nil workload SLOSnapshot must be nil")
	}
}
