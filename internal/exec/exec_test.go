package exec

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

func TestNilCtxLegacyBehavior(t *testing.T) {
	var e *Ctx
	if e.IsParallel() {
		t.Fatal("nil Ctx must not report parallel")
	}
	if e.Canceled() || e.Checkpoint() || e.Err() != nil {
		t.Fatal("nil Ctx must never cancel")
	}
	// For on a nil Ctx delegates to par.For: full coverage.
	hits := make([]atomic.Int32, 10000)
	e.For(len(hits), 100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, hits[i].Load())
		}
	}
	// Arena calls still work (plain allocation).
	d := e.Dists(8)
	if len(d) != 8 || d[0] != graph.InfDist {
		t.Fatalf("nil Dists = %v", d)
	}
	e.PutDists(d)
}

func TestSequentialCtxRunsInline(t *testing.T) {
	e := Sequential()
	if e.IsParallel() {
		t.Fatal("Sequential reports parallel")
	}
	var max atomic.Int32
	var cur atomic.Int32
	e.DoN(64, func(i int) {
		c := cur.Add(1)
		if c > max.Load() {
			max.Store(c)
		}
		cur.Add(-1)
	})
	if max.Load() != 1 {
		t.Fatalf("sequential DoN ran %d bodies concurrently", max.Load())
	}
}

func TestWorkerCapHonored(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	e := Parallel(2)
	var cur, max atomic.Int32
	e.For(1<<16, 256, func(lo, hi int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
	})
	if got := max.Load(); got > 2 {
		t.Fatalf("worker cap 2 exceeded: %d chunks in flight", got)
	}
}

// TestWorkerCapBoundsNestedFanOut: the cap is an aggregate budget for
// the whole context, so an outer DoN whose bodies each run their own
// For must still never exceed Workers goroutines in flight.
func TestWorkerCapBoundsNestedFanOut(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	// Grow the shared pool well beyond the cap first, so idle workers
	// are available to steal if the budget were per-call only.
	Parallel(0).For(1<<16, 64, func(lo, hi int) {})

	e := Parallel(2)
	var cur, max atomic.Int32
	e.DoN(8, func(i int) {
		e.For(1<<14, 128, func(lo, hi int) {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(50 * time.Microsecond)
			cur.Add(-1)
		})
	})
	if got := max.Load(); got > 2 {
		t.Fatalf("aggregate cap 2 exceeded: %d bodies in flight", got)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New(Options{Context: ctx, Workers: 2})
	if e.Canceled() {
		t.Fatal("canceled before cancel()")
	}
	if e.Checkpoint() {
		t.Fatal("checkpoint tripped early")
	}
	cancel()
	if !e.Canceled() || !e.Checkpoint() {
		t.Fatal("cancellation not observed")
	}
	if e.Err() == nil {
		t.Fatal("Err() nil after cancel")
	}
	if e.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", e.Rounds())
	}
	// Detached contexts never see the cancellation.
	d := e.Detached()
	if d.Canceled() || d.Checkpoint() {
		t.Fatal("detached Ctx observed the parent cancellation")
	}
}

func TestArenaResetAndReuse(t *testing.T) {
	e := Parallel(0)
	d := e.Dists(100)
	for i := range d {
		d[i] = 7 // dirty it
	}
	e.PutDists(d)
	d2 := e.Dists(50)
	for i, v := range d2 {
		if v != graph.InfDist {
			t.Fatalf("recycled dist[%d] = %d, want InfDist", i, v)
		}
	}
	e.PutDists(d2)

	v := e.Verts(64)
	for i := range v {
		if v[i] != graph.NoVertex {
			t.Fatalf("Verts[%d] = %d", i, v[i])
		}
	}
	e.PutVerts(v)

	m := e.Marks(64)
	for i := range m {
		if m[i] != -1 {
			t.Fatalf("Marks[%d] = %d", i, m[i])
		}
	}
	e.PutMarks(m)
	mz := e.MarksZero(64)
	for i := range mz {
		if mz[i] != 0 {
			t.Fatalf("MarksZero[%d] = %d", i, mz[i])
		}
	}
	e.PutMarks(mz)

	b := e.Bools(33)
	b[0] = true
	e.PutBools(b)
	b2 := e.Bools(20)
	if b2[0] {
		t.Fatal("recycled bool not reset")
	}
	e.PutBools(b2)
}

func TestArenaSizeClasses(t *testing.T) {
	var p slicePools[int]
	s := p.get(100)
	if len(s) != 100 || cap(s) < 100 {
		t.Fatalf("get(100): len=%d cap=%d", len(s), cap(s))
	}
	p.put(s)
	// A buffer of cap >= 128 serves any request up to its class.
	s2 := p.get(128)
	if len(s2) != 128 {
		t.Fatalf("get(128): len=%d", len(s2))
	}
	p.put(s2)
	if got := p.get(0); len(got) != 0 {
		t.Fatalf("get(0): len=%d", len(got))
	}
}

func TestStageTelemetry(t *testing.T) {
	tel := NewTelemetry()
	e := New(Options{Workers: 1, Telemetry: tel})
	cost := par.NewCost()
	stop := e.Stage("phase-a", cost)
	cost.Round(10)
	e.Checkpoint()
	stop()
	stop = e.Stage("phase-a", cost) // accumulates by name
	cost.Round(5)
	stop()
	stop = e.Stage("phase-b", cost)
	stop()
	snap := tel.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("stages = %+v", snap)
	}
	a := snap[0]
	if a.Name != "phase-a" || a.Work != 15 || a.Depth != 2 || a.Rounds != 1 {
		t.Fatalf("phase-a = %+v", a)
	}
	if snap[1].Name != "phase-b" || snap[1].Work != 0 {
		t.Fatalf("phase-b = %+v", snap[1])
	}
}

// TestPooledWorkersBounded: repeated parallel regions must not grow
// the goroutine count — the pool is the only fan-out mechanism.
func TestPooledWorkersBounded(t *testing.T) {
	e := Parallel(0)
	// Warm the pool.
	e.For(1<<14, 64, func(lo, hi int) {})
	runtime.GC()
	base := runtime.NumGoroutine()
	for iter := 0; iter < 200; iter++ {
		e.For(1<<14, 64, func(lo, hi int) {})
		e.DoN(32, func(i int) {})
	}
	if got := runtime.NumGoroutine(); got > base+4 {
		t.Fatalf("goroutines grew: base %d, now %d", base, got)
	}
}
