package exec

import (
	"math/bits"
	"sync"

	"repro/internal/graph"
)

// Scratch arenas: process-wide, size-class-keyed sync.Pools of the
// per-vertex buffers every search and clustering round needs — dist,
// parent, frontier, mark, and settled arrays. Buffers are handed out
// explicitly reset to their algorithm-neutral sentinel (InfDist,
// NoVertex, -1, false, 0), so a recycled buffer is indistinguishable
// from a fresh allocation and results stay bit-identical. Resetting
// costs the same memset a fresh make() would pay; what the arena
// removes is the allocation itself and the GC pressure of abandoning
// an O(n) buffer per round.
//
// Pools are keyed by ceil-power-of-two capacity class, so a buffer
// released for an n-vertex graph is reusable by any computation of
// size up to the same class. The pools are shared by every Ctx —
// sync.Pool handles the concurrency — and a nil Ctx bypasses them
// entirely (plain make, Put is a no-op), keeping legacy call sites
// byte-for-byte on their old allocation behavior.

const numClasses = 33

type slicePools[T any] struct {
	classes [numClasses]sync.Pool
}

func classOf(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a slice of len n and cap >= n; contents are arbitrary.
// Invariant: class c only ever holds buffers with cap >= 1<<c, so a
// pooled hit always covers its class's largest n.
func (p *slicePools[T]) get(n int) []T {
	if n < 0 {
		n = 0
	}
	c := classOf(n)
	if c >= numClasses {
		return make([]T, n)
	}
	if v := p.classes[c].Get(); v != nil {
		s := *(v.(*[]T))
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n, 1<<c)
}

// put files s under the largest class its capacity fully covers
// (floor log2), preserving the get() invariant.
func (p *slicePools[T]) put(s []T) {
	c := bits.Len(uint(cap(s))) - 1
	if c < 0 {
		return
	}
	if c >= numClasses {
		c = numClasses - 1
	}
	s = s[:0]
	p.classes[c].Put(&s)
}

var (
	distPools slicePools[graph.Dist]
	vertPools slicePools[graph.V]
	markPools slicePools[int32]
	boolPools slicePools[bool]
)

// Dists returns a len-n distance buffer filled with graph.InfDist —
// the starting state of every search. Nil Ctx allocates fresh.
func (e *Ctx) Dists(n int) []graph.Dist {
	if e == nil || !e.arenaOn {
		s := make([]graph.Dist, n)
		for i := range s {
			s[i] = graph.InfDist
		}
		return s
	}
	s := distPools.get(n)
	for i := range s {
		s[i] = graph.InfDist
	}
	return s
}

// DistsZero returns a len-n distance buffer filled with 0.
func (e *Ctx) DistsZero(n int) []graph.Dist {
	if e == nil || !e.arenaOn {
		return make([]graph.Dist, n)
	}
	s := distPools.get(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// PutDists releases a buffer obtained from Dists/DistsZero. No-op on
// nil Ctx. The caller must not use the slice afterwards.
func (e *Ctx) PutDists(s []graph.Dist) {
	if e == nil || !e.arenaOn {
		return
	}
	distPools.put(s)
}

// Verts returns a len-n vertex buffer filled with graph.NoVertex (the
// parent-array starting state).
func (e *Ctx) Verts(n int) []graph.V {
	if e == nil || !e.arenaOn {
		s := make([]graph.V, n)
		for i := range s {
			s[i] = graph.NoVertex
		}
		return s
	}
	s := vertPools.get(n)
	for i := range s {
		s[i] = graph.NoVertex
	}
	return s
}

// PutVerts releases a buffer obtained from Verts.
func (e *Ctx) PutVerts(s []graph.V) {
	if e == nil || !e.arenaOn {
		return
	}
	vertPools.put(s)
}

// Marks returns a len-n int32 buffer filled with -1 (the mark/token
// and claimed-array starting state).
func (e *Ctx) Marks(n int) []int32 {
	if e == nil || !e.arenaOn {
		s := make([]int32, n)
		for i := range s {
			s[i] = -1
		}
		return s
	}
	s := markPools.get(n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// MarksZero returns a len-n int32 buffer filled with 0.
func (e *Ctx) MarksZero(n int) []int32 {
	if e == nil || !e.arenaOn {
		return make([]int32, n)
	}
	s := markPools.get(n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// PutMarks releases a buffer obtained from Marks/MarksZero.
func (e *Ctx) PutMarks(s []int32) {
	if e == nil || !e.arenaOn {
		return
	}
	markPools.put(s)
}

// Bools returns a len-n bool buffer filled with false (settled
// arrays).
func (e *Ctx) Bools(n int) []bool {
	if e == nil || !e.arenaOn {
		return make([]bool, n)
	}
	s := boolPools.get(n)
	for i := range s {
		s[i] = false
	}
	return s
}

// PutBools releases a buffer obtained from Bools.
func (e *Ctx) PutBools(s []bool) {
	if e == nil || !e.arenaOn {
		return
	}
	boolPools.put(s)
}
