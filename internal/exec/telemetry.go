package exec

import "sync"

// StageStats is one named phase of a build: model cost (work, depth),
// synchronous rounds passed, and wall time. The serving layer exposes
// these per graph under /stats so operators can see where a build's
// time went (decomposition vs per-band hopsets vs graph loading).
type StageStats struct {
	Name   string  `json:"name"`
	Work   int64   `json:"work"`
	Depth  int64   `json:"depth"`
	Rounds int64   `json:"rounds"`
	WallMS float64 `json:"wall_ms"`
}

// Telemetry accumulates stage statistics. Stages recorded under the
// same name sum; first-seen order is preserved. Safe for concurrent
// use (parallel instance builds record their stages side by side).
//
// Rounds attribution is Ctx-wide: a stage's Rounds is the number of
// Checkpoint calls on the Ctx during the stage, so stages that run
// concurrently on one Ctx overlap in their round counts. Work and
// depth come from the stage's own cost accumulator and are exact.
type Telemetry struct {
	mu     sync.Mutex
	order  []string
	stages map[string]*StageStats
}

// NewTelemetry returns an empty telemetry sink.
func NewTelemetry() *Telemetry {
	return &Telemetry{stages: make(map[string]*StageStats)}
}

func (t *Telemetry) record(s StageStats) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stages == nil {
		t.stages = make(map[string]*StageStats)
	}
	cur, ok := t.stages[s.Name]
	if !ok {
		cur = &StageStats{Name: s.Name}
		t.stages[s.Name] = cur
		t.order = append(t.order, s.Name)
	}
	cur.Work += s.Work
	cur.Depth += s.Depth
	cur.Rounds += s.Rounds
	cur.WallMS += s.WallMS
}

// Snapshot returns the accumulated stages in first-seen order.
func (t *Telemetry) Snapshot() []StageStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageStats, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.stages[name])
	}
	return out
}
