// Package exec is the unified execution substrate every layer of the
// repository runs on: one Ctx carries (a) the worker cap imposed on
// the shared goroutine pool of internal/par, (b) size-keyed scratch
// arenas that let repeated SSSP/clustering rounds and oracle builds
// reuse their O(n) dist/parent/frontier/mark buffers instead of
// churning the GC, (c) context.Context cancellation checked at
// round/bucket boundaries, and (d) per-stage telemetry (work, depth,
// rounds, wall time) for long builds.
//
// A Ctx replaces the Parallel bool knobs that used to be duplicated
// across sssp.Options, core.Options, spanner.Options, and
// hopset.Params: algorithms take an optional *Ctx and derive their
// parallelism, scratch space, and cancellation from it. The old knobs
// remain as thin deprecated wrappers.
//
// # Nil semantics
//
// All methods are safe on a nil *Ctx, which means "legacy behavior":
// For/Do/DoN delegate to the package-level par entry points (full
// GOMAXPROCS fan-out on the shared pool), arenas fall back to plain
// allocation, cancellation never fires, and telemetry is off. A
// sequential, cancelable, arena-backed run is therefore an explicit
// choice — exec.Sequential() — not the nil default, so every existing
// call site keeps its exact pre-exec behavior.
//
// # Cancellation contract
//
// Algorithms poll Checkpoint() (or Canceled()) at synchronous round
// boundaries — a BFS level, a Δ-stepping bucket, a clustering bucket,
// a Bellman–Ford round, a recursion entry. On cancellation they
// return immediately with a partial, INVALID result; only the
// top-level caller that owns the Ctx (the registry build loop, a
// command main) may decide what to do with it, and the rule is: check
// Err() and discard. Query paths must therefore run on a Ctx that is
// never canceled (see Detached).
package exec

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/par"
)

// Options configure a Ctx.
type Options struct {
	// Context supplies cancellation; nil means never canceled.
	Context context.Context
	// Workers caps the parallelism of every For/Do/DoN issued through
	// the Ctx: 0 means runtime.GOMAXPROCS(0) resolved per call, 1
	// means run inline (sequential), n > 1 caps the shared pool
	// fan-out at n.
	Workers int
	// Telemetry, when non-nil, accumulates per-stage build statistics
	// (see Ctx.Stage).
	Telemetry *Telemetry
	// OnStage, when non-nil, additionally receives every closed stage
	// record as it completes — the observability layer turns build
	// stages into trace spans without exec importing it. Called from
	// whichever goroutine closes the stage; must be cheap and
	// thread-safe. Only fires when Telemetry is also set (stages are
	// not measured otherwise).
	OnStage func(StageStats)
	// Labels, when non-nil, carries runtime/pprof profiler labels
	// (built with pprof.WithLabels) that shared-pool helper goroutines
	// adopt while executing this Ctx's parallel regions. Only its
	// label set is read — cancellation and values are ignored — so it
	// is deliberately a separate field from Context: a query Ctx wants
	// labels but must never inherit a build's cancellation. The
	// calling goroutine's own labels are untouched; wrap the top-level
	// work in pprof.Do for those.
	Labels context.Context
}

// Ctx is one execution context. The zero value is not useful; build
// one with New, Sequential, or Parallel, or pass nil for legacy
// behavior.
type Ctx struct {
	done     <-chan struct{}
	err      func() error
	workers  int
	limiter  *par.Limiter
	tel      *Telemetry
	onStage  func(StageStats)
	labels   context.Context
	canceled atomic.Bool
	rounds   atomic.Int64
	arenaOn  bool
}

// New builds a Ctx from Options. A finite cap (Workers > 1) is
// enforced as an aggregate budget across every loop nested under the
// Ctx — workers−1 shared helper tokens plus the calling goroutine —
// not merely per call, so `-workers 2` really means at most two
// goroutines of that build in flight however the recursion nests.
func New(opt Options) *Ctx {
	e := &Ctx{workers: opt.Workers, tel: opt.Telemetry, onStage: opt.OnStage,
		labels: opt.Labels, arenaOn: true}
	if opt.Workers < 0 {
		e.workers = 0
	}
	if e.workers > 1 {
		e.limiter = par.NewLimiter(e.workers - 1)
	}
	if opt.Context != nil {
		e.done = opt.Context.Done()
		e.err = opt.Context.Err
	}
	return e
}

// Sequential returns a Ctx that runs everything inline (workers = 1)
// with arenas on and no cancellation: the reference-oracle shape, but
// allocation-free on repeated calls.
func Sequential() *Ctx { return New(Options{Workers: 1}) }

// Parallel returns a Ctx capped at the given worker count (0 =
// GOMAXPROCS) with arenas on and no cancellation.
func Parallel(workers int) *Ctx { return New(Options{Workers: workers}) }

// defaultCtx is the shared process-wide parallel context used by the
// deprecated Parallel-bool wrappers.
var defaultCtx = Parallel(0)

// Default returns the shared full-parallelism Ctx (GOMAXPROCS workers,
// arenas on, never canceled). The deprecated Parallel knobs map to it.
func Default() *Ctx { return defaultCtx }

// Detached returns a Ctx with the same worker cap and arena setting
// but no cancellation, no telemetry, and its own fresh helper budget:
// the shape query paths want, where a canceled build must never
// truncate a search that is computing a user-visible answer. Safe on
// nil (returns nil).
func (e *Ctx) Detached() *Ctx {
	if e == nil {
		return nil
	}
	d := &Ctx{workers: e.workers, arenaOn: e.arenaOn, labels: e.labels}
	if d.workers > 1 {
		d.limiter = par.NewLimiter(d.workers - 1)
	}
	return d
}

// Workers returns the effective worker cap: GOMAXPROCS for a nil Ctx
// or an unset cap.
func (e *Ctx) Workers() int {
	if e == nil || e.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.workers
}

// IsParallel reports whether the Ctx asks for multicore execution. A
// nil Ctx reports false: legacy call sites gate their parallel
// variants on the deprecated bools instead.
func (e *Ctx) IsParallel() bool {
	return e != nil && e.Workers() > 1
}

// Err returns the cancellation cause, or nil.
func (e *Ctx) Err() error {
	if e == nil || e.err == nil {
		return nil
	}
	return e.err()
}

// Canceled reports whether the Ctx has been canceled. The check is a
// sticky-flag fast path plus one non-blocking channel poll — cheap
// enough for every round boundary.
func (e *Ctx) Canceled() bool {
	if e == nil || e.done == nil {
		return false
	}
	if e.canceled.Load() {
		return true
	}
	select {
	case <-e.done:
		e.canceled.Store(true)
		return true
	default:
		return false
	}
}

// Checkpoint marks one synchronous round boundary: it counts the round
// for telemetry and reports whether the computation should abort. The
// idiom at every bucket/level/round loop head is
//
//	if ec.Checkpoint() { return res } // res is invalid on this path
func (e *Ctx) Checkpoint() bool {
	if e == nil {
		return false
	}
	e.rounds.Add(1)
	return e.Canceled()
}

// Rounds returns the number of checkpoints passed so far.
func (e *Ctx) Rounds() int64 {
	if e == nil {
		return 0
	}
	return e.rounds.Load()
}

// Telemetry returns the Ctx's telemetry sink (nil when off).
func (e *Ctx) Telemetry() *Telemetry {
	if e == nil {
		return nil
	}
	return e.tel
}

// Stage opens a named telemetry stage, snapshotting the given cost
// accumulator (may be nil) and the round counter; the returned func
// closes the stage, recording the deltas plus wall time. Stages
// accumulate by name, so a stage run once per band sums across bands.
// No-op on a nil Ctx or when telemetry is off.
func (e *Ctx) Stage(name string, cost *par.Cost) func() {
	if e == nil || e.tel == nil {
		return func() {}
	}
	w0, d0 := cost.Snapshot()
	r0 := e.rounds.Load()
	t0 := time.Now()
	return func() {
		w1, d1 := cost.Snapshot()
		st := StageStats{
			Name:   name,
			Work:   w1 - w0,
			Depth:  d1 - d0,
			Rounds: e.rounds.Load() - r0,
			WallMS: float64(time.Since(t0).Microseconds()) / 1000,
		}
		e.tel.record(st)
		if e.onStage != nil {
			e.onStage(st)
		}
	}
}

// ---------------------------------------------------------------------------
// Fork-join through the shared pool, honoring the worker cap.

// For executes body(lo, hi) over a partition of [0, n) with at most
// Workers() chunks in flight. Nil Ctx = par.For (full GOMAXPROCS).
func (e *Ctx) For(n, grain int, body func(lo, hi int)) {
	if e == nil {
		par.For(n, grain, body)
		return
	}
	par.ForLabeled(e.labels, e.limiter, e.workers, n, grain, body)
}

// ForIdx executes body(i) for every i in [0, n) in parallel chunks.
func (e *Ctx) ForIdx(n, grain int, body func(i int)) {
	e.For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// DoN runs body(i) for i in [0, n), at most Workers() concurrently.
// Bodies may nest further For/DoN calls (caller-runs when saturated).
func (e *Ctx) DoN(n int, body func(i int)) {
	if e == nil {
		par.DoN(n, body)
		return
	}
	par.DoNLabeled(e.labels, e.limiter, e.workers, n, body)
}

// Do runs the thunks in parallel and waits.
func (e *Ctx) Do(thunks ...func()) {
	if e == nil {
		par.Do(thunks...)
		return
	}
	e.DoN(len(thunks), func(i int) { thunks[i]() })
}
