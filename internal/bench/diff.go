package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DefaultThreshold is the relative change above which a cost metric
// counts as a regression: the CI gate's 10%.
const DefaultThreshold = 0.10

// Regression is one metric of one benchmark that got worse by more
// than the threshold.
type Regression struct {
	Bench  string  `json:"bench"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Change is the relative change in the "badness" direction:
	// +0.25 means 25% worse, regardless of whether the metric is
	// lower-better (ns/op) or higher-better (qps).
	Change float64 `json:"change"`
}

// DiffResult is the full comparison of two reports.
type DiffResult struct {
	Regressions []Regression
	// Improvements lists metrics that got better by more than the
	// threshold — informational, never fatal.
	Improvements []Regression
	// MissingInOld names benchmarks present only in the new report
	// (new coverage: informational).
	MissingInOld []string
	// MissingInNew names benchmarks present only in the old report
	// (lost coverage: a regression of the suite itself).
	MissingInNew []string
	// MachineMismatch is set when the two reports come from different
	// hosts; absolute comparisons are then only indicative.
	MachineMismatch bool
}

// OK reports whether the gate passes: no metric regressions and no
// lost benchmarks.
func (d *DiffResult) OK() bool {
	return len(d.Regressions) == 0 && len(d.MissingInNew) == 0
}

// higherBetter classifies a metric's direction. The canonical costs
// (ns/op, B/op, allocs/op) and latency quantiles are lower-better;
// throughput is higher-better. Metrics with no known direction
// (experiment sizes, work/depth counters) are not gated — they
// describe the workload, not its cost.
func higherBetter(metric string) (dir int) {
	switch {
	case metric == "qps" || strings.HasSuffix(metric, "_per_sec"):
		return +1
	case metric == "ns/op" || metric == "b/op" || metric == "allocs/op":
		return -1
	case strings.HasSuffix(metric, "_us") || strings.HasSuffix(metric, "_ns") || strings.HasSuffix(metric, "_ms"):
		return -1
	default:
		return 0
	}
}

// Diff compares two reports. A cost metric regresses when it is
// strictly more than threshold worse than the old value (exactly
// threshold is allowed: the gate is ">10%", not "≥10%").
func Diff(old, new *Report, threshold float64) *DiffResult {
	d := &DiffResult{}
	if old.Machine != new.Machine {
		d.MachineMismatch = true
	}
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	newNames := make(map[string]struct{}, len(new.Results))

	for _, nr := range new.Results {
		newNames[nr.Name] = struct{}{}
		or, ok := oldBy[nr.Name]
		if !ok {
			d.MissingInOld = append(d.MissingInOld, nr.Name)
			continue
		}
		compare := func(metric string, ov, nv float64, dir int) {
			if dir == 0 || ov == 0 || nv == 0 {
				// Unknown direction, or one side never measured the
				// metric (e.g. allocs omitted): nothing to gate.
				return
			}
			var change float64
			if dir < 0 {
				change = nv/ov - 1 // lower-better: growth is bad
			} else {
				change = ov/nv - 1 // higher-better: shrinkage is bad
			}
			// A hair of float slack so a change of exactly the
			// threshold (10% = 1100/1000-1, which rounds to just above
			// 0.10 in binary) stays on the passing side of ">10%".
			const slack = 1e-9
			reg := Regression{Bench: nr.Name, Metric: metric, Old: ov, New: nv, Change: change}
			if change > threshold+slack {
				d.Regressions = append(d.Regressions, reg)
			} else if change < -threshold-slack {
				d.Improvements = append(d.Improvements, reg)
			}
		}
		compare("ns/op", or.NsPerOp, nr.NsPerOp, -1)
		compare("b/op", float64(or.BytesPerOp), float64(nr.BytesPerOp), -1)
		compare("allocs/op", float64(or.AllocsPerOp), float64(nr.AllocsPerOp), -1)
		for _, k := range sortedKeys(nr.Metrics) {
			ov, ok := or.Metrics[k]
			if !ok {
				continue
			}
			compare(k, ov, nr.Metrics[k], higherBetter(k))
		}
	}
	// A benchmark present in old but not new is lost coverage — except
	// when the old report is a full-mode trajectory point and the new
	// one is a short-mode CI run: the stress entries are then absent
	// by design, not dropped.
	var fullOnly map[string]bool
	if old.Mode == "full" && new.Mode == "short" {
		fullOnly = make(map[string]bool)
		for _, s := range Suite() {
			if s.FullOnly {
				fullOnly[s.Name] = true
			}
		}
	}
	for _, or := range old.Results {
		if _, ok := newNames[or.Name]; !ok && !fullOnly[or.Name] {
			d.MissingInNew = append(d.MissingInNew, or.Name)
		}
	}
	sort.Slice(d.Regressions, func(i, j int) bool { return d.Regressions[i].Change > d.Regressions[j].Change })
	sort.Slice(d.Improvements, func(i, j int) bool { return d.Improvements[i].Change < d.Improvements[j].Change })
	return d
}

// Print renders the diff in a human-readable form.
func (d *DiffResult) Print(w io.Writer, threshold float64) {
	if d.MachineMismatch {
		fmt.Fprintf(w, "WARNING: reports come from different machines; absolute comparisons are indicative only\n")
	}
	for _, name := range d.MissingInNew {
		fmt.Fprintf(w, "MISSING  %s: benchmark disappeared from the new report\n", name)
	}
	for _, r := range d.Regressions {
		fmt.Fprintf(w, "WORSE    %s %s: %.4g -> %.4g (%+.1f%%, threshold %.0f%%)\n",
			r.Bench, r.Metric, r.Old, r.New, 100*r.Change, 100*threshold)
	}
	for _, r := range d.Improvements {
		fmt.Fprintf(w, "BETTER   %s %s: %.4g -> %.4g (%.1f%%)\n",
			r.Bench, r.Metric, r.Old, r.New, 100*r.Change)
	}
	for _, name := range d.MissingInOld {
		fmt.Fprintf(w, "NEW      %s: no baseline in the old report\n", name)
	}
	if d.OK() {
		fmt.Fprintf(w, "OK: no metric worse than %.0f%%\n", 100*threshold)
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
