package bench

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	return &Report{
		Schema:    SchemaVersion,
		Mode:      "full",
		CreatedAt: "2026-08-08T12:00:00Z",
		GitRev:    "abcdef123456",
		Note:      "trajectory point six",
		Machine: Machine{
			GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
			NumCPU: 8, GOMAXPROCS: 8, Hostname: "host", CPUModel: "model",
		},
		Results: []Result{
			{Name: "build/grid", Iterations: 10, NsPerOp: 1e8, BytesPerOp: 1 << 20, AllocsPerOp: 4096},
			{Name: "serve/e2e", Iterations: 1, NsPerOp: 5e9,
				Metrics: map[string]float64{"qps": 1000, "p50_us": 200, "p99_us": 900}},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := Encode(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || back.Mode != rep.Mode || back.GitRev != rep.GitRev ||
		back.Machine != rep.Machine || len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip changed the report: %+v", back)
	}
	for i := range rep.Results {
		want, got := rep.Results[i], back.Results[i]
		if want.Name != got.Name || want.NsPerOp != got.NsPerOp ||
			want.BytesPerOp != got.BytesPerOp || want.AllocsPerOp != got.AllocsPerOp {
			t.Fatalf("result %d changed: want %+v got %+v", i, want, got)
		}
		for k, v := range want.Metrics {
			if got.Metrics[k] != v {
				t.Fatalf("metric %s changed: %v -> %v", k, v, got.Metrics[k])
			}
		}
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	for _, schema := range []string{"0", "2", "99"} {
		in := `{"schema": ` + schema + `, "mode": "short", "machine": {}, "results": []}`
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Fatalf("schema %s accepted, want rejection", schema)
		} else if !strings.Contains(err.Error(), "unsupported schema") {
			t.Fatalf("schema %s: error %q, want unsupported-schema", schema, err)
		}
	}
}

func TestDecodeRejectsMalformedResults(t *testing.T) {
	cases := []struct{ name, in, wantErr string }{
		{"garbage", "not json", "decode"},
		{"unnamed result", `{"schema":1,"results":[{"ns_per_op":1}]}`, "no name"},
		{"duplicate result", `{"schema":1,"results":[{"name":"a"},{"name":"a"}]}`, "duplicate result"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestEncodeRejectsForeignSchema(t *testing.T) {
	rep := sampleReport()
	rep.Schema = 7
	if err := Encode(&bytes.Buffer{}, rep); err == nil {
		t.Fatal("encoding schema 7 succeeded, want error")
	}
}

func TestWriteReadFile(t *testing.T) {
	path := t.TempDir() + "/BENCH_test.json"
	if err := WriteFile(path, sampleReport()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Note != "trajectory point six" {
		t.Fatalf("note lost: %q", back.Note)
	}
}

// diffReports builds an old/new pair where the new report's ns/op on
// bench "b" is scaled by factor.
func diffReports(factor float64) (*Report, *Report) {
	old := &Report{Schema: SchemaVersion, Results: []Result{
		{Name: "b", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
	}}
	new := &Report{Schema: SchemaVersion, Results: []Result{
		{Name: "b", NsPerOp: 1000 * factor, BytesPerOp: 100, AllocsPerOp: 10},
	}}
	return old, new
}

func TestDiffFlagsRegression(t *testing.T) {
	old, new := diffReports(1.25)
	d := Diff(old, new, DefaultThreshold)
	if d.OK() || len(d.Regressions) != 1 {
		t.Fatalf("25%% slower not flagged: %+v", d)
	}
	r := d.Regressions[0]
	if r.Bench != "b" || r.Metric != "ns/op" || r.Change < 0.24 || r.Change > 0.26 {
		t.Fatalf("bad regression record: %+v", r)
	}
}

func TestDiffExactlyThresholdPasses(t *testing.T) {
	// The gate is ">10%", not "≥10%": exactly 10% worse must pass.
	old, new := diffReports(1.10)
	if d := Diff(old, new, 0.10); !d.OK() {
		t.Fatalf("exactly-10%% change flagged as regression: %+v", d.Regressions)
	}
	// And epsilon beyond must fail.
	old, new = diffReports(1.101)
	if d := Diff(old, new, 0.10); d.OK() {
		t.Fatal("10.1% change passed the 10% gate")
	}
}

func TestDiffImprovementNeverFatal(t *testing.T) {
	old, new := diffReports(0.5)
	d := Diff(old, new, DefaultThreshold)
	if !d.OK() {
		t.Fatalf("improvement failed the gate: %+v", d.Regressions)
	}
	if len(d.Improvements) != 1 {
		t.Fatalf("2x speedup not reported as improvement: %+v", d)
	}
}

func TestDiffHigherBetterMetrics(t *testing.T) {
	old := &Report{Schema: SchemaVersion, Results: []Result{
		{Name: "serve", Metrics: map[string]float64{"qps": 1000, "p99_us": 500}},
	}}
	new := &Report{Schema: SchemaVersion, Results: []Result{
		{Name: "serve", Metrics: map[string]float64{"qps": 800, "p99_us": 500}},
	}}
	d := Diff(old, new, 0.10)
	if d.OK() || len(d.Regressions) != 1 || d.Regressions[0].Metric != "qps" {
		t.Fatalf("20%% qps drop not flagged: %+v", d)
	}
	// Latency quantiles are lower-better.
	new.Results[0].Metrics = map[string]float64{"qps": 1000, "p99_us": 700}
	d = Diff(old, new, 0.10)
	if d.OK() || len(d.Regressions) != 1 || d.Regressions[0].Metric != "p99_us" {
		t.Fatalf("40%% p99 growth not flagged: %+v", d)
	}
}

func TestDiffMissingBenchmarks(t *testing.T) {
	old := &Report{Schema: SchemaVersion, Results: []Result{
		{Name: "kept", NsPerOp: 100}, {Name: "dropped", NsPerOp: 100},
	}}
	new := &Report{Schema: SchemaVersion, Results: []Result{
		{Name: "kept", NsPerOp: 100}, {Name: "added", NsPerOp: 100},
	}}
	d := Diff(old, new, 0.10)
	// A benchmark missing from the NEW report is lost coverage: fatal.
	if d.OK() {
		t.Fatal("dropped benchmark passed the gate")
	}
	if len(d.MissingInNew) != 1 || d.MissingInNew[0] != "dropped" {
		t.Fatalf("MissingInNew = %v", d.MissingInNew)
	}
	// A benchmark missing from the OLD report is new coverage: fine.
	if len(d.MissingInOld) != 1 || d.MissingInOld[0] != "added" {
		t.Fatalf("MissingInOld = %v", d.MissingInOld)
	}
	if len(d.Regressions) != 0 {
		t.Fatalf("missing baselines produced metric regressions: %+v", d.Regressions)
	}
}

func TestDiffSkipsZeroAndUnknownMetrics(t *testing.T) {
	old := &Report{Schema: SchemaVersion, Results: []Result{
		// Zero alloc columns (OmitAllocs) and an unknown-direction
		// metric must not gate.
		{Name: "b", NsPerOp: 100, Metrics: map[string]float64{"spanner_edges": 10}},
	}}
	new := &Report{Schema: SchemaVersion, Results: []Result{
		{Name: "b", NsPerOp: 100, BytesPerOp: 4096, AllocsPerOp: 100,
			Metrics: map[string]float64{"spanner_edges": 500}},
	}}
	if d := Diff(old, new, 0.10); !d.OK() {
		t.Fatalf("zero/unknown metrics gated: %+v", d.Regressions)
	}
}

func TestDiffMachineMismatchWarns(t *testing.T) {
	old, new := diffReports(1.0)
	old.Machine = Machine{Hostname: "a"}
	new.Machine = Machine{Hostname: "b"}
	d := Diff(old, new, 0.10)
	if !d.MachineMismatch {
		t.Fatal("different machines not flagged")
	}
	if !d.OK() {
		t.Fatal("machine mismatch alone must not fail the gate")
	}
	var buf bytes.Buffer
	d.Print(&buf, 0.10)
	if !strings.Contains(buf.String(), "different machines") {
		t.Fatalf("Print output missing machine warning: %s", buf.String())
	}
}

// TestSuiteShortModeRuns exercises the runner end-to-end on the two
// cheapest suite entries so CI catches suite bit-rot without paying
// for a full run.
func TestSuiteShortModeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("suite execution is itself a benchmark run")
	}
	specs := Suite()
	results := Run(specs, RunOptions{
		Filter: regexp.MustCompile(`^dynamic/clean$|^snapshot/save-grid-50x50$`),
		Logf:   t.Logf,
	})
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.Iterations == 0 || r.NsPerOp <= 0 {
			t.Fatalf("result %q did not run: %+v", r.Name, r)
		}
	}
	if results[1].Metrics["snapshot_bytes"] <= 0 {
		t.Fatalf("snapshot_bytes metric missing: %+v", results[1])
	}
}

// TestSuiteNamesUniqueAndStressMarked guards the trajectory contract:
// names are unique (the codec rejects duplicates) and every stress
// entry is full-only.
func TestSuiteNamesUniqueAndStressMarked(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Suite() {
		if seen[s.Name] {
			t.Fatalf("duplicate suite name %q", s.Name)
		}
		seen[s.Name] = true
		if strings.HasPrefix(s.Name, "stress/") && !s.FullOnly {
			t.Fatalf("stress entry %q must be FullOnly", s.Name)
		}
		if !strings.HasPrefix(s.Name, "stress/") && s.FullOnly {
			t.Fatalf("non-stress entry %q marked FullOnly", s.Name)
		}
	}
}

// TestDiffShortVsFullModeSkipsStress: CI diffs a short-mode candidate
// against the committed full-mode trajectory point; the stress
// entries are absent by design, not lost coverage.
func TestDiffShortVsFullModeSkipsStress(t *testing.T) {
	old := &Report{Schema: SchemaVersion, Mode: "full", Results: []Result{
		{Name: "dynamic/clean", NsPerOp: 100},
		{Name: "stress/rmat22-spanner", NsPerOp: 1e10},
	}}
	new := &Report{Schema: SchemaVersion, Mode: "short", Results: []Result{
		{Name: "dynamic/clean", NsPerOp: 100},
	}}
	if d := Diff(old, new, 0.10); !d.OK() {
		t.Fatalf("short-vs-full diff failed on absent stress entries: %+v", d.MissingInNew)
	}
	// But a genuinely dropped short-mode benchmark still fails.
	old.Results = append(old.Results, Result{Name: "dynamic/improving-8-inserts", NsPerOp: 100})
	if d := Diff(old, new, 0.10); d.OK() {
		t.Fatal("dropped short-mode benchmark passed the short-vs-full gate")
	}
}

// TestRunRoundsKeepsBestSample: with Rounds=3 the runner re-samples
// each benchmark and keeps the lowest-ns/op round; FullOnly (stress)
// entries run exactly once regardless.
func TestRunRoundsKeepsBestSample(t *testing.T) {
	// Each invocation sleeps past the 1s benchtime at N=1, so
	// testing.Benchmark never re-calibrates: one invocation == one
	// round, and the invocation counters count rounds exactly.
	sleepWholeBudget := func(b *testing.B, total time.Duration) {
		per := total / time.Duration(b.N)
		for i := 0; i < b.N; i++ {
			time.Sleep(per)
		}
	}
	var cheapRuns, stressRuns int
	specs := []Spec{
		{Name: "cheap", Run: func(b *testing.B) {
			cheapRuns++
			// The first round is artificially slow; min-of-N must
			// discard it.
			if cheapRuns == 1 {
				sleepWholeBudget(b, 1600*time.Millisecond)
			} else {
				sleepWholeBudget(b, 1050*time.Millisecond)
			}
		}},
		{Name: "stress/only-once", FullOnly: true, Run: func(b *testing.B) {
			stressRuns++
			sleepWholeBudget(b, 1050*time.Millisecond)
		}},
	}
	results := Run(specs, RunOptions{Full: true, Rounds: 3})
	if cheapRuns != 3 {
		t.Fatalf("cheap benchmark sampled %d times, want 3", cheapRuns)
	}
	if stressRuns != 1 {
		t.Fatalf("stress benchmark sampled %d times, want 1", stressRuns)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	// A 1.6s first round vs 1.05s later rounds: the kept sample must
	// come from a fast round.
	if results[0].NsPerOp >= float64(1400*time.Millisecond) {
		t.Fatalf("kept the slow round: %.0f ns/op", results[0].NsPerOp)
	}
}
