package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

// serveConfig pins the end-to-end serving benchmark: a spanhopd-shaped
// HTTP server (internal/server on a loopback listener) driven by
// loadgen-shaped concurrent clients.
type serveConfig struct {
	rows, cols  int32
	concurrency int
	requests    int
}

// serveBench measures one full load run per iteration and reports
// QPS plus client-side latency quantiles in microseconds — the same
// numbers loadgen prints, produced in-process so the suite needs no
// subprocess orchestration.
func serveBench(b *testing.B, cfg serveConfig) {
	b.Helper()
	srv := server.New(server.Config{BatchWindow: 200 * time.Microsecond})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	spec := fmt.Sprintf("grid:side=%d,w=uniform,maxw=50", cfg.rows)
	if cfg.rows != cfg.cols {
		b.Fatalf("serveBench uses the square grid spec; rows=%d cols=%d", cfg.rows, cfg.cols)
	}
	if _, err := srv.Registry().Add(server.GraphSpec{Name: "bench", Gen: spec, Eps: 0.25, Seed: suiteSeed}); err != nil {
		b.Fatal(err)
	}
	entry, ok := srv.Registry().Get("bench")
	if !ok {
		b.Fatal("registered graph vanished")
	}
	deadline := time.Now().Add(2 * time.Minute)
	for entry.Info().State != server.StateReady {
		if entry.Info().State == server.StateFailed {
			b.Fatalf("bench graph build failed: %s", entry.Info().Error)
		}
		if time.Now().After(deadline) {
			b.Fatal("bench graph never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	n := entry.Info().N

	client := &http.Client{Timeout: 30 * time.Second}
	url := base + "/graphs/bench/query"
	var qps, p50, p95, p99 float64
	for i := 0; i < b.N; i++ {
		lats := make([][]time.Duration, cfg.concurrency)
		start := time.Now()
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		for w := 0; w < cfg.concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				mix := workload.UniformMix(n, suiteSeed+uint64(w)*0x9e3779b9+uint64(i))
				per := cfg.requests / cfg.concurrency
				lats[w] = make([]time.Duration, 0, per)
				for q := 0; q < per; q++ {
					p := mix.Next()
					body, err := json.Marshal(map[string]any{"s": p[0], "t": p[1]})
					if err != nil {
						panic(err)
					}
					q0 := time.Now()
					resp, err := client.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					if resp.StatusCode != http.StatusOK {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("query status %d", resp.StatusCode)
						}
						errMu.Unlock()
						resp.Body.Close()
						return
					}
					resp.Body.Close()
					lats[w] = append(lats[w], time.Since(q0))
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if firstErr != nil {
			b.Fatal(firstErr)
		}
		var all []time.Duration
		for _, l := range lats {
			all = append(all, l...)
		}
		sort.Slice(all, func(x, y int) bool { return all[x] < all[y] })
		quant := func(p float64) float64 {
			if len(all) == 0 {
				return 0
			}
			idx := int(p * float64(len(all)))
			if idx >= len(all) {
				idx = len(all) - 1
			}
			return float64(all[idx].Microseconds())
		}
		qps = float64(len(all)) / elapsed.Seconds()
		p50, p95, p99 = quant(0.50), quant(0.95), quant(0.99)
	}
	b.ReportMetric(qps, "qps")
	b.ReportMetric(p50, "p50_us")
	b.ReportMetric(p95, "p95_us")
	b.ReportMetric(p99, "p99_us")
}
