package bench

import (
	"fmt"
	"regexp"
	"testing"
	"time"
)

// Spec is one entry of the canonical suite: a named benchmark
// function in the standard testing.B shape.
type Spec struct {
	Name string
	// FullOnly marks the large-graph stress entries that short mode
	// (CI) skips.
	FullOnly bool
	// OmitAllocs zeroes the allocation columns in the emitted result.
	// The end-to-end serving benchmarks allocate in the kernel's and
	// net/http's buffers, which jitter run-to-run; gating on them
	// would make the CI comparator flap without measuring anything
	// the repo controls.
	OmitAllocs bool
	Run        func(b *testing.B)
}

// RunOptions configures a suite run.
type RunOptions struct {
	// Full includes the FullOnly stress entries.
	Full bool
	// Filter, when non-nil, limits the run to matching spec names.
	Filter *regexp.Regexp
	// Rounds is the number of independent samples per benchmark; the
	// emitted result is the round with the lowest ns/op (min-of-N, the
	// usual anti-noise statistic for regression gates: scheduler and GC
	// interference only ever adds time, so the minimum is the best
	// estimate of the code's true cost). 0 or 1 = a single sample. The
	// FullOnly stress entries always run a single round — they are
	// multi-second per op and absent from the CI gate's short mode.
	Rounds int
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// Run executes the specs and returns their results in suite order.
func Run(specs []Spec, opt RunOptions) []Result {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var out []Result
	for _, s := range specs {
		if s.FullOnly && !opt.Full {
			continue
		}
		if opt.Filter != nil && !opt.Filter.MatchString(s.Name) {
			continue
		}
		rounds := opt.Rounds
		if rounds < 1 || s.FullOnly {
			rounds = 1
		}
		logf("running %s ...", s.Name)
		br := testing.Benchmark(s.Run)
		for r := 1; r < rounds; r++ {
			if next := testing.Benchmark(s.Run); betterSample(next, br) {
				br = next
			}
		}
		if br.N == 0 {
			// testing.Benchmark returns a zero result if the function
			// failed (b.Fatal/b.Error) — surface it instead of writing
			// a zero row that would read as "infinitely fast".
			logf("  %s FAILED (benchmark aborted)", s.Name)
			out = append(out, Result{Name: s.Name})
			continue
		}
		res := Result{
			Name:        s.Name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			BytesPerOp:  br.AllocedBytesPerOp(),
			AllocsPerOp: br.AllocsPerOp(),
		}
		if len(br.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(br.Extra))
			for k, v := range br.Extra {
				res.Metrics[k] = v
			}
		}
		if s.OmitAllocs {
			res.BytesPerOp, res.AllocsPerOp = 0, 0
		}
		logf("  %s: n=%d %s/op%s", s.Name, res.Iterations,
			time.Duration(res.NsPerOp).Round(time.Microsecond), metricSummary(res.Metrics))
		out = append(out, res)
	}
	return out
}

// betterSample reports whether a is a lower-ns/op sample than b. The
// whole winning round is kept as one coherent row (its alloc columns
// and reported metrics belong to the same execution), so a round that
// aborted (N == 0) never wins over one that ran.
func betterSample(a, b testing.BenchmarkResult) bool {
	if a.N == 0 || b.N == 0 {
		return b.N == 0 && a.N > 0
	}
	return a.NsPerOp() < b.NsPerOp()
}

func metricSummary(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	s := ""
	for _, k := range sortedKeys(m) {
		s += fmt.Sprintf(" %s=%.4g", k, m[k])
	}
	return s
}
