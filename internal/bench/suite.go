package bench

import (
	"bytes"
	"os"
	"sync"
	"testing"

	spanhop "repro"
	"repro/internal/graph"
)

// The canonical suite pins its inputs here. Every graph is
// deterministic in (family, size, seed), so two runs of the same
// binary measure the same workload bit-for-bit; the pinned seeds are
// part of the trajectory contract — changing them invalidates
// cross-report comparison, so don't.
const (
	suiteSeed = 2015 // the paper's year, like bench_test.go

	// rmat scale-22 stress graph: 2^22 vertices, 8M requested edges
	// (the power-law dedup leaves it slightly short). This is the
	// "does it survive a real social-graph shape" size: ~4.2M
	// vertices is far past every cache and forces the frontier
	// structures through main memory.
	stressScale    = 22
	stressEdges    = 8 << 20
	stressMaxW     = 64
	stressQueries  = 64

	// The DIMACS road stress graph: a 600x600 grid with multi-scale
	// weights — the high-diameter, low-degree shape of road networks
	// — serialized to .gr and parsed back, so the stress path
	// exercises the real reader on a ~1.4M-arc file.
	roadSide = 600
)

// graphCache memoizes the expensive pinned inputs across suite
// entries (the rmat-22 generation alone is seconds); keyed by name,
// built once, shared read-only.
var graphCache sync.Map // string -> *graph.Graph

func cachedGraph(name string, build func() *graph.Graph) *graph.Graph {
	if g, ok := graphCache.Load(name); ok {
		return g.(*graph.Graph)
	}
	g, _ := graphCache.LoadOrStore(name, build())
	return g.(*graph.Graph)
}

func buildGrid60() *graph.Graph {
	return cachedGraph("grid60", func() *graph.Graph {
		return spanhop.WithUniformWeights(spanhop.GridGraph(60, 60), 100, suiteSeed)
	})
}

func queryGrid50() *graph.Graph {
	return cachedGraph("grid50", func() *graph.Graph {
		return spanhop.WithUniformWeights(spanhop.GridGraph(50, 50), 500, 1)
	})
}

func erGraph() *graph.Graph {
	return cachedGraph("er", func() *graph.Graph {
		return spanhop.WithUniformWeights(spanhop.RandomGraph(4096, 4096*8, suiteSeed), 64, suiteSeed)
	})
}

func rmat22() *graph.Graph {
	return cachedGraph("rmat22", func() *graph.Graph {
		return spanhop.WithUniformWeights(spanhop.RMATGraph(stressScale, stressEdges, suiteSeed), stressMaxW, suiteSeed)
	})
}

func roadGraph() *graph.Graph {
	return cachedGraph("road", func() *graph.Graph {
		return spanhop.WithMultiScaleWeights(spanhop.GridGraph(roadSide, roadSide), 4, 5, suiteSeed)
	})
}

// roadDIMACS is the serialized .gr form of roadGraph, built once.
func roadDIMACS() []byte {
	if b, ok := graphCache.Load("road.gr"); ok {
		return b.([]byte)
	}
	var buf bytes.Buffer
	if err := graph.WriteDIMACS(&buf, roadGraph()); err != nil {
		panic(err)
	}
	b, _ := graphCache.LoadOrStore("road.gr", buf.Bytes())
	return b.([]byte)
}

// queryPairs returns a deterministic set of s-t pairs spread across
// the graph, the batch shape the serving layer fans out.
func queryPairs(g *graph.Graph, k int) [][2]graph.V {
	n := g.NumVertices()
	pairs := make([][2]graph.V, 0, k)
	for i := graph.V(0); int(i) < k; i++ {
		pairs = append(pairs, [2]graph.V{(i * 37) % n, (n - 1 - (i*53)%n) % n})
	}
	return pairs
}

// builtOracle memoizes a built oracle for the query-side benchmarks
// so they do not pay preprocessing per run.
func builtOracle(name string, g *graph.Graph) *spanhop.DistanceOracle {
	cacheName := "oracle:" + name
	if o, ok := graphCache.Load(cacheName); ok {
		return o.(*spanhop.DistanceOracle)
	}
	o, _ := graphCache.LoadOrStore(cacheName, spanhop.NewDistanceOracle(g, 0.25, 2))
	return o.(*spanhop.DistanceOracle)
}

// flatSnapshotFile memoizes the flat-arena (v3) snapshot file of
// name's oracle and returns its path.
func flatSnapshotFile(b *testing.B, name string, g *graph.Graph) string {
	cacheName := "flat-file:" + name
	if p, ok := graphCache.Load(cacheName); ok {
		return p.(string)
	}
	o := builtOracle(name, g)
	f, err := os.CreateTemp("", "spanhop-bench-*.snap")
	if err != nil {
		b.Fatal(err)
	}
	if err := spanhop.SaveOracleFlat(f, o); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	p, _ := graphCache.LoadOrStore(cacheName, f.Name())
	return p.(string)
}

// flatOracle memoizes a flat-arena-backed restore of name's oracle
// (OpenOracleFile over the memoized snapshot), so the flat query
// benchmarks measure the mapped-memory serving path against the same
// workload the pointer-oracle entries run.
func flatOracle(b *testing.B, name string, g *graph.Graph) *spanhop.DistanceOracle {
	cacheName := "flat-oracle:" + name
	if o, ok := graphCache.Load(cacheName); ok {
		return o.(*spanhop.DistanceOracle)
	}
	o, _, err := spanhop.OpenOracleFile(flatSnapshotFile(b, name, g), g, spanhop.OracleOptions{})
	if err != nil {
		b.Fatal(err)
	}
	got, _ := graphCache.LoadOrStore(cacheName, o)
	return got.(*spanhop.DistanceOracle)
}

// Suite returns the canonical benchmark list in trajectory order.
func Suite() []Spec {
	return []Spec{
		// --- oracle preprocessing: the registry's build path ---
		{Name: "build/grid-60x60", Run: func(b *testing.B) {
			g := buildGrid60()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spanhop.NewDistanceOracle(g, 0.25, 2)
			}
		}},
		{Name: "build/grid-60x60-exec-parallel", Run: func(b *testing.B) {
			g := buildGrid60()
			ec := spanhop.ParallelExec(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spanhop.NewDistanceOracleOpts(g, 0.25, 2, spanhop.OracleOptions{Exec: ec})
			}
		}},
		{Name: "build/er-n4096-d8", Run: func(b *testing.B) {
			g := erGraph()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spanhop.NewDistanceOracle(g, 0.25, 2)
			}
		}},

		// --- steady-state queries: the serving hot path ---
		{Name: "query/serial-grid-50x50", Run: func(b *testing.B) {
			o := builtOracle("grid50", queryGrid50())
			pairs := queryPairs(o.Graph(), 64)
			warmBatch(b, o, pairs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					if _, err := o.QueryStats(p[0], p[1]); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{Name: "query/batch-grid-50x50", Run: func(b *testing.B) {
			o := builtOracle("grid50", queryGrid50())
			pairs := queryPairs(o.Graph(), 64)
			warmBatch(b, o, pairs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.QueryBatch(pairs); err != nil {
					b.Fatal(err)
				}
			}
		}},

		// --- dynamic overlay: clean / improving / degrading regimes ---
		{Name: "dynamic/clean", Run: func(b *testing.B) { dynamicBench(b, 0, 0) }},
		{Name: "dynamic/improving-8-inserts", Run: func(b *testing.B) { dynamicBench(b, 8, 0) }},
		{Name: "dynamic/degrading-8-deletes", Run: func(b *testing.B) { dynamicBench(b, 0, 8) }},

		// --- snapshot codec: warm-start save/load ---
		{Name: "snapshot/save-grid-50x50", Run: func(b *testing.B) {
			o := builtOracle("grid50", queryGrid50())
			var buf bytes.Buffer
			if err := spanhop.SaveOracle(&buf, o); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := spanhop.SaveOracle(&buf, o); err != nil {
					b.Fatal(err)
				}
			}
			// After ResetTimer: it clears previously reported metrics.
			b.ReportMetric(float64(buf.Len()), "snapshot_bytes")
		}},
		{Name: "snapshot/load-grid-50x50", Run: func(b *testing.B) {
			g := queryGrid50()
			o := builtOracle("grid50", g)
			var buf bytes.Buffer
			if err := spanhop.SaveOracle(&buf, o); err != nil {
				b.Fatal(err)
			}
			raw := buf.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := spanhop.LoadOracle(bytes.NewReader(raw), g, spanhop.OracleOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},

		// --- flat arena (snapshot v3): mmap warm start + mapped-memory
		// queries, against the same grid the codec and pointer entries
		// measure ---
		{Name: "snapshot/save-flat-grid-50x50", Run: func(b *testing.B) {
			o := builtOracle("grid50", queryGrid50())
			var buf bytes.Buffer
			if err := spanhop.SaveOracleFlat(&buf, o); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := spanhop.SaveOracleFlat(&buf, o); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(buf.Len()), "snapshot_bytes")
		}},
		{Name: "snapshot/mmap-load-grid-50x50", Run: func(b *testing.B) {
			g := queryGrid50()
			path := flatSnapshotFile(b, "grid50", g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := spanhop.OpenOracleFile(path, g, spanhop.OracleOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "query/flat-serial-grid-50x50", Run: func(b *testing.B) {
			o := flatOracle(b, "grid50", queryGrid50())
			pairs := queryPairs(o.Graph(), 64)
			warmBatch(b, o, pairs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					if _, err := o.QueryStats(p[0], p[1]); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{Name: "query/flat-batch-grid-50x50", Run: func(b *testing.B) {
			o := flatOracle(b, "grid50", queryGrid50())
			pairs := queryPairs(o.Graph(), 64)
			warmBatch(b, o, pairs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.QueryBatch(pairs); err != nil {
					b.Fatal(err)
				}
			}
		}},

		// --- end-to-end serving: spanhopd-shaped HTTP + loadgen-shaped
		// clients, QPS and client latency quantiles ---
		{Name: "serve/e2e-grid-30x30", OmitAllocs: true, Run: func(b *testing.B) {
			serveBench(b, serveConfig{rows: 30, cols: 30, concurrency: 8, requests: 2000})
		}},

		// --- large-graph stress (full mode only) ---
		{Name: "stress/rmat22-gen", FullOnly: true, Run: func(b *testing.B) {
			// Measures the generator itself once; also warms the cache
			// for the other rmat-22 entries.
			g := rmat22()
			b.ReportMetric(float64(g.NumVertices()), "vertices")
			b.ReportMetric(float64(g.NumEdges()), "edges")
		}},
		{Name: "stress/rmat22-sssp-deltastep", FullOnly: true, Run: func(b *testing.B) {
			g := rmat22()
			ec := spanhop.ParallelExec(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := spanhop.ParallelShortestPathsOn(g, 0, ec, nil)
				res.Release(ec)
			}
		}},
		{Name: "stress/rmat22-sssp-dijkstra", FullOnly: true, Run: func(b *testing.B) {
			g := rmat22()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spanhop.ShortestPaths(g, 0)
			}
		}},
		{Name: "stress/rmat22-spanner", FullOnly: true, Run: func(b *testing.B) {
			g := rmat22()
			ec := spanhop.ParallelExec(0)
			var size int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := spanhop.UnweightedSpannerOn(g, 3, suiteSeed, ec, nil)
				size = int64(sp.Size())
			}
			b.ReportMetric(float64(size), "spanner_edges")
		}},
		{Name: "stress/dimacs-road-read", FullOnly: true, Run: func(b *testing.B) {
			raw := roadDIMACS()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := graph.ReadDIMACS(bytes.NewReader(raw)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(raw)), "gr_bytes")
		}},
		{Name: "stress/dimacs-road-sssp", FullOnly: true, Run: func(b *testing.B) {
			g := roadGraph()
			ec := spanhop.ParallelExec(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := spanhop.ParallelShortestPathsOn(g, 0, ec, nil)
				res.Release(ec)
			}
		}},
		{Name: "stress/dimacs-road-querybatch", FullOnly: true, Run: func(b *testing.B) {
			// Degenerate-free oracle build at road scale is a
			// multi-minute affair; the serving-relevant stress is the
			// query side, so build once (cached) and batch-query.
			g := roadGraph()
			o := builtOracle("road", g)
			pairs := queryPairs(g, stressQueries)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.QueryBatch(pairs); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

func warmBatch(b *testing.B, o *spanhop.DistanceOracle, pairs [][2]graph.V) {
	b.Helper()
	if _, err := o.QueryBatch(pairs); err != nil {
		b.Fatal(err)
	}
}

// dynamicBench measures the overlay query path with the given number
// of improving (insert) and degrading (delete) mutations applied.
func dynamicBench(b *testing.B, inserts, deletes int) {
	g := cachedGraph("grid40", func() *graph.Graph {
		return spanhop.WithUniformWeights(spanhop.GridGraph(40, 40), 50, 3)
	})
	n := g.NumVertices()
	o := builtOracle("grid40", g)
	d := spanhop.NewDynamicOracle(o, spanhop.RebuildPolicy{Disabled: true})
	defer d.Close()
	var ups []spanhop.DynamicUpdate
	for i := 0; i < inserts; i++ {
		ups = append(ups, spanhop.DynamicUpdate{
			Op: spanhop.UpdateInsert, U: graph.V(i * 11), V: n - 1 - graph.V(i*17), W: graph.W(i + 1),
		})
	}
	for i := 0; i < deletes; i++ {
		e := g.Edges()[i*31]
		ups = append(ups, spanhop.DynamicUpdate{Op: spanhop.UpdateDelete, U: e.U, V: e.V})
	}
	if len(ups) > 0 {
		if _, err := d.ApplyUpdates(ups); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Query(graph.V(i)%n, graph.V(i*7+13)%n); err != nil {
			b.Fatal(err)
		}
	}
}
