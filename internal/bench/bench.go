// Package bench makes the repo's performance trajectory a checked-in
// artifact. It runs a canonical benchmark suite (oracle build, batch
// and dynamic-overlay queries, snapshot save/load, end-to-end serving
// QPS/latency, and large-graph stress runs) on pinned graph specs and
// emits a schema-versioned JSON report — the BENCH_<n>.json files at
// the repo root. A comparator diffs two reports and flags >threshold
// regressions, which is what the CI bench-gate job enforces.
//
// The package deliberately reuses testing.Benchmark so every suite
// entry is an ordinary benchmark function: the same calibration,
// timer, and allocation accounting as `go test -bench`, without the
// test binary.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
)

// SchemaVersion identifies the BENCH_*.json layout. Decode rejects
// any other version: trajectory files are compared across PRs, so a
// silent schema drift would corrupt the history.
const SchemaVersion = 1

// Machine describes the host a report was produced on. Reports from
// different machines are comparable only with a warning: absolute
// numbers move with hardware, and the comparator says so.
type Machine struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// Result is one benchmark's outcome. Metrics carries the extra
// b.ReportMetric values (QPS, latency quantiles in microseconds,
// sizes); the three canonical costs get their own fields.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the schema-versioned content of a BENCH_<n>.json file.
type Report struct {
	Schema    int      `json:"schema"`
	Mode      string   `json:"mode"` // "short" or "full"
	CreatedAt string   `json:"created_at,omitempty"`
	GitRev    string   `json:"git_rev,omitempty"`
	Note      string   `json:"note,omitempty"`
	Machine   Machine  `json:"machine"`
	Results   []Result `json:"results"`
}

// HostMachine collects the current host's description.
func HostMachine() Machine {
	m := Machine{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if h, err := os.Hostname(); err == nil {
		m.Hostname = h
	}
	m.CPUModel = cpuModel()
	return m
}

// cpuModel extracts the CPU model string, best-effort (linux only;
// empty elsewhere).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return ""
}

// Encode writes r as indented JSON (stable field order, trailing
// newline): the diff-friendly shape for a file that lives in git.
func Encode(w io.Writer, r *Report) error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("bench: encoding schema %d, this build writes %d", r.Schema, SchemaVersion)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode reads a report and validates its schema version and basic
// shape. Unknown schema versions are an error, not a guess.
func Decode(r io.Reader) (*Report, error) {
	dec := json.NewDecoder(r)
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: decode: %w", err)
	}
	if rep.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: unsupported schema version %d (this build reads %d)", rep.Schema, SchemaVersion)
	}
	seen := make(map[string]struct{}, len(rep.Results))
	for i, res := range rep.Results {
		if res.Name == "" {
			return nil, fmt.Errorf("bench: result %d has no name", i)
		}
		if _, dup := seen[res.Name]; dup {
			return nil, fmt.Errorf("bench: duplicate result %q", res.Name)
		}
		seen[res.Name] = struct{}{}
	}
	return &rep, nil
}

// ReadFile decodes the report at path.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// WriteFile encodes the report to path atomically (tmp + rename), so
// an interrupted run never leaves a torn trajectory file.
func WriteFile(path string, r *Report) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Encode(f, r); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
