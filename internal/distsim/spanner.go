package distsim

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// This file ports the paper's unweighted spanner (Algorithm 2) to the
// synchronized distributed model, as Section 2.2 says is possible:
// "its employs breadth first search, which admits a simple
// implementation in synchronized distributed networks".
//
// Each vertex knows n, k, and a shared seed (used only to make the
// simulation reproducible; real deployments draw locally). The EST
// race runs as a flood: vertex v wakes at round floor(C − δ_v) and
// claims itself; an assigned vertex forwards its cluster's claim once.
// Claims are compared by (arrival round, center fraction, center id),
// which orders them exactly by real arrival time C − δ_center + dist —
// so the resulting partition provably equals the shared-memory
// clustering on the same shifts (adding the constant C−δ_max to every
// key preserves the order). Two closing rounds exchange cluster ids
// and select one boundary edge per (vertex, adjacent cluster) pair.

// Phase-1 claim: join center's cluster.
type claimMsg struct {
	center graph.V
	frac   float64
	dist   int32
}

// Phase-2 announcement: my cluster id.
type clusterMsg struct {
	center graph.V
}

// SpannerNode is the per-vertex state of the distributed spanner.
type SpannerNode struct {
	g *graph.Graph
	v graph.V

	wakeRound int
	wakeFrac  float64
	raceEnd   int // rounds [0, raceEnd) run the race

	center    graph.V
	parent    graph.V
	frac      float64
	dist      int32
	forwarded bool

	neighborCluster map[graph.V]graph.V

	// SelectedEdges are the spanner edges this vertex is responsible
	// for: its tree edge (parent, v) and its boundary picks (v, u).
	SelectedEdges [][2]graph.V
}

// NewSpannerNetwork prepares the distributed spanner protocol on g
// with stretch parameter k. It returns the network plus the node list
// (to collect results after Run). The shifts are drawn from seed in
// vertex order, which makes the outcome comparable to
// core.Cluster(g, ln(n)/(2k), seed).
func NewSpannerNetwork(g *graph.Graph, k int, seed uint64) (*Network, []*SpannerNode, int) {
	n := g.NumVertices()
	beta := math.Log(float64(max32(n, 3))) / (2 * float64(k))
	// C bounds both the largest shift (clamped, probability n^{-3})
	// and, consequently, the largest cluster radius, so the race is
	// deterministically over by round 2C.
	c := int(math.Ceil(3*math.Log(float64(max32(n, 3)))/beta)) + 1
	r := rng.New(seed)
	nodes := make([]*SpannerNode, n)
	raceEnd := 2*c + 2
	for v := graph.V(0); v < n; v++ {
		delta := r.Exp(beta)
		if delta > float64(c)-0.5 {
			delta = float64(c) - 0.5
		}
		s := float64(c) - delta
		nodes[v] = &SpannerNode{
			g:         g,
			v:         v,
			wakeRound: int(math.Floor(s)),
			wakeFrac:  s - math.Floor(s),
			raceEnd:   raceEnd,
			center:    graph.NoVertex,
			parent:    graph.NoVertex,
		}
	}
	net := New(g, func(v graph.V) Node { return nodes[v] })
	return net, nodes, raceEnd
}

func max32(a graph.V, b graph.V) graph.V {
	if a > b {
		return a
	}
	return b
}

// Step implements the protocol state machine.
func (nd *SpannerNode) Step(round int, inbox []Envelope) (map[graph.V]Message, bool) {
	switch {
	case round < nd.raceEnd:
		return nd.raceStep(round, inbox), false
	case round == nd.raceEnd:
		// Phase 2: announce cluster id to all neighbors.
		return Broadcast(nd.g, nd.v, clusterMsg{center: nd.center}), false
	default:
		// Phase 3: pick one boundary edge per adjacent foreign
		// cluster, then halt.
		nd.neighborCluster = map[graph.V]graph.V{}
		for _, env := range inbox {
			if m, ok := env.Payload.(clusterMsg); ok {
				nd.neighborCluster[env.From] = m.center
			}
		}
		nd.selectEdges()
		return nil, true
	}
}

// raceStep processes one round of the clustering race.
func (nd *SpannerNode) raceStep(round int, inbox []Envelope) map[graph.V]Message {
	if nd.center == graph.NoVertex {
		// Gather this round's claims (all arrive with the same
		// integer arrival = this round).
		best := claimMsg{center: graph.NoVertex}
		consider := func(c claimMsg) {
			if best.center == graph.NoVertex ||
				c.frac < best.frac ||
				(c.frac == best.frac && c.center < best.center) {
				best = c
			}
		}
		for _, env := range inbox {
			if m, ok := env.Payload.(claimMsg); ok {
				consider(m)
			}
		}
		var parent graph.V = graph.NoVertex
		for _, env := range inbox {
			if m, ok := env.Payload.(claimMsg); ok {
				if m == best {
					parent = env.From
					break
				}
			}
		}
		if round == nd.wakeRound {
			consider(claimMsg{center: nd.v, frac: nd.wakeFrac, dist: 0})
			if best.center == nd.v {
				parent = graph.NoVertex
			}
		}
		if best.center != graph.NoVertex {
			nd.center = best.center
			nd.parent = parent
			nd.frac = best.frac
			nd.dist = best.dist
		}
	}
	if nd.center != graph.NoVertex && !nd.forwarded {
		nd.forwarded = true
		return Broadcast(nd.g, nd.v, claimMsg{
			center: nd.center,
			frac:   nd.frac,
			dist:   nd.dist + 1,
		})
	}
	return nil
}

// selectEdges records the tree edge and the per-cluster boundary
// picks (lowest neighbor id per foreign cluster, a deterministic local
// rule).
func (nd *SpannerNode) selectEdges() {
	if nd.parent != graph.NoVertex {
		nd.SelectedEdges = append(nd.SelectedEdges, [2]graph.V{nd.parent, nd.v})
	}
	bestPerCluster := map[graph.V]graph.V{}
	for _, u := range nd.g.Neighbors(nd.v) {
		cu, ok := nd.neighborCluster[u]
		if !ok || cu == nd.center {
			continue
		}
		if prev, seen := bestPerCluster[cu]; !seen || u < prev {
			bestPerCluster[cu] = u
		}
	}
	for _, u := range bestPerCluster {
		nd.SelectedEdges = append(nd.SelectedEdges, [2]graph.V{nd.v, u})
	}
}

// Center returns the node's cluster center after the run.
func (nd *SpannerNode) Center() graph.V { return nd.center }

// DistributedSpanner runs the full protocol and returns the spanner as
// a deduplicated vertex-pair list together with the simulation stats.
func DistributedSpanner(g *graph.Graph, k int, seed uint64) ([][2]graph.V, Stats, error) {
	net, nodes, raceEnd := NewSpannerNetwork(g, k, seed)
	stats, err := net.Run(raceEnd + 8)
	if err != nil {
		return nil, stats, err
	}
	seen := map[[2]graph.V]bool{}
	var out [][2]graph.V
	for _, nd := range nodes {
		for _, e := range nd.SelectedEdges {
			a, b := e[0], e[1]
			if a > b {
				a, b = b, a
			}
			key := [2]graph.V{a, b}
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out, stats, nil
}
