package distsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sssp"
)

// echoNode sends a counter to all neighbors for a fixed number of
// rounds, then halts; used to validate the simulator itself.
type echoNode struct {
	g        *graph.Graph
	v        graph.V
	rounds   int
	received int
}

func (e *echoNode) Step(round int, inbox []Envelope) (map[graph.V]Message, bool) {
	e.received += len(inbox)
	if round >= e.rounds {
		return nil, true
	}
	return Broadcast(e.g, e.v, round), false
}

func TestSimulatorDeliversEverything(t *testing.T) {
	g := graph.Cycle(10)
	nodes := make([]*echoNode, 10)
	net := New(g, func(v graph.V) Node {
		nodes[v] = &echoNode{g: g, v: v, rounds: 5}
		return nodes[v]
	})
	stats, err := net.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	// 5 rounds of broadcast × 2 messages per vertex per round × 10
	// vertices = 100 messages; each vertex receives 2 per round for
	// rounds 1..5 = 10 (deliveries to halted nodes are dropped but
	// all nodes halt together here).
	if stats.Messages != 100 {
		t.Fatalf("messages = %d, want 100", stats.Messages)
	}
	for v, nd := range nodes {
		if nd.received != 10 {
			t.Fatalf("vertex %d received %d, want 10", v, nd.received)
		}
	}
	if stats.MaxPerRound != 20 {
		t.Fatalf("max per round = %d, want 20", stats.MaxPerRound)
	}
}

// rogueNode tries to message a non-neighbor.
type rogueNode struct{ to graph.V }

func (r *rogueNode) Step(round int, inbox []Envelope) (map[graph.V]Message, bool) {
	return map[graph.V]Message{r.to: "boo"}, true
}

func TestSimulatorRejectsNonNeighborSend(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3; 0 and 3 not adjacent
	net := New(g, func(v graph.V) Node {
		if v == 0 {
			return &rogueNode{to: 3}
		}
		return &echoNode{g: g, v: v, rounds: 0}
	})
	if _, err := net.Run(10); err == nil {
		t.Fatal("expected non-neighbor send to error")
	}
}

type foreverNode struct{}

func (foreverNode) Step(int, []Envelope) (map[graph.V]Message, bool) { return nil, false }

func TestSimulatorMaxRounds(t *testing.T) {
	g := graph.Path(2)
	net := New(g, func(graph.V) Node { return foreverNode{} })
	if _, err := net.Run(7); err == nil {
		t.Fatal("expected max-rounds error")
	}
}

// maxShift returns the largest shift the spanner protocol would draw,
// so tests can skip the measure-zero clamped cases when comparing to
// the shared-memory clustering.
func maxShift(n graph.V, k int, seed uint64) (float64, float64) {
	beta := math.Log(float64(max32(n, 3))) / (2 * float64(k))
	c := math.Ceil(3*math.Log(float64(max32(n, 3)))/beta) + 1
	r := rng.New(seed)
	worst := 0.0
	for v := graph.V(0); v < n; v++ {
		if d := r.Exp(beta); d > worst {
			worst = d
		}
	}
	return worst, c
}

// TestDistributedClusteringMatchesSharedMemory: the distributed race
// must produce exactly the partition of core.Cluster on the same
// shifts (the order-preservation argument in the file comment).
func TestDistributedClusteringMatchesSharedMemory(t *testing.T) {
	cases := []*graph.Graph{
		graph.Path(40),
		graph.Cycle(30),
		graph.Grid2D(8, 9),
		graph.RandomConnectedGNM(150, 500, 4),
	}
	k := 3
	for gi, g := range cases {
		seed := uint64(gi + 10)
		worst, c := maxShift(g.NumVertices(), k, seed)
		if worst > c-0.5 {
			t.Logf("graph %d: shift clamped, skipping equivalence", gi)
			continue
		}
		_, nodes, raceEnd := NewSpannerNetwork(g, k, seed)
		net := New(g, func(v graph.V) Node { return nodes[v] })
		if _, err := net.Run(raceEnd + 8); err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		beta := math.Log(float64(max32(g.NumVertices(), 3))) / (2 * float64(k))
		ref := core.Cluster(g, beta, seed, core.Options{})
		for v := graph.V(0); v < g.NumVertices(); v++ {
			if nodes[v].Center() != ref.Center[v] {
				t.Fatalf("graph %d vertex %d: distributed center %d != shared-memory %d",
					gi, v, nodes[v].Center(), ref.Center[v])
			}
		}
	}
}

func TestDistributedSpannerStretchAndConnectivity(t *testing.T) {
	g := graph.RandomConnectedGNM(200, 800, 9)
	k := 3
	pairs, stats, err := DistributedSpanner(g, k, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("empty distributed spanner")
	}
	// Round bound: the protocol is O(k log n)-flavored; assert the
	// concrete 2C+2 schedule plus closing rounds.
	if stats.Rounds > 40*k+40 {
		t.Fatalf("rounds = %d, too many for k=%d", stats.Rounds, k)
	}
	// Message bound: the race sends ≤ 1 claim per edge direction plus
	// one cluster announcement per direction.
	if stats.Messages > 5*2*g.NumEdges() {
		t.Fatalf("messages = %d exceed O(m) envelope", stats.Messages)
	}
	// Materialize and check stretch like the shared-memory spanner.
	edges := make([]graph.Edge, len(pairs))
	for i, p := range pairs {
		edges[i] = graph.Edge{U: p[0], V: p[1], W: 1}
	}
	h := graph.FromEdges(g.NumVertices(), edges, false)
	if _, count := h.Components(); count != 1 {
		t.Fatal("distributed spanner lost connectivity")
	}
	worst := 0.0
	for _, e := range g.Edges() {
		res := sssp.BFS(h, []graph.V{e.U}, sssp.Options{})
		if !res.Reached(e.V) {
			t.Fatal("edge endpoints disconnected in spanner")
		}
		if s := float64(res.Dist[e.V]); s > worst {
			worst = s
		}
	}
	if worst > float64(10*k+2) {
		t.Fatalf("distributed spanner stretch %v exceeds O(k) envelope", worst)
	}
}

func TestDistributedSpannerDeterministic(t *testing.T) {
	g := graph.RandomConnectedGNM(80, 240, 3)
	a, _, err1 := DistributedSpanner(g, 2, 5)
	b, _, err2 := DistributedSpanner(g, 2, 5)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different spanners")
		}
	}
}

func TestDistributedSpannerSparsifies(t *testing.T) {
	g := graph.RandomConnectedGNM(400, 6000, 13)
	pairs, _, err := DistributedSpanner(g, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(pairs)) >= g.NumEdges() {
		t.Fatalf("distributed spanner kept all %d edges", len(pairs))
	}
}
