// Package distsim is a synchronized distributed message-passing
// simulator (the CONGEST-style model of the paper's Section 2.2
// discussion): computation proceeds in rounds; in each round every
// vertex processes the messages delivered in the previous round,
// updates local state, and sends at most one bounded-size message per
// incident edge.
//
// The paper observes that its unweighted spanner construction "can be
// ported to this distributed setting with similar guarantees, as it
// employs breadth first search, which admits a simple implementation
// in synchronized distributed networks". This package provides the
// simulator and spanner.go implements that port: EST clustering as a
// distributed race (each vertex wakes at its shifted start time and
// floods cluster claims), followed by one round of boundary-edge
// proposals. The number of rounds matches the O(k log n)-flavored
// bound, and the per-round message complexity is at most one message
// per edge direction, both of which the simulator reports.
//
// The simulator is deterministic: vertices are stepped in id order and
// message delivery order is (sender id, edge order).
package distsim

import (
	"fmt"

	"repro/internal/graph"
)

// Message is an opaque payload exchanged between neighbors. Algorithms
// define their own concrete types; the simulator only routes.
type Message interface{}

// Envelope is a delivered message with its arrival port.
type Envelope struct {
	// From is the sending neighbor.
	From graph.V
	// Payload is the message content.
	Payload Message
}

// Node is the algorithm state at one vertex.
type Node interface {
	// Step processes one synchronous round: inbox holds the messages
	// delivered this round; the returned map routes outgoing messages
	// by neighbor (only neighbors of the vertex are legal keys; a nil
	// or empty map sends nothing). halted=true means the node has
	// terminated and will not be stepped again (late messages are
	// dropped).
	Step(round int, inbox []Envelope) (outbox map[graph.V]Message, halted bool)
}

// Stats summarizes a finished simulation.
type Stats struct {
	// Rounds executed before global quiescence.
	Rounds int
	// Messages is the total message count.
	Messages int64
	// MaxPerRound is the peak per-round message count (congestion).
	MaxPerRound int64
}

// Network couples a graph with per-vertex algorithm nodes.
type Network struct {
	g     *graph.Graph
	nodes []Node
}

// New builds a network over g; factory constructs the node for each
// vertex.
func New(g *graph.Graph, factory func(v graph.V) Node) *Network {
	n := &Network{g: g, nodes: make([]Node, g.NumVertices())}
	for v := graph.V(0); v < g.NumVertices(); v++ {
		n.nodes[v] = factory(v)
	}
	return n
}

// Run executes synchronous rounds until every node has halted and no
// messages are in flight, or maxRounds is reached (returned error).
func (n *Network) Run(maxRounds int) (Stats, error) {
	var stats Stats
	inboxes := make([][]Envelope, len(n.nodes))
	halted := make([]bool, len(n.nodes))
	haltedCount := 0
	pending := int64(0)
	for round := 0; ; round++ {
		if haltedCount == len(n.nodes) && pending == 0 {
			stats.Rounds = round
			return stats, nil
		}
		if round >= maxRounds {
			stats.Rounds = round
			return stats, fmt.Errorf("distsim: no quiescence after %d rounds", maxRounds)
		}
		next := make([][]Envelope, len(n.nodes))
		var sentThisRound int64
		pending = 0
		for v := range n.nodes {
			if halted[v] {
				continue
			}
			inbox := inboxes[v]
			inboxes[v] = nil
			out, h := n.nodes[v].Step(round, inbox)
			if h {
				halted[v] = true
				haltedCount++
			}
			for to, payload := range out {
				if !n.adjacent(graph.V(v), to) {
					return stats, fmt.Errorf("distsim: vertex %d sent to non-neighbor %d", v, to)
				}
				next[to] = append(next[to], Envelope{From: graph.V(v), Payload: payload})
				sentThisRound++
			}
		}
		// Deliver (messages to halted nodes are dropped, but still
		// count as sent).
		for v := range next {
			if halted[v] {
				next[v] = nil
				continue
			}
			pending += int64(len(next[v]))
			// Wake a quiescent-but-not-halted node only when it has
			// mail; all nodes are stepped anyway in this simple
			// stepper, so nothing to do.
		}
		inboxes = next
		stats.Messages += sentThisRound
		if sentThisRound > stats.MaxPerRound {
			stats.MaxPerRound = sentThisRound
		}
	}
}

func (n *Network) adjacent(u, v graph.V) bool {
	// Degree-bounded scan; the simulator is a correctness harness,
	// not a performance path.
	for _, x := range n.g.Neighbors(u) {
		if x == v {
			return true
		}
	}
	return false
}

// Broadcast is a helper constructing an outbox that sends the same
// payload to every neighbor of v.
func Broadcast(g *graph.Graph, v graph.V, payload Message) map[graph.V]Message {
	out := make(map[graph.V]Message, g.Degree(v))
	for _, u := range g.Neighbors(v) {
		out[u] = payload
	}
	return out
}
