package sssp

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
)

// waitGoroutines polls until the goroutine count falls back to at
// most base+slack (the pooled workers are part of base).
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: base %d, now %d", base, runtime.NumGoroutine())
}

// TestExecResultsBitIdentical: searches on an execution context (with
// arena-recycled buffers, twice to force reuse) must equal the legacy
// paths exactly.
func TestExecResultsBitIdentical(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(3000, 12000, 5), 32, 6)
	want := Dijkstra(g, []graph.V{0}, Options{})
	ec := exec.Parallel(4)
	for round := 0; round < 3; round++ {
		res := DeltaStepping(g, []graph.V{0}, Options{Exec: ec})
		for v := range want.Dist {
			if res.Dist[v] != want.Dist[v] {
				t.Fatalf("round %d: dist[%d] = %d, want %d", round, v, res.Dist[v], want.Dist[v])
			}
		}
		res.Release(ec)

		seq := exec.Sequential()
		dial := Dial(g, []graph.V{0}, Options{Exec: seq})
		for v := range want.Dist {
			if dial.Dist[v] != want.Dist[v] {
				t.Fatalf("round %d: dial dist[%d] = %d, want %d", round, v, dial.Dist[v], want.Dist[v])
			}
		}
		dial.Release(seq)
	}
}

// TestDeltaSteppingCancel aborts a Δ-stepping run mid-flight and
// checks it returns promptly without leaking goroutines.
func TestDeltaSteppingCancel(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(60_000, 480_000, 7), 64, 8)
	// Warm the worker pool so the baseline includes it.
	DeltaStepping(g, []graph.V{0}, Options{Exec: exec.Parallel(0)}).Release(nil)
	base := runtime.NumGoroutine()

	// Pre-canceled: must return immediately after at most one bucket.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := exec.New(exec.Options{Context: ctx})
	res := DeltaStepping(g, []graph.V{0}, Options{Exec: ec})
	if ec.Err() == nil {
		t.Fatal("expected canceled context")
	}
	_ = res // invalid by contract; only its existence matters

	// Mid-run cancel: fire after a short delay, require prompt return.
	ctx2, cancel2 := context.WithCancel(context.Background())
	ec2 := exec.New(exec.Options{Context: ctx2})
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel2()
	}()
	done := make(chan struct{})
	go func() {
		DeltaStepping(g, []graph.V{0}, Options{Exec: ec2})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled Δ-stepping did not return")
	}
	waitGoroutines(t, base, 4)
}

// TestBFSAndHopLimitedCancel covers the remaining round-boundary
// checks: a pre-canceled context stops BFS and Bellman–Ford at their
// first round.
func TestBFSAndHopLimitedCancel(t *testing.T) {
	g := graph.RandomConnectedGNM(5000, 20000, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := exec.New(exec.Options{Context: ctx})

	res := BFS(g, []graph.V{0}, Options{Exec: ec})
	reached := 0
	for _, d := range res.Dist {
		if d < graph.InfDist {
			reached++
		}
	}
	if reached > 1 {
		t.Fatalf("canceled BFS settled %d vertices, want just the source", reached)
	}

	dist := HopLimitedOn(ec, g, nil, []graph.V{0}, 8, nil)
	reached = 0
	for _, d := range dist {
		if d < graph.InfDist {
			reached++
		}
	}
	if reached > 1 {
		t.Fatalf("canceled HopLimited settled %d vertices", reached)
	}
	dist2 := HopLimitedParallelOn(ec, g, nil, []graph.V{0}, 8, nil)
	reached = 0
	for _, d := range dist2 {
		if d < graph.InfDist {
			reached++
		}
	}
	if reached > 1 {
		t.Fatalf("canceled HopLimitedParallel settled %d vertices", reached)
	}
}
