// Package sssp implements the shortest-path searches the paper builds
// on: level-synchronous parallel BFS in the style of Ullman–Yannakakis
// [UY91], its weighted counterpart via Dial bucket queues (the
// "weighted parallel BFS" of Section 5), hop-limited Bellman–Ford
// rounds (the h-hop distances that define hopsets), and a sequential
// Dijkstra used as the exact reference in tests and evaluations.
//
// Depth accounting follows the paper: one synchronous round per BFS
// level (or per Dial bucket), with the CRCW O(log* n) per-round factor
// treated as a model constant (Appendix A). Work is the number of
// edge relaxations plus vertex settlements.
//
// All searches accept an optional vertex restriction (Mark/Token):
// only vertices v with Mark[v] == Token participate. The hopset
// recursion uses this to search inside a cluster without materializing
// the induced subgraph.
package sssp

import (
	"container/heap"
	"fmt"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/par"
)

// Options configures a search.
type Options struct {
	// Cost accumulates PRAM work/depth; may be nil.
	Cost *par.Cost
	// MaxDist stops the search once settled distances would exceed
	// this bound; 0 means unbounded. Vertices beyond it keep InfDist.
	MaxDist graph.Dist
	// Mark/Token restrict the search to vertices v with
	// Mark[v] == Token. A nil Mark admits every vertex.
	Mark  []int32
	Token int32
	// Exec is the execution context the search runs on: its worker cap
	// bounds every goroutine fan-out, its arenas back the result and
	// scratch buffers (release results with Result.Release), and its
	// cancellation is polled at level/bucket boundaries — a canceled
	// search returns immediately with an invalid partial result, so
	// callers must check Exec.Err() before using it. Nil keeps the
	// legacy behavior (full GOMAXPROCS, plain allocation, no
	// cancellation).
	Exec *exec.Ctx
	// Parallel selects the multicore implementation in the Weighted
	// dispatcher: Δ-stepping instead of the sequential Dial. The
	// sequential paths remain the reference oracles for differential
	// tests; distances are identical either way.
	//
	// Deprecated: set Exec to a parallel execution context instead;
	// Parallel remains as a thin alias for Exec = exec.Default().
	Parallel bool
	// Delta overrides the Δ-stepping bucket width (0 = the
	// Meyer–Sanders default maxW/avgDegree). Ignored by the other
	// searches.
	Delta graph.W
}

// parallel reports whether the Weighted dispatcher (and the bucket
// expansions inside Δ-stepping) should take the multicore path. An
// explicit execution context is decisive — a sequential Exec forces
// the reference path even if the deprecated bool is also set — and
// the bool only matters for legacy (nil-Exec) callers.
func (o *Options) parallel() bool {
	if o.Exec != nil {
		return o.Exec.IsParallel()
	}
	return o.Parallel
}

// admits loads the mark atomically: the hopset recursion runs sibling
// subtrees concurrently, and a subtree's search may read the mark of a
// boundary neighbor owned by a sibling that is re-marking its own
// descendants. Every concurrently-written value is some other
// subtree's token, so the admit/reject decision is unaffected; the
// atomic load makes that benign overlap well-defined.
func (o *Options) admits(v graph.V) bool {
	return o.Mark == nil || atomic.LoadInt32(&o.Mark[v]) == o.Token
}

func (o *Options) bound() graph.Dist {
	if o.MaxDist <= 0 {
		return graph.InfDist
	}
	return o.MaxDist
}

// Result holds per-vertex distances and BFS/SSSP tree parents.
// Unreached vertices have Dist = InfDist and Parent = NoVertex.
type Result struct {
	Dist   []graph.Dist
	Parent []graph.V
}

func newResult(n int32) *Result {
	r := &Result{
		Dist:   make([]graph.Dist, n),
		Parent: make([]graph.V, n),
	}
	for i := range r.Dist {
		r.Dist[i] = graph.InfDist
		r.Parent[i] = graph.NoVertex
	}
	return r
}

// newResultOn acquires the result arrays from ec's arenas (already
// reset to InfDist / NoVertex); nil ec allocates fresh.
func newResultOn(ec *exec.Ctx, n int32) *Result {
	if ec == nil {
		return newResult(n)
	}
	return &Result{Dist: ec.Dists(int(n)), Parent: ec.Verts(int(n))}
}

// Release returns the result's arrays to the execution context's
// arenas. Call it when a search result has been fully consumed — the
// hopset clique searches and the oracle query engine do — and never
// touch the result afterwards. Safe on nil receiver or nil ec (no-op).
func (r *Result) Release(ec *exec.Ctx) {
	if r == nil || ec == nil {
		return
	}
	ec.PutDists(r.Dist)
	ec.PutVerts(r.Parent)
	r.Dist, r.Parent = nil, nil
}

// Reached reports whether v was settled.
func (r *Result) Reached(v graph.V) bool { return r.Dist[v] < graph.InfDist }

// PathTo reconstructs the tree path from the source set to v, or nil
// if v was not reached.
func (r *Result) PathTo(v graph.V) []graph.V {
	if !r.Reached(v) {
		return nil
	}
	var rev []graph.V
	for u := v; u != graph.NoVertex; u = r.Parent[u] {
		rev = append(rev, u)
		if len(rev) > len(r.Dist)+1 {
			panic("sssp: parent cycle")
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BFS runs level-synchronous breadth-first search from the given
// sources over unit edge costs (edge weights are ignored), recording
// one depth unit per level. This is the [UY91]-style parallel BFS the
// paper uses for unweighted graphs and for clique-edge distances in
// Algorithm 4.
func BFS(g *graph.Graph, sources []graph.V, opt Options) *Result {
	n := g.NumVertices()
	res := newResultOn(opt.Exec, n)
	bound := opt.bound()
	frontier := make([]graph.V, 0, len(sources))
	for _, s := range sources {
		if !opt.admits(s) || res.Dist[s] == 0 {
			continue
		}
		res.Dist[s] = 0
		frontier = append(frontier, s)
	}
	level := graph.Dist(0)
	for len(frontier) > 0 && level < bound {
		if opt.Exec.Checkpoint() {
			return res // canceled: partial, invalid
		}
		level++
		var next []graph.V
		var touched int64
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				touched++
				if !opt.admits(u) || res.Dist[u] != graph.InfDist {
					continue
				}
				res.Dist[u] = level
				res.Parent[u] = v
				next = append(next, u)
			}
		}
		opt.Cost.Round(touched + int64(len(frontier)))
		frontier = next
	}
	return res
}

// Dial runs the weighted multi-source shortest-path search with a
// circular bucket queue (Dial's algorithm): exact for positive integer
// weights, with depth equal to the number of distance levels advanced —
// the weighted parallel BFS depth the paper quotes in Section 5. The
// graph must be weighted (or all weights are 1 and BFS is equivalent).
func Dial(g *graph.Graph, sources []graph.V, opt Options) *Result {
	n := g.NumVertices()
	res := newResultOn(opt.Exec, n)
	bound := opt.bound()
	maxW := g.MaxWeight()
	if maxW < 1 {
		maxW = 1
	}
	// Circular buckets: a relaxation increases the key by at most
	// maxW, so maxW+1 buckets suffice. A bounded search never keeps
	// keys above the bound, so the bucket span clamps to it — this is
	// what keeps level-capped searches on huge-weight graphs cheap.
	span := maxW
	if bound < graph.InfDist && graph.W(bound)+1 < span {
		span = graph.W(bound) + 1
	}
	const maxBuckets = 1 << 28
	if span+1 > maxBuckets {
		panic(fmt.Sprintf("sssp: Dial bucket span %d too large; round weights or set MaxDist", span))
	}
	nb := int(span) + 1
	buckets := make([][]graph.V, nb)
	pending := 0
	for _, s := range sources {
		if !opt.admits(s) || res.Dist[s] == 0 {
			continue
		}
		res.Dist[s] = 0
		buckets[0] = append(buckets[0], s)
		pending++
	}
	settled := opt.Exec.Bools(int(n))
	defer opt.Exec.PutBools(settled)
	for level := graph.Dist(0); pending > 0 && level <= bound; level++ {
		// Every distance level is one synchronous round of the
		// weighted parallel BFS, empty or not: this is the "depth
		// linear in path lengths" that Section 5's rounding scheme
		// exists to shrink.
		opt.Cost.AddDepth(1)
		b := buckets[int(level)%nb]
		if len(b) == 0 {
			continue
		}
		if opt.Exec.Checkpoint() {
			return res // canceled: partial, invalid
		}
		buckets[int(level)%nb] = nil
		pending -= len(b)
		var touched int64
		for _, v := range b {
			if settled[v] || res.Dist[v] != level {
				continue // stale entry
			}
			settled[v] = true
			adj := g.Neighbors(v)
			wts := g.AdjWeights(v)
			for i, u := range adj {
				touched++
				if !opt.admits(u) || settled[u] {
					continue
				}
				w := graph.W(1)
				if wts != nil {
					w = wts[i]
				}
				nd := level + w
				if nd < res.Dist[u] && nd <= bound {
					res.Dist[u] = nd
					res.Parent[u] = v
					buckets[int(nd)%nb] = append(buckets[int(nd)%nb], u)
					pending++
				}
			}
		}
		opt.Cost.AddWork(touched + int64(len(b)))
	}
	// Clear any tentative distances that were never settled within the
	// bound (stale bucket entries beyond it).
	if bound < graph.InfDist {
		for v := range res.Dist {
			if res.Dist[v] != graph.InfDist && !settled[v] {
				res.Dist[v] = graph.InfDist
				res.Parent[v] = graph.NoVertex
			}
		}
	}
	return res
}

// Dijkstra is the exact sequential reference implementation (binary
// heap). It accepts the same Options; cost accounting treats it as a
// sequential algorithm: depth equals work.
func Dijkstra(g *graph.Graph, sources []graph.V, opt Options) *Result {
	n := g.NumVertices()
	res := newResultOn(opt.Exec, n)
	bound := opt.bound()
	pq := &distHeap{}
	for _, s := range sources {
		if !opt.admits(s) {
			continue
		}
		res.Dist[s] = 0
		heap.Push(pq, distEntry{v: s, d: 0})
	}
	settled := opt.Exec.Bools(int(n))
	defer opt.Exec.PutBools(settled)
	var ops int64
	for pq.Len() > 0 {
		if opt.Exec.Canceled() {
			return res // canceled: partial, invalid
		}
		top := heap.Pop(pq).(distEntry)
		v := top.v
		if settled[v] || top.d != res.Dist[v] {
			continue
		}
		if top.d > bound {
			res.Dist[v] = graph.InfDist
			res.Parent[v] = graph.NoVertex
			continue
		}
		settled[v] = true
		adj := g.Neighbors(v)
		wts := g.AdjWeights(v)
		for i, u := range adj {
			ops++
			if !opt.admits(u) || settled[u] {
				continue
			}
			w := graph.W(1)
			if wts != nil {
				w = wts[i]
			}
			nd := top.d + w
			if nd < res.Dist[u] {
				res.Dist[u] = nd
				res.Parent[u] = v
				heap.Push(pq, distEntry{v: u, d: nd})
			}
		}
	}
	// Clear tentative-but-unsettled labels beyond the bound.
	for v := range res.Dist {
		if res.Dist[v] != graph.InfDist && !settled[v] {
			res.Dist[v] = graph.InfDist
			res.Parent[v] = graph.NoVertex
		}
	}
	opt.Cost.AddWork(ops)
	opt.Cost.AddDepth(ops)
	return res
}

type distEntry struct {
	v graph.V
	d graph.Dist
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Weighted dispatches a weighted multi-source SSSP on the execution
// context (or the deprecated Parallel knob): Δ-stepping with pooled
// goroutine frontier expansion when the context is parallel, the
// sequential Dial bucket race otherwise. Distances are identical
// either way (both are exact); parent trees may differ (any
// certifying tree is valid). Layers that consume weighted searches —
// the hopset recursion, the oracle query engine — call this so one
// execution context flips the whole stack to multicore execution.
func Weighted(g *graph.Graph, sources []graph.V, opt Options) *Result {
	if opt.parallel() {
		return DeltaStepping(g, sources, opt)
	}
	return Dial(g, sources, opt)
}

// HopLimited computes h-hop-limited distances dist^h_{E ∪ extra}(s, ·)
// by h synchronous Bellman–Ford rounds over the graph's edges plus the
// extra (hopset) edges. This is the defining quantity of Definition
// 2.4; the evaluation uses it to certify hopset quality. Each round is
// one depth unit of work O(m + |extra|).
func HopLimited(g *graph.Graph, extra []graph.Edge, sources []graph.V, hops int, cost *par.Cost) []graph.Dist {
	return HopLimitedOn(nil, g, extra, sources, hops, cost)
}

// HopLimitedOn is HopLimited on an execution context: the next-round
// scratch array comes from ec's arena and cancellation is polled per
// Bellman–Ford round. The returned distance array is freshly owned by
// the caller (release with ec.PutDists when done).
func HopLimitedOn(ec *exec.Ctx, g *graph.Graph, extra []graph.Edge, sources []graph.V, hops int, cost *par.Cost) []graph.Dist {
	n := g.NumVertices()
	dist := ec.Dists(int(n))
	for _, s := range sources {
		dist[s] = 0
	}
	next := ec.Dists(int(n))
	defer func() { ec.PutDists(next) }()
	edges := g.Edges()
	for round := 0; round < hops; round++ {
		if ec.Checkpoint() {
			break // canceled: partial, invalid
		}
		copy(next, dist)
		changed := false
		relax := func(u, v graph.V, w graph.W) {
			if dist[u] != graph.InfDist && dist[u]+w < next[v] {
				next[v] = dist[u] + w
				changed = true
			}
			if dist[v] != graph.InfDist && dist[v]+w < next[u] {
				next[u] = dist[v] + w
				changed = true
			}
		}
		for i := range edges {
			w := graph.W(1)
			if g.Weighted() {
				w = edges[i].W
			}
			relax(edges[i].U, edges[i].V, w)
		}
		for i := range extra {
			relax(extra[i].U, extra[i].V, extra[i].W)
		}
		cost.Round(int64(len(edges) + len(extra)))
		dist, next = next, dist
		if !changed {
			break
		}
	}
	return dist
}

// Eccentricity returns the maximum finite BFS distance from v (hop
// eccentricity). Used by diameter estimation.
func Eccentricity(g *graph.Graph, v graph.V) graph.Dist {
	res := BFS(g, []graph.V{v}, Options{})
	var ecc graph.Dist
	for _, d := range res.Dist {
		if d < graph.InfDist && d > ecc {
			ecc = d
		}
	}
	return ecc
}

// EstimateDiameter lower-bounds the hop diameter with the standard
// double-sweep heuristic: BFS from v0, then BFS from the farthest
// vertex found. Exact on trees; a good lower bound elsewhere.
func EstimateDiameter(g *graph.Graph, v0 graph.V) graph.Dist {
	if g.NumVertices() == 0 {
		return 0
	}
	res := BFS(g, []graph.V{v0}, Options{})
	far, fd := v0, graph.Dist(0)
	for v, d := range res.Dist {
		if d < graph.InfDist && d > fd {
			far, fd = graph.V(v), d
		}
	}
	return Eccentricity(g, far)
}
