package sssp

import (
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

func TestBFSParallelMatchesSequentialDistances(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	cases := []*graph.Graph{
		graph.Path(500),
		graph.Grid2D(40, 40),
		graph.RandomConnectedGNM(2000, 8000, 1),
		graph.Star(100),
	}
	for gi, g := range cases {
		seq := BFS(g, []graph.V{0}, Options{})
		parr := BFSParallel(g, []graph.V{0}, Options{})
		for v := range seq.Dist {
			if seq.Dist[v] != parr.Dist[v] {
				t.Fatalf("graph %d vertex %d: %d vs %d", gi, v, seq.Dist[v], parr.Dist[v])
			}
		}
	}
}

func TestBFSParallelParentsValid(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	g := graph.RandomConnectedGNM(1000, 4000, 2)
	res := BFSParallel(g, []graph.V{0}, Options{})
	// Any parent must be an actual neighbor one level closer.
	for v := graph.V(0); v < g.NumVertices(); v++ {
		p := res.Parent[v]
		if p == graph.NoVertex {
			continue
		}
		if res.Dist[p]+1 != res.Dist[v] {
			t.Fatalf("parent level mismatch at %d", v)
		}
		found := false
		for _, u := range g.Neighbors(v) {
			if u == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("parent %d of %d not adjacent", p, v)
		}
	}
}

func TestBFSParallelRestrictionsAndBounds(t *testing.T) {
	g := graph.Cycle(12)
	mark := make([]int32, 12)
	for i := 0; i < 7; i++ {
		mark[i] = 3
	}
	res := BFSParallel(g, []graph.V{0}, Options{Mark: mark, Token: 3, MaxDist: 4})
	if res.Reached(8) {
		t.Fatal("escaped mark restriction")
	}
	if res.Reached(5) {
		t.Fatal("escaped MaxDist bound")
	}
	if res.Dist[4] != 4 {
		t.Fatalf("dist[4] = %d", res.Dist[4])
	}
}

func TestBFSParallelCost(t *testing.T) {
	g := graph.Grid2D(20, 20)
	cSeq := par.NewCost()
	cPar := par.NewCost()
	BFS(g, []graph.V{0}, Options{Cost: cSeq})
	BFSParallel(g, []graph.V{0}, Options{Cost: cPar})
	if cSeq.Depth() != cPar.Depth() {
		t.Fatalf("depth differs: %d vs %d", cSeq.Depth(), cPar.Depth())
	}
	if cSeq.Work() != cPar.Work() {
		t.Fatalf("work differs: %d vs %d", cSeq.Work(), cPar.Work())
	}
}

// Property: distances agree on arbitrary random graphs and sources.
func TestBFSParallelProperty(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		r := rng.New(seed)
		n := int32(r.Intn(200) + 2)
		m := int64(r.Intn(600))
		if max := int64(n) * int64(n-1) / 2; m > max {
			m = max
		}
		g := graph.RandomGNM(n, m, seed)
		src := []graph.V{r.Int31n(n), r.Int31n(n)}
		a := BFS(g, src, Options{})
		b := BFSParallel(g, src, Options{})
		for v := range a.Dist {
			if a.Dist[v] != b.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFSParallelGrid(b *testing.B) {
	g := graph.Grid2D(200, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFSParallel(g, []graph.V{0}, Options{})
	}
}
