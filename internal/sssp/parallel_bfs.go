package sssp

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// BFSParallel is the level-synchronous BFS with the frontier actually
// expanded by concurrent goroutines: workers claim unvisited vertices
// with a compare-and-swap, which is the shared-memory realization of
// the CRCW "arbitrary winner" writes the paper's BFS (Appendix A,
// [UY91]) assumes. Distances computed are identical to BFS; parent
// pointers may differ (any claiming neighbor is a valid BFS parent),
// matching the arbitrary-CRCW semantics.
//
// Cost accounting is the same as BFS: one depth unit per level, work
// equal to edges scanned. On a multi-core host this routine also
// yields real wall-clock parallelism; its benchmark against BFS is
// the "does the model translate" check.
func BFSParallel(g *graph.Graph, sources []graph.V, opt Options) *Result {
	n := g.NumVertices()
	res := newResultOn(opt.Exec, n)
	bound := opt.bound()

	// claimed[v] == 1 once some worker owns v. Separate from Dist so
	// that workers can claim with a single CAS.
	claimed := opt.Exec.MarksZero(int(n))
	defer opt.Exec.PutMarks(claimed)
	frontier := make([]graph.V, 0, len(sources))
	for _, s := range sources {
		if !opt.admits(s) {
			continue
		}
		if atomic.CompareAndSwapInt32(&claimed[s], 0, 1) {
			res.Dist[s] = 0
			frontier = append(frontier, s)
		}
	}

	level := graph.Dist(0)
	for len(frontier) > 0 && level < bound {
		if opt.Exec.Checkpoint() {
			return res // canceled: partial, invalid
		}
		level++
		var touched atomic.Int64
		var mu sync.Mutex
		var next []graph.V
		opt.Exec.For(len(frontier), 64, func(lo, hi int) {
			var local []graph.V
			var scanned int64
			for _, v := range frontier[lo:hi] {
				for _, u := range g.Neighbors(v) {
					scanned++
					if !opt.admits(u) {
						continue
					}
					if atomic.CompareAndSwapInt32(&claimed[u], 0, 1) {
						res.Dist[u] = level
						res.Parent[u] = v
						local = append(local, u)
					}
				}
			}
			touched.Add(scanned)
			if len(local) > 0 {
				mu.Lock()
				next = append(next, local...)
				mu.Unlock()
			}
		})
		opt.Cost.Round(touched.Load() + int64(len(frontier)))
		frontier = next
	}
	return res
}
