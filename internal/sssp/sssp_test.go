package sssp

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

func TestBFSPath(t *testing.T) {
	g := graph.Path(6)
	res := BFS(g, []graph.V{0}, Options{})
	for v := graph.V(0); v < 6; v++ {
		if res.Dist[v] != graph.Dist(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
	p := res.PathTo(5)
	if len(p) != 6 || p[0] != 0 || p[5] != 5 {
		t.Fatalf("path to 5 = %v", p)
	}
}

func TestBFSMultiSource(t *testing.T) {
	g := graph.Path(10)
	res := BFS(g, []graph.V{0, 9}, Options{})
	if res.Dist[4] != 4 || res.Dist[5] != 4 {
		t.Fatalf("multi-source dist = %d, %d", res.Dist[4], res.Dist[5])
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}}, false)
	res := BFS(g, []graph.V{0}, Options{})
	if res.Reached(2) || res.Reached(3) {
		t.Fatal("reached disconnected vertices")
	}
	if res.PathTo(3) != nil {
		t.Fatal("path to unreached vertex should be nil")
	}
}

func TestBFSMaxDist(t *testing.T) {
	g := graph.Path(10)
	res := BFS(g, []graph.V{0}, Options{MaxDist: 3})
	if res.Dist[3] != 3 {
		t.Fatalf("dist[3] = %d", res.Dist[3])
	}
	if res.Reached(4) {
		t.Fatal("BFS went beyond MaxDist")
	}
}

func TestBFSMarkRestriction(t *testing.T) {
	// Cycle of 6; restrict to {0,1,2,3}: distance 0->3 is 3 not 3 via
	// other side (blocked by marks).
	g := graph.Cycle(6)
	mark := []int32{7, 7, 7, 7, 0, 0}
	res := BFS(g, []graph.V{0}, Options{Mark: mark, Token: 7})
	if res.Dist[3] != 3 {
		t.Fatalf("restricted dist[3] = %d, want 3", res.Dist[3])
	}
	if res.Reached(4) || res.Reached(5) {
		t.Fatal("BFS escaped the marked set")
	}
}

func TestBFSDepthEqualsLevels(t *testing.T) {
	g := graph.Path(100)
	cost := par.NewCost()
	BFS(g, []graph.V{0}, Options{Cost: cost})
	// 99 productive levels plus the final round that discovers the
	// frontier is exhausted.
	if d := cost.Depth(); d != 100 {
		t.Fatalf("BFS depth = %d, want 100 rounds", d)
	}
}

func TestDialSimpleWeighted(t *testing.T) {
	//  0 --5-- 1 --1-- 2   and a long direct 0--7--2
	g := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 7},
	}, true)
	res := Dial(g, []graph.V{0}, Options{})
	if res.Dist[2] != 6 {
		t.Fatalf("dist[2] = %d, want 6", res.Dist[2])
	}
	if res.Parent[2] != 1 {
		t.Fatalf("parent[2] = %d, want 1", res.Parent[2])
	}
}

func TestDialMatchesDijkstra(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := graph.UniformWeights(graph.RandomConnectedGNM(300, 900, seed), 20, seed^11)
		d1 := Dial(g, []graph.V{0}, Options{})
		d2 := Dijkstra(g, []graph.V{0}, Options{})
		for v := range d1.Dist {
			if d1.Dist[v] != d2.Dist[v] {
				t.Fatalf("seed %d: Dial %d vs Dijkstra %d at vertex %d",
					seed, d1.Dist[v], d2.Dist[v], v)
			}
		}
	}
}

func TestDialUnweightedMatchesBFS(t *testing.T) {
	g := graph.RandomConnectedGNM(200, 600, 4)
	d1 := Dial(g, []graph.V{7}, Options{})
	d2 := BFS(g, []graph.V{7}, Options{})
	for v := range d1.Dist {
		if d1.Dist[v] != d2.Dist[v] {
			t.Fatalf("Dial %d vs BFS %d at %d", d1.Dist[v], d2.Dist[v], v)
		}
	}
}

func TestDialMaxDist(t *testing.T) {
	g := graph.UniformWeights(graph.Path(20), 3, 9)
	full := Dijkstra(g, []graph.V{0}, Options{})
	bound := graph.Dist(10)
	res := Dial(g, []graph.V{0}, Options{MaxDist: bound})
	for v := range res.Dist {
		switch {
		case full.Dist[v] <= bound:
			if res.Dist[v] != full.Dist[v] {
				t.Fatalf("within bound: dist[%d] = %d, want %d", v, res.Dist[v], full.Dist[v])
			}
		default:
			if res.Reached(graph.V(v)) {
				t.Fatalf("vertex %d (true dist %d) settled beyond bound", v, full.Dist[v])
			}
		}
	}
}

func TestDijkstraMaxDist(t *testing.T) {
	g := graph.UniformWeights(graph.Path(20), 3, 9)
	full := Dijkstra(g, []graph.V{0}, Options{})
	bound := graph.Dist(10)
	res := Dijkstra(g, []graph.V{0}, Options{MaxDist: bound})
	for v := range res.Dist {
		if full.Dist[v] <= bound {
			if res.Dist[v] != full.Dist[v] {
				t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], full.Dist[v])
			}
		} else if res.Reached(graph.V(v)) {
			t.Fatalf("vertex %d settled beyond bound", v)
		}
	}
}

func TestDialMarkRestriction(t *testing.T) {
	g := graph.UniformWeights(graph.Cycle(8), 2, 5)
	mark := make([]int32, 8)
	for i := 0; i < 5; i++ {
		mark[i] = 1
	}
	res := Dial(g, []graph.V{0}, Options{Mark: mark, Token: 1})
	if res.Reached(5) || res.Reached(6) || res.Reached(7) {
		t.Fatal("Dial escaped the marked set")
	}
	// Distances within the marked path must match Dijkstra on the
	// induced subgraph.
	sub, origOf := g.InducedSubgraph([]graph.V{0, 1, 2, 3, 4})
	ref := Dijkstra(sub, []graph.V{0}, Options{})
	for i, o := range origOf {
		if res.Dist[o] != ref.Dist[i] {
			t.Fatalf("restricted dist[%d] = %d, want %d", o, res.Dist[o], ref.Dist[i])
		}
	}
}

func TestHopLimited(t *testing.T) {
	// Path 0-1-2-3-4 (weights 1) plus a heavy shortcut 0-4 of weight 10.
	g := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 3, V: 4, W: 1},
		{U: 0, V: 4, W: 10},
	}, true)
	// 1 hop: only the direct edge.
	d1 := HopLimited(g, nil, []graph.V{0}, 1, nil)
	if d1[4] != 10 {
		t.Fatalf("1-hop dist = %d, want 10", d1[4])
	}
	// 4 hops: the light path.
	d4 := HopLimited(g, nil, []graph.V{0}, 4, nil)
	if d4[4] != 4 {
		t.Fatalf("4-hop dist = %d, want 4", d4[4])
	}
	// Extra edge shrinks hops: add (0,3,3).
	extra := []graph.Edge{{U: 0, V: 3, W: 3}}
	d2 := HopLimited(g, extra, []graph.V{0}, 2, nil)
	if d2[4] != 4 {
		t.Fatalf("2-hop with hopset dist = %d, want 4", d2[4])
	}
}

func TestHopLimitedConvergesToDijkstra(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(120, 360, 8), 9, 8)
	hop := HopLimited(g, nil, []graph.V{0}, int(g.NumVertices()), nil)
	ref := Dijkstra(g, []graph.V{0}, Options{})
	for v := range hop {
		if hop[v] != ref.Dist[v] {
			t.Fatalf("n-hop dist %d != Dijkstra %d at %d", hop[v], ref.Dist[v], v)
		}
	}
}

func TestHopLimitedMonotoneInHops(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(80, 200, 12), 7, 13)
	prev := HopLimited(g, nil, []graph.V{3}, 1, nil)
	for h := 2; h <= 12; h++ {
		cur := HopLimited(g, nil, []graph.V{3}, h, nil)
		for v := range cur {
			if cur[v] > prev[v] {
				t.Fatalf("hop distance increased with more hops at %d", v)
			}
		}
		prev = cur
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := graph.Path(50)
	if e := Eccentricity(g, 0); e != 49 {
		t.Fatalf("ecc(0) = %d", e)
	}
	if e := Eccentricity(g, 25); e != 25 {
		t.Fatalf("ecc(25) = %d", e)
	}
	if d := EstimateDiameter(g, 25); d != 49 {
		t.Fatalf("diameter = %d, want 49 (exact on trees)", d)
	}
	grid := graph.Grid2D(8, 8)
	if d := EstimateDiameter(grid, 0); d != 14 {
		t.Fatalf("grid diameter = %d, want 14", d)
	}
}

// Property: Dial == Dijkstra on arbitrary random weighted graphs,
// including with distance bounds.
func TestDialDijkstraProperty(t *testing.T) {
	f := func(seedRaw uint32, boundRaw uint8) bool {
		seed := uint64(seedRaw)
		r := rng.New(seed)
		n := int32(r.Intn(60) + 2)
		m := int64(n) + int64(r.Intn(100))
		if max := int64(n) * int64(n-1) / 2; m > max {
			m = max
		}
		g := graph.UniformWeights(graph.RandomConnectedGNM(n, m, seed), 15, seed^3)
		src := graph.V(r.Int31n(n))
		opt := Options{}
		if boundRaw%2 == 0 {
			opt.MaxDist = graph.Dist(boundRaw)
		}
		a := Dial(g, []graph.V{src}, opt)
		b := Dijkstra(g, []graph.V{src}, opt)
		for v := range a.Dist {
			if a.Dist[v] != b.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: parent pointers always certify the reported distance.
func TestParentCertifiesDistance(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		g := graph.UniformWeights(graph.RandomConnectedGNM(50, 150, seed), 9, seed^7)
		res := Dial(g, []graph.V{0}, Options{})
		for v := graph.V(0); v < g.NumVertices(); v++ {
			if !res.Reached(v) || v == 0 {
				continue
			}
			p := res.Parent[v]
			if p == graph.NoVertex {
				return false
			}
			// Find the p-v edge weight.
			var w graph.W = -1
			adj := g.Neighbors(v)
			wts := g.AdjWeights(v)
			for i, u := range adj {
				if u == p && (w == -1 || wts[i] < w) {
					w = wts[i]
				}
			}
			if w == -1 || res.Dist[p]+w != res.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFSGrid(b *testing.B) {
	g := graph.Grid2D(200, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, []graph.V{0}, Options{})
	}
}

func BenchmarkDialRandom(b *testing.B) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(10000, 40000, 1), 50, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dial(g, []graph.V{0}, Options{})
	}
}

func BenchmarkDijkstraRandom(b *testing.B) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(10000, 40000, 1), 50, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, []graph.V{0}, Options{})
	}
}
