package sssp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/par"
)

// DeltaStepping is the parallel weighted SSSP of Meyer and Sanders,
// realized in the same arbitrary-CRCW idiom as BFSParallel: tentative
// distances live in a shared array and workers relax edges with
// compare-and-swap min-updates, so every frontier expands on actual
// goroutines. It is the weighted counterpart of BFSParallel and the
// multicore realization of the paper's "weighted parallel BFS": Dial's
// bucket race (depth = distance levels swept) collapses to one phase
// per Δ-bucket — light edges (w ≤ Δ) are relaxed to a fixpoint inside
// the bucket, heavy edges once when the bucket settles.
//
// Distances are exact and bit-identical to Dijkstra's for any
// schedule: relaxations are monotone CAS min-updates, so the fixpoint
// is the shortest-path metric regardless of interleaving. Parent
// pointers are resolved by a deterministic certification pass after
// the distances converge (first CSR neighbor u with dist[u] + w ==
// dist[v]), so the whole Result — unlike BFSParallel's — is
// deterministic. The sequential Dijkstra and Dial remain the oracles
// differential tests compare against.
//
// Cost accounting: one depth unit per light iteration and per heavy
// phase plus one for the final parent pass; work is edges scanned.
// Model depth is (#buckets)·(light iterations per bucket); with
// integer weights and Δ = opt.Delta the light iteration count per
// bucket is at most Δ, mirroring the Dial depth analysis.
func DeltaStepping(g *graph.Graph, sources []graph.V, opt Options) *Result {
	n := g.NumVertices()
	res := newResultOn(opt.Exec, n)
	bound := opt.bound()
	delta := graph.Dist(opt.Delta)
	if delta <= 0 {
		delta = defaultDelta(g)
	}
	maxW := g.MaxWeight()
	if maxW < 1 {
		maxW = 1
	}
	// Circular buckets: a relaxation increases the key by at most maxW,
	// so pending entries always live within maxW/Δ + 2 buckets of the
	// cursor. A bounded search never keeps keys above the bound, which
	// clamps the span exactly as in Dial.
	span := maxW
	if bound < graph.InfDist && graph.W(bound)+1 < span {
		span = graph.W(bound) + 1
	}
	const maxBuckets = 1 << 28
	nb := int(span/delta) + 2
	if nb > maxBuckets {
		panic(fmt.Sprintf("sssp: Δ-stepping bucket span %d too large; round weights or set MaxDist", nb))
	}
	buckets := make([][]graph.V, nb)
	pending := 0
	for _, s := range sources {
		if !opt.admits(s) || res.Dist[s] == 0 {
			continue
		}
		res.Dist[s] = 0
		buckets[0] = append(buckets[0], s)
		pending++
	}

	// lastRelaxed[v] is dist[v] at v's most recent light-edge
	// expansion; v re-expands only after an improvement. Written by the
	// sequential coordinator between phases only. The InfDist-filled
	// arena buffer is exactly its starting state.
	lastRelaxed := opt.Exec.Dists(int(n))
	defer opt.Exec.PutDists(lastRelaxed)

	var active []cand  // light-phase frontier, rebuilt per iteration
	var settled []cand // all vertices expanded for this bucket (heavy phase)
	var inflow []graph.V

	maxBucket := graph.Dist(bound)
	for t := graph.Dist(0); pending > 0; t++ {
		if t*delta > maxBucket {
			break
		}
		b := buckets[int(t)%nb]
		if len(b) == 0 {
			continue
		}
		if opt.Exec.Checkpoint() {
			return res // canceled: partial, invalid
		}
		buckets[int(t)%nb] = nil
		pending -= len(b)
		lo, hi := t*delta, (t+1)*delta

		// Light phases: expand the bucket's members to a fixpoint.
		settled = settled[:0]
		inflow = append(inflow[:0], b...)
		for len(inflow) > 0 {
			// Select: current bucket members that improved since their
			// last expansion. Sequential — the expensive part is the
			// edge scan below.
			active = active[:0]
			for _, v := range inflow {
				d := atomic.LoadInt64(&res.Dist[v])
				if d < lo || d >= hi || d >= lastRelaxed[v] {
					continue
				}
				// First-ever expansion (distances never rise, so all of
				// v's expansions happen in this one bucket): exactly one
				// heavy relaxation per settled vertex per bucket, the
				// Meyer–Sanders accounting.
				if lastRelaxed[v] == graph.InfDist {
					settled = append(settled, cand{v, d})
				}
				lastRelaxed[v] = d
				active = append(active, cand{v, d})
			}
			inflow = inflow[:0]
			if len(active) == 0 {
				break
			}
			newInflow, future, scanned := relaxFrontier(g, res.Dist, active, &opt, delta, hi, true)
			inflow = append(inflow, newInflow...)
			for _, f := range future {
				buckets[int(f.b)%nb] = append(buckets[int(f.b)%nb], f.v)
				pending++
			}
			opt.Cost.Round(scanned + int64(len(active)))
		}

		// Heavy phase: one round of heavy-edge relaxations from every
		// vertex settled in this bucket. Heavy edges always leave the
		// bucket, so once suffices.
		if len(settled) > 0 {
			// Re-snapshot: light iterations may have improved a settled
			// vertex after its last expansion.
			for i := range settled {
				settled[i].d = atomic.LoadInt64(&res.Dist[settled[i].v])
			}
			_, future, scanned := relaxFrontier(g, res.Dist, settled, &opt, delta, hi, false)
			for _, f := range future {
				buckets[int(f.b)%nb] = append(buckets[int(f.b)%nb], f.v)
				pending++
			}
			opt.Cost.Round(scanned + int64(len(settled)))
		}
	}

	resolveParents(g, res, &opt)
	opt.Cost.Round(int64(n))
	return res
}

// defaultDelta picks the bucket width Δ = max(1, maxW/avgDegree) — the
// Meyer–Sanders heuristic balancing re-relaxation (large Δ) against
// bucket-sweep depth (small Δ).
func defaultDelta(g *graph.Graph) graph.Dist {
	maxW := g.MaxWeight()
	if maxW <= 1 {
		return 1
	}
	n := int64(g.NumVertices())
	if n == 0 {
		return 1
	}
	avgDeg := 2 * g.NumEdges() / n
	if avgDeg < 1 {
		avgDeg = 1
	}
	d := maxW / avgDeg
	if d < 1 {
		d = 1
	}
	return graph.Dist(d)
}

// bucketed is a CAS-won relaxation routed to a future bucket.
type bucketed struct {
	v graph.V
	b graph.Dist
}

// cand is a frontier member with the dist snapshot its edges are
// relaxed from (dist may keep improving while a phase runs).
type cand struct {
	v graph.V
	d graph.Dist
}

// chunk buffers one frontier vertex's relaxation output during a
// parallel expansion, before the sequential merge in frontier order.
type chunk struct {
	same    []graph.V
	future  []bucketed
	scanned int64
}

// chunkPool recycles the per-frontier chunk arrays (and, through them,
// the per-vertex output buffers' capacity) across light iterations and
// across searches: the expansion's only steady-state allocations are
// then genuine frontier growth.
var chunkPool sync.Pool

// getChunks returns a len-n chunk slice whose entries are reset to
// empty (retaining inner capacity). A pooled slice that is too short
// is grown by copying its entries across, so the warm per-vertex
// buffers accumulated so far survive frontier growth instead of being
// dropped with the old backing array.
func getChunks(n int) []chunk {
	var s []chunk
	if v := chunkPool.Get(); v != nil {
		s = *(v.(*[]chunk))
	}
	if cap(s) < n {
		grown := make([]chunk, n, n+n/2)
		copy(grown, s[:cap(s)])
		s = grown
	}
	s = s[:n]
	for i := range s {
		s[i].same = s[i].same[:0]
		s[i].future = s[i].future[:0]
		s[i].scanned = 0
	}
	return s
}

func putChunks(s []chunk) {
	s = s[:cap(s)]
	chunkPool.Put(&s)
}

// relaxFrontier expands the light (w ≤ delta) or heavy (w > delta)
// edges of every frontier vertex in parallel, min-updating dist with
// CAS. Won updates whose new key stays under hi are returned in same
// (current-bucket inflow); the rest are routed to their bucket in
// future. Per-vertex result buffers keep the output deterministic:
// merged in frontier order, independent of goroutine scheduling.
func relaxFrontier(g *graph.Graph, dist []graph.Dist, frontier []cand, opt *Options, delta, hi graph.Dist, light bool) (same []graph.V, future []bucketed, scanned int64) {
	bound := opt.bound()
	perVertex := getChunks(len(frontier))
	defer putChunks(perVertex)
	opt.Exec.For(len(frontier), 64, func(lo, hiIdx int) {
		for i := lo; i < hiIdx; i++ {
			v, dv := frontier[i].v, frontier[i].d
			adj := g.Neighbors(v)
			wts := g.AdjWeights(v)
			c := &perVertex[i]
			for j, u := range adj {
				w := graph.W(1)
				if wts != nil {
					w = wts[j]
				}
				if (w <= graph.W(delta)) != light {
					continue
				}
				c.scanned++
				if !opt.admits(u) {
					continue
				}
				nd := dv + w
				if nd > bound {
					continue
				}
				if !casMin(&dist[u], nd) {
					continue
				}
				if nd < hi {
					c.same = append(c.same, u)
				} else {
					c.future = append(c.future, bucketed{u, nd / delta})
				}
			}
		}
	})
	for i := range perVertex {
		same = append(same, perVertex[i].same...)
		future = append(future, perVertex[i].future...)
		scanned += perVertex[i].scanned
	}
	return same, future, scanned
}

// casMin lowers *addr to nd if nd improves it, with a CAS loop; the
// return reports whether this caller won an improvement. This is the
// weighted analogue of BFSParallel's claim CAS: concurrent relaxers of
// the same vertex serialize on the CAS, and the arbitrary winner's
// write is the one the CRCW model keeps.
func casMin(addr *graph.Dist, nd graph.Dist) bool {
	for {
		old := atomic.LoadInt64(addr)
		if nd >= old {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, nd) {
			return true
		}
	}
}

// resolveParents certifies one shortest-path tree over the converged
// distances: parent[v] is the first CSR neighbor u with dist[u] +
// w(u,v) = dist[v]. Runs as one parallel round; deterministic given
// the (deterministic) distances.
func resolveParents(g *graph.Graph, res *Result, opt *Options) {
	opt.Exec.For(int(g.NumVertices()), 2048, func(lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			d := res.Dist[v]
			if d == 0 || d == graph.InfDist {
				continue // sources and unreached keep NoVertex
			}
			adj := g.Neighbors(v)
			wts := g.AdjWeights(v)
			for i, u := range adj {
				if !opt.admits(u) {
					continue
				}
				w := graph.W(1)
				if wts != nil {
					w = wts[i]
				}
				if res.Dist[u]+w == d {
					res.Parent[v] = u
					break
				}
			}
		}
	})
}

// HopLimitedParallel computes the same h-hop-limited distances as
// HopLimited with every Bellman–Ford round expanded by concurrent
// goroutines: edges are scanned with par.For and relaxations CAS-min
// into the next-round array. Because min-updates commute, the output
// is bit-identical to HopLimited for any schedule. Depth is one unit
// per round, work O(m + |extra|) per round — the Definition 2.4
// quantity at true multicore speed.
func HopLimitedParallel(g *graph.Graph, extra []graph.Edge, sources []graph.V, hops int, cost *par.Cost) []graph.Dist {
	return HopLimitedParallelOn(nil, g, extra, sources, hops, cost)
}

// HopLimitedParallelOn is HopLimitedParallel on an execution context:
// the edge scans fan out under ec's worker cap, the scratch array
// comes from its arena, and cancellation is polled per round. The
// returned distances are freshly owned by the caller (release with
// ec.PutDists when done).
func HopLimitedParallelOn(ec *exec.Ctx, g *graph.Graph, extra []graph.Edge, sources []graph.V, hops int, cost *par.Cost) []graph.Dist {
	n := g.NumVertices()
	dist := ec.Dists(int(n))
	for _, s := range sources {
		dist[s] = 0
	}
	next := ec.Dists(int(n))
	defer func() { ec.PutDists(next) }()
	edges := g.Edges()
	weighted := g.Weighted()
	for round := 0; round < hops; round++ {
		if ec.Checkpoint() {
			break // canceled: partial, invalid
		}
		copy(next, dist)
		var changed atomic.Bool
		relax := func(u, v graph.V, w graph.W) {
			if dist[u] != graph.InfDist && casMin(&next[v], dist[u]+w) {
				changed.Store(true)
			}
			if dist[v] != graph.InfDist && casMin(&next[u], dist[v]+w) {
				changed.Store(true)
			}
		}
		ec.For(len(edges), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				w := graph.W(1)
				if weighted {
					w = edges[i].W
				}
				relax(edges[i].U, edges[i].V, w)
			}
		})
		ec.For(len(extra), 4096, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				relax(extra[i].U, extra[i].V, extra[i].W)
			}
		})
		cost.Round(int64(len(edges) + len(extra)))
		dist, next = next, dist
		if !changed.Load() {
			break
		}
	}
	return dist
}
