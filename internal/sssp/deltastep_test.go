package sssp

import (
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// withProcs forces GOMAXPROCS above 1 so that par.For actually spawns
// goroutines and the CAS relaxation paths run concurrently even on
// single-core hosts (essential for `go test -race` coverage).
func withProcs(t *testing.T, p int, body func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	body()
}

func sameDistances(t *testing.T, label string, got, want *Result) {
	t.Helper()
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("%s: dist[%d] = %d, want %d", label, v, got.Dist[v], want.Dist[v])
		}
	}
}

// TestDeltaSteppingMatchesDijkstra is the headline differential check:
// Δ-stepping distances are bit-identical to Dijkstra's on seeded
// random weighted graphs, under forced goroutine parallelism.
func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	withProcs(t, 4, func() {
		for seed := uint64(0); seed < 8; seed++ {
			g := graph.UniformWeights(graph.RandomConnectedGNM(2000, 8000, seed), 50, seed^11)
			got := DeltaStepping(g, []graph.V{0}, Options{})
			want := Dijkstra(g, []graph.V{0}, Options{})
			sameDistances(t, "gnm", got, want)
		}
	})
}

func TestDeltaSteppingGridAndPath(t *testing.T) {
	withProcs(t, 4, func() {
		cases := []*graph.Graph{
			graph.UniformWeights(graph.Grid2D(40, 40), 20, 3),
			graph.UniformWeights(graph.Path(500), 9, 4),
			graph.Grid2D(30, 30), // unweighted: degenerates to unit costs
		}
		for i, g := range cases {
			got := DeltaStepping(g, []graph.V{0}, Options{})
			want := Dijkstra(g, []graph.V{0}, Options{})
			sameDistances(t, "case", got, want)
			_ = i
		}
	})
}

func TestDeltaSteppingMultiSource(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(400, 1200, 6), 15, 7)
	srcs := []graph.V{0, 100, 399}
	got := DeltaStepping(g, srcs, Options{})
	want := Dijkstra(g, srcs, Options{})
	sameDistances(t, "multi-source", got, want)
}

func TestDeltaSteppingDisconnected(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1, W: 3}, {U: 2, V: 3, W: 2}}, true)
	res := DeltaStepping(g, []graph.V{0}, Options{})
	if !res.Reached(1) || res.Reached(2) || res.Reached(4) {
		t.Fatalf("reachability wrong: %v", res.Dist)
	}
}

func TestDeltaSteppingMaxDist(t *testing.T) {
	g := graph.UniformWeights(graph.Path(50), 4, 9)
	bound := graph.Dist(30)
	got := DeltaStepping(g, []graph.V{0}, Options{MaxDist: bound})
	want := Dijkstra(g, []graph.V{0}, Options{MaxDist: bound})
	sameDistances(t, "bounded", got, want)
}

func TestDeltaSteppingMarkRestriction(t *testing.T) {
	g := graph.UniformWeights(graph.Cycle(12), 3, 5)
	mark := make([]int32, 12)
	for i := 0; i < 7; i++ {
		mark[i] = 1
	}
	opt := Options{Mark: mark, Token: 1}
	got := DeltaStepping(g, []graph.V{0}, opt)
	want := Dijkstra(g, []graph.V{0}, opt)
	sameDistances(t, "restricted", got, want)
	for v := 7; v < 12; v++ {
		if got.Reached(graph.V(v)) {
			t.Fatalf("Δ-stepping escaped the marked set at %d", v)
		}
	}
}

// TestDeltaSteppingExplicitDelta sweeps bucket widths: correctness
// must not depend on Δ (only performance does).
func TestDeltaSteppingExplicitDelta(t *testing.T) {
	withProcs(t, 4, func() {
		g := graph.UniformWeights(graph.RandomConnectedGNM(600, 2400, 13), 40, 14)
		want := Dijkstra(g, []graph.V{5}, Options{})
		for _, d := range []graph.W{1, 3, 10, 40, 1000} {
			got := DeltaStepping(g, []graph.V{5}, Options{Delta: d})
			sameDistances(t, "delta sweep", got, want)
		}
	})
}

// TestDeltaSteppingParentsCertify: the certification pass must emit
// parents whose tree distances telescope exactly.
func TestDeltaSteppingParentsCertify(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(300, 1000, 21), 12, 22)
	res := DeltaStepping(g, []graph.V{0}, Options{})
	for v := graph.V(1); v < g.NumVertices(); v++ {
		if !res.Reached(v) {
			continue
		}
		p := res.Parent[v]
		if p == graph.NoVertex {
			t.Fatalf("reached vertex %d has no parent", v)
		}
		ok := false
		adj := g.Neighbors(v)
		wts := g.AdjWeights(v)
		for i, u := range adj {
			if u == p && res.Dist[p]+wts[i] == res.Dist[v] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("parent %d of %d does not certify dist %d", p, v, res.Dist[v])
		}
		if path := res.PathTo(v); path[0] != 0 || path[len(path)-1] != v {
			t.Fatalf("PathTo(%d) malformed: %v", v, path)
		}
	}
}

// TestDeltaSteppingDeterministic: unlike BFSParallel, the whole Result
// (distances and parents) is schedule-independent.
func TestDeltaSteppingDeterministic(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(1500, 6000, 31), 25, 32)
	a := DeltaStepping(g, []graph.V{3}, Options{})
	withProcs(t, 8, func() {
		b := DeltaStepping(g, []graph.V{3}, Options{})
		for v := range a.Dist {
			if a.Dist[v] != b.Dist[v] || a.Parent[v] != b.Parent[v] {
				t.Fatalf("schedule-dependent result at %d", v)
			}
		}
	})
}

// TestWeightedDispatcher: the Options.Parallel knob selects Δ-stepping
// vs Dial and both agree.
func TestWeightedDispatcher(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(300, 900, 41), 18, 42)
	seqRes := Weighted(g, []graph.V{0}, Options{})
	parRes := Weighted(g, []graph.V{0}, Options{Parallel: true})
	sameDistances(t, "dispatcher", parRes, seqRes)
}

// Property: Δ-stepping == Dijkstra on arbitrary random weighted graphs
// including bounds and random sources, mirroring TestDialDijkstraProperty.
func TestDeltaSteppingDijkstraProperty(t *testing.T) {
	withProcs(t, 4, func() {
		f := func(seedRaw uint32, boundRaw uint8) bool {
			seed := uint64(seedRaw)
			r := rng.New(seed)
			n := int32(r.Intn(80) + 2)
			m := int64(n) + int64(r.Intn(150))
			if max := int64(n) * int64(n-1) / 2; m > max {
				m = max
			}
			g := graph.UniformWeights(graph.RandomConnectedGNM(n, m, seed), 15, seed^3)
			src := graph.V(r.Int31n(n))
			opt := Options{}
			if boundRaw%2 == 0 {
				opt.MaxDist = graph.Dist(boundRaw)
			}
			a := DeltaStepping(g, []graph.V{src}, opt)
			b := Dijkstra(g, []graph.V{src}, opt)
			for v := range a.Dist {
				if a.Dist[v] != b.Dist[v] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeltaSteppingCostAccounting(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(500, 2000, 51), 10, 52)
	cost := par.NewCost()
	DeltaStepping(g, []graph.V{0}, Options{Cost: cost})
	if cost.Work() < g.NumEdges() {
		t.Fatalf("work %d below edge count %d", cost.Work(), g.NumEdges())
	}
	if cost.Depth() == 0 {
		t.Fatal("no depth recorded")
	}
}

// TestHopLimitedParallelMatches: the CAS-relaxed Bellman–Ford rounds
// are bit-identical to the sequential HopLimited at every hop count.
func TestHopLimitedParallelMatches(t *testing.T) {
	withProcs(t, 4, func() {
		g := graph.UniformWeights(graph.RandomConnectedGNM(400, 1600, 61), 9, 62)
		extra := []graph.Edge{{U: 0, V: 200, W: 3}, {U: 5, V: 399, W: 7}}
		for _, hops := range []int{1, 2, 5, 20, int(g.NumVertices())} {
			seqD := HopLimited(g, extra, []graph.V{0}, hops, nil)
			parD := HopLimitedParallel(g, extra, []graph.V{0}, hops, nil)
			for v := range seqD {
				if seqD[v] != parD[v] {
					t.Fatalf("hops=%d: parallel %d vs sequential %d at %d",
						hops, parD[v], seqD[v], v)
				}
			}
		}
	})
}

func BenchmarkDeltaSteppingRandom(b *testing.B) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(10000, 40000, 1), 50, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(g, []graph.V{0}, Options{})
	}
}
