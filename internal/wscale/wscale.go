// Package wscale implements the Appendix B preprocessing of the paper
// (Lemma 5.1): a hierarchical weight-class decomposition that reduces
// shortest-path queries on graphs with arbitrary positive weights to
// queries on instances whose weight ratio is polynomially bounded —
// the assumption Section 5's hopset construction needs.
//
// Edges are grouped into categories E_i = {e : B^i ≤ w(e)/minW <
// B^{i+1}} with B = n/ε. For every non-empty category level j, the
// decomposition records the connected components of the prefix graph
// (all edges in categories ≤ q(j)) and materializes a query instance
// that keeps categories q(j)−1, q(j), q(j)+1 and contracts the
// components formed by categories ≤ q(j)−2 to points: contracted
// edges are ≥ two category factors lighter than the level-q(j) edge
// every routed path contains, so a ≤ n-edge path loses at most an ε
// fraction, while categories ≥ q(j)+2 exceed any distance realizable
// at this level. Each instance's weight ratio is ≤ B³ = O((n/ε)³),
// the paper's polynomial bound.
//
// A query (s, t) routes to the lowest level at which s and t are
// connected — a predecessor search over the monotone component
// hierarchy, standing in for the paper's parallel-tree-contraction LCA
// (see DESIGN.md) — and the instance's distance is a
// (1−ε)-approximation of the true distance (Lemma 5.1).
package wscale

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/sssp"
)

// Decomposition is the preprocessed hierarchy for one graph.
type Decomposition struct {
	// Base is the decomposed graph.
	Base *graph.Graph
	// Eps is the approximation parameter ε.
	Eps float64
	// B is the category base n/ε.
	B float64
	// Cats holds, per non-empty category level j ascending, the
	// category index q(j).
	Cats []int
	// Levels[j] are the connected-component labels of the prefix
	// graph through category q(j); LevelCounts[j] the component count.
	Levels      [][]graph.V
	LevelCounts []int32
	// Instances[j] answers queries whose lowest connecting level is j.
	Instances []*Instance
}

// Instance is one polynomially-bounded-ratio query instance.
type Instance struct {
	// G is the quotient instance graph.
	G *graph.Graph
	// Label maps base-graph vertices to instance vertices.
	Label []graph.V
	// Level is the decomposition level this instance serves.
	Level int
}

// catOf returns the category index of weight w under base b and
// minimum weight minW: floor(log_b(w/minW)).
func catOf(w graph.W, minW graph.W, b float64) int {
	ratio := float64(w) / float64(minW)
	if ratio < b {
		return 0
	}
	c := int(math.Log(ratio) / math.Log(b))
	// Guard against float boundary error.
	for math.Pow(b, float64(c+1)) <= ratio {
		c++
	}
	for c > 0 && math.Pow(b, float64(c)) > ratio {
		c--
	}
	return c
}

// Build preprocesses g. eps must be in (0, 1). Work is
// O(#categories · m); the per-level connectivity uses the
// hook-and-compress parallel components routine, so the model depth is
// O(#categories · log n) (the paper's divide-and-conquer shaves that
// to O(log³ n); see DESIGN.md for the substitution note).
func Build(g *graph.Graph, eps float64, cost *par.Cost) *Decomposition {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("wscale: eps = %v, want (0,1)", eps))
	}
	n := g.NumVertices()
	b := float64(n) / eps
	if b < 2 {
		b = 2
	}
	d := &Decomposition{Base: g, Eps: eps, B: b}
	if n == 0 || g.NumEdges() == 0 {
		return d
	}
	minW := g.MinWeight()

	// Group edge ids by category.
	byCat := map[int][]int32{}
	for e := int32(0); int64(e) < g.NumEdges(); e++ {
		c := catOf(g.EdgeWeight(e), minW, b)
		byCat[c] = append(byCat[c], e)
	}
	for c := range byCat {
		d.Cats = append(d.Cats, c)
	}
	sort.Ints(d.Cats)

	// Prefix components per level.
	var prefix []int32
	for _, c := range d.Cats {
		prefix = append(prefix, byCat[c]...)
		pg := g.SubgraphFromEdgeIDs(prefix)
		comp, count := pg.ComponentsParallel(cost)
		d.Levels = append(d.Levels, comp)
		d.LevelCounts = append(d.LevelCounts, count)
	}

	// Query instances per level. A level-j query is answered on the
	// instance that keeps categories q(j)−1, q(j), q(j)+1 and
	// contracts everything in categories ≤ q(j)−2: the paper's error
	// analysis needs two category levels (factor (n/ε)²) between the
	// guaranteed level-q(j) path edge and the heaviest contracted
	// edge, so that an n-edge path loses at most an ε fraction.
	// Categories ≥ q(j)+2 exceed any distance realizable at level j.
	for j, c := range d.Cats {
		ids := append([]int32(nil), byCat[c]...)
		if prev, ok := byCat[c-1]; ok {
			ids = append(ids, prev...)
		}
		if next, ok := byCat[c+1]; ok {
			ids = append(ids, next...)
		}
		// Contraction state: the deepest recorded level whose
		// category is ≤ q(j)−2.
		contractLevel := -1
		for jj := j - 1; jj >= 0; jj-- {
			if d.Cats[jj] <= c-2 {
				contractLevel = jj
				break
			}
		}
		var label []graph.V
		var count int32
		if contractLevel < 0 {
			label = make([]graph.V, n)
			for i := range label {
				label[i] = graph.V(i)
			}
			count = n
		} else {
			label = d.Levels[contractLevel]
			count = d.LevelCounts[contractLevel]
		}
		sub := g.SubgraphFromEdgeIDs(ids)
		inst := sub.Contract(label, count)
		cost.AddWork(int64(len(ids)) + int64(n))
		cost.AddDepth(int64(math.Ceil(math.Log2(float64(n + 1)))))
		d.Instances = append(d.Instances, &Instance{G: inst, Label: label, Level: j})
	}
	return d
}

// LevelOf returns the lowest level at which s and t are connected, or
// -1 if they are disconnected in the whole graph. Component labels
// only merge as levels increase, so a binary search applies (this is
// the LCA query of the paper's decomposition tree).
func (d *Decomposition) LevelOf(s, t graph.V) int {
	k := len(d.Levels)
	if k == 0 || d.Levels[k-1][s] != d.Levels[k-1][t] {
		return -1
	}
	lo, hi := 0, k-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Levels[mid][s] == d.Levels[mid][t] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// InstanceFor returns the query instance and mapped endpoints for an
// (s, t) query, or nil when s and t are disconnected.
func (d *Decomposition) InstanceFor(s, t graph.V) (*Instance, graph.V, graph.V) {
	j := d.LevelOf(s, t)
	if j < 0 {
		return nil, graph.NoVertex, graph.NoVertex
	}
	inst := d.Instances[j]
	return inst, inst.Label[s], inst.Label[t]
}

// Query returns a (1−ε)-approximate s-t distance by routing to the
// right instance and running an exact search there (Lemma 5.1). The
// result is ≤ the true distance and ≥ (1−ε) times it. Callers wanting
// the full parallel pipeline run the Section 5 hopset on the instance
// instead; tests use Query to validate the decomposition itself.
func (d *Decomposition) Query(s, t graph.V, cost *par.Cost) graph.Dist {
	if s == t {
		return 0
	}
	inst, is, it := d.InstanceFor(s, t)
	if inst == nil {
		return graph.InfDist
	}
	if is == it {
		// Unreachable for a correctly-routed query (the LCA level
		// guarantees s and t are separated two categories down), but
		// kept as a safe degenerate answer.
		return 0
	}
	res := sssp.Dijkstra(inst.G, []graph.V{is}, sssp.Options{Cost: cost})
	return res.Dist[it]
}

// MaxInstanceRatio returns the largest weight ratio over all
// instances — the quantity Lemma 5.1 bounds by O((n/ε)³).
func (d *Decomposition) MaxInstanceRatio() float64 {
	worst := 1.0
	for _, inst := range d.Instances {
		if inst.G.NumEdges() == 0 {
			continue
		}
		if r := inst.G.WeightRatio(); r > worst {
			worst = r
		}
	}
	return worst
}

// TotalInstanceEdges returns the summed instance sizes; each base
// edge appears in at most three instances (its own category and the
// neighboring ones), so this is ≤ 3m.
func (d *Decomposition) TotalInstanceEdges() int64 {
	var total int64
	for _, inst := range d.Instances {
		total += inst.G.NumEdges()
	}
	return total
}
