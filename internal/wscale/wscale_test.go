package wscale

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sssp"
)

func TestCatOf(t *testing.T) {
	b := 10.0
	cases := []struct {
		w    graph.W
		minW graph.W
		want int
	}{
		{1, 1, 0}, {9, 1, 0}, {10, 1, 1}, {99, 1, 1}, {100, 1, 2},
		{1000, 1, 3}, {50, 5, 1}, {5, 5, 0},
	}
	for _, c := range cases {
		if got := catOf(c.w, c.minW, b); got != c.want {
			t.Errorf("catOf(%d, %d, %v) = %d, want %d", c.w, c.minW, b, got, c.want)
		}
	}
}

func TestBuildSingleScale(t *testing.T) {
	// All weights within one category: one level, no contraction.
	g := graph.UniformWeights(graph.RandomConnectedGNM(100, 300, 1), 50, 2)
	d := Build(g, 0.5, nil)
	if len(d.Cats) != 1 {
		t.Fatalf("categories = %v, want one", d.Cats)
	}
	if len(d.Instances) != 1 {
		t.Fatalf("instances = %d", len(d.Instances))
	}
	// Single-scale instance must answer queries exactly.
	ref := sssp.Dijkstra(g, []graph.V{0}, sssp.Options{})
	for v := graph.V(1); v < 20; v++ {
		got := d.Query(0, v, nil)
		if got != ref.Dist[v] {
			t.Fatalf("single-scale query(0,%d) = %d, want %d", v, got, ref.Dist[v])
		}
	}
}

// multiScaleGraph builds a graph with clusters connected internally by
// light edges and to each other by very heavy edges, forcing several
// weight categories.
func multiScaleGraph(seed uint64) *graph.Graph {
	r := rng.New(seed)
	const groups, per = 5, 30
	n := int32(groups * per)
	var edges []graph.Edge
	// Light intra-group random connected graphs.
	for gi := int32(0); gi < groups; gi++ {
		base := gi * per
		for i := int32(1); i < per; i++ {
			j := r.Int31n(i)
			edges = append(edges, graph.Edge{U: base + i, V: base + j, W: 1 + r.Int63n(4)})
		}
		for extra := 0; extra < per; extra++ {
			u := base + r.Int31n(per)
			v := base + r.Int31n(per)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: 1 + r.Int63n(4)})
			}
		}
	}
	// Heavy inter-group edges (weight far above n/eps times the light
	// ones) forming a path of groups.
	for gi := int32(0); gi+1 < groups; gi++ {
		u := gi*per + r.Int31n(per)
		v := (gi+1)*per + r.Int31n(per)
		edges = append(edges, graph.Edge{U: u, V: v, W: 1_000_000 + r.Int63n(1000)})
	}
	return graph.FromEdges(n, graph.Simplify(edges), true)
}

func TestBuildMultiScale(t *testing.T) {
	g := multiScaleGraph(3)
	cost := par.NewCost()
	d := Build(g, 0.5, cost)
	if len(d.Cats) < 2 {
		t.Fatalf("expected multiple categories, got %v", d.Cats)
	}
	if cost.Work() == 0 || cost.Depth() == 0 {
		t.Fatal("no cost recorded")
	}
	// The top level must connect everything (graph is connected).
	top := len(d.Levels) - 1
	if d.LevelCounts[top] != 1 {
		t.Fatalf("top level has %d components, want 1", d.LevelCounts[top])
	}
	// Lower level: groups are separate.
	if d.LevelCounts[0] < 2 {
		t.Fatalf("bottom level has %d components, want several", d.LevelCounts[0])
	}
}

func TestLevelOf(t *testing.T) {
	g := multiScaleGraph(5)
	d := Build(g, 0.5, nil)
	// Same group: lowest level. Different groups: top level.
	if lv := d.LevelOf(0, 1); lv != 0 {
		t.Fatalf("intra-group level = %d, want 0", lv)
	}
	if lv := d.LevelOf(0, 140); lv != len(d.Cats)-1 {
		t.Fatalf("inter-group level = %d, want top %d", lv, len(d.Cats)-1)
	}
	if lv := d.LevelOf(3, 3); lv != 0 {
		t.Fatalf("self level = %d", lv)
	}
}

func TestLevelOfDisconnected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 5}}, true)
	d := Build(g, 0.5, nil)
	if lv := d.LevelOf(0, 3); lv != -1 {
		t.Fatalf("disconnected level = %d, want -1", lv)
	}
	if got := d.Query(0, 3, nil); got != graph.InfDist {
		t.Fatalf("disconnected query = %d", got)
	}
}

// TestLemma51Approximation: instance distances are within (1−ε) of
// true distances, never above.
func TestLemma51Approximation(t *testing.T) {
	g := multiScaleGraph(7)
	eps := 0.5
	d := Build(g, eps, nil)
	r := rng.New(8)
	for i := 0; i < 60; i++ {
		s := r.Int31n(g.NumVertices())
		u := r.Int31n(g.NumVertices())
		if s == u {
			continue
		}
		truth := sssp.Dijkstra(g, []graph.V{s}, sssp.Options{}).Dist[u]
		got := d.Query(s, u, nil)
		if got > truth {
			t.Fatalf("query(%d,%d) = %d exceeds true %d", s, u, got, truth)
		}
		if float64(got) < (1-eps)*float64(truth) {
			t.Fatalf("query(%d,%d) = %d below (1-ε)·%d", s, u, got, truth)
		}
	}
}

// TestLemma51Ratio: every instance has polynomially bounded weight
// ratio even when the input spans many more scales.
func TestLemma51Ratio(t *testing.T) {
	g := graph.ExponentialWeights(graph.RandomConnectedGNM(200, 800, 9), 10, 12, 10)
	eps := 0.5
	d := Build(g, eps, nil)
	n := float64(g.NumVertices())
	bound := math.Pow(n/eps, 3)
	if r := d.MaxInstanceRatio(); r > bound {
		t.Fatalf("instance ratio %.3g exceeds (n/ε)³ = %.3g", r, bound)
	}
	if d.MaxInstanceRatio() >= g.WeightRatio() && len(d.Cats) > 1 {
		t.Fatalf("decomposition did not reduce the weight ratio (%.3g vs %.3g)",
			d.MaxInstanceRatio(), g.WeightRatio())
	}
}

func TestTotalInstanceEdgesBounded(t *testing.T) {
	g := graph.ExponentialWeights(graph.RandomConnectedGNM(300, 1200, 11), 8, 10, 12)
	d := Build(g, 0.5, nil)
	if total := d.TotalInstanceEdges(); total > 3*g.NumEdges() {
		t.Fatalf("instances hold %d edges, more than 3m = %d", total, 3*g.NumEdges())
	}
}

func TestBuildPanicsOnBadEps(t *testing.T) {
	g := graph.Path(3)
	for _, eps := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps = %v did not panic", eps)
				}
			}()
			Build(g, eps, nil)
		}()
	}
}

func TestBuildEmpty(t *testing.T) {
	d := Build(graph.FromEdges(0, nil, true), 0.5, nil)
	if len(d.Instances) != 0 {
		t.Fatal("empty graph should have no instances")
	}
	d2 := Build(graph.FromEdges(5, nil, true), 0.5, nil)
	if len(d2.Instances) != 0 {
		t.Fatal("edgeless graph should have no instances")
	}
}

// Property: on arbitrary exponential-weight graphs, queries are sound
// (never above truth, never below (1−ε)·truth) and levels are
// monotone.
func TestQuerySoundnessProperty(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		r := rng.New(seed ^ 0x77)
		n := int32(r.Intn(60) + 10)
		m := int64(n) - 1 + int64(r.Intn(100))
		if max := int64(n) * int64(n-1) / 2; m > max {
			m = max
		}
		g := graph.ExponentialWeights(graph.RandomConnectedGNM(n, m, seed), 6, 8, seed^1)
		eps := 0.5
		d := Build(g, eps, nil)
		s := graph.V(r.Int31n(n))
		truth := sssp.Dijkstra(g, []graph.V{s}, sssp.Options{})
		for trial := 0; trial < 8; trial++ {
			u := graph.V(r.Int31n(n))
			if u == s {
				continue
			}
			got := d.Query(s, u, nil)
			if got > truth.Dist[u] {
				return false
			}
			if float64(got) < (1-eps)*float64(truth.Dist[u]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	g := graph.ExponentialWeights(graph.RandomConnectedGNM(10000, 40000, 1), 10, 12, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g, 0.5, nil)
	}
}
