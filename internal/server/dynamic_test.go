package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	spanhop "repro"
	"repro/internal/workload"
)

// applyResponse is the JSON shape of POST/DELETE /graphs/{id}/edges.
type applyResponse struct {
	ID         string       `json:"id"`
	Applied    int          `json:"applied"`
	Generation uint64       `json:"generation"`
	Dynamic    *DynamicInfo `json:"dynamic"`
}

// TestMutationEndpoints: POST /graphs/{id}/edges applies mutations
// (generation bumps, queries see them immediately, caches flush),
// DELETE /graphs/{id}/edges removes edges, a bad batch 400s
// atomically, and /stats exposes the overlay gauges.
func TestMutationEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	const genSpec = "grid:side=6,w=uniform,maxw=9"
	if code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "g", Gen: genSpec, Seed: 3}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	info := waitReady(t, ts, "g")
	if info.Dynamic == nil || info.Dynamic.Generation != 0 {
		t.Fatalf("ready info dynamic = %+v", info.Dynamic)
	}

	// Local replica: the daemon's build is deterministic in
	// (spec, eps, seed), so replaying mutations locally reproduces the
	// server's answers exactly.
	spec, err := workload.ParseSpec(genSpec, 3)
	if err != nil {
		t.Fatal(err)
	}
	local := spanhop.NewDynamicOracle(
		spanhop.NewDistanceOracleOpts(spec.Gen(), 0.25, 3, spanhop.OracleOptions{}),
		spanhop.RebuildPolicy{Disabled: true})
	defer local.Close()

	query := func(s, u int32) (int64, bool) {
		var res struct {
			Dist        int64 `json:"dist"`
			Unreachable bool  `json:"unreachable"`
		}
		if code := httpJSON(t, ts, "POST", "/graphs/g/query",
			map[string]any{"s": s, "t": u}, &res); code != http.StatusOK {
			t.Fatalf("query = %d", code)
		}
		return res.Dist, res.Unreachable
	}
	// Prime the cache with the pre-mutation answer.
	before, _ := query(0, 35)

	var ar applyResponse
	updates := []map[string]any{
		{"op": "insert", "u": 0, "v": 35, "w": 1},
		{"op": "reweight", "u": 0, "v": 1, "w": 9},
	}
	if code := httpJSON(t, ts, "POST", "/graphs/g/edges",
		map[string]any{"updates": updates}, &ar); code != http.StatusOK {
		t.Fatalf("POST /edges = %d", code)
	}
	if ar.Generation != 2 || ar.Applied != 2 || ar.Dynamic.PendingUpdates != 2 {
		t.Fatalf("apply response = %+v", ar)
	}
	if _, err := local.ApplyUpdates([]spanhop.DynamicUpdate{
		{Op: spanhop.UpdateInsert, U: 0, V: 35, W: 1},
		{Op: spanhop.UpdateReweight, U: 0, V: 1, W: 9},
	}); err != nil {
		t.Fatal(err)
	}

	// The cached pre-mutation answer must be gone: the shortcut wins.
	after, _ := query(0, 35)
	if after != 1 {
		t.Fatalf("query after insert = %d (before %d), want 1", after, before)
	}
	// And a sweep of pairs matches the local replica bit-for-bit.
	for s := int32(0); s < 36; s += 7 {
		for u := int32(1); u < 36; u += 5 {
			got, unreach := query(s, u)
			want, err := local.Query(s, u)
			if err != nil {
				t.Fatal(err)
			}
			wantUnreach := want == spanhop.InfDist
			wantDist := want
			if wantUnreach {
				wantDist = 0
			}
			if got != wantDist || unreach != wantUnreach {
				t.Fatalf("(%d,%d): server %d/%v, local %d/%v", s, u, got, unreach, wantDist, wantUnreach)
			}
		}
	}

	// DELETE /edges sugar.
	if code := httpJSON(t, ts, "DELETE", "/graphs/g/edges",
		map[string]any{"edges": [][2]int32{{0, 35}}}, &ar); code != http.StatusOK {
		t.Fatalf("DELETE /edges = %d", code)
	}
	if ar.Generation != 3 {
		t.Fatalf("generation after delete = %d", ar.Generation)
	}
	if _, err := local.ApplyUpdates([]spanhop.DynamicUpdate{
		{Op: spanhop.UpdateDelete, U: 0, V: 35},
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := query(0, 35)
	want, _ := local.Query(0, 35)
	if got != want {
		t.Fatalf("post-delete query = %d, want %d", got, want)
	}

	// Atomicity: one bad update fails the whole batch, generation
	// unchanged.
	bad := []map[string]any{
		{"op": "insert", "u": 2, "v": 30, "w": 1},
		{"op": "delete", "u": 2, "v": 30},        // fine so far...
		{"op": "insert", "u": 2, "v": 2, "w": 1}, // ...but a self-loop sinks it
	}
	if code := httpJSON(t, ts, "POST", "/graphs/g/edges",
		map[string]any{"updates": bad}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad batch = %d, want 400", code)
	}
	var stats struct {
		Graphs map[string]graphStats `json:"graphs"`
	}
	if code := httpJSON(t, ts, "GET", "/stats", nil, &stats); code != http.StatusOK {
		t.Fatal("stats failed")
	}
	gs := stats.Graphs["g"]
	if gs.Dynamic == nil || gs.Dynamic.Generation != 3 || gs.Dynamic.PendingUpdates != 3 {
		t.Fatalf("stats dynamic = %+v", gs.Dynamic)
	}
	if gs.MutationBatches != 2 || gs.Mutations != 3 {
		t.Fatalf("mutation counters = %d/%d", gs.MutationBatches, gs.Mutations)
	}
	if gs.Dynamic.StalenessMS < 0 {
		t.Fatalf("staleness = %d", gs.Dynamic.StalenessMS)
	}

	// Mutating a building/unknown graph is a clean 4xx.
	if code := httpJSON(t, ts, "POST", "/graphs/none/edges",
		map[string]any{"updates": updates}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph mutate = %d", code)
	}

	// Forced rebuild folds the journal and resets the gauges.
	var rb struct {
		Dynamic *DynamicInfo `json:"dynamic"`
	}
	if code := httpJSON(t, ts, "POST", "/graphs/g/rebuild", nil, &rb); code != http.StatusOK {
		t.Fatalf("rebuild = %d", code)
	}
	if rb.Dynamic.PendingUpdates != 0 || rb.Dynamic.BaseGeneration != 3 || rb.Dynamic.Rebuilds < 1 {
		t.Fatalf("rebuild dynamic = %+v", rb.Dynamic)
	}
	// Answers unchanged by the rebuild (exact regime before, fresh
	// oracle after — the delete is now baked in).
	got2, _ := query(0, 35)
	if got2 != got {
		t.Fatalf("rebuild changed the answer: %d -> %d", got, got2)
	}
}

// TestAutoRebuildOverHTTP: crossing the journal policy triggers a
// background rebuild that the gauges surface.
func TestAutoRebuildOverHTTP(t *testing.T) {
	s := New(Config{BatchWindow: time.Millisecond, RebuildMaxJournal: 3, RebuildMaxPatchFraction: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	if code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "g", Gen: "er:n=80,d=4,w=uniform,maxw=20", Seed: 5}, nil); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	waitReady(t, ts, "g")
	var ar applyResponse
	if code := httpJSON(t, ts, "POST", "/graphs/g/edges", map[string]any{"updates": []map[string]any{
		{"op": "insert", "u": 0, "v": 50, "w": 2},
		{"op": "insert", "u": 1, "v": 60, "w": 3},
		{"op": "insert", "u": 2, "v": 70, "w": 4},
	}}, &ar); code != http.StatusOK {
		t.Fatalf("edges = %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var info Info
		httpJSON(t, ts, "GET", "/graphs/g", nil, &info)
		if info.Dynamic != nil && info.Dynamic.Rebuilds >= 1 && info.Dynamic.PendingUpdates == 0 {
			if info.Dynamic.LastCause != "journal" {
				t.Fatalf("cause = %q", info.Dynamic.LastCause)
			}
			if info.Dynamic.BaseGeneration != 3 {
				t.Fatalf("base generation = %d", info.Dynamic.BaseGeneration)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto rebuild never surfaced: %+v", info.Dynamic)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The inserted shortcut still answers post-rebuild.
	var res struct {
		Dist int64 `json:"dist"`
	}
	if code := httpJSON(t, ts, "POST", "/graphs/g/query",
		map[string]any{"s": 0, "t": 50}, &res); code != http.StatusOK || res.Dist != 2 {
		t.Fatalf("post-rebuild query = %d dist=%d", code, res.Dist)
	}
}

// TestMetricsEndpoint: /metrics emits the Prometheus exposition with
// the serving counters and the dynamic gauges.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	if code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "m", Gen: "grid:side=5", Seed: 1}, nil); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	waitReady(t, ts, "m")
	httpJSON(t, ts, "POST", "/graphs/m/query", map[string]any{"s": 0, "t": 24}, nil)
	httpJSON(t, ts, "POST", "/graphs/m/query", map[string]any{"s": 0, "t": 24}, nil) // cache hit
	httpJSON(t, ts, "POST", "/graphs/m/edges", map[string]any{"updates": []map[string]any{
		{"op": "insert", "u": 0, "v": 24},
	}}, nil)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`spanhop_requests_total{graph="m"} 2`,
		`spanhop_cache_hits_total{graph="m"} 1`,
		`spanhop_graphs{state="ready"} 1`,
		`spanhop_generation{graph="m"} 1`,
		`spanhop_pending_updates{graph="m"} 1`,
		`spanhop_mutations_total{graph="m"} 1`,
		`spanhop_query_latency_seconds_count{graph="m"} 2`,
		"# TYPE spanhop_query_latency_seconds histogram",
		`spanhop_build_stage_wall_seconds{graph="m",stage="hopset-build"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Histogram buckets must be cumulative and end at +Inf == count.
	if !strings.Contains(body, `spanhop_query_latency_seconds_bucket{graph="m",le="+Inf"} 2`) {
		t.Error("metrics missing +Inf bucket")
	}
}
