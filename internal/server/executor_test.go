package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	spanhop "repro"
	"repro/internal/graph"
	"repro/internal/rng"
)

// testOracle builds a small weighted oracle shared by executor tests.
func testOracle(t *testing.T) *spanhop.DistanceOracle {
	t.Helper()
	g := graph.UniformWeights(graph.RandomConnectedGNM(256, 1024, 3), 40, 4)
	return spanhop.NewDistanceOracle(g, 0.3, 5)
}

func withProcs(t *testing.T, p int, body func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	body()
}

// TestCoalescingMatchesSerial is the serving-path differential test:
// many goroutines hammer the executor with single queries; every
// answer must be bit-identical to a serial DistanceOracle.Query, and
// the window must demonstrably coalesce (mean batch size > 1).
// Runs under -race in CI.
func TestCoalescingMatchesSerial(t *testing.T) {
	withProcs(t, 4, func() {
		oracle := testOracle(t)
		stats := &GraphStats{}
		x := newExecutor(oracle, Config{
			BatchWindow:  10 * time.Millisecond,
			MaxBatch:     1024,
			QueryWorkers: 4,
			QueryQueue:   4096,
			CacheSize:    -1, // force every query through the batching path
		}, stats)
		defer x.Close()

		const workers = 8
		const perWorker = 40
		type res struct {
			s, t graph.V
			st   spanhop.QueryStats
		}
		results := make([][]res, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rng.New(uint64(100 + w))
				for i := 0; i < perWorker; i++ {
					s := r.Int31n(256)
					u := r.Int31n(256)
					st, err := x.Query(context.Background(), s, u)
					if err != nil {
						t.Errorf("worker %d: Query(%d,%d): %v", w, s, u, err)
						return
					}
					results[w] = append(results[w], res{s: s, t: u, st: st})
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}

		for w, rs := range results {
			for _, r := range rs {
				want, err := oracle.QueryStats(r.s, r.t)
				if err != nil {
					t.Fatal(err)
				}
				if r.st != want {
					t.Fatalf("worker %d: coalesced Query(%d,%d) = %+v, serial = %+v",
						w, r.s, r.t, r.st, want)
				}
			}
		}

		snap := stats.Snapshot()
		if snap.Requests != workers*perWorker {
			t.Fatalf("requests = %d, want %d", snap.Requests, workers*perWorker)
		}
		if snap.BatchedQueries != workers*perWorker {
			t.Fatalf("batched queries = %d, want %d", snap.BatchedQueries, workers*perWorker)
		}
		if snap.Batches == 0 || snap.MeanBatchSize <= 1 {
			t.Fatalf("coalescing did not batch: %d batches, mean size %.2f",
				snap.Batches, snap.MeanBatchSize)
		}
		if snap.Latency.Count != workers*perWorker {
			t.Fatalf("latency count = %d, want %d", snap.Latency.Count, workers*perWorker)
		}
	})
}

func TestExecutorCacheHits(t *testing.T) {
	oracle := testOracle(t)
	stats := &GraphStats{}
	x := newExecutor(oracle, Config{BatchWindow: time.Millisecond, CacheSize: 16}, stats)
	defer x.Close()

	first, err := x.Query(context.Background(), 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	second, err := x.Query(context.Background(), 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("cache returned a different answer: %+v vs %+v", first, second)
	}
	snap := stats.Snapshot()
	if snap.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", snap.CacheHits)
	}
	if x.cache.len() != 1 {
		t.Fatalf("cache len = %d, want 1", x.cache.len())
	}
}

func TestExecutorBatchAPI(t *testing.T) {
	oracle := testOracle(t)
	stats := &GraphStats{}
	x := newExecutor(oracle, Config{}, stats)
	defer x.Close()

	pairs := [][2]graph.V{{0, 10}, {20, 30}, {7, 7}}
	got, err := x.Batch(context.Background(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := oracle.QueryBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if got[i] != want[i] {
			t.Fatalf("Batch[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	snap := stats.Snapshot()
	if snap.BatchCalls != 1 || snap.BatchCallQueries != 3 {
		t.Fatalf("batch counters = %d/%d, want 1/3", snap.BatchCalls, snap.BatchCallQueries)
	}

	if _, err := x.Batch(context.Background(), [][2]graph.V{{0, 999}}); err == nil {
		t.Fatal("out-of-range batch pair accepted")
	}
}

// TestExecutorValidationIsolated: a malformed single query errors
// synchronously and never joins (and so never fails) a micro-batch.
func TestExecutorValidationIsolated(t *testing.T) {
	oracle := testOracle(t)
	stats := &GraphStats{}
	x := newExecutor(oracle, Config{BatchWindow: 5 * time.Millisecond}, stats)
	defer x.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := x.Query(context.Background(), 1, 2); err != nil {
			t.Errorf("valid query failed alongside invalid one: %v", err)
		}
	}()
	if _, err := x.Query(context.Background(), 1, 9999); err == nil {
		t.Fatal("out-of-range query accepted")
	}
	wg.Wait()
	if snap := stats.Snapshot(); snap.Failures != 1 {
		t.Fatalf("failures = %d, want 1", snap.Failures)
	}
}

// TestExecutorBackpressure: with the worker pool wedged and a tiny
// queue, surplus queries must fail fast with ErrOverloaded, and the
// survivors must still answer correctly once the pool frees up.
func TestExecutorBackpressure(t *testing.T) {
	oracle := testOracle(t)
	stats := &GraphStats{}
	x := newExecutor(oracle, Config{
		BatchWindow:  time.Nanosecond, // flush immediately
		MaxBatch:     1,
		QueryWorkers: 1,
		QueryQueue:   2,
		CacheSize:    -1,
	}, stats)
	defer x.Close()

	x.sem <- struct{}{} // wedge the only pool slot
	const n = 6
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := x.Query(context.Background(), graph.V(i), graph.V(i+10))
			errs <- err
		}(i)
	}
	// Capacity while wedged: 1 in the collector's blocked dispatch +
	// 2 in the queue; at least 3 of 6 must be rejected. Wait for that
	// before releasing the pool.
	deadline := time.Now().Add(10 * time.Second)
	for stats.rejects.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	<-x.sem // release the pool
	wg.Wait()
	close(errs)

	var overloaded, ok int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if overloaded < 3 {
		t.Fatalf("overloaded = %d, want >= 3 of %d", overloaded, n)
	}
	if ok != n-overloaded {
		t.Fatalf("ok = %d, want %d", ok, n-overloaded)
	}
	if got := stats.Snapshot().Rejects; got != int64(overloaded) {
		t.Fatalf("rejects counter = %d, want %d", got, overloaded)
	}
}

// TestExecutorBatchOverload: explicit batch calls share the fail-fast
// contract — with the pool wedged and the waiter bound at QueryQueue,
// surplus Batch calls get ErrOverloaded and a canceled ctx frees a
// parked one.
func TestExecutorBatchOverload(t *testing.T) {
	oracle := testOracle(t)
	stats := &GraphStats{}
	x := newExecutor(oracle, Config{QueryWorkers: 1, QueryQueue: 1}, stats)
	defer x.Close()

	x.sem <- struct{}{} // wedge the pool
	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan error, 1)
	go func() {
		_, err := x.Batch(ctx, [][2]graph.V{{0, 1}})
		parked <- err
	}()
	// Wait for the goroutine to occupy the single waiter slot.
	deadline := time.Now().Add(10 * time.Second)
	for x.batchWaiters.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := x.Batch(context.Background(), [][2]graph.V{{2, 3}}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second Batch = %v, want ErrOverloaded", err)
	}
	cancel()
	if err := <-parked; !errors.Is(err, context.Canceled) {
		t.Fatalf("parked Batch = %v, want context.Canceled", err)
	}
	<-x.sem // release for Close
	if got := stats.Snapshot().Rejects; got != 1 {
		t.Fatalf("rejects = %d, want 1", got)
	}
}

func TestExecutorCloseFailsPending(t *testing.T) {
	oracle := testOracle(t)
	x := newExecutor(oracle, Config{BatchWindow: time.Hour, MaxBatch: 1 << 20}, &GraphStats{})
	done := make(chan error, 1)
	go func() {
		_, err := x.Query(context.Background(), 0, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the query reach the collector
	x.Close()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("pending query got %v, want nil (flushed) or ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending query hung across Close")
	}
	if _, err := x.Query(context.Background(), 0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close = %v, want ErrClosed", err)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	st := func(d graph.Dist) spanhop.QueryStats { return spanhop.QueryStats{Dist: d} }
	c.put([2]graph.V{0, 1}, st(10), c.epoch())
	c.put([2]graph.V{0, 2}, st(20), c.epoch())
	c.get([2]graph.V{0, 1}) // refresh 0-1
	c.put([2]graph.V{0, 3}, st(30), c.epoch())
	if _, ok := c.get([2]graph.V{0, 2}); ok {
		t.Fatal("LRU kept the stale entry")
	}
	if got, ok := c.get([2]graph.V{0, 1}); !ok || got.Dist != 10 {
		t.Fatal("LRU evicted the refreshed entry")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestLRUCacheEpochFlush: a put whose result was computed before a
// flush (stale epoch) is dropped — the guard that keeps an in-flight
// batch from resurrecting pre-mutation answers.
func TestLRUCacheEpochFlush(t *testing.T) {
	c := newLRUCache(4)
	st := func(d graph.Dist) spanhop.QueryStats { return spanhop.QueryStats{Dist: d} }
	old := c.epoch()
	c.flush()
	c.put([2]graph.V{0, 1}, st(10), old) // computed pre-flush: must not land
	if _, ok := c.get([2]graph.V{0, 1}); ok {
		t.Fatal("stale-epoch put landed in the cache")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d, want 0", c.len())
	}
	c.put([2]graph.V{0, 1}, st(11), c.epoch())
	if got, ok := c.get([2]graph.V{0, 1}); !ok || got.Dist != 11 {
		t.Fatal("fresh-epoch put missing")
	}
}

func TestLatencyHistogram(t *testing.T) {
	var h latencyHist
	h.Record(30 * time.Microsecond)
	h.Record(70 * time.Microsecond)
	h.Record(3 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.Buckets[0] != 1 || snap.Buckets[1] != 1 {
		t.Fatalf("buckets = %v", snap.Buckets)
	}
	if snap.MaxUS != 3000 {
		t.Fatalf("max = %d", snap.MaxUS)
	}
	if snap.P50US == 0 || snap.P99US < snap.P50US {
		t.Fatalf("quantiles = %d/%d", snap.P50US, snap.P99US)
	}
}
