package server

// Snapshot persistence + warm-start coverage: a daemon restart with
// -snapshot-dir must serve the same answers without rebuilding, POST
// /graphs/{id}/snapshot forces a write, and DELETE removes the file.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func newSnapshotServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{BatchWindow: time.Millisecond, SnapshotDir: dir})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// waitSnapshot polls until the entry's snapshot file exists (the
// on-ready writer runs in the background).
func waitSnapshot(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("snapshot %s never appeared", path)
}

func TestSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	const gen = "er:n=180,d=5,w=uniform,maxw=25"
	spec := GraphSpec{Name: "wg", Gen: gen, Eps: 0.3, Seed: 7}

	// First life: build, auto-snapshot, capture answers.
	_, ts := newSnapshotServer(t, dir)
	if code := httpJSON(t, ts, "POST", "/graphs", spec, nil); code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	info := waitReady(t, ts, "wg")
	if info.WarmStarted {
		t.Fatal("freshly built graph claims warm start")
	}
	if len(info.BuildStages) == 0 {
		t.Fatal("fresh build recorded no stage telemetry")
	}
	snapPath := filepath.Join(dir, "wg.snap")
	waitSnapshot(t, snapPath)

	pairs := [][2]int32{{0, 179}, {3, 99}, {17, 17}, {42, 150}}
	var first struct {
		Results []queryResult `json:"results"`
	}
	if code := httpJSON(t, ts, "POST", "/graphs/wg/query",
		map[string]any{"pairs": pairs}, &first); code != http.StatusOK {
		t.Fatalf("query = %d", code)
	}

	// Second life: a fresh server over the same dir warm-starts it.
	s2, ts2 := newSnapshotServer(t, dir)
	if loaded, errs := s2.Registry().WarmStart(); loaded != 1 || len(errs) != 0 {
		t.Fatalf("warm start loaded=%d errs=%v", loaded, errs)
	}
	var info2 Info
	if code := httpJSON(t, ts2, "GET", "/graphs/wg", nil, &info2); code != http.StatusOK {
		t.Fatalf("warm-started graph not visible: %d", code)
	}
	if info2.State != StateReady {
		t.Fatalf("warm-started graph state %s, want ready immediately", info2.State)
	}
	if !info2.WarmStarted {
		t.Fatal("restored graph not marked warm_started")
	}
	if len(info2.BuildStages) != 0 {
		t.Fatalf("warm start recorded build stages %v — a rebuild happened", info2.BuildStages)
	}
	if info2.Spec.Gen != gen || info2.Spec.Eps != 0.3 || info2.Spec.Seed != 7 {
		t.Fatalf("restored spec %+v does not match the registration", info2.Spec)
	}
	if info2.Snapshot == nil || info2.Snapshot.SizeBytes <= 0 {
		t.Fatalf("restored graph missing snapshot info: %+v", info2.Snapshot)
	}
	var second struct {
		Results []queryResult `json:"results"`
	}
	if code := httpJSON(t, ts2, "POST", "/graphs/wg/query",
		map[string]any{"pairs": pairs}, &second); code != http.StatusOK {
		t.Fatalf("warm query = %d", code)
	}
	if len(second.Results) != len(first.Results) {
		t.Fatalf("result count %d != %d", len(second.Results), len(first.Results))
	}
	for i := range first.Results {
		if first.Results[i] != second.Results[i] {
			t.Fatalf("pair %v: warm-started answer %+v != original %+v",
				pairs[i], second.Results[i], first.Results[i])
		}
	}
}

func TestSnapshotForcedWriteAndDelete(t *testing.T) {
	dir := t.TempDir()
	_, ts := newSnapshotServer(t, dir)
	spec := GraphSpec{Name: "fg", Gen: "grid:side=9,w=uniform,maxw=9", Eps: 0.4, Seed: 3}
	if code := httpJSON(t, ts, "POST", "/graphs", spec, nil); code != http.StatusAccepted {
		t.Fatal("POST /graphs failed")
	}
	waitReady(t, ts, "fg")
	snapPath := filepath.Join(dir, "fg.snap")
	waitSnapshot(t, snapPath)

	// Forced write refreshes the file.
	var forced struct {
		Snapshot SnapshotInfo `json:"snapshot"`
	}
	if code := httpJSON(t, ts, "POST", "/graphs/fg/snapshot", nil, &forced); code != http.StatusOK {
		t.Fatalf("POST snapshot = %d", code)
	}
	if forced.Snapshot.SizeBytes <= 0 || forced.Snapshot.Error != "" {
		t.Fatalf("forced snapshot info %+v", forced.Snapshot)
	}

	// Unknown graph → 404; building graph → 409 is covered by the
	// not-ready path (registry-level).
	if code := httpJSON(t, ts, "POST", "/graphs/nope/snapshot", nil, nil); code != http.StatusNotFound {
		t.Fatalf("snapshot of unknown graph = %d, want 404", code)
	}

	// DELETE evicts the snapshot file with the graph.
	if code := httpJSON(t, ts, "DELETE", "/graphs/fg", nil, nil); code != http.StatusOK {
		t.Fatal("DELETE failed")
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatalf("snapshot file survived DELETE (stat err = %v)", err)
	}
}

func TestSnapshotDisabled(t *testing.T) {
	_, ts := newTestServer(t) // no snapshot dir
	spec := GraphSpec{Name: "nd", Gen: "grid:side=5", Eps: 0.4, Seed: 1}
	if code := httpJSON(t, ts, "POST", "/graphs", spec, nil); code != http.StatusAccepted {
		t.Fatal("POST /graphs failed")
	}
	waitReady(t, ts, "nd")
	var body errorBody
	if code := httpJSON(t, ts, "POST", "/graphs/nd/snapshot", nil, &body); code != http.StatusBadRequest {
		t.Fatalf("snapshot without dir = %d, want 400", code)
	}
	if body.Error == "" {
		t.Fatal("snapshot without dir returned no error body")
	}
}

func TestWarmStartSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	// A corrupt snapshot, a foreign file, and a leftover temp file.
	if err := os.WriteFile(filepath.Join(dir, "bad.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "old.snap.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{SnapshotDir: dir})
	t.Cleanup(s.Close)
	loaded, errs := s.Registry().WarmStart()
	if loaded != 0 {
		t.Fatalf("loaded %d graphs from garbage", loaded)
	}
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want exactly the corrupt snapshot", errs)
	}
	if _, err := os.Stat(filepath.Join(dir, "old.snap.tmp")); !os.IsNotExist(err) {
		t.Fatal("leftover temp file not swept")
	}
	// The daemon still works after skipping garbage.
	if _, err := s.Registry().Add(GraphSpec{Gen: "grid:side=4"}); err != nil {
		t.Fatalf("registry unusable after warm-start errors: %v", err)
	}
}

func TestWarmStartDuplicatePreload(t *testing.T) {
	// Registering a name that was warm-started must fail with
	// ErrDuplicateName (spanhopd skips those preloads).
	dir := t.TempDir()
	_, ts := newSnapshotServer(t, dir)
	spec := GraphSpec{Name: "dup", Gen: "grid:side=6", Eps: 0.4, Seed: 2}
	if code := httpJSON(t, ts, "POST", "/graphs", spec, nil); code != http.StatusAccepted {
		t.Fatal("POST /graphs failed")
	}
	waitReady(t, ts, "dup")
	waitSnapshot(t, filepath.Join(dir, "dup.snap"))

	s2 := New(Config{SnapshotDir: dir})
	t.Cleanup(s2.Close)
	if loaded, errs := s2.Registry().WarmStart(); loaded != 1 || len(errs) != 0 {
		t.Fatalf("warm start loaded=%d errs=%v", loaded, errs)
	}
	if _, err := s2.Registry().Add(spec); err == nil {
		t.Fatal("re-registering a warm-started name succeeded")
	} else if fmt.Sprintf("%v", err) == "" {
		t.Fatal("empty error")
	}
}
