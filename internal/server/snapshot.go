package server

// Snapshot persistence for the registry: every oracle that reaches
// StateReady is written to Config.SnapshotDir as a self-contained
// spanhop snapshot (graph + oracle + the registration spec as the
// annotation), and WarmStart scans that directory on boot to register
// ready graphs without queuing a single build — the
// preprocess-once/query-many contract extended across process
// restarts. Writes go through a temp file and an atomic rename, so a
// crash mid-write can never leave a half-snapshot where the next boot
// would find it; a leftover *.snap.tmp is swept on WarmStart.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	spanhop "repro"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// ErrNoSnapshots reports a snapshot operation against a server that
// was started without -snapshot-dir.
var ErrNoSnapshots = errors.New("server: snapshot persistence not configured (no snapshot dir)")

// SnapshotInfo is the JSON shape of one graph's persistence state.
type SnapshotInfo struct {
	// SizeBytes is the snapshot file size; AgeMS how long ago it was
	// written (or, for a warm-started graph, the file's age at load).
	SizeBytes int64 `json:"size_bytes,omitempty"`
	AgeMS     int64 `json:"age_ms,omitempty"`
	// Error is the last snapshot-write failure, cleared by the next
	// successful write.
	Error string `json:"error,omitempty"`
}

// snapshotPath returns the final snapshot file for a graph id.
func (r *Registry) snapshotPath(id string) string {
	return filepath.Join(r.cfg.SnapshotDir, id+".snap")
}

// snapLock returns the mutex serializing all file operations on id's
// snapshot paths.
func (r *Registry) snapLock(id string) *sync.Mutex {
	m, _ := r.snapLocks.LoadOrStore(id, &sync.Mutex{})
	return m.(*sync.Mutex)
}

// current reports whether e is still the registered entry for its id
// (false once deleted, or once the id was re-registered by a new
// graph). Stale snapshot writers use it to stand down.
func (r *Registry) current(e *Entry) bool {
	cur, ok := r.Get(e.id)
	return ok && cur == e
}

// Snapshot forces a synchronous snapshot write for a ready graph (the
// POST /graphs/{id}/snapshot path). The background writer uses the
// same code, so a forced write and an on-ready write never duplicate
// or interleave work on one entry.
func (r *Registry) Snapshot(id string) (SnapshotInfo, error) {
	if r.cfg.SnapshotDir == "" {
		return SnapshotInfo{}, ErrNoSnapshots
	}
	e, ok := r.Get(id)
	if !ok {
		return SnapshotInfo{}, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	return r.snapshotEntry(e)
}

// snapshotEntry writes one entry's snapshot: temp file, fsync, atomic
// rename, all under the id's snapshot lock. Failures are recorded on
// the entry (surfaced via /stats and GET /graphs/{id}) as well as
// returned. A writer whose entry was deleted — or whose id now
// belongs to a different graph — stands down without touching the
// files.
func (r *Registry) snapshotEntry(e *Entry) (SnapshotInfo, error) {
	lock := r.snapLock(e.id)
	lock.Lock()
	defer lock.Unlock()

	e.mu.Lock()
	dyn, state := e.dyn, e.state
	spec := e.spec
	e.mu.Unlock()
	if state != StateReady || dyn == nil {
		return SnapshotInfo{}, fmt.Errorf("%w: %s is %s", ErrNotReady, e.id, state)
	}
	if !r.current(e) {
		return SnapshotInfo{}, fmt.Errorf("%w: %q", ErrUnknownGraph, e.id)
	}

	record := func(err error) (SnapshotInfo, error) {
		e.mu.Lock()
		e.snapErr = err.Error()
		info := e.snapshotInfoLocked()
		e.mu.Unlock()
		r.cfg.Obs.EventError("snapshot_failed", err, "graph", e.id)
		return info, err
	}
	note, err := json.Marshal(spec)
	if err != nil {
		return record(fmt.Errorf("server: marshal spec: %w", err))
	}
	path := r.snapshotPath(e.id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return record(err)
	}
	// Either writer persists the current base oracle plus any pending
	// mutation journal, so a warm start replays updates the scheduler
	// had not yet folded in. The flat default writes the v3 arena the
	// next boot restores by mmap; -snapshot-format codec keeps the
	// portable v2 stream.
	var werr error
	if r.cfg.snapshotFlat() {
		werr = spanhop.SaveDynamicOracleFlat(f, dyn, note)
	} else {
		werr = spanhop.SaveDynamicOracle(f, dyn, note)
	}
	if werr == nil {
		werr = f.Sync() // the rename must publish fully durable bytes
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return record(werr)
	}
	st, serr := os.Stat(path)
	var size int64
	if serr == nil {
		size = st.Size()
	}
	e.mu.Lock()
	e.snapSize = size
	e.snapTime = time.Now()
	e.snapErr = ""
	info := e.snapshotInfoLocked()
	e.mu.Unlock()
	// A DELETE that set the flag before we took the lock already ran
	// its removal; re-check under the lock and take the file back out
	// so no deleted oracle survives on disk. (A re-registered id can't
	// reach here: the identity check above stood the writer down.)
	if !r.current(e) {
		_ = os.Remove(path)
		return SnapshotInfo{}, fmt.Errorf("%w: %q", ErrUnknownGraph, e.id)
	}
	r.cfg.Obs.Event("snapshot_written", "graph", e.id, "file", filepath.Base(path), "bytes", size)
	return info, nil
}

// snapshotInfoLocked snapshots the persistence fields; e.mu held.
func (e *Entry) snapshotInfoLocked() SnapshotInfo {
	info := SnapshotInfo{SizeBytes: e.snapSize, Error: e.snapErr}
	if !e.snapTime.IsZero() {
		info.AgeMS = time.Since(e.snapTime).Milliseconds()
	}
	return info
}

// removeSnapshot deletes a graph's snapshot files (DELETE path).
func (r *Registry) removeSnapshot(id string) {
	if r.cfg.SnapshotDir == "" {
		return
	}
	_ = os.Remove(r.snapshotPath(id))
	_ = os.Remove(r.snapshotPath(id) + ".tmp")
}

// WarmStartError describes one snapshot the boot scan skipped:
// which file, which graph id it would have restored (when derivable),
// and why — so an operator can tell WHICH snapshot is bad from the
// log line alone.
type WarmStartError struct {
	// File is the offending filename within the snapshot directory
	// (or the directory itself when the scan failed outright).
	File string
	// ID is the graph id the snapshot would have registered; empty
	// when the filename does not map to a valid id.
	ID  string
	Err error
}

func (e WarmStartError) Error() string {
	if e.ID != "" {
		return fmt.Sprintf("%s (graph %s): %v", e.File, e.ID, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.File, e.Err)
}

func (e WarmStartError) Unwrap() error { return e.Err }

// WarmStart scans the snapshot directory and registers every readable
// snapshot as a ready graph — no build is queued, no build-stage
// telemetry is recorded, and queries are served the moment WarmStart
// returns. Corrupt or foreign files are skipped and reported (a bad
// snapshot must never take the daemon down); leftover temp files from
// a crashed writer are swept. Returns how many graphs were restored.
func (r *Registry) WarmStart() (int, []WarmStartError) {
	if r.cfg.SnapshotDir == "" {
		return 0, nil
	}
	des, err := os.ReadDir(r.cfg.SnapshotDir)
	if err != nil {
		return 0, []WarmStartError{{File: r.cfg.SnapshotDir, Err: err}}
	}
	loaded := 0
	var errs []WarmStartError
	skip := func(we WarmStartError) {
		r.cfg.Obs.EventError("warm_start_skipped", we.Err, "file", we.File, "graph", we.ID)
		errs = append(errs, we)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".snap.tmp") {
			_ = os.Remove(filepath.Join(r.cfg.SnapshotDir, name))
			continue
		}
		if !strings.HasSuffix(name, ".snap") {
			continue
		}
		id := strings.TrimSuffix(name, ".snap")
		if id == "" || !validName(id) {
			skip(WarmStartError{File: name, Err: errors.New("id not a valid graph name")})
			continue
		}
		if err := r.warmStartFile(id, filepath.Join(r.cfg.SnapshotDir, name)); err != nil {
			skip(WarmStartError{File: name, ID: id, Err: err})
			continue
		}
		r.cfg.Obs.Event("warm_start_restored", "file", name, "graph", id)
		loaded++
	}
	return loaded, errs
}

// warmStartFile restores one snapshot into a ready entry. The format
// is sniffed per file — a v3 arena is memory-mapped (startup is
// checksum validation, pages fault in as queries touch them), a codec
// stream is decoded — so a directory can mix formats and a
// -snapshot-format change needs no migration.
func (r *Registry) warmStartFile(id, path string) error {
	opt := spanhop.OracleOptions{
		QueryExec: exec.New(exec.Options{
			Workers: r.cfg.queryExecWorkers(),
			Labels:  graphLabels(id, ""),
		}),
	}
	pol := r.graphRebuildPolicy(id)
	var (
		dyn  *spanhop.DynamicOracle
		note []byte
		err  error
	)
	if snapshot.IsFlatFile(path) {
		dyn, note, err = spanhop.OpenDynamicOracleFile(path, nil, opt, pol)
	} else {
		var f *os.File
		if f, err = os.Open(path); err != nil {
			return err
		}
		dyn, note, err = spanhop.LoadDynamicOracle(f, nil, opt, pol)
		f.Close()
	}
	if err != nil {
		return err
	}
	var spec GraphSpec
	if err := json.Unmarshal(note, &spec); err != nil {
		// The oracle was restored (its scheduler may even be rebuilding
		// a policy-due journal already) but will never be registered:
		// tear it down or the goroutine outlives the registry.
		dyn.Close()
		return fmt.Errorf("snapshot annotation is not a graph spec: %w", err)
	}
	var size int64
	snapTime := time.Now()
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
		snapTime = st.ModTime()
	}
	e := &Entry{
		id:       id,
		spec:     spec,
		stats:    &GraphStats{},
		state:    StateReady,
		created:  time.Now(),
		tel:      exec.NewTelemetry(),
		dyn:      dyn,
		warm:     true,
		snapSize: size,
		snapTime: snapTime,
	}
	e.exec = newExecutor(dyn, r.cfg, e.stats)
	e.workload = obs.NewWorkload(r.cfg.workloadOptions())
	r.registerAudit(id, dyn)
	e.exec.instrument(id, e.workload, r.cfg.Obs.Account(), r.aud)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		e.exec.Close()
		dyn.Close()
		return ErrClosed
	}
	if _, dup := r.entries[id]; dup {
		r.mu.Unlock()
		e.exec.Close()
		dyn.Close()
		return fmt.Errorf("%w: %q", ErrDuplicateName, id)
	}
	r.entries[id] = e
	r.order = append(r.order, id)
	r.mu.Unlock()
	// Hook after registration: if the restored journal was already
	// policy-due and its rebuild finished in the window above, the
	// hook's missed-swap replay fires now — against a registered entry
	// the snapshot writer will accept.
	r.hookRebuild(e, dyn, e.exec)
	return nil
}
