package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	spanhop "repro"
	"repro/internal/graph"
	"repro/internal/obs"
)

// qualityResponse mirrors the GET /debug/quality body.
type qualityResponse struct {
	SampleEvery    int                      `json:"sample_every"`
	CPUFrac        float64                  `json:"cpu_frac"`
	StretchBuckets []float64                `json:"stretch_buckets"`
	Graphs         []obs.AuditGraphSnapshot `json:"graphs"`
}

// newAuditTestServer runs a server that audits every served query
// with the CPU budget disabled, so tests observe deterministic audit
// coverage instead of rate- and budget-dependent sampling.
func newAuditTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{BatchWindow: time.Millisecond, AuditSample: 1, AuditCPUFrac: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// awaitQuality polls /debug/quality?graph=id until the audit pipeline
// has drained every accepted sample and audited at least min of them.
func awaitQuality(t *testing.T, ts *httptest.Server, id string, min int64) obs.AuditGraphSnapshot {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last qualityResponse
	for time.Now().Before(deadline) {
		if code := httpJSON(t, ts, "GET", "/debug/quality?graph="+id, nil, &last); code != http.StatusOK {
			t.Fatalf("GET /debug/quality?graph=%s = %d", id, code)
		}
		if len(last.Graphs) == 1 {
			g := last.Graphs[0]
			settled := g.Audited+g.Dropped+g.BudgetSkips+g.StaleSkips+g.Errors >= g.Sampled
			if settled && g.Audited >= min {
				return g
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("audit pipeline for %s did not reach %d audits: %+v", id, min, last.Graphs)
	return obs.AuditGraphSnapshot{}
}

// TestQualityEndpointEndToEnd drives traced and untraced traffic
// through clean, improving, and degrading regimes and asserts the
// auditor re-checks it all with zero violations — the continuous
// correctness monitor agreeing with a correct build.
func TestQualityEndpointEndToEnd(t *testing.T) {
	_, ts := newAuditTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "q1", Gen: "grid:side=6", Eps: 0.3, Seed: 4}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "q1")

	// Clean regime: untraced singles plus one traced query, whose
	// response-header trace must record that it was sampled.
	for i := 0; i < 5; i++ {
		httpJSON(t, ts, "POST", "/graphs/q1/query", map[string]any{"s": i, "t": 35 - i}, nil)
	}
	td, rid := tracedQuery(t, ts, "q1", 5, 29)
	if td.Attrs["audit"] != "sampled" {
		t.Fatalf("traced query attrs = %v, want audit=sampled", td.Attrs)
	}

	// Improving: insert a shortcut, then degrading: delete a base grid
	// edge (0-1 in row-major order), querying in each regime.
	code = httpJSON(t, ts, "POST", "/graphs/q1/edges", map[string]any{
		"updates": []map[string]any{{"op": "insert", "u": 0, "v": 21}},
	}, nil)
	if code != http.StatusOK {
		t.Fatalf("insert = %d", code)
	}
	for i := 0; i < 3; i++ {
		httpJSON(t, ts, "POST", "/graphs/q1/query", map[string]any{"s": i, "t": 30 + i}, nil)
	}
	code = httpJSON(t, ts, "POST", "/graphs/q1/edges", map[string]any{
		"updates": []map[string]any{{"op": "delete", "u": 0, "v": 1}},
	}, nil)
	if code != http.StatusOK {
		t.Fatalf("delete = %d", code)
	}
	for i := 0; i < 3; i++ {
		httpJSON(t, ts, "POST", "/graphs/q1/query", map[string]any{"s": 1 + i, "t": 34 - i}, nil)
	}

	snap := awaitQuality(t, ts, "q1", 3)
	if snap.Violations != 0 || len(snap.Evidence) != 0 {
		t.Fatalf("correct build reported violations: %+v", snap)
	}
	if snap.Sampled < snap.Audited || snap.Audited == 0 {
		t.Fatalf("counters inconsistent: %+v", snap)
	}
	if snap.Envelope.Hi < 1 || snap.Envelope.Lo < 0 || snap.Envelope.Lo > 1 {
		t.Fatalf("envelope = %+v", snap.Envelope)
	}
	var regimes []string
	for _, r := range snap.Regimes {
		if r.Violations != 0 {
			t.Fatalf("regime %s recorded violations: %+v", r.Regime, r)
		}
		if r.Count > 0 {
			regimes = append(regimes, r.Regime)
			if r.MaxRatio < r.MinRatio || r.MeanRatio == 0 {
				t.Fatalf("regime row incoherent: %+v", r)
			}
		}
	}
	for _, want := range []string{"clean", "degrading"} {
		found := false
		for _, got := range regimes {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("no audited queries in %s regime (got %v)", want, regimes)
		}
	}

	// The traced query's ring entry eventually carries the async audit
	// outcome.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var out struct {
			Traces []obs.TraceData `json:"traces"`
		}
		httpJSON(t, ts, "GET", "/debug/traces", nil, &out)
		ok := false
		for _, tr := range out.Traces {
			if tr.ID == rid && tr.Attrs["audit"] == "ok" {
				ok = true
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never annotated audit=ok", rid)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Envelope of the full endpoint: buckets shared with the metrics
	// exposition, defaults echoed back.
	var all qualityResponse
	if code := httpJSON(t, ts, "GET", "/debug/quality", nil, &all); code != http.StatusOK {
		t.Fatalf("GET /debug/quality = %d", code)
	}
	if all.SampleEvery != 1 || len(all.StretchBuckets) != len(obs.StretchBuckets()) {
		t.Fatalf("quality envelope = %+v", all)
	}
	if len(all.Graphs) != 1 || all.Graphs[0].Graph != "q1" {
		t.Fatalf("quality graphs = %+v", all.Graphs)
	}

	// Hostile and unknown graph filters 404 without leaking.
	for _, q := range []string{"nosuch", "../../etc/passwd", "q1%00"} {
		var e map[string]any
		if code := httpJSON(t, ts, "GET", "/debug/quality?graph="+q, nil, &e); code != http.StatusNotFound {
			t.Fatalf("GET /debug/quality?graph=%s = %d, want 404", q, code)
		}
	}
}

// TestQualityFaultInjection corrupts served distances via the
// executor's test hook and proves the auditor catches the wrong
// answer end to end: violation counter, evidence ring, trace
// annotation, and the /metrics alarm series.
func TestQualityFaultInjection(t *testing.T) {
	s, ts := newAuditTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "q2", Gen: "grid:side=8", Eps: 0.3, Seed: 6}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "q2")

	e, ok := s.Registry().Get("q2")
	if !ok {
		t.Fatal("q2 not registered")
	}
	// Scale every finite answer far beyond any provable envelope.
	hook := func(sv, tv graph.V, st spanhop.QueryStats) spanhop.QueryStats {
		if st.Dist < graph.InfDist {
			st.Dist = st.Dist*1000 + 1
		}
		return st
	}
	e.exec.corrupt.Store(&hook)

	td, rid := tracedQuery(t, ts, "q2", 0, 63)
	if td.Attrs["audit"] != "sampled" {
		t.Fatalf("traced query attrs = %v, want audit=sampled", td.Attrs)
	}

	// The alarm fires asynchronously.
	deadline := time.Now().Add(15 * time.Second)
	var snap obs.AuditGraphSnapshot
	for {
		snap = awaitQuality(t, ts, "q2", 1)
		if snap.Violations >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("corrupted answer never flagged: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if len(snap.Evidence) == 0 {
		t.Fatalf("violation left no evidence: %+v", snap)
	}
	ev := snap.Evidence[0]
	if ev.Reason != obs.ReasonAboveEnvelope {
		t.Fatalf("evidence reason = %q, want %q", ev.Reason, obs.ReasonAboveEnvelope)
	}
	if ev.TraceID != rid {
		t.Fatalf("evidence trace = %q, want %q", ev.TraceID, rid)
	}
	if ev.Served != ev.Exact*1000+1 {
		t.Fatalf("evidence served=%d exact=%d, want served = 1000·exact+1", ev.Served, ev.Exact)
	}
	if ev.Ratio < 900 {
		t.Fatalf("evidence ratio = %g, want ≈1000", ev.Ratio)
	}
	if snap.Worst == nil || snap.Worst.Reason != obs.ReasonAboveEnvelope {
		t.Fatalf("worst offender = %+v", snap.Worst)
	}

	// Trace ring records the violation verdict.
	deadline = time.Now().Add(10 * time.Second)
	for {
		var out struct {
			Traces []obs.TraceData `json:"traces"`
		}
		httpJSON(t, ts, "GET", "/debug/traces", nil, &out)
		done := false
		for _, tr := range out.Traces {
			if tr.ID == rid && tr.Attrs["audit"] == "violation" {
				if tr.Attrs["audit_reason"] != obs.ReasonAboveEnvelope {
					t.Fatalf("trace audit_reason = %v", tr.Attrs["audit_reason"])
				}
				done = true
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never annotated audit=violation", rid)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /metrics carries the alarm and the histogram that caught it.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d (%v)", resp.StatusCode, err)
	}
	body := string(raw)
	for _, want := range []string{
		fmt.Sprintf(`spanhop_quality_violations_total{graph="q2"} %d`, snap.Violations),
		`spanhop_stretch_ratio_bucket{graph="q2",regime="clean",le="+Inf"}`,
		`spanhop_audit_checked_total{graph="q2"}`,
		`spanhop_audit_cpu_seconds_total{graph="q2"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Disarm: subsequent answers audit clean again, and the violation
	// count holds steady (the cached corrupted answer is not re-served
	// to the auditor unless re-sampled — flush via a distinct pair).
	e.exec.corrupt.Store(nil)
	before := snap.Violations
	httpJSON(t, ts, "POST", "/graphs/q2/query", map[string]any{"s": 1, "t": 62}, nil)
	snap = awaitQuality(t, ts, "q2", snap.Audited+1)
	if snap.Violations != before {
		t.Fatalf("clean query after disarm changed violations: %d -> %d", before, snap.Violations)
	}
}

// TestDebugContentTypes sweeps every introspection endpoint for an
// explicit, correct Content-Type header — including the chrome trace
// export, which is JSON even though it isn't the default trace shape.
func TestDebugContentTypes(t *testing.T) {
	_, ts := newTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "ct", Gen: "grid:side=4", Eps: 0.3, Seed: 1}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "ct")
	tracedQuery(t, ts, "ct", 0, 15)

	for _, tc := range []struct {
		path string
		want string // exact match unless it ends with "*" (prefix)
	}{
		{"/graphs", "application/json"},
		{"/graphs/ct", "application/json"},
		{"/stats", "application/json"},
		{"/healthz", "application/json"},
		{"/debug/traces", "application/json"},
		{"/debug/traces?format=chrome", "application/json"},
		{"/debug/traces?graph=ct", "application/json"},
		{"/debug/workload", "application/json"},
		{"/debug/quality", "application/json"},
		{"/debug/quality?graph=ct", "application/json"},
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/debug/pprof/", "text/html*"},
		{"/debug/pprof/heap?debug=1", "text/plain*"},
	} {
		resp, err := ts.Client().Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", tc.path, resp.StatusCode)
			continue
		}
		got := resp.Header.Get("Content-Type")
		if want, prefix := strings.CutSuffix(tc.want, "*"); prefix {
			if !strings.HasPrefix(got, want) {
				t.Errorf("GET %s: Content-Type = %q, want prefix %q", tc.path, got, want)
			}
		} else if got != tc.want {
			t.Errorf("GET %s: Content-Type = %q, want %q", tc.path, got, tc.want)
		}
	}

	// Error responses are JSON too.
	resp, err := ts.Client().Get(ts.URL + "/graphs/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("GET /graphs/nosuch = %d %q, want 404 application/json",
			resp.StatusCode, resp.Header.Get("Content-Type"))
	}
}
