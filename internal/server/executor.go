package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	spanhop "repro"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Typed executor errors; the HTTP layer maps ErrOverloaded to 503.
var (
	ErrOverloaded = errors.New("server: query queue full")
	ErrClosed     = errors.New("server: shutting down")
)

// servingOracle is the query surface the executor batches over — both
// the static spanhop.DistanceOracle and the mutation-absorbing
// spanhop.DynamicOracle implement it. The registry always hands the
// executor a dynamic oracle so mutations are visible to queries the
// moment ApplyUpdates returns.
type servingOracle interface {
	QueryStats(s, t graph.V) (spanhop.QueryStats, error)
	QueryBatch(pairs [][2]graph.V) ([]spanhop.QueryStats, error)
	NumVertices() int32
}

// request is one single query waiting to be coalesced.
type request struct {
	s, t graph.V
	ch   chan response
	enq  time.Time
	// tr is the request's trace, nil on the untraced hot path — the
	// dispatch loop checks the pointer once per request and otherwise
	// touches nothing.
	tr *obs.Trace
}

// traceInfoer is the optional oracle surface traces read for overlay
// attribution. The dynamic facade implements it; bare static oracles
// (reference tests) need not.
type traceInfoer interface {
	TraceInfo() (regime string, gen uint64)
}

type response struct {
	st  spanhop.QueryStats
	err error
}

// Executor turns concurrently arriving single queries into QueryBatch
// fan-outs. A collector goroutine gathers requests into a micro-batch
// until either MaxBatch queries are pending or BatchWindow has elapsed
// since the batch opened, then hands the batch to a bounded worker
// pool; the pool runs DistanceOracle.QueryBatch (the PR 1 parallel
// fan-out) and distributes results. Because QueryBatch is positionally
// identical to serial Query calls, coalescing changes wall-clock
// shape only, never an answer.
//
// Backpressure: the request queue is a bounded channel and Query never
// blocks on a full one — it fails fast with ErrOverloaded. When every
// pool worker is busy the collector itself blocks handing off the
// batch, the queue fills, and overload propagates to callers as typed
// errors rather than unbounded goroutine pileup.
type Executor struct {
	oracle servingOracle
	n      graph.V
	window time.Duration
	maxB   int

	reqs  chan request
	sem   chan struct{} // worker-pool slots
	cache *lruCache
	stats *GraphStats

	// Cost-attribution hooks, set once by instrument() before the
	// registry publishes the entry (its mutex provides the
	// happens-before); all nil/zero on bare executors (tests, library
	// use), which then pay nothing on these paths.
	id       string
	workload *obs.Workload
	acct     *obs.Accountant
	aud      *obs.Auditor
	lblQuery context.Context // pprof labels for coalesced-batch compute
	lblBatch context.Context // pprof labels for explicit-batch compute
	// corrupt, when set (tests only), rewrites computed results before
	// caching, auditing, and response delivery — the fault-injection
	// hook that proves the answer auditor catches a wrong served
	// distance end to end. Atomic so -race tests can arm it while the
	// executor serves.
	corrupt atomic.Pointer[func(s, t graph.V, st spanhop.QueryStats) spanhop.QueryStats]
	// batchWaiters bounds explicit Batch calls parked on the pool, so
	// batch traffic gets the same fail-fast contract as the coalesced
	// path instead of unbounded goroutine pileup.
	batchWaiters atomic.Int64
	maxWaiters   int64

	quit chan struct{} // closed by Close: stop accepting
	done chan struct{} // closed when the collector has drained
	wg   sync.WaitGroup

	closeOnce sync.Once
}

// newExecutor starts the collector for a ready oracle.
func newExecutor(oracle servingOracle, cfg Config, stats *GraphStats) *Executor {
	cfg = cfg.withDefaults()
	x := &Executor{
		oracle: oracle,
		n:      oracle.NumVertices(),
		window: cfg.BatchWindow,
		maxB:   cfg.MaxBatch,
		reqs:   make(chan request, cfg.QueryQueue),
		sem:    make(chan struct{}, cfg.QueryWorkers),
		cache:  newLRUCache(cfg.CacheSize),
		stats:  stats,
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	x.maxWaiters = int64(cfg.QueryQueue)
	go x.collect()
	return x
}

// instrument attaches the executor to the serving observability: the
// graph id (as profiled and accounted), the per-graph workload
// analytics, the cost accountant, and precomputed pprof label sets for
// the compute sections. The label contexts are built once here so the
// hot path never calls pprof.WithLabels (which allocates); applying a
// prebuilt context via pprof.SetGoroutineLabels is allocation-free.
func (x *Executor) instrument(id string, wl *obs.Workload, acct *obs.Accountant, aud *obs.Auditor) {
	x.id = id
	x.workload = wl
	x.acct = acct
	x.aud = aud
	x.lblQuery = pprof.WithLabels(context.Background(),
		pprof.Labels("graph", id, "op", obs.OpQuery))
	x.lblBatch = pprof.WithLabels(context.Background(),
		pprof.Labels("graph", id, "op", obs.OpBatch))
}

// recordQuery feeds the workload analytics (RED counters + SLO) with
// one completed single-query operation. The count reflects demanded
// queries — failures count too — matching ObservePair's at-entry
// semantics.
func (x *Executor) recordQuery(d time.Duration, failed bool) {
	x.workload.RecordOp(obs.OpQuery, 1, d, failed)
	x.workload.RecordQuery(d, failed)
}

// checkPair validates ids before enqueueing, so one malformed query
// can never poison the whole micro-batch it would have joined
// (QueryBatch fails a batch on its first invalid pair).
func (x *Executor) checkPair(s, t graph.V) error {
	if s < 0 || s >= x.n || t < 0 || t >= x.n {
		return fmt.Errorf("server: query (%d,%d) out of range n=%d", s, t, x.n)
	}
	return nil
}

// Query answers one s-t query through the cache and the coalescing
// path. The returned stats are bit-identical to a direct serial
// DistanceOracle.Query.
func (x *Executor) Query(ctx context.Context, s, t graph.V) (spanhop.QueryStats, error) {
	x.stats.requests.Add(1)
	if err := x.checkPair(s, t); err != nil {
		x.stats.failures.Add(1)
		x.recordQuery(0, true)
		return spanhop.QueryStats{}, err
	}
	select {
	case <-x.quit:
		return spanhop.QueryStats{}, ErrClosed
	default:
	}
	// The sketch sees every valid demanded pair — before the cache and
	// the queue — so /debug/workload reports the offered workload, not
	// just the computed remainder.
	x.workload.ObservePair(int32(s), int32(t))
	tr := obs.FromContext(ctx)
	start := time.Now()
	if st, ok := x.cache.get([2]graph.V{s, t}); ok {
		x.stats.cacheHits.Add(1)
		x.stats.lat.Record(time.Since(start))
		x.recordQuery(time.Since(start), false)
		tr.SpanSince("cache", start)
		tr.Annotate("cache", "hit")
		return st, nil
	}
	tr.Annotate("cache", "miss")
	r := request{s: s, t: t, ch: make(chan response, 1), enq: start, tr: tr}
	select {
	case x.reqs <- r:
	default:
		x.stats.rejects.Add(1)
		x.recordQuery(time.Since(start), true)
		return spanhop.QueryStats{}, ErrOverloaded
	}
	select {
	case resp := <-r.ch:
		if resp.err != nil {
			x.stats.failures.Add(1)
			x.recordQuery(time.Since(start), true)
			return spanhop.QueryStats{}, resp.err
		}
		x.stats.lat.Record(time.Since(start))
		x.recordQuery(time.Since(start), false)
		return resp.st, nil
	case <-ctx.Done():
		// The response channel is buffered, so the batch worker that
		// eventually answers doesn't leak; the result is dropped. The
		// queue-wait span is recorded at dispatch, so its absence means
		// the request died still coalescing.
		if tr.HasSpan("queue-wait") {
			tr.Annotate("cancel_stage", "exec")
		} else {
			tr.Annotate("cancel_stage", "queue-wait")
		}
		x.recordQuery(time.Since(start), true)
		return spanhop.QueryStats{}, ctx.Err()
	case <-x.done:
		// Collector exited; a response may still have raced in (or may
		// yet arrive from an in-flight batch — shutdown forfeits it).
		select {
		case resp := <-r.ch:
			return resp.st, resp.err
		default:
			return spanhop.QueryStats{}, ErrClosed
		}
	}
}

// Batch answers an explicit batch request through the worker pool
// (bounded like the coalesced path, but bypassing the batching window
// — the caller already batched). At most QueryQueue batch calls may
// wait for a pool slot; beyond that Batch fails fast with
// ErrOverloaded, and a canceled ctx abandons the wait.
func (x *Executor) Batch(ctx context.Context, pairs [][2]graph.V) ([]spanhop.QueryStats, error) {
	for _, p := range pairs {
		if err := x.checkPair(p[0], p[1]); err != nil {
			x.stats.failures.Add(1)
			x.workload.RecordOp(obs.OpBatch, len(pairs), 0, true)
			return nil, err
		}
	}
	if x.workload != nil {
		for _, p := range pairs {
			x.workload.ObservePair(int32(p[0]), int32(p[1]))
		}
	}
	if x.batchWaiters.Add(1) > x.maxWaiters {
		x.batchWaiters.Add(-1)
		x.stats.rejects.Add(1)
		x.workload.RecordOp(obs.OpBatch, len(pairs), 0, true)
		return nil, ErrOverloaded
	}
	defer x.batchWaiters.Add(-1)
	tr := obs.FromContext(ctx)
	enq := time.Now()
	select {
	case <-x.quit:
		return nil, ErrClosed
	case <-ctx.Done():
		tr.Annotate("cancel_stage", "queue-wait")
		x.workload.RecordOp(obs.OpBatch, len(pairs), time.Since(enq), true)
		return nil, ctx.Err()
	case x.sem <- struct{}{}:
	}
	defer func() { <-x.sem }()
	tr.SpanSince("queue-wait", enq)
	tr.Annotate("batch_size", len(pairs))
	x.annotateOracle(tr)
	start := time.Now()
	x.stats.batchCalls.Add(1)
	x.stats.batchQueries.Add(int64(len(pairs)))
	// Capture the cache epoch before computing: if a mutation batch
	// flushes the cache while this QueryBatch runs, the results below
	// belong to the old generation and must not be re-cached.
	epoch := x.cache.epoch()
	regime, gen, auditing := x.auditInfo()
	cs := x.acct.Begin()
	if x.lblBatch != nil {
		// Prebuilt label context: the compute section's CPU samples
		// carry {graph, op}. Restored to the request context's labels
		// afterwards — this goroutine belongs to the HTTP server pool.
		pprof.SetGoroutineLabels(x.lblBatch)
	}
	res, err := x.oracle.QueryBatch(pairs)
	if x.lblBatch != nil {
		pprof.SetGoroutineLabels(ctx)
	}
	x.acct.End(cs, x.id, obs.OpBatch, len(pairs), err != nil)
	if f := x.corrupt.Load(); f != nil && err == nil {
		for i := range res {
			res[i] = (*f)(pairs[i][0], pairs[i][1], res[i])
		}
	}
	tr.SpanSince("exec", start)
	x.workload.RecordOp(obs.OpBatch, len(pairs), time.Since(start), err != nil)
	if err != nil {
		x.stats.failures.Add(1)
		return nil, err
	}
	if auditing {
		x.auditOffer(regime, gen, pairs, res, func(int) *obs.Trace { return tr })
	}
	for i, p := range pairs {
		x.cache.put(p, res[i], epoch)
	}
	x.stats.lat.Record(time.Since(start))
	return res, nil
}

// collect is the micro-batching loop.
func (x *Executor) collect() {
	defer close(x.done)
	var batch []request
	var timer *time.Timer
	var timeC <-chan time.Time
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timeC = nil, nil
		}
		if len(batch) == 0 {
			return
		}
		x.dispatch(batch)
		batch = nil
	}
	for {
		select {
		case r := <-x.reqs:
			batch = append(batch, r)
			if len(batch) == 1 {
				timer = time.NewTimer(x.window)
				timeC = timer.C
			}
			if len(batch) >= x.maxB {
				flush()
			}
		case <-timeC:
			timer, timeC = nil, nil
			flush()
		case <-x.quit:
			// Answer what we gathered, then fail whatever is still
			// queued: every caller gets a definitive response.
			flush()
			for {
				select {
				case r := <-x.reqs:
					r.ch <- response{err: ErrClosed}
				default:
					return
				}
			}
		}
	}
}

// dispatch hands one micro-batch to the worker pool. Blocks while the
// pool is saturated (that is the backpressure valve).
func (x *Executor) dispatch(batch []request) {
	select {
	case x.sem <- struct{}{}:
	case <-x.quit:
		for _, r := range batch {
			r.ch <- response{err: ErrClosed}
		}
		return
	}
	x.wg.Add(1)
	go func() {
		defer func() {
			<-x.sem
			x.wg.Done()
		}()
		pairs := make([][2]graph.V, len(batch))
		traced := false
		for i, r := range batch {
			pairs[i] = [2]graph.V{r.s, r.t}
			traced = traced || r.tr != nil
		}
		if traced {
			now := time.Now()
			for _, r := range batch {
				if r.tr == nil {
					continue
				}
				r.tr.SpanDur("queue-wait", r.enq, now.Sub(r.enq))
				r.tr.Annotate("batch_size", len(batch))
				x.annotateOracle(r.tr)
			}
		}
		x.stats.coalesced.Add(1)
		x.stats.coalescedQueries.Add(int64(len(batch)))
		epoch := x.cache.epoch()
		regime, gen, auditing := x.auditInfo()
		t0 := time.Time{}
		if traced {
			t0 = time.Now()
		}
		cs := x.acct.Begin()
		if x.lblQuery != nil {
			// This goroutine is batch-scoped, so the labels simply ride
			// to its end; result distribution below is this graph's work
			// too.
			pprof.SetGoroutineLabels(x.lblQuery)
		}
		res, err := x.oracle.QueryBatch(pairs)
		x.acct.End(cs, x.id, obs.OpQuery, len(batch), err != nil)
		if f := x.corrupt.Load(); f != nil && err == nil {
			for i := range res {
				res[i] = (*f)(pairs[i][0], pairs[i][1], res[i])
			}
		}
		var dur time.Duration
		if traced {
			dur = time.Since(t0)
		}
		if auditing && err == nil {
			// Offer before responses ship: sampled traces gain their
			// "audit" attribute while the handler still owns the trace.
			x.auditOffer(regime, gen, pairs, res,
				func(i int) *obs.Trace { return batch[i].tr })
		}
		for i, r := range batch {
			if r.tr != nil {
				r.tr.SpanDur("exec", t0, dur)
			}
			if err != nil {
				r.ch <- response{err: err}
				continue
			}
			x.cache.put(pairs[i], res[i], epoch)
			r.ch <- response{st: res[i]}
		}
	}()
}

// annotateOracle pins the overlay regime and generation onto a trace
// when the serving oracle exposes them. No-op for nil traces and for
// oracles without TraceInfo.
func (x *Executor) annotateOracle(tr *obs.Trace) {
	if tr == nil {
		return
	}
	if ti, ok := x.oracle.(traceInfoer); ok {
		regime, gen := ti.TraceInfo()
		tr.Annotate("regime", regime)
		tr.Annotate("generation", gen)
	}
}

// auditInfo pins the overlay regime and generation before a batch
// computes, so audit samples carry the generation their answers were
// actually served from. ok is false when auditing is off for this
// executor or the oracle exposes no generation to pin.
func (x *Executor) auditInfo() (regime string, gen uint64, ok bool) {
	if x.aud == nil {
		return "", 0, false
	}
	ti, isTI := x.oracle.(traceInfoer)
	if !isTI {
		return "", 0, false
	}
	regime, gen = ti.TraceInfo()
	return regime, gen, true
}

// auditOffer shadow-samples a computed batch into the auditor: traced
// requests always, the rest on the deterministic every-Nth grid. The
// pre-compute (regime, gen) pin is re-read here — if either moved, a
// mutation or rebuild landed while the batch computed, and the
// answers cannot be attributed to a single generation; the whole
// batch is skipped (this is sampling, not proof, and a torn pin would
// manufacture false violations). Generations only increase, so
// equality means no mutation committed in between.
func (x *Executor) auditOffer(regime string, gen uint64, pairs [][2]graph.V,
	res []spanhop.QueryStats, trOf func(i int) *obs.Trace) {
	r2, g2, ok := x.auditInfo()
	if !ok || r2 != regime || g2 != gen {
		return
	}
	for i := range pairs {
		tr := trOf(i)
		if tr == nil && !x.aud.SampleHit() {
			continue
		}
		s := obs.AuditSample{
			Graph:       x.id,
			S:           int32(pairs[i][0]),
			T:           int32(pairs[i][1]),
			Answer:      int64(res[i].Dist),
			Unreachable: res[i].Dist >= graph.InfDist,
			Regime:      regime,
			Gen:         gen,
		}
		if tr != nil {
			s.TraceID = tr.ID()
		}
		if x.aud.Offer(s) && tr != nil {
			tr.Annotate("audit", "sampled")
		}
	}
}

// flushCache drops every cached result. The registry calls it after a
// mutation batch commits: cached answers reflect an older generation.
func (x *Executor) flushCache() { x.cache.flush() }

// Close stops the collector, fails queued requests with ErrClosed,
// and waits for in-flight batches. Safe to call more than once.
func (x *Executor) Close() {
	x.closeOnce.Do(func() {
		close(x.quit)
		<-x.done
		x.wg.Wait()
	})
}

// ---------------------------------------------------------------------------
// LRU result cache.

// lruCache memoizes QueryStats keyed on the ordered (s, t) pair.
// Query answers are deterministic for a built oracle, so a cached
// result is exactly what re-running the query would return — until a
// mutation or rebuild changes the graph, which flushes the cache and
// bumps its epoch; writers that captured an older epoch before
// computing stand down, so a batch in flight across a flush can never
// re-insert a pre-mutation answer. cap <= 0 disables caching.
type lruCache struct {
	mu  sync.Mutex
	cap int
	gen uint64 // epoch: bumped by flush
	m   map[[2]graph.V]*list.Element
	l   *list.List // front = most recently used
}

type cacheEnt struct {
	k  [2]graph.V
	st spanhop.QueryStats
}

func newLRUCache(capacity int) *lruCache {
	c := &lruCache{cap: capacity}
	if capacity > 0 {
		c.m = make(map[[2]graph.V]*list.Element, capacity)
		c.l = list.New()
	}
	return c
}

func (c *lruCache) get(k [2]graph.V) (spanhop.QueryStats, bool) {
	if c.cap <= 0 {
		return spanhop.QueryStats{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return spanhop.QueryStats{}, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*cacheEnt).st, true
}

// epoch returns the current flush epoch; capture it before computing
// a result that will be put().
func (c *lruCache) epoch() uint64 {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

func (c *lruCache) put(k [2]graph.V, st spanhop.QueryStats, epoch uint64) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.gen {
		return // computed against a pre-flush generation
	}
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEnt).st = st
		c.l.MoveToFront(el)
		return
	}
	c.m[k] = c.l.PushFront(&cacheEnt{k: k, st: st})
	for c.l.Len() > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEnt).k)
	}
}

// flush empties the cache and bumps the epoch, invalidating puts
// computed before the flush.
func (c *lruCache) flush() {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.m = make(map[[2]graph.V]*list.Element, c.cap)
	c.l.Init()
}

// len reports the current cache size (tests).
func (c *lruCache) len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}
