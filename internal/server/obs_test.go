package server

// Observability tests: the /metrics exposition is validated against
// the Prometheus text-format rules (a scraper, not a human, is the
// consumer), and trace propagation is exercised under -race — the
// span plumbing rides the same coalescing machinery as the hot path,
// so these tests double as data-race coverage for it.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// ---------------------------------------------------------------------------
// Exposition-format validation (GET /metrics).

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// parseExposition parses the text format strictly enough to catch the
// mistakes a hand-rolled writer can make: HELP/TYPE missing or
// duplicated, samples of undeclared families, malformed label
// escaping, unparseable values.
func parseExposition(t *testing.T, body string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	helps := make(map[string]bool)
	for i, line := range strings.Split(body, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln, line)
			}
			if helps[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln, name)
			}
			helps[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed TYPE: %q", ln, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q for %s", ln, typ, name)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s (duplicate family)", ln, name)
			}
			if !helps[name] {
				t.Fatalf("line %d: TYPE %s without preceding HELP", ln, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		samples = append(samples, parseSampleLine(t, ln, line))
	}
	return types, samples
}

func parseSampleLine(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}, line: ln}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	} else {
		s.name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			eq := strings.Index(rest, "=")
			if eq < 0 {
				t.Fatalf("line %d: malformed labels: %q", ln, line)
			}
			key := rest[:eq]
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				t.Fatalf("line %d: label %s value not quoted: %q", ln, key, line)
			}
			rest = rest[1:]
			// Decode the escaped value; an unescaped quote or a dangling
			// backslash is a format violation a scraper would choke on.
			var val strings.Builder
			closed := false
			for len(rest) > 0 {
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						t.Fatalf("line %d: dangling escape: %q", ln, line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: bad escape \\%c: %q", ln, rest[1], line)
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					closed = true
					break
				}
				if c == '\n' {
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if !closed {
				t.Fatalf("line %d: unterminated label value: %q", ln, line)
			}
			if _, dup := s.labels[key]; dup {
				t.Fatalf("line %d: duplicate label %s: %q", ln, key, line)
			}
			s.labels[key] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			t.Fatalf("line %d: malformed label list: %q", ln, line)
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// labelKey renders labels (minus skip) as a canonical identity string.
func labelKey(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "m1", Gen: "er:n=120,d=4,w=uniform", Eps: 0.3, Seed: 7}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "m1")
	// Traffic so counters and the latency histogram are non-trivial,
	// plus a mutation so the dynamic gauges appear.
	for i := 0; i < 10; i++ {
		httpJSON(t, ts, "POST", "/graphs/m1/query", map[string]any{"s": i, "t": 119 - i}, nil)
	}
	httpJSON(t, ts, "POST", "/graphs/m1/edges", map[string]any{
		"updates": []map[string]any{{"op": "insert", "u": 0, "v": 61, "w": 3}},
	}, nil)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d (%v)", resp.StatusCode, err)
	}
	types, samples := parseExposition(t, string(raw))
	if len(samples) == 0 {
		t.Fatal("no samples in exposition")
	}

	// Every sample must belong to a declared family; histogram series
	// suffixes resolve to their base family.
	seen := make(map[string]bool)
	for _, s := range samples {
		fam, ok := s.name, true
		if _, declared := types[fam]; !declared {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(s.name, suf); base != s.name && types[base] == "histogram" {
					fam, ok = base, true
					break
				}
				ok = false
			}
			if !ok {
				t.Fatalf("line %d: sample %s has no declared family", s.line, s.name)
			}
		}
		key := s.name + "{" + labelKey(s.labels, "") + "}"
		if seen[key] {
			t.Fatalf("line %d: duplicate sample %s", s.line, key)
		}
		seen[key] = true
	}

	// Families this PR promises must be present.
	for _, want := range []string{
		"spanhop_build_info", "spanhop_events_total", "spanhop_traces_buffered",
		"spanhop_go_goroutines", "spanhop_go_heap_alloc_bytes", "spanhop_go_gc_cycles_total",
		"spanhop_go_sched_latency_seconds", "spanhop_query_latency_seconds",
		"spanhop_stretch_ratio", "spanhop_stretch_ratio_max",
		"spanhop_quality_violations_total", "spanhop_audit_samples_total",
		"spanhop_audit_checked_total", "spanhop_audit_dropped_total",
		"spanhop_audit_budget_skips_total", "spanhop_audit_stale_skips_total",
		"spanhop_audit_cpu_seconds_total",
	} {
		if _, ok := types[want]; !ok {
			t.Errorf("family %s missing from /metrics", want)
		}
	}

	// build_info carries both labels and samples 1.
	for _, s := range samples {
		if s.name == "spanhop_build_info" {
			if s.value != 1 {
				t.Errorf("build_info = %g, want 1", s.value)
			}
			if s.labels["go_version"] == "" || s.labels["revision"] == "" {
				t.Errorf("build_info labels = %v, want go_version and revision", s.labels)
			}
		}
	}

	// Histogram coherence: cumulative non-decreasing buckets, an +Inf
	// bucket, and _count equal to the +Inf bucket, per labelset.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		type series struct {
			buckets []promSample
			sum     map[string]float64
			count   map[string]float64
		}
		sr := series{sum: map[string]float64{}, count: map[string]float64{}}
		byKey := map[string][]promSample{}
		for _, s := range samples {
			key := labelKey(s.labels, "le")
			switch s.name {
			case fam + "_bucket":
				byKey[key] = append(byKey[key], s)
			case fam + "_sum":
				sr.sum[key] = s.value
			case fam + "_count":
				sr.count[key] = s.value
			}
		}
		for key, buckets := range byKey {
			prev, inf := -1.0, math.NaN()
			prevLE := math.Inf(-1)
			for _, b := range buckets {
				le := b.labels["le"]
				var bound float64
				if le == "+Inf" {
					bound = math.Inf(1)
					inf = b.value
				} else {
					var err error
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						t.Fatalf("%s: bad le %q", fam, le)
					}
				}
				if bound <= prevLE {
					t.Fatalf("%s{%s}: le %q not increasing", fam, key, le)
				}
				if b.value < prev {
					t.Fatalf("%s{%s}: bucket le=%s count %g < previous %g (not cumulative)",
						fam, key, le, b.value, prev)
				}
				prev, prevLE = b.value, bound
			}
			if math.IsNaN(inf) {
				t.Fatalf("%s{%s}: no +Inf bucket", fam, key)
			}
			cnt, ok := sr.count[key]
			if !ok {
				t.Fatalf("%s{%s}: no _count sample", fam, key)
			}
			if cnt != inf {
				t.Fatalf("%s{%s}: _count %g != +Inf bucket %g", fam, key, cnt, inf)
			}
			if _, ok := sr.sum[key]; !ok {
				t.Fatalf("%s{%s}: no _sum sample", fam, key)
			}
		}
	}

	// The lifecycle events of this test's own actions must have been
	// counted.
	evs := map[string]float64{}
	for _, s := range samples {
		if s.name == "spanhop_events_total" {
			evs[s.labels["event"]] = s.value
		}
	}
	for _, want := range []string{"build_queued", "build_started", "build_ready"} {
		if evs[want] < 1 {
			t.Errorf("spanhop_events_total{event=%q} = %g, want >= 1 (have %v)", want, evs[want], evs)
		}
	}
}

// ---------------------------------------------------------------------------
// Trace propagation under -race.

// tracedQuery fires one query with the trace header and returns the
// decoded span breakdown from the response header.
func tracedQuery(t *testing.T, ts *httptest.Server, id string, s, u graph.V) (obs.TraceData, string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"s": s, "t": u})
	req, err := http.NewRequest("POST", ts.URL+"/graphs/"+id+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, "1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query (%d,%d) = %d", s, u, resp.StatusCode)
	}
	raw := resp.Header.Get(TraceHeader)
	if raw == "" {
		t.Fatalf("traced query (%d,%d): no %s response header", s, u, TraceHeader)
	}
	var td obs.TraceData
	if err := json.Unmarshal([]byte(raw), &td); err != nil {
		t.Fatalf("trace header not JSON: %v (%q)", err, raw)
	}
	return td, resp.Header.Get("X-Spanhop-Request")
}

func spanNames(td obs.TraceData) map[string]float64 {
	m := make(map[string]float64, len(td.Spans))
	for _, s := range td.Spans {
		m[s.Name] += s.DurUS
	}
	return m
}

func TestTraceConcurrentCoalescedQueries(t *testing.T) {
	_, ts := newTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "t1", Gen: "er:n=200,d=4,w=uniform", Eps: 0.3, Seed: 3}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "t1")

	const workers = 12
	var (
		mu     sync.Mutex
		traces []obs.TraceData
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct pairs: every query misses the cache and rides the
			// coalescing path.
			td, rid := tracedQuery(t, ts, "t1", graph.V(w), graph.V(199-w))
			if rid == "" {
				t.Error("no X-Spanhop-Request header")
			}
			if td.ID != rid {
				t.Errorf("trace id %q != request id %q", td.ID, rid)
			}
			mu.Lock()
			traces = append(traces, td)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	ids := make(map[string]bool)
	for _, td := range traces {
		if ids[td.ID] {
			t.Fatalf("duplicate request id %q across concurrent queries", td.ID)
		}
		ids[td.ID] = true

		names := spanNames(td)
		for _, want := range []string{"decode", "queue-wait", "exec"} {
			if _, ok := names[want]; !ok {
				t.Fatalf("trace %s: span %q missing (spans: %v, attrs: %v)", td.ID, want, td.Spans, td.Attrs)
			}
		}
		if td.Attrs["cache"] != "miss" {
			t.Errorf("trace %s: cache = %v, want miss", td.ID, td.Attrs["cache"])
		}
		bs, ok := td.Attrs["batch_size"].(float64) // JSON numbers decode as float64
		if !ok || bs < 1 || bs > workers {
			t.Errorf("trace %s: batch_size = %v, want 1..%d", td.ID, td.Attrs["batch_size"], workers)
		}
		// Span tree consistency: spans start inside the trace and end
		// before its total.
		for _, sp := range td.Spans {
			if sp.StartUS < 0 || sp.DurUS < 0 {
				t.Fatalf("trace %s: negative span %+v", td.ID, sp)
			}
			if sp.StartUS+sp.DurUS > td.TotalUS*1.05+50 {
				t.Fatalf("trace %s: span %+v overruns total %.0fµs", td.ID, sp, td.TotalUS)
			}
		}
	}
	if len(ids) != workers {
		t.Fatalf("got %d distinct traces, want %d", len(ids), workers)
	}

	// A repeated pair is served from the cache: its trace swaps
	// queue-wait/exec for a cache span.
	tracedQuery(t, ts, "t1", 0, 199)
	td, _ := tracedQuery(t, ts, "t1", 0, 199)
	if td.Attrs["cache"] != "hit" {
		t.Fatalf("repeat query: cache = %v, want hit (attrs %v)", td.Attrs["cache"], td.Attrs)
	}
	if !spanPresent(td, "cache") {
		t.Fatalf("repeat query: no cache span (spans %v)", td.Spans)
	}
}

func spanPresent(td obs.TraceData, name string) bool {
	for _, s := range td.Spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

func TestTraceCancellationStage(t *testing.T) {
	// A long coalescing window parks the request in queue-wait; the
	// client gives up first, and the published trace must say where
	// the request died.
	s := New(Config{BatchWindow: 300 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "c1", Gen: "er:n=100,d=4", Eps: 0.3, Seed: 5}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "c1")

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	body, _ := json.Marshal(map[string]any{"s": 0, "t": 99})
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/graphs/c1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, "1")
	if resp, err := ts.Client().Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("expected the canceled request to fail client-side")
	}

	// The trace is published server-side once the handler unwinds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, td := range s.cfg.Obs.Traces().Snapshot() {
			if td.Attrs["cancel_stage"] == "queue-wait" {
				if td.Attrs["error"] == nil {
					t.Fatalf("canceled trace has no error attr: %v", td.Attrs)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no trace with cancel_stage=queue-wait in ring: %+v",
				s.cfg.Obs.Traces().Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDebugTracesAndPprofEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "d1", Gen: "er:n=100,d=4", Eps: 0.3, Seed: 9}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "d1")
	tracedQuery(t, ts, "d1", 1, 98)

	var out struct {
		Count  int             `json:"count"`
		Traces []obs.TraceData `json:"traces"`
	}
	if code := httpJSON(t, ts, "GET", "/debug/traces", nil, &out); code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", code)
	}
	if out.Count < 1 || len(out.Traces) != out.Count {
		t.Fatalf("debug/traces: count=%d len=%d", out.Count, len(out.Traces))
	}
	// Newest-first: the query trace we just forced must be visible with
	// its exec span. (A build trace may sit in the ring too.)
	found := false
	for _, td := range out.Traces {
		if spanPresent(td, "exec") && td.Attrs["graph"] == "d1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no query trace with exec span in /debug/traces: %+v", out.Traces)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
}

func TestUntracedQueryHasNoTraceHeader(t *testing.T) {
	// Without the request header (and without sampling) the response
	// must not carry a trace — and still must carry a request id.
	_, ts := newTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "u1", Gen: "er:n=80,d=4", Eps: 0.3, Seed: 2}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "u1")

	body, _ := json.Marshal(map[string]any{"s": 0, "t": 79})
	resp, err := ts.Client().Post(ts.URL+"/graphs/u1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get(TraceHeader); h != "" {
		t.Fatalf("untraced query echoed a trace: %q", h)
	}
	if resp.Header.Get("X-Spanhop-Request") == "" {
		t.Fatal("response missing X-Spanhop-Request")
	}
}
