package server

// Cost-attribution and workload-analytics tests: the spanhop_graph_*
// exposition survives hostile graph ids (label escaping is the
// accountant-to-scraper contract), /debug/workload reports what was
// actually asked, the trace filters narrow correctly, and — under
// -race — concurrent traffic against two graphs lands every cost and
// analytics row on the right graph.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// scrape fetches /metrics and returns the validated exposition.
func scrape(t *testing.T, ts *httptest.Server) (map[string]string, []promSample) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d (%v)", resp.StatusCode, err)
	}
	return parseExposition(t, string(raw))
}

func TestGraphCostExpositionHostileIDs(t *testing.T) {
	s, ts := newTestServer(t)

	// Hostile graph ids injected straight into the accountant: the
	// registry's name validation never admits these, but the metrics
	// writer must stay correct for ANY map key it is handed — ids with
	// quotes, backslashes, newlines, and Prometheus syntax are the
	// worst case for hand-rolled label escaping.
	hostile := []string{
		`quote"graph`,
		`back\slash`,
		"new\nline",
		`a{b="c"} 1`,
		`mixed"\` + "\n",
	}
	acct := s.cfg.Obs.Account()
	for _, id := range hostile {
		if err := acct.Measure(id, obs.OpQuery, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
	}

	// parseExposition fails the test on any malformed escape or
	// duplicate family/sample, which is the point of this scrape.
	types, samples := scrape(t, ts)
	for _, fam := range []string{
		"spanhop_graph_cpu_seconds_total", "spanhop_graph_wall_seconds_total",
		"spanhop_graph_allocs_total", "spanhop_graph_alloc_bytes_total",
	} {
		if typ, ok := types[fam]; !ok || typ != "counter" {
			t.Errorf("family %s: type %q, want declared counter", fam, typ)
		}
	}

	// Every hostile id must round-trip: the escaped label value,
	// decoded by the strict parser, equals the raw id.
	got := map[string]int{}
	seen := map[string]bool{}
	for _, smp := range samples {
		if !strings.HasPrefix(smp.name, "spanhop_graph_") {
			continue
		}
		got[smp.labels["graph"]]++
		key := smp.name + "{" + labelKey(smp.labels, "") + "}"
		if seen[key] {
			t.Fatalf("duplicate sample %s", key)
		}
		seen[key] = true
		if smp.labels["op"] == "" {
			t.Errorf("sample %s missing op label", smp.name)
		}
	}
	for _, id := range hostile {
		// One sample per family for the (id, query) cell.
		if got[id] != 4 {
			t.Errorf("graph id %q: %d samples, want 4 (one per cost family)", id, got[id])
		}
	}
}

func TestWorkloadEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "wl", Gen: "er:n=80,d=4,w=uniform", Eps: 0.3, Seed: 3}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "wl")

	// A deliberately skewed demand: (7, 9) three times, two singles.
	for _, p := range [][2]int{{7, 9}, {7, 9}, {7, 9}, {1, 2}, {3, 4}} {
		if code := httpJSON(t, ts, "POST", "/graphs/wl/query",
			map[string]any{"s": p[0], "t": p[1]}, nil); code != http.StatusOK {
			t.Fatalf("query %v = %d", p, code)
		}
	}

	var out struct {
		UptimeMS int64                           `json:"uptime_ms"`
		Graphs   map[string]obs.WorkloadSnapshot `json:"graphs"`
	}
	if code := httpJSON(t, ts, "GET", "/debug/workload?graph=wl", nil, &out); code != http.StatusOK {
		t.Fatalf("GET /debug/workload = %d", code)
	}
	snap, ok := out.Graphs["wl"]
	if !ok || len(out.Graphs) != 1 {
		t.Fatalf("graphs = %v, want exactly wl", out.Graphs)
	}
	if snap.TotalPairs != 5 {
		t.Fatalf("total pairs = %d, want 5", snap.TotalPairs)
	}
	if p := snap.TopPairs[0]; p.S != 7 || p.T != 9 || p.Count != 3 || p.Err != 0 {
		t.Fatalf("top pair = %+v, want (7,9) exact count 3", p)
	}
	var query *obs.OpSnapshot
	for i := range snap.Ops {
		if snap.Ops[i].Op == obs.OpQuery {
			query = &snap.Ops[i]
		}
	}
	if query == nil || query.Count != 5 || query.Errors != 0 {
		t.Fatalf("query op = %+v, want count 5", query)
	}
	// The default server has no SLO target configured.
	if snap.SLO != nil {
		t.Fatalf("slo = %+v, want nil without -slo-target", snap.SLO)
	}

	// ?k bounds the report; bad values and unknown graphs are client
	// errors, not empty documents.
	if code := httpJSON(t, ts, "GET", "/debug/workload?graph=wl&k=1", nil, &out); code != http.StatusOK {
		t.Fatalf("k=1 = %d", code)
	}
	if got := len(out.Graphs["wl"].TopPairs); got != 1 {
		t.Fatalf("k=1 returned %d pairs", got)
	}
	if code := httpJSON(t, ts, "GET", "/debug/workload?k=-1", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("k=-1 = %d, want 400", code)
	}
	if code := httpJSON(t, ts, "GET", "/debug/workload?k=zap", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("k=zap = %d, want 400", code)
	}
	if code := httpJSON(t, ts, "GET", "/debug/workload?graph=nope", nil, nil); code != http.StatusNotFound {
		t.Fatalf("graph=nope = %d, want 404", code)
	}
}

func TestTraceFilters(t *testing.T) {
	_, ts := newTestServer(t)
	for _, name := range []string{"ta", "tb"} {
		code := httpJSON(t, ts, "POST", "/graphs",
			GraphSpec{Name: name, Gen: "er:n=60,d=4,w=uniform", Eps: 0.3, Seed: 5}, nil)
		if code != http.StatusAccepted {
			t.Fatalf("POST /graphs %s = %d", name, code)
		}
	}
	waitReady(t, ts, "ta")
	waitReady(t, ts, "tb")
	for i := 0; i < 3; i++ {
		tracedQuery(t, ts, "ta", graph.V(i), graph.V(59-i))
	}
	tracedQuery(t, ts, "tb", 1, 2)

	count := func(path string) (int, int) {
		var out struct {
			Count  int             `json:"count"`
			Traces []obs.TraceData `json:"traces"`
		}
		code := httpJSON(t, ts, "GET", path, nil, &out)
		return code, out.Count
	}

	// Builds trace too, so the unfiltered ring holds at least the four
	// queries; graph filters must isolate exactly the queried counts.
	code, all := count("/debug/traces")
	if code != http.StatusOK || all < 4 {
		t.Fatalf("unfiltered = %d traces (code %d), want >= 4", all, code)
	}
	if code, n := count("/debug/traces?graph=ta"); code != http.StatusOK || n < 3 {
		t.Fatalf("graph=ta = %d traces (code %d), want 3", n, code)
	}
	code, tbCount := count("/debug/traces?graph=tb")
	if code != http.StatusOK || tbCount < 1 {
		t.Fatalf("graph=tb = %d traces (code %d), want >= 1", tbCount, code)
	}
	if code, n := count("/debug/traces?graph=ghost"); code != http.StatusOK || n != 0 {
		t.Fatalf("graph=ghost = %d traces (code %d), want 0", n, code)
	}
	// min_ms keeps only traces at least that slow; an absurd floor
	// empties the ring, zero keeps everything.
	if code, n := count("/debug/traces?min_ms=1e9"); code != http.StatusOK || n != 0 {
		t.Fatalf("min_ms=1e9 = %d traces (code %d), want 0", n, code)
	}
	if code, n := count("/debug/traces?min_ms=0"); code != http.StatusOK || n != all {
		t.Fatalf("min_ms=0 = %d traces (code %d), want all %d", n, code, all)
	}
	if code, _ := count("/debug/traces?min_ms=-1"); code != http.StatusBadRequest {
		t.Fatalf("min_ms=-1 = %d, want 400", code)
	}
	if code, _ := count("/debug/traces?min_ms=soon"); code != http.StatusBadRequest {
		t.Fatalf("min_ms=soon = %d, want 400", code)
	}
	if code, _ := count("/debug/traces?format=svg"); code != http.StatusBadRequest {
		t.Fatalf("format=svg = %d, want 400", code)
	}

	// Chrome export: valid trace-event JSON, filters still applied.
	resp, err := ts.Client().Get(ts.URL + "/debug/traces?format=chrome&graph=tb")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export = %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	var xEvents, graphTagged int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			xEvents++
			if ev.Args["graph"] == "tb" {
				graphTagged++
			}
		}
	}
	if xEvents == 0 {
		t.Fatal("chrome export has no complete events")
	}
	if graphTagged != tbCount {
		t.Fatalf("chrome export holds %d tb totals, want the %d filtered traces", graphTagged, tbCount)
	}
}

func TestTwoGraphCostAttribution(t *testing.T) {
	s, ts := newTestServer(t)
	for _, name := range []string{"left", "right"} {
		code := httpJSON(t, ts, "POST", "/graphs",
			GraphSpec{Name: name, Gen: "er:n=100,d=4,w=uniform", Eps: 0.3, Seed: 9}, nil)
		if code != http.StatusAccepted {
			t.Fatalf("POST /graphs %s = %d", name, code)
		}
	}
	waitReady(t, ts, "left")
	waitReady(t, ts, "right")

	// Concurrent demand against both graphs, with distinct pairs so
	// the result cache cannot absorb the work, plus concurrent metric
	// scrapes so the read path races the writers under -race.
	const perGraph = 40
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := "left"
			if w%2 == 1 {
				id = "right"
			}
			for i := 0; i < perGraph/2; i++ {
				p := map[string]any{"s": (w*31 + i) % 100, "t": (w*17 + i*3) % 100}
				if code := httpJSON(t, ts, "POST", "/graphs/"+id+"/query", p, nil); code != http.StatusOK {
					t.Errorf("query %s = %d", id, code)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			httpJSON(t, ts, "GET", "/debug/workload", nil, nil)
			httpJSON(t, ts, "GET", "/metrics", nil, nil)
		}
	}()
	wg.Wait()

	acct := s.cfg.Obs.Account()
	for _, id := range []string{"left", "right"} {
		rows := acct.GraphSnapshot(id)
		var query *obs.CostSnapshot
		for i := range rows {
			if rows[i].Op == obs.OpQuery {
				query = &rows[i]
			}
		}
		if query == nil {
			t.Fatalf("%s: no query cost row (rows %+v)", id, rows)
		}
		// Demand semantics: the counter counts queries, exactly the 40
		// this test sent to each graph — cross-graph bleed would break
		// the equality in one direction, lost samples in the other.
		if query.Count != perGraph {
			t.Fatalf("%s: query count %d, want %d", id, query.Count, perGraph)
		}
		if query.Errors != 0 || query.Samples == 0 || query.WallSeconds <= 0 {
			t.Fatalf("%s: query row = %+v", id, query)
		}
		// Each graph also carries its own build row.
		var build *obs.CostSnapshot
		for i := range rows {
			if rows[i].Op == obs.OpBuild {
				build = &rows[i]
			}
		}
		if build == nil || build.Count != 1 {
			t.Fatalf("%s: build row = %+v", id, build)
		}
	}

	// The workload sketches must be disjoint per graph and complete.
	var out struct {
		Graphs map[string]obs.WorkloadSnapshot `json:"graphs"`
	}
	if code := httpJSON(t, ts, "GET", "/debug/workload?k=0", nil, &out); code != http.StatusOK {
		t.Fatalf("GET /debug/workload = %d", code)
	}
	for _, id := range []string{"left", "right"} {
		if got := out.Graphs[id].TotalPairs; got != perGraph {
			t.Fatalf("%s: sketch total %d, want %d", id, got, perGraph)
		}
	}

	// And /stats embeds the same attribution per graph.
	var stats struct {
		Graphs map[string]struct {
			Costs []obs.CostSnapshot `json:"costs"`
		} `json:"graphs"`
	}
	if code := httpJSON(t, ts, "GET", "/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	for _, id := range []string{"left", "right"} {
		found := false
		for _, c := range stats.Graphs[id].Costs {
			if c.Graph == id && c.Op == obs.OpQuery && c.Count == perGraph {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: /stats costs missing the query row: %+v", id, stats.Graphs[id].Costs)
		}
	}
}
