package server

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// waitState polls an entry until it leaves StateBuilding.
func waitState(t *testing.T, e *Entry) State {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := e.Info().State; st != StateBuilding {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("entry %s still building after 30s", e.id)
	return StateBuilding
}

func TestRegistryBuildAndReady(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	e, err := r.Add(GraphSpec{Name: "er0", Gen: "er:n=200,d=4,w=uniform,maxw=20", Eps: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, e); st != StateReady {
		t.Fatalf("state = %s (err %q), want ready", st, e.Info().Error)
	}
	info := e.Info()
	if info.ID != "er0" || info.N != 200 || info.M < 199 || !info.Weighted {
		t.Fatalf("bad info: %+v", info)
	}
	if info.Spec.Eps != 0.3 || info.HopsetEdges == 0 || info.Instances < 1 {
		t.Fatalf("bad oracle introspection: %+v", info)
	}
	got, ok := r.Get("er0")
	if !ok || got != e {
		t.Fatal("Get lost the entry")
	}
	if list := r.List(); len(list) != 1 || list[0].ID != "er0" {
		t.Fatalf("List = %+v", list)
	}
}

// TestRegistryBuildFailureSurfaced: the lifecycle must carry a build
// error to the client instead of wedging in building (satellite:
// build-failure surfacing).
func TestRegistryBuildFailureSurfaced(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	e, err := r.Add(GraphSpec{File: "/nonexistent/graph.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, e); st != StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	info := e.Info()
	if !strings.Contains(info.Error, "no such file") {
		t.Fatalf("error %q does not surface the cause", info.Error)
	}
	if _, err := e.executor(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("executor() = %v, want ErrNotReady", err)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	bad := []GraphSpec{
		{},                                // neither source
		{File: "x", Gen: "er"},            // both sources
		{Gen: "er", Eps: 1.5},             // eps out of range
		{Gen: "er", Eps: -0.1},            // eps out of range
		{Gen: "nonsense:q=1"},             // unparsable generator
		{Name: "dup", Gen: "er:n=50,d=3"}, // first is fine...
		{Name: "dup", Gen: "grid:side=5"}, // ...duplicate name
		{Name: "a/b", Gen: "er:n=50,d=3"}, // unroutable name (mux {id} is one segment)
		{Name: "sp ace", Gen: "er:n=50,d=3"},
		{Name: strings.Repeat("x", 65), Gen: "er:n=50,d=3"},
	}
	var errs int
	for i, spec := range bad {
		_, err := r.Add(spec)
		if i == 5 {
			if err != nil {
				t.Fatalf("spec %d unexpectedly rejected: %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("spec %d (%+v) accepted", i, spec)
		}
		errs++
	}
	if errs != len(bad)-1 {
		t.Fatalf("rejected %d specs, want %d", errs, len(bad)-1)
	}
}

// TestRegistryBuildQueueFull: a saturated bounded build queue is a
// typed, synchronous rejection. White-box: no workers started, so the
// queue cannot drain.
func TestRegistryBuildQueueFull(t *testing.T) {
	r := &Registry{
		cfg:     Config{}.withDefaults(),
		entries: make(map[string]*Entry),
		queue:   make(chan *Entry, 1),
	}
	if _, err := r.Add(GraphSpec{Gen: "er:n=50,d=3"}); err != nil {
		t.Fatal(err)
	}
	_, err := r.Add(GraphSpec{Gen: "er:n=60,d=3"})
	if !errors.Is(err, ErrBuildQueueFull) {
		t.Fatalf("err = %v, want ErrBuildQueueFull", err)
	}
	// The rejected registration must not leak into the registry.
	if len(r.entries) != 1 || len(r.order) != 1 {
		t.Fatalf("rejected spec leaked: %d entries", len(r.entries))
	}
}

// TestRegistryAutoNameSkipsTakenIDs: a user-chosen name that looks
// like an auto id ("g0") must never wedge unnamed registration.
func TestRegistryAutoNameSkipsTakenIDs(t *testing.T) {
	r := NewRegistry(Config{})
	defer r.Close()
	if _, err := r.Add(GraphSpec{Name: "g0", Gen: "er:n=50,d=3"}); err != nil {
		t.Fatal(err)
	}
	e, err := r.Add(GraphSpec{Gen: "er:n=60,d=3"})
	if err != nil {
		t.Fatalf("unnamed Add after explicit g0: %v", err)
	}
	if e.id == "g0" {
		t.Fatal("auto id collided with the named entry")
	}
	e2, err := r.Add(GraphSpec{Gen: "er:n=70,d=3"})
	if err != nil {
		t.Fatal(err)
	}
	if e2.id == e.id {
		t.Fatalf("duplicate auto id %q", e2.id)
	}
}

func TestRegistryAutoNamesAndClose(t *testing.T) {
	r := NewRegistry(Config{BuildWorkers: 2})
	a, err := r.Add(GraphSpec{Gen: "er:n=60,d=3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Add(GraphSpec{Gen: "grid:side=6"})
	if err != nil {
		t.Fatal(err)
	}
	if a.id != "g0" || b.id != "g1" {
		t.Fatalf("auto ids = %s, %s", a.id, b.id)
	}
	waitState(t, a)
	waitState(t, b)
	r.Close()
	r.Close() // idempotent
	if _, err := r.Add(GraphSpec{Gen: "er:n=50,d=3"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close = %v, want ErrClosed", err)
	}
}
