package server

// GET /metrics: a Prometheus plain-text exposition (format 0.0.4) of
// everything /stats reports as JSON — serving counters, the query
// latency histogram, build-stage telemetry, snapshot persistence
// state, and the dynamic overlay's generation/staleness gauges — so
// the daemon is scrapeable without a JSON-parsing sidecar. Hand-rolled
// on purpose: the container has no Prometheus client library, and the
// text format is trivial to emit correctly (HELP/TYPE once per
// family, one sample per line, labels escaped).

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// promWriter accumulates families in declaration order.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name string, labels [][2]string, value any) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, `%s="%s"`, kv[0], promEscape(kv[1]))
		}
		p.b.WriteByte('}')
	}
	switch v := value.(type) {
	case float64:
		fmt.Fprintf(&p.b, " %g\n", v)
	default:
		fmt.Fprintf(&p.b, " %v\n", v)
	}
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.List()
	type graphRow struct {
		info  Info
		stats StatsSnapshot
	}
	rows := make([]graphRow, 0, len(infos))
	for _, info := range infos {
		e, ok := s.reg.Get(info.ID)
		if !ok {
			continue
		}
		rows = append(rows, graphRow{info: info, stats: e.stats.Snapshot()})
	}

	var p promWriter
	p.family("spanhop_build_info", "Binary identification; always 1.", "gauge")
	bi := obs.Build()
	p.sample("spanhop_build_info", [][2]string{
		{"go_version", bi.GoVersion}, {"revision", bi.Revision}}, 1)

	p.family("spanhop_uptime_seconds", "Daemon uptime.", "gauge")
	p.sample("spanhop_uptime_seconds", nil, time.Since(s.start).Seconds())

	p.family("spanhop_graphs", "Registered graphs by lifecycle state.", "gauge")
	counts := map[State]int{StateBuilding: 0, StateReady: 0, StateFailed: 0}
	for _, row := range rows {
		counts[row.info.State]++
	}
	states := make([]string, 0, len(counts))
	for st := range counts {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		p.sample("spanhop_graphs", [][2]string{{"state", st}}, counts[State(st)])
	}

	// Per-graph serving counters.
	counters := []struct {
		name, help string
		get        func(StatsSnapshot) int64
	}{
		{"spanhop_requests_total", "Single queries received.", func(s StatsSnapshot) int64 { return s.Requests }},
		{"spanhop_cache_hits_total", "Single queries answered from the LRU result cache.", func(s StatsSnapshot) int64 { return s.CacheHits }},
		{"spanhop_rejects_total", "Queries rejected with backpressure (503).", func(s StatsSnapshot) int64 { return s.Rejects }},
		{"spanhop_failures_total", "Queries that returned an error.", func(s StatsSnapshot) int64 { return s.Failures }},
		{"spanhop_coalesced_batches_total", "Micro-batches dispatched by the coalescing executor.", func(s StatsSnapshot) int64 { return s.Batches }},
		{"spanhop_coalesced_queries_total", "Single queries answered inside micro-batches.", func(s StatsSnapshot) int64 { return s.BatchedQueries }},
		{"spanhop_batch_calls_total", "Explicit batch API calls.", func(s StatsSnapshot) int64 { return s.BatchCalls }},
		{"spanhop_batch_call_queries_total", "Pairs inside explicit batch calls.", func(s StatsSnapshot) int64 { return s.BatchCallQueries }},
		{"spanhop_mutation_batches_total", "Applied edge-mutation batches.", func(s StatsSnapshot) int64 { return s.MutationBatches }},
		{"spanhop_mutations_total", "Applied edge mutations.", func(s StatsSnapshot) int64 { return s.Mutations }},
	}
	for _, c := range counters {
		p.family(c.name, c.help, "counter")
		for _, row := range rows {
			p.sample(c.name, [][2]string{{"graph", row.info.ID}}, c.get(row.stats))
		}
	}

	// Cache hit rate as a convenience gauge (hits / requests).
	p.family("spanhop_cache_hit_ratio", "Cache hits over single-query requests.", "gauge")
	for _, row := range rows {
		ratio := 0.0
		if row.stats.Requests > 0 {
			ratio = float64(row.stats.CacheHits) / float64(row.stats.Requests)
		}
		p.sample("spanhop_cache_hit_ratio", [][2]string{{"graph", row.info.ID}}, ratio)
	}

	// Query service latency histogram. Internal bucket i counts
	// latencies in [50µs·2^(i-1), 50µs·2^i) (bucket 0: below 50µs), so
	// the cumulative le boundary of bucket i is 50µs·2^i; the last
	// internal bucket is open and feeds +Inf only.
	p.family("spanhop_query_latency_seconds", "Query service latency.", "histogram")
	for _, row := range rows {
		lat := row.stats.Latency
		cum := int64(0)
		for i, c := range lat.Buckets {
			cum += c
			if i == len(lat.Buckets)-1 {
				break // open bucket: +Inf carries it
			}
			le := (latBase << uint(i)).Seconds()
			p.sample("spanhop_query_latency_seconds_bucket",
				[][2]string{{"graph", row.info.ID}, {"le", fmt.Sprintf("%g", le)}}, cum)
		}
		p.sample("spanhop_query_latency_seconds_bucket",
			[][2]string{{"graph", row.info.ID}, {"le", "+Inf"}}, lat.Count)
		p.sample("spanhop_query_latency_seconds_sum",
			[][2]string{{"graph", row.info.ID}}, float64(lat.MeanUS)*float64(lat.Count)/1e6)
		p.sample("spanhop_query_latency_seconds_count",
			[][2]string{{"graph", row.info.ID}}, lat.Count)
	}

	// Build-stage telemetry.
	p.family("spanhop_build_stage_wall_seconds", "Wall time spent per build stage.", "gauge")
	p.family("spanhop_build_stage_work", "Model work per build stage.", "gauge")
	for _, row := range rows {
		for _, st := range row.info.BuildStages {
			labels := [][2]string{{"graph", row.info.ID}, {"stage", st.Name}}
			p.sample("spanhop_build_stage_wall_seconds", labels, st.WallMS/1e3)
			p.sample("spanhop_build_stage_work", labels, st.Work)
		}
	}

	// Snapshot persistence.
	p.family("spanhop_snapshot_size_bytes", "On-disk snapshot size.", "gauge")
	p.family("spanhop_snapshot_age_seconds", "Time since the snapshot was written.", "gauge")
	for _, row := range rows {
		if row.info.Snapshot == nil {
			continue
		}
		labels := [][2]string{{"graph", row.info.ID}}
		p.sample("spanhop_snapshot_size_bytes", labels, row.info.Snapshot.SizeBytes)
		p.sample("spanhop_snapshot_age_seconds", labels, float64(row.info.Snapshot.AgeMS)/1e3)
	}

	// Dynamic overlay: the generation/staleness gauges that make live
	// updates observable.
	dyn := []struct {
		name, help, typ string
		get             func(*DynamicInfo) any
	}{
		{"spanhop_generation", "Latest applied mutation generation.", "gauge", func(d *DynamicInfo) any { return d.Generation }},
		{"spanhop_base_generation", "Generation the serving static oracle reflects.", "gauge", func(d *DynamicInfo) any { return d.BaseGeneration }},
		{"spanhop_pending_updates", "Journal entries awaiting a rebuild.", "gauge", func(d *DynamicInfo) any { return d.PendingUpdates }},
		{"spanhop_overlay_edges", "Vertex pairs diverging from the base graph.", "gauge", func(d *DynamicInfo) any { return d.OverlayEdges }},
		{"spanhop_staleness_seconds", "Age of the oldest pending mutation.", "gauge", func(d *DynamicInfo) any { return float64(d.StalenessMS) / 1e3 }},
		{"spanhop_rebuilds_total", "Completed overlay rebuilds.", "counter", func(d *DynamicInfo) any { return d.Rebuilds }},
		{"spanhop_rebuild_running", "Whether an overlay rebuild is in flight.", "gauge", func(d *DynamicInfo) any { return boolGauge(d.RebuildRunning) }},
	}
	for _, m := range dyn {
		p.family(m.name, m.help, m.typ)
		for _, row := range rows {
			if row.info.Dynamic == nil {
				continue
			}
			p.sample(m.name, [][2]string{{"graph", row.info.ID}}, m.get(row.info.Dynamic))
		}
	}

	// Per-graph cost attribution: the accountant's (graph, op) rows.
	// Emitted from the accountant directly — not joined against the
	// registry — so costs already burned by a graph survive in the
	// exposition even while the registry row is mid-transition.
	costs := s.cfg.Obs.Account().Snapshot()
	costLabels := func(c obs.CostSnapshot) [][2]string {
		return [][2]string{{"graph", c.Graph}, {"op", c.Op}}
	}
	p.family("spanhop_graph_cpu_seconds_total",
		"On-thread CPU time attributed to a graph's operation sections (pool fan-out is visible via pprof labels instead).", "counter")
	for _, c := range costs {
		p.sample("spanhop_graph_cpu_seconds_total", costLabels(c), c.CPUSeconds)
	}
	p.family("spanhop_graph_wall_seconds_total",
		"Wall time spent inside a graph's operation sections.", "counter")
	for _, c := range costs {
		p.sample("spanhop_graph_wall_seconds_total", costLabels(c), c.WallSeconds)
	}
	p.family("spanhop_graph_allocs_total",
		"Heap objects allocated during a graph's operation sections (process-wide delta: approximate under concurrency).", "counter")
	for _, c := range costs {
		p.sample("spanhop_graph_allocs_total", costLabels(c), c.Allocs)
	}
	p.family("spanhop_graph_alloc_bytes_total",
		"Heap bytes allocated during a graph's operation sections (process-wide delta: approximate under concurrency).", "counter")
	for _, c := range costs {
		p.sample("spanhop_graph_alloc_bytes_total", costLabels(c), c.AllocBytes)
	}

	// Answer-quality auditing: the stretch actually delivered, the
	// violation alarm, and the audit pipeline's own health. Families
	// are declared unconditionally (scrapers want stable schemas);
	// rows appear as graphs register with the auditor.
	audits := s.reg.aud.Snapshot()
	p.family("spanhop_stretch_ratio",
		"Audited served/exact distance ratio (1 = exact; the envelope is the proven bound).", "histogram")
	stretchBounds := obs.StretchBuckets()
	for _, ag := range audits {
		for _, reg := range ag.Regimes {
			labels := func(extra ...[2]string) [][2]string {
				return append([][2]string{{"graph", ag.Graph}, {"regime", reg.Regime}}, extra...)
			}
			cum := int64(0)
			for i, c := range reg.Buckets {
				cum += c
				if i == len(reg.Buckets)-1 {
					break // overflow bucket: +Inf carries it
				}
				p.sample("spanhop_stretch_ratio_bucket",
					labels([2]string{"le", fmt.Sprintf("%g", stretchBounds[i])}), cum)
			}
			p.sample("spanhop_stretch_ratio_bucket",
				labels([2]string{"le", "+Inf"}), reg.Count)
			p.sample("spanhop_stretch_ratio_sum", labels(), reg.SumRatio)
			p.sample("spanhop_stretch_ratio_count", labels(), reg.Count)
		}
	}
	p.family("spanhop_stretch_ratio_max",
		"High-water mark of the audited stretch ratio.", "gauge")
	for _, ag := range audits {
		for _, reg := range ag.Regimes {
			if reg.Count == 0 {
				continue
			}
			p.sample("spanhop_stretch_ratio_max",
				[][2]string{{"graph", ag.Graph}, {"regime", reg.Regime}}, reg.MaxRatio)
		}
	}
	p.family("spanhop_quality_violations_total",
		"Audited answers outside the regime's proven stretch envelope — a correctness alarm.", "counter")
	for _, ag := range audits {
		p.sample("spanhop_quality_violations_total",
			[][2]string{{"graph", ag.Graph}}, ag.Violations)
	}
	auditCounters := []struct {
		name, help string
		get        func(obs.AuditGraphSnapshot) int64
	}{
		{"spanhop_audit_samples_total", "Served answers accepted for shadow auditing.",
			func(a obs.AuditGraphSnapshot) int64 { return a.Sampled }},
		{"spanhop_audit_checked_total", "Shadow re-checks completed and classified.",
			func(a obs.AuditGraphSnapshot) int64 { return a.Audited }},
		{"spanhop_audit_dropped_total", "Audit samples evicted by the bounded drop-oldest queue.",
			func(a obs.AuditGraphSnapshot) int64 { return a.Dropped }},
		{"spanhop_audit_budget_skips_total", "Audit samples discarded by the per-graph CPU budget.",
			func(a obs.AuditGraphSnapshot) int64 { return a.BudgetSkips }},
		{"spanhop_audit_stale_skips_total", "Audit samples whose generation a rebuild compacted away.",
			func(a obs.AuditGraphSnapshot) int64 { return a.StaleSkips }},
	}
	for _, c := range auditCounters {
		p.family(c.name, c.help, "counter")
		for _, ag := range audits {
			p.sample(c.name, [][2]string{{"graph", ag.Graph}}, c.get(ag))
		}
	}
	p.family("spanhop_audit_cpu_seconds_total",
		"Thread-CPU burned by exact shadow re-checks (the budget's numerator).", "counter")
	for _, ag := range audits {
		p.sample("spanhop_audit_cpu_seconds_total",
			[][2]string{{"graph", ag.Graph}}, float64(ag.AuditCPUNS)/1e9)
	}

	// SLO burn rates (only for graphs with SLO tracking on).
	type sloRow struct {
		id   string
		snap *obs.SLOSnapshot
	}
	var slos []sloRow
	for _, row := range rows {
		e, ok := s.reg.Get(row.info.ID)
		if !ok {
			continue
		}
		if snap := e.Workload().SLOSnapshot(); snap != nil {
			slos = append(slos, sloRow{row.info.ID, snap})
		}
	}
	if len(slos) > 0 {
		p.family("spanhop_slo_burn_rate",
			"Latency SLO error-budget burn rate over rolling windows (1 = sustainable).", "gauge")
		for _, sr := range slos {
			p.sample("spanhop_slo_burn_rate",
				[][2]string{{"graph", sr.id}, {"window", "1m"}}, sr.snap.Burn1m)
			p.sample("spanhop_slo_burn_rate",
				[][2]string{{"graph", sr.id}, {"window", "5m"}}, sr.snap.Burn5m)
		}
		p.family("spanhop_slo_good_total", "Queries answered within the SLO target.", "counter")
		for _, sr := range slos {
			p.sample("spanhop_slo_good_total", [][2]string{{"graph", sr.id}}, sr.snap.Good)
		}
		p.family("spanhop_slo_queries_total", "Queries classified by the SLO tracker.", "counter")
		for _, sr := range slos {
			p.sample("spanhop_slo_queries_total", [][2]string{{"graph", sr.id}}, sr.snap.Total)
		}
	}

	// Lifecycle event counters (build queued/ready, snapshot written,
	// rebuild swapped, ...) — the countable face of the structured
	// event log.
	p.family("spanhop_events_total", "Lifecycle events by kind.", "counter")
	for _, ec := range s.cfg.Obs.Events().Snapshot() {
		p.sample("spanhop_events_total", [][2]string{{"event", ec.Name}}, ec.Count)
	}

	// Recent-trace ring occupancy.
	p.family("spanhop_traces_buffered", "Traces held in the /debug/traces ring.", "gauge")
	p.sample("spanhop_traces_buffered", nil, s.cfg.Obs.Traces().Len())

	// Go runtime health: heap, GC, goroutines, and scheduler latency
	// quantiles (runnable-to-running wait — the canary for the build
	// pool starving the query path).
	rt := obs.ReadRuntime()
	p.family("spanhop_go_goroutines", "Live goroutines.", "gauge")
	p.sample("spanhop_go_goroutines", nil, rt.Goroutines)
	p.family("spanhop_go_heap_alloc_bytes", "Bytes of live heap objects.", "gauge")
	p.sample("spanhop_go_heap_alloc_bytes", nil, rt.HeapAlloc)
	p.family("spanhop_go_heap_sys_bytes", "Heap bytes obtained from the OS.", "gauge")
	p.sample("spanhop_go_heap_sys_bytes", nil, rt.HeapSys)
	p.family("spanhop_go_gc_cycles_total", "Completed GC cycles.", "counter")
	p.sample("spanhop_go_gc_cycles_total", nil, rt.GCCycles)
	p.family("spanhop_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", "counter")
	p.sample("spanhop_go_gc_pause_seconds_total", nil, rt.GCPauseTotal)
	p.family("spanhop_go_sched_latency_seconds", "Scheduler latency quantiles.", "gauge")
	p.sample("spanhop_go_sched_latency_seconds", [][2]string{{"quantile", "0.5"}}, rt.SchedLatP50)
	p.sample("spanhop_go_sched_latency_seconds", [][2]string{{"quantile", "0.9"}}, rt.SchedLatP90)
	p.sample("spanhop_go_sched_latency_seconds", [][2]string{{"quantile", "0.99"}}, rt.SchedLatP99)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(p.b.String()))
}
