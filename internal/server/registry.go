// Package server is the serving layer above the spanhop facade: a
// registry of named graphs with background oracle builds, a batching
// query executor that coalesces concurrent single queries into
// QueryBatch fan-outs, and an HTTP/JSON API. cmd/spanhopd wires it to
// a listener; cmd/loadgen drives it.
//
// The paper's Theorem 1.2 oracle is a preprocess-once/query-many
// structure, which is exactly the shape that wants to live behind a
// long-running daemon: builds are expensive and parallel (the PR 1
// multicore substrate), queries are cheap, read-mostly, and batch
// well. This package owns everything between the HTTP listener and
// DistanceOracle.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	spanhop "repro"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/workload"
)

// State is an oracle lifecycle phase.
type State string

const (
	// StateBuilding: the build is queued or running; queries are
	// rejected with 409.
	StateBuilding State = "building"
	// StateReady: the oracle answers queries.
	StateReady State = "ready"
	// StateFailed: the build errored; Info.Error has the cause.
	StateFailed State = "failed"
)

// GraphSpec describes a graph to register: exactly one of File (a
// graph file in the internal/graph text or binary format) or Gen (a
// workload.ParseSpec generator string).
type GraphSpec struct {
	// Name is the registry id; auto-assigned ("g0", "g1", ...) when
	// empty.
	Name string `json:"name,omitempty"`
	// File is a path readable by the server process.
	File string `json:"file,omitempty"`
	// Gen is a generator spec, e.g. "er:n=4096,d=8,w=uniform".
	Gen string `json:"gen,omitempty"`
	// Eps is the oracle accuracy parameter; default 0.25.
	Eps float64 `json:"eps,omitempty"`
	// Seed drives both generation and preprocessing; builds are
	// deterministic in (spec, seed), which lets clients re-derive and
	// verify server answers.
	Seed uint64 `json:"seed,omitempty"`
}

// Typed registry errors; the HTTP layer maps them to status codes.
var (
	ErrBuildQueueFull = errors.New("server: build queue full")
	ErrDuplicateName  = errors.New("server: graph name already registered")
	ErrUnknownGraph   = errors.New("server: unknown graph")
	ErrNotReady       = errors.New("server: graph not ready")
	ErrRebuildFailed  = errors.New("server: rebuild failed")
)

// Entry is one registered graph and its lifecycle state.
type Entry struct {
	id    string
	spec  GraphSpec
	stats *GraphStats

	// Build cancellation: cancel aborts an in-flight build at its next
	// round boundary; deleted marks the entry as evicted so the build
	// worker discards whatever the aborted build produced (no partial
	// state survives a DELETE).
	cancel  context.CancelFunc
	buildC  context.Context
	deleted atomic.Bool
	tel     *exec.Telemetry
	// btr is the build's trace: stage spans recorded by the build
	// execution context, finished into the trace ring on ready/failed.
	// Its ID is the request ID that registered the graph, tying the
	// async build back to the POST /graphs that caused it.
	btr *obs.Trace

	// dyn owns the serving state once ready: the current static oracle
	// and its base graph live inside it (and are REPLACED by rebuild
	// swaps — holding direct references here would pin the pre-rebuild
	// oracle in memory for the entry's lifetime).
	mu       sync.Mutex
	state    State
	err      string
	dyn      *spanhop.DynamicOracle
	exec     *Executor
	workload *obs.Workload
	buildMS  int64
	created  time.Time

	// Snapshot persistence: warm marks an entry restored from disk at
	// boot (it never ran a build in this process); snapSize/snapTime/
	// snapErr describe the entry's snapshot file (guarded by mu). The
	// file writes themselves are serialized by the registry's per-id
	// snapshot lock — per id, not per entry, because the .snap path is
	// keyed by id and a deleted graph's id can be re-registered.
	// snapPend marks a coalesced background rewrite already scheduled.
	warm     bool
	snapSize int64
	snapTime time.Time
	snapErr  string
	snapPend atomic.Bool
}

// Info is the JSON snapshot of an Entry.
type Info struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	Spec  struct {
		File string  `json:"file,omitempty"`
		Gen  string  `json:"gen,omitempty"`
		Eps  float64 `json:"eps"`
		Seed uint64  `json:"seed"`
	} `json:"spec"`
	// Graph shape + oracle introspection, set once ready.
	N           int32 `json:"n,omitempty"`
	M           int64 `json:"m,omitempty"`
	Weighted    bool  `json:"weighted,omitempty"`
	HopsetEdges int   `json:"hopset_edges,omitempty"`
	Decomposed  bool  `json:"decomposed,omitempty"`
	Instances   int   `json:"instances,omitempty"`
	Degenerate  bool  `json:"degenerate,omitempty"`
	BuildMS     int64 `json:"build_ms,omitempty"`
	// BuildStages is the per-stage build telemetry (graph loading,
	// weight-class decomposition, hopset construction) recorded by the
	// build's execution context. Empty for warm-started graphs: they
	// never built anything in this process.
	BuildStages []exec.StageStats `json:"build_stages,omitempty"`
	// WarmStarted marks a graph restored from a snapshot at boot.
	WarmStarted bool `json:"warm_started,omitempty"`
	// Flat marks an oracle served from a mapped flat arena (a v3
	// snapshot warm start); FlatBytes is the arena size backing it.
	// Cleared once a rebuild swaps in a freshly built oracle.
	Flat      bool  `json:"flat,omitempty"`
	FlatBytes int64 `json:"flat_bytes,omitempty"`
	// Snapshot describes the graph's on-disk snapshot, when snapshot
	// persistence is configured.
	Snapshot *SnapshotInfo `json:"snapshot,omitempty"`
	// Dynamic describes the live-update overlay (generation window,
	// pending journal, rebuild scheduler), set once ready.
	Dynamic *DynamicInfo `json:"dynamic,omitempty"`
}

// DynamicInfo is the JSON shape of a graph's dynamic-overlay state.
type DynamicInfo struct {
	// Generation is the latest applied mutation generation;
	// BaseGeneration is the one the underlying static oracle reflects.
	Generation     uint64 `json:"generation"`
	BaseGeneration uint64 `json:"base_generation"`
	// PendingUpdates / OverlayEdges describe the journal awaiting a
	// rebuild; StalenessMS is the age of its oldest entry.
	PendingUpdates int   `json:"pending_updates"`
	OverlayEdges   int   `json:"overlay_edges"`
	StalenessMS    int64 `json:"staleness_ms"`
	// Rebuild scheduler counters.
	Rebuilds       int64  `json:"rebuilds"`
	RebuildRunning bool   `json:"rebuild_running,omitempty"`
	LastCause      string `json:"last_rebuild_cause,omitempty"`
	LastRebuildMS  int64  `json:"last_rebuild_ms,omitempty"`
	LastError      string `json:"last_rebuild_error,omitempty"`
}

// dynamicInfo snapshots the overlay state (nil until ready). The
// overlay gauges come from one consistent snapshot; the scheduler
// counters are read separately (they only ever grow).
func dynamicInfo(dyn *spanhop.DynamicOracle) *DynamicInfo {
	if dyn == nil {
		return nil
	}
	g := dyn.Gauges()
	st := dyn.RebuildStats()
	info := &DynamicInfo{
		Generation:     g.Generation,
		BaseGeneration: g.FloorGen,
		PendingUpdates: g.Pending,
		OverlayEdges:   g.OverlayEdges,
		Rebuilds:       st.Rebuilds,
		RebuildRunning: st.Running,
		LastCause:      st.LastCause,
		LastRebuildMS:  st.LastRebuildMS,
		LastError:      st.LastError,
	}
	if !g.OldestPending.IsZero() {
		info.StalenessMS = time.Since(g.OldestPending).Milliseconds()
	}
	return info
}

// Info snapshots the entry.
func (e *Entry) Info() Info {
	e.mu.Lock()
	defer e.mu.Unlock()
	info := Info{ID: e.id, State: e.state, Error: e.err, BuildMS: e.buildMS}
	info.Spec.File = e.spec.File
	info.Spec.Gen = e.spec.Gen
	info.Spec.Eps = e.spec.Eps
	info.Spec.Seed = e.spec.Seed
	// The current static oracle and its base graph live inside the
	// overlay (rebuild swaps replace them); Introspect reads the pair
	// under one lock so a concurrent swap cannot tear the row. Nothing
	// is set until ready.
	if e.dyn != nil {
		oracle, g := e.dyn.Introspect()
		info.N = g.NumVertices()
		info.M = g.NumEdges()
		info.Weighted = g.Weighted()
		info.HopsetEdges = oracle.HopsetSize()
		info.Decomposed = oracle.Decomposed()
		info.Instances = oracle.InstanceCount()
		info.Degenerate = oracle.Degenerate()
		info.Flat, info.FlatBytes = oracle.FlatInfo()
	}
	info.Dynamic = dynamicInfo(e.dyn)
	info.BuildStages = e.tel.Snapshot()
	info.WarmStarted = e.warm
	if !e.snapTime.IsZero() || e.snapErr != "" {
		si := e.snapshotInfoLocked()
		info.Snapshot = &si
	}
	return info
}

// Workload returns the entry's per-graph workload analytics bundle
// (nil until the entry became ready; Workload methods are nil-safe).
func (e *Entry) Workload() *obs.Workload {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workload
}

// executor returns the ready executor, or ErrNotReady carrying the
// lifecycle state (building/failed) for the HTTP layer to report.
func (e *Entry) executor() (*Executor, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case StateReady:
		return e.exec, nil
	case StateFailed:
		return nil, fmt.Errorf("%w: %s build failed: %s", ErrNotReady, e.id, e.err)
	default:
		return nil, fmt.Errorf("%w: %s is %s", ErrNotReady, e.id, e.state)
	}
}

// Registry owns the graph entries and the bounded background build
// queue. Lookups are concurrent-safe; builds run on cfg.BuildWorkers
// goroutines.
type Registry struct {
	cfg Config

	mu      sync.RWMutex
	entries map[string]*Entry
	order   []string
	seq     int
	closed  bool

	queue chan *Entry
	wg    sync.WaitGroup

	// snapStop wakes debounced snapshot writers early on Close (their
	// pending rewrite is flushed, not dropped); snapWG lets Close wait
	// them out so no writer touches the directory after Close returns.
	snapStop chan struct{}
	snapWG   sync.WaitGroup

	// aud continuously re-checks a sample of served answers against
	// exact recomputation (the answer-quality tentpole); executors
	// feed it, /debug/quality and /metrics read it.
	aud *obs.Auditor

	// snapLocks holds one mutex per graph id ever snapshotted: all
	// file operations on {id}.snap(.tmp) — background writes, forced
	// writes, DELETE cleanup — serialize on it, so a stale writer for
	// a deleted entry can never interleave with (or clobber) the
	// snapshot of a new graph re-registered under the same id.
	snapLocks sync.Map // id string → *sync.Mutex
}

// NewRegistry starts the build workers.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	r := &Registry{
		cfg:      cfg,
		entries:  make(map[string]*Entry),
		queue:    make(chan *Entry, cfg.BuildQueue),
		snapStop: make(chan struct{}),
		aud: obs.NewAuditor(obs.AuditorOptions{
			SampleEvery: cfg.AuditSample,
			CPUFrac:     cfg.AuditCPUFrac,
			Log:         cfg.Obs.Log(),
			Events:      cfg.Obs.Events(),
			Acct:        cfg.Obs.Account(),
			Traces:      cfg.Obs.Traces(),
		}),
	}
	for i := 0; i < cfg.BuildWorkers; i++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for e := range r.queue {
				if e.deleted.Load() {
					// Deleted while queued: the entry is already out of
					// the registry; never pay for the build.
					e.mu.Lock()
					e.state = StateFailed
					e.err = "graph deleted before build started"
					e.mu.Unlock()
					continue
				}
				if r.isClosed() {
					// Shutdown: drain the queue without paying for
					// builds nobody will query.
					e.mu.Lock()
					e.state = StateFailed
					e.err = "server shut down before build started"
					e.mu.Unlock()
					continue
				}
				r.build(e)
			}
		}()
	}
	return r
}

// Add validates spec, registers an entry in StateBuilding, and queues
// the build. A full build queue returns ErrBuildQueueFull and leaves
// the registry unchanged.
func (r *Registry) Add(spec GraphSpec) (*Entry, error) {
	return r.AddCtx(context.Background(), spec)
}

// AddCtx is Add with the caller's context: the request ID minted at
// the HTTP edge propagates onto the build's trace and lifecycle
// events, so an async build failure is attributable to the POST that
// queued it. The context is used for identification only — canceling
// it does not cancel the build (DELETE does).
func (r *Registry) AddCtx(ctx context.Context, spec GraphSpec) (*Entry, error) {
	if spec.Eps == 0 {
		spec.Eps = 0.25
	}
	if spec.Eps <= 0 || spec.Eps >= 1 {
		return nil, fmt.Errorf("server: eps = %v, want (0,1)", spec.Eps)
	}
	if (spec.File == "") == (spec.Gen == "") {
		return nil, errors.New("server: spec needs exactly one of file or gen")
	}
	if !validName(spec.Name) {
		return nil, fmt.Errorf("server: name %q must match [A-Za-z0-9._-]{1,64}", spec.Name)
	}
	if spec.Gen != "" {
		// Parse eagerly so a bad generator string is a synchronous
		// 400, not an async build failure.
		if _, err := workload.ParseSpec(spec.Gen, spec.Seed); err != nil {
			return nil, err
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	id := spec.Name
	if id == "" {
		// Skip over ids a user already claimed by explicit name, so a
		// graph named "g0" can never wedge auto-assignment.
		for {
			id = fmt.Sprintf("g%d", r.seq)
			r.seq++
			if _, taken := r.entries[id]; !taken {
				break
			}
		}
	} else if _, dup := r.entries[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateName, id)
	}
	rid := obs.RequestID(ctx)
	if rid == "" {
		rid = obs.NextRequestID()
	}
	buildC, cancel := context.WithCancel(context.Background())
	e := &Entry{
		id:      id,
		spec:    spec,
		stats:   &GraphStats{},
		state:   StateBuilding,
		created: time.Now(),
		buildC:  buildC,
		cancel:  cancel,
		tel:     exec.NewTelemetry(),
		btr:     obs.NewTrace(rid),
	}
	e.btr.Annotate("kind", "build")
	e.btr.Annotate("graph", id)
	select {
	case r.queue <- e:
	default:
		return nil, ErrBuildQueueFull
	}
	r.entries[id] = e
	r.order = append(r.order, id)
	r.cfg.Obs.Event("build_queued", "rid", rid, "graph", id, "spec", spec.Gen+spec.File)
	return e, nil
}

// Get looks up an entry by id.
func (r *Registry) Get(id string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	return e, ok
}

// Delete evicts a graph: the entry leaves the registry immediately
// (no new lookups can reach it), a ready graph's executor is drained
// and closed, and an in-flight or queued build is canceled at its
// next round boundary and its output discarded — no partial state
// survives. Returns the entry's state at eviction time.
func (r *Registry) Delete(id string) (State, error) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	delete(r.entries, id)
	for i, oid := range r.order {
		if oid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.mu.Unlock()

	e.deleted.Store(true)
	if e.cancel != nil {
		e.cancel() // aborts a running build at its next checkpoint
	}
	e.mu.Lock()
	state := e.state
	ex := e.exec
	dyn := e.dyn
	e.mu.Unlock()
	if ex != nil {
		ex.Close()
	}
	if dyn != nil {
		dyn.Close() // cancels an in-flight overlay rebuild
	}
	// Evicting a graph also evicts its persisted snapshot: a deleted
	// graph must not resurrect on the next boot. The per-id lock
	// orders this after any in-flight write; a writer that acquires
	// the lock later finds the entry gone from the registry and skips.
	lock := r.snapLock(id)
	lock.Lock()
	r.removeSnapshot(id)
	lock.Unlock()
	// Evict the graph's cost rows too: /metrics should not grow one
	// stale label set per deleted graph for the process lifetime.
	// Same for its audit state; queued audit samples become no-ops.
	r.cfg.Obs.Account().Forget(id)
	r.aud.Forget(id)
	r.cfg.Obs.Event("graph_deleted", "graph", id, "state", string(state))
	return state, nil
}

// List snapshots all entries in registration order.
func (r *Registry) List() []Info {
	r.mu.RLock()
	ids := append([]string(nil), r.order...)
	entries := make([]*Entry, len(ids))
	for i, id := range ids {
		entries[i] = r.entries[id]
	}
	r.mu.RUnlock()
	out := make([]Info, len(entries))
	for i, e := range entries {
		out[i] = e.Info()
	}
	return out
}

// build loads/generates the graph, preprocesses the oracle on a
// cancelable execution context, and transitions the entry to
// ready/failed. Panics in the pipeline (e.g. malformed generator
// output) surface as build failures, not daemon crashes. A build
// whose entry was deleted mid-flight (DELETE /graphs/{id}) discards
// everything it produced: the aborted oracle never becomes reachable
// state.
func (r *Registry) build(e *Entry) {
	start := time.Now()
	r.cfg.Obs.Event("build_started", "rid", e.btr.ID(), "graph", e.id)
	fail := func(err error) {
		e.mu.Lock()
		e.state = StateFailed
		e.err = err.Error()
		e.buildMS = time.Since(start).Milliseconds()
		e.mu.Unlock()
		r.cfg.Obs.EventError("build_failed", err, "rid", e.btr.ID(), "graph", e.id,
			"build_ms", time.Since(start).Milliseconds())
		e.btr.Annotate("error", err.Error())
		r.cfg.Obs.Publish(e.btr.Finish())
	}
	// Build attribution: the build section runs under {graph, op}
	// pprof labels — on this goroutine directly, and on every pooled
	// helper through the exec context's Labels — and its CPU/alloc
	// deltas land in the cost accountant under (graph, "build").
	acct := r.cfg.Obs.Account()
	buildLbl := graphLabels(e.id, obs.OpBuild)
	ec := exec.New(exec.Options{
		Context:   e.buildC,
		Workers:   r.cfg.buildExecWorkers(),
		Telemetry: e.tel,
		Labels:    buildLbl,
		// Build stages double as trace spans: the same record exec
		// telemetry keeps lands on the build trace as it closes.
		OnStage: func(st exec.StageStats) {
			e.btr.SpanEnd(st.Name, time.Duration(st.WallMS*float64(time.Millisecond)))
		},
	})
	var g *graph.Graph
	var oracle *spanhop.DistanceOracle
	cs := acct.Begin()
	pprof.SetGoroutineLabels(buildLbl)
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("build panicked: %v", p)
			}
		}()
		stop := ec.Stage("load-graph", nil)
		if e.spec.File != "" {
			f, ferr := os.Open(e.spec.File)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			g, err = graph.ReadAuto(f)
			if err != nil {
				return err
			}
		} else {
			spec, perr := workload.ParseSpec(e.spec.Gen, e.spec.Seed)
			if perr != nil {
				return perr
			}
			g = spec.Gen()
		}
		stop()
		// The cost accumulator feeds the stage telemetry's work/depth
		// columns in /stats.
		oracle = spanhop.NewDistanceOracleOpts(g, e.spec.Eps, e.spec.Seed,
			spanhop.OracleOptions{
				Cost: spanhop.NewCost(),
				Exec: ec,
				// The query context's pooled helpers carry the graph
				// label (no op: one context serves both the coalesced
				// and the explicit batch surface), so profile samples
				// from query fan-out attribute to the graph.
				QueryExec: exec.New(exec.Options{
					Workers: r.cfg.queryExecWorkers(),
					Labels:  graphLabels(e.id, ""),
				}),
				Parallel: r.cfg.Parallel,
			})
		if cerr := ec.Err(); cerr != nil {
			return fmt.Errorf("build canceled: %w", cerr)
		}
		return nil
	}()
	pprof.SetGoroutineLabels(context.Background())
	acct.End(cs, e.id, obs.OpBuild, 1, err != nil)
	if err != nil || e.deleted.Load() {
		if err == nil {
			err = errors.New("graph deleted during build")
		}
		fail(err)
		return
	}
	// Every ready oracle serves through a dynamic overlay so the graph
	// can absorb live mutations; with an empty journal it delegates
	// straight to the static oracle.
	dyn := spanhop.NewDynamicOracle(oracle, r.graphRebuildPolicy(e.id))
	ex := newExecutor(dyn, r.cfg, e.stats)
	wl := obs.NewWorkload(r.cfg.workloadOptions())
	r.registerAudit(e.id, dyn)
	ex.instrument(e.id, wl, acct, r.aud)
	r.hookRebuild(e, dyn, ex)
	e.mu.Lock()
	e.dyn = dyn
	e.exec = ex
	e.workload = wl
	e.state = StateReady
	e.buildMS = time.Since(start).Milliseconds()
	e.mu.Unlock()
	// A DELETE racing the transition above: it either saw the
	// executor (and closed it) or we see the flag now and tear down.
	if e.deleted.Load() {
		ex.Close()
		dyn.Close()
		return
	}
	r.cfg.Obs.Event("build_ready", "rid", e.btr.ID(), "graph", e.id,
		"build_ms", time.Since(start).Milliseconds(),
		"n", g.NumVertices(), "m", g.NumEdges(), "hopset_edges", oracle.HopsetSize())
	e.btr.Annotate("n", g.NumVertices())
	e.btr.Annotate("m", g.NumEdges())
	r.cfg.Obs.Publish(e.btr.Finish())
	// Snapshot-on-ready: persist the freshly built oracle off the
	// build worker so the next boot warm-starts it. Failures are
	// recorded on the entry (surfaced via /stats), never fatal.
	// Tracked by snapWG so Close waits this writer out too.
	if r.cfg.SnapshotDir != "" {
		r.snapWG.Add(1)
		go func() {
			defer r.snapWG.Done()
			_, _ = r.snapshotEntry(e)
		}()
	}
}

// ForceRebuild synchronously folds a ready graph's pending journal
// into a fresh oracle (the POST /graphs/{id}/rebuild path), then
// flushes the executor cache and rewrites the snapshot.
func (r *Registry) ForceRebuild(ctx context.Context, id string) (*DynamicInfo, error) {
	e, ok := r.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	e.mu.Lock()
	state, dyn := e.state, e.dyn
	e.mu.Unlock()
	if state != StateReady || dyn == nil {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotReady, id, state)
	}
	// Cache invalidation and the snapshot rewrite ride on the
	// oracle's post-swap hook (hookRebuild), exactly as they do for a
	// policy-triggered background rebuild.
	if err := dyn.ForceRebuild(ctx); err != nil {
		// A DELETE racing the rebuild closes the scheduler; that is
		// "graph gone", not an internal error. Registry shutdown maps
		// to the usual 503, and everything else (a failed build) is a
		// server-side failure, never the client's 400.
		if e.deleted.Load() {
			return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
		}
		if r.isClosed() {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("%w: %v", ErrRebuildFailed, err)
	}
	if e.deleted.Load() {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	return dynamicInfo(dyn), nil
}

// graphLabels builds a prebuilt pprof label context identifying one
// graph (and optionally one operation). Built once per graph at
// publish time — applying a prebuilt context is allocation-free, so
// the hot paths never pay for label construction.
func graphLabels(id, op string) context.Context {
	if op == "" {
		return pprof.WithLabels(context.Background(), pprof.Labels("graph", id))
	}
	return pprof.WithLabels(context.Background(), pprof.Labels("graph", id, "op", op))
}

// graphRebuildPolicy is the configured rebuild policy specialized to
// one graph: overlay rebuilds run their pooled build helpers under the
// graph's {graph, op=rebuild} profiler labels.
func (r *Registry) graphRebuildPolicy(id string) spanhop.RebuildPolicy {
	pol := r.cfg.rebuildPolicy()
	pol.Labels = graphLabels(id, obs.OpRebuild)
	return pol
}

// hookRebuild wires an entry's rebuild-swap hook: whenever the
// overlay scheduler swaps in a freshly rebuilt oracle (background or
// forced), the executor's result cache is flushed — cached answers
// are bound-correct for the mutated graph but may differ from the
// rebuilt oracle's canonical answers — and the snapshot is rewritten
// so the compacted state (not the journal) persists.
func (r *Registry) hookRebuild(e *Entry, dyn *spanhop.DynamicOracle, ex *Executor) {
	dyn.SetRebuildObserver(func(ev spanhop.RebuildEvent) {
		switch ev.Kind {
		case "start":
			r.cfg.Obs.Event("rebuild_triggered", "graph", e.id,
				"cause", ev.Cause, "generation", ev.Gen)
		case "swap":
			r.cfg.Obs.Event("rebuild_swapped", "graph", e.id,
				"cause", ev.Cause, "generation", ev.Gen,
				"rebuild_ms", ev.Dur.Milliseconds())
			if ev.Compacted > 0 {
				r.cfg.Obs.Event("journal_compacted", "graph", e.id,
					"entries", ev.Compacted, "generation", ev.Gen)
			}
		case "fail":
			r.cfg.Obs.EventError("rebuild_failed", ev.Err, "graph", e.id,
				"cause", ev.Cause, "generation", ev.Gen,
				"rebuild_ms", ev.Dur.Milliseconds())
		}
	})
	dyn.SetOnRebuild(func() {
		ex.flushCache()
		r.scheduleSnapshot(e)
	})
	// Rebuild attribution: the scheduler's build step runs under the
	// graph's {graph, op=rebuild} labels (this goroutine here; pooled
	// helpers via the policy's label context) and is measured into the
	// accountant under (graph, "rebuild").
	acct := r.cfg.Obs.Account()
	rlbl := graphLabels(e.id, obs.OpRebuild)
	dyn.SetRebuildInstrument(func(cause string, do func() error) {
		pprof.SetGoroutineLabels(rlbl)
		defer pprof.SetGoroutineLabels(context.Background())
		_ = acct.Measure(e.id, obs.OpRebuild, do)
	})
}

// validName keeps ids routable: the mux pattern /graphs/{id} matches
// one path segment, so a name with "/" (or URL-hostile bytes) would
// register a graph no request can ever reach. Empty is fine — it
// means auto-assign.
func validName(name string) bool {
	if name == "" {
		return true
	}
	if len(name) > 64 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func (r *Registry) isClosed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}

// Close stops accepting registrations, cancels in-flight builds at
// their next round boundary (queued-but-unstarted ones are marked
// failed instead of built), and shuts down every executor. Safe to
// call more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.snapStop) // flush debounced snapshot writers now
	entries := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	// Abort in-flight builds: shutdown should not wait out a large
	// preprocess nobody will ever query.
	for _, e := range entries {
		e.mu.Lock()
		building := e.state == StateBuilding
		e.mu.Unlock()
		if building && e.cancel != nil {
			e.cancel()
		}
	}
	close(r.queue)
	r.wg.Wait()
	for _, e := range entries {
		e.mu.Lock()
		ex := e.exec
		dyn := e.dyn
		if e.state == StateBuilding {
			e.state = StateFailed
			e.err = "server shut down before build started"
		}
		e.mu.Unlock()
		if ex != nil {
			ex.Close()
		}
		if dyn != nil {
			dyn.Close()
		}
	}
	// Wait out the flushed snapshot writers: after Close returns,
	// nothing touches the snapshot directory.
	r.snapWG.Wait()
	// Stop the audit workers last: executors are closed, so no new
	// samples arrive; whatever is still queued is abandoned.
	r.aud.Close()
}

// registerAudit installs a ready graph's exact-recheck hook and
// stretch envelope into the answer auditor. The recheck pins the
// sampled generation through the dynamic overlay's patched
// bidirectional Dijkstra — ground truth, no hopset on any path — and
// maps a generation compacted away by a rebuild to obs.ErrAuditStale
// (a counted skip, never a violation). Runs before the executor is
// instrumented so the first sampled query already finds the graph
// registered.
func (r *Registry) registerAudit(id string, dyn *spanhop.DynamicOracle) {
	lo, hi := dyn.StretchEnvelope()
	r.aud.Register(id, obs.Envelope{Lo: lo, Hi: hi},
		func(gen uint64, s, t int32) (int64, bool, error) {
			d, err := dyn.ExactDistanceAt(gen, graph.V(s), graph.V(t))
			if err != nil {
				if errors.Is(err, spanhop.ErrCompactedGen) {
					return 0, false, obs.ErrAuditStale
				}
				return 0, false, err
			}
			return int64(d), d >= graph.InfDist, nil
		})
}

// ApplyUpdates applies a mutation batch to a ready graph's dynamic
// overlay: validates and commits atomically, flushes the executor's
// result cache (cached answers predate the new generation), notifies
// the rebuild scheduler, and — with persistence on — rewrites the
// snapshot in the background so a restart replays the journal.
// Returns the batch's final generation and the overlay state.
func (r *Registry) ApplyUpdates(id string, us []spanhop.DynamicUpdate) (uint64, *DynamicInfo, error) {
	e, ok := r.Get(id)
	if !ok {
		return 0, nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	e.mu.Lock()
	state, dyn, ex, wl := e.state, e.dyn, e.exec, e.workload
	e.mu.Unlock()
	if state != StateReady || dyn == nil {
		return 0, nil, fmt.Errorf("%w: %s is %s", ErrNotReady, id, state)
	}
	mstart := time.Now()
	gen, err := dyn.ApplyUpdates(us)
	wl.RecordOp(obs.OpMutate, len(us), time.Since(mstart), err != nil)
	if err != nil {
		return 0, nil, err
	}
	// A DELETE racing this apply: the mutation landed in an overlay
	// nothing can reach anymore, so report the graph gone rather than
	// ack a write the caller would believe durable. (The snapshot
	// writer stands down on deleted entries regardless.)
	if e.deleted.Load() {
		return 0, nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	ex.flushCache()
	e.stats.mutationBatches.Add(1)
	e.stats.mutations.Add(int64(len(us)))
	r.scheduleSnapshot(e)
	return gen, dynamicInfo(dyn), nil
}

// snapshotDebounce is how long a mutation-triggered background
// snapshot rewrite waits before writing, so a stream of mutation
// batches coalesces into one full-file rewrite instead of one per
// batch. Restart durability within the window is not at risk of
// serving wrong data — a lost journal suffix just reverts those
// mutations — and POST /graphs/{id}/snapshot remains the synchronous
// escape hatch.
const snapshotDebounce = 500 * time.Millisecond

// scheduleSnapshot coalesces background snapshot rewrites: at most
// one debounced writer per entry is in flight; mutations landing
// inside the window ride along with it (the flag clears before the
// write, so anything later schedules anew). Close flushes pending
// writers early and waits for them, so an acked mutation followed by
// a graceful shutdown still reaches disk and no writer runs after
// Close returns.
func (r *Registry) scheduleSnapshot(e *Entry) {
	if r.cfg.SnapshotDir == "" {
		return
	}
	// The closed-check and the WaitGroup Add must be atomic with
	// respect to Close (which sets closed under r.mu and then waits):
	// an Add after Close's Wait started would be a WaitGroup misuse
	// and an escaped writer.
	r.mu.RLock()
	if r.closed || !e.snapPend.CompareAndSwap(false, true) {
		r.mu.RUnlock()
		return
	}
	r.snapWG.Add(1)
	r.mu.RUnlock()
	go func() {
		defer r.snapWG.Done()
		select {
		case <-time.After(snapshotDebounce):
		case <-r.snapStop: // shutdown: flush now instead of dropping
		}
		e.snapPend.Store(false)
		_, _ = r.snapshotEntry(e)
	}()
}
