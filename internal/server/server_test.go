package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	spanhop "repro"
	"repro/internal/graph"
	"repro/internal/workload"
)

// httpJSON runs one request and decodes the JSON response into out
// (out may be nil).
func httpJSON(t *testing.T, ts *httptest.Server, method, path string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// waitReady polls GET /graphs/{id} until the build finishes.
func waitReady(t *testing.T, ts *httptest.Server, id string) Info {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var info Info
		if code := httpJSON(t, ts, "GET", "/graphs/"+id, nil, &info); code != http.StatusOK {
			t.Fatalf("GET /graphs/%s = %d", id, code)
		}
		switch info.State {
		case StateReady:
			return info
		case StateFailed:
			t.Fatalf("build of %s failed: %s", id, info.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s not ready after 30s", id)
	return Info{}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func TestHTTPEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	const gen = "er:n=150,d=4,w=uniform,maxw=30"
	const eps, seed = 0.3, 11

	var created Info
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "main", Gen: gen, Eps: eps, Seed: seed}, &created)
	if code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	if created.ID != "main" || created.State != StateBuilding {
		t.Fatalf("created = %+v", created)
	}
	info := waitReady(t, ts, "main")
	if info.N != 150 || !info.Weighted || info.HopsetEdges == 0 {
		t.Fatalf("ready info = %+v", info)
	}

	// The serving answers must match a locally rebuilt oracle
	// bit-for-bit: generation and preprocessing are deterministic in
	// (gen, seed, eps).
	spec, err := workload.ParseSpec(gen, seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle := spanhop.NewDistanceOracle(spec.Gen(), eps, seed)

	for _, p := range [][2]graph.V{{0, 149}, {5, 5}, {42, 17}} {
		var got queryResult
		code := httpJSON(t, ts, "POST", "/graphs/main/query",
			map[string]any{"s": p[0], "t": p[1]}, &got)
		if code != http.StatusOK {
			t.Fatalf("query %v = %d", p, code)
		}
		want, err := oracle.QueryStats(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		wantRes := toResult(p[0], p[1], want)
		if got != wantRes {
			t.Fatalf("query %v = %+v, want %+v", p, got, wantRes)
		}
	}

	// Explicit batch.
	var batch struct {
		Results []queryResult `json:"results"`
	}
	pairs := [][2]graph.V{{1, 2}, {3, 4}, {5, 6}}
	code = httpJSON(t, ts, "POST", "/graphs/main/query",
		map[string]any{"pairs": pairs}, &batch)
	if code != http.StatusOK || len(batch.Results) != 3 {
		t.Fatalf("batch = %d, %d results", code, len(batch.Results))
	}
	for i, p := range pairs {
		want, _ := oracle.QueryStats(p[0], p[1])
		if batch.Results[i] != toResult(p[0], p[1], want) {
			t.Fatalf("batch[%d] = %+v", i, batch.Results[i])
		}
	}

	// Listing, health, stats.
	var list struct {
		Graphs []Info `json:"graphs"`
	}
	if code := httpJSON(t, ts, "GET", "/graphs", nil, &list); code != http.StatusOK || len(list.Graphs) != 1 {
		t.Fatalf("list = %d, %+v", code, list)
	}
	var health map[string]any
	if code := httpJSON(t, ts, "GET", "/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if health["ok"] != true || health["ready"] != float64(1) {
		t.Fatalf("healthz = %+v", health)
	}
	var stats struct {
		Graphs map[string]graphStats `json:"graphs"`
	}
	if code := httpJSON(t, ts, "GET", "/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	gs, ok := stats.Graphs["main"]
	if !ok || gs.State != StateReady {
		t.Fatalf("stats = %+v", stats)
	}
	if gs.Requests != 3 || gs.BatchCalls != 1 || gs.BatchCallQueries != 3 {
		t.Fatalf("stats counters = %+v", gs.StatsSnapshot)
	}
}

func TestHTTPErrors(t *testing.T) {
	s, ts := newTestServer(t)

	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"GET", "/graphs/nope", nil, http.StatusNotFound},
		{"POST", "/graphs/nope/query", map[string]any{"s": 0, "t": 1}, http.StatusNotFound},
		{"POST", "/graphs", map[string]any{"gen": "bogus"}, http.StatusBadRequest},
		{"POST", "/graphs", map[string]any{"gen": "er", "file": "x"}, http.StatusBadRequest},
		{"POST", "/graphs", map[string]any{"gen": "er", "eps": 2.0}, http.StatusBadRequest},
		{"POST", "/graphs", map[string]any{"unknown_field": 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code := httpJSON(t, ts, c.method, c.path, c.body, nil); code != c.want {
			t.Fatalf("%s %s = %d, want %d", c.method, c.path, code, c.want)
		}
	}

	// Register a real graph for the body-shape and readiness cases.
	if code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "g", Gen: "er:n=80,d=3"}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /graphs = %d", code)
	}
	waitReady(t, ts, "g")
	badBodies := []any{
		map[string]any{},       // neither shape
		map[string]any{"s": 1}, // half a pair
		map[string]any{"s": 1, "t": 2, "pairs": [][2]int{{1, 2}}}, // both shapes
		map[string]any{"s": 1, "t": 900},                          // out of range
	}
	for i, b := range badBodies {
		if code := httpJSON(t, ts, "POST", "/graphs/g/query", b, nil); code != http.StatusBadRequest {
			t.Fatalf("bad body %d = %d, want 400", i, code)
		}
	}

	// Duplicate name → 409.
	if code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "g", Gen: "er:n=80,d=3"}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate name = %d, want 409", code)
	}

	// Querying a graph stuck in building → 409 (white-box: an entry
	// registered but never handed to a worker).
	s.reg.mu.Lock()
	s.reg.entries["stuck"] = &Entry{id: "stuck", stats: &GraphStats{}, state: StateBuilding}
	s.reg.order = append(s.reg.order, "stuck")
	s.reg.mu.Unlock()
	var errBody errorBody
	if code := httpJSON(t, ts, "POST", "/graphs/stuck/query",
		map[string]any{"s": 0, "t": 1}, &errBody); code != http.StatusConflict {
		t.Fatalf("building query = %d, want 409", code)
	}
	if errBody.Error == "" {
		t.Fatal("409 without an error body")
	}
}

// TestHTTPBuildFailureSurfaced: the failed lifecycle state and its
// cause must be visible over the API, and queries against it must be
// rejected with the cause attached.
func TestHTTPBuildFailureSurfaced(t *testing.T) {
	_, ts := newTestServer(t)
	if code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "broken", File: "/nonexistent/g.txt"}, nil); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	var info Info
	for time.Now().Before(deadline) {
		httpJSON(t, ts, "GET", "/graphs/broken", nil, &info)
		if info.State == StateFailed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info.State != StateFailed || info.Error == "" {
		t.Fatalf("info = %+v, want failed with cause", info)
	}
	var errBody errorBody
	if code := httpJSON(t, ts, "POST", "/graphs/broken/query",
		map[string]any{"s": 0, "t": 1}, &errBody); code != http.StatusConflict {
		t.Fatalf("query on failed graph = %d, want 409", code)
	}
	if errBody.Error == "" || !bytes.Contains([]byte(errBody.Error), []byte("failed")) {
		t.Fatalf("error body %q does not surface the failure", errBody.Error)
	}
}

// TestHTTPConcurrentSingleQueries hammers one graph over real HTTP
// with concurrent single queries and asserts (a) every answer matches
// the serial oracle and (b) the /stats mean batch size shows
// coalescing — the acceptance criterion observed end to end.
func TestHTTPConcurrentSingleQueries(t *testing.T) {
	s := New(Config{BatchWindow: 5 * time.Millisecond, CacheSize: -1})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	const gen, eps, seed = "grid:side=12,w=uniform,maxw=20", 0.3, 4
	if code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "grid", Gen: gen, Eps: eps, Seed: seed}, nil); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	info := waitReady(t, ts, "grid")

	spec, err := workload.ParseSpec(gen, seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle := spanhop.NewDistanceOracle(spec.Gen(), eps, seed)

	const workers = 8
	const perWorker = 10
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			mix := workload.UniformMix(info.N, uint64(1000+w))
			for i := 0; i < perWorker; i++ {
				p := mix.Next()
				var got queryResult
				code := httpJSON(t, ts, "POST", "/graphs/grid/query",
					map[string]any{"s": p[0], "t": p[1]}, &got)
				if code != http.StatusOK {
					errc <- fmt.Errorf("query %v = %d", p, code)
					return
				}
				want, err := oracle.QueryStats(p[0], p[1])
				if err != nil {
					errc <- err
					return
				}
				if got != toResult(p[0], p[1], want) {
					errc <- fmt.Errorf("query %v = %+v, want %+v", p, got, want)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	var stats struct {
		Graphs map[string]graphStats `json:"graphs"`
	}
	httpJSON(t, ts, "GET", "/stats", nil, &stats)
	gs := stats.Graphs["grid"]
	if gs.Requests != workers*perWorker {
		t.Fatalf("requests = %d, want %d", gs.Requests, workers*perWorker)
	}
	if gs.Batches == 0 || gs.MeanBatchSize <= 1 {
		t.Fatalf("no observable coalescing: %d batches, mean %.2f",
			gs.Batches, gs.MeanBatchSize)
	}
}
