package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	rpprof "runtime/pprof"
	"strconv"
	"time"

	spanhop "repro"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Config tunes the serving subsystem. Zero values take defaults.
type Config struct {
	// BuildWorkers is the number of concurrent oracle builds;
	// BuildQueue bounds how many registrations may wait behind them.
	BuildWorkers int
	BuildQueue   int
	// Workers caps the execution context each oracle build runs on:
	// 1 forces the sequential reference construction, n > 1 runs the
	// multicore construction on at most n pooled workers, and 0 defers
	// to the deprecated Parallel bool (Parallel ? GOMAXPROCS : 1).
	// Every build is cancelable (DELETE /graphs/{id}) and arena-backed
	// regardless of the cap.
	Workers int
	// Parallel builds oracles with the machine-parallel construction
	// (goroutine hot loops).
	//
	// Deprecated: set Workers instead; Parallel is Workers=GOMAXPROCS.
	Parallel bool

	// BatchWindow is how long a micro-batch stays open after its
	// first query; MaxBatch closes it early.
	BatchWindow time.Duration
	MaxBatch    int
	// QueryWorkers bounds concurrent QueryBatch executions per graph;
	// QueryQueue bounds waiting single queries (overflow is a typed
	// 503, the backpressure contract).
	QueryWorkers int
	QueryQueue   int
	// CacheSize is the per-graph LRU result-cache capacity
	// ((s,t) → QueryStats); 0 takes the default, negative disables.
	CacheSize int

	// SnapshotDir enables oracle snapshot persistence: every oracle
	// that becomes ready is written there as a self-contained snapshot
	// (atomic rename; spec, graph, oracle, and any pending mutation
	// journal in one file), WarmStart restores the directory's
	// snapshots as ready graphs on boot without rebuilding (replaying
	// the journal), and DELETE /graphs/{id} removes the file. Empty
	// disables persistence.
	SnapshotDir string
	// SnapshotFormat picks the on-disk snapshot encoding:
	// SnapshotFormatFlat (the default) writes the v3 flat arena, which
	// WarmStart restores by memory mapping instead of decoding;
	// SnapshotFormatCodec writes the portable v2 streaming codec.
	// WarmStart always accepts both — the format is sniffed per file —
	// so switching formats across restarts needs no migration.
	SnapshotFormat string

	// Rebuild policy for the dynamic-update overlay: a background
	// rebuild of a graph's oracle triggers once RebuildMaxJournal
	// mutations are pending (default 256), once the overlay diverges
	// on more than RebuildMaxPatchFraction of the base edges (default
	// 0.10), or once the oldest pending mutation is older than
	// RebuildMaxStaleness (default: disabled). Negative values disable
	// a trigger. Rebuilds run on the build worker cap (Workers) and
	// are canceled by DELETE and shutdown.
	RebuildMaxJournal       int
	RebuildMaxPatchFraction float64
	RebuildMaxStaleness     time.Duration

	// Obs is the observability sink shared by the HTTP edge, the
	// registry, and the executors: structured logs, lifecycle event
	// counters (surfaced in /metrics), the recent-trace ring behind
	// /debug/traces, server-side trace sampling, and the slow-query
	// log. nil takes a quiet default (discarded logs, tracing only on
	// client request) so library callers and tests need no wiring.
	Obs *obs.Observer

	// WorkloadTopK is the capacity of each graph's heavy-hitter sketch
	// over (s, t) query pairs, surfaced at GET /debug/workload
	// (0 = obs.DefaultTopK).
	WorkloadTopK int
	// SLOTarget is the per-graph query latency objective: a query
	// counts as good when it succeeds within SLOTarget. 0 disables SLO
	// tracking entirely. SLOObjective is the required good fraction
	// (default 0.99).
	SLOTarget    time.Duration
	SLOObjective float64

	// ProfileDir enables continuous profiling: a background collector
	// periodically captures CPU and heap profiles into a bounded
	// on-disk ring there, served at GET /debug/profiles/. Empty
	// disables. ProfileInterval is the capture period (default 1m);
	// ProfileKeep bounds how many files are kept per profile kind
	// (default 16).
	ProfileDir      string
	ProfileInterval time.Duration
	ProfileKeep     int

	// AuditSample drives continuous answer-quality auditing: every Nth
	// served query is shadow-sampled and re-checked in the background
	// against an exact recomputation at the generation it was served
	// from, with envelope violations alarmed at /debug/quality and in
	// /metrics. Traced requests are always audited regardless of the
	// stride. 0 takes the default (obs.DefaultAuditSample), negative
	// disables rate-based sampling (traced requests still audit).
	AuditSample int
	// AuditCPUFrac caps cumulative per-graph audit CPU at this
	// fraction of wall time since the graph became ready, so auditing
	// can never starve serving. 0 takes the default
	// (obs.DefaultAuditCPUFrac), negative removes the cap.
	AuditCPUFrac float64
}

// workloadOptions resolves the per-graph workload analytics options.
func (c Config) workloadOptions() obs.WorkloadOptions {
	return obs.WorkloadOptions{
		TopK:         c.WorkloadTopK,
		SLOTarget:    c.SLOTarget,
		SLOObjective: c.SLOObjective,
	}
}

// Snapshot format names for Config.SnapshotFormat.
const (
	// SnapshotFormatFlat is the v3 flat-arena format: mmap-restored on
	// warm start, host-endianness, every section checksummed.
	SnapshotFormatFlat = "flat"
	// SnapshotFormatCodec is the v2 streaming codec: portable across
	// machines, decoded (not mapped) on warm start.
	SnapshotFormatCodec = "codec"
)

// snapshotFlat reports whether snapshot writes use the flat-arena
// format (empty defaults to flat; withDefaults rejected anything else).
func (c Config) snapshotFlat() bool {
	return c.SnapshotFormat != SnapshotFormatCodec
}

// rebuildPolicy resolves the dynamic-overlay scheduler policy.
func (c Config) rebuildPolicy() spanhop.RebuildPolicy {
	return spanhop.RebuildPolicy{
		MaxJournal:       c.RebuildMaxJournal,
		MaxPatchFraction: c.RebuildMaxPatchFraction,
		MaxStaleness:     c.RebuildMaxStaleness,
		Workers:          c.buildExecWorkers(),
	}
}

func (c Config) withDefaults() Config {
	if c.BuildWorkers <= 0 {
		c.BuildWorkers = 1
	}
	if c.BuildQueue <= 0 {
		c.BuildQueue = 16
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueryQueue <= 0 {
		c.QueryQueue = 1024
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.Obs == nil {
		c.Obs = obs.New(obs.Options{})
	}
	switch c.SnapshotFormat {
	case "":
		c.SnapshotFormat = SnapshotFormatFlat
	case SnapshotFormatFlat, SnapshotFormatCodec:
	default:
		// A typo'd format silently picking a default would surprise the
		// operator on the next warm start; fail loudly at construction.
		panic(fmt.Sprintf("server: SnapshotFormat %q, want %q or %q",
			c.SnapshotFormat, SnapshotFormatFlat, SnapshotFormatCodec))
	}
	return c
}

// buildExecWorkers resolves the worker cap of build execution
// contexts: an explicit Workers wins; otherwise the deprecated
// Parallel bool maps to GOMAXPROCS (0) or the sequential reference
// build (1).
func (c Config) buildExecWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if c.Parallel {
		return 0
	}
	return 1
}

// queryExecWorkers resolves the worker cap of the per-oracle query
// context. Queries default to full parallelism — the executor's
// QueryWorkers already bounds concurrent batches — unless the
// operator explicitly capped Workers.
func (c Config) queryExecWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 0
}

// Server is the HTTP face of the registry + executors.
//
//	POST   /graphs              register a graph (GraphSpec JSON) → 202
//	GET    /graphs              list entries
//	GET    /graphs/{id}         one entry
//	DELETE /graphs/{id}         evict a graph; aborts an in-flight build
//	POST   /graphs/{id}/query   {"s":..,"t":..} or {"pairs":[[s,t],..]}
//	POST   /graphs/{id}/edges   apply mutations: {"updates":[{"op":..},..]}
//	DELETE /graphs/{id}/edges   delete edges: {"edges":[[u,v],..]}
//	POST   /graphs/{id}/rebuild force a synchronous overlay rebuild
//	POST   /graphs/{id}/snapshot force a snapshot write (persistence on)
//	GET    /healthz             liveness + entry counts
//	GET    /metrics             Prometheus plain-text exposition
//	GET    /stats               per-graph serving counters + build stages
//	                            + snapshot size/age + overlay generation
type Server struct {
	cfg   Config
	reg   *Registry
	mux   *http.ServeMux
	prof  *obs.Profiler
	start time.Time
}

// New builds a Server and its registry.
func New(cfg Config) *Server {
	// Resolve defaults once so the registry, the executors, and the
	// HTTP edge share one Observer (one trace ring, one event set).
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   NewRegistry(cfg),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /graphs", s.handleAddGraph)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /graphs/{id}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /graphs/{id}", s.handleDeleteGraph)
	s.mux.HandleFunc("POST /graphs/{id}/query", s.handleQuery)
	s.mux.HandleFunc("POST /graphs/{id}/edges", s.handleApplyEdges)
	s.mux.HandleFunc("DELETE /graphs/{id}/edges", s.handleDeleteEdges)
	s.mux.HandleFunc("POST /graphs/{id}/rebuild", s.handleRebuild)
	s.mux.HandleFunc("POST /graphs/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/workload", s.handleWorkload)
	s.mux.HandleFunc("GET /debug/quality", s.handleQuality)
	s.mux.HandleFunc("GET /debug/profiles/{name...}", s.handleProfiles)
	// net/http/pprof registers on DefaultServeMux; this server runs its
	// own mux, so route the profile surface explicitly.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Continuous profiling: failures to set up the ring directory
	// degrade to "no profiler" with a logged event, never a dead
	// server — the serving path does not depend on it.
	if cfg.ProfileDir != "" {
		prof, err := obs.NewProfiler(obs.ProfilerOptions{
			Dir:      cfg.ProfileDir,
			Interval: cfg.ProfileInterval,
			Keep:     cfg.ProfileKeep,
			Log:      cfg.Obs.Log(),
		})
		if err != nil {
			cfg.Obs.EventError("profiler_failed", err, "dir", cfg.ProfileDir)
		} else {
			s.prof = prof
			prof.Start()
			cfg.Obs.Event("profiler_started", "dir", cfg.ProfileDir,
				"interval_ms", profInterval(cfg).Milliseconds())
		}
	}
	return s
}

// profInterval resolves the effective capture period (for the startup
// event only; the profiler resolves its own defaults).
func profInterval(cfg Config) time.Duration {
	if cfg.ProfileInterval > 0 {
		return cfg.ProfileInterval
	}
	return obs.DefaultProfileInterval
}

// Handler returns the routing handler wrapped with the observability
// edge (plug into http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.edge(s.mux) }

// edge is the outermost middleware: it mints the request ID every
// layer below logs and traces under, stamps it into the context, and
// echoes it in the X-Spanhop-Request response header.
func (s *Server) edge(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := obs.NextRequestID()
		w.Header().Set("X-Spanhop-Request", rid)
		next.ServeHTTP(w, r.WithContext(obs.WithRequestID(r.Context(), rid)))
	})
}

// Registry exposes the graph registry (preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Close shuts down builds and executors. In-flight HTTP requests get
// typed shutdown errors; the HTTP listener itself is the caller's to
// drain (http.Server.Shutdown first, then Close).
func (s *Server) Close() {
	s.prof.Stop()
	s.reg.Close()
}

// ---------------------------------------------------------------------------
// JSON plumbing.

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// statusFor maps typed subsystem errors to HTTP codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, ErrNotReady):
		return http.StatusConflict
	case errors.Is(err, ErrDuplicateName):
		return http.StatusConflict
	case errors.Is(err, ErrBuildQueueFull), errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrRebuildFailed):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// ---------------------------------------------------------------------------
// Handlers.

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, err := s.reg.AddCtx(r.Context(), spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, e.Info())
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownGraph)
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	state, err := s.reg.Delete(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      id,
		"deleted": true,
		// The lifecycle state at eviction: "ready" graphs were
		// drained, "building" ones had their build aborted.
		"state": state,
	})
}

// queryRequest accepts a single query or an explicit batch.
type queryRequest struct {
	S     *graph.V     `json:"s,omitempty"`
	T     *graph.V     `json:"t,omitempty"`
	Pairs [][2]graph.V `json:"pairs,omitempty"`
}

// queryResult is one answer. Unreachable pairs report
// unreachable=true with dist omitted, so clients never have to
// compare against the InfDist sentinel.
type queryResult struct {
	S           graph.V    `json:"s"`
	T           graph.V    `json:"t"`
	Dist        graph.Dist `json:"dist"`
	Unreachable bool       `json:"unreachable,omitempty"`
	Levels      int64      `json:"levels"`
	Fallback    bool       `json:"fallback,omitempty"`
}

func toResult(s, t graph.V, st spanhop.QueryStats) queryResult {
	res := queryResult{S: s, T: t, Dist: st.Dist, Levels: st.Levels, Fallback: st.Fallback}
	if st.Dist == graph.InfDist {
		res.Dist = 0
		res.Unreachable = true
	}
	return res
}

// queryError maps an executor failure to an HTTP response. A query
// that raced a DELETE can observe the executor's shutdown (ErrClosed)
// even though the graph is simply gone: report the clean 404 the
// post-delete state deserves, never a confusing 503 — and because
// batches are all-or-error, a caller either gets every answer or that
// 404, never a partial batch.
func (s *Server) queryError(w http.ResponseWriter, e *Entry, err error) {
	if errors.Is(err, ErrClosed) && e.deleted.Load() {
		writeError(w, http.StatusNotFound, ErrUnknownGraph)
		return
	}
	writeError(w, statusFor(err), err)
}

// TraceHeader is the request header that asks for a traced query (any
// non-empty value) and the response header carrying the finished
// trace as compact JSON.
const TraceHeader = "X-Spanhop-Trace"

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownGraph)
		return
	}
	exec, err := e.executor()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	// A query is traced when the client asks (header) or the
	// server-side sampler elects it; everyone else carries a nil
	// trace, whose every touch below is a no-op.
	ctx := r.Context()
	var tr *obs.Trace
	echo := r.Header.Get(TraceHeader) != ""
	if echo || s.cfg.Obs.Sample() {
		tr = obs.NewTrace(obs.RequestID(ctx))
		tr.Annotate("graph", id)
		ctx = obs.WithTrace(ctx, tr)
		// Traced requests additionally run their handler section under
		// {graph, rid} profiler labels, so a CPU sample taken while an
		// elected request decodes, waits, or writes its response is
		// attributable to that exact request. The label context rides
		// in ctx, so the executor's compute-section labels restore it
		// on the way out. Untraced requests skip this — labels per
		// request would cost an allocation on the hot path.
		lctx := rpprof.WithLabels(ctx, rpprof.Labels("graph", id, "rid", obs.RequestID(ctx)))
		rpprof.SetGoroutineLabels(lctx)
		defer rpprof.SetGoroutineLabels(context.Background())
		ctx = lctx
	}
	start := time.Now()
	endDecode := tr.StartSpan("decode")
	var q queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		endDecode()
		s.finishQueryTrace(w, tr, echo, start, id, err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	endDecode()
	switch {
	case q.Pairs != nil:
		if q.S != nil || q.T != nil {
			writeError(w, http.StatusBadRequest,
				errors.New("server: give either s/t or pairs, not both"))
			return
		}
		res, err := exec.Batch(ctx, q.Pairs)
		s.finishQueryTrace(w, tr, echo, start, id, err)
		if err != nil {
			s.queryError(w, e, err)
			return
		}
		out := make([]queryResult, len(res))
		for i, st := range res {
			out[i] = toResult(q.Pairs[i][0], q.Pairs[i][1], st)
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": out})
	case q.S != nil && q.T != nil:
		st, err := exec.Query(ctx, *q.S, *q.T)
		s.finishQueryTrace(w, tr, echo, start, id, err)
		if err != nil {
			s.queryError(w, e, err)
			return
		}
		writeJSON(w, http.StatusOK, toResult(*q.S, *q.T, st))
	default:
		writeError(w, http.StatusBadRequest,
			errors.New(`server: body needs {"s":..,"t":..} or {"pairs":[[s,t],..]}`))
	}
}

// finishQueryTrace closes out one query's observability: the trace is
// finished (before the response body is written, so it can ride the
// response header), filed into the ring, and the slow-query log fires
// when the latency crosses the threshold — traced or not.
func (s *Server) finishQueryTrace(w http.ResponseWriter, tr *obs.Trace, echo bool, start time.Time, id string, qerr error) {
	lat := time.Since(start)
	var td obs.TraceData
	if tr != nil {
		if qerr != nil {
			tr.Annotate("error", qerr.Error())
		}
		td = tr.Finish()
		if echo {
			if b, err := json.Marshal(td); err == nil {
				w.Header().Set(TraceHeader, string(b))
			}
		}
		s.cfg.Obs.Publish(td)
	}
	if s.cfg.Obs.SlowQuery(lat) {
		rid := td.ID
		if rid == "" {
			// Untraced slow query: the edge middleware echoed the ID
			// in the response header already minted for this request.
			rid = w.Header().Get("X-Spanhop-Request")
		}
		args := []any{"rid", rid, "graph", id, "latency_ms", float64(lat.Microseconds()) / 1000}
		if tr != nil {
			args = append(args, "spans", td.SpanSummary(), "attrs", td.Attrs)
		}
		if qerr != nil {
			args = append(args, "err", qerr)
		}
		s.cfg.Obs.Log().Warn("slow query", args...)
	}
}

// handleTraces serves the recent-trace ring, newest first:
// GET /debug/traces. Query parameters narrow and reshape the dump:
// ?graph={id} keeps only traces annotated with that graph, ?min_ms={f}
// keeps only traces at least that long (triaging: "show me the slow
// ones on g1"), and ?format=chrome renders the selection as a Chrome
// trace-event document loadable by chrome://tracing and Perfetto.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	minUS := 0.0
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("server: min_ms %q, want a non-negative number", v))
			return
		}
		minUS = ms * 1000
	}
	graphF := q.Get("graph")
	format := q.Get("format")
	if format != "" && format != "json" && format != "chrome" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("server: format %q, want json or chrome", format))
		return
	}
	traces := s.cfg.Obs.Traces().Snapshot()
	kept := make([]obs.TraceData, 0, len(traces))
	for _, td := range traces {
		if td.TotalUS < minUS {
			continue
		}
		if graphF != "" {
			g, _ := td.Attrs["graph"].(string)
			if g != graphF {
				continue
			}
		}
		kept = append(kept, td)
	}
	if format == "chrome" {
		doc, err := obs.ChromeTrace(kept)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(doc)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(kept),
		"traces": kept,
	})
}

// handleWorkload serves the per-graph workload analytics:
// GET /debug/workload → {"graphs": {id: {top_pairs, ops, slo}}}.
// ?graph={id} narrows to one graph, ?k={n} bounds the reported heavy
// hitters (default 32, 0 = the full sketch).
func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	k := 32
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("server: k %q, want a non-negative integer", v))
			return
		}
		k = n
	}
	graphF := q.Get("graph")
	out := map[string]obs.WorkloadSnapshot{}
	for _, info := range s.reg.List() {
		if graphF != "" && info.ID != graphF {
			continue
		}
		e, ok := s.reg.Get(info.ID)
		if !ok {
			continue
		}
		wl := e.Workload()
		if wl == nil {
			continue // not ready yet: no analytics to report
		}
		out[info.ID] = wl.Snapshot(k)
	}
	if graphF != "" && len(out) == 0 {
		writeError(w, http.StatusNotFound, ErrUnknownGraph)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"graphs":    out,
	})
}

// handleQuality serves the answer-quality audit state:
// GET /debug/quality → {uptime_ms, sample_every, cpu_frac,
// stretch_buckets, graphs: [per-graph histograms, counters, evidence,
// worst offender]}. ?graph={id} narrows to one graph (404 on
// unknown). Violations here are correctness alarms: a served distance
// escaped the envelope the paper proves, so the page preserves the
// offending queries verbatim for reproduction.
func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	aud := s.reg.aud
	var graphs []obs.AuditGraphSnapshot
	if graphF := r.URL.Query().Get("graph"); graphF != "" {
		snap, ok := aud.GraphSnapshot(graphF)
		if !ok {
			writeError(w, http.StatusNotFound, ErrUnknownGraph)
			return
		}
		graphs = []obs.AuditGraphSnapshot{snap}
	} else if graphs = aud.Snapshot(); graphs == nil {
		graphs = []obs.AuditGraphSnapshot{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_ms":       time.Since(s.start).Milliseconds(),
		"sample_every":    aud.SampleEvery(),
		"cpu_frac":        aud.CPUFrac(),
		"stretch_buckets": obs.StretchBuckets(),
		"graphs":          graphs,
	})
}

// handleProfiles serves the continuous-profiling ring:
// GET /debug/profiles/ lists the captured files, GET
// /debug/profiles/{name} streams one (a plain pprof proto —
// `go tool pprof` reads the URL directly). File names are validated
// against the collector's own naming scheme, so this can never read
// outside the ring directory.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if s.prof == nil {
		writeError(w, http.StatusNotFound,
			errors.New("server: continuous profiling not enabled (no profile dir)"))
		return
	}
	name := r.PathValue("name")
	if name == "" {
		names, err := obs.ListProfiles(s.prof.Dir())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if names == nil {
			names = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"dir":      s.prof.Dir(),
			"captures": s.prof.Captures(),
			"profiles": names,
		})
		return
	}
	if !obs.ValidProfileName(name) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("server: %q is not a profile ring file", name))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, filepath.Join(s.prof.Dir(), name))
}

// edgeUpdate is the wire shape of one mutation.
type edgeUpdate struct {
	Op string  `json:"op"`
	U  graph.V `json:"u"`
	V  graph.V `json:"v"`
	W  graph.W `json:"w,omitempty"`
}

// handleApplyEdges applies a mutation batch to a ready graph:
// POST /graphs/{id}/edges with {"updates":[{"op":"insert","u":0,
// "v":5,"w":3},...]}. The batch is atomic (all or none; 400 names the
// first offender) and the response carries the new generation plus
// the overlay state.
func (s *Server) handleApplyEdges(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Updates []edgeUpdate `json:"updates"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body.Updates) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`server: body needs {"updates":[{"op":..,"u":..,"v":..},..]}`))
		return
	}
	ups := make([]spanhop.DynamicUpdate, len(body.Updates))
	for i, u := range body.Updates {
		op, err := spanhop.ParseUpdateOp(u.Op)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		ups[i] = spanhop.DynamicUpdate{Op: op, U: u.U, V: u.V, W: u.W}
	}
	s.applyUpdates(w, r.PathValue("id"), ups)
}

// handleDeleteEdges is delete-only sugar:
// DELETE /graphs/{id}/edges with {"edges":[[u,v],...]}.
func (s *Server) handleDeleteEdges(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Edges [][2]graph.V `json:"edges"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(body.Edges) == 0 {
		writeError(w, http.StatusBadRequest, errors.New(`server: body needs {"edges":[[u,v],..]}`))
		return
	}
	ups := make([]spanhop.DynamicUpdate, len(body.Edges))
	for i, p := range body.Edges {
		ups[i] = spanhop.DynamicUpdate{Op: spanhop.UpdateDelete, U: p[0], V: p[1]}
	}
	s.applyUpdates(w, r.PathValue("id"), ups)
}

func (s *Server) applyUpdates(w http.ResponseWriter, id string, ups []spanhop.DynamicUpdate) {
	gen, dyn, err := s.reg.ApplyUpdates(id, ups)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":         id,
		"applied":    len(ups),
		"generation": gen,
		"dynamic":    dyn,
	})
}

// handleRebuild forces a synchronous overlay rebuild:
// POST /graphs/{id}/rebuild. Returns once the pending journal is
// folded into a fresh oracle (204 body-free semantics are not worth
// it; the new overlay state comes back).
func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	dyn, err := s.reg.ForceRebuild(r.Context(), id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "dynamic": dyn})
}

// handleSnapshot forces a synchronous snapshot write for a ready
// graph: POST /graphs/{id}/snapshot. 404 for unknown graphs, 409 while
// building, 400 when the server runs without a snapshot directory.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, err := s.reg.Snapshot(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "snapshot": info})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.List()
	counts := map[State]int{}
	for _, info := range infos {
		counts[info.State]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"graphs":    len(infos),
		"building":  counts[StateBuilding],
		"ready":     counts[StateReady],
		"failed":    counts[StateFailed],
	})
}

// graphStats pairs lifecycle state with the serving counters, the
// build's per-stage execution telemetry, and the snapshot persistence
// state (size/age of the on-disk file, warm-start provenance).
type graphStats struct {
	State State `json:"state"`
	StatsSnapshot
	BuildStages []exec.StageStats `json:"build_stages,omitempty"`
	WarmStarted bool              `json:"warm_started,omitempty"`
	// Flat marks an oracle serving straight out of a mapped v3 arena;
	// FlatBytes is how many arena bytes back it.
	Flat      bool          `json:"flat,omitempty"`
	FlatBytes int64         `json:"flat_bytes,omitempty"`
	Snapshot  *SnapshotInfo `json:"snapshot,omitempty"`
	// Dynamic carries the live-update overlay gauges: generation
	// window, pending journal, staleness, rebuild counters.
	Dynamic *DynamicInfo `json:"dynamic,omitempty"`
	// Costs is the accountant's per-op resource attribution for this
	// graph (CPU seconds, allocation deltas, per op: query/batch/
	// build/rebuild); SLO is the latency objective's burn-rate state
	// (nil when SLO tracking is off).
	Costs []obs.CostSnapshot `json:"costs,omitempty"`
	SLO   *obs.SLOSnapshot   `json:"slo,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	acct := s.cfg.Obs.Account()
	out := map[string]graphStats{}
	for _, info := range s.reg.List() {
		e, ok := s.reg.Get(info.ID)
		if !ok {
			continue
		}
		out[info.ID] = graphStats{
			State:         info.State,
			StatsSnapshot: e.stats.Snapshot(),
			BuildStages:   info.BuildStages,
			WarmStarted:   info.WarmStarted,
			Flat:          info.Flat,
			FlatBytes:     info.FlatBytes,
			Snapshot:      info.Snapshot,
			Dynamic:       info.Dynamic,
			Costs:         acct.GraphSnapshot(info.ID),
			SLO:           e.Workload().SLOSnapshot(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"graphs":    out,
	})
}
