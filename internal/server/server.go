package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"time"

	spanhop "repro"
	"repro/internal/exec"
	"repro/internal/graph"
)

// Config tunes the serving subsystem. Zero values take defaults.
type Config struct {
	// BuildWorkers is the number of concurrent oracle builds;
	// BuildQueue bounds how many registrations may wait behind them.
	BuildWorkers int
	BuildQueue   int
	// Workers caps the execution context each oracle build runs on:
	// 1 forces the sequential reference construction, n > 1 runs the
	// multicore construction on at most n pooled workers, and 0 defers
	// to the deprecated Parallel bool (Parallel ? GOMAXPROCS : 1).
	// Every build is cancelable (DELETE /graphs/{id}) and arena-backed
	// regardless of the cap.
	Workers int
	// Parallel builds oracles with the machine-parallel construction
	// (goroutine hot loops).
	//
	// Deprecated: set Workers instead; Parallel is Workers=GOMAXPROCS.
	Parallel bool

	// BatchWindow is how long a micro-batch stays open after its
	// first query; MaxBatch closes it early.
	BatchWindow time.Duration
	MaxBatch    int
	// QueryWorkers bounds concurrent QueryBatch executions per graph;
	// QueryQueue bounds waiting single queries (overflow is a typed
	// 503, the backpressure contract).
	QueryWorkers int
	QueryQueue   int
	// CacheSize is the per-graph LRU result-cache capacity
	// ((s,t) → QueryStats); 0 takes the default, negative disables.
	CacheSize int

	// SnapshotDir enables oracle snapshot persistence: every oracle
	// that becomes ready is written there as a self-contained snapshot
	// (atomic rename; spec, graph, and oracle in one file), WarmStart
	// restores the directory's snapshots as ready graphs on boot
	// without rebuilding, and DELETE /graphs/{id} removes the file.
	// Empty disables persistence.
	SnapshotDir string
}

func (c Config) withDefaults() Config {
	if c.BuildWorkers <= 0 {
		c.BuildWorkers = 1
	}
	if c.BuildQueue <= 0 {
		c.BuildQueue = 16
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueryQueue <= 0 {
		c.QueryQueue = 1024
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	return c
}

// buildExecWorkers resolves the worker cap of build execution
// contexts: an explicit Workers wins; otherwise the deprecated
// Parallel bool maps to GOMAXPROCS (0) or the sequential reference
// build (1).
func (c Config) buildExecWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	if c.Parallel {
		return 0
	}
	return 1
}

// queryExecWorkers resolves the worker cap of the per-oracle query
// context. Queries default to full parallelism — the executor's
// QueryWorkers already bounds concurrent batches — unless the
// operator explicitly capped Workers.
func (c Config) queryExecWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 0
}

// Server is the HTTP face of the registry + executors.
//
//	POST   /graphs              register a graph (GraphSpec JSON) → 202
//	GET    /graphs              list entries
//	GET    /graphs/{id}         one entry
//	DELETE /graphs/{id}         evict a graph; aborts an in-flight build
//	POST   /graphs/{id}/query   {"s":..,"t":..} or {"pairs":[[s,t],..]}
//	POST   /graphs/{id}/snapshot force a snapshot write (persistence on)
//	GET    /healthz             liveness + entry counts
//	GET    /stats               per-graph serving counters + build stages
//	                            + snapshot size/age
type Server struct {
	cfg   Config
	reg   *Registry
	mux   *http.ServeMux
	start time.Time
}

// New builds a Server and its registry.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		reg:   NewRegistry(cfg),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /graphs", s.handleAddGraph)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /graphs/{id}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /graphs/{id}", s.handleDeleteGraph)
	s.mux.HandleFunc("POST /graphs/{id}/query", s.handleQuery)
	s.mux.HandleFunc("POST /graphs/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Handler returns the routing handler (plug into http.Server or
// httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the graph registry (preloading, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Close shuts down builds and executors. In-flight HTTP requests get
// typed shutdown errors; the HTTP listener itself is the caller's to
// drain (http.Server.Shutdown first, then Close).
func (s *Server) Close() { s.reg.Close() }

// ---------------------------------------------------------------------------
// JSON plumbing.

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// statusFor maps typed subsystem errors to HTTP codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, ErrNotReady):
		return http.StatusConflict
	case errors.Is(err, ErrDuplicateName):
		return http.StatusConflict
	case errors.Is(err, ErrBuildQueueFull), errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// ---------------------------------------------------------------------------
// Handlers.

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, err := s.reg.Add(spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, e.Info())
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownGraph)
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	state, err := s.reg.Delete(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      id,
		"deleted": true,
		// The lifecycle state at eviction: "ready" graphs were
		// drained, "building" ones had their build aborted.
		"state": state,
	})
}

// queryRequest accepts a single query or an explicit batch.
type queryRequest struct {
	S     *graph.V     `json:"s,omitempty"`
	T     *graph.V     `json:"t,omitempty"`
	Pairs [][2]graph.V `json:"pairs,omitempty"`
}

// queryResult is one answer. Unreachable pairs report
// unreachable=true with dist omitted, so clients never have to
// compare against the InfDist sentinel.
type queryResult struct {
	S           graph.V    `json:"s"`
	T           graph.V    `json:"t"`
	Dist        graph.Dist `json:"dist"`
	Unreachable bool       `json:"unreachable,omitempty"`
	Levels      int64      `json:"levels"`
	Fallback    bool       `json:"fallback,omitempty"`
}

func toResult(s, t graph.V, st spanhop.QueryStats) queryResult {
	res := queryResult{S: s, T: t, Dist: st.Dist, Levels: st.Levels, Fallback: st.Fallback}
	if st.Dist == graph.InfDist {
		res.Dist = 0
		res.Unreachable = true
	}
	return res
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownGraph)
		return
	}
	exec, err := e.executor()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	var q queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	switch {
	case q.Pairs != nil:
		if q.S != nil || q.T != nil {
			writeError(w, http.StatusBadRequest,
				errors.New("server: give either s/t or pairs, not both"))
			return
		}
		res, err := exec.Batch(r.Context(), q.Pairs)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		out := make([]queryResult, len(res))
		for i, st := range res {
			out[i] = toResult(q.Pairs[i][0], q.Pairs[i][1], st)
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": out})
	case q.S != nil && q.T != nil:
		st, err := exec.Query(r.Context(), *q.S, *q.T)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, toResult(*q.S, *q.T, st))
	default:
		writeError(w, http.StatusBadRequest,
			errors.New(`server: body needs {"s":..,"t":..} or {"pairs":[[s,t],..]}`))
	}
}

// handleSnapshot forces a synchronous snapshot write for a ready
// graph: POST /graphs/{id}/snapshot. 404 for unknown graphs, 409 while
// building, 400 when the server runs without a snapshot directory.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, err := s.reg.Snapshot(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "snapshot": info})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.List()
	counts := map[State]int{}
	for _, info := range infos {
		counts[info.State]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"graphs":    len(infos),
		"building":  counts[StateBuilding],
		"ready":     counts[StateReady],
		"failed":    counts[StateFailed],
	})
}

// graphStats pairs lifecycle state with the serving counters, the
// build's per-stage execution telemetry, and the snapshot persistence
// state (size/age of the on-disk file, warm-start provenance).
type graphStats struct {
	State State `json:"state"`
	StatsSnapshot
	BuildStages []exec.StageStats `json:"build_stages,omitempty"`
	WarmStarted bool              `json:"warm_started,omitempty"`
	Snapshot    *SnapshotInfo     `json:"snapshot,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := map[string]graphStats{}
	for _, info := range s.reg.List() {
		e, ok := s.reg.Get(info.ID)
		if !ok {
			continue
		}
		out[info.ID] = graphStats{
			State:         info.State,
			StatsSnapshot: e.stats.Snapshot(),
			BuildStages:   info.BuildStages,
			WarmStarted:   info.WarmStarted,
			Snapshot:      info.Snapshot,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"graphs":    out,
	})
}
