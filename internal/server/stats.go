package server

import (
	"math"
	"sync/atomic"
	"time"
)

// GraphStats aggregates per-graph serving counters. All fields are
// atomics: the hot query path only ever increments, and /stats reads
// a point-in-time snapshot without locking queries out.
type GraphStats struct {
	// requests counts single queries arriving at the executor
	// (before cache/queue decisions).
	requests atomic.Int64
	// cacheHits counts single queries answered from the LRU cache.
	cacheHits atomic.Int64
	// rejects counts single queries turned away with ErrOverloaded.
	rejects atomic.Int64
	// coalesced counts dispatched micro-batches; coalescedQueries is
	// the total number of single queries inside them, so mean batch
	// size = coalescedQueries / coalesced.
	coalesced        atomic.Int64
	coalescedQueries atomic.Int64
	// batchCalls / batchQueries count explicit batch API calls and
	// the pairs inside them (these bypass the coalescing window).
	batchCalls   atomic.Int64
	batchQueries atomic.Int64
	// failures counts queries that returned an error from the oracle.
	failures atomic.Int64
	// mutationBatches / mutations count applied update batches and the
	// individual mutations inside them.
	mutationBatches atomic.Int64
	mutations       atomic.Int64

	lat latencyHist
}

// StatsSnapshot is the JSON shape of one graph's counters.
type StatsSnapshot struct {
	Requests         int64   `json:"requests"`
	CacheHits        int64   `json:"cache_hits"`
	Rejects          int64   `json:"rejects"`
	Batches          int64   `json:"batches"`
	BatchedQueries   int64   `json:"batched_queries"`
	MeanBatchSize    float64 `json:"mean_batch_size"`
	BatchCalls       int64   `json:"batch_calls"`
	BatchCallQueries int64   `json:"batch_call_queries"`
	Failures         int64   `json:"failures"`
	MutationBatches  int64   `json:"mutation_batches"`
	Mutations        int64   `json:"mutations"`

	Latency LatencySnapshot `json:"latency"`
}

// Snapshot captures the current counter values. Concurrent with
// queries, so counters read at slightly different instants may be off
// by in-flight increments relative to each other; that is fine for
// monitoring.
func (s *GraphStats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Requests:         s.requests.Load(),
		CacheHits:        s.cacheHits.Load(),
		Rejects:          s.rejects.Load(),
		Batches:          s.coalesced.Load(),
		BatchedQueries:   s.coalescedQueries.Load(),
		BatchCalls:       s.batchCalls.Load(),
		BatchCallQueries: s.batchQueries.Load(),
		Failures:         s.failures.Load(),
		MutationBatches:  s.mutationBatches.Load(),
		Mutations:        s.mutations.Load(),
		Latency:          s.lat.Snapshot(),
	}
	if snap.Batches > 0 {
		snap.MeanBatchSize = float64(snap.BatchedQueries) / float64(snap.Batches)
	}
	return snap
}

// latencyHist is a fixed exponential-bucket histogram of query service
// latency. Bucket i covers [50µs·2^i, 50µs·2^(i+1)) with the first
// bucket reaching down to 0 and the last open above; 18 buckets span
// 50µs to ~6.5s, which covers a cache hit through a cold decomposed
// query.
type latencyHist struct {
	buckets [numLatBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
	maxUS   atomic.Int64
}

const (
	latBase       = 50 * time.Microsecond
	numLatBuckets = 18
)

// bucketOf maps a latency to its bucket index.
func bucketOf(d time.Duration) int {
	b := 0
	for bound := latBase; b < numLatBuckets-1 && d >= bound; bound *= 2 {
		b++
	}
	return b
}

// Record adds one observation.
func (h *latencyHist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// LatencySnapshot is the JSON shape of the histogram: summary moments
// plus bucket counts (bucket i upper bound = 50µs·2^i, last open).
type LatencySnapshot struct {
	Count   int64   `json:"count"`
	MeanUS  float64 `json:"mean_us"`
	MaxUS   int64   `json:"max_us"`
	P50US   int64   `json:"p50_us"`
	P95US   int64   `json:"p95_us"`
	P99US   int64   `json:"p99_us"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot reads the histogram; quantiles are upper-bound estimates
// from bucket boundaries.
func (h *latencyHist) Snapshot() LatencySnapshot {
	snap := LatencySnapshot{
		Count:   h.count.Load(),
		MaxUS:   h.maxUS.Load(),
		Buckets: make([]int64, len(h.buckets)),
	}
	var total int64
	for i := range h.buckets {
		snap.Buckets[i] = h.buckets[i].Load()
		total += snap.Buckets[i]
	}
	if snap.Count > 0 {
		snap.MeanUS = float64(h.sumUS.Load()) / float64(snap.Count)
	}
	quantile := func(p float64) int64 {
		if total == 0 {
			return 0
		}
		// Rank rounds up: the p-quantile of n samples is sample
		// ⌈p·n⌉, so p99 of two samples is the larger one.
		target := int64(math.Ceil(p * float64(total)))
		if target < 1 {
			target = 1
		}
		var seen int64
		for i, c := range snap.Buckets {
			seen += c
			if seen >= target {
				return (latBase << uint(i)).Microseconds()
			}
		}
		return snap.MaxUS
	}
	snap.P50US = quantile(0.50)
	snap.P95US = quantile(0.95)
	snap.P99US = quantile(0.99)
	return snap
}
