package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestDeleteReadyGraph: DELETE evicts a ready graph — lookups 404,
// queries 404, healthz counts drop, stats omit it.
func TestDeleteReadyGraph(t *testing.T) {
	_, ts := newTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "doomed", Gen: "er:n=120,d=4,w=uniform,maxw=20", Seed: 3}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	waitReady(t, ts, "doomed")

	var del struct {
		ID      string `json:"id"`
		Deleted bool   `json:"deleted"`
		State   State  `json:"state"`
	}
	if code := httpJSON(t, ts, "DELETE", "/graphs/doomed", nil, &del); code != http.StatusOK {
		t.Fatalf("DELETE = %d", code)
	}
	if !del.Deleted || del.State != StateReady {
		t.Fatalf("delete response = %+v", del)
	}
	if code := httpJSON(t, ts, "GET", "/graphs/doomed", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d", code)
	}
	if code := httpJSON(t, ts, "POST", "/graphs/doomed/query",
		map[string]any{"s": 0, "t": 1}, nil); code != http.StatusNotFound {
		t.Fatalf("query after DELETE = %d", code)
	}
	var health struct {
		Graphs int `json:"graphs"`
	}
	httpJSON(t, ts, "GET", "/healthz", nil, &health)
	if health.Graphs != 0 {
		t.Fatalf("healthz still counts %d graphs", health.Graphs)
	}
	// Deleting again is a 404, not a crash.
	if code := httpJSON(t, ts, "DELETE", "/graphs/doomed", nil, nil); code != http.StatusNotFound {
		t.Fatalf("second DELETE = %d", code)
	}
}

// TestDeleteAbortsInFlightBuild: deleting a graph whose oracle build
// is running cancels the build (the worker becomes free for the next
// registration), removes every trace from the registry, and leaves
// the goroutine count at its baseline — no leaked build goroutines,
// no partial state.
func TestDeleteAbortsInFlightBuild(t *testing.T) {
	s := New(Config{BuildWorkers: 1, BatchWindow: time.Millisecond})
	defer s.Close()
	reg := s.Registry()

	// Warm pool + baseline via a small build.
	if _, err := reg.Add(GraphSpec{Name: "warm", Gen: "er:n=64,d=4", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	waitRegState(t, reg, "warm", StateReady)
	base := runtime.NumGoroutine()

	// A build slow enough (~seconds sequential) to still be in flight
	// when the DELETE lands.
	slow, err := reg.Add(GraphSpec{Name: "slow", Gen: "er:n=32768,d=8,w=uniform,maxw=64", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the worker pick it up
	if state, err := reg.Delete("slow"); err != nil || state != StateBuilding {
		t.Fatalf("Delete(slow) = %q, %v; want building", state, err)
	}
	if _, ok := reg.Get("slow"); ok {
		t.Fatal("deleted entry still visible in the registry")
	}

	// The aborted build must release the worker: a fresh small build
	// becomes ready far faster than the slow build could finish.
	if _, err := reg.Add(GraphSpec{Name: "after", Gen: "er:n=64,d=4", Seed: 4}); err != nil {
		t.Fatal(err)
	}
	waitRegState(t, reg, "after", StateReady)

	// The aborted entry itself ends failed (never ready) — its output
	// was discarded.
	deadline := time.Now().Add(30 * time.Second)
	for {
		info := slow.Info()
		if info.State == StateFailed {
			break
		}
		if info.State == StateReady {
			t.Fatal("deleted build still became ready")
		}
		if time.Now().After(deadline) {
			t.Fatalf("aborted build never settled: %+v", info)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base+6 {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base+6 {
		t.Fatalf("goroutines leaked: base %d, now %d", base, got)
	}
}

// TestDeleteQueuedBuild: deleting a graph stuck behind another build
// in the queue prevents its build from ever running.
func TestDeleteQueuedBuild(t *testing.T) {
	s := New(Config{BuildWorkers: 1, BatchWindow: time.Millisecond})
	defer s.Close()
	reg := s.Registry()

	if _, err := reg.Add(GraphSpec{Name: "front", Gen: "er:n=16384,d=8,w=uniform,maxw=64", Seed: 5}); err != nil {
		t.Fatal(err)
	}
	queued, err := reg.Add(GraphSpec{Name: "queued", Gen: "er:n=64,d=4", Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if state, err := reg.Delete("queued"); err != nil || state != StateBuilding {
		t.Fatalf("Delete(queued) = %q, %v", state, err)
	}
	waitRegState(t, reg, "front", StateReady)
	// The worker drained past the deleted entry without building it.
	if info := queued.Info(); info.State != StateFailed {
		t.Fatalf("queued entry state = %s, want failed", info.State)
	}
	if _, ok := reg.Get("queued"); ok {
		t.Fatal("deleted queued entry still in registry")
	}
}

// TestDeleteVsQueryRace is the -race stress for the delete-vs-query
// contract: a DELETE landing while coalesced micro-batches and
// explicit batch calls are in flight must leave every caller with
// either a complete answer set or a clean 404 — never a partial
// batch, and never a misleading 503 for a graph that is simply gone.
func TestDeleteVsQueryRace(t *testing.T) {
	_, ts := newTestServer(t)
	code := httpJSON(t, ts, "POST", "/graphs",
		GraphSpec{Name: "racy", Gen: "er:n=200,d=4,w=uniform,maxw=20", Seed: 7}, nil)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	waitReady(t, ts, "racy")

	const workers = 8
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		mu    sync.Mutex
		bad   []string
	)
	report := func(format string, args ...any) {
		mu.Lock()
		if len(bad) < 5 {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				var code int
				if w%2 == 0 {
					var res struct {
						Dist *int64 `json:"dist"`
					}
					code = httpJSON(t, ts, "POST", "/graphs/racy/query",
						map[string]any{"s": int32((w*31 + i) % 200), "t": int32((i * 7) % 200)}, &res)
					if code == http.StatusOK && res.Dist == nil {
						report("worker %d: 200 single answer without dist", w)
					}
				} else {
					pairs := [][2]int32{{0, 1}, {2, 3}, {4, 5}, {int32(i % 200), int32((i + 1) % 200)}}
					var res struct {
						Results []json.RawMessage `json:"results"`
					}
					code = httpJSON(t, ts, "POST", "/graphs/racy/query",
						map[string]any{"pairs": pairs}, &res)
					if code == http.StatusOK && len(res.Results) != len(pairs) {
						report("worker %d: partial batch: %d of %d answers", w, len(res.Results), len(pairs))
					}
				}
				switch code {
				case http.StatusOK:
				case http.StatusNotFound:
					return // clean 404 after the delete: done
				default:
					report("worker %d: status %d", w, code)
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let queries pile into the window
	if code := httpJSON(t, ts, "DELETE", "/graphs/racy", nil, nil); code != http.StatusOK {
		t.Fatalf("DELETE = %d", code)
	}
	wg.Wait()
	for _, b := range bad {
		t.Error(b)
	}
	// Post-delete, the route is a plain 404.
	if code := httpJSON(t, ts, "POST", "/graphs/racy/query",
		map[string]any{"s": 0, "t": 1}, nil); code != http.StatusNotFound {
		t.Fatalf("post-delete query = %d", code)
	}
}

// waitRegState polls an entry's lifecycle state through the registry.
func waitRegState(t *testing.T, reg *Registry, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		e, ok := reg.Get(id)
		if !ok {
			t.Fatalf("graph %s disappeared", id)
		}
		info := e.Info()
		if info.State == want {
			return
		}
		if info.State == StateFailed && want != StateFailed {
			t.Fatalf("build of %s failed: %s", id, info.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never reached %s", id, want)
}
