package dynamic

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
)

// Policy decides when the pending journal is folded into a fresh base
// oracle. A rebuild triggers when ANY enabled threshold is crossed;
// zero values take defaults, negative values disable that trigger.
type Policy struct {
	// MaxJournal rebuilds once this many journal entries are pending.
	// Default 256; negative disables.
	MaxJournal int
	// MaxPatchFraction rebuilds once the overlay diverges on more than
	// this fraction of the base graph's edges (overlay pairs / max(m,1)).
	// Default 0.10; negative disables.
	MaxPatchFraction float64
	// MaxStaleness rebuilds once the oldest pending entry is older
	// than this. Default 0 (disabled); negative disables.
	MaxStaleness time.Duration
}

// withDefaults resolves the zero-value defaults.
func (p Policy) withDefaults() Policy {
	if p.MaxJournal == 0 {
		p.MaxJournal = 256
	}
	if p.MaxPatchFraction == 0 {
		p.MaxPatchFraction = 0.10
	}
	return p
}

// Due reports whether the overlay's pending state crosses the policy,
// naming the trigger ("journal", "patch-fraction", "staleness", "").
func (p Policy) Due(o *Oracle) (bool, string) {
	p = p.withDefaults()
	if o.Pending() == 0 {
		return false, ""
	}
	if p.MaxJournal > 0 && o.Pending() >= p.MaxJournal {
		return true, "journal"
	}
	if p.MaxPatchFraction > 0 {
		m := o.BaseGraph().NumEdges()
		if m < 1 {
			m = 1
		}
		if float64(o.OverlayEdges())/float64(m) >= p.MaxPatchFraction {
			return true, "patch-fraction"
		}
	}
	if p.MaxStaleness > 0 {
		if oldest := o.OldestPending(); !oldest.IsZero() && time.Since(oldest) >= p.MaxStaleness {
			return true, "staleness"
		}
	}
	return false, ""
}

// RebuildFunc builds a fresh base Querier for the materialized
// mutated graph. It runs on a background goroutine and must honor ctx
// cancellation (the scheduler cancels it on Close and when a newer
// rebuild supersedes it); a canceled build returns ctx.Err().
type RebuildFunc func(ctx context.Context, g *graph.Graph) (Querier, error)

// Scheduler watches an overlay and triggers cancelable background
// rebuilds per its Policy. Exactly one rebuild runs at a time; the
// journal keeps accepting mutations while it runs, and entries newer
// than the rebuild's pinned generation survive the swap.
type Scheduler struct {
	o     *Oracle
	pol   Policy
	build RebuildFunc

	mu        sync.Mutex
	idle      *sync.Cond // broadcast whenever running flips to false
	running   bool
	closed    bool
	cancel    context.CancelFunc
	timer     *time.Timer
	rebuilds   int64
	lastErr    string
	lastMS     int64
	lastCause  string
	onSwap     func()
	onEvent    func(Event)
	instrument func(cause string, do func() error)
	wg         sync.WaitGroup
}

// Event is one scheduler lifecycle notification, delivered to the
// SetOnEvent hook so the serving layer can log and count rebuild
// activity without polling Snapshot.
type Event struct {
	// Kind is "start" (rebuild launched), "swap" (new base installed,
	// journal prefix compacted), or "fail" (build errored or canceled).
	Kind string
	// Cause is the policy trigger: "journal", "patch-fraction",
	// "staleness", or "forced".
	Cause string
	// Gen is the generation the rebuild pinned.
	Gen uint64
	// Compacted counts the journal entries the swap folded into the
	// new base (Kind "swap" only).
	Compacted int
	// Dur is the rebuild wall time (Kinds "swap" and "fail").
	Dur time.Duration
	// Err is the failure cause (Kind "fail" only).
	Err error
}

// SetOnEvent registers a hook receiving every scheduler lifecycle
// Event. The hook runs on the rebuild goroutine (or the Force caller)
// and must be cheap and thread-safe.
func (s *Scheduler) SetOnEvent(f func(Event)) {
	s.mu.Lock()
	s.onEvent = f
	s.mu.Unlock()
}

// SetInstrument registers a wrapper around the expensive build step of
// every rebuild (background or forced). The serving layer uses it to
// attribute the rebuild's CPU time and allocations to the owning graph
// and to stamp profiler labels on the building goroutine. The wrapper
// MUST call do() exactly once, synchronously (do returns the build's
// error so the wrapper can classify the section); it runs on the
// rebuild goroutine.
func (s *Scheduler) SetInstrument(f func(cause string, do func() error)) {
	s.mu.Lock()
	s.instrument = f
	s.mu.Unlock()
}

func (s *Scheduler) emit(ev Event) {
	s.mu.Lock()
	f := s.onEvent
	s.mu.Unlock()
	if f != nil {
		f(ev)
	}
}

// SetOnSwap registers a hook that runs after every completed rebuild
// swap (background or forced) — the serving layer invalidates its
// result cache and rewrites the snapshot there. If a swap already
// completed before registration (a policy-due journal can trigger a
// rebuild the moment the scheduler learns of it, e.g. on snapshot
// restore), the hook fires once immediately so that swap is not
// silently missed; a duplicate firing under that race is benign — the
// hook's work is idempotent invalidation.
func (s *Scheduler) SetOnSwap(f func()) {
	s.mu.Lock()
	s.onSwap = f
	missed := s.rebuilds > 0
	s.mu.Unlock()
	if missed && f != nil {
		f()
	}
}

// NewScheduler wires a scheduler to an overlay. Call Notify after
// every Apply; the staleness trigger arms its own timer.
func NewScheduler(o *Oracle, pol Policy, build RebuildFunc) *Scheduler {
	s := &Scheduler{o: o, pol: pol.withDefaults(), build: build}
	s.idle = sync.NewCond(&s.mu)
	return s
}

// Stats is a point-in-time scheduler snapshot.
type Stats struct {
	Rebuilds      int64  `json:"rebuilds"`
	Running       bool   `json:"rebuild_running,omitempty"`
	LastCause     string `json:"last_rebuild_cause,omitempty"`
	LastRebuildMS int64  `json:"last_rebuild_ms,omitempty"`
	LastError     string `json:"last_rebuild_error,omitempty"`
}

// Snapshot returns the scheduler counters.
func (s *Scheduler) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Rebuilds:      s.rebuilds,
		Running:       s.running,
		LastCause:     s.lastCause,
		LastRebuildMS: s.lastMS,
		LastError:     s.lastErr,
	}
}

// Notify re-evaluates the policy (call after Apply). Starts a
// background rebuild when due and none is running; otherwise arms the
// staleness timer so an idle journal still ages into a rebuild.
func (s *Scheduler) Notify() {
	s.mu.Lock()
	if s.closed || s.running {
		s.mu.Unlock()
		return
	}
	due, cause := s.pol.Due(s.o)
	if !due {
		s.armTimerLocked()
		s.mu.Unlock()
		return
	}
	s.startLocked(cause)
	s.mu.Unlock()
}

// armTimerLocked schedules a staleness re-check for the oldest
// pending entry. s.mu held.
func (s *Scheduler) armTimerLocked() {
	if s.pol.MaxStaleness <= 0 {
		return
	}
	oldest := s.o.OldestPending()
	if oldest.IsZero() {
		return
	}
	wait := time.Until(oldest.Add(s.pol.MaxStaleness))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	s.timer = time.AfterFunc(wait, s.Notify)
}

// startLocked launches the rebuild goroutine. s.mu held.
func (s *Scheduler) startLocked(cause string) {
	ctx, cancel := context.WithCancel(context.Background())
	s.running = true
	s.cancel = cancel
	s.lastCause = cause
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		err := s.rebuildOnce(ctx, cause)
		s.mu.Lock()
		s.running = false
		s.cancel = nil
		if err != nil {
			s.lastErr = err.Error()
		} else {
			s.lastErr = ""
		}
		closed := s.closed
		s.idle.Broadcast()
		s.mu.Unlock()
		cancel()
		if !closed {
			// Mutations kept landing during the rebuild; re-evaluate so a
			// journal already past threshold doesn't idle until the next
			// Apply.
			s.Notify()
		}
	}()
}

// Force runs one synchronous rebuild at the current generation
// regardless of policy (tests, admin endpoints). It waits for any
// in-flight rebuild — background or another Force — to finish first
// (on a condition variable, not a spin; a canceled ctx is observed
// once the current rebuild completes), then rebuilds if anything is
// still pending.
func (s *Scheduler) Force(ctx context.Context) error {
	s.mu.Lock()
	for s.running && !s.closed && ctx.Err() == nil {
		s.idle.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return errors.New("dynamic: scheduler closed")
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.running = true
	// Register with the same WaitGroup background rebuilds use, so
	// Close waits a forced rebuild out (its Swap and onSwap hook never
	// run after Close returns) exactly as it does for background ones.
	s.wg.Add(1)
	cctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	s.lastCause = "forced"
	s.mu.Unlock()
	err := error(nil)
	if s.o.Pending() > 0 {
		err = s.rebuildOnce(cctx, "forced")
	}
	s.mu.Lock()
	s.running = false
	s.cancel = nil
	if err != nil {
		s.lastErr = err.Error()
	} else {
		s.lastErr = ""
	}
	s.idle.Broadcast()
	s.mu.Unlock()
	s.wg.Done()
	cancel()
	return err
}

// rebuildOnce materializes the graph at the pinned generation, builds
// a fresh base, and swaps it in.
func (s *Scheduler) rebuildOnce(ctx context.Context, cause string) error {
	start := time.Now()
	gen := s.o.Generation()
	// Pending entries at this instant all carry gen ≤ the pinned
	// generation, so the swap compacts exactly this many; entries
	// applied while the build runs are stamped later and survive.
	pending := s.o.Pending()
	s.emit(Event{Kind: "start", Cause: cause, Gen: gen})
	fail := func(err error) error {
		s.emit(Event{Kind: "fail", Cause: cause, Gen: gen, Dur: time.Since(start), Err: err})
		return err
	}
	g, err := s.o.MutatedGraphAt(gen)
	if err != nil {
		return fail(err)
	}
	s.mu.Lock()
	wrap := s.instrument
	s.mu.Unlock()
	var base Querier
	if wrap != nil {
		wrap(cause, func() error { base, err = s.build(ctx, g); return err })
	} else {
		base, err = s.build(ctx, g)
	}
	if err != nil {
		return fail(fmt.Errorf("dynamic: rebuild (%s) at gen %d: %w", cause, gen, err))
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	if err := s.o.Swap(base, g, gen); err != nil {
		return fail(err)
	}
	s.mu.Lock()
	s.rebuilds++
	s.lastMS = time.Since(start).Milliseconds()
	hook := s.onSwap
	s.mu.Unlock()
	s.emit(Event{Kind: "swap", Cause: cause, Gen: gen, Compacted: pending, Dur: time.Since(start)})
	if hook != nil {
		hook()
	}
	return nil
}

// Close cancels any in-flight rebuild and waits it out. The overlay
// stays queryable; further Notify calls are no-ops.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
	}
	if s.cancel != nil {
		s.cancel()
	}
	s.idle.Broadcast() // wake Force waiters so they observe closed
	s.mu.Unlock()
	s.wg.Wait()
}
