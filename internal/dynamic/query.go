package dynamic

import (
	"container/heap"

	"repro/internal/graph"
)

// arc is one overlay edge live at some generation.
type arc struct {
	u, v graph.V
	w    graph.W
}

// ---------------------------------------------------------------------------
// Improving-regime sketch query.
//
// The sketch graph has vertex set {s, t} ∪ P (P = overlay-arc
// endpoints) and two arc families: the overlay arcs at their new
// weights, and base-oracle estimates between every ordered pair of
// sketch vertices. A shortest s-t path in the mutated graph
// decomposes at its overlay arcs into base segments that exist
// unchanged in the base graph, so Dijkstra over the sketch inherits
// the static oracle's envelope edge-for-edge (see the package
// comment). |P| is bounded by the rebuild policy, so the sketch stays
// tiny; the dominant cost is the 2|P| base-oracle estimates touching
// s and t (the P×P block is cached until the next rebuild swap).

// pqueryCached answers a base-oracle estimate for a P×P pair through
// the swap-scoped cache. base and epoch were captured together under
// the lock; the store is skipped when a Swap bumped the epoch in the
// meantime, so an estimate from a retired base never lands in the new
// base's cache.
func (d *Oracle) pqueryCached(base Querier, epoch uint64, x, y graph.V) (graph.Dist, error) {
	if x == y {
		return 0, nil
	}
	k := keyOf(x, y)
	d.mu.RLock()
	dist, ok := d.cache[k]
	hit := ok && d.epoch == epoch
	d.mu.RUnlock()
	if hit {
		return dist, nil
	}
	dist, err := base.Query(x, y)
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	if d.epoch == epoch {
		d.cache[k] = dist
	}
	d.mu.Unlock()
	return dist, nil
}

// sketchQuery runs Dijkstra over the sketch graph against the
// captured base. arcs must be the improving overlay arcs of the
// queried generation; s != t.
func (d *Oracle) sketchQuery(base Querier, epoch uint64, arcs []arc, s, t graph.V) (graph.Dist, error) {
	// Sketch vertex index: patch endpoints first (sorted arc order
	// keeps this deterministic), then s and t unless already present.
	idx := map[graph.V]int{}
	var nodes []graph.V
	add := func(v graph.V) int {
		if i, ok := idx[v]; ok {
			return i
		}
		idx[v] = len(nodes)
		nodes = append(nodes, v)
		return len(nodes) - 1
	}
	for _, a := range arcs {
		add(a.u)
		add(a.v)
	}
	si, ti := add(s), add(t)
	k := len(nodes)

	// Dense weight matrix: min(base estimate, overlay arcs).
	const inf = graph.InfDist
	wm := make([]graph.Dist, k*k)
	for i := range wm {
		wm[i] = inf
	}
	setMin := func(i, j int, w graph.Dist) {
		if w < wm[i*k+j] {
			wm[i*k+j] = w
			wm[j*k+i] = w
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			var est graph.Dist
			var err error
			if i == si || i == ti || j == si || j == ti {
				// Pairs touching s or t churn per query; skip the cache.
				est, err = base.Query(nodes[i], nodes[j])
			} else {
				est, err = d.pqueryCached(base, epoch, nodes[i], nodes[j])
			}
			if err != nil {
				return 0, err
			}
			if est < inf {
				setMin(i, j, est)
			}
		}
	}
	for _, a := range arcs {
		setMin(idx[a.u], idx[a.v], graph.Dist(a.w))
	}

	// Dense Dijkstra (k is tiny).
	dist := make([]graph.Dist, k)
	done := make([]bool, k)
	for i := range dist {
		dist[i] = inf
	}
	dist[si] = 0
	for {
		u, best := -1, inf
		for i := 0; i < k; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 || u == ti {
			break
		}
		done[u] = true
		for j := 0; j < k; j++ {
			if w := wm[u*k+j]; w < inf && best+w < dist[j] {
				dist[j] = best + w
			}
		}
	}
	return dist[ti], nil
}

// ---------------------------------------------------------------------------
// Degrading-regime exact query: bidirectional Dijkstra over the
// patched adjacency (base CSR with per-edge patch resolution plus
// net-inserted overlay arcs). Exact by construction; the search is
// sparse (maps, not O(n) arrays) so cost scales with the explored
// ball, not the graph.

type heapItem struct {
	v graph.V
	d graph.Dist
}

type distHeap []heapItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// side is one direction of the bidirectional search.
type side struct {
	dist    map[graph.V]graph.Dist
	settled map[graph.V]bool
	pq      distHeap
}

func newSide(src graph.V) *side {
	s := &side{
		dist:    map[graph.V]graph.Dist{src: 0},
		settled: map[graph.V]bool{},
	}
	heap.Push(&s.pq, heapItem{v: src, d: 0})
	return s
}

// top returns the smallest unsettled tentative distance (InfDist when
// the frontier is exhausted), popping stale heap entries.
func (s *side) top() graph.Dist {
	for len(s.pq) > 0 {
		it := s.pq[0]
		if s.settled[it.v] || s.dist[it.v] != it.d {
			heap.Pop(&s.pq)
			continue
		}
		return it.d
	}
	return graph.InfDist
}

// insAdjLocked builds the net-insert adjacency at generation gen:
// deleted/reweighted pairs resolve inline during CSR scans, but
// inserted arcs need explicit adjacency. Caller holds d.mu.
func (d *Oracle) insAdjLocked(gen uint64) map[graph.V][]arc {
	ins := map[graph.V][]arc{}
	for k, hist := range d.patch {
		i := 0
		for i < len(hist) && hist[i].gen <= gen {
			i++
		}
		if i == 0 {
			continue
		}
		v := hist[i-1]
		if v.deleted || d.basePairLocked(k).present {
			continue
		}
		ins[k.a] = append(ins[k.a], arc{u: k.a, v: k.b, w: v.w})
		ins[k.b] = append(ins[k.b], arc{u: k.b, v: k.a, w: v.w})
	}
	return ins
}

// exactPatchedLocked computes the exact s-t distance at generation
// gen over the patched graph. Caller holds d.mu (read).
func (d *Oracle) exactPatchedLocked(gen uint64, s, t graph.V) graph.Dist {
	// The common case (latest generation) reuses the adjacency that
	// refreshCurLocked precomputed; historical generations rebuild it.
	ins := d.curIns
	if gen != d.curGen || ins == nil {
		ins = d.insAdjLocked(gen)
	}

	// forEach visits v's patched neighbors. A patched pair with
	// parallel base copies yields its new weight for each copy —
	// harmless for Dijkstra.
	forEach := func(v graph.V, visit func(to graph.V, w graph.W)) {
		adj := d.baseG.Neighbors(v)
		wts := d.baseG.AdjWeights(v)
		for i, to := range adj {
			w := graph.W(1)
			if wts != nil {
				w = wts[i]
			}
			if hist := d.patch[keyOf(v, to)]; len(hist) > 0 {
				j := 0
				for j < len(hist) && hist[j].gen <= gen {
					j++
				}
				if j > 0 {
					pv := hist[j-1]
					if pv.deleted {
						continue
					}
					w = pv.w
				}
			}
			visit(to, w)
		}
		for _, a := range ins[v] {
			visit(a.v, a.w)
		}
	}

	fwd, bwd := newSide(s), newSide(t)
	best := graph.InfDist
	for {
		tf, tb := fwd.top(), bwd.top()
		if tf >= graph.InfDist && tb >= graph.InfDist {
			break
		}
		if tf >= graph.InfDist || tb >= graph.InfDist {
			// One side exhausted its whole component. If the searches
			// never met, s and t are disconnected — settling the rest of
			// the other component cannot change that. If they met, any
			// remaining two-sided path costs at least the live frontier's
			// top (the exhausted side contributes ≥ 0), so stop once that
			// passes best.
			if best >= graph.InfDist || min(tf, tb) >= best {
				break
			}
		} else if tf+tb >= best {
			break
		}
		// Expand the cheaper frontier; the other side's map is the
		// meeting detector.
		cur, other := fwd, bwd
		if tb < tf {
			cur, other = bwd, fwd
		}
		it := heap.Pop(&cur.pq).(heapItem)
		if cur.settled[it.v] || cur.dist[it.v] != it.d {
			continue
		}
		cur.settled[it.v] = true
		forEach(it.v, func(to graph.V, w graph.W) {
			nd := it.d + graph.Dist(w)
			if od, ok := cur.dist[to]; !ok || nd < od {
				cur.dist[to] = nd
				heap.Push(&cur.pq, heapItem{v: to, d: nd})
			}
			if bd, ok := other.dist[to]; ok {
				if cand := it.d + graph.Dist(w) + bd; cand < best {
					best = cand
				}
			}
		})
	}
	return best
}
