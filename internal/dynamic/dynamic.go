// Package dynamic adds live mutation support to the
// preprocess-once/query-many pipeline: a versioned delta-overlay on
// top of a built (static) distance oracle. Edge insertions, deletions,
// and reweights append to an in-memory journal — each stamped with a
// monotonically increasing generation — and queries answer against
// min(base-oracle distance, best path through overlay edges) without
// touching the expensive hopset construction. A rebuild scheduler
// (scheduler.go) folds the journal back into a fresh base oracle in
// the background and atomically swaps generations.
//
// # Query semantics and approximation bound
//
// Let G be the base graph the current static oracle was built on
// (generation = FloorGen) and G'(g) the graph after applying every
// journal entry with generation ≤ g. QueryAt(g, s, t) estimates
// d_{G'(g)}(s, t) in one of two regimes:
//
//   - Improving overlay (no pair is deleted or weight-increased
//     relative to G): the answer is the shortest path in a sketch
//     graph over {s, t} ∪ P, where P is the set of overlay-edge
//     endpoints; sketch arcs are the overlay edges at their new
//     weights plus base-oracle estimates between every pair of sketch
//     vertices. Every base segment of a true shortest path in G'
//     consists of unchanged edges and is therefore a path in G, so
//     the static envelope survives intact:
//
//     answer ∈ [(1−ε)·d_{G'}, (1+ε̃)·d_{G'}]
//
//     with ε and ε̃ exactly the static oracle's lower/upper distortion
//     — the overlay adds NO additional error term in this regime.
//
//   - Degrading overlay (some pair is deleted or weight-increased):
//     base-oracle estimates can undershoot d_{G'} arbitrarily (the
//     oracle may route through a deleted edge), so no composition of
//     static estimates is sound. Queries fall back to an exact
//     bidirectional Dijkstra over the patched adjacency (base CSR
//     with per-edge patch resolution plus overlay arcs); the answer
//     is d_{G'} exactly. This is the documented "overlay term": zero
//     approximation error, paid for with query work proportional to
//     the searched ball rather than the hopset depth. The rebuild
//     policy bounds how long this regime lasts.
//
// After the scheduler's rebuild completes at generation g*, queries
// at g ≥ g* answer through a from-scratch oracle on G'(g*) and match
// it bit-for-bit.
//
// # Pair semantics
//
// Mutations address vertex PAIRS, not edge ids: deleting (u,v)
// removes every parallel base edge between u and v, reweighting sets
// the pair's single surviving weight, inserting requires the pair to
// be currently absent. The vertex set is fixed at the base graph's;
// mutations never add vertices. Unweighted base graphs accept only
// weight-1 insertions and no reweights (an unweighted graph stays
// unweighted across its whole dynamic life).
package dynamic

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// Op is a mutation kind.
type Op uint8

const (
	// OpInsert adds a currently-absent pair edge.
	OpInsert Op = iota
	// OpDelete removes a currently-present pair edge.
	OpDelete
	// OpReweight changes a currently-present pair edge's weight.
	OpReweight
)

// String returns the wire name of the op ("insert"/"delete"/"reweight").
func (op Op) String() string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpReweight:
		return "reweight"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// ParseOp is the inverse of Op.String.
func ParseOp(s string) (Op, error) {
	switch s {
	case "insert":
		return OpInsert, nil
	case "delete":
		return OpDelete, nil
	case "reweight":
		return OpReweight, nil
	default:
		return 0, fmt.Errorf("dynamic: unknown op %q", s)
	}
}

// Update is one requested mutation. W is ignored for OpDelete; for an
// unweighted base graph W must be 0 or 1 on OpInsert.
type Update struct {
	Op   Op
	U, V graph.V
	W    graph.W
}

// Entry is one applied mutation: the update plus its generation stamp
// and apply time (the staleness clock; not persisted).
type Entry struct {
	Update
	Gen     uint64
	Applied time.Time
}

// Typed errors.
var (
	// ErrCompactedGen: QueryAt asked for a generation older than the
	// current base oracle (the journal below it was compacted away).
	ErrCompactedGen = errors.New("dynamic: generation compacted into the base oracle")
	// ErrFutureGen: QueryAt asked for a generation not yet applied.
	ErrFutureGen = errors.New("dynamic: generation not yet applied")
	// ErrBadUpdate wraps every mutation validation failure.
	ErrBadUpdate = errors.New("dynamic: invalid update")
)

func badUpdatef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadUpdate, fmt.Sprintf(format, args...))
}

// Querier is the slice of the static oracle the overlay composes
// with: approximate point-to-point distances on the base graph.
// Implementations must be safe for concurrent use and deterministic
// (the same (s,t) always returns the same estimate).
type Querier interface {
	Query(s, t graph.V) (graph.Dist, error)
}

// pairKey is a canonical (min,max) vertex pair.
type pairKey struct{ a, b graph.V }

func keyOf(u, v graph.V) pairKey {
	if u > v {
		u, v = v, u
	}
	return pairKey{a: u, b: v}
}

// ver is one absolute pair state at a generation: either deleted or
// present with weight w. States are absolute (not diffs), so they
// survive a base swap unchanged: "state of pair at gen g" is the
// latest ver with Gen ≤ g, falling back to the base graph.
type ver struct {
	gen     uint64
	deleted bool
	w       graph.W
}

// pairState resolves a pair against base + history.
type pairState struct {
	present bool
	w       graph.W
}

// Oracle is the dynamic overlay engine: a static base Querier plus
// the versioned patch set. All methods are safe for concurrent use;
// queries proceed under a read lock so mutation batches and rebuild
// swaps serialize against them.
type Oracle struct {
	mu sync.RWMutex

	base  Querier
	baseG *graph.Graph

	floorGen uint64 // generation the base oracle reflects
	curGen   uint64 // latest applied generation

	entries []Entry                // pending journal, ascending Gen
	patch   map[pairKey][]ver      // per-pair absolute state history, ascending gen
	cache   map[pairKey]graph.Dist // base-oracle P×P estimates (valid until swap)
	// epoch increments on every Swap; estimate writers capture it with
	// the base they queried, so a slow query racing a swap can never
	// store an old-base estimate into the new cache.
	epoch uint64

	// curBlocked/curArcs cache the current generation's regime
	// classification and improving-arc list — the values every Query
	// (the overwhelmingly common gen == curGen case) needs — so the hot
	// path skips the O(|patch|·degree) rescan; Apply and Swap hold the
	// write lock and refresh them. Historical QueryAt generations still
	// scan.
	curBlocked bool
	curArcs    []arc
	curIns     map[graph.V][]arc // degrading-regime insert adjacency at curGen
}

// New wraps a built static oracle (base, answering distances on
// baseG) into a dynamic overlay starting at floorGen with an empty
// journal.
func New(base Querier, baseG *graph.Graph, floorGen uint64) *Oracle {
	return &Oracle{
		base:     base,
		baseG:    baseG,
		floorGen: floorGen,
		curGen:   floorGen,
		patch:    map[pairKey][]ver{},
		cache:    map[pairKey]graph.Dist{},
	}
}

// Generation returns the latest applied generation.
func (d *Oracle) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.curGen
}

// FloorGen returns the generation the current base oracle reflects;
// QueryAt accepts generations in [FloorGen, Generation].
func (d *Oracle) FloorGen() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.floorGen
}

// Pending returns the number of journal entries not yet absorbed by a
// rebuild.
func (d *Oracle) Pending() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// OverlayEdges returns how many pairs currently diverge from the base
// graph (net inserts, deletes, and reweights at the latest
// generation).
func (d *Oracle) OverlayEdges() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.overlayEdgesLocked()
}

func (d *Oracle) overlayEdgesLocked() int {
	n := 0
	for k, hist := range d.patch {
		if d.divergesLocked(k, hist[len(hist)-1]) {
			n++
		}
	}
	return n
}

// Gauges is a mutually consistent snapshot of the overlay's
// observability gauges, taken under one lock acquisition so a
// concurrent Apply or Swap cannot tear it (e.g. a generation from
// before a swap paired with a pending count from after).
type Gauges struct {
	Generation    uint64
	FloorGen      uint64
	Pending       int
	OverlayEdges  int
	OldestPending time.Time
}

// Gauges snapshots the observability gauges atomically.
func (d *Oracle) Gauges() Gauges {
	d.mu.RLock()
	defer d.mu.RUnlock()
	g := Gauges{
		Generation:   d.curGen,
		FloorGen:     d.floorGen,
		Pending:      len(d.entries),
		OverlayEdges: d.overlayEdgesLocked(),
	}
	if len(d.entries) > 0 {
		g.OldestPending = d.entries[0].Applied
	}
	return g
}

// Regime classifies the query path the latest generation dispatches
// to — the label request traces carry: "clean" (no divergence from
// the base, queries hit the base oracle directly), "improving"
// (insert-only overlay, sketch Dijkstra over base estimates), or
// "degrading" (deletes present, exact bidirectional search). Returns
// the latest applied generation alongside. Mirrors queryRLocked's
// dispatch exactly.
func (d *Oracle) Regime() (string, uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	switch {
	case len(d.patch) == 0:
		return "clean", d.curGen
	case d.curBlocked:
		return "degrading", d.curGen
	case len(d.curArcs) == 0:
		return "clean", d.curGen
	default:
		return "improving", d.curGen
	}
}

// OldestPending returns the apply time of the oldest journal entry
// (zero time when the journal is empty) — the staleness clock.
func (d *Oracle) OldestPending() time.Time {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.entries) == 0 {
		return time.Time{}
	}
	return d.entries[0].Applied
}

// Base returns the current base Querier (after a rebuild swap this is
// the freshly built oracle).
func (d *Oracle) Base() Querier {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.base
}

// BaseGraph returns the graph the current base oracle answers on.
func (d *Oracle) BaseGraph() *graph.Graph {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.baseG
}

// Journal returns a copy of the pending journal (persistence).
func (d *Oracle) Journal() []Entry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]Entry(nil), d.entries...)
}

// PersistState returns a mutually consistent snapshot of (base
// querier, base graph, floor generation, pending journal) under one
// lock acquisition — the tuple persistence must capture atomically so
// a rebuild swap can never interleave between reading the oracle and
// reading its journal.
func (d *Oracle) PersistState() (Querier, *graph.Graph, uint64, []Entry) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.base, d.baseG, d.floorGen, append([]Entry(nil), d.entries...)
}

// basePairLocked resolves a pair against the base graph only:
// presence and (minimum, for parallel edges) weight. O(min degree).
func (d *Oracle) basePairLocked(k pairKey) pairState {
	u, v := k.a, k.b
	if d.baseG.Degree(v) < d.baseG.Degree(u) {
		u, v = v, u
	}
	adj := d.baseG.Neighbors(u)
	wts := d.baseG.AdjWeights(u)
	st := pairState{}
	for i, nb := range adj {
		if nb != v {
			continue
		}
		w := graph.W(1)
		if wts != nil {
			w = wts[i]
		}
		if !st.present || w < st.w {
			st = pairState{present: true, w: w}
		}
	}
	return st
}

// stateAtLocked resolves a pair's state at generation g.
func (d *Oracle) stateAtLocked(k pairKey, g uint64) pairState {
	hist := d.patch[k]
	// Latest version with gen ≤ g.
	i := sort.Search(len(hist), func(i int) bool { return hist[i].gen > g })
	if i == 0 {
		return d.basePairLocked(k)
	}
	v := hist[i-1]
	if v.deleted {
		return pairState{}
	}
	return pairState{present: true, w: v.w}
}

// divergesLocked reports whether version v differs from the pair's
// base state (a deleted-then-reinserted-at-base-weight pair does not
// diverge).
func (d *Oracle) divergesLocked(k pairKey, v ver) bool {
	base := d.basePairLocked(k)
	if v.deleted {
		return base.present
	}
	return !base.present || base.w != v.w
}

// Apply validates and applies a batch of updates atomically: either
// every update commits (each with its own fresh generation, in order)
// or none does and the error names the first offender. Returns the
// last generation of the batch.
func (d *Oracle) Apply(us []Update) (uint64, error) {
	if len(us) == 0 {
		return d.Generation(), nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.baseG.NumVertices()
	weighted := d.baseG.Weighted()

	// Stage: net states of touched pairs, seeded lazily from the
	// committed state, mutated as the batch validates in order.
	stage := map[pairKey]pairState{}
	stateOf := func(k pairKey) pairState {
		if st, ok := stage[k]; ok {
			return st
		}
		return d.stateAtLocked(k, d.curGen)
	}
	staged := make([]ver, 0, len(us))
	keys := make([]pairKey, 0, len(us))
	for i := range us {
		u := us[i]
		if u.U < 0 || u.U >= n || u.V < 0 || u.V >= n {
			return 0, badUpdatef("update %d: endpoint (%d,%d) out of range n=%d", i, u.U, u.V, n)
		}
		if u.U == u.V {
			return 0, badUpdatef("update %d: self-loop at %d", i, u.U)
		}
		k := keyOf(u.U, u.V)
		st := stateOf(k)
		var nv ver
		switch u.Op {
		case OpInsert:
			if st.present {
				return 0, badUpdatef("update %d: insert (%d,%d): edge already present (use reweight)", i, u.U, u.V)
			}
			w := u.W
			if !weighted {
				if w != 0 && w != 1 {
					return 0, badUpdatef("update %d: insert (%d,%d): weight %d into an unweighted graph", i, u.U, u.V, w)
				}
				w = 1
			}
			if w <= 0 {
				return 0, badUpdatef("update %d: insert (%d,%d): non-positive weight %d", i, u.U, u.V, w)
			}
			nv = ver{w: w}
		case OpDelete:
			if !st.present {
				return 0, badUpdatef("update %d: delete (%d,%d): edge not present", i, u.U, u.V)
			}
			nv = ver{deleted: true}
		case OpReweight:
			if !weighted {
				return 0, badUpdatef("update %d: reweight (%d,%d): graph is unweighted", i, u.U, u.V)
			}
			if !st.present {
				return 0, badUpdatef("update %d: reweight (%d,%d): edge not present", i, u.U, u.V)
			}
			if u.W <= 0 {
				return 0, badUpdatef("update %d: reweight (%d,%d): non-positive weight %d", i, u.U, u.V, u.W)
			}
			nv = ver{w: u.W}
		default:
			return 0, badUpdatef("update %d: unknown op %d", i, u.Op)
		}
		if nv.deleted {
			stage[k] = pairState{}
		} else {
			stage[k] = pairState{present: true, w: nv.w}
		}
		staged = append(staged, nv)
		keys = append(keys, k)
	}

	// Commit: one generation per update, in batch order. The journal
	// stores the NORMALIZED update (insert weight resolved to 1 on
	// unweighted graphs, delete weight zeroed): the journal is
	// persisted and replayed by the strict snapshot decoder, which
	// rejects e.g. a w=0 insert a caller legitimately sent.
	now := time.Now()
	for i := range us {
		d.curGen++
		v := staged[i]
		v.gen = d.curGen
		d.patch[keys[i]] = append(d.patch[keys[i]], v)
		up := us[i]
		if up.Op == OpDelete {
			up.W = 0
		} else {
			up.W = v.w
		}
		d.entries = append(d.entries, Entry{Update: up, Gen: d.curGen, Applied: now})
	}
	d.refreshCurLocked()
	return d.curGen, nil
}

// refreshCurLocked recomputes the cached current-generation regime,
// arc list, and (in the degrading regime) the net-insert adjacency
// the exact search walks. d.mu held for writing.
func (d *Oracle) refreshCurLocked() {
	d.curBlocked = d.blockedAtLocked(d.curGen)
	d.curArcs = d.arcsAtLocked(d.curGen)
	if d.curBlocked {
		d.curIns = d.insAdjLocked(d.curGen)
	} else {
		d.curIns = nil
	}
}

// Replay re-applies a persisted journal (snapshot warm start) as ONE
// batched Apply — a long journal replays in O(J + |patch|), not
// per-entry rescans. The entries must be gen-ascending and start
// above the current generation; the overlay adopts their stamps
// verbatim so a restored oracle reports the same generation it was
// saved at. Apply times are reset to now (staleness restarts with the
// process).
func (d *Oracle) Replay(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	prev := d.Generation()
	start := prev
	ups := make([]Update, len(entries))
	for i, e := range entries {
		if e.Gen <= prev {
			return badUpdatef("replay: journal generations not ascending at %d", e.Gen)
		}
		prev = e.Gen
		ups[i] = e.Update
	}
	if _, err := d.Apply(ups); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	// Apply stamped the batch start+1 .. start+len; rewrite every
	// stamp (journal tail and pair-history versions) to the persisted
	// generations. The mapping is order-preserving, so histories stay
	// gen-ascending and the graph state at any stamped generation is
	// unchanged.
	d.mu.Lock()
	defer d.mu.Unlock()
	remap := func(gen uint64) uint64 {
		if gen <= start {
			return gen
		}
		return entries[gen-start-1].Gen
	}
	tail := d.entries[len(d.entries)-len(entries):]
	for i := range tail {
		tail[i].Gen = remap(tail[i].Gen)
	}
	for _, hist := range d.patch {
		for i := range hist {
			hist[i].gen = remap(hist[i].gen)
		}
	}
	d.curGen = entries[len(entries)-1].Gen
	return nil
}

// blockedAtLocked reports whether generation g has any pair deleted
// or weight-increased relative to the base graph — the regime where
// composed base-oracle estimates are unsound and queries must run the
// exact patched search.
func (d *Oracle) blockedAtLocked(g uint64) bool {
	for k, hist := range d.patch {
		i := sort.Search(len(hist), func(i int) bool { return hist[i].gen > g })
		if i == 0 {
			continue
		}
		v := hist[i-1]
		base := d.basePairLocked(k)
		if !base.present {
			continue // net insert (or insert+delete = no-op): never degrading
		}
		if v.deleted || v.w > base.w {
			return true
		}
	}
	return false
}

// arcsAtLocked collects the overlay arcs live at generation g that
// differ from base: for the sketch (improving regime) every arc is an
// insert or a decrease. Sorted by pair for determinism.
func (d *Oracle) arcsAtLocked(g uint64) []arc {
	var out []arc
	for k, hist := range d.patch {
		i := sort.Search(len(hist), func(i int) bool { return hist[i].gen > g })
		if i == 0 {
			continue
		}
		v := hist[i-1]
		if v.deleted {
			continue
		}
		base := d.basePairLocked(k)
		if base.present && base.w == v.w {
			continue
		}
		out = append(out, arc{u: k.a, v: k.b, w: v.w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].u != out[j].u {
			return out[i].u < out[j].u
		}
		return out[i].v < out[j].v
	})
	return out
}

// checkGenLocked validates a query generation.
func (d *Oracle) checkGenLocked(g uint64) error {
	if g < d.floorGen {
		return fmt.Errorf("%w: generation %d < base %d", ErrCompactedGen, g, d.floorGen)
	}
	if g > d.curGen {
		return fmt.Errorf("%w: generation %d > current %d", ErrFutureGen, g, d.curGen)
	}
	return nil
}

// Query estimates the s-t distance on the latest generation's graph.
// It resolves the generation under the same lock acquisition the
// query runs under, so a rebuild swap between "read curGen" and "run
// the query" can never surface as a spurious ErrCompactedGen.
func (d *Oracle) Query(s, t graph.V) (graph.Dist, error) {
	d.mu.RLock()
	return d.queryRLocked(d.curGen, s, t)
}

// QueryAt estimates the s-t distance on G'(gen), the base graph with
// every journal entry of generation ≤ gen applied. gen must lie in
// [FloorGen, Generation]. See the package comment for the bound.
func (d *Oracle) QueryAt(gen uint64, s, t graph.V) (graph.Dist, error) {
	d.mu.RLock()
	return d.queryRLocked(gen, s, t)
}

// queryRLocked is the query body; the caller holds d.mu for reading
// and EVERY return path releases it.
func (d *Oracle) queryRLocked(gen uint64, s, t graph.V) (graph.Dist, error) {
	if err := d.checkGenLocked(gen); err != nil {
		d.mu.RUnlock()
		return 0, err
	}
	n := d.baseG.NumVertices()
	if s < 0 || s >= n || t < 0 || t >= n {
		d.mu.RUnlock()
		return 0, fmt.Errorf("dynamic: query (%d,%d) out of range n=%d", s, t, n)
	}
	if s == t {
		d.mu.RUnlock()
		return 0, nil
	}
	// Capture the base (and its cache epoch) under the lock: a
	// concurrent Swap may replace both, and the estimates below must
	// come from one consistent base.
	base, epoch := d.base, d.epoch
	if len(d.patch) == 0 {
		d.mu.RUnlock()
		return base.Query(s, t)
	}
	// The common case queries the latest generation, whose regime and
	// arc list are precomputed; historical generations rescan.
	blocked, arcs, cached := d.curBlocked, d.curArcs, gen == d.curGen
	if !cached {
		blocked = d.blockedAtLocked(gen)
	}
	if blocked {
		// Degrading regime: exact bidirectional search on the patched
		// adjacency (still under the read lock — mutations wait).
		dist := d.exactPatchedLocked(gen, s, t)
		d.mu.RUnlock()
		return dist, nil
	}
	if !cached {
		arcs = d.arcsAtLocked(gen)
	}
	d.mu.RUnlock()
	if len(arcs) == 0 {
		return base.Query(s, t)
	}
	return d.sketchQuery(base, epoch, arcs, s, t)
}

// ExactDistanceAt computes the exact s-t distance on G'(gen) with a
// bidirectional Dijkstra over the patched adjacency — the same search
// the degrading regime serves from, run unconditionally regardless of
// the generation's regime. Unlike QueryAt it never routes through the
// approximate base oracle, so the answer carries no distortion
// envelope at all: this is the ground truth the serving layer's
// answer-quality auditor re-checks sampled answers against. Returns
// graph.InfDist for disconnected pairs. gen must lie in
// [FloorGen, Generation] (ErrCompactedGen / ErrFutureGen otherwise —
// an auditor holding a generation a rebuild compacted away must treat
// that as a dropped sample, never a violation). Cost scales with the
// searched ball, not the hopset depth; callers budget accordingly.
func (d *Oracle) ExactDistanceAt(gen uint64, s, t graph.V) (graph.Dist, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkGenLocked(gen); err != nil {
		return 0, err
	}
	n := d.baseG.NumVertices()
	if s < 0 || s >= n || t < 0 || t >= n {
		return 0, fmt.Errorf("dynamic: query (%d,%d) out of range n=%d", s, t, n)
	}
	if s == t {
		return 0, nil
	}
	return d.exactPatchedLocked(gen, s, t), nil
}

// Swap installs a freshly built base oracle reflecting G'(upTo):
// journal entries with gen ≤ upTo are compacted away, pair histories
// drop versions the new base already embodies, and the P×P estimate
// cache resets. newG must be the materialization the new base was
// built on (MutatedGraphAt(upTo)).
func (d *Oracle) Swap(base Querier, newG *graph.Graph, upTo uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if upTo < d.floorGen || upTo > d.curGen {
		return fmt.Errorf("dynamic: swap at generation %d outside [%d,%d]", upTo, d.floorGen, d.curGen)
	}
	d.base = base
	d.baseG = newG
	d.floorGen = upTo
	// Drop compacted journal entries.
	i := sort.Search(len(d.entries), func(i int) bool { return d.entries[i].Gen > upTo })
	d.entries = append([]Entry(nil), d.entries[i:]...)
	// Drop pair versions the new base embodies.
	for k, hist := range d.patch {
		j := sort.Search(len(hist), func(i int) bool { return hist[i].gen > upTo })
		if j == len(hist) {
			delete(d.patch, k)
			continue
		}
		d.patch[k] = append([]ver(nil), hist[j:]...)
	}
	d.cache = map[pairKey]graph.Dist{}
	d.epoch++
	d.refreshCurLocked()
	return nil
}

// MutatedGraph materializes the latest generation's graph. The
// generation resolves under the same lock the materialization runs
// under (a swap in between cannot invalidate it).
func (d *Oracle) MutatedGraph() *graph.Graph {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.materializeLocked(d.curGen)
}

// MutatedGraphAt materializes G'(gen) as a fresh graph: base edges in
// their canonical order with deleted pairs dropped and reweighted
// pairs' weight replaced at their first occurrence (parallel
// duplicates of a patched pair are dropped), then net-inserted pairs
// appended in (u,v) order. The construction is deterministic, so two
// overlays that applied the same updates materialize CSR-identical
// graphs — the contract the rebuild differential tests rely on.
func (d *Oracle) MutatedGraphAt(gen uint64) (*graph.Graph, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkGenLocked(gen); err != nil {
		return nil, err
	}
	return d.materializeLocked(gen), nil
}

// materializeLocked builds G'(gen); d.mu held, gen already validated.
func (d *Oracle) materializeLocked(gen uint64) *graph.Graph {
	base := d.baseG
	edges := make([]graph.Edge, 0, int64(len(base.Edges()))+int64(len(d.patch)))
	emitted := map[pairKey]bool{}
	for _, e := range base.Edges() {
		k := keyOf(e.U, e.V)
		hist := d.patch[k]
		i := sort.Search(len(hist), func(i int) bool { return hist[i].gen > gen })
		if i == 0 {
			edges = append(edges, e)
			continue
		}
		v := hist[i-1]
		if v.deleted || emitted[k] {
			continue
		}
		emitted[k] = true
		edges = append(edges, graph.Edge{U: e.U, V: e.V, W: v.w})
	}
	// Net inserts: pairs present at gen but absent from base.
	var ins []graph.Edge
	for k, hist := range d.patch {
		i := sort.Search(len(hist), func(i int) bool { return hist[i].gen > gen })
		if i == 0 {
			continue
		}
		v := hist[i-1]
		if v.deleted || d.basePairLocked(k).present {
			continue
		}
		ins = append(ins, graph.Edge{U: k.a, V: k.b, W: v.w})
	}
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].U != ins[j].U {
			return ins[i].U < ins[j].U
		}
		return ins[i].V < ins[j].V
	})
	edges = append(edges, ins...)
	return graph.FromEdges(base.NumVertices(), edges, base.Weighted())
}
