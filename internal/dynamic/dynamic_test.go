package dynamic

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sssp"
)

// exactBase answers exact base-graph distances: with a zero-error
// base the overlay's improving-regime sketch is exact too, so every
// test can compare against plain Dijkstra on the materialized graph.
type exactBase struct{ g *graph.Graph }

func (e exactBase) Query(s, t graph.V) (graph.Dist, error) {
	return sssp.Dijkstra(e.g, []graph.V{s}, sssp.Options{}).Dist[t], nil
}

func exactDist(g *graph.Graph, s, t graph.V) graph.Dist {
	return sssp.Dijkstra(g, []graph.V{s}, sssp.Options{}).Dist[t]
}

// randomUpdates generates a valid mutation sequence against a local
// replica of the evolving pair state.
func randomUpdates(t *testing.T, d *Oracle, g *graph.Graph, count int, seed uint64) []Update {
	t.Helper()
	r := rng.New(seed)
	n := g.NumVertices()
	// Track current pair state starting from the base graph.
	state := map[pairKey]graph.W{}
	for _, e := range g.Edges() {
		state[keyOf(e.U, e.V)] = e.W
	}
	var out []Update
	for len(out) < count {
		u, v := r.Int31n(n), r.Int31n(n)
		if u == v {
			continue
		}
		k := keyOf(u, v)
		w, present := state[k]
		switch r.Intn(3) {
		case 0: // insert
			if present {
				continue
			}
			nw := graph.W(1)
			if g.Weighted() {
				nw = graph.W(r.Intn(40) + 1)
			}
			out = append(out, Update{Op: OpInsert, U: u, V: v, W: nw})
			state[k] = nw
		case 1: // delete
			if !present {
				continue
			}
			out = append(out, Update{Op: OpDelete, U: u, V: v})
			delete(state, k)
		default: // reweight
			if !present || !g.Weighted() {
				continue
			}
			nw := graph.W(r.Intn(40) + 1)
			if nw == w {
				nw++
			}
			out = append(out, Update{Op: OpReweight, U: u, V: v, W: nw})
			state[k] = nw
		}
	}
	return out
}

// TestQueryMatchesExactOnMutatedGraph: with an exact base querier the
// overlay answers exact distances on the mutated graph in BOTH
// regimes, across weighted and unweighted bases and a random mix of
// all three ops.
func TestQueryMatchesExactOnMutatedGraph(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"weighted-er", graph.UniformWeights(graph.RandomConnectedGNM(60, 160, 1), 30, 2)},
		{"unweighted-grid", graph.Grid2D(7, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := New(exactBase{tc.g}, tc.g, 0)
			r := rng.New(99)
			for round := 0; round < 6; round++ {
				ups := randomUpdates(t, d, d.MutatedGraph(), 5, uint64(round)*7+1)
				// Re-derive validity against the overlay's own state: the
				// helper tracked from the materialized graph, which IS the
				// overlay state, so Apply must accept.
				if _, err := d.Apply(ups); err != nil {
					t.Fatalf("round %d: Apply: %v", round, err)
				}
				mg := d.MutatedGraph()
				n := mg.NumVertices()
				for q := 0; q < 25; q++ {
					s, u := r.Int31n(n), r.Int31n(n)
					want := exactDist(mg, s, u)
					got, err := d.Query(s, u)
					if err != nil {
						t.Fatalf("Query(%d,%d): %v", s, u, err)
					}
					if got != want {
						t.Fatalf("round %d: Query(%d,%d) = %d, want %d", round, s, u, got, want)
					}
				}
			}
		})
	}
}

// TestImprovingRegimeStaysFast: an insert-only overlay (plus an
// insert-then-delete no-op pair) must not trip the degrading-regime
// detector.
func TestImprovingRegimeStaysFast(t *testing.T) {
	g := graph.UniformWeights(graph.Grid2D(5, 5), 10, 3)
	d := New(exactBase{g}, g, 0)
	if _, err := d.Apply([]Update{
		{Op: OpInsert, U: 0, V: 24, W: 2},
		{Op: OpInsert, U: 3, V: 17, W: 4},
		{Op: OpDelete, U: 3, V: 17}, // net no-op vs base
	}); err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	blocked := d.blockedAtLocked(d.curGen)
	d.mu.RUnlock()
	if blocked {
		t.Fatal("insert-only overlay classified as degrading")
	}
	// And the shortcut is used: 0→24 must now cost 2.
	if got, _ := d.Query(0, 24); got != 2 {
		t.Fatalf("Query(0,24) = %d, want 2", got)
	}
	// Deleting a base edge flips the regime.
	e := g.Edges()[0]
	if _, err := d.Apply([]Update{{Op: OpDelete, U: e.U, V: e.V}}); err != nil {
		t.Fatal(err)
	}
	d.mu.RLock()
	blocked = d.blockedAtLocked(d.curGen)
	d.mu.RUnlock()
	if !blocked {
		t.Fatal("base-edge delete not classified as degrading")
	}
}

// TestQueryAtHistoricalGenerations: QueryAt(g) answers against the
// graph as of g, for every g in the journal window.
func TestQueryAtHistoricalGenerations(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(40, 90, 5), 20, 6)
	d := New(exactBase{g}, g, 0)
	ups := randomUpdates(t, d, g, 12, 11)
	if _, err := d.Apply(ups); err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	n := g.NumVertices()
	for gen := uint64(0); gen <= d.Generation(); gen += 3 {
		mg, err := d.MutatedGraphAt(gen)
		if err != nil {
			t.Fatalf("MutatedGraphAt(%d): %v", gen, err)
		}
		for q := 0; q < 10; q++ {
			s, u := r.Int31n(n), r.Int31n(n)
			want := exactDist(mg, s, u)
			got, err := d.QueryAt(gen, s, u)
			if err != nil {
				t.Fatalf("QueryAt(%d,%d,%d): %v", gen, s, u, err)
			}
			if got != want {
				t.Fatalf("QueryAt(gen=%d, %d,%d) = %d, want %d", gen, s, u, got, want)
			}
		}
	}
	if _, err := d.QueryAt(d.Generation()+1, 0, 1); !errors.Is(err, ErrFutureGen) {
		t.Fatalf("future gen error = %v", err)
	}
}

// TestApplyValidation: every malformed update is rejected and a batch
// with one bad update commits nothing.
func TestApplyValidation(t *testing.T) {
	g := graph.Grid2D(4, 4) // unweighted
	d := New(exactBase{g}, g, 0)
	e := g.Edges()[0]
	cases := [][]Update{
		{{Op: OpInsert, U: 0, V: 99, W: 1}},                                  // out of range
		{{Op: OpInsert, U: 2, V: 2, W: 1}},                                   // self-loop
		{{Op: OpInsert, U: e.U, V: e.V, W: 1}},                               // already present
		{{Op: OpInsert, U: 0, V: 5, W: 7}},                                   // weight into unweighted
		{{Op: OpDelete, U: 0, V: 5}},                                         // not present
		{{Op: OpReweight, U: e.U, V: e.V, W: 3}},                             // reweight unweighted
		{{Op: Op(9), U: 0, V: 5}},                                            // unknown op
		{{Op: OpInsert, U: 0, V: 5, W: 1}, {Op: OpInsert, U: 0, V: 5, W: 1}}, // dup within batch
	}
	for i, us := range cases {
		if _, err := d.Apply(us); !errors.Is(err, ErrBadUpdate) {
			t.Errorf("case %d: err = %v, want ErrBadUpdate", i, err)
		}
	}
	if d.Generation() != 0 || d.Pending() != 0 {
		t.Fatalf("failed batches mutated state: gen=%d pending=%d", d.Generation(), d.Pending())
	}
	// Valid insert-then-delete within one batch is fine.
	if gen, err := d.Apply([]Update{
		{Op: OpInsert, U: 0, V: 5, W: 1},
		{Op: OpDelete, U: 0, V: 5},
	}); err != nil || gen != 2 {
		t.Fatalf("valid batch: gen=%d err=%v", gen, err)
	}
}

// TestSwapCompaction: Swap drops absorbed journal entries, rebases
// pair histories, and invalidates generations below the new floor.
func TestSwapCompaction(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(30, 70, 7), 15, 8)
	d := New(exactBase{g}, g, 0)
	ups := randomUpdates(t, d, g, 10, 21)
	if _, err := d.Apply(ups[:6]); err != nil {
		t.Fatal(err)
	}
	mid := d.Generation()
	midG, err := d.MutatedGraphAt(mid)
	if err != nil {
		t.Fatal(err)
	}
	// More updates land while the "rebuild" is in flight.
	if _, err := d.Apply(ups[6:]); err != nil {
		t.Fatal(err)
	}
	if err := d.Swap(exactBase{midG}, midG, mid); err != nil {
		t.Fatal(err)
	}
	if d.FloorGen() != mid {
		t.Fatalf("floor = %d, want %d", d.FloorGen(), mid)
	}
	if d.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", d.Pending())
	}
	if _, err := d.QueryAt(mid-1, 0, 1); !errors.Is(err, ErrCompactedGen) {
		t.Fatalf("compacted gen error = %v", err)
	}
	// Post-swap queries still exact against the full mutation history.
	mg := d.MutatedGraph()
	r := rng.New(2)
	n := mg.NumVertices()
	for q := 0; q < 20; q++ {
		s, u := r.Int31n(n), r.Int31n(n)
		want := exactDist(mg, s, u)
		if got, err := d.Query(s, u); err != nil || got != want {
			t.Fatalf("post-swap Query(%d,%d) = %d (%v), want %d", s, u, got, err, want)
		}
	}
}

// TestReplayRoundTrip: a journal survives persistence: replaying it
// into a fresh overlay reproduces generation stamps and answers.
func TestReplayRoundTrip(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(30, 70, 9), 15, 10)
	d := New(exactBase{g}, g, 0)
	if _, err := d.Apply(randomUpdates(t, d, g, 8, 31)); err != nil {
		t.Fatal(err)
	}
	journal := d.Journal()

	d2 := New(exactBase{g}, g, 0)
	if err := d2.Replay(journal); err != nil {
		t.Fatal(err)
	}
	if d2.Generation() != d.Generation() {
		t.Fatalf("replayed gen = %d, want %d", d2.Generation(), d.Generation())
	}
	mg := d.MutatedGraph()
	r := rng.New(3)
	n := mg.NumVertices()
	for q := 0; q < 15; q++ {
		s, u := r.Int31n(n), r.Int31n(n)
		a, err1 := d.Query(s, u)
		b, err2 := d2.Query(s, u)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("replayed answers diverge at (%d,%d): %d vs %d (%v, %v)", s, u, a, b, err1, err2)
		}
	}
}

// TestSchedulerJournalTrigger: crossing MaxJournal rebuilds in the
// background, compacts, and leaves exact answers behind.
func TestSchedulerJournalTrigger(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(40, 90, 13), 20, 14)
	d := New(exactBase{g}, g, 0)
	sch := NewScheduler(d, Policy{MaxJournal: 4, MaxPatchFraction: -1},
		func(ctx context.Context, mg *graph.Graph) (Querier, error) {
			return exactBase{mg}, nil
		})
	defer sch.Close()
	if _, err := d.Apply(randomUpdates(t, d, g, 5, 41)); err != nil {
		t.Fatal(err)
	}
	sch.Notify()
	deadline := time.Now().Add(5 * time.Second)
	for d.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rebuild never compacted the journal (pending=%d)", d.Pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := sch.Snapshot(); s.Rebuilds < 1 || s.LastError != "" {
		t.Fatalf("scheduler stats = %+v", s)
	}
	if d.FloorGen() != d.Generation() {
		t.Fatalf("floor %d != gen %d after rebuild", d.FloorGen(), d.Generation())
	}
	mg := d.MutatedGraph()
	if got, _ := d.Query(0, mg.NumVertices()-1); got != exactDist(mg, 0, mg.NumVertices()-1) {
		t.Fatal("post-rebuild answer wrong")
	}
}

// TestSchedulerForceAndCancel: Force rebuilds synchronously; a build
// that honors cancellation surfaces ctx.Err when closed mid-flight.
func TestSchedulerForceAndCancel(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(30, 60, 17), 10, 18)
	d := New(exactBase{g}, g, 0)
	sch := NewScheduler(d, Policy{MaxJournal: -1, MaxPatchFraction: -1},
		func(ctx context.Context, mg *graph.Graph) (Querier, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return exactBase{mg}, nil
		})
	if _, err := d.Apply(randomUpdates(t, d, g, 3, 51)); err != nil {
		t.Fatal(err)
	}
	if err := sch.Force(context.Background()); err != nil {
		t.Fatalf("Force: %v", err)
	}
	if d.Pending() != 0 {
		t.Fatalf("pending = %d after Force", d.Pending())
	}
	sch.Close()
	if err := sch.Force(context.Background()); err == nil {
		t.Fatal("Force after Close succeeded")
	}
}

// TestConcurrentQueriesDuringSwap races queries (both regimes, plus
// the empty-patch delegation path) against mutation batches and
// rebuild swaps; under -race this pins the capture-base-under-lock
// and cache-epoch contracts, and every answer must still be exact for
// SOME generation in the journal window at the time it was issued —
// we simply require it to be a finite/consistent value and leave
// exactness to the quiescent check at the end.
func TestConcurrentQueriesDuringSwap(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(50, 120, 23), 20, 24)
	d := New(exactBase{g}, g, 0)
	sch := NewScheduler(d, Policy{MaxJournal: 3, MaxPatchFraction: -1},
		func(ctx context.Context, mg *graph.Graph) (Querier, error) {
			return exactBase{mg}, nil
		})
	defer sch.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 100)
			n := g.NumVertices()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := d.Query(r.Int31n(n), r.Int31n(n)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for round := 0; round < 8; round++ {
		ups := randomUpdates(t, d, d.MutatedGraph(), 4, uint64(round)+700)
		if _, err := d.Apply(ups); err != nil {
			t.Fatal(err)
		}
		sch.Notify()
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if err := sch.Force(context.Background()); err != nil {
		t.Fatal(err)
	}
	mg := d.MutatedGraph()
	r := rng.New(9)
	for q := 0; q < 20; q++ {
		s, u := r.Int31n(mg.NumVertices()), r.Int31n(mg.NumVertices())
		want := exactDist(mg, s, u)
		if got, err := d.Query(s, u); err != nil || got != want {
			t.Fatalf("quiescent (%d,%d) = %d (%v), want %d", s, u, got, err, want)
		}
	}
}

// TestPolicyDue covers each trigger arm.
func TestPolicyDue(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(20, 40, 19), 10, 20)
	d := New(exactBase{g}, g, 0)
	if due, _ := (Policy{}).Due(d); due {
		t.Fatal("empty journal due")
	}
	if _, err := d.Apply(randomUpdates(t, d, g, 3, 61)); err != nil {
		t.Fatal(err)
	}
	if due, cause := (Policy{MaxJournal: 3, MaxPatchFraction: -1}).Due(d); !due || cause != "journal" {
		t.Fatalf("journal trigger: due=%v cause=%q", due, cause)
	}
	if due, cause := (Policy{MaxJournal: -1, MaxPatchFraction: 0.01}).Due(d); !due || cause != "patch-fraction" {
		t.Fatalf("patch trigger: due=%v cause=%q", due, cause)
	}
	if due, _ := (Policy{MaxJournal: -1, MaxPatchFraction: -1, MaxStaleness: time.Hour}).Due(d); due {
		t.Fatal("fresh journal already stale")
	}
	if due, cause := (Policy{MaxJournal: -1, MaxPatchFraction: -1, MaxStaleness: time.Nanosecond}).Due(d); !due || cause != "staleness" {
		t.Fatalf("staleness trigger: due=%v cause=%q", due, cause)
	}
}
