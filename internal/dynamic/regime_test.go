package dynamic

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// findNonEdge returns a vertex pair with no base edge in g.
func findNonEdge(t *testing.T, g *graph.Graph) (graph.V, graph.V) {
	t.Helper()
	present := map[pairKey]bool{}
	for _, e := range g.Edges() {
		present[keyOf(e.U, e.V)] = true
	}
	n := g.NumVertices()
	for u := graph.V(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !present[keyOf(u, v)] {
				return u, v
			}
		}
	}
	t.Fatal("graph is complete; no non-edge available")
	return 0, 0
}

// findHeavyEdge returns a base edge with weight >= 2, so a
// reweight-down stays a positive weight.
func findHeavyEdge(t *testing.T, g *graph.Graph) graph.Edge {
	t.Helper()
	for _, e := range g.Edges() {
		if e.W >= 2 {
			return e
		}
	}
	t.Fatal("no base edge with weight >= 2")
	return graph.Edge{}
}

// TestRegimeClassification walks Regime() through every
// mutation-driven transition: fresh oracles are clean, net inserts
// and weight decreases are improving, any delete or weight increase
// of a present base pair is degrading (and stays degrading while a
// single blocked pair remains), reverting the patch to a net no-op
// returns to clean, and a Swap at the latest generation compacts the
// journal back to clean regardless of what preceded it.
func TestRegimeClassification(t *testing.T) {
	type step struct {
		ops  func(t *testing.T, d *Oracle, g *graph.Graph) []Update
		want string
	}
	base := func() *graph.Graph {
		return graph.UniformWeights(graph.Grid2D(5, 5), 30, 2)
	}
	insertNew := func(t *testing.T, d *Oracle, g *graph.Graph) []Update {
		u, v := findNonEdge(t, g)
		return []Update{{Op: OpInsert, U: u, V: v, W: 3}}
	}
	deleteBase := func(t *testing.T, d *Oracle, g *graph.Graph) []Update {
		e := g.Edges()[0]
		return []Update{{Op: OpDelete, U: e.U, V: e.V}}
	}
	reweightUp := func(t *testing.T, d *Oracle, g *graph.Graph) []Update {
		e := g.Edges()[0]
		return []Update{{Op: OpReweight, U: e.U, V: e.V, W: e.W + 5}}
	}
	reweightDown := func(t *testing.T, d *Oracle, g *graph.Graph) []Update {
		e := findHeavyEdge(t, g)
		return []Update{{Op: OpReweight, U: e.U, V: e.V, W: e.W - 1}}
	}
	deleteInserted := func(t *testing.T, d *Oracle, g *graph.Graph) []Update {
		u, v := findNonEdge(t, g)
		return []Update{{Op: OpDelete, U: u, V: v}}
	}
	for _, tc := range []struct {
		name  string
		steps []step
	}{
		{"fresh-clean", nil},
		{"insert-improving", []step{{insertNew, "improving"}}},
		{"insert-then-delete-clean", []step{
			{insertNew, "improving"},
			// Deleting the inserted pair nets the patch back to a
			// no-op: non-empty journal, but no blocked pairs and no
			// overlay arcs.
			{deleteInserted, "clean"},
		}},
		{"delete-base-degrading", []step{{deleteBase, "degrading"}}},
		{"reweight-up-degrading", []step{{reweightUp, "degrading"}}},
		{"reweight-down-improving", []step{{reweightDown, "improving"}}},
		{"improving-to-degrading-flip", []step{
			{insertNew, "improving"},
			{deleteBase, "degrading"},
		}},
		{"degrading-dominates-improving", []step{
			{deleteBase, "degrading"},
			// An improving op cannot lift a blocked pair.
			{insertNew, "degrading"},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := base()
			d := New(exactBase{g}, g, 0)
			if reg, gen := d.Regime(); reg != "clean" || gen != 0 {
				t.Fatalf("fresh oracle: Regime() = (%q, %d), want (clean, 0)", reg, gen)
			}
			for i, st := range tc.steps {
				ups := st.ops(t, d, g)
				gen, err := d.Apply(ups)
				if err != nil {
					t.Fatalf("step %d: Apply: %v", i, err)
				}
				reg, rgen := d.Regime()
				if reg != st.want {
					t.Fatalf("step %d: Regime() = %q, want %q", i, reg, st.want)
				}
				if rgen != gen {
					t.Fatalf("step %d: Regime() gen = %d, Apply returned %d", i, rgen, gen)
				}
			}
		})
	}
}

// TestRegimeSwapReset: a rebuild (Swap at the latest generation)
// compacts the journal away and resets any regime — including
// degrading — back to clean, with the floor advanced to the swap
// point.
func TestRegimeSwapReset(t *testing.T) {
	g := graph.UniformWeights(graph.Grid2D(5, 5), 30, 2)
	d := New(exactBase{g}, g, 0)
	e := g.Edges()[0]
	if _, err := d.Apply([]Update{{Op: OpDelete, U: e.U, V: e.V}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	u, v := findNonEdge(t, g)
	gen, err := d.Apply([]Update{{Op: OpInsert, U: u, V: v, W: 2}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if reg, _ := d.Regime(); reg != "degrading" {
		t.Fatalf("pre-swap Regime() = %q, want degrading", reg)
	}
	mg := d.MutatedGraph()
	if err := d.Swap(exactBase{mg}, mg, gen); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	reg, rgen := d.Regime()
	if reg != "clean" || rgen != gen {
		t.Fatalf("post-swap Regime() = (%q, %d), want (clean, %d)", reg, rgen, gen)
	}
	if fg := d.FloorGen(); fg != gen {
		t.Fatalf("post-swap FloorGen() = %d, want %d", fg, gen)
	}
	// Post-rebuild mutations classify from the new baseline: the
	// re-inserted pair is now a base edge, so deleting it degrades.
	if _, err := d.Apply([]Update{{Op: OpDelete, U: u, V: v}}); err != nil {
		t.Fatalf("post-swap Apply: %v", err)
	}
	if reg, _ := d.Regime(); reg != "degrading" {
		t.Fatalf("post-swap delete: Regime() = %q, want degrading", reg)
	}
}

// TestExactDistanceAt: the auditor's ground-truth probe matches plain
// Dijkstra on the materialized graph at every live generation, in
// every regime, and fails with the documented sentinels outside the
// retained window.
func TestExactDistanceAt(t *testing.T) {
	g := graph.UniformWeights(graph.RandomConnectedGNM(40, 100, 3), 20, 5)
	d := New(exactBase{g}, g, 0)
	for round := 0; round < 4; round++ {
		ups := randomUpdates(t, d, d.MutatedGraph(), 4, uint64(round)*13+2)
		if _, err := d.Apply(ups); err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}
	}
	top := d.Generation()
	n := g.NumVertices()
	pairs := [][2]graph.V{{0, 1}, {3, 17}, {5, 5}, {n - 1, 0}, {12, 33}}
	for gen := uint64(0); gen <= top; gen++ {
		mg, err := d.MutatedGraphAt(gen)
		if err != nil {
			t.Fatalf("MutatedGraphAt(%d): %v", gen, err)
		}
		for _, p := range pairs {
			want := graph.Dist(0)
			if p[0] != p[1] {
				want = exactDist(mg, p[0], p[1])
			}
			got, err := d.ExactDistanceAt(gen, p[0], p[1])
			if err != nil {
				t.Fatalf("ExactDistanceAt(%d, %d, %d): %v", gen, p[0], p[1], err)
			}
			if got != want {
				t.Fatalf("ExactDistanceAt(%d, %d, %d) = %d, want %d", gen, p[0], p[1], got, want)
			}
		}
	}
	if _, err := d.ExactDistanceAt(top+1, 0, 1); !errors.Is(err, ErrFutureGen) {
		t.Fatalf("future gen: err = %v, want ErrFutureGen", err)
	}
	if _, err := d.ExactDistanceAt(top, -1, 1); err == nil {
		t.Fatal("out-of-range source: want error")
	}
	if _, err := d.ExactDistanceAt(top, 0, n); err == nil {
		t.Fatal("out-of-range target: want error")
	}
	// Compact at the midpoint: older generations must turn into
	// ErrCompactedGen (the auditor treats those as dropped samples),
	// newer ones keep answering.
	mid := top / 2
	mg, err := d.MutatedGraphAt(mid)
	if err != nil {
		t.Fatalf("MutatedGraphAt(%d): %v", mid, err)
	}
	if err := d.Swap(exactBase{mg}, mg, mid); err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if mid > 0 {
		if _, err := d.ExactDistanceAt(mid-1, 0, 1); !errors.Is(err, ErrCompactedGen) {
			t.Fatalf("compacted gen: err = %v, want ErrCompactedGen", err)
		}
	}
	for gen := mid; gen <= top; gen++ {
		mgAt, err := d.MutatedGraphAt(gen)
		if err != nil {
			t.Fatalf("post-swap MutatedGraphAt(%d): %v", gen, err)
		}
		want := exactDist(mgAt, 2, 31)
		got, err := d.ExactDistanceAt(gen, 2, 31)
		if err != nil {
			t.Fatalf("post-swap ExactDistanceAt(%d): %v", gen, err)
		}
		if got != want {
			t.Fatalf("post-swap ExactDistanceAt(%d) = %d, want %d", gen, got, want)
		}
	}
}

// TestExactDistanceAtDisconnected: deleting a leafy vertex's only
// edges yields InfDist from the exact probe, never a panic or a
// finite fabrication.
func TestExactDistanceAtDisconnected(t *testing.T) {
	g := graph.Grid2D(4, 4)
	d := New(exactBase{g}, g, 0)
	// Corner vertex 0 in a 4x4 grid has exactly two incident edges.
	var ups []Update
	for _, e := range g.Edges() {
		if e.U == 0 || e.V == 0 {
			ups = append(ups, Update{Op: OpDelete, U: e.U, V: e.V})
		}
	}
	if len(ups) != 2 {
		t.Fatalf("corner vertex has %d incident edges, want 2", len(ups))
	}
	gen, err := d.Apply(ups)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got, err := d.ExactDistanceAt(gen, 0, 15)
	if err != nil {
		t.Fatalf("ExactDistanceAt: %v", err)
	}
	if got < graph.InfDist {
		t.Fatalf("disconnected pair: got finite distance %d", got)
	}
	// Generation 0 still sees the intact grid.
	if got, err := d.ExactDistanceAt(0, 0, 15); err != nil || got != exactDist(g, 0, 15) {
		t.Fatalf("gen 0: got (%d, %v), want (%d, nil)", got, err, exactDist(g, 0, 15))
	}
}
