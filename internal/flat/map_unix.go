//go:build unix && !purego

package flat

import (
	"os"
	"syscall"
)

// mapFile mmaps the whole file read-only. MAP_SHARED keeps the page
// cache shared between every process mapping the same snapshot.
func mapFile(f *os.File, size int) (*Mapping, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data, mapped: true}, nil
}

func (m *Mapping) unmap() error {
	if !m.mapped || m.data == nil {
		return nil
	}
	return syscall.Munmap(m.data)
}
