package flat

import (
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/wscale"
)

// Open restores an oracle from an arena without copying its arrays:
// every graph, hopset edge list, and labeling in the returned Parts
// is a slice aliasing data, which therefore must stay alive (and
// unmodified) as long as the oracle serves — the snapshot facade
// chains the oracle to its Mapping for exactly this reason.
//
// The arena is untrusted: Open verifies the header, table, and every
// per-section CRC32, then validates the same structural invariants
// the v2 decoder checks — nothing Open accepts can panic a later
// query. Any violation returns an error wrapping ErrCorrupt.
//
// base, when non-nil, is a caller-resident graph the oracle should
// bind to instead of the embedded copy. If its fingerprint matches
// the arena header, the embedded base graph's arrays are only
// section-checked (kind, size, CRC) — not cross-validated — because
// the oracle will never read them; this mirrors the v2 codec, which
// binds a caller graph by fingerprint without re-validating the
// embedded copy. A base whose fingerprint does not match is ignored
// (the fully validated embedded graph is returned, and the caller's
// own fingerprint comparison reports the mismatch).
func Open(data []byte, base *graph.Graph) (*Parts, error) {
	if !hostLittleEndian() {
		return nil, corruptf("arena format requires a little-endian host (use the codec format)")
	}
	o, h, err := openArena(data)
	if err != nil {
		return nil, err
	}
	r := &ixReader{b: o.index}
	p := &Parts{Eps: h.eps, Seed: h.seed, Fingerprint: h.fingerprint, FloorGen: h.floorGen}

	trusted := base
	if trusted != nil && trusted.Fingerprint() != h.fingerprint {
		trusted = nil
	}
	noteSec := r.i32()
	journalSec := r.i32()
	g := o.readGraph(r, 1<<31, true, trusted)
	if r.err != nil {
		return nil, r.err
	}
	p.Graph = g
	switch h.mode {
	case modeDegenerate:
		p.Degenerate = true
	case modeDirect:
		p.Direct = o.readScaled(r, g)
	case modeDecomposed:
		p.Dec, p.Instances = o.readWScale(r, g)
	default:
		return nil, corruptf("header mode %d is not an oracle shape", h.mode)
	}
	if r.err != nil {
		return nil, r.err
	}
	if !r.done() {
		return nil, corruptf("index holds %d trailing bytes", len(o.index)-r.off)
	}
	if noteSec >= 0 {
		raw, err := o.payload(noteSec, kindNote)
		if err != nil {
			return nil, err
		}
		if len(raw) > maxNote {
			return nil, corruptf("note of %d bytes exceeds the %d limit", len(raw), maxNote)
		}
		// The note is the one blob callers may retain past the mapping
		// (the server parses it into its own structures) — copy it out.
		p.Note = append([]byte(nil), raw...)
	}
	if journalSec >= 0 {
		raw, err := o.payload(journalSec, kindJournal)
		if err != nil {
			return nil, err
		}
		p.Journal, err = unpackJournal(raw, g, h.floorGen)
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Fingerprint reads just the base-graph digest from an arena header
// (after verifying the header checksum only — no table or payload
// CRCs are scanned, so a mapped multi-GB arena is not faulted in),
// for cheap identity checks without a full open. A matching
// fingerprint is an identity hint, not an integrity proof; Open
// performs the full validation.
func Fingerprint(data []byte) (uint64, error) {
	h, _, _, err := parseHeader(data)
	if err != nil {
		return 0, err
	}
	return h.fingerprint, nil
}

// IsArena sniffs the 4-byte magic: the format negotiation between the
// v3 arena and the v1/v2 codec streams.
func IsArena(prefix []byte) bool {
	return len(prefix) >= 4 && string(prefix[:4]) == Magic
}

// ---------------------------------------------------------------------------
// Arena envelope: header, table, checksums.

type opener struct {
	data  []byte
	secs  []section
	index []byte
}

// parseHeader validates the fixed 72-byte header — length, magic,
// header checksum, version, byte order, scalar domains — and returns
// the decoded metadata plus the declared section count and total
// size. It reads nothing past the header: table and payload
// validation is openArena's job.
func parseHeader(data []byte) (arenaHeader, uint32, uint64, error) {
	var h arenaHeader
	if len(data) < headerSize {
		return h, 0, 0, corruptf("arena of %d bytes is smaller than a header", len(data))
	}
	if string(data[0:4]) != Magic {
		return h, 0, 0, corruptf("bad magic %q", data[0:4])
	}
	if headerCRC(data) != le32(data[64:]) {
		return h, 0, 0, corruptf("header checksum mismatch")
	}
	if v := le32(data[4:]); v != Version {
		return h, 0, 0, corruptf("arena version %d, want %d", v, Version)
	}
	if le32(data[8:]) != endianMarker {
		return h, 0, 0, corruptf("arena written with foreign byte order")
	}
	nsec := le32(data[12:])
	total := le64(data[16:])
	h.fingerprint = le64(data[24:])
	h.eps = mathFloat64frombits(le64(data[32:]))
	h.seed = le64(data[40:])
	h.floorGen = le64(data[48:])
	h.mode = data[56]
	if total != uint64(len(data)) {
		return h, 0, 0, corruptf("header declares %d bytes, file holds %d", total, len(data))
	}
	if !finite(h.eps) || h.eps < 0 || h.eps >= 1 {
		return h, 0, 0, corruptf("eps = %v out of range", h.eps)
	}
	if nsec < 1 || nsec > maxSections {
		return h, 0, 0, corruptf("section count %d out of range", nsec)
	}
	return h, nsec, total, nil
}

// openArena validates the envelope — lengths, magic, version,
// endianness, header/table/payload CRCs, section bounds and alignment
// — and returns the parsed table plus the index blob.
func openArena(data []byte) (*opener, arenaHeader, error) {
	h, nsec, total, err := parseHeader(data)
	if err != nil {
		return nil, h, err
	}
	tableEnd := uint64(headerSize) + uint64(nsec)*tableEntSize
	if tableEnd > total {
		return nil, h, corruptf("section table overruns the arena")
	}
	table := data[headerSize:tableEnd]
	if checksum(table) != le32(data[60:]) {
		return nil, h, corruptf("section table checksum mismatch")
	}
	o := &opener{data: data, secs: make([]section, nsec)}
	// The layout is canonical: payloads tightly packed in table order,
	// each at the 8-aligned end of its predecessor, alignment gaps
	// zero. Enforcing it makes overlap impossible and — together with
	// the header, table, and payload CRCs — leaves no byte of the
	// arena unchecked.
	prevEnd := tableEnd
	for i := range o.secs {
		ent := table[i*tableEntSize:]
		s := section{
			kind: le32(ent),
			crc:  le32(ent[4:]),
			off:  le64(ent[8:]),
			size: le64(ent[16:]),
		}
		// ap > total must be rejected before the size check: with
		// s.off == ap past the end, total-ap underflows and any size
		// passes, and the pad/checksum slices below go out of bounds.
		ap := align8(prevEnd)
		if s.off != ap || ap > total || s.size > total-ap {
			return nil, h, corruptf("section %d spans [%d,+%d), want tight packing at %d in %d bytes", i, s.off, s.size, ap, total)
		}
		for _, pad := range data[prevEnd:s.off] {
			if pad != 0 {
				return nil, h, corruptf("nonzero alignment padding before section %d", i)
			}
		}
		if checksum(data[s.off:s.off+s.size]) != s.crc {
			return nil, h, corruptf("section %d checksum mismatch", i)
		}
		prevEnd = s.off + s.size
		o.secs[i] = s
	}
	if prevEnd != total {
		return nil, h, corruptf("arena holds %d bytes past the last section", total-prevEnd)
	}
	if o.secs[0].kind != kindIndex {
		return nil, h, corruptf("section 0 has kind %d, want the index", o.secs[0].kind)
	}
	o.index = o.payloadOf(0)
	return o, h, nil
}

func (o *opener) payloadOf(i int32) []byte {
	s := o.secs[i]
	return o.data[s.off : s.off+s.size]
}

// payload resolves a section ordinal from the index, checking range
// and kind (an index that references the wrong section type is
// corrupt, not a cast hazard).
func (o *opener) payload(i int32, kind uint32) ([]byte, error) {
	if i < 0 || int(i) >= len(o.secs) {
		return nil, corruptf("section reference %d out of range %d", i, len(o.secs))
	}
	if o.secs[i].kind != kind {
		return nil, corruptf("section %d has kind %d, want %d", i, o.secs[i].kind, kind)
	}
	return o.payloadOf(i), nil
}

// arrayOf resolves a typed array section into a slice aliasing the
// arena. count < 0 derives the element count from the section size.
func arrayOf[T any](o *opener, r *ixReader, kind uint32, count int) []T {
	sec := r.i32()
	if r.err != nil {
		return nil
	}
	raw, err := o.payload(sec, kind)
	if err != nil {
		r.fail(err)
		return nil
	}
	if count < 0 {
		var zero T
		sz := intSizeof(zero)
		if len(raw)%sz != 0 {
			r.fail(corruptf("section %d size %d not a whole number of %d-byte elements", sec, len(raw), sz))
			return nil
		}
		count = len(raw) / sz
	}
	arr, err := view[T](raw, count)
	if err != nil {
		r.fail(err)
		return nil
	}
	return arr
}

// ---------------------------------------------------------------------------
// Graph references.

// readGraph reconstructs one graph as a zero-copy view over the arena
// and validates it. maxOrig bounds OrigEdgeID back-map values, as in
// the codec. deep selects the fused graph.Validate-equivalent pass
// (the base graph's contract with the fuzz harness); shallow graphs
// get the targeted array checks, which already cover everything their
// use on the query path can index with. A non-nil trusted graph (its
// fingerprint already matched the arena header) short-circuits
// content validation entirely: the sections are still resolved (kind,
// size, CRC) to keep the index walk honest, the scalar metadata is
// cross-checked, and trusted itself is returned — the embedded arrays
// are never read again.
func (o *opener) readGraph(r *ixReader, maxOrig int64, deep bool, trusted *graph.Graph) *graph.Graph {
	var v graph.CSRView
	v.N = r.i32()
	m := r.i64()
	weighted := r.u8()
	v.MinW = r.i64()
	v.MaxW = r.i64()
	if r.err != nil {
		return nil
	}
	if weighted > 1 {
		r.fail(corruptf("graph weighted flag %d", weighted))
		return nil
	}
	v.Weighted = weighted == 1
	if v.N < 0 || int64(v.N) > maxVertices {
		r.fail(corruptf("vertex count %d exceeds the format limit %d", v.N, maxVertices))
		return nil
	}
	if m < 0 || m > int64(maxVertices)*maxVertices {
		r.fail(corruptf("edge count %d out of range", m))
		return nil
	}
	v.Edges = arrayOf[graph.Edge](o, r, kindEdge, int(m))
	v.Offs = arrayOf[int64](o, r, kindI64, int(v.N)+1)
	v.Dst = arrayOf[graph.V](o, r, kindI32, int(2*m))
	if v.Weighted {
		v.Wts = arrayOf[graph.W](o, r, kindI64, int(2*m))
	} else {
		if sec := r.i32(); r.err == nil && sec != -1 {
			r.fail(corruptf("unweighted graph carries a weight section"))
		}
	}
	v.Eids = arrayOf[int32](o, r, kindI32, int(2*m))
	origSec := r.i32()
	if r.err == nil && origSec >= 0 {
		// Re-read through arrayOf's machinery: back up one i32.
		r.off -= 4
		v.OrigEID = arrayOf[int32](o, r, kindI32, int(m))
	}
	if r.err != nil {
		return nil
	}
	if trusted != nil {
		if int64(v.N) != int64(trusted.NumVertices()) || m != trusted.NumEdges() ||
			v.Weighted != trusted.Weighted() ||
			v.MinW != trusted.MinWeight() || v.MaxW != trusted.MaxWeight() {
			r.fail(corruptf("embedded graph metadata does not match the fingerprint-matched caller graph"))
			return nil
		}
		return trusted
	}
	if err := checkGraphView(&v, maxOrig, deep); err != nil {
		r.fail(err)
		return nil
	}
	return graph.FromCSRView(v)
}

// checkGraphView validates the CSR arrays: every value any consumer
// indexes with must be in range, weights must satisfy the positivity
// the search kernels assume, and the cached extrema must match the
// edge list (wscale's category math reads them).
//
// With deep=true it additionally proves full CSR ↔ edge-list
// cross-consistency in one fused pass — every check graph.Validate
// performs, rewritten flat over the raw view so the base graph is
// walked once instead of twice (the snapshot fuzz target asserts
// loaded graphs pass Validate; this is what guarantees it). With
// deep=false (contracted instance graphs) only range/domain checks
// run, matching what the v2 codec verifies for them.
func checkGraphView(v *graph.CSRView, maxOrig int64, deep bool) error {
	n, m := int64(v.N), int64(len(v.Edges))
	if v.Offs[0] != 0 || v.Offs[n] != 2*m {
		return corruptf("offs endpoints [%d,%d], want [0,%d]", v.Offs[0], v.Offs[n], 2*m)
	}
	for i := int64(0); i < n; i++ {
		if v.Offs[i] > v.Offs[i+1] {
			return corruptf("offs not monotone at %d", i)
		}
	}
	un := uint32(n) // n <= maxVertices < 2^31, so unsigned compares catch negatives too
	if deep {
		// Each CSR direction must name an in-range neighbor and point at
		// the canonical edge it came from (endpoints and weight match),
		// and each edge must appear in exactly two directions. Self-loops
		// and endpoint ranges are then covered by the edge-list pass:
		// dirCount == 2 means no edge escapes it.
		dirCount := make([]int32, m)
		for u := int64(0); u < n; u++ {
			// Subslice per vertex: the offs are already proven monotone
			// with in-range endpoints, and ranging over the subslices
			// lets the compiler drop per-entry bounds checks.
			lo, hi := v.Offs[u], v.Offs[u+1]
			dst, eids := v.Dst[lo:hi], v.Eids[lo:hi]
			var wts []graph.W
			if v.Weighted {
				wts = v.Wts[lo:hi]
			}
			uv := graph.V(u)
			for i, d := range dst {
				if uint32(d) >= un {
					return corruptf("adjacency target %d out of range n=%d at vertex %d", d, n, u)
				}
				e := eids[i]
				if uint64(int64(e)) >= uint64(m) {
					return corruptf("adjacency edge id %d out of range m=%d at vertex %d", e, m, u)
				}
				ed := &v.Edges[e]
				if !((ed.U == uv && ed.V == d) || (ed.U == d && ed.V == uv)) {
					return corruptf("adjacency edge id %d at vertex %d does not match edge (%d,%d)", e, u, ed.U, ed.V)
				}
				if wts != nil && wts[i] != ed.W {
					return corruptf("adjacency weight %d != edge %d weight %d", wts[i], e, ed.W)
				}
				dirCount[e]++
			}
		}
		for e, c := range dirCount {
			if c != 2 {
				return corruptf("edge %d appears in %d directions, want 2", e, c)
			}
		}
	} else {
		for i, d := range v.Dst {
			if uint32(d) >= un {
				return corruptf("adjacency target %d out of range n=%d at %d", d, n, i)
			}
		}
		for i, e := range v.Eids {
			if uint64(int64(e)) >= uint64(m) {
				return corruptf("adjacency edge id %d out of range m=%d at %d", e, m, i)
			}
		}
		for i := range v.Wts {
			if v.Wts[i] <= 0 {
				return corruptf("adjacency weight %d invalid at %d", v.Wts[i], i)
			}
		}
	}
	minW, maxW := graph.W(1), graph.W(1)
	for i := range v.Edges {
		e := &v.Edges[i]
		if !deep && (uint32(e.U) >= un || uint32(e.V) >= un) {
			return corruptf("edge endpoint (%d,%d) out of range n=%d", e.U, e.V, n)
		}
		if e.U == e.V {
			return corruptf("self-loop at vertex %d", e.U)
		}
		if e.W <= 0 || (!v.Weighted && e.W != 1) {
			return corruptf("edge weight %d invalid (weighted=%v)", e.W, v.Weighted)
		}
		if v.Weighted {
			if i == 0 {
				minW, maxW = e.W, e.W
			} else {
				if e.W < minW {
					minW = e.W
				}
				if e.W > maxW {
					maxW = e.W
				}
			}
		}
	}
	if v.MinW != minW || v.MaxW != maxW {
		return corruptf("cached weight extrema [%d,%d], edges say [%d,%d]", v.MinW, v.MaxW, minW, maxW)
	}
	for i, oe := range v.OrigEID {
		if int64(oe) < 0 || int64(oe) >= maxOrig {
			return corruptf("orig edge id %d out of range %d at %d", oe, maxOrig, i)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Hopset references.

func (o *opener) readScaled(r *ixReader, base *graph.Graph) *hopset.Scaled {
	var wp hopset.WeightedParams
	wp.Epsilon = r.f64()
	wp.Delta = r.f64()
	wp.Gamma1 = r.f64()
	wp.Gamma2 = r.f64()
	wp.K = r.f64()
	mf := r.i64()
	wp.Seed = r.u64()
	wp.Eta = r.f64()
	wp.Zeta = r.f64()
	wp.Escalation = r.f64()
	wp.InitialHopBudget = r.f64()
	if r.err != nil {
		return nil
	}
	if err := checkParams(&wp.Params, mf); err != nil {
		r.fail(err)
		return nil
	}
	switch {
	case !finite(wp.Eta) || wp.Eta <= 0 || wp.Eta > 1:
		r.fail(corruptf("params Eta = %v out of (0,1]", wp.Eta))
	case !finite(wp.Zeta) || wp.Zeta <= 0 || wp.Zeta >= 1:
		r.fail(corruptf("params Zeta = %v out of (0,1)", wp.Zeta))
	case !finite(wp.Escalation) || wp.Escalation < 2:
		r.fail(corruptf("params Escalation = %v, want >= 2", wp.Escalation))
	case !finite(wp.InitialHopBudget) || wp.InitialHopBudget < 1:
		r.fail(corruptf("params InitialHopBudget = %v, want >= 1", wp.InitialHopBudget))
	}
	if r.err != nil {
		return nil
	}

	n := base.NumVertices()
	numResults := r.u32()
	if numResults > maxSections {
		r.fail(corruptf("hopset declares %d result tables", numResults))
		return nil
	}
	results := make([]*hopset.Result, 0, numResults)
	for ri := uint32(0); ri < numResults && r.err == nil; ri++ {
		res := &hopset.Result{}
		res.Params.Epsilon = r.f64()
		res.Params.Delta = r.f64()
		res.Params.Gamma1 = r.f64()
		res.Params.Gamma2 = r.f64()
		res.Params.K = r.f64()
		rmf := r.i64()
		res.Params.Seed = r.u64()
		res.Stars = int(r.i64())
		res.Cliques = int(r.i64())
		res.Levels = int(r.i64())
		res.Edges = arrayOf[graph.Edge](o, r, kindEdge, -1)
		if r.err != nil {
			break
		}
		if err := checkParams(&res.Params, rmf); err != nil {
			r.fail(err)
			break
		}
		un := uint32(n) // unsigned compares catch negative endpoints too
		for i := range res.Edges {
			e := &res.Edges[i]
			if uint32(e.U) >= un || uint32(e.V) >= un || e.U == e.V || e.W <= 0 {
				r.fail(corruptf("hopset edge (%d,%d,w=%d) invalid for n=%d", e.U, e.V, e.W, n))
				break
			}
		}
		results = append(results, res)
	}
	numScales := r.u32()
	if numScales > maxSections {
		r.fail(corruptf("hopset declares %d scales", numScales))
		return nil
	}
	scales := make([]hopset.Scale, 0, numScales)
	for i := uint32(0); i < numScales && r.err == nil; i++ {
		var sc hopset.Scale
		sc.D = r.f64()
		sc.WHat = r.i64()
		idx := r.u32()
		if r.err != nil {
			break
		}
		if !finite(sc.D) || sc.D <= 0 {
			r.fail(corruptf("scale D = %v invalid", sc.D))
			break
		}
		if sc.WHat < 1 {
			r.fail(corruptf("scale WHat = %d, want >= 1", sc.WHat))
			break
		}
		if uint64(idx) >= uint64(len(results)) {
			r.fail(corruptf("scale result index %d out of range %d", idx, len(results)))
			break
		}
		sc.Res = results[idx]
		scales = append(scales, sc)
	}
	if r.err != nil {
		return nil
	}
	// The augmented query graph is not stored: Augmented() rebuilds it
	// deterministically from the base graph and band edges on first use.
	return hopset.NewScaled(base, scales, wp)
}

func checkParams(p *hopset.Params, mf int64) error {
	switch {
	case !finite(p.Epsilon) || p.Epsilon <= 0 || p.Epsilon >= 1:
		return corruptf("params Epsilon = %v out of (0,1)", p.Epsilon)
	case !finite(p.Delta) || p.Delta <= 1:
		return corruptf("params Delta = %v, want > 1", p.Delta)
	case !finite(p.Gamma1) || !finite(p.Gamma2) || p.Gamma1 <= 0 || p.Gamma2 <= p.Gamma1 || p.Gamma2 >= 1:
		return corruptf("params gammas (%v,%v) out of order", p.Gamma1, p.Gamma2)
	case !finite(p.K) || p.K < 1:
		return corruptf("params K = %v, want >= 1", p.K)
	case mf < 2 || mf > maxVertices:
		return corruptf("params MinFinal = %d out of range", mf)
	}
	p.MinFinal = int(mf)
	return nil
}

// ---------------------------------------------------------------------------
// Decomposition references.

func (o *opener) readWScale(r *ixReader, base *graph.Graph) (*wscale.Decomposition, []*hopset.Scaled) {
	dec := &wscale.Decomposition{Base: base}
	dec.Eps = r.f64()
	dec.B = r.f64()
	L := r.u32()
	if r.err != nil {
		return nil, nil
	}
	if !finite(dec.Eps) || dec.Eps <= 0 || dec.Eps >= 1 {
		r.fail(corruptf("decomposition eps = %v out of (0,1)", dec.Eps))
		return nil, nil
	}
	if !finite(dec.B) || dec.B < 2 {
		r.fail(corruptf("decomposition base B = %v, want >= 2", dec.B))
		return nil, nil
	}
	if L > maxSections {
		r.fail(corruptf("decomposition declares %d levels", L))
		return nil, nil
	}
	n := base.NumVertices()
	for j := uint32(0); j < L && r.err == nil; j++ {
		c := r.i64()
		count := r.i32()
		labels := arrayOf[graph.V](o, r, kindI32, int(n))
		if r.err != nil {
			break
		}
		if c < 0 || c > 1<<40 {
			r.fail(corruptf("category index %d out of range", c))
			break
		}
		if len(dec.Cats) > 0 && dec.Cats[len(dec.Cats)-1] >= int(c) {
			r.fail(corruptf("category levels not strictly ascending at %d", j))
			break
		}
		if count < 1 || count > n {
			r.fail(corruptf("level %d component count %d out of range n=%d", j, count, n))
			break
		}
		for _, lbl := range labels {
			if lbl < 0 || lbl >= count {
				r.fail(corruptf("level %d component label %d out of range %d", j, lbl, count))
				break
			}
		}
		dec.Cats = append(dec.Cats, int(c))
		dec.LevelCounts = append(dec.LevelCounts, count)
		dec.Levels = append(dec.Levels, labels)
	}
	if r.err != nil {
		return nil, nil
	}
	var instances []*hopset.Scaled
	for j := uint32(0); j < L && r.err == nil; j++ {
		inst := &wscale.Instance{Level: int(j)}
		kind := r.u8()
		var labelSec []graph.V
		var sharedRef int64 = -1
		switch kind {
		case labelIdentity:
		case labelShared:
			sharedRef = r.i64()
			if r.err == nil && (sharedRef < 0 || sharedRef >= int64(len(dec.Levels))) {
				r.fail(corruptf("instance %d label reference %d out of range %d", j, sharedRef, len(dec.Levels)))
			}
		case labelExplicit:
			labelSec = arrayOf[graph.V](o, r, kindI32, int(n))
		default:
			r.fail(corruptf("instance %d unknown label encoding %d", j, kind))
		}
		if r.err != nil {
			break
		}
		inst.G = o.readGraph(r, base.NumEdges(), false, nil)
		if r.err != nil {
			break
		}
		instN := inst.G.NumVertices()
		switch kind {
		case labelIdentity:
			if instN != n {
				r.fail(corruptf("instance %d identity labeling over %d vertices, graph has %d", j, n, instN))
			} else {
				inst.Label = make([]graph.V, n)
				for v := range inst.Label {
					inst.Label[v] = graph.V(v)
				}
			}
		case labelShared:
			if dec.LevelCounts[sharedRef] != instN {
				r.fail(corruptf("instance %d labels via level %d with %d components, graph has %d vertices",
					j, sharedRef, dec.LevelCounts[sharedRef], instN))
			} else {
				inst.Label = dec.Levels[sharedRef]
			}
		case labelExplicit:
			for _, lbl := range labelSec {
				if lbl < 0 || lbl >= instN {
					r.fail(corruptf("instance %d label %d out of range n=%d", j, lbl, instN))
					break
				}
			}
			inst.Label = labelSec
		}
		if r.err != nil {
			break
		}
		dec.Instances = append(dec.Instances, inst)
		instances = append(instances, o.readScaled(r, inst.G))
	}
	if r.err != nil {
		return nil, nil
	}
	return dec, instances
}

// ---------------------------------------------------------------------------
// Journal.

// unpackJournal decodes and validates the journal blob against the
// base graph, with the same rules as the codec's readJournal.
func unpackJournal(raw []byte, g *graph.Graph, floorGen uint64) ([]dynamic.Entry, error) {
	r := &ixReader{b: raw}
	count := r.u64()
	if r.err == nil && count > maxJournalEntries {
		return nil, corruptf("journal declares %d entries, limit %d", count, maxJournalEntries)
	}
	n := g.NumVertices()
	var entries []dynamic.Entry
	prev := floorGen
	for i := uint64(0); i < count && r.err == nil; i++ {
		var ent dynamic.Entry
		ent.Gen = r.u64()
		op := r.u8()
		ent.U = r.i32()
		ent.V = r.i32()
		ent.W = r.i64()
		if r.err != nil {
			break
		}
		if op > uint8(dynamic.OpReweight) {
			return nil, corruptf("journal entry %d has unknown op %d", i, op)
		}
		ent.Op = dynamic.Op(op)
		if ent.Gen <= prev {
			return nil, corruptf("journal generations not ascending at entry %d (%d after %d)", i, ent.Gen, prev)
		}
		prev = ent.Gen
		if ent.U < 0 || ent.U >= n || ent.V < 0 || ent.V >= n {
			return nil, corruptf("journal entry %d endpoint (%d,%d) out of range n=%d", i, ent.U, ent.V, n)
		}
		if ent.U == ent.V {
			return nil, corruptf("journal entry %d is a self-loop at %d", i, ent.U)
		}
		if ent.Op != dynamic.OpDelete {
			if ent.W <= 0 {
				return nil, corruptf("journal entry %d has non-positive weight %d", i, ent.W)
			}
			if !g.Weighted() && ent.W != 1 {
				return nil, corruptf("journal entry %d carries weight %d into an unweighted graph", i, ent.W)
			}
		}
		entries = append(entries, ent)
	}
	if r.err != nil {
		return nil, r.err
	}
	if !r.done() {
		return nil, corruptf("journal blob holds %d trailing bytes", len(raw)-r.off)
	}
	return entries, nil
}
