package flat

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/par"
	"repro/internal/wscale"
)

// directParts builds a small direct-mode oracle shape over a weighted
// grid graph.
func directParts(t *testing.T) *Parts {
	t.Helper()
	g := graph.UniformWeights(graph.Grid2D(6, 6), 50, 1)
	wp := hopset.DefaultWeightedParams(7)
	s := hopset.BuildScaled(g, wp, par.NewCost())
	return &Parts{Graph: g, Eps: 0.25, Seed: 7, Direct: s}
}

// decomposedParts builds a decomposed-mode oracle shape: a path graph
// with astronomically spread weights forces the wscale decomposition.
func decomposedParts(t *testing.T) *Parts {
	t.Helper()
	var edges []graph.Edge
	w := graph.W(1)
	for u := int32(0); u < 24; u++ {
		edges = append(edges, graph.Edge{U: u, V: u + 1, W: w})
		if u%4 == 3 {
			w *= 1 << 8
		}
	}
	g := graph.FromEdges(25, edges, true)
	dec := wscale.Build(g, 0.25, par.NewCost())
	if len(dec.Instances) < 2 {
		t.Fatalf("want a nontrivial decomposition, got %d instances", len(dec.Instances))
	}
	wp := hopset.DefaultWeightedParams(9)
	var instances []*hopset.Scaled
	for _, inst := range dec.Instances {
		instances = append(instances, hopset.BuildScaled(inst.G, wp, par.NewCost()))
	}
	return &Parts{Graph: g, Eps: 0.25, Seed: 9, Dec: dec, Instances: instances,
		FloorGen: 3,
		Journal: []dynamic.Entry{
			{Update: dynamic.Update{Op: dynamic.OpInsert, U: 0, V: 5, W: 2}, Gen: 4},
			{Update: dynamic.Update{Op: dynamic.OpDelete, U: 0, V: 1}, Gen: 6},
		},
		Note: []byte(`{"kind":"test"}`),
	}
}

func freezeBytes(t *testing.T, p *Parts) []byte {
	t.Helper()
	a, err := Freeze(p)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return a.Bytes()
}

func checkGraphEqual(t *testing.T, want, got *graph.Graph, label string) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() ||
		got.Weighted() != want.Weighted() {
		t.Fatalf("%s: shape mismatch", label)
	}
	if !reflect.DeepEqual(want.Edges(), got.Edges()) {
		t.Fatalf("%s: edge lists differ", label)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: restored graph invalid: %v", label, err)
	}
}

func checkScaledEqual(t *testing.T, want, got *hopset.Scaled, label string) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil restored hopset", label)
	}
	if !reflect.DeepEqual(want.Params, stripExec(got.Params)) {
		t.Fatalf("%s: params differ: %+v vs %+v", label, want.Params, got.Params)
	}
	if len(got.Scales) != len(want.Scales) {
		t.Fatalf("%s: %d scales, want %d", label, len(got.Scales), len(want.Scales))
	}
	for i := range want.Scales {
		w, g := want.Scales[i], got.Scales[i]
		if w.D != g.D || w.WHat != g.WHat {
			t.Fatalf("%s: scale %d metadata differs", label, i)
		}
		if w.Res.Stars != g.Res.Stars || w.Res.Cliques != g.Res.Cliques || w.Res.Levels != g.Res.Levels {
			t.Fatalf("%s: scale %d counters differ", label, i)
		}
		if len(w.Res.Edges) != len(g.Res.Edges) || (len(w.Res.Edges) > 0 && !reflect.DeepEqual(w.Res.Edges, g.Res.Edges)) {
			t.Fatalf("%s: scale %d hopset edges differ", label, i)
		}
	}
	// Result-table dedup must survive: bands sharing a Result in the
	// original share one in the restored hopset.
	for i := range want.Scales {
		for j := range want.Scales {
			wantShared := want.Scales[i].Res == want.Scales[j].Res
			gotShared := got.Scales[i].Res == got.Scales[j].Res
			if wantShared != gotShared {
				t.Fatalf("%s: result sharing (%d,%d) = %v, want %v", label, i, j, gotShared, wantShared)
			}
		}
	}
	checkGraphEqual(t, want.Augmented(), got.Augmented(), label+" augmented")
}

func stripExec(wp hopset.WeightedParams) hopset.WeightedParams {
	wp.Exec = nil
	wp.Parallel = false
	return wp
}

func TestRoundTripDirect(t *testing.T) {
	p := directParts(t)
	got, err := Open(freezeBytes(t, p), nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got.Eps != p.Eps || got.Seed != p.Seed || got.Degenerate || got.Dec != nil {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if got.Fingerprint != p.Graph.Fingerprint() {
		t.Fatalf("fingerprint %#x, want %#x", got.Fingerprint, p.Graph.Fingerprint())
	}
	checkGraphEqual(t, p.Graph, got.Graph, "base")
	checkScaledEqual(t, p.Direct, got.Direct, "direct")
	if got.Note != nil || got.Journal != nil || got.FloorGen != 0 {
		t.Fatalf("unexpected note/journal: %+v", got)
	}
}

func TestOpenWithCallerGraph(t *testing.T) {
	p := directParts(t)
	data := freezeBytes(t, p)
	// A fingerprint-matching caller graph is adopted directly — the
	// oracle binds to it, not to a fresh view over the arena.
	got, err := Open(data, p.Graph)
	if err != nil {
		t.Fatalf("Open with caller graph: %v", err)
	}
	if got.Graph != p.Graph {
		t.Fatal("caller graph not adopted as the base")
	}
	if got.Direct.Base != p.Graph {
		t.Fatal("hopset not bound to the caller graph")
	}
	checkScaledEqual(t, p.Direct, got.Direct, "direct")
	// A non-matching caller graph is ignored: the fully validated
	// embedded copy comes back instead (the snapshot facade then turns
	// the fingerprint mismatch into its own error).
	other := graph.UniformWeights(graph.Grid2D(4, 4), 9, 99)
	got, err = Open(data, other)
	if err != nil {
		t.Fatalf("Open with foreign graph: %v", err)
	}
	if got.Graph == other {
		t.Fatal("foreign graph adopted despite fingerprint mismatch")
	}
	checkGraphEqual(t, p.Graph, got.Graph, "fallback base")
	if err := got.Graph.Validate(); err != nil {
		t.Fatalf("fallback base not validated: %v", err)
	}
}

func TestRoundTripDecomposed(t *testing.T) {
	p := decomposedParts(t)
	got, err := Open(freezeBytes(t, p), nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got.Dec == nil || len(got.Instances) != len(p.Instances) {
		t.Fatalf("decomposition shape mismatch")
	}
	checkGraphEqual(t, p.Graph, got.Graph, "base")
	d, gd := p.Dec, got.Dec
	if d.Eps != gd.Eps || d.B != gd.B || !reflect.DeepEqual(d.Cats, gd.Cats) ||
		!reflect.DeepEqual(d.LevelCounts, gd.LevelCounts) || !reflect.DeepEqual(d.Levels, gd.Levels) {
		t.Fatalf("decomposition skeleton differs")
	}
	for j := range d.Instances {
		wi, gi := d.Instances[j], gd.Instances[j]
		if wi.Level != gi.Level || !reflect.DeepEqual(wi.Label, gi.Label) {
			t.Fatalf("instance %d labeling differs", j)
		}
		checkGraphEqual(t, wi.G, gi.G, "instance graph")
		checkScaledEqual(t, p.Instances[j], got.Instances[j], "instance hopset")
	}
	// Label sharing with the level arrays must survive the round trip.
	for j := range gd.Instances {
		if kind, ref := labelKind(gd, gd.Instances[j]); kind == labelShared {
			if &gd.Instances[j].Label[0] != &gd.Levels[ref][0] {
				t.Fatalf("instance %d label no longer aliases level %d", j, ref)
			}
		}
	}
	if got.FloorGen != p.FloorGen || !reflect.DeepEqual(got.Journal, p.Journal) {
		t.Fatalf("journal mismatch: %+v vs %+v", got.Journal, p.Journal)
	}
	if string(got.Note) != string(p.Note) {
		t.Fatalf("note %q, want %q", got.Note, p.Note)
	}
}

func TestRoundTripDegenerate(t *testing.T) {
	g := graph.FromEdges(1, nil, false)
	p := &Parts{Graph: g, Eps: 0.5, Seed: 1, Degenerate: true}
	got, err := Open(freezeBytes(t, p), nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !got.Degenerate || got.Direct != nil || got.Dec != nil {
		t.Fatalf("degenerate round trip: %+v", got)
	}
}

// TestOpenRejectsEveryBitFlippedByte asserts the total-coverage
// property: there is no byte in the arena whose corruption goes
// undetected (header, table, payloads, and alignment padding are all
// under some checksum or structural rule).
func TestOpenRejectsEveryBitFlippedByte(t *testing.T) {
	g := graph.UniformWeights(graph.Grid2D(3, 3), 9, 1)
	s := hopset.BuildScaled(g, hopset.DefaultWeightedParams(3), par.NewCost())
	data := freezeBytes(t, &Parts{Graph: g, Eps: 0.25, Seed: 3, Direct: s})
	if _, err := Open(data, nil); err != nil {
		t.Fatalf("pristine arena must open: %v", err)
	}
	mut := make([]byte, len(data))
	for i := range data {
		copy(mut, data)
		mut[i] ^= 0x40
		if _, err := Open(mut, nil); err == nil {
			t.Fatalf("flip at byte %d/%d accepted", i, len(data))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}
}

func TestOpenRejectsEveryTruncation(t *testing.T) {
	g := graph.UniformWeights(graph.Grid2D(3, 3), 9, 1)
	s := hopset.BuildScaled(g, hopset.DefaultWeightedParams(3), par.NewCost())
	data := freezeBytes(t, &Parts{Graph: g, Eps: 0.25, Seed: 3, Direct: s})
	for n := 0; n < len(data); n++ {
		if _, err := Open(data[:n], nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v", n, err)
		}
	}
	// Trailing garbage is also not an arena.
	if _, err := Open(append(append([]byte(nil), data...), 0), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("extended arena accepted")
	}
}

// forgeArena assembles an arena from raw table entries with every
// checksum recomputed (header, table, and each in-range payload), so
// tests can express layout-level forgeries — offsets past the end,
// wrapped sizes — that bit-flip mutation can never reach: a flip
// breaks a CRC before the layout rules run.
func forgeArena(total int, secs []section) []byte {
	data := make([]byte, total)
	copy(data, Magic)
	put32(data[4:], Version)
	put32(data[8:], endianMarker)
	put32(data[12:], uint32(len(secs)))
	put64(data[16:], uint64(total))
	put64(data[24:], 0xFEED)               // fingerprint
	put64(data[32:], mathFloat64bits(0.5)) // eps
	put64(data[40:], 1)                    // seed
	data[56] = modeDegenerate
	tableEnd := headerSize + len(secs)*tableEntSize
	for i, s := range secs {
		crc := s.crc
		if end := s.off + s.size; s.off >= uint64(tableEnd) && s.off <= uint64(total) && end >= s.off && end <= uint64(total) {
			crc = checksum(data[s.off:end])
		}
		ent := data[headerSize+i*tableEntSize:]
		put32(ent, s.kind)
		put32(ent[4:], crc)
		put64(ent[8:], s.off)
		put64(ent[16:], s.size)
	}
	put32(data[60:], checksum(data[headerSize:tableEnd]))
	put32(data[64:], headerCRC(data))
	return data
}

// TestOpenRejectsLayoutForgeries covers table-level attacks with
// valid checksums. The first case is a regression: a section ending
// unaligned just before the end of the arena puts the next entry's
// aligned offset past the end, the unsigned size check under-flowed,
// and the pad scan sliced out of bounds — Open panicked instead of
// returning ErrCorrupt.
func TestOpenRejectsLayoutForgeries(t *testing.T) {
	cases := []struct {
		name  string
		total int
		secs  []section
	}{
		// 2 sections in 127 bytes: section 0 ends at 125, so section 1's
		// tight-packing offset align8(125)=128 exceeds the arena.
		{"aligned offset past end", 127, []section{
			{kind: kindIndex, off: 120, size: 5},
			{kind: kindI32, off: 128, size: 0},
		}},
		{"aligned offset past end with huge size", 127, []section{
			{kind: kindIndex, off: 120, size: 5},
			{kind: kindI32, off: 128, size: 1 << 60},
		}},
		{"size wraps off+size past 2^64", 128, []section{
			{kind: kindIndex, off: 120, size: ^uint64(0) - 60},
		}},
		{"offset before the table", 128, []section{
			{kind: kindIndex, off: 0, size: 8, crc: 0xDEAD},
		}},
		{"gap between sections", 136, []section{
			{kind: kindIndex, off: 120, size: 8},
			{kind: kindI32, off: 136, size: 0},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Open panicked: %v", r)
				}
			}()
			if _, err := Open(forgeArena(tc.total, tc.secs), nil); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("forged layout: got %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestFingerprintHeaderOnly pins Fingerprint's cost contract: it
// validates the header checksum only, so it must succeed even when a
// payload byte is corrupt (no full-arena scan) and fail when the
// header itself is.
func TestFingerprintHeaderOnly(t *testing.T) {
	p := directParts(t)
	data := freezeBytes(t, p)
	want := p.Graph.Fingerprint()
	if got, err := Fingerprint(data); err != nil || got != want {
		t.Fatalf("Fingerprint = %#x, %v; want %#x", got, err, want)
	}
	// Corrupt the last payload byte: full validation would reject this,
	// a header-only read must not notice.
	mut := append([]byte(nil), data...)
	mut[len(mut)-1] ^= 0xFF
	if _, err := Open(mut, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open must reject the payload flip, got %v", err)
	}
	if got, err := Fingerprint(mut); err != nil || got != want {
		t.Fatalf("Fingerprint after payload flip = %#x, %v; want %#x (header-only)", got, err, want)
	}
	// Corrupt a header byte: the header CRC must catch it.
	mut = append(mut[:0:0], data...)
	mut[24] ^= 0x01 // fingerprint field itself
	if _, err := Fingerprint(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Fingerprint must reject a header flip, got %v", err)
	}
}

func TestMapFileRoundTrip(t *testing.T) {
	p := directParts(t)
	data := freezeBytes(t, p)
	path := t.TempDir() + "/oracle.snap"
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatalf("MapFile: %v", err)
	}
	if m.Size() != int64(len(data)) {
		t.Fatalf("mapping of %d bytes, want %d", m.Size(), len(data))
	}
	got, err := Open(m.Bytes(), nil)
	if err != nil {
		t.Fatalf("Open(mapped): %v", err)
	}
	checkGraphEqual(t, p.Graph, got.Graph, "mapped base")
	checkScaledEqual(t, p.Direct, got.Direct, "mapped direct")
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAlignBytes(t *testing.T) {
	base := alignedBuf(64)
	aligned := base[:32]
	if got := AlignBytes(aligned); &got[0] != &aligned[0] {
		t.Fatalf("aligned input copied")
	}
	misaligned := base[1:33]
	got := AlignBytes(misaligned)
	if &got[0] == &misaligned[0] {
		t.Fatalf("misaligned input not copied")
	}
	if !reflect.DeepEqual([]byte(got), []byte(misaligned)) {
		t.Fatalf("copy differs")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
