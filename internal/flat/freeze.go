package flat

import (
	"errors"
	"fmt"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/wscale"
)

// Parts is the exchange shape between a built oracle and its arena —
// the same decomposition the v2 codec uses (snapshot.Oracle), so the
// facade converts one way regardless of format. Exactly one of the
// three shapes is populated: Degenerate, Direct, or Dec+Instances.
type Parts struct {
	// Graph is the base graph the oracle answers queries on.
	Graph *graph.Graph
	// Eps and Seed echo the build parameters.
	Eps  float64
	Seed uint64
	// Fingerprint is the base graph digest. Freeze computes it; Open
	// returns the header value (the arena CRCs vouch for the content,
	// so the digest is identity metadata, not re-verified by hashing).
	Fingerprint uint64
	// Degenerate marks an oracle over a graph too small to route.
	Degenerate bool
	// Direct is the single multi-scale hopset of a poly-bounded-ratio
	// build.
	Direct *hopset.Scaled
	// Dec plus Instances (one scaled hopset per decomposition level)
	// form a decomposed oracle.
	Dec       *wscale.Decomposition
	Instances []*hopset.Scaled
	// FloorGen and Journal carry a dynamic oracle's overlay state.
	FloorGen uint64
	Journal  []dynamic.Entry
	// Note is the opaque caller annotation (the server's graph spec).
	Note []byte
}

// Arena is an assembled flat oracle: one contiguous, 8-byte-aligned
// buffer ready to be written to disk verbatim or opened in place.
type Arena struct{ data []byte }

// Bytes returns the raw arena. Callers write it to disk unmodified —
// the bytes are the format.
func (a *Arena) Bytes() []byte { return a.data }

// Size returns the arena length in bytes.
func (a *Arena) Size() int64 { return int64(len(a.data)) }

// Freeze flattens a built oracle into an arena. The graphs' CSR
// arrays are copied verbatim (via their zero-copy views), and shared
// structures — hopset results reused across bands, labelings aliased
// between the decomposition and its instances — are stored once and
// re-shared on open. Derived caches (augmented query graphs) are not
// stored: they rebuild deterministically on first query.
func Freeze(p *Parts) (*Arena, error) {
	if !hostLittleEndian() {
		return nil, errors.New("flat: arena format requires a little-endian host (use the codec format)")
	}
	if p.Graph == nil {
		return nil, errors.New("flat: nil base graph")
	}
	mode := modeDegenerate
	switch {
	case p.Degenerate:
	case p.Direct != nil:
		mode = modeDirect
		if err := checkComplete(p.Direct); err != nil {
			return nil, err
		}
	case p.Dec != nil:
		mode = modeDecomposed
		if len(p.Instances) != len(p.Dec.Instances) {
			return nil, errors.New("flat: oracle instance count does not match its decomposition")
		}
		for _, s := range p.Instances {
			if err := checkComplete(s); err != nil {
				return nil, err
			}
		}
	default:
		return nil, errors.New("flat: oracle has neither a hopset nor a decomposition")
	}
	if len(p.Note) > maxNote {
		return nil, fmt.Errorf("flat: note of %d bytes exceeds the %d limit", len(p.Note), maxNote)
	}
	if len(p.Journal) > maxJournalEntries {
		return nil, fmt.Errorf("flat: journal of %d entries exceeds the format limit %d", len(p.Journal), maxJournalEntries)
	}

	b := &builder{}
	b.add(kindIndex, nil) // section 0 reserved; filled after the walk
	ix := &ixWriter{}

	if p.Note != nil {
		ix.i32(b.add(kindNote, p.Note))
	} else {
		ix.i32(-1)
	}
	if len(p.Journal) > 0 {
		ix.i32(b.add(kindJournal, packJournal(p.Journal)))
	} else {
		ix.i32(-1)
	}
	b.addGraph(ix, p.Graph)
	switch mode {
	case modeDirect:
		b.addScaled(ix, p.Direct)
	case modeDecomposed:
		b.addWScale(ix, p.Dec, p.Instances)
	}
	b.secs[0].data = ix.buf

	return b.assemble(arenaHeader{
		mode:        mode,
		eps:         p.Eps,
		seed:        p.Seed,
		fingerprint: p.Graph.Fingerprint(),
		floorGen:    p.FloorGen,
	})
}

// checkComplete rejects partial hopsets (a canceled BuildScaled leaves
// bands with nil Res), mirroring the codec.
func checkComplete(s *hopset.Scaled) error {
	if s == nil {
		return errors.New("flat: cannot freeze a partial (canceled) oracle")
	}
	for i := range s.Scales {
		if s.Scales[i].Res == nil {
			return errors.New("flat: cannot freeze a partial (canceled) oracle: band without a hopset")
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Builder: accumulates sections and the index walk, then lays the
// arena out in one aligned buffer.

type bsec struct {
	kind uint32
	data []byte
}

type builder struct{ secs []bsec }

// add registers a payload and returns its section ordinal (what the
// index stores).
func (b *builder) add(kind uint32, data []byte) int32 {
	b.secs = append(b.secs, bsec{kind: kind, data: data})
	return int32(len(b.secs) - 1)
}

// addGraph writes a graph reference into the index: scalar metadata
// inline, every CSR array as its own typed section (byte-for-byte the
// graph's in-memory arrays, which is what lets Open alias them back).
func (b *builder) addGraph(ix *ixWriter, g *graph.Graph) {
	v := g.CSRView()
	ix.i32(v.N)
	ix.i64(int64(len(v.Edges)))
	if v.Weighted {
		ix.u8(1)
	} else {
		ix.u8(0)
	}
	ix.i64(v.MinW)
	ix.i64(v.MaxW)
	ix.i32(b.add(kindEdge, bytesOf(v.Edges)))
	ix.i32(b.add(kindI64, bytesOf(v.Offs)))
	ix.i32(b.add(kindI32, bytesOf(v.Dst)))
	if v.Weighted {
		ix.i32(b.add(kindI64, bytesOf(v.Wts)))
	} else {
		ix.i32(-1)
	}
	ix.i32(b.add(kindI32, bytesOf(v.Eids)))
	if v.OrigEID != nil {
		ix.i32(b.add(kindI32, bytesOf(v.OrigEID)))
	} else {
		ix.i32(-1)
	}
}

// addScaled writes one multi-scale hopset: parameters, the dedup
// result table (bands sharing a Result store it once, as in the
// codec), and per-band scales. The augmented query graph is NOT
// frozen — Augmented() rebuilds it deterministically from the base
// graph and the band edges, so storing it would double the arena for
// bytes the opener can reproduce exactly. Opened-arena queries stay
// bit-identical because the rebuild is the same function the live
// oracle ran.
func (b *builder) addScaled(ix *ixWriter, s *hopset.Scaled) {
	wp := s.Params
	ix.f64(wp.Epsilon)
	ix.f64(wp.Delta)
	ix.f64(wp.Gamma1)
	ix.f64(wp.Gamma2)
	ix.f64(wp.K)
	ix.i64(int64(wp.MinFinal))
	ix.u64(wp.Seed)
	ix.f64(wp.Eta)
	ix.f64(wp.Zeta)
	ix.f64(wp.Escalation)
	ix.f64(wp.InitialHopBudget)

	index := map[*hopset.Result]uint32{}
	var results []*hopset.Result
	resIdx := make([]uint32, len(s.Scales))
	for i := range s.Scales {
		res := s.Scales[i].Res
		idx, ok := index[res]
		if !ok {
			idx = uint32(len(results))
			index[res] = idx
			results = append(results, res)
		}
		resIdx[i] = idx
	}
	ix.u32(uint32(len(results)))
	for _, res := range results {
		ix.f64(res.Params.Epsilon)
		ix.f64(res.Params.Delta)
		ix.f64(res.Params.Gamma1)
		ix.f64(res.Params.Gamma2)
		ix.f64(res.Params.K)
		ix.i64(int64(res.Params.MinFinal))
		ix.u64(res.Params.Seed)
		ix.i64(int64(res.Stars))
		ix.i64(int64(res.Cliques))
		ix.i64(int64(res.Levels))
		ix.i32(b.add(kindEdge, bytesOf(res.Edges)))
	}
	ix.u32(uint32(len(s.Scales)))
	for i := range s.Scales {
		ix.f64(s.Scales[i].D)
		ix.i64(s.Scales[i].WHat)
		ix.u32(resIdx[i])
	}
}

// addWScale writes the decomposition and its per-level instances.
// Level labelings are one i32 section each; an instance whose Label
// aliases a level's slice stores a reference, not a copy (the codec's
// labelShared), so open restores the aliasing and the memory
// footprint of a fresh build.
func (b *builder) addWScale(ix *ixWriter, dec *wscale.Decomposition, instances []*hopset.Scaled) {
	ix.f64(dec.Eps)
	ix.f64(dec.B)
	L := len(dec.Cats)
	ix.u32(uint32(L))
	levelSecs := make([]int32, L)
	for j := 0; j < L; j++ {
		ix.i64(int64(dec.Cats[j]))
		ix.i32(dec.LevelCounts[j])
		levelSecs[j] = b.add(kindI32, bytesOf(dec.Levels[j]))
		ix.i32(levelSecs[j])
	}
	for j := 0; j < L; j++ {
		inst := dec.Instances[j]
		kind, ref := labelKind(dec, inst)
		ix.u8(kind)
		switch kind {
		case labelShared:
			ix.i64(ref)
		case labelExplicit:
			ix.i32(b.add(kindI32, bytesOf(inst.Label)))
		}
		b.addGraph(ix, inst.G)
		b.addScaled(ix, instances[j])
	}
}

// Instance label encodings, mirroring the codec's constants.
const (
	labelExplicit uint8 = 0
	labelIdentity uint8 = 1
	labelShared   uint8 = 2
)

// labelKind classifies inst.Label: identity, an alias of
// dec.Levels[ref], or explicit.
func labelKind(dec *wscale.Decomposition, inst *wscale.Instance) (kind uint8, ref int64) {
	n := dec.Base.NumVertices()
	if int64(len(inst.Label)) != int64(n) {
		return labelExplicit, 0
	}
	identity := true
	for v, lbl := range inst.Label {
		if lbl != graph.V(v) {
			identity = false
			break
		}
	}
	if identity {
		return labelIdentity, 0
	}
	if n > 0 {
		for jj := range dec.Levels {
			if len(dec.Levels[jj]) == len(inst.Label) && &dec.Levels[jj][0] == &inst.Label[0] {
				return labelShared, int64(jj)
			}
		}
	}
	return labelExplicit, 0
}

// packJournal serializes the dynamic journal (gen u64, op u8, u i32,
// v i32, w i64 per entry — same record the codec uses). The journal is
// decoded, not aliased, on open: entries are tiny and carry fields
// (apply timestamps) the arena does not persist.
func packJournal(entries []dynamic.Entry) []byte {
	w := &ixWriter{}
	w.u64(uint64(len(entries)))
	for _, ent := range entries {
		w.u64(ent.Gen)
		w.u8(uint8(ent.Op))
		w.i32(ent.U)
		w.i32(ent.V)
		w.i64(int64(ent.W))
	}
	return w.buf
}

// arenaHeader is the scalar metadata Freeze stamps into the header.
type arenaHeader struct {
	mode        uint8
	eps         float64
	seed        uint64
	fingerprint uint64
	floorGen    uint64
}

// assemble lays out header + table + aligned payloads in one buffer
// and fills in every checksum.
func (b *builder) assemble(h arenaHeader) (*Arena, error) {
	S := len(b.secs)
	if S > maxSections {
		return nil, fmt.Errorf("flat: oracle needs %d sections, format limit %d", S, maxSections)
	}
	cur := align8(uint64(headerSize) + uint64(S)*tableEntSize)
	offs := make([]uint64, S)
	for i, s := range b.secs {
		cur = align8(cur)
		offs[i] = cur
		cur += uint64(len(s.data))
	}
	total := cur
	buf := alignedBuf(int(total))

	copy(buf[0:4], Magic)
	put32(buf[4:], Version)
	put32(buf[8:], endianMarker)
	put32(buf[12:], uint32(S))
	put64(buf[16:], total)
	put64(buf[24:], h.fingerprint)
	put64(buf[32:], mathFloat64bits(h.eps))
	put64(buf[40:], h.seed)
	put64(buf[48:], h.floorGen)
	buf[56] = h.mode

	table := buf[headerSize : headerSize+S*tableEntSize]
	for i, s := range b.secs {
		copy(buf[offs[i]:], s.data)
		ent := table[i*tableEntSize:]
		put32(ent, s.kind)
		put32(ent[4:], checksum(s.data))
		put64(ent[8:], offs[i])
		put64(ent[16:], uint64(len(s.data)))
	}
	put32(buf[60:], checksum(table))
	put32(buf[64:], headerCRC(buf))
	return &Arena{data: buf}, nil
}

// headerCRC checksums the header bytes around the stored CRC itself:
// [0,64) plus the trailing pad [68,72). Together with the table CRC,
// the per-payload CRCs, and Open's zero-gap rule, every byte of the
// arena is integrity-checked.
func headerCRC(buf []byte) uint32 {
	h := checksum(buf[0:64])
	return crc32Update(h, buf[68:headerSize])
}
