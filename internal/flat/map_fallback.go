//go:build !unix || purego

package flat

import (
	"io"
	"os"
)

// mapFile reads the whole file into an 8-byte-aligned heap buffer —
// the portable stand-in for mmap. The arena bytes and everything Open
// does with them are identical; only the residency mechanism differs.
func mapFile(f *os.File, size int) (*Mapping, error) {
	buf := alignedBuf(size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return &Mapping{data: buf}, nil
}

// unmap is a no-op: the buffer is ordinary garbage-collected memory.
func (m *Mapping) unmap() error { return nil }
