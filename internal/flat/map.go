package flat

import (
	"fmt"
	"os"
	"runtime"
)

// Mapping is an arena file resident in memory — mmap'd where the
// platform supports it, read into an aligned heap buffer otherwise.
// Everything Open returns over a mapping's bytes aliases it, and the
// garbage collector does not trace mmap'd memory through those
// aliases: whoever holds the opened oracle must also hold the Mapping
// (the snapshot facade threads it into the oracle for exactly this
// reason), and the finalizer unmaps only once both are unreachable.
type Mapping struct {
	data   []byte
	mapped bool
	closed bool
}

// Bytes returns the resident arena. Treat as read-only: mmap'd pages
// are PROT_READ and writing them faults.
func (m *Mapping) Bytes() []byte { return m.data }

// Mapped reports whether the bytes are an actual memory mapping
// (false on the portable read fallback).
func (m *Mapping) Mapped() bool { return m.mapped }

// Size returns the resident length in bytes.
func (m *Mapping) Size() int64 { return int64(len(m.data)) }

// Close releases the mapping immediately. Only call it when nothing
// opened over the mapping is still reachable — error paths before an
// oracle adopted the bytes. Normal serving paths never call Close and
// let the finalizer reclaim the pages.
func (m *Mapping) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	runtime.SetFinalizer(m, nil)
	err := m.unmap()
	m.data = nil
	return err
}

func (m *Mapping) finalize() {
	if !m.closed {
		m.closed = true
		m.unmap()
	}
}

// MapFile makes an arena file resident for Open. On unix the file is
// mmap'd PROT_READ/MAP_SHARED — startup cost is page-table setup, and
// the kernel faults pages in as queries touch them — and the file
// descriptor is closed immediately (the mapping outlives it; a
// rename-over or unlink of the file leaves the mapping intact, which
// is what makes the server's atomic snapshot rotation safe under a
// live mapping). Elsewhere, and under the purego build tag, the file
// is read whole into an 8-byte-aligned buffer; every byte of the
// format is identical.
//
// MapFile maps any file as-is; Open performs all validation. The only
// checks here are the ones mmap itself needs (a regular, non-empty
// file that fits in an int).
func MapFile(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if !st.Mode().IsRegular() {
		return nil, fmt.Errorf("flat: %s is not a regular file", path)
	}
	size := st.Size()
	if size < headerSize {
		return nil, corruptf("arena file of %d bytes is smaller than a header", size)
	}
	const maxInt = int64(^uint(0) >> 1)
	if size > maxInt {
		return nil, fmt.Errorf("flat: arena of %d bytes exceeds the address space", size)
	}
	m, err := mapFile(f, int(size))
	if err != nil {
		return nil, err
	}
	runtime.SetFinalizer(m, (*Mapping).finalize)
	return m, nil
}
