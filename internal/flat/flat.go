// Package flat is the contiguous, mmap-able layout of a built
// distance oracle: every array the query path walks — hopset band
// edges, per-level component labelings, contracted instance graphs
// with their OrigEdgeID back-maps, and the weight-class decomposition
// index — lives in one arena of typed, 8-byte-aligned sections behind
// a fixed header and a checksummed section table. Derived caches
// (augmented query graphs) are not stored; they rebuild
// deterministically on first query.
//
// Freeze converts a built oracle into the arena; Open does the
// reverse by pointing Go slices directly at the arena bytes (zero
// copy, no CSR reconstruction), so loading a frozen oracle from disk
// is mmap + header/CRC validation instead of a full streaming decode.
// The restored oracle's graphs, hopsets, and decomposition alias the
// arena, which is what makes a multi-GB warm start near-free: pages
// fault in as queries touch them. A shard of the vertex space is just
// a slice of the same arrays — this layout is the enabler for
// multi-node serving.
//
// # Arena format (version 3 of the snapshot lineage)
//
//	header (72 bytes):
//	  magic       "SPF3"
//	  version     u32 (3)
//	  endian      u32 marker (the arena is host-endianness; see below)
//	  sections    u32 count
//	  totalSize   u64 (whole arena, bytes)
//	  fingerprint u64 (base graph digest, as snapshot META)
//	  eps         f64
//	  seed        u64
//	  floorGen    u64 (dynamic journal floor generation)
//	  mode        u8  (degenerate / direct / decomposed) + 3 pad
//	  tableCRC    u32 (CRC-32C, over the section table)
//	  headerCRC   u32 (CRC-32C, over header bytes [0,64))
//	  pad         u32
//	table: sections × 24 bytes {kind u32, crc u32, off u64, size u64}
//	payloads: 8-byte aligned, ascending, zero-filled gaps
//
// Section kinds are typed arrays (i32, i64, 16-byte edge records) or
// byte blobs (the index, the note, the journal). The INDEX section —
// always section 0 — is a compact walk of the object tree that names
// which array sections belong to which graph/hopset/level; it is the
// only part of the arena that is decoded rather than aliased.
//
// # Integrity and trust
//
// Every payload carries a CRC32 in the table and Open verifies all of
// them plus the header and table CRCs — a hardware-accelerated linear
// scan, orders of magnitude cheaper than the v2 streaming decode.
// Open then validates the same structural invariants the v2 codec
// checks (vertex ranges, CSR shape, label ranges, parameter domains,
// journal ordering) so that nothing restored from an arena can panic
// later, and runs the full graph.Validate on the embedded base graph.
// Any violation returns an error wrapping ErrCorrupt; Open never
// panics on corrupt input.
//
// # Portability
//
// The arena is a same-machine cache format, not an interchange
// format: arrays are host-endianness and Open refuses to run on a
// big-endian host (the v2 codec remains the portable format). On
// platforms without mmap — or under the purego build tag — MapFile
// falls back to reading the file into an aligned heap buffer and
// opening the identical arena from memory.
package flat

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"

	"repro/internal/graph"
)

// Arena version and magic. The magic deliberately differs from the
// codec's "SPS1" so version negotiation is a 4-byte sniff.
const (
	Magic   = "SPF3"
	Version = 3

	// endianMarker is written through encoding/binary little-endian;
	// it doubles as a guard against a (hypothetical) arena produced by
	// a big-endian writer.
	endianMarker uint32 = 0x1A2B3C4D

	headerSize   = 72
	tableEntSize = 24
)

// Section kinds.
const (
	kindIndex   uint32 = 1 // byte blob: the object-tree index
	kindNote    uint32 = 2 // byte blob: opaque caller annotation
	kindJournal uint32 = 3 // byte blob: packed dynamic-journal entries
	kindI32     uint32 = 4 // []int32 array
	kindI64     uint32 = 5 // []int64 array
	kindEdge    uint32 = 6 // []graph.Edge array (16-byte records)
)

// Oracle shape tags (header mode byte), mirroring the codec.
const (
	modeDegenerate uint8 = 0
	modeDirect     uint8 = 1
	modeDecomposed uint8 = 2
)

// Format limits, mirroring internal/snapshot.
const (
	maxVertices       = 1 << 26
	maxNote           = 1 << 20
	maxJournalEntries = 1 << 24
	maxSections       = 1 << 20
)

// ErrCorrupt wraps every open-side failure, mirroring the snapshot
// codec's corruption policy: data from disk is not trusted and a bad
// arena is an error, never a panic.
var ErrCorrupt = errors.New("flat: corrupt arena")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// edgeSize is the wire size of one graph.Edge record. The compile-time
// assertion below pins the struct layout the arena format relies on
// (U i32 at 0, V i32 at 4, W i64 at 8).
const edgeSize = 16

var _ [edgeSize]byte = [unsafe.Sizeof(graph.Edge{})]byte{}
var _ [0]byte = [unsafe.Offsetof(graph.Edge{}.W) - 8]byte{}

// hostLittleEndian reports the byte order arrays are laid out in.
func hostLittleEndian() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}

// view reinterprets a section payload as a typed slice without
// copying. The payload must be exactly count elements long and
// aligned for T; both hold for builder-produced arenas (sections are
// 8-byte aligned) and are re-checked here because Open feeds it
// untrusted offsets.
func view[T any](b []byte, count int) ([]T, error) {
	var zero T
	sz := int(unsafe.Sizeof(zero))
	if count < 0 || len(b) != count*sz {
		return nil, corruptf("section holds %d bytes, want %d×%d", len(b), count, sz)
	}
	if count == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%uintptr(unsafe.Alignof(zero)) != 0 {
		return nil, corruptf("section payload misaligned for %d-byte elements", sz)
	}
	return unsafe.Slice((*T)(p), count), nil
}

// bytesOf reinterprets a typed slice as its raw bytes (the zero-copy
// encode side of view).
func bytesOf[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var zero T
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(zero)))
}

// alignedBuf allocates an n-byte buffer with 8-byte base alignment
// (backed by a []uint64), so arenas assembled or read into the heap
// satisfy view's alignment requirement just like mmap'd ones.
func alignedBuf(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return bytesOf(words)[:n]
}

// AlignBytes returns data if its base address is already 8-byte
// aligned, or an aligned copy otherwise — for callers that obtained
// arena bytes from a source with no alignment guarantee (io.ReadAll,
// a network buffer) and want to Open them in place.
func AlignBytes(data []byte) []byte {
	if len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 == 0 {
		return data
	}
	buf := alignedBuf(len(data))
	copy(buf, data)
	return buf
}

// ---------------------------------------------------------------------------
// Little-endian scalar helpers for the header, table, index, and
// journal blobs (the decoded — not aliased — parts of the arena).

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func put64(b []byte, v uint64) {
	put32(b, uint32(v))
	put32(b[4:], uint32(v>>32))
}

// ---------------------------------------------------------------------------
// Index blob writer/reader: a bounds-checked sequential scalar codec
// for the object-tree index and the journal. Sticky-error on the read
// side, exactly like the snapshot decoder.

type ixWriter struct{ buf []byte }

func (w *ixWriter) u8(v uint8) { w.buf = append(w.buf, v) }

func (w *ixWriter) u32(v uint32) {
	var b [4]byte
	put32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *ixWriter) u64(v uint64) {
	var b [8]byte
	put64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *ixWriter) i32(v int32)   { w.u32(uint32(v)) }
func (w *ixWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *ixWriter) f64(v float64) { w.u64(mathFloat64bits(v)) }

type ixReader struct {
	b   []byte
	off int
	err error
}

func (r *ixReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *ixReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) || r.off+n < r.off {
		r.fail(corruptf("index overrun: need %d bytes at %d of %d", n, r.off, len(r.b)))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *ixReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *ixReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return le32(b)
}

func (r *ixReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return le64(b)
}

func (r *ixReader) i32() int32   { return int32(r.u32()) }
func (r *ixReader) i64() int64   { return int64(r.u64()) }
func (r *ixReader) f64() float64 { return mathFloat64frombits(r.u64()) }

// done reports whether the reader consumed the blob exactly.
func (r *ixReader) done() bool { return r.err == nil && r.off == len(r.b) }

// ---------------------------------------------------------------------------
// Section table.

type section struct {
	kind uint32
	crc  uint32
	off  uint64
	size uint64
}

// crcTable is the Castagnoli polynomial: it has a dedicated CRC
// instruction on amd64 (SSE4.2) and arm64, which is what keeps
// full-arena verification off the open path's critical cost.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum is the table/payload checksum.
func checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// crc32Update folds more bytes into a running checksum.
func crc32Update(crc uint32, b []byte) uint32 {
	return crc32.Update(crc, crcTable, b)
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }

func intSizeof[T any](zero T) int { return int(unsafe.Sizeof(zero)) }

func mathFloat64bits(v float64) uint64     { return math.Float64bits(v) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
