package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hopset"
)

// FuzzReadOracle hardens the snapshot decoder the way FuzzReadBinary
// hardens the graph parser: arbitrary bytes — corrupted headers,
// truncated sections, bad CRCs, forged counts — must produce an error
// or a structurally valid oracle, and must never panic. A successful
// decode must additionally survive being queried (the decoder's
// validation contract is "nothing restored can panic later").
func FuzzReadOracle(f *testing.F) {
	// Seed corpus: valid snapshots of each shape plus mutations.
	small := graph.UniformWeights(graph.Grid2D(4, 4), 9, 1)
	o, _ := buildOracle(small, 0.3, 2)
	var direct bytes.Buffer
	_ = WriteOracle(&direct, small, o, []byte("spec"))
	f.Add(direct.Bytes())

	multi := graph.ExponentialWeights(graph.RandomConnectedGNM(40, 160, 3), 10, 28, 4)
	od, _ := buildOracle(multi, 0.25, 5)
	if od.Dec != nil {
		var dec bytes.Buffer
		_ = WriteOracle(&dec, multi, od, nil)
		f.Add(dec.Bytes())
	}

	empty := graph.FromEdges(1, nil, false)
	og := &Oracle{Eps: 0.5, Seed: 1, Degenerate: true}
	var degen bytes.Buffer
	_ = WriteOracle(&degen, empty, og, nil)
	f.Add(degen.Bytes())

	// Version-2 journal section and a legacy version-1 stream.
	oj, _ := buildOracle(small, 0.3, 2)
	oj.FloorGen, oj.Journal = journalFixture()
	var withJournal bytes.Buffer
	_ = WriteOracle(&withJournal, small, oj, []byte("spec"))
	f.Add(withJournal.Bytes())
	var v1 bytes.Buffer
	_ = writeOracleVersion(&v1, small, o, nil, versionV1)
	f.Add(v1.Bytes())
	trunc := withJournal.Bytes()
	f.Add(trunc[:len(trunc)-24]) // truncated inside the journal section

	var scaled bytes.Buffer
	_ = WriteScaled(&scaled, hopset.BuildScaled(small, hopset.DefaultWeightedParams(6), nil), nil)
	f.Add(scaled.Bytes())

	// Version-3 flat arenas ride the same reader (ReadOracle sniffs the
	// magic): valid direct and decomposed arenas, one with a journal,
	// plus truncated and bit-flipped mutants.
	if arena, err := FreezeOracle(small, o, []byte("spec")); err == nil {
		f.Add(arena.Bytes())
		f.Add(arena.Bytes()[:len(arena.Bytes())-9])
		flipped := append([]byte(nil), arena.Bytes()...)
		flipped[len(flipped)/2] ^= 0xA5
		f.Add(flipped)
	}
	if od.Dec != nil {
		if arena, err := FreezeOracle(multi, od, nil); err == nil {
			f.Add(arena.Bytes())
		}
	}
	if arena, err := FreezeOracle(small, oj, nil); err == nil {
		f.Add(arena.Bytes())
	}
	f.Add([]byte("SPF3")) // arena magic only
	f.Add(layoutForgedArena())

	f.Add([]byte{})
	f.Add([]byte{0x53, 0x50, 0x53, 0x31})         // magic only
	f.Add(direct.Bytes()[:len(direct.Bytes())/2]) // truncated mid-section
	f.Add(direct.Bytes()[:len(direct.Bytes())-2]) // truncated trailer
	corrupt := append([]byte(nil), direct.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0xA5
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, input []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadOracle panicked: %v", r)
			}
		}()
		got, g, _, err := ReadOracle(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Anything that decodes cleanly must be internally consistent
		// enough to query without panicking.
		if err := g.Validate(); err != nil {
			t.Fatalf("decoded graph invalid: %v", err)
		}
		if g.NumVertices() >= 2 {
			switch {
			case got.Direct != nil:
				_ = got.Direct.Query(0, g.NumVertices()-1, nil)
			case got.Dec != nil:
				if inst, s, d := got.Dec.InstanceFor(0, g.NumVertices()-1); inst != nil && s != d {
					_ = got.Instances[inst.Level].Query(s, d, nil)
				}
			}
		}
	})
}

// layoutForgedArena builds a 127-byte v3 arena whose checksums are
// all valid but whose section table is forged: section 0 ends
// unaligned at byte 125, so section 1's tight-packing offset
// align8(125)=128 lands past the end of the file. Byte-flip mutants
// can never reach this corruption class — a flip breaks a CRC before
// the layout rules run — so the corpus needs a seed with the header
// and table CRCs recomputed after the rewrite. Regression: this exact
// shape used to panic the arena opener with a slice out of range.
func layoutForgedArena() []byte {
	castagnoli := crc32.MakeTable(crc32.Castagnoli)
	crc := func(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }
	data := make([]byte, 127)
	le := binary.LittleEndian
	copy(data, "SPF3")
	le.PutUint32(data[4:], 3)                      // version
	le.PutUint32(data[8:], 0x1A2B3C4D)             // endian marker
	le.PutUint32(data[12:], 2)                     // section count
	le.PutUint64(data[16:], 127)                   // total size
	le.PutUint64(data[32:], math.Float64bits(0.5)) // eps
	// Section 0: the index, 5 bytes at offset 120 (table ends at 120).
	ent := data[72:]
	le.PutUint32(ent, 1) // kindIndex
	le.PutUint32(ent[4:], crc(data[120:125]))
	le.PutUint64(ent[8:], 120)
	le.PutUint64(ent[16:], 5)
	// Section 1: offset 128 = align8(125), past the 127-byte arena.
	ent = data[96:]
	le.PutUint32(ent, 4) // kindI32
	le.PutUint64(ent[8:], 128)
	le.PutUint32(data[60:], crc(data[72:120]))                          // table CRC
	le.PutUint32(data[64:], crc32.Update(crc(data[0:64]), castagnoli, data[68:72])) // header CRC
	return data
}

// FuzzReadSpanner covers the standalone spanner shape's decoder.
func FuzzReadSpanner(f *testing.F) {
	g := graph.Grid2D(4, 4)
	var good bytes.Buffer
	_ = WriteSpanner(&good, g, 3, 1, []int32{0, 2, 5}, nil)
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add(good.Bytes()[:len(good.Bytes())-3])

	f.Fuzz(func(t *testing.T, input []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadSpanner panicked: %v", r)
			}
		}()
		k, _, ids, _, err := ReadSpanner(bytes.NewReader(input), g)
		if err != nil {
			return
		}
		if k < 1 {
			t.Fatalf("decoded k = %d", k)
		}
		for _, id := range ids {
			if int64(id) < 0 || int64(id) >= g.NumEdges() {
				t.Fatalf("decoded edge id %d out of range", id)
			}
		}
	})
}
