package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/graph"
)

// journalFixture is a structurally valid pending journal over a
// weighted graph.
func journalFixture() (uint64, []dynamic.Entry) {
	return 3, []dynamic.Entry{
		{Update: dynamic.Update{Op: dynamic.OpInsert, U: 0, V: 5, W: 7}, Gen: 4},
		{Update: dynamic.Update{Op: dynamic.OpReweight, U: 0, V: 5, W: 2}, Gen: 5},
		{Update: dynamic.Update{Op: dynamic.OpDelete, U: 0, V: 5}, Gen: 9},
	}
}

// TestJournalRoundTrip: a v2 oracle snapshot carries its journal
// bit-exactly.
func TestJournalRoundTrip(t *testing.T) {
	g := graph.UniformWeights(graph.Grid2D(4, 4), 9, 1)
	o, _ := buildOracle(g, 0.3, 2)
	o.FloorGen, o.Journal = journalFixture()
	var buf bytes.Buffer
	if err := WriteOracle(&buf, g, o, []byte("spec")); err != nil {
		t.Fatal(err)
	}
	got, _, note, err := ReadOracle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if string(note) != "spec" {
		t.Fatalf("note = %q", note)
	}
	if got.FloorGen != o.FloorGen || len(got.Journal) != len(o.Journal) {
		t.Fatalf("journal shape: floor=%d len=%d", got.FloorGen, len(got.Journal))
	}
	for i := range o.Journal {
		if got.Journal[i].Gen != o.Journal[i].Gen || got.Journal[i].Update != o.Journal[i].Update {
			t.Fatalf("entry %d: got %+v, want %+v", i, got.Journal[i], o.Journal[i])
		}
	}
}

// TestV1StreamLoadsUnderV2Decoder: a legacy version-1 file (no
// JOURNAL section) must decode cleanly with an empty journal — the
// backward-compat contract of the version bump.
func TestV1StreamLoadsUnderV2Decoder(t *testing.T) {
	g := graph.UniformWeights(graph.Grid2D(4, 4), 9, 1)
	o, _ := buildOracle(g, 0.3, 2)
	var v1 bytes.Buffer
	if err := writeOracleVersion(&v1, g, o, []byte("spec"), versionV1); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(v1.Bytes()[4:8]); got != versionV1 {
		t.Fatalf("fixture is version %d, not 1", got)
	}
	got, gg, note, err := ReadOracle(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if got.FloorGen != 0 || got.Journal != nil {
		t.Fatalf("v1 stream decoded a journal: floor=%d len=%d", got.FloorGen, len(got.Journal))
	}
	if string(note) != "spec" || gg.NumVertices() != g.NumVertices() {
		t.Fatal("v1 payload mangled")
	}
	// A v1 writer cannot carry a journal.
	o.FloorGen, o.Journal = journalFixture()
	if err := writeOracleVersion(&bytes.Buffer{}, g, o, nil, versionV1); err == nil {
		t.Fatal("v1 write accepted a journal")
	}
}

// TestUnknownVersionRejected: versions above 2 must fail, not guess.
func TestUnknownVersionRejected(t *testing.T) {
	g := graph.FromEdges(1, nil, false)
	var buf bytes.Buffer
	if err := WriteOracle(&buf, g, &Oracle{Eps: 0.5, Seed: 1, Degenerate: true}, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[4:8], 3)
	if _, _, _, err := ReadOracle(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version 3 error = %v", err)
	}
}

// corruptJournalCase mutates one well-formed journal-carrying
// snapshot and expects ErrCorrupt with no partial state.
func corruptJournalCase(t *testing.T, name string, mutate func(floor *uint64, entries []dynamic.Entry)) {
	t.Helper()
	g := graph.UniformWeights(graph.Grid2D(4, 4), 9, 1)
	o, _ := buildOracle(g, 0.3, 2)
	o.FloorGen, o.Journal = journalFixture()
	mutate(&o.FloorGen, o.Journal)
	var buf bytes.Buffer
	if err := WriteOracle(&buf, g, o, nil); err != nil {
		t.Fatalf("%s: write: %v", name, err)
	}
	if _, _, _, err := ReadOracle(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
	}
}

// TestCorruptJournalRejected: every structural journal violation is
// ErrCorrupt — never a partially applied journal.
func TestCorruptJournalRejected(t *testing.T) {
	corruptJournalCase(t, "gen-not-ascending", func(floor *uint64, e []dynamic.Entry) {
		e[2].Gen = e[1].Gen
	})
	corruptJournalCase(t, "gen-below-floor", func(floor *uint64, e []dynamic.Entry) {
		*floor = e[0].Gen
	})
	corruptJournalCase(t, "endpoint-out-of-range", func(floor *uint64, e []dynamic.Entry) {
		e[0].V = 99
	})
	corruptJournalCase(t, "self-loop", func(floor *uint64, e []dynamic.Entry) {
		e[1].V = e[1].U
	})
	corruptJournalCase(t, "bad-op", func(floor *uint64, e []dynamic.Entry) {
		e[0].Op = dynamic.Op(7)
	})
	corruptJournalCase(t, "non-positive-weight", func(floor *uint64, e []dynamic.Entry) {
		e[0].W = 0
	})

	// Bit-flip inside the journal payload: CRC catches it.
	g := graph.UniformWeights(graph.Grid2D(4, 4), 9, 1)
	o, _ := buildOracle(g, 0.3, 2)
	o.FloorGen, o.Journal = journalFixture()
	var clean, dirty bytes.Buffer
	if err := WriteOracle(&clean, g, o, nil); err != nil {
		t.Fatal(err)
	}
	o.Journal = nil
	o.FloorGen = 0
	if err := WriteOracle(&dirty, g, o, nil); err != nil {
		t.Fatal(err)
	}
	// The journal section lives between the empty-journal file's
	// length and the trailer; flip a byte in that window.
	b := append([]byte(nil), clean.Bytes()...)
	b[dirty.Len()+4] ^= 0x5A
	if _, _, _, err := ReadOracle(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped journal err = %v, want ErrCorrupt", err)
	}
}

// TestWeightIntoUnweightedJournalRejected: journal weights must match
// the embedded graph's weightedness.
func TestWeightIntoUnweightedJournalRejected(t *testing.T) {
	g := graph.Grid2D(4, 4)
	o, _ := buildOracle(g, 0.3, 2)
	o.FloorGen = 0
	o.Journal = []dynamic.Entry{{Update: dynamic.Update{Op: dynamic.OpInsert, U: 0, V: 5, W: 9}, Gen: 1}}
	var buf bytes.Buffer
	if err := WriteOracle(&buf, g, o, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadOracle(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
