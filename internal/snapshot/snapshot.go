// Package snapshot is the persistence layer for built oracles: a
// versioned, checksummed, streaming binary codec that serializes a
// fully preprocessed DistanceOracle — the wscale decomposition, every
// per-band hopset, and the degenerate/direct fast-path markers — so a
// daemon restart (or a second CLI run) warm-starts from disk instead
// of re-running the expensive Section 5 construction.
//
// # Wire format (version 2)
//
// A snapshot is a fixed header followed by a sequence of sections and
// a terminating end marker:
//
//	header:  magic  uint32  ("SPS1", little-endian)
//	         version uint32 (currently 2; 1 still decodes)
//	section: type   uint32
//	         length uint64  (payload bytes, excluding this frame)
//	         payload …
//	         crc32  uint32  (IEEE, over the payload only)
//
// All integers are little-endian; floats are IEEE-754 bits. The
// section table for the three oracle shapes is:
//
//	degenerate:  META NOTE? GRAPH JOURNAL END
//	direct:      META NOTE? GRAPH SCALED JOURNAL END
//	decomposed:  META NOTE? GRAPH WSCALE (INSTANCE SCALED)×L JOURNAL END
//
// plus two standalone shapes used by the CLI tools:
//
//	scaled hopset: META NOTE? GRAPH SCALED END
//	spanner:       META NOTE? SPANNER END
//
// JOURNAL (new in version 2, mandatory for the oracle shapes, usually
// empty) carries a dynamic oracle's pending mutation journal — floor
// generation, then (gen, op, u, v, w) per entry — so warm starts
// replay updates the daemon absorbed after the base oracle was built.
// Version-1 streams have no JOURNAL section and decode with an empty
// journal.
//
// META carries the shape tag, eps, seed, and the base graph's 64-bit
// fingerprint; decoding verifies the embedded graph hashes to it, and
// loaders verify a caller-supplied graph matches before binding the
// restored oracle to it. Sections stream through a running CRC on
// both sides — the encoder never buffers a section, the decoder never
// slurps the file — so multi-GB oracles round-trip without a second
// in-memory copy.
//
// # Corruption policy
//
// Everything read from disk is data, not trust: a wrong magic,
// unknown version, out-of-order section, truncated payload, CRC
// mismatch, or any structurally invalid value (vertex out of range,
// self-loop, non-positive weight, parameter outside its normalized()
// domain, non-finite float) is a returned error — never a panic, and
// never a half-built object that panics later. FuzzReadOracle holds
// the line.
//
// # Version policy
//
// The version is bumped on any incompatible layout change; decoders
// reject versions they do not know rather than guessing. Additive
// evolution happens by bumping the version and teaching the decoder
// both layouts — there are no optional/skippable sections inside a
// version, which keeps the decode path a strict state machine.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

const (
	magicV1 uint32 = 0x31535053 // "SPS1" when read as little-endian bytes

	// versionV1 is the PR 4 layout; versionV2 appends a mandatory
	// (possibly empty) JOURNAL section to the oracle shapes so a
	// dynamic oracle's pending mutations survive restarts. Encoders
	// write the current version; the decoder reads both.
	versionV1 uint32 = 1
	versionV2 uint32 = 2
	version   uint32 = versionV2
)

// Section types.
const (
	secMeta     uint32 = 1
	secNote     uint32 = 2
	secGraph    uint32 = 3
	secWScale   uint32 = 4
	secInstance uint32 = 5
	secScaled   uint32 = 6
	secSpanner  uint32 = 7
	secJournal  uint32 = 8
	secEnd      uint32 = 0xFFFFFFFF
)

// Snapshot shape tags (the META mode byte).
const (
	modeDegenerate uint8 = 0
	modeDirect     uint8 = 1
	modeDecomposed uint8 = 2
	modeScaled     uint8 = 3
	modeSpanner    uint8 = 4
)

const (
	// maxVertices mirrors the graph file-format limit: a larger header
	// is corruption, not a graph this process could hold anyway.
	maxVertices = 1 << 26
	// maxNote bounds the opaque annotation payload.
	maxNote = 1 << 20
	// chunkElems is the array-decode granularity: a forged element
	// count allocates at most one chunk before the (truncated) stream
	// errors out.
	chunkElems = 4096
)

// ErrCorrupt wraps every decode-side failure so callers can
// distinguish "bad snapshot file" from I/O plumbing errors.
var ErrCorrupt = errors.New("snapshot: corrupt")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Encoder.

// encoder streams sections with a running CRC and a declared-length
// audit: every section encoder computes its payload size up front, and
// end() verifies the bytes actually written match — a size-formula bug
// fails the write loudly instead of producing an unreadable file.
type encoder struct {
	w        *bufio.Writer
	crc      hash.Hash32
	declared uint64
	written  uint64
	open     bool
	err      error
	buf      [16]byte
	version  uint32
}

func newEncoder(w io.Writer) *encoder {
	return &encoder{w: bufio.NewWriterSize(w, 1<<16), crc: crc32.NewIEEE(), version: version}
}

func (e *encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// raw writes bytes, folding them into the section CRC when a section
// is open.
func (e *encoder) raw(b []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(b); err != nil {
		e.fail(err)
		return
	}
	if e.open {
		_, _ = e.crc.Write(b) // hash.Hash never errors
		e.written += uint64(len(b))
	}
}

func (e *encoder) u8(v uint8) {
	e.buf[0] = v
	e.raw(e.buf[:1])
}

func (e *encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.raw(e.buf[:4])
}

func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.raw(e.buf[:8])
}

func (e *encoder) i32(v int32)   { e.u32(uint32(v)) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

// header writes the file preamble (outside any section).
func (e *encoder) header() {
	e.u32(magicV1)
	e.u32(e.version)
}

// begin opens a section of the given type and declared payload length.
func (e *encoder) begin(typ uint32, length uint64) {
	if e.open {
		e.fail(errors.New("snapshot: encoder bug: nested section"))
		return
	}
	e.u32(typ)
	e.u64(length)
	e.crc.Reset()
	e.declared, e.written = length, 0
	e.open = true
}

// end closes the current section, verifying the declared length and
// appending the payload CRC.
func (e *encoder) end() {
	if !e.open {
		e.fail(errors.New("snapshot: encoder bug: end outside section"))
		return
	}
	if e.err == nil && e.written != e.declared {
		e.fail(fmt.Errorf("snapshot: encoder bug: section wrote %d bytes, declared %d", e.written, e.declared))
	}
	e.open = false
	e.u32(e.crc.Sum32())
}

func (e *encoder) flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// ---------------------------------------------------------------------------
// Decoder.

// decoder mirrors the encoder: a strict state machine over sections,
// with a sticky error (after the first failure every getter returns
// zero and nothing is trusted) and chunked array reads so forged
// counts cannot force giant allocations.
type decoder struct {
	r         *bufio.Reader
	crc       hash.Hash32
	remaining uint64
	open      bool
	err       error
	buf       [16]byte
	chunk     []byte // reused chunk buffer for array reads
	version   uint32 // stream version from the header (1 or 2)
}

func newDecoder(r io.Reader) *decoder {
	return &decoder{r: bufio.NewReaderSize(r, 1<<16), crc: crc32.NewIEEE()}
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
	d.remaining = 0
}

// rawFrame reads frame bytes that live outside any section payload
// (header, section type/length, CRC trailers).
func (d *decoder) rawFrame(b []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.fail(corruptf("truncated frame: %v", err))
	}
}

// read reads payload bytes of the open section.
func (d *decoder) read(b []byte) {
	if d.err != nil {
		return
	}
	if !d.open {
		d.fail(errors.New("snapshot: decoder bug: payload read outside section"))
		return
	}
	if uint64(len(b)) > d.remaining {
		d.fail(corruptf("section payload overrun: need %d bytes, %d left", len(b), d.remaining))
		return
	}
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.fail(corruptf("truncated section payload: %v", err))
		return
	}
	_, _ = d.crc.Write(b)
	d.remaining -= uint64(len(b))
}

func (d *decoder) u8() uint8 {
	d.read(d.buf[:1])
	if d.err != nil {
		return 0
	}
	return d.buf[0]
}

func (d *decoder) u32() uint32 {
	d.read(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *decoder) u64() uint64 {
	d.read(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

func (d *decoder) i32() int32   { return int32(d.u32()) }
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// header verifies the file preamble. Both known versions decode: a
// v1 stream simply has no JOURNAL section (ReadOracle restores an
// empty journal).
func (d *decoder) header() {
	if m := d.u32frame(); d.err == nil && m != magicV1 {
		d.fail(corruptf("bad magic %#x", m))
	}
	v := d.u32frame()
	if d.err == nil && v != versionV1 && v != versionV2 {
		d.fail(corruptf("unknown version %d (this build reads %d..%d)", v, versionV1, versionV2))
	}
	d.version = v
}

func (d *decoder) u32frame() uint32 {
	d.rawFrame(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *decoder) u64frame() uint64 {
	d.rawFrame(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

// next opens the next section and requires it to be of the expected
// type — the version-1 layout is a fixed sequence, so anything else is
// corruption (or a foreign file).
func (d *decoder) next(want uint32) {
	if d.open {
		d.fail(errors.New("snapshot: decoder bug: next inside section"))
		return
	}
	typ := d.u32frame()
	length := d.u64frame()
	if d.err != nil {
		return
	}
	if typ != want {
		d.fail(corruptf("section %#x where %#x expected", typ, want))
		return
	}
	d.crc.Reset()
	d.remaining = length
	d.open = true
}

// end closes the current section: the payload must be fully consumed
// and the CRC trailer must match.
func (d *decoder) end() {
	if d.err != nil {
		return
	}
	if !d.open {
		d.fail(errors.New("snapshot: decoder bug: end outside section"))
		return
	}
	d.open = false
	if d.remaining != 0 {
		d.fail(corruptf("section has %d undecoded payload bytes", d.remaining))
		return
	}
	sum := d.crc.Sum32()
	if got := d.u32frame(); d.err == nil && got != sum {
		d.fail(corruptf("section CRC mismatch: stored %#x, computed %#x", got, sum))
	}
}

// need verifies that count elements of elem bytes each fit in the
// remaining payload — the pre-allocation sanity check.
func (d *decoder) need(count, elem uint64) bool {
	if d.err != nil {
		return false
	}
	if elem != 0 && count > d.remaining/elem {
		d.fail(corruptf("element count %d exceeds section payload", count))
		return false
	}
	return true
}

// chunkBuf returns the reused chunk buffer sized to n bytes.
func (d *decoder) chunkBuf(n int) []byte {
	if cap(d.chunk) < n {
		d.chunk = make([]byte, n)
	}
	return d.chunk[:n]
}

// i32s reads count little-endian int32s in chunks.
func (d *decoder) i32s(count uint64) []int32 {
	if !d.need(count, 4) {
		return nil
	}
	out := make([]int32, 0, min(count, chunkElems))
	for count > 0 {
		c := min(count, chunkElems)
		buf := d.chunkBuf(int(c) * 4)
		d.read(buf)
		if d.err != nil {
			return nil
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i*4:])))
		}
		count -= c
	}
	return out
}

func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
