package snapshot

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/flat"
	"repro/internal/graph"
)

// Version 3 of the snapshot lineage is not a new section layout for
// the streaming codec — it is the flat oracle arena (internal/flat)
// written to disk verbatim. This file is the negotiation shim: the
// two formats are distinguished by their 4-byte magic ("SPF3" vs the
// codec's "SPS1"), writers pick a format explicitly, and ReadOracle
// accepts either. The codec remains the portable interchange format
// (any endianness, streaming decode); the arena is the fast
// same-machine warm-start format (mmap + checksum validation).

// FreezeOracle flattens an oracle into a v3 arena ready to be written
// to disk verbatim.
func FreezeOracle(g *graph.Graph, o *Oracle, note []byte) (*flat.Arena, error) {
	return flat.Freeze(&flat.Parts{
		Graph:      g,
		Eps:        o.Eps,
		Seed:       o.Seed,
		Degenerate: o.Degenerate,
		Direct:     o.Direct,
		Dec:        o.Dec,
		Instances:  o.Instances,
		FloorGen:   o.FloorGen,
		Journal:    o.Journal,
		Note:       note,
	})
}

// WriteOracleFlat is WriteOracle in the v3 arena format.
func WriteOracleFlat(w io.Writer, g *graph.Graph, o *Oracle, note []byte) error {
	a, err := FreezeOracle(g, o, note)
	if err != nil {
		return err
	}
	_, err = w.Write(a.Bytes())
	return err
}

// OpenOracleArena restores an oracle from an in-memory v3 arena. The
// returned structures alias data — the caller keeps data alive for
// the oracle's lifetime (automatic when data is an ordinary heap
// buffer; for a Mapping the caller must hold it, see MapOracleFile).
// A non-nil g whose fingerprint matches the arena header becomes the
// oracle's base graph directly, skipping validation of the embedded
// copy the oracle will never read (flat.Open documents the contract).
func OpenOracleArena(data []byte, g *graph.Graph) (*Oracle, *graph.Graph, []byte, error) {
	p, err := flat.Open(data, g)
	if err != nil {
		return nil, nil, nil, wrapFlatErr(err)
	}
	o := &Oracle{
		Eps:         p.Eps,
		Seed:        p.Seed,
		Fingerprint: p.Fingerprint,
		Degenerate:  p.Degenerate,
		Direct:      p.Direct,
		Dec:         p.Dec,
		Instances:   p.Instances,
		FloorGen:    p.FloorGen,
		Journal:     p.Journal,
	}
	return o, p.Graph, p.Note, nil
}

// MapOracleFile memory-maps a v3 arena file and opens it in place:
// the restored oracle's arrays alias the mapping, so startup is
// header + checksum validation instead of a decode. The caller MUST
// keep the returned Mapping reachable for as long as the oracle
// serves (the facade stores it inside the DistanceOracle); it may
// Close it only on error paths before the oracle escapes.
func MapOracleFile(path string, g *graph.Graph) (*Oracle, *graph.Graph, []byte, *flat.Mapping, error) {
	m, err := flat.MapFile(path)
	if err != nil {
		return nil, nil, nil, nil, wrapFlatErr(err)
	}
	if b := m.Bytes(); len(b) >= 4 && !flat.IsArena(b) && le32(b) == magicV1 {
		m.Close()
		return nil, nil, nil, nil, fmt.Errorf("snapshot: %s is a codec (v1/v2) stream, not a flat arena — load it with ReadOracle/LoadOracle", path)
	}
	o, g, note, err := OpenOracleArena(m.Bytes(), g)
	if err != nil {
		m.Close()
		return nil, nil, nil, nil, err
	}
	return o, g, note, m, nil
}

// IsFlatFile sniffs whether the file at path holds a v3 arena (as
// opposed to a codec stream or anything else).
func IsFlatFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var prefix [4]byte
	if _, err := io.ReadFull(f, prefix[:]); err != nil {
		return false
	}
	return flat.IsArena(prefix[:])
}

// wrapFlatErr re-parents flat's corruption sentinel under the
// package's own, so callers keep testing errors.Is(err, ErrCorrupt)
// regardless of which format rejected the file.
func wrapFlatErr(err error) error {
	if errors.Is(err, flat.ErrCorrupt) {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return err
}
