package snapshot

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/dynamic"
	"repro/internal/flat"
	"repro/internal/graph"
	"repro/internal/hopset"
	"repro/internal/wscale"
)

// Oracle is the codec's exchange shape for a DistanceOracle: the
// facade (which owns the private oracle fields) converts to and from
// it around Write/Read. Exactly one of the three shapes is populated:
// Degenerate, Direct, or Dec+Instances.
type Oracle struct {
	// Eps and Seed echo the build parameters.
	Eps  float64
	Seed uint64
	// Fingerprint is the base graph's digest from the META section,
	// already verified against the embedded graph by ReadOracle (zero
	// on the encode side; Write recomputes from the graph).
	Fingerprint uint64
	// Degenerate marks an oracle over a graph too small to route.
	Degenerate bool
	// Direct is the single multi-scale hopset of a poly-bounded-ratio
	// build.
	Direct *hopset.Scaled
	// Dec plus Instances (one scaled hopset per decomposition level)
	// form a decomposed oracle.
	Dec       *wscale.Decomposition
	Instances []*hopset.Scaled

	// FloorGen and Journal carry a dynamic oracle's overlay state: the
	// generation the serialized base oracle reflects and the pending
	// mutations above it (gen-ascending). Both zero for a static
	// oracle. New in format version 2; a v1 stream decodes with an
	// empty journal.
	FloorGen uint64
	Journal  []dynamic.Entry
}

// WriteOracle writes a self-contained snapshot of o built over g:
// header, META, optional NOTE (an opaque caller annotation, e.g. the
// server's graph spec), the embedded base graph, and the oracle
// sections. The stream is flushed but not closed.
func WriteOracle(w io.Writer, g *graph.Graph, o *Oracle, note []byte) error {
	return writeOracleVersion(w, g, o, note, version)
}

// writeOracleVersion is WriteOracle pinned to a format version; only
// tests emit the legacy v1 layout (no JOURNAL section, which
// therefore requires an empty journal).
func writeOracleVersion(w io.Writer, g *graph.Graph, o *Oracle, note []byte, ver uint32) error {
	if ver < versionV2 && (len(o.Journal) > 0 || o.FloorGen != 0) {
		return errors.New("snapshot: version 1 cannot carry a mutation journal")
	}
	mode := modeDegenerate
	switch {
	case o.Degenerate:
	case o.Direct != nil:
		mode = modeDirect
		if err := checkScaledComplete(o.Direct); err != nil {
			return err
		}
	case o.Dec != nil:
		mode = modeDecomposed
		if len(o.Instances) != len(o.Dec.Instances) {
			return errors.New("snapshot: oracle instance count does not match its decomposition")
		}
		for _, s := range o.Instances {
			if err := checkScaledComplete(s); err != nil {
				return err
			}
		}
	default:
		return errors.New("snapshot: oracle has neither a hopset nor a decomposition")
	}
	e := newEncoder(w)
	e.version = ver
	e.header()
	writeMeta(e, mode, o.Eps, o.Seed, g.Fingerprint())
	writeNote(e, note)
	writeGraph(e, g)
	switch mode {
	case modeDirect:
		writeScaled(e, o.Direct)
	case modeDecomposed:
		writeWScale(e, o.Dec)
		for j, inst := range o.Dec.Instances {
			writeInstance(e, o.Dec, inst, g.NumVertices())
			writeScaled(e, o.Instances[j])
		}
	}
	if ver >= versionV2 {
		writeJournal(e, o.FloorGen, o.Journal)
	}
	writeEnd(e)
	return e.flush()
}

// ReadOracle parses a WriteOracle or WriteOracleFlat stream (the
// 4-byte magic negotiates the format), returning the restored oracle
// skeleton, the embedded base graph, and the caller annotation (nil
// when none was written). Every structural invariant the query path
// relies on is validated; any violation, truncation, or checksum
// mismatch returns an error wrapping ErrCorrupt. A v3 arena arriving
// through this generic-reader path is slurped into an aligned buffer
// and opened in place; use MapOracleFile to open an arena file
// without reading it.
func ReadOracle(r io.Reader) (*Oracle, *graph.Graph, []byte, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if prefix, err := br.Peek(4); err == nil && flat.IsArena(prefix) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, nil, nil, corruptf("reading arena: %v", err)
		}
		return OpenOracleArena(flat.AlignBytes(data), nil)
	}
	r = br
	d := newDecoder(r)
	d.header()
	mode, eps, seed, fp := readMeta(d)
	note := readNote(d)
	if d.err != nil {
		return nil, nil, nil, d.err
	}
	if mode != modeDegenerate && mode != modeDirect && mode != modeDecomposed {
		return nil, nil, nil, corruptf("stream holds shape %d, not an oracle", mode)
	}
	g := readGraph(d)
	if d.err == nil && g.Fingerprint() != fp {
		return nil, nil, nil, corruptf("embedded graph does not hash to the META fingerprint")
	}
	o := &Oracle{Eps: eps, Seed: seed, Fingerprint: fp}
	switch mode {
	case modeDegenerate:
		o.Degenerate = true
	case modeDirect:
		o.Direct = readScaled(d, g)
	case modeDecomposed:
		dec := readWScale(d, g)
		if d.err == nil {
			for j := range dec.Instances {
				inst := readInstance(d, g, dec, j)
				dec.Instances[j] = inst
				if d.err != nil {
					break
				}
				o.Instances = append(o.Instances, readScaled(d, inst.G))
			}
		}
		o.Dec = dec
	}
	if d.version >= versionV2 {
		o.FloorGen, o.Journal = readJournal(d, g)
	}
	readEnd(d)
	if d.err != nil {
		return nil, nil, nil, d.err
	}
	return o, g, note, nil
}

// WriteScaled writes a standalone multi-scale hopset snapshot (the
// cmd/hopset -save shape), embedding its base graph.
func WriteScaled(w io.Writer, s *hopset.Scaled, note []byte) error {
	if s == nil || s.Base == nil {
		return errors.New("snapshot: nil scaled hopset")
	}
	if err := checkScaledComplete(s); err != nil {
		return err
	}
	e := newEncoder(w)
	e.header()
	writeMeta(e, modeScaled, 0, s.Params.Seed, s.Base.Fingerprint())
	writeNote(e, note)
	writeGraph(e, s.Base)
	writeScaled(e, s)
	writeEnd(e)
	return e.flush()
}

// ReadScaled parses a WriteScaled stream, returning the hopset (bound
// to the embedded graph) and the annotation.
func ReadScaled(r io.Reader) (*hopset.Scaled, []byte, error) {
	d := newDecoder(r)
	d.header()
	mode, _, _, fp := readMeta(d)
	note := readNote(d)
	if d.err == nil && mode != modeScaled {
		return nil, nil, corruptf("stream holds shape %d, not a scaled hopset", mode)
	}
	g := readGraph(d)
	if d.err == nil && g.Fingerprint() != fp {
		return nil, nil, corruptf("embedded graph does not hash to the META fingerprint")
	}
	s := readScaled(d, g)
	readEnd(d)
	if d.err != nil {
		return nil, nil, d.err
	}
	return s, note, nil
}

// WriteSpanner writes a spanner result (edge-id subset of g) without
// embedding the graph: ids are meaningless except against the exact
// input graph, which the META fingerprint pins.
func WriteSpanner(w io.Writer, g *graph.Graph, k int, seed uint64, edgeIDs []int32, note []byte) error {
	e := newEncoder(w)
	e.header()
	writeMeta(e, modeSpanner, 0, seed, g.Fingerprint())
	writeNote(e, note)
	e.begin(secSpanner, 8+8+uint64(len(edgeIDs))*4)
	e.i64(int64(k))
	e.u64(uint64(len(edgeIDs)))
	for _, id := range edgeIDs {
		e.i32(id)
	}
	e.end()
	writeEnd(e)
	return e.flush()
}

// ReadSpanner parses a WriteSpanner stream against the graph it was
// saved for; a fingerprint mismatch is an error.
func ReadSpanner(r io.Reader, g *graph.Graph) (k int, seed uint64, edgeIDs []int32, note []byte, err error) {
	d := newDecoder(r)
	d.header()
	mode, _, sseed, fp := readMeta(d)
	note = readNote(d)
	if d.err == nil && mode != modeSpanner {
		return 0, 0, nil, nil, corruptf("stream holds shape %d, not a spanner", mode)
	}
	if d.err == nil && g.Fingerprint() != fp {
		return 0, 0, nil, nil, fmt.Errorf("snapshot: spanner was saved for a different graph (fingerprint mismatch)")
	}
	d.next(secSpanner)
	k64 := d.i64()
	count := d.u64()
	ids := d.i32s(count)
	m := g.NumEdges()
	for i, id := range ids {
		if d.err != nil {
			break
		}
		if int64(id) < 0 || int64(id) >= m {
			d.fail(corruptf("spanner edge id %d out of range m=%d", id, m))
			break
		}
		if i > 0 && ids[i-1] >= id {
			d.fail(corruptf("spanner edge ids not strictly ascending at %d", i))
			break
		}
	}
	if d.err == nil && (k64 < 1 || k64 > 1<<20) {
		d.fail(corruptf("spanner k = %d out of range", k64))
	}
	d.end()
	readEnd(d)
	if d.err != nil {
		return 0, 0, nil, nil, d.err
	}
	return int(k64), sseed, ids, note, nil
}

// ---------------------------------------------------------------------------
// META / NOTE / END sections.

func writeMeta(e *encoder, mode uint8, eps float64, seed, fp uint64) {
	e.begin(secMeta, 1+8+8+8)
	e.u8(mode)
	e.f64(eps)
	e.u64(seed)
	e.u64(fp)
	e.end()
}

func readMeta(d *decoder) (mode uint8, eps float64, seed, fp uint64) {
	d.next(secMeta)
	mode = d.u8()
	eps = d.f64()
	seed = d.u64()
	fp = d.u64()
	if d.err == nil && (!finite(eps) || eps < 0 || eps >= 1) {
		d.fail(corruptf("eps = %v out of range", eps))
	}
	d.end()
	return mode, eps, seed, fp
}

// writeNote writes the optional annotation section; nil or empty notes
// write an empty section so the decode sequence stays fixed.
func writeNote(e *encoder, note []byte) {
	if uint64(len(note)) > maxNote {
		e.fail(fmt.Errorf("snapshot: note of %d bytes exceeds the %d limit", len(note), maxNote))
		return
	}
	e.begin(secNote, uint64(len(note)))
	e.raw(note)
	e.end()
}

func readNote(d *decoder) []byte {
	d.next(secNote)
	if d.err != nil {
		return nil
	}
	if d.remaining > maxNote {
		d.fail(corruptf("note of %d bytes exceeds the %d limit", d.remaining, maxNote))
		return nil
	}
	var note []byte
	if d.remaining > 0 {
		note = make([]byte, d.remaining)
		d.read(note)
	}
	d.end()
	if d.err != nil {
		return nil
	}
	return note
}

func writeEnd(e *encoder) {
	e.begin(secEnd, 0)
	e.end()
}

func readEnd(d *decoder) {
	d.next(secEnd)
	d.end()
}

// ---------------------------------------------------------------------------
// JOURNAL section (version 2): a dynamic oracle's pending mutations.

// journalEntrySize is the fixed per-entry payload: gen u64, op u8,
// u i32, v i32, w i64.
const journalEntrySize = 8 + 1 + 4 + 4 + 8

// maxJournalEntries bounds a declared journal: a rebuild policy that
// let this many mutations pile up does not exist, so a bigger count
// is corruption.
const maxJournalEntries = 1 << 24

func writeJournal(e *encoder, floorGen uint64, entries []dynamic.Entry) {
	if uint64(len(entries)) > maxJournalEntries {
		// The decoder hard-rejects larger counts; writing one would
		// produce a snapshot no reader accepts. Fail the save instead
		// (mirrors writeOracleVersion refusing v1 + journal).
		e.fail(fmt.Errorf("snapshot: journal of %d entries exceeds the format limit %d", len(entries), maxJournalEntries))
		return
	}
	e.begin(secJournal, 8+8+uint64(len(entries))*journalEntrySize)
	e.u64(floorGen)
	e.u64(uint64(len(entries)))
	for _, ent := range entries {
		e.u64(ent.Gen)
		e.u8(uint8(ent.Op))
		e.i32(ent.U)
		e.i32(ent.V)
		e.i64(int64(ent.W))
	}
	e.end()
}

// readJournal decodes and structurally validates the journal against
// the embedded base graph: known ops, in-range non-loop endpoints,
// positive weights where a weight is meaningful (exactly 1 for an
// unweighted graph), and strictly ascending generations above the
// floor. Semantic validity (delete of an absent edge, ...) is the
// loader's replay to verify — it needs the evolving pair state.
func readJournal(d *decoder, g *graph.Graph) (uint64, []dynamic.Entry) {
	d.next(secJournal)
	floorGen := d.u64()
	count := d.u64()
	if d.err == nil && count > maxJournalEntries {
		d.fail(corruptf("journal declares %d entries, limit %d", count, maxJournalEntries))
	}
	if !d.need(count, journalEntrySize) {
		count = 0
	}
	n := g.NumVertices()
	entries := make([]dynamic.Entry, 0, min(count, chunkElems))
	prev := floorGen
	for i := uint64(0); i < count && d.err == nil; i++ {
		var ent dynamic.Entry
		ent.Gen = d.u64()
		op := d.u8()
		ent.U = d.i32()
		ent.V = d.i32()
		ent.W = d.i64()
		if d.err != nil {
			break
		}
		if op > uint8(dynamic.OpReweight) {
			d.fail(corruptf("journal entry %d has unknown op %d", i, op))
			break
		}
		ent.Op = dynamic.Op(op)
		if ent.Gen <= prev {
			d.fail(corruptf("journal generations not ascending at entry %d (%d after %d)", i, ent.Gen, prev))
			break
		}
		prev = ent.Gen
		if ent.U < 0 || ent.U >= n || ent.V < 0 || ent.V >= n {
			d.fail(corruptf("journal entry %d endpoint (%d,%d) out of range n=%d", i, ent.U, ent.V, n))
			break
		}
		if ent.U == ent.V {
			d.fail(corruptf("journal entry %d is a self-loop at %d", i, ent.U))
			break
		}
		if ent.Op != dynamic.OpDelete {
			if ent.W <= 0 {
				d.fail(corruptf("journal entry %d has non-positive weight %d", i, ent.W))
				break
			}
			if !g.Weighted() && ent.W != 1 {
				d.fail(corruptf("journal entry %d carries weight %d into an unweighted graph", i, ent.W))
				break
			}
		}
		entries = append(entries, ent)
	}
	d.end()
	if len(entries) == 0 {
		entries = nil
	}
	return floorGen, entries
}

// ---------------------------------------------------------------------------
// GRAPH payloads (used by the GRAPH and INSTANCE sections).

func graphSize(g *graph.Graph) uint64 {
	m := uint64(g.NumEdges())
	esz := uint64(8)
	if g.Weighted() {
		esz = 16
	}
	size := uint64(4+8+1+1) + m*esz
	if g.HasOrigEdgeIDs() {
		size += m * 4
	}
	return size
}

func writeGraphPayload(e *encoder, g *graph.Graph) {
	m := g.NumEdges()
	e.u32(uint32(g.NumVertices()))
	e.u64(uint64(m))
	weighted := g.Weighted()
	if weighted {
		e.u8(1)
	} else {
		e.u8(0)
	}
	hasOrig := g.HasOrigEdgeIDs()
	if hasOrig {
		e.u8(1)
	} else {
		e.u8(0)
	}
	for _, ed := range g.Edges() {
		e.i32(ed.U)
		e.i32(ed.V)
		if weighted {
			e.i64(ed.W)
		}
	}
	if hasOrig {
		for i := int64(0); i < m; i++ {
			e.i32(g.OrigEdgeID(int32(i)))
		}
	}
}

func writeGraph(e *encoder, g *graph.Graph) {
	e.begin(secGraph, graphSize(g))
	writeGraphPayload(e, g)
	e.end()
}

// readGraphPayload decodes and validates one graph payload. maxOrig
// bounds the OrigEdgeID back-map values (exclusive): contraction
// back-references point into the edge list of an ancestor graph, so a
// value outside [0, maxOrig) would make any consumer that indexes
// with it panic — the codec's never-panic policy rejects it here. On
// any sticky error it returns an empty placeholder graph (never nil)
// so callers can proceed structurally; the error aborts the decode at
// the next boundary.
func readGraphPayload(d *decoder, maxOrig int64) *graph.Graph {
	empty := graph.FromEdges(0, nil, false)
	nu := d.u32()
	m := d.u64()
	weighted := d.u8() == 1
	hasOrig := d.u8() == 1
	if d.err != nil {
		return empty
	}
	if nu > maxVertices {
		d.fail(corruptf("vertex count %d exceeds the format limit %d", nu, maxVertices))
		return empty
	}
	n := int32(nu)
	esz := uint64(8)
	if weighted {
		esz = 16
	}
	if !d.need(m, esz) {
		return empty
	}
	edges := make([]graph.Edge, 0, min(m, chunkElems))
	for left := m; left > 0; {
		c := min(left, chunkElems)
		buf := d.chunkBuf(int(c) * int(esz))
		d.read(buf)
		if d.err != nil {
			return empty
		}
		for i := uint64(0); i < c; i++ {
			off := i * esz
			u := int32(le32(buf[off:]))
			v := int32(le32(buf[off+4:]))
			w := graph.W(1)
			if weighted {
				w = int64(le64(buf[off+8:]))
			}
			if u < 0 || u >= n || v < 0 || v >= n {
				d.fail(corruptf("edge endpoint (%d,%d) out of range n=%d", u, v, n))
				return empty
			}
			if u == v {
				d.fail(corruptf("self-loop at vertex %d", u))
				return empty
			}
			if weighted && w <= 0 {
				d.fail(corruptf("non-positive edge weight %d", w))
				return empty
			}
			edges = append(edges, graph.Edge{U: u, V: v, W: w})
		}
		left -= c
	}
	var orig []int32
	if hasOrig {
		orig = d.i32s(m)
		if d.err != nil {
			return empty
		}
		for _, oe := range orig {
			if int64(oe) < 0 || int64(oe) >= maxOrig {
				d.fail(corruptf("orig edge id %d out of range %d", oe, maxOrig))
				return empty
			}
		}
	}
	return graph.FromEdgesOrig(n, edges, weighted, orig)
}

func readGraph(d *decoder) *graph.Graph {
	d.next(secGraph)
	// A base graph's back-map (unusual but representable) has no
	// decodable ancestor to bound against; require ids non-negative
	// and representable.
	g := readGraphPayload(d, int64(1)<<31)
	d.end()
	return g
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

// ---------------------------------------------------------------------------
// SCALED sections (one hopset.Scaled: params + dedup result table +
// per-band scales).

const (
	paramsSize  = 7 * 8 // Epsilon Delta Gamma1 Gamma2 K MinFinal Seed
	wparamsSize = paramsSize + 4*8
)

func writeParams(e *encoder, p hopset.Params) {
	e.f64(p.Epsilon)
	e.f64(p.Delta)
	e.f64(p.Gamma1)
	e.f64(p.Gamma2)
	e.f64(p.K)
	e.i64(int64(p.MinFinal))
	e.u64(p.Seed)
}

func readParams(d *decoder) hopset.Params {
	var p hopset.Params
	p.Epsilon = d.f64()
	p.Delta = d.f64()
	p.Gamma1 = d.f64()
	p.Gamma2 = d.f64()
	p.K = d.f64()
	mf := d.i64()
	p.Seed = d.u64()
	if d.err != nil {
		return p
	}
	// The saved params went through normalized(); anything outside its
	// domain would re-panic (or loop) at query time, so reject here.
	switch {
	case !finite(p.Epsilon) || p.Epsilon <= 0 || p.Epsilon >= 1:
		d.fail(corruptf("params Epsilon = %v out of (0,1)", p.Epsilon))
	case !finite(p.Delta) || p.Delta <= 1:
		d.fail(corruptf("params Delta = %v, want > 1", p.Delta))
	case !finite(p.Gamma1) || !finite(p.Gamma2) || p.Gamma1 <= 0 || p.Gamma2 <= p.Gamma1 || p.Gamma2 >= 1:
		d.fail(corruptf("params gammas (%v,%v) out of order", p.Gamma1, p.Gamma2))
	case !finite(p.K) || p.K < 1:
		d.fail(corruptf("params K = %v, want >= 1", p.K))
	case mf < 2 || mf > maxVertices:
		d.fail(corruptf("params MinFinal = %d out of range", mf))
	}
	p.MinFinal = int(mf)
	return p
}

func writeWParams(e *encoder, wp hopset.WeightedParams) {
	writeParams(e, wp.Params)
	e.f64(wp.Eta)
	e.f64(wp.Zeta)
	e.f64(wp.Escalation)
	e.f64(wp.InitialHopBudget)
}

func readWParams(d *decoder) hopset.WeightedParams {
	var wp hopset.WeightedParams
	wp.Params = readParams(d)
	wp.Eta = d.f64()
	wp.Zeta = d.f64()
	wp.Escalation = d.f64()
	wp.InitialHopBudget = d.f64()
	if d.err != nil {
		return wp
	}
	switch {
	case !finite(wp.Eta) || wp.Eta <= 0 || wp.Eta > 1:
		d.fail(corruptf("params Eta = %v out of (0,1]", wp.Eta))
	case !finite(wp.Zeta) || wp.Zeta <= 0 || wp.Zeta >= 1:
		d.fail(corruptf("params Zeta = %v out of (0,1)", wp.Zeta))
	case !finite(wp.Escalation) || wp.Escalation < 2:
		d.fail(corruptf("params Escalation = %v, want >= 2", wp.Escalation))
	case !finite(wp.InitialHopBudget) || wp.InitialHopBudget < 1:
		d.fail(corruptf("params InitialHopBudget = %v, want >= 1", wp.InitialHopBudget))
	}
	return wp
}

// checkScaledComplete rejects partial hopsets: a canceled BuildScaled
// abandons bands with nil Res, and persisting those would either
// panic the encoder or freeze an invalid oracle on disk.
func checkScaledComplete(s *hopset.Scaled) error {
	if s == nil {
		return errors.New("snapshot: cannot snapshot a partial (canceled) oracle")
	}
	for i := range s.Scales {
		if s.Scales[i].Res == nil {
			return errors.New("snapshot: cannot snapshot a partial (canceled) oracle: band without a hopset")
		}
	}
	return nil
}

// scaledResults builds the dedup table: bands whose rounding collapsed
// to the same hopset share one Result pointer (BuildScaled's reuse
// path), and the snapshot preserves that sharing.
func scaledResults(s *hopset.Scaled) (results []*hopset.Result, resIdx []uint32) {
	index := map[*hopset.Result]uint32{}
	resIdx = make([]uint32, len(s.Scales))
	for i := range s.Scales {
		res := s.Scales[i].Res
		idx, ok := index[res]
		if !ok {
			idx = uint32(len(results))
			index[res] = idx
			results = append(results, res)
		}
		resIdx[i] = idx
	}
	return results, resIdx
}

func scaledSize(s *hopset.Scaled, results []*hopset.Result) uint64 {
	size := uint64(wparamsSize) + 4 + 4
	for _, res := range results {
		size += paramsSize + 3*8 + 8 + uint64(len(res.Edges))*16
	}
	size += uint64(len(s.Scales)) * 20
	return size
}

func writeScaled(e *encoder, s *hopset.Scaled) {
	results, resIdx := scaledResults(s)
	e.begin(secScaled, scaledSize(s, results))
	writeWParams(e, s.Params)
	e.u32(uint32(len(results)))
	for _, res := range results {
		writeParams(e, res.Params)
		e.i64(int64(res.Stars))
		e.i64(int64(res.Cliques))
		e.i64(int64(res.Levels))
		e.u64(uint64(len(res.Edges)))
		for _, ed := range res.Edges {
			e.i32(ed.U)
			e.i32(ed.V)
			e.i64(ed.W)
		}
	}
	e.u32(uint32(len(s.Scales)))
	for i := range s.Scales {
		e.f64(s.Scales[i].D)
		e.i64(s.Scales[i].WHat)
		e.u32(resIdx[i])
	}
	e.end()
}

// readScaled decodes one SCALED section bound to base. Hopset edges
// are validated against base's vertex range: they are later unioned
// with base's edges into the augmented query graph, whose builder
// treats malformed edges as programming errors.
func readScaled(d *decoder, base *graph.Graph) *hopset.Scaled {
	d.next(secScaled)
	wp := readWParams(d)
	n := base.NumVertices()
	numResults := d.u32()
	// Each result carries at least its params and counters.
	if !d.need(uint64(numResults), paramsSize+3*8+8) {
		numResults = 0
	}
	results := make([]*hopset.Result, 0, min(uint64(numResults), chunkElems))
	for r := uint32(0); r < numResults && d.err == nil; r++ {
		res := &hopset.Result{Params: readParams(d)}
		res.Stars = int(d.i64())
		res.Cliques = int(d.i64())
		res.Levels = int(d.i64())
		numEdges := d.u64()
		if !d.need(numEdges, 16) {
			break
		}
		res.Edges = make([]graph.Edge, 0, min(numEdges, chunkElems))
		for left := numEdges; left > 0 && d.err == nil; {
			c := min(left, chunkElems)
			buf := d.chunkBuf(int(c) * 16)
			d.read(buf)
			if d.err != nil {
				break
			}
			for i := uint64(0); i < c; i++ {
				off := i * 16
				u := int32(le32(buf[off:]))
				v := int32(le32(buf[off+4:]))
				w := int64(le64(buf[off+8:]))
				if u < 0 || u >= n || v < 0 || v >= n || u == v || w <= 0 {
					d.fail(corruptf("hopset edge (%d,%d,w=%d) invalid for n=%d", u, v, w, n))
					break
				}
				res.Edges = append(res.Edges, graph.Edge{U: u, V: v, W: w})
			}
			left -= c
		}
		results = append(results, res)
	}
	numScales := d.u32()
	if !d.need(uint64(numScales), 20) {
		numScales = 0
	}
	scales := make([]hopset.Scale, 0, numScales)
	for i := uint32(0); i < numScales && d.err == nil; i++ {
		var sc hopset.Scale
		sc.D = d.f64()
		sc.WHat = d.i64()
		idx := d.u32()
		if d.err != nil {
			break
		}
		if !finite(sc.D) || sc.D <= 0 {
			d.fail(corruptf("scale D = %v invalid", sc.D))
			break
		}
		if sc.WHat < 1 {
			d.fail(corruptf("scale WHat = %d, want >= 1", sc.WHat))
			break
		}
		if uint64(idx) >= uint64(len(results)) {
			d.fail(corruptf("scale result index %d out of range %d", idx, len(results)))
			break
		}
		sc.Res = results[idx]
		scales = append(scales, sc)
	}
	d.end()
	return hopset.NewScaled(base, scales, wp)
}

// ---------------------------------------------------------------------------
// WSCALE + INSTANCE sections (the Appendix B decomposition).

func wscaleSize(dec *wscale.Decomposition, nBase int32) uint64 {
	L := uint64(len(dec.Cats))
	return 8 + 8 + 4 + L*8 + L*(4+uint64(nBase)*4)
}

func writeWScale(e *encoder, dec *wscale.Decomposition) {
	nBase := dec.Base.NumVertices()
	e.begin(secWScale, wscaleSize(dec, nBase))
	e.f64(dec.Eps)
	e.f64(dec.B)
	e.u32(uint32(len(dec.Cats)))
	for _, c := range dec.Cats {
		e.i64(int64(c))
	}
	for j := range dec.Cats {
		e.i32(dec.LevelCounts[j])
		for _, lbl := range dec.Levels[j] {
			e.i32(lbl)
		}
	}
	e.end()
}

// readWScale decodes the decomposition skeleton; Instances are sized
// but nil, filled by the INSTANCE sections that follow.
func readWScale(d *decoder, base *graph.Graph) *wscale.Decomposition {
	d.next(secWScale)
	dec := &wscale.Decomposition{Base: base}
	dec.Eps = d.f64()
	dec.B = d.f64()
	L := d.u32()
	n := base.NumVertices()
	if d.err == nil {
		if !finite(dec.Eps) || dec.Eps <= 0 || dec.Eps >= 1 {
			d.fail(corruptf("decomposition eps = %v out of (0,1)", dec.Eps))
		} else if !finite(dec.B) || dec.B < 2 {
			d.fail(corruptf("decomposition base B = %v, want >= 2", dec.B))
		}
	}
	if !d.need(uint64(L), 8) {
		L = 0
	}
	for j := uint32(0); j < L && d.err == nil; j++ {
		c := d.i64()
		if d.err != nil {
			break
		}
		if c < 0 || c > 1<<40 {
			d.fail(corruptf("category index %d out of range", c))
			break
		}
		if len(dec.Cats) > 0 && dec.Cats[len(dec.Cats)-1] >= int(c) {
			d.fail(corruptf("category levels not strictly ascending at %d", j))
			break
		}
		dec.Cats = append(dec.Cats, int(c))
	}
	for j := uint32(0); j < L && d.err == nil; j++ {
		count := d.i32()
		if d.err != nil {
			break
		}
		if count < 1 || count > n {
			d.fail(corruptf("level %d component count %d out of range n=%d", j, count, n))
			break
		}
		labels := d.i32s(uint64(n))
		if d.err != nil {
			break
		}
		for _, lbl := range labels {
			if lbl < 0 || lbl >= count {
				d.fail(corruptf("level %d component label %d out of range %d", j, lbl, count))
				break
			}
		}
		dec.LevelCounts = append(dec.LevelCounts, count)
		dec.Levels = append(dec.Levels, labels)
	}
	if d.err == nil {
		dec.Instances = make([]*wscale.Instance, L)
	}
	d.end()
	return dec
}

// Instance label encodings. A level's contraction labeling is either
// the identity (no level contracted yet) or exactly one of the
// per-level component labelings the WSCALE section already carries
// (wscale.Build aliases the slice); storing a kind byte plus a level
// reference instead of re-serializing n labels per instance halves
// the label bytes of a decomposed snapshot and restores the slice
// sharing (and hence the memory footprint) of a fresh build. Explicit
// labels remain representable for decompositions built by hand.
const (
	labelExplicit uint8 = 0
	labelIdentity uint8 = 1
	labelShared   uint8 = 2
)

// instanceLabelKind classifies inst.Label against the recorded
// levels: identity, an alias of dec.Levels[ref], or explicit.
func instanceLabelKind(dec *wscale.Decomposition, inst *wscale.Instance) (kind uint8, ref int64) {
	n := dec.Base.NumVertices()
	if int64(len(inst.Label)) != int64(n) {
		return labelExplicit, 0
	}
	identity := true
	for v, lbl := range inst.Label {
		if lbl != graph.V(v) {
			identity = false
			break
		}
	}
	if identity {
		return labelIdentity, 0
	}
	if n > 0 {
		for jj := range dec.Levels {
			if len(dec.Levels[jj]) == len(inst.Label) && &dec.Levels[jj][0] == &inst.Label[0] {
				return labelShared, int64(jj)
			}
		}
	}
	return labelExplicit, 0
}

func instanceSize(dec *wscale.Decomposition, inst *wscale.Instance, nBase int32) uint64 {
	size := uint64(8+1) + graphSize(inst.G)
	switch kind, _ := instanceLabelKind(dec, inst); kind {
	case labelShared:
		size += 8
	case labelExplicit:
		size += uint64(nBase) * 4
	}
	return size
}

func writeInstance(e *encoder, dec *wscale.Decomposition, inst *wscale.Instance, nBase int32) {
	e.begin(secInstance, instanceSize(dec, inst, nBase))
	e.i64(int64(inst.Level))
	kind, ref := instanceLabelKind(dec, inst)
	e.u8(kind)
	writeGraphPayload(e, inst.G)
	switch kind {
	case labelShared:
		e.i64(ref)
	case labelExplicit:
		for _, lbl := range inst.Label {
			e.i32(lbl)
		}
	}
	e.end()
}

// readInstance decodes instance j of dec; its Level must equal j
// because the oracle indexes its per-level hopsets by it.
func readInstance(d *decoder, base *graph.Graph, dec *wscale.Decomposition, j int) *wscale.Instance {
	d.next(secInstance)
	inst := &wscale.Instance{}
	level := d.i64()
	kind := d.u8()
	// Instance graphs are contracted from subsets of base edges, so
	// their back-maps index base-local edge ids.
	inst.G = readGraphPayload(d, base.NumEdges())
	n := base.NumVertices()
	instN := inst.G.NumVertices()
	switch kind {
	case labelIdentity:
		// Contract with the identity keeps every vertex.
		if d.err == nil && instN != n {
			d.fail(corruptf("instance %d identity labeling over %d vertices, graph has %d", j, n, instN))
			break
		}
		inst.Label = make([]graph.V, n)
		for v := range inst.Label {
			inst.Label[v] = graph.V(v)
		}
	case labelShared:
		ref := d.i64()
		if d.err != nil {
			break
		}
		if ref < 0 || ref >= int64(len(dec.Levels)) {
			d.fail(corruptf("instance %d label reference %d out of range %d", j, ref, len(dec.Levels)))
			break
		}
		// The referenced level labels into [0, LevelCounts[ref]);
		// Contract then produced exactly that many vertices.
		if dec.LevelCounts[ref] != instN {
			d.fail(corruptf("instance %d labels via level %d with %d components, graph has %d vertices",
				j, ref, dec.LevelCounts[ref], instN))
			break
		}
		inst.Label = dec.Levels[ref]
	case labelExplicit:
		inst.Label = d.i32s(uint64(n))
		if d.err != nil {
			break
		}
		for _, lbl := range inst.Label {
			if lbl < 0 || lbl >= instN {
				d.fail(corruptf("instance %d label %d out of range n=%d", j, lbl, instN))
				break
			}
		}
	default:
		d.fail(corruptf("instance %d unknown label encoding %d", j, kind))
	}
	if d.err == nil {
		if int(level) != j {
			d.fail(corruptf("instance level %d at position %d", level, j))
		} else {
			inst.Level = j
		}
	}
	d.end()
	return inst
}
